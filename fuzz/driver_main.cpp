// Standalone driver for the fuzz harnesses, used when the toolchain has no
// libFuzzer (GCC builds, plain ctest runs). Modes:
//   <harness> --make-corpus DIR   write this harness's seed inputs to DIR
//   <harness> [PATH...]           run corpus files/directories, then a
//                                 deterministic sweep: every seed, every
//                                 prefix of every seed, every single-byte
//                                 flip, and a budget of seeded random inputs.
// Exit 0 means no invariant aborted — the same signal the libFuzzer build
// gives CI, minus coverage guidance.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "fuzz_util.hpp"

namespace {

namespace fs = std::filesystem;
using dr::Bytes;

void run_one(const Bytes& input) {
  LLVMFuzzerTestOneInput(input.data(), input.size());
}

int run_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "driver: cannot read %s\n", p.string().c_str());
    return 1;
  }
  Bytes data((std::istreambuf_iterator<char>(in)),
             std::istreambuf_iterator<char>());
  run_one(data);
  return 0;
}

int make_corpus(const fs::path& dir) {
  fs::create_directories(dir);
  int i = 0;
  for (const Bytes& seed : dr::fuzz::seed_inputs()) {
    char name[32];
    std::snprintf(name, sizeof(name), "seed-%03d.bin", i++);
    std::ofstream out(dir / name, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(seed.data()),
              static_cast<std::streamsize>(seed.size()));
    if (!out) {
      std::fprintf(stderr, "driver: cannot write %s\n",
                   (dir / name).string().c_str());
      return 1;
    }
  }
  std::printf("driver: wrote %d seeds to %s\n", i, dir.string().c_str());
  return 0;
}

void deterministic_sweep() {
  const std::vector<Bytes> seeds = dr::fuzz::seed_inputs();
  std::size_t executed = 0;
  for (const Bytes& seed : seeds) {
    run_one(seed);
    ++executed;
    for (std::size_t cut = 0; cut < seed.size(); ++cut) {
      run_one(Bytes(seed.begin(), seed.begin() + static_cast<long>(cut)));
      ++executed;
    }
    for (std::size_t bit = 0; bit < seed.size() * 8; ++bit) {
      Bytes mutated = seed;
      mutated[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
      run_one(mutated);
      ++executed;
    }
  }
  dr::Xoshiro256 rng(0xDA6F);
  for (int i = 0; i < 20'000; ++i) {
    Bytes junk(rng.below(256));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng());
    run_one(junk);
    ++executed;
  }
  std::printf("driver: %zu deterministic inputs, no invariant violated\n",
              executed);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::strcmp(argv[1], "--make-corpus") == 0) {
    if (argc != 3) {
      std::fprintf(stderr, "usage: %s --make-corpus DIR\n", argv[0]);
      return 2;
    }
    return make_corpus(argv[2]);
  }
  std::size_t files = 0;
  for (int i = 1; i < argc; ++i) {
    const fs::path p(argv[i]);
    if (fs::is_directory(p)) {
      for (const auto& e : fs::directory_iterator(p)) {
        if (e.is_regular_file()) {
          if (run_file(e.path()) != 0) return 1;
          ++files;
        }
      }
    } else {
      if (run_file(p) != 0) return 1;
      ++files;
    }
  }
  if (files > 0) {
    std::printf("driver: replayed %zu corpus files\n", files);
  }
  deterministic_sweep();
  return 0;
}
