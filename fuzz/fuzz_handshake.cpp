// Fuzzes net::decode_handshake — the first bytes read on every TCP link.
// Checked invariants:
//   * no crash on arbitrary bytes;
//   * acceptance implies the fixed fields really hold (magic, version): a
//     handshake decoder that waves through a wrong magic would let any port
//     scanner join the committee's transport mesh;
//   * the codec is bijective on accepted inputs: encode(decode(x)) == x,
//     so a handshake can be logged/replayed byte-exactly.
#include <cstddef>
#include <cstdint>

#include "common/assert.hpp"
#include "fuzz_util.hpp"
#include "net/frame.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  using namespace dr;
  auto decoded = net::decode_handshake(BytesView{data, size});
  if (!decoded.ok()) return 0;
  const net::Handshake hs = decoded.value();
  DR_ASSERT_MSG(size == net::kHandshakeWireBytes,
                "handshake accepted with wrong wire size");
  DR_ASSERT_MSG(hs.magic == net::kWireMagic, "handshake accepted bad magic");
  DR_ASSERT_MSG(hs.version == net::kWireVersion,
                "handshake accepted bad version");
  const Bytes re = net::encode_handshake(hs);
  DR_ASSERT_MSG(re.size() == size && std::equal(re.begin(), re.end(), data),
                "handshake codec is not bijective on accepted input");
  return 0;
}

namespace dr::fuzz {

std::vector<Bytes> seed_inputs() {
  using namespace dr::net;
  std::vector<Bytes> seeds;
  // Valid handshakes for small committees.
  for (std::uint32_t f = 0; f <= 2; ++f) {
    Handshake hs;
    hs.pid = f;
    hs.n = 3 * f + 1;
    hs.f = f;
    seeds.push_back(encode_handshake(hs));
  }
  // Wrong magic, wrong version, truncated, oversized.
  {
    Handshake hs;
    hs.magic = 0x4b434148;  // "HACK"
    seeds.push_back(encode_handshake(hs));
  }
  {
    Handshake hs;
    hs.version = 2;
    seeds.push_back(encode_handshake(hs));
  }
  Bytes ok = encode_handshake(Handshake{});
  Bytes cut(ok.begin(), ok.begin() + 7);
  seeds.push_back(cut);
  Bytes extra = ok;
  extra.push_back(0x00);
  seeds.push_back(extra);
  return seeds;
}

}  // namespace dr::fuzz
