// Fuzzes dag::Vertex::deserialize — the parser behind every r_delivered
// vertex, i.e. the direct Byzantine input surface of Algorithm 2. Checked
// invariants:
//   * no crash / unbounded allocation on arbitrary bytes (the edge-count
//     caps must hold before any reserve());
//   * accepted inputs survive a serialize/deserialize round trip with all
//     fields intact (a lossy codec would let two correct processes disagree
//     about the same delivered vertex, breaking DAG convergence);
//   * structural validation stays pure: validate() never aborts on any
//     parsed vertex, however hostile (rejection is the Byzantine-tolerant
//     path and must stay crash-free).
#include <cstddef>
#include <cstdint>

#include "common/assert.hpp"
#include "dag/vertex.hpp"
#include "fuzz_util.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  using namespace dr;
  auto parsed = dag::Vertex::deserialize(BytesView{data, size});
  if (!parsed.ok()) return 0;
  dag::Vertex v = std::move(parsed).value();

  // Round trip: re-encoding the parsed vertex must preserve every field.
  auto again = dag::Vertex::deserialize(v.serialize());
  DR_ASSERT_MSG(again.ok(), "re-encoded vertex failed to parse");
  const dag::Vertex& w = again.value();
  DR_ASSERT_MSG(w.block == v.block && w.strong_edges == v.strong_edges &&
                    w.weak_edges == v.weak_edges &&
                    w.has_coin_share == v.has_coin_share &&
                    (!v.has_coin_share || w.coin_share == v.coin_share),
                "vertex codec round trip lost a field");
  return 0;
}

namespace dr::fuzz {

std::vector<Bytes> seed_inputs() {
  std::vector<Bytes> seeds;
  // Minimal vertex: empty block, no edges, no coin share.
  seeds.push_back(dag::Vertex{}.serialize());
  // Typical round-2 vertex of an f=1 committee.
  {
    dag::Vertex v;
    v.round = 2;
    v.source = 1;
    v.block = Bytes(48, 0x42);
    v.strong_edges = {0, 1, 2};
    seeds.push_back(v.serialize());
  }
  // Weak edges + piggybacked coin share (paper footnote 1 shape).
  {
    dag::Vertex v;
    v.round = 5;
    v.source = 3;
    v.block = Bytes(16, 0x07);
    v.strong_edges = {0, 2, 3};
    v.weak_edges = {dag::VertexId{1, 2}, dag::VertexId{2, 1}};
    v.has_coin_share = true;
    v.coin_share = 0x1234'5678'9abc'def0ULL;
    seeds.push_back(v.serialize());
  }
  // Hostile shapes: edge-count prefixes at the caps.
  {
    ByteWriter w(32);
    w.blob(BytesView{});
    w.u32(4096);  // strong-edge count at the cap, but no edge bytes
    seeds.push_back(std::move(w).take());
  }
  {
    ByteWriter w(32);
    w.blob(BytesView{});
    w.u32(0);
    w.u32(1u << 20);  // weak-edge count at the cap
    seeds.push_back(std::move(w).take());
  }
  return seeds;
}

}  // namespace dr::fuzz
