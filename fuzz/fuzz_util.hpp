// Shared shape of the libFuzzer harnesses. Each harness implements:
//   LLVMFuzzerTestOneInput — the entry point libFuzzer drives (and the
//     standalone driver calls when built without -fsanitize=fuzzer);
//   seed_inputs — structurally interesting inputs, produced with the real
//     encoders. They are written to fuzz/corpus/<harness>/ by
//     `<harness> --make-corpus DIR` and double as the base inputs of the
//     standalone driver's deterministic sweep.
// Invariant violations abort (DR_ASSERT), which both libFuzzer and ctest
// observe as a crash.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/bytes.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

namespace dr::fuzz {

/// Canonical seeds for this harness, built with the production encoders.
std::vector<Bytes> seed_inputs();

}  // namespace dr::fuzz
