// Fuzzes the client ingress tier's parsers — the first code that touches
// bytes from an untrusted TCP client (DESIGN.md §13). Three surfaces, picked
// by the first input byte:
//   0: decode_client_hello — fixed-size hello from the client;
//   1: decode_server_hello — what the client trusts from a server;
//   2: decode_ingress_message — tagged SubmitBatch / SubmitReply /
//      CommitAcks payloads, including a re-encode round-trip check;
//   3: a chunked FrameDecoder(0) feed (source check off, as ingress
//      sessions run it) whose decoded kIngress payloads go through
//      decode_ingress_message, the exact server-side pipeline.
// Checked invariants: no crash / OOM on arbitrary input, every accepted
// message respects the declared bounds, and accepted messages re-encode to
// the bytes that produced them (codec is canonical).
#include <cstddef>
#include <cstdint>

#include "common/assert.hpp"
#include "fuzz_util.hpp"
#include "ingress/wire.hpp"
#include "net/frame.hpp"

namespace {

void check_message(dr::BytesView payload) {
  using namespace dr::ingress;
  const auto msg = decode_ingress_message(payload);
  if (!msg.ok()) return;
  const IngressMessage& m = msg.value();
  const int set = (m.batch.has_value() ? 1 : 0) +
                  (m.reply.has_value() ? 1 : 0) +
                  (m.acks.has_value() ? 1 : 0);
  DR_ASSERT_MSG(set == 1, "decoded message must set exactly one variant");
  dr::Bytes reencoded;
  if (m.batch) {
    DR_ASSERT_MSG(m.batch->txs.size() <= kMaxBatchTxs,
                  "decoder admitted an oversized batch");
    for (const TxSubmit& tx : m.batch->txs) {
      DR_ASSERT_MSG(tx.payload.size() <= kMaxTxBytes,
                    "decoder admitted an oversized tx payload");
    }
    reencoded = encode_submit_batch(*m.batch);
  } else if (m.reply) {
    DR_ASSERT_MSG(m.reply->entries.size() <= kMaxBatchTxs,
                  "decoder admitted an oversized reply");
    reencoded = encode_submit_reply(*m.reply);
  } else {
    DR_ASSERT_MSG(m.acks->acks.size() <= kMaxAckEntries,
                  "decoder admitted an oversized ack block");
    reencoded = encode_commit_acks(*m.acks);
  }
  DR_ASSERT_MSG(reencoded == dr::Bytes(payload.begin(), payload.end()),
                "accepted message did not re-encode canonically");
}

void feed_frames(dr::BytesView stream) {
  using namespace dr;
  net::FrameDecoder dec(0);  // ingress sessions disable the source check
  std::size_t off = 0;
  std::size_t chunk = 1;
  while (off < stream.size()) {
    const std::size_t len = std::min(chunk, stream.size() - off);
    dec.feed(stream.subspan(off, len));
    off += len;
    chunk = (chunk * 5 + 1) % 19 + 1;
    while (auto f = dec.next()) {
      if (f->channel == net::Channel::kIngress) {
        check_message(f->payload.view());
      }
    }
    if (dec.dead()) {
      DR_ASSERT_MSG(!dec.next().has_value(), "dead decoder yielded a frame");
      break;
    }
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  using namespace dr;
  using namespace dr::ingress;
  if (size == 0) return 0;
  const std::uint8_t surface = data[0] % 4;
  const BytesView body{data + 1, size - 1};
  switch (surface) {
    case 0: {
      const auto hello = decode_client_hello(body);
      if (hello.ok()) {
        DR_ASSERT_MSG(hello.value().magic == kIngressMagic,
                      "accepted hello with wrong magic");
        DR_ASSERT_MSG(hello.value().version == kIngressVersion,
                      "accepted hello with wrong version");
      }
      break;
    }
    case 1: {
      const auto hello = decode_server_hello(body);
      if (hello.ok()) {
        DR_ASSERT_MSG(hello.value().magic == kIngressMagic,
                      "accepted server hello with wrong magic");
      }
      break;
    }
    case 2:
      check_message(body);
      break;
    default:
      feed_frames(body);
      break;
  }
  return 0;
}

namespace dr::fuzz {

std::vector<Bytes> seed_inputs() {
  using namespace dr::ingress;
  std::vector<Bytes> seeds;
  auto with_surface = [](std::uint8_t surface, const Bytes& body) {
    Bytes s;
    s.push_back(surface);
    s.insert(s.end(), body.begin(), body.end());
    return s;
  };

  // Well-formed hellos on both surfaces.
  seeds.push_back(with_surface(0, encode_client_hello(ClientHello{})));
  ServerHello ok;
  ok.session_id = 42;
  seeds.push_back(with_surface(1, encode_server_hello(ok)));
  ServerHello full;
  full.status = HelloStatus::kFull;
  seeds.push_back(with_surface(1, encode_server_hello(full)));
  // Violations: wrong magic, wrong version, truncated.
  Bytes bad_magic = encode_client_hello(ClientHello{});
  bad_magic[0] ^= 0x01;
  seeds.push_back(with_surface(0, bad_magic));
  ClientHello v9;
  v9.version = 9;
  seeds.push_back(with_surface(0, encode_client_hello(v9)));
  Bytes short_hello = encode_client_hello(ClientHello{});
  short_hello.resize(3);
  seeds.push_back(with_surface(0, short_hello));

  // Each tagged message shape.
  SubmitBatch batch;
  batch.client_id = 7;
  batch.txs.push_back(TxSubmit{1, Bytes(32, 0xaa)});
  batch.txs.push_back(TxSubmit{2, Bytes{}});
  const Bytes batch_bytes = encode_submit_batch(batch);
  seeds.push_back(with_surface(2, batch_bytes));
  SubmitReply reply;
  reply.client_id = 7;
  reply.entries.push_back(ReplyEntry{1, SubmitStatus::kAccepted});
  reply.entries.push_back(ReplyEntry{2, SubmitStatus::kBusy});
  seeds.push_back(with_surface(2, encode_submit_reply(reply)));
  CommitAcks acks;
  acks.acks.push_back(AckEntry{7, 1, 12'345});
  seeds.push_back(with_surface(2, encode_commit_acks(acks)));
  // Violations: unknown tag, truncated batch, trailing byte, bad status.
  seeds.push_back(with_surface(2, Bytes{0x09, 0x00}));
  Bytes truncated = batch_bytes;
  truncated.resize(truncated.size() / 2);
  seeds.push_back(with_surface(2, truncated));
  Bytes trailing = batch_bytes;
  trailing.push_back(0x00);
  seeds.push_back(with_surface(2, trailing));
  Bytes bad_status = encode_submit_reply(reply);
  bad_status.back() = 0x66;
  seeds.push_back(with_surface(2, bad_status));

  // Framed ingress traffic: one batch frame, a frame pair, one truncated.
  const Bytes framed =
      net::encode_frame(0, net::Channel::kIngress, BytesView(batch_bytes));
  seeds.push_back(with_surface(3, framed));
  Bytes pair = framed;
  const Bytes acks_frame = net::encode_frame(
      0, net::Channel::kIngress, BytesView(encode_commit_acks(acks)));
  pair.insert(pair.end(), acks_frame.begin(), acks_frame.end());
  seeds.push_back(with_surface(3, pair));
  Bytes cut = framed;
  cut.resize(cut.size() - 5);
  seeds.push_back(with_surface(3, cut));

  return seeds;
}

}  // namespace dr::fuzz
