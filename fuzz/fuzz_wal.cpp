// Fuzzes the WAL recovery path: storage::WalDecoder over arbitrary bytes,
// then the full crash-recovery pipeline (begin_restore / restore_deliver /
// restore_own_proposal / finish_restore) over whatever records survive.
// Checked invariants:
//   * no crash / unbounded allocation on arbitrary bytes, however the file
//     was torn or bit-rotted (the length cap must hold before any reserve);
//   * every record the decoder yields honors its documented guarantees
//     (valid type, source < n, round >= 1, proposals only from the local
//     process) — downstream replay relies on them without re-checking;
//   * consumed() never runs past the bytes fed, and a dead decoder always
//     carries an error message (recovery logs it and resets storage);
//   * replaying the surviving records through a DagBuilder restore trips
//     none of Dag::insert's structural contracts: a record that would
//     violate them must be rejected by validation, not inserted.
#include <cstddef>
#include <cstdint>

#include "common/assert.hpp"
#include "dag/builder.hpp"
#include "fuzz_util.hpp"
#include "rbc/rbc.hpp"
#include "storage/wal.hpp"

namespace {

/// Restore never broadcasts; this stub turns any attempt into an abort.
class NoopRbc final : public dr::rbc::ReliableBroadcast {
 public:
  void set_deliver(DeliverFn fn) override { deliver_ = std::move(fn); }
  void broadcast(dr::Round, dr::net::Payload) override { ++broadcasts; }
  std::uint64_t broadcasts = 0;

 private:
  DeliverFn deliver_;
};

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  using namespace dr;
  const Committee committee = Committee::for_f(1);
  const ProcessId pid = 0;

  storage::WalDecoder decoder(committee, pid);
  std::vector<storage::WalRecord> records;
  // Irregular chunk sizes exercise the partial-header/partial-payload
  // buffering paths, not just the all-at-once decode.
  std::size_t pos = 0, chunk = 1;
  while (pos < size) {
    const std::size_t len = std::min(chunk, size - pos);
    decoder.feed(BytesView{data + pos, len});
    pos += len;
    chunk = (chunk * 7 + 3) % 23 + 1;
    while (auto rec = decoder.next()) {
      DR_ASSERT_MSG(rec->round >= 1, "decoder yielded a genesis-round record");
      DR_ASSERT_MSG(rec->source < committee.n,
                    "decoder yielded an out-of-committee source");
      DR_ASSERT_MSG(rec->type == storage::WalRecordType::kVertex ||
                        rec->type == storage::WalRecordType::kProposal,
                    "decoder yielded an unknown record type");
      DR_ASSERT_MSG(
          rec->type != storage::WalRecordType::kProposal || rec->source == pid,
          "decoder yielded a foreign proposal");
      records.push_back(std::move(*rec));
    }
  }
  DR_ASSERT_MSG(decoder.consumed() <= size, "consumed() ran past the input");
  DR_ASSERT_MSG(!decoder.dead() || !decoder.error().empty(),
                "dead decoder with no error message");
  if (decoder.dead()) return 0;  // recovery would reset storage here

  // Crash-recovery replay: surviving records feed the builder exactly like
  // VertexStore::recover + Node::recover_from_store. Dag::insert's contracts
  // (strong-edge quorum, parent presence, no duplicates) abort the process
  // if validation ever lets a hostile record through.
  NoopRbc rbc;
  dag::DagBuilder builder(committee, pid, rbc, dag::BuilderOptions{});
  builder.begin_restore(0);
  for (storage::WalRecord& rec : records) {
    if (rec.type == storage::WalRecordType::kVertex) {
      builder.restore_deliver(rec.source, rec.round, std::move(rec.payload));
    } else {
      builder.restore_own_proposal(rec.round, std::move(rec.payload));
    }
  }
  builder.finish_restore();
  DR_ASSERT_MSG(rbc.broadcasts == 0, "restore must not broadcast");
  return 0;
}

namespace dr::fuzz {

std::vector<Bytes> seed_inputs() {
  using namespace dr::storage;
  const Committee committee = Committee::for_f(1);
  const auto vertex_payload = [&](ProcessId source, Round round) {
    dag::Vertex v;
    v.source = source;
    v.round = round;
    v.block = Bytes(24, static_cast<std::uint8_t>(round));
    for (ProcessId p = 0; p < committee.quorum(); ++p) {
      v.strong_edges.push_back(p);
    }
    return v.serialize();
  };
  const auto record = [&](WalRecordType type, ProcessId source, Round round,
                          Bytes payload) {
    WalRecord rec;
    rec.type = type;
    rec.source = source;
    rec.round = round;
    rec.payload = std::move(payload);
    return encode_wal_record(rec);
  };
  const auto append = [](Bytes& stream, const Bytes& tail) {
    stream.insert(stream.end(), tail.begin(), tail.end());
  };

  std::vector<Bytes> seeds;
  // Bare header: a WAL that crashed before the first append.
  seeds.push_back(encode_wal_header(committee, 0));
  // One full round of vertices plus the local process's own proposal — the
  // shape recovery sees after a clean single-round run.
  {
    Bytes s = encode_wal_header(committee, 0);
    for (ProcessId p = 0; p < committee.n; ++p) {
      append(s, record(WalRecordType::kVertex, p, 1, vertex_payload(p, 1)));
    }
    append(s, record(WalRecordType::kProposal, 0, 2, vertex_payload(0, 2)));
    seeds.push_back(std::move(s));
  }
  // Torn tail: the second record cut mid-payload (crash during append).
  {
    Bytes s = encode_wal_header(committee, 0);
    append(s, record(WalRecordType::kVertex, 1, 1, vertex_payload(1, 1)));
    const Bytes torn =
        record(WalRecordType::kVertex, 2, 1, vertex_payload(2, 1));
    s.insert(s.end(), torn.begin(),
             torn.begin() + static_cast<std::ptrdiff_t>(torn.size() / 2));
    seeds.push_back(std::move(s));
  }
  // Foreign header: a data dir copied from another process.
  {
    Bytes s = encode_wal_header(committee, 2);
    append(s, record(WalRecordType::kVertex, 1, 1, vertex_payload(1, 1)));
    seeds.push_back(std::move(s));
  }
  // Bit rot: a valid stream with one payload byte flipped (CRC must catch).
  {
    Bytes s = encode_wal_header(committee, 0);
    append(s, record(WalRecordType::kVertex, 3, 1, vertex_payload(3, 1)));
    s.back() ^= 0x20;
    seeds.push_back(std::move(s));
  }
  return seeds;
}

}  // namespace dr::fuzz
