// Fuzzes the stream FrameDecoder — the first parser that touches bytes from
// another machine. Checked invariants:
//   * no crash / OOM on arbitrary chunked input;
//   * every popped frame respects the header contract (payload bound, valid
//     channel, in-range source);
//   * the dead state is absorbing: after a protocol violation no further
//     frames appear (resync inside a corrupt length-prefixed stream would be
//     a framing-confusion bug, the classic transport-layer equivocation
//     vector).
#include <cstddef>
#include <cstdint>

#include "common/assert.hpp"
#include "crypto/sha256.hpp"
#include "fuzz_util.hpp"
#include "net/frame.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  using namespace dr;
  // First byte picks the committee bound; the rest is the byte stream.
  if (size == 0) return 0;
  const std::uint32_t n = data[0] % 8;  // 0 disables the source check
  BytesView stream{data + 1, size - 1};

  // SHA-256 backend differential: the dispatched implementation (SHA-NI
  // where the CPU has it) must be bit-identical to the portable compressor
  // on every fuzz input, not just the property-test distribution.
  DR_ASSERT_MSG(crypto::sha256(stream) == crypto::sha256_portable(stream),
                "SHA-256 backends diverged");

  net::FrameDecoder dec(n);
  std::size_t popped = 0;
  // Feed in irregular chunk sizes derived from the input itself, so the
  // fuzzer explores header/payload splits across feed() boundaries.
  std::size_t off = 0;
  std::size_t chunk = 1;
  while (off < stream.size()) {
    const std::size_t len = std::min(chunk, stream.size() - off);
    dec.feed(stream.subspan(off, len));
    off += len;
    chunk = (chunk * 7 + 3) % 23 + 1;
    while (auto f = dec.next()) {
      ++popped;
      DR_ASSERT_MSG(f->payload.size() <= net::kMaxFramePayload,
                    "decoder emitted an oversized payload");
      DR_ASSERT_MSG(net::channel_valid(static_cast<std::uint32_t>(f->channel)),
                    "decoder emitted an invalid channel");
      DR_ASSERT_MSG(n == 0 || f->from < n,
                    "decoder emitted an out-of-range source");
    }
    if (dec.dead()) {
      // Absorbing dead state: keep feeding, nothing may come out.
      dec.feed(stream.subspan(0, std::min<std::size_t>(stream.size(), 64)));
      DR_ASSERT_MSG(!dec.next().has_value(), "dead decoder yielded a frame");
      DR_ASSERT_MSG(!dec.error().empty(), "dead decoder carries no reason");
      break;
    }
  }
  (void)popped;
  return 0;
}

namespace dr::fuzz {

std::vector<Bytes> seed_inputs() {
  using namespace dr::net;
  std::vector<Bytes> seeds;
  auto with_n = [](std::uint8_t n, const Bytes& stream) {
    Bytes s;
    s.push_back(n);
    s.insert(s.end(), stream.begin(), stream.end());
    return s;
  };
  // One well-formed frame per channel.
  for (std::uint32_t ch = 1; channel_valid(ch); ++ch) {
    seeds.push_back(with_n(
        4, encode_frame(ch % 4, static_cast<Channel>(ch),
                        Bytes{0xde, 0xad, 0xbe, 0xef})));
  }
  // Two frames back-to-back, and one truncated mid-payload.
  Bytes two = encode_frame(1, Channel::kBracha, Bytes(32, 0x11));
  const Bytes second = encode_frame(2, Channel::kCoin, Bytes(5, 0x22));
  two.insert(two.end(), second.begin(), second.end());
  seeds.push_back(with_n(4, two));
  Bytes truncated = encode_frame(0, Channel::kAvid, Bytes(64, 0x33));
  truncated.resize(truncated.size() - 17);
  seeds.push_back(with_n(4, truncated));
  // Protocol violations: oversized length prefix, unknown channel, bad
  // source — each must flip the decoder dead.
  {
    ByteWriter w(16);
    w.u32(kMaxFramePayload + 1);
    w.u32(0);
    w.u32(0);
    seeds.push_back(with_n(4, std::move(w).take()));
  }
  {
    ByteWriter w(16);
    w.u32(4);
    w.u32(0);
    w.u32(0xffu);  // no such channel
    w.u32(0);
    seeds.push_back(with_n(4, std::move(w).take()));
  }
  seeds.push_back(with_n(2, encode_frame(7, Channel::kBracha, Bytes(3, 1))));
  return seeds;
}

}  // namespace dr::fuzz
