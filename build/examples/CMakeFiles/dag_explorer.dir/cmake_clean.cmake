file(REMOVE_RECURSE
  "CMakeFiles/dag_explorer.dir/dag_explorer.cpp.o"
  "CMakeFiles/dag_explorer.dir/dag_explorer.cpp.o.d"
  "dag_explorer"
  "dag_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dag_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
