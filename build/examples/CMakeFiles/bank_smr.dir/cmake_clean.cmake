file(REMOVE_RECURSE
  "CMakeFiles/bank_smr.dir/bank_smr.cpp.o"
  "CMakeFiles/bank_smr.dir/bank_smr.cpp.o.d"
  "bank_smr"
  "bank_smr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bank_smr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
