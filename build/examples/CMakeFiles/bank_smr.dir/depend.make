# Empty dependencies file for bank_smr.
# This may be replaced when dependencies are built.
