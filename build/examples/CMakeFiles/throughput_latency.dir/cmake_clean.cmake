file(REMOVE_RECURSE
  "CMakeFiles/throughput_latency.dir/throughput_latency.cpp.o"
  "CMakeFiles/throughput_latency.dir/throughput_latency.cpp.o.d"
  "throughput_latency"
  "throughput_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/throughput_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
