# Empty compiler generated dependencies file for throughput_latency.
# This may be replaced when dependencies are built.
