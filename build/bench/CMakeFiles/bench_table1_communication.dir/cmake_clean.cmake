file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_communication.dir/bench_table1_communication.cpp.o"
  "CMakeFiles/bench_table1_communication.dir/bench_table1_communication.cpp.o.d"
  "bench_table1_communication"
  "bench_table1_communication.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_communication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
