# Empty compiler generated dependencies file for bench_fig1_dag_structure.
# This may be replaced when dependencies are built.
