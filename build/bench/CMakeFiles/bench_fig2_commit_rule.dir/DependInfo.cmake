
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig2_commit_rule.cpp" "bench/CMakeFiles/bench_fig2_commit_rule.dir/bench_fig2_commit_rule.cpp.o" "gcc" "bench/CMakeFiles/bench_fig2_commit_rule.dir/bench_fig2_commit_rule.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/smr/CMakeFiles/dr_smr.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/dr_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/dag/CMakeFiles/dr_dag.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/dumbo/CMakeFiles/dr_dumbo.dir/DependInfo.cmake"
  "/root/repo/build/src/rbc/CMakeFiles/dr_rbc.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/vaba/CMakeFiles/dr_vaba.dir/DependInfo.cmake"
  "/root/repo/build/src/coin/CMakeFiles/dr_coin.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/dr_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
