file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_commit_rule.dir/bench_fig2_commit_rule.cpp.o"
  "CMakeFiles/bench_fig2_commit_rule.dir/bench_fig2_commit_rule.cpp.o.d"
  "bench_fig2_commit_rule"
  "bench_fig2_commit_rule.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_commit_rule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
