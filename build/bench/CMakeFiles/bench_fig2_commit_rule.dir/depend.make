# Empty dependencies file for bench_fig2_commit_rule.
# This may be replaced when dependencies are built.
