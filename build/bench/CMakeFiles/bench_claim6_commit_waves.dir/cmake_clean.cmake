file(REMOVE_RECURSE
  "CMakeFiles/bench_claim6_commit_waves.dir/bench_claim6_commit_waves.cpp.o"
  "CMakeFiles/bench_claim6_commit_waves.dir/bench_claim6_commit_waves.cpp.o.d"
  "bench_claim6_commit_waves"
  "bench_claim6_commit_waves.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_claim6_commit_waves.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
