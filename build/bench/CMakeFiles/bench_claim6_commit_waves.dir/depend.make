# Empty dependencies file for bench_claim6_commit_waves.
# This may be replaced when dependencies are built.
