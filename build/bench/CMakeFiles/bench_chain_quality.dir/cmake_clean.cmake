file(REMOVE_RECURSE
  "CMakeFiles/bench_chain_quality.dir/bench_chain_quality.cpp.o"
  "CMakeFiles/bench_chain_quality.dir/bench_chain_quality.cpp.o.d"
  "bench_chain_quality"
  "bench_chain_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_chain_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
