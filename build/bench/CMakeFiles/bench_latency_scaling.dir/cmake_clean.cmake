file(REMOVE_RECURSE
  "CMakeFiles/bench_latency_scaling.dir/bench_latency_scaling.cpp.o"
  "CMakeFiles/bench_latency_scaling.dir/bench_latency_scaling.cpp.o.d"
  "bench_latency_scaling"
  "bench_latency_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_latency_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
