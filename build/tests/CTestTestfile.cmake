# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_crypto[1]_include.cmake")
include("/root/repo/build/tests/test_reed_solomon[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_coin[1]_include.cmake")
include("/root/repo/build/tests/test_rbc[1]_include.cmake")
include("/root/repo/build/tests/test_dag[1]_include.cmake")
include("/root/repo/build/tests/test_builder[1]_include.cmake")
include("/root/repo/build/tests/test_dag_rider[1]_include.cmake")
include("/root/repo/build/tests/test_baselines[1]_include.cmake")
include("/root/repo/build/tests/test_gc[1]_include.cmake")
include("/root/repo/build/tests/test_txpool[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_app[1]_include.cmake")
include("/root/repo/build/tests/test_aleph[1]_include.cmake")
include("/root/repo/build/tests/test_fuzz[1]_include.cmake")
