# Empty compiler generated dependencies file for test_coin.
# This may be replaced when dependencies are built.
