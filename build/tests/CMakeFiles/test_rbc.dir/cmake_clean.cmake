file(REMOVE_RECURSE
  "CMakeFiles/test_rbc.dir/test_rbc.cpp.o"
  "CMakeFiles/test_rbc.dir/test_rbc.cpp.o.d"
  "test_rbc"
  "test_rbc.pdb"
  "test_rbc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rbc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
