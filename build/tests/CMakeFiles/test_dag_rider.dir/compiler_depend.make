# Empty compiler generated dependencies file for test_dag_rider.
# This may be replaced when dependencies are built.
