file(REMOVE_RECURSE
  "CMakeFiles/test_dag_rider.dir/test_dag_rider.cpp.o"
  "CMakeFiles/test_dag_rider.dir/test_dag_rider.cpp.o.d"
  "test_dag_rider"
  "test_dag_rider.pdb"
  "test_dag_rider[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dag_rider.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
