# Empty compiler generated dependencies file for test_aleph.
# This may be replaced when dependencies are built.
