file(REMOVE_RECURSE
  "CMakeFiles/test_aleph.dir/test_aleph.cpp.o"
  "CMakeFiles/test_aleph.dir/test_aleph.cpp.o.d"
  "test_aleph"
  "test_aleph.pdb"
  "test_aleph[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_aleph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
