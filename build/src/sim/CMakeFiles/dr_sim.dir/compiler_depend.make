# Empty compiler generated dependencies file for dr_sim.
# This may be replaced when dependencies are built.
