file(REMOVE_RECURSE
  "libdr_sim.a"
)
