file(REMOVE_RECURSE
  "CMakeFiles/dr_sim.dir/network.cpp.o"
  "CMakeFiles/dr_sim.dir/network.cpp.o.d"
  "CMakeFiles/dr_sim.dir/simulator.cpp.o"
  "CMakeFiles/dr_sim.dir/simulator.cpp.o.d"
  "libdr_sim.a"
  "libdr_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dr_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
