file(REMOVE_RECURSE
  "CMakeFiles/dr_aleph.dir/aleph.cpp.o"
  "CMakeFiles/dr_aleph.dir/aleph.cpp.o.d"
  "libdr_aleph.a"
  "libdr_aleph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dr_aleph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
