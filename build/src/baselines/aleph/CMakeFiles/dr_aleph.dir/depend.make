# Empty dependencies file for dr_aleph.
# This may be replaced when dependencies are built.
