file(REMOVE_RECURSE
  "libdr_aleph.a"
)
