# Empty compiler generated dependencies file for dr_dumbo.
# This may be replaced when dependencies are built.
