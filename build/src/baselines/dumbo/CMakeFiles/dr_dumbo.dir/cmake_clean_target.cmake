file(REMOVE_RECURSE
  "libdr_dumbo.a"
)
