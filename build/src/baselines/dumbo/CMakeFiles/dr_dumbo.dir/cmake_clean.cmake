file(REMOVE_RECURSE
  "CMakeFiles/dr_dumbo.dir/dumbo.cpp.o"
  "CMakeFiles/dr_dumbo.dir/dumbo.cpp.o.d"
  "libdr_dumbo.a"
  "libdr_dumbo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dr_dumbo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
