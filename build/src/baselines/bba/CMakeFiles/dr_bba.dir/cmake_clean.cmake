file(REMOVE_RECURSE
  "CMakeFiles/dr_bba.dir/binary_agreement.cpp.o"
  "CMakeFiles/dr_bba.dir/binary_agreement.cpp.o.d"
  "libdr_bba.a"
  "libdr_bba.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dr_bba.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
