# Empty compiler generated dependencies file for dr_bba.
# This may be replaced when dependencies are built.
