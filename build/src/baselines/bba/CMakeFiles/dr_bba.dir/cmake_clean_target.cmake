file(REMOVE_RECURSE
  "libdr_bba.a"
)
