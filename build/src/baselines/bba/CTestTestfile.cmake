# CMake generated Testfile for 
# Source directory: /root/repo/src/baselines/bba
# Build directory: /root/repo/build/src/baselines/bba
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
