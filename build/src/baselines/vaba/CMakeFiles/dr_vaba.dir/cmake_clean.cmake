file(REMOVE_RECURSE
  "CMakeFiles/dr_vaba.dir/vaba.cpp.o"
  "CMakeFiles/dr_vaba.dir/vaba.cpp.o.d"
  "libdr_vaba.a"
  "libdr_vaba.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dr_vaba.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
