file(REMOVE_RECURSE
  "libdr_vaba.a"
)
