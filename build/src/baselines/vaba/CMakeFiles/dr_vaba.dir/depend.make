# Empty dependencies file for dr_vaba.
# This may be replaced when dependencies are built.
