# CMake generated Testfile for 
# Source directory: /root/repo/src/baselines/vaba
# Build directory: /root/repo/build/src/baselines/vaba
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
