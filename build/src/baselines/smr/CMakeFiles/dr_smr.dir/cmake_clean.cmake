file(REMOVE_RECURSE
  "CMakeFiles/dr_smr.dir/slot_smr.cpp.o"
  "CMakeFiles/dr_smr.dir/slot_smr.cpp.o.d"
  "libdr_smr.a"
  "libdr_smr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dr_smr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
