# Empty compiler generated dependencies file for dr_smr.
# This may be replaced when dependencies are built.
