file(REMOVE_RECURSE
  "libdr_smr.a"
)
