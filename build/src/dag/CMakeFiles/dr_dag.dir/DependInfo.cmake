
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dag/builder.cpp" "src/dag/CMakeFiles/dr_dag.dir/builder.cpp.o" "gcc" "src/dag/CMakeFiles/dr_dag.dir/builder.cpp.o.d"
  "/root/repo/src/dag/dag.cpp" "src/dag/CMakeFiles/dr_dag.dir/dag.cpp.o" "gcc" "src/dag/CMakeFiles/dr_dag.dir/dag.cpp.o.d"
  "/root/repo/src/dag/vertex.cpp" "src/dag/CMakeFiles/dr_dag.dir/vertex.cpp.o" "gcc" "src/dag/CMakeFiles/dr_dag.dir/vertex.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dr_common.dir/DependInfo.cmake"
  "/root/repo/build/src/rbc/CMakeFiles/dr_rbc.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/dr_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dr_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
