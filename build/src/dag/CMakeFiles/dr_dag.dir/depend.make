# Empty dependencies file for dr_dag.
# This may be replaced when dependencies are built.
