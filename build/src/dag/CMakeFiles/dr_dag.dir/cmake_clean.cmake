file(REMOVE_RECURSE
  "CMakeFiles/dr_dag.dir/builder.cpp.o"
  "CMakeFiles/dr_dag.dir/builder.cpp.o.d"
  "CMakeFiles/dr_dag.dir/dag.cpp.o"
  "CMakeFiles/dr_dag.dir/dag.cpp.o.d"
  "CMakeFiles/dr_dag.dir/vertex.cpp.o"
  "CMakeFiles/dr_dag.dir/vertex.cpp.o.d"
  "libdr_dag.a"
  "libdr_dag.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dr_dag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
