file(REMOVE_RECURSE
  "libdr_dag.a"
)
