file(REMOVE_RECURSE
  "libdr_core.a"
)
