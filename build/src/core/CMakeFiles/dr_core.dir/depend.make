# Empty dependencies file for dr_core.
# This may be replaced when dependencies are built.
