file(REMOVE_RECURSE
  "CMakeFiles/dr_core.dir/byzantine.cpp.o"
  "CMakeFiles/dr_core.dir/byzantine.cpp.o.d"
  "CMakeFiles/dr_core.dir/dag_rider.cpp.o"
  "CMakeFiles/dr_core.dir/dag_rider.cpp.o.d"
  "CMakeFiles/dr_core.dir/system.cpp.o"
  "CMakeFiles/dr_core.dir/system.cpp.o.d"
  "libdr_core.a"
  "libdr_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dr_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
