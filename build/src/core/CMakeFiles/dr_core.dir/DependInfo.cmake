
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/byzantine.cpp" "src/core/CMakeFiles/dr_core.dir/byzantine.cpp.o" "gcc" "src/core/CMakeFiles/dr_core.dir/byzantine.cpp.o.d"
  "/root/repo/src/core/dag_rider.cpp" "src/core/CMakeFiles/dr_core.dir/dag_rider.cpp.o" "gcc" "src/core/CMakeFiles/dr_core.dir/dag_rider.cpp.o.d"
  "/root/repo/src/core/system.cpp" "src/core/CMakeFiles/dr_core.dir/system.cpp.o" "gcc" "src/core/CMakeFiles/dr_core.dir/system.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dr_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/dr_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/coin/CMakeFiles/dr_coin.dir/DependInfo.cmake"
  "/root/repo/build/src/rbc/CMakeFiles/dr_rbc.dir/DependInfo.cmake"
  "/root/repo/build/src/dag/CMakeFiles/dr_dag.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
