file(REMOVE_RECURSE
  "libdr_app.a"
)
