# Empty dependencies file for dr_app.
# This may be replaced when dependencies are built.
