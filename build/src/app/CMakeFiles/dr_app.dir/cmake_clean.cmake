file(REMOVE_RECURSE
  "CMakeFiles/dr_app.dir/kvstore.cpp.o"
  "CMakeFiles/dr_app.dir/kvstore.cpp.o.d"
  "CMakeFiles/dr_app.dir/replicated.cpp.o"
  "CMakeFiles/dr_app.dir/replicated.cpp.o.d"
  "libdr_app.a"
  "libdr_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dr_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
