# Empty compiler generated dependencies file for dr_coin.
# This may be replaced when dependencies are built.
