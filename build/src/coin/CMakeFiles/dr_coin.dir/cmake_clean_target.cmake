file(REMOVE_RECURSE
  "libdr_coin.a"
)
