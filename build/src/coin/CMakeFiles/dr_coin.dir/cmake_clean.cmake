file(REMOVE_RECURSE
  "CMakeFiles/dr_coin.dir/threshold_coin.cpp.o"
  "CMakeFiles/dr_coin.dir/threshold_coin.cpp.o.d"
  "libdr_coin.a"
  "libdr_coin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dr_coin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
