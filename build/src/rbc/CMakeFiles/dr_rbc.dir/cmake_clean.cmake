file(REMOVE_RECURSE
  "CMakeFiles/dr_rbc.dir/avid.cpp.o"
  "CMakeFiles/dr_rbc.dir/avid.cpp.o.d"
  "CMakeFiles/dr_rbc.dir/avid_dispersal.cpp.o"
  "CMakeFiles/dr_rbc.dir/avid_dispersal.cpp.o.d"
  "CMakeFiles/dr_rbc.dir/bracha.cpp.o"
  "CMakeFiles/dr_rbc.dir/bracha.cpp.o.d"
  "CMakeFiles/dr_rbc.dir/bracha_hash.cpp.o"
  "CMakeFiles/dr_rbc.dir/bracha_hash.cpp.o.d"
  "CMakeFiles/dr_rbc.dir/gossip.cpp.o"
  "CMakeFiles/dr_rbc.dir/gossip.cpp.o.d"
  "CMakeFiles/dr_rbc.dir/oracle.cpp.o"
  "CMakeFiles/dr_rbc.dir/oracle.cpp.o.d"
  "libdr_rbc.a"
  "libdr_rbc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dr_rbc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
