
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rbc/avid.cpp" "src/rbc/CMakeFiles/dr_rbc.dir/avid.cpp.o" "gcc" "src/rbc/CMakeFiles/dr_rbc.dir/avid.cpp.o.d"
  "/root/repo/src/rbc/avid_dispersal.cpp" "src/rbc/CMakeFiles/dr_rbc.dir/avid_dispersal.cpp.o" "gcc" "src/rbc/CMakeFiles/dr_rbc.dir/avid_dispersal.cpp.o.d"
  "/root/repo/src/rbc/bracha.cpp" "src/rbc/CMakeFiles/dr_rbc.dir/bracha.cpp.o" "gcc" "src/rbc/CMakeFiles/dr_rbc.dir/bracha.cpp.o.d"
  "/root/repo/src/rbc/bracha_hash.cpp" "src/rbc/CMakeFiles/dr_rbc.dir/bracha_hash.cpp.o" "gcc" "src/rbc/CMakeFiles/dr_rbc.dir/bracha_hash.cpp.o.d"
  "/root/repo/src/rbc/gossip.cpp" "src/rbc/CMakeFiles/dr_rbc.dir/gossip.cpp.o" "gcc" "src/rbc/CMakeFiles/dr_rbc.dir/gossip.cpp.o.d"
  "/root/repo/src/rbc/oracle.cpp" "src/rbc/CMakeFiles/dr_rbc.dir/oracle.cpp.o" "gcc" "src/rbc/CMakeFiles/dr_rbc.dir/oracle.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dr_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/dr_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dr_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
