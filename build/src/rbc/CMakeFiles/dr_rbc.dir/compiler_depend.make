# Empty compiler generated dependencies file for dr_rbc.
# This may be replaced when dependencies are built.
