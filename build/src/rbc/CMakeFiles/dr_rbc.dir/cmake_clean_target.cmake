file(REMOVE_RECURSE
  "libdr_rbc.a"
)
