file(REMOVE_RECURSE
  "libdr_metrics.a"
)
