file(REMOVE_RECURSE
  "CMakeFiles/dr_metrics.dir/table.cpp.o"
  "CMakeFiles/dr_metrics.dir/table.cpp.o.d"
  "libdr_metrics.a"
  "libdr_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dr_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
