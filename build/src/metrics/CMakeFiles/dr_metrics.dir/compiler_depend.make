# Empty compiler generated dependencies file for dr_metrics.
# This may be replaced when dependencies are built.
