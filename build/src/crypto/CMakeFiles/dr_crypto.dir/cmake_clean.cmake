file(REMOVE_RECURSE
  "CMakeFiles/dr_crypto.dir/gf256.cpp.o"
  "CMakeFiles/dr_crypto.dir/gf256.cpp.o.d"
  "CMakeFiles/dr_crypto.dir/merkle.cpp.o"
  "CMakeFiles/dr_crypto.dir/merkle.cpp.o.d"
  "CMakeFiles/dr_crypto.dir/reed_solomon.cpp.o"
  "CMakeFiles/dr_crypto.dir/reed_solomon.cpp.o.d"
  "CMakeFiles/dr_crypto.dir/sha256.cpp.o"
  "CMakeFiles/dr_crypto.dir/sha256.cpp.o.d"
  "CMakeFiles/dr_crypto.dir/shamir.cpp.o"
  "CMakeFiles/dr_crypto.dir/shamir.cpp.o.d"
  "libdr_crypto.a"
  "libdr_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dr_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
