
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crypto/gf256.cpp" "src/crypto/CMakeFiles/dr_crypto.dir/gf256.cpp.o" "gcc" "src/crypto/CMakeFiles/dr_crypto.dir/gf256.cpp.o.d"
  "/root/repo/src/crypto/merkle.cpp" "src/crypto/CMakeFiles/dr_crypto.dir/merkle.cpp.o" "gcc" "src/crypto/CMakeFiles/dr_crypto.dir/merkle.cpp.o.d"
  "/root/repo/src/crypto/reed_solomon.cpp" "src/crypto/CMakeFiles/dr_crypto.dir/reed_solomon.cpp.o" "gcc" "src/crypto/CMakeFiles/dr_crypto.dir/reed_solomon.cpp.o.d"
  "/root/repo/src/crypto/sha256.cpp" "src/crypto/CMakeFiles/dr_crypto.dir/sha256.cpp.o" "gcc" "src/crypto/CMakeFiles/dr_crypto.dir/sha256.cpp.o.d"
  "/root/repo/src/crypto/shamir.cpp" "src/crypto/CMakeFiles/dr_crypto.dir/shamir.cpp.o" "gcc" "src/crypto/CMakeFiles/dr_crypto.dir/shamir.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
