# Empty dependencies file for dr_crypto.
# This may be replaced when dependencies are built.
