file(REMOVE_RECURSE
  "libdr_crypto.a"
)
