file(REMOVE_RECURSE
  "CMakeFiles/dr_txpool.dir/client.cpp.o"
  "CMakeFiles/dr_txpool.dir/client.cpp.o.d"
  "CMakeFiles/dr_txpool.dir/mempool.cpp.o"
  "CMakeFiles/dr_txpool.dir/mempool.cpp.o.d"
  "libdr_txpool.a"
  "libdr_txpool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dr_txpool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
