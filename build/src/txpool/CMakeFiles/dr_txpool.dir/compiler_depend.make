# Empty compiler generated dependencies file for dr_txpool.
# This may be replaced when dependencies are built.
