file(REMOVE_RECURSE
  "libdr_txpool.a"
)
