# Empty compiler generated dependencies file for dr_common.
# This may be replaced when dependencies are built.
