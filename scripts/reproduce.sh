#!/usr/bin/env bash
# Reproduces everything: build, full test suite, every table/figure bench.
# Outputs land in test_output.txt and bench_output.txt at the repo root;
# each bench additionally writes BENCH_<name>.json next to them.
#
#   --smoke    CI-sized run: benches trim their sweeps/workloads (the same
#              flag every bench binary accepts individually).
#   --ordering <p>
#              additionally run the ordering head-to-head
#              (bench_realtime_throughput --ordering <p>, p = dagrider |
#              bullshark | both) — both personalities always run so the p50
#              comparison and BENCH_ordering.json carry both rows.
set -euo pipefail
cd "$(dirname "$0")/.."

SMOKE=""
ORDERING=""
while [ $# -gt 0 ]; do
  case "$1" in
    --smoke) SMOKE="--smoke" ;;
    --ordering)
      [ $# -ge 2 ] || { echo "--ordering needs a value" >&2; exit 2; }
      ORDERING="$2"; shift ;;
    *) echo "usage: $0 [--smoke] [--ordering dagrider|bullshark|both]" >&2
       exit 2 ;;
  esac
  shift
done

# Reuse an existing build tree whatever its generator; configure fresh ones
# with Ninja when available.
if [ ! -f build/CMakeCache.txt ]; then
  if command -v ninja >/dev/null 2>&1; then
    cmake -B build -G Ninja
  else
    cmake -B build
  fi
fi
cmake --build build -j "$(nproc)"

ctest --test-dir build 2>&1 | tee test_output.txt

: > bench_output.txt
for b in build/bench/*; do
  if [ -x "$b" ] && [ -f "$b" ]; then
    name="$(basename "$b")"
    echo "### $name" | tee -a bench_output.txt
    "$b" $SMOKE --json "BENCH_${name}.json" 2>&1 | tee -a bench_output.txt
    echo | tee -a bench_output.txt
  fi
done

if [ -n "$ORDERING" ]; then
  echo "### ordering head-to-head ($ORDERING)" | tee -a bench_output.txt
  build/bench/bench_realtime_throughput $SMOKE --ordering "$ORDERING" \
    --json BENCH_ordering.json 2>&1 | tee -a bench_output.txt
  echo | tee -a bench_output.txt
fi
echo "done: see test_output.txt, bench_output.txt, and BENCH_*.json"
