#include "core/ordering.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/log.hpp"

namespace dr::core {

using dag::VertexId;

const char* to_string(OrderingKind kind) {
  switch (kind) {
    case OrderingKind::kDagRider:
      return "dagrider";
    case OrderingKind::kBullshark:
      return "bullshark";
  }
  return "unknown";
}

std::optional<OrderingKind> parse_ordering(std::string_view name) {
  if (name == "dagrider") return OrderingKind::kDagRider;
  if (name == "bullshark") return OrderingKind::kBullshark;
  return std::nullopt;
}

Round ordering_rounds_per_wave(OrderingKind kind) {
  return kind == OrderingKind::kBullshark ? 2 : 0;
}

OrderingRule::OrderingRule(dag::DagBuilder& builder, coin::Coin& coin)
    : builder_(builder), coin_(coin) {
  builder_.set_wave_ready([this](Wave w) { on_wave_ready(w); });
}

void OrderingRule::restore(Wave decided_wave, std::uint64_t delivered_count,
                           const std::vector<VertexId>& delivered_ids) {
  DR_REQUIRE(decided_wave_ == 0 && next_wave_to_process_ == 1 &&
                 delivered_vertices_.empty() && delivered_count_ == 0,
             "snapshot restore on a non-fresh ordering layer");
  decided_wave_ = decided_wave;
  next_wave_to_process_ = decided_wave + 1;
  delivered_vertices_.insert(delivered_ids.begin(), delivered_ids.end());
  delivered_count_ = delivered_count;
#if DR_CONTRACTS_ENABLED
  decide_monotone_.last_decided = decided_wave;
#endif
}

void OrderingRule::on_wave_ready(Wave w) {
  // WAL replay re-fires every wave boundary; waves the snapshot already
  // recorded as decided are settled and must not be re-evaluated (their
  // deliveries are in the snapshot's delivered set).
  if (w <= decided_wave_) return;
  ready_waves_.insert(w);
  // The personality supplies the wave's candidate: DagRider flips the coin
  // only now that the wave is complete (Alg. 3 line 35 — the adversary
  // cannot learn the leader before the common core is fixed); Bullshark
  // answers from the anchor schedule, or the coin on safety-net waves.
  prepare_wave(w);
  process_ready_waves();
}

void OrderingRule::resolve_candidate(Wave w, ProcessId leader) {
  candidates_.emplace(w, leader);
  process_ready_waves();
}

void OrderingRule::process_ready_waves() {
  // A threshold coin may resolve waves out of order; waves are handled
  // strictly in order so that line 40's look-back always finds the earlier
  // waves' candidates already resolved.
  if (processing_) return;  // guard: coin callbacks can reenter via deliver
  processing_ = true;
  while (ready_waves_.count(next_wave_to_process_) > 0 &&
         candidates_.count(next_wave_to_process_) > 0) {
    const Wave w = next_wave_to_process_;
    ++next_wave_to_process_;
    ready_waves_.erase(w);
    handle_wave(w, candidates_[w]);
  }
  processing_ = false;
}

std::optional<VertexId> OrderingRule::wave_leader_vertex(
    Wave w, ProcessId leader) const {
  const Round r1 = wave_round(w, 1, builder_.options().rounds_per_wave);
  const VertexId id{leader, r1};
  if (builder_.dag().contains(id)) return id;
  return std::nullopt;  // ⊥: leader vertex not (yet) in the local DAG
}

void OrderingRule::handle_wave(Wave w, ProcessId leader_process) {
  const dag::Dag& dag = builder_.dag();
  const Round rpw = builder_.options().rounds_per_wave;
  ++waves_evaluated_;

  // Alg. 3 lines 35-37, threshold per personality: candidate vertex present
  // and commit_threshold(w) last-round vertices with strong paths to it,
  // else no commit in this wave.
  const std::optional<VertexId> leader = wave_leader_vertex(w, leader_process);
  if (!leader.has_value() ||
      dag.strong_support_in_round(wave_round(w, rpw, rpw), *leader) <
          commit_threshold(w)) {
    ++waves_no_direct_;
    on_wave_outcome(w, false);
    return;
  }

  // Lines 38-43: push the leader, then walk back over undecided waves and
  // push every earlier candidate connected by a strong path (it may have
  // been committed by someone else; Lemma 1 forces us to order it first).
  std::vector<std::pair<Wave, VertexId>> leaders_stack;
  leaders_stack.emplace_back(w, *leader);
  VertexId v = *leader;
  for (Wave wp = w - 1; wp > decided_wave_; --wp) {
    DR_ASSERT_MSG(candidates_.count(wp) > 0,
                  "waves processed in order: earlier candidate must be known");
    const std::optional<VertexId> vp =
        wave_leader_vertex(wp, candidates_[wp]);
    if (vp.has_value() && dag.strong_path(v, *vp)) {
      leaders_stack.emplace_back(wp, *vp);
      v = *vp;
    }
  }
  // Commit rule postcondition (Lemma 5): the directly committed leader
  // really has the personality's strong-path support in the wave's last
  // round — rechecked here so a future refactor of the gate above cannot
  // silently weaken it.
  DR_ENSURE(dag.strong_support_in_round(wave_round(w, rpw, rpw), *leader) >=
                commit_threshold(w),
            "direct commit without the commit-threshold strong-path support");
#if DR_CONTRACTS_ENABLED
  decide_monotone_.on_decide(w);
#endif
  decided_wave_ = w;  // line 44
  on_wave_outcome(w, true);
  order_vertices(leaders_stack);

  if (gc_depth_rounds_ > 0) {
    const Round decided_round = wave_round(decided_wave_, 1, rpw);
    if (decided_round > gc_depth_rounds_ + 1) {
      const Round floor = decided_round - gc_depth_rounds_;
      builder_.apply_gc_floor(floor);
      // The delivered-id set no longer needs entries below the floor: the
      // traversal prunes that region wholesale.
      for (auto it = delivered_vertices_.begin();
           it != delivered_vertices_.end();) {
        it = it->round < floor ? delivered_vertices_.erase(it) : std::next(it);
      }
    }
  }
}

void OrderingRule::order_vertices(
    std::vector<std::pair<Wave, VertexId>>& leaders_stack) {
  const dag::Dag& dag = builder_.dag();
  // Pop in reverse push order: earliest wave's leader delivers first.
  while (!leaders_stack.empty()) {
    const auto [wave, leader] = leaders_stack.back();
    leaders_stack.pop_back();
    const bool direct = leaders_stack.empty();  // last popped == direct commit
    committed_leaders_.emplace_back(wave, leader);
    if (commit_observer_) commit_observer_(wave, leader, direct);

    // Line 54: every vertex with a path from the leader, not yet delivered.
    // Genesis vertices (round 0) carry no payload and are skipped, as is
    // anything below the GC floor (compacted == delivered by the GC
    // contract). Pruning at delivered vertices is sound because the
    // delivered set is causally closed (ancestors of a delivered vertex
    // are delivered).
    const Round floor = dag.compacted_floor();
    std::vector<VertexId> to_deliver = dag.causal_history(
        leader, [this, floor](VertexId id) {
          return id.round == 0 || id.round < floor ||
                 delivered_vertices_.count(id) > 0;
        });
    // "In some deterministic order" (line 55): by (round, source).
    std::sort(to_deliver.begin(), to_deliver.end());
    for (const VertexId& id : to_deliver) {
      const dag::Vertex* vx = dag.get(id);
      DR_ASSERT(vx != nullptr);
      const bool fresh = delivered_vertices_.insert(id).second;
      // BAB Integrity (§2.1): at most one a_deliver per vertex. The
      // traversal's skip predicate prunes delivered vertices, so a stale id
      // here means the causal-closure argument behind that pruning broke.
      DR_ENSURE(fresh, "vertex a_delivered twice (BAB Integrity)");
      (void)fresh;
      ++delivered_count_;
      // The block digest comes off the vertex's retained wire buffer — the
      // one place it is computed; downstream consumers must not re-hash.
      if (a_deliver_) a_deliver_(vx->block, vx->block_digest(), vx->round, vx->source);
    }
  }
}

// --- DagRider personality --------------------------------------------------

void DagRider::prepare_wave(Wave w) {
  coin().choose_leader(w, [this, w](ProcessId leader) {
    resolve_candidate(w, leader);
  });
}

std::uint32_t DagRider::commit_threshold(Wave) const {
  return builder().dag().committee().quorum();
}

// --- BullsharkRider personality --------------------------------------------

BullsharkRider::BullsharkRider(dag::DagBuilder& builder, coin::Coin& coin,
                               BullsharkOptions opts)
    : OrderingRule(builder, coin), opts_(std::move(opts)) {
  DR_ASSERT_MSG(builder.options().rounds_per_wave == 2,
                "Bullshark's commit rule is defined over 2-round waves "
                "(force via ordering_rounds_per_wave)");
}

ProcessId BullsharkRider::anchor_of(Wave w) const {
  if (opts_.anchor_of) return opts_.anchor_of(w);
  return static_cast<ProcessId>((w - 1) % builder().dag().committee().n);
}

void BullsharkRider::prepare_wave(Wave w) {
  if (is_fallback_wave(w)) {
    // Safety-net wave: same unpredictable-leader draw as DagRider.
    coin().choose_leader(w, [this, w](ProcessId leader) {
      resolve_candidate(w, leader);
    });
    return;
  }
  resolve_candidate(w, anchor_of(w));
}

std::uint32_t BullsharkRider::commit_threshold(Wave) const {
  // n - 2f: the smallest vote count whose intersection with any 2f+1
  // strong-edge set is non-empty, which is what makes a directly committed
  // anchor visible (by strong path) to every later round's vertices — the
  // exact property the walk-back's adoption argument consumes. Equals f+1
  // at n = 3f+1 (the Bullshark paper's committee shape).
  return builder().dag().committee().vote_quorum();
}

void BullsharkRider::on_wave_outcome(Wave w, bool committed) {
  if (is_fallback_wave(w)) {
    // Coin waves say nothing about anchor health; they only keep the log
    // growing while the steady path is under attack.
    if (committed) ++fallback_commits_;
    return;
  }
  if (committed) {
    ++steady_commits_;
    consecutive_misses_ = 0;
    mode_ = Mode::kSteady;
    return;
  }
  ++consecutive_misses_;
  if (mode_ == Mode::kSteady && consecutive_misses_ >= opts_.miss_threshold) {
    mode_ = Mode::kFallback;
    ++fallback_entries_;
    DR_LOG_TRACE("bullshark: %llu consecutive anchor misses, fallback mode",
                 static_cast<unsigned long long>(consecutive_misses_));
  }
}

std::unique_ptr<OrderingRule> make_ordering(OrderingKind kind,
                                            dag::DagBuilder& builder,
                                            coin::Coin& coin,
                                            BullsharkOptions bullshark) {
  switch (kind) {
    case OrderingKind::kDagRider:
      return std::make_unique<DagRider>(builder, coin);
    case OrderingKind::kBullshark:
      return std::make_unique<BullsharkRider>(builder, coin,
                                              std::move(bullshark));
  }
  DR_ASSERT_MSG(false, "unknown ordering kind");
  return nullptr;
}

}  // namespace dr::core
