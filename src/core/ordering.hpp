// Ordering-strategy seam over the shared DAG. The wave/commit machinery of
// Algorithm 3 — in-order wave processing, the strong-path commit gate, the
// transitive walk-back over undecided waves, deterministic causal-history
// a_delivery, GC-floor maintenance — is personality-independent; what varies
// between DAG-BFT protocols is only the per-wave leader-candidate function
// and the commit-support threshold. OrderingRule owns the shared machinery
// and sends no messages (it reads the local DAG and the coin); the two
// personalities parameterize it:
//
//  * DagRider — the paper's asynchronous rule: 4-round waves, leaders drawn
//    from the common coin after the wave completes, 2f+1 strong-path
//    support required for a direct commit.
//  * BullsharkRider — the partially-synchronous Bullshark rule: 2-round
//    waves, predefined round-robin anchors known in advance, n-2f votes
//    (f+1 at n=3f+1) in the wave's second round, with every
//    fallback_stride-th wave an asynchronous safety-net wave whose leader
//    comes from the coin — the deterministic, replayable realization of
//    "fall back to the asynchronous path under attack" (DESIGN.md §14).
//
// Safety note (why one seam can host both rules): all correct processes
// agree on each wave's single candidate (coin agreement, or a deterministic
// anchor schedule), strong_path is objective given causal closure, and any
// commit-threshold T >= n-2f makes a directly-committed candidate reachable
// by strong path from every vertex of every later round (T voters intersect
// any 2f+1 strong-edge set). Those three facts are exactly what the Lemma
// 5-8 arguments consume, so the walk-back adopts identical leader sequences
// at every correct process under either personality.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "coin/coin.hpp"
#include "core/contract.hpp"
#include "dag/builder.hpp"

namespace dr::core {

/// Contract bookkeeping for the decide step (Alg. 3 line 44): waves are
/// decided in strictly increasing order, which is what makes the line 40
/// look-back exhaustive and the delivered order a growing prefix (Lemmas
/// 7-8, Total Order). OrderingRule owns one; it is a standalone struct so
/// the contract suite (tests/test_contract.cpp) can prove the invariant
/// fires on an out-of-order commit without reaching into rider internals.
struct WaveCommitMonotone {
  Wave last_decided = 0;

  void on_decide(Wave w) {
    DR_REQUIRE(w > last_decided,
               "wave decided out of order (Alg. 3 line 44 monotonicity)");
    last_decided = w;
  }
};

/// One a_deliver output record.
struct Delivered {
  Bytes block;
  Round round = 0;       ///< the paper's sequence number r (vertex round)
  ProcessId source = 0;  ///< p_k, the proposer
};

/// Which commit rule orders the DAG. Stamped into recovery snapshots
/// (storage/snapshot.hpp): the two personalities decide different wave
/// sequences, so replaying one's durable state under the other would
/// silently fork the delivered order.
enum class OrderingKind : std::uint8_t {
  kDagRider = 0,   ///< asynchronous, 4-round waves, coin leaders (Alg. 3)
  kBullshark = 1,  ///< partially synchronous, 2-round waves, anchors
};

const char* to_string(OrderingKind kind);
std::optional<OrderingKind> parse_ordering(std::string_view name);

/// Wave geometry the personality's commit rule requires: callers force the
/// builder's rounds_per_wave to this before wiring. 0 = no requirement
/// (DagRider commits at whatever geometry is configured — the ablation
/// bench varies it); Bullshark's rule is defined over 2-round waves.
Round ordering_rounds_per_wave(OrderingKind kind);

/// Knobs of the Bullshark personality. Defaults follow the paper's spirit;
/// the chaos suite overrides them to stage leader-targeting attacks.
struct BullsharkOptions {
  /// Every stride-th wave is an asynchronous safety-net wave: its leader is
  /// drawn from the common coin instead of the anchor schedule, so an
  /// adversary that mutes or partitions the (public) anchors cannot stall
  /// commits forever — the coin leader is unpredictable until the wave's
  /// votes are already cast. 0 disables the safety net (pure steady state).
  Wave fallback_stride = 4;
  /// Consecutive steady-wave anchor misses before the node-local state
  /// machine reports kFallback mode (telemetry + chaos-test observable; the
  /// commit rule itself is deterministic and identical at every process).
  std::uint64_t miss_threshold = 2;
  /// Steady-wave anchor schedule override; default is round-robin
  /// (w-1) % n. Tests point every anchor at a muted process to prove the
  /// safety-net waves alone keep the log growing.
  std::function<ProcessId(Wave)> anchor_of;
};

/// Base class: Algorithm 3's machinery with the candidate function and the
/// commit threshold left virtual. Consumes wave_ready signals from the DAG
/// builder, commits wave candidates via the strong-path rule, recovers
/// skipped waves transitively, and a_delivers causal histories
/// deterministically.
class OrderingRule {
 public:
  /// a_deliver(m, r, k). `block_digest` is the memoized digest of `block`,
  /// computed once at the codec boundary — consumers must use it instead of
  /// re-hashing the block bytes.
  using DeliverFn = std::function<void(const Bytes& block,
                                       const crypto::Digest& block_digest,
                                       Round r, ProcessId source)>;
  /// Observer fired when a wave leader is committed (popped for delivery);
  /// reports (wave, leader vertex, direct) where direct=false means the
  /// leader was recovered transitively from a later wave's commit.
  using CommitFn = std::function<void(Wave w, dag::VertexId leader, bool direct)>;

  OrderingRule(dag::DagBuilder& builder, coin::Coin& coin);
  virtual ~OrderingRule() = default;

  OrderingRule(const OrderingRule&) = delete;
  OrderingRule& operator=(const OrderingRule&) = delete;

  virtual OrderingKind kind() const = 0;

  void set_deliver(DeliverFn fn) { a_deliver_ = std::move(fn); }
  void set_commit_observer(CommitFn fn) { commit_observer_ = std::move(fn); }

  /// Enables DAG garbage collection (an extension over the paper; its
  /// production descendants do the same): after wave w is decided, rounds
  /// below round(w, 1) - depth_rounds are compacted. Trade-off: a correct
  /// process whose vertex arrives more than ~depth_rounds late loses that
  /// proposal (Validity becomes bounded-window); memory becomes bounded by
  /// the window instead of growing with the run.
  void enable_gc(Round depth_rounds) { gc_depth_rounds_ = depth_rounds; }

  /// a_bcast(b, r): r is implicit — correct processes broadcast blocks with
  /// consecutive sequence numbers, realized by the builder's round counter.
  void a_bcast(Bytes block) { builder_.enqueue_block(std::move(block)); }

  /// Seeds ordering state from a recovery snapshot (DESIGN.md §10), before
  /// the builder replays the WAL: waves up to `decided_wave` are treated as
  /// already decided (their re-fired wave_ready signals are suppressed), and
  /// `delivered_ids` marks vertices the pre-crash run already a_delivered so
  /// deterministic replay does not deliver them twice. Must run on a fresh
  /// rider. `delivered_count` continues the pre-crash sequence numbering.
  void restore(Wave decided_wave, std::uint64_t delivered_count,
               const std::vector<dag::VertexId>& delivered_ids);

  Wave decided_wave() const { return decided_wave_; }
  std::uint64_t delivered_count() const { return delivered_count_; }
  /// Waves whose leader this process committed, in commit order.
  const std::vector<std::pair<Wave, dag::VertexId>>& committed_leaders() const {
    return committed_leaders_;
  }
  /// Number of waves evaluated whose commit rule failed directly (skipped at
  /// evaluation time; they may still be recovered transitively later).
  std::uint64_t waves_without_direct_commit() const { return waves_no_direct_; }
  std::uint64_t waves_evaluated() const { return waves_evaluated_; }

 protected:
  /// Called once per ready wave, in wave order. The personality must
  /// arrange for resolve_candidate(w, p) to be invoked (synchronously or
  /// later, e.g. when enough coin shares arrive) with the wave's single
  /// globally-agreed candidate process.
  virtual void prepare_wave(Wave w) = 0;
  /// Strong-path support (counted in the wave's last round) required for a
  /// direct commit. Safety requires >= n - 2f (Committee::vote_quorum).
  virtual std::uint32_t commit_threshold(Wave w) const = 0;
  /// Outcome report at evaluation time: `committed` tells whether wave w
  /// directly committed. Transitive walk-back adoptions do not re-report.
  virtual void on_wave_outcome(Wave /*w*/, bool /*committed*/) {}

  /// The personality's answer to prepare_wave.
  void resolve_candidate(Wave w, ProcessId leader);

  const dag::DagBuilder& builder() const { return builder_; }
  coin::Coin& coin() { return coin_; }

 private:
  void on_wave_ready(Wave w);
  /// Runs every ready wave whose candidate (and all earlier candidates)
  /// resolved.
  void process_ready_waves();
  void handle_wave(Wave w, ProcessId leader_process);
  /// get_wave_vertex_leader (Alg. 3 line 46): the candidate's round(w,1)
  /// vertex in the local DAG, if present.
  std::optional<dag::VertexId> wave_leader_vertex(Wave w, ProcessId leader) const;
  void order_vertices(std::vector<std::pair<Wave, dag::VertexId>>& leaders_stack);

  dag::DagBuilder& builder_;
  coin::Coin& coin_;
  DeliverFn a_deliver_;
  CommitFn commit_observer_;

  Wave decided_wave_ = 0;
  Wave next_wave_to_process_ = 1;
  std::set<Wave> ready_waves_;
  std::map<Wave, ProcessId> candidates_;
  std::unordered_set<dag::VertexId, dag::VertexIdHash> delivered_vertices_;
  std::vector<std::pair<Wave, dag::VertexId>> committed_leaders_;
  std::uint64_t delivered_count_ = 0;
  std::uint64_t waves_no_direct_ = 0;
  std::uint64_t waves_evaluated_ = 0;
  bool processing_ = false;
  Round gc_depth_rounds_ = 0;  ///< 0 = GC disabled (the paper's semantics)
  DR_CONTRACT_STATE(WaveCommitMonotone decide_monotone_;)
};

/// DAG-Rider — Algorithm 3, the asynchronous personality: the leader is
/// drawn from the common coin only after the wave's last round is complete
/// (the adversary cannot learn it before the common core is fixed), and a
/// direct commit needs a 2f+1 strong-path quorum.
class DagRider final : public OrderingRule {
 public:
  DagRider(dag::DagBuilder& builder, coin::Coin& coin)
      : OrderingRule(builder, coin) {}

  OrderingKind kind() const override { return OrderingKind::kDagRider; }

 protected:
  void prepare_wave(Wave w) override;
  std::uint32_t commit_threshold(Wave) const override;
};

/// Bullshark's partially-synchronous commit rule over 2-round waves:
/// wave w's steady-state anchor is predefined (round-robin by default) and
/// commits on n-2f strong-path votes in the wave's second round — one
/// round-trip of latency instead of DAG-Rider's four rounds plus a coin.
/// Every fallback_stride-th wave draws its leader from the coin instead:
/// under an anchor-targeting attack those safety-net waves keep the log
/// growing, because their leaders are unpredictable until the votes are
/// already in the DAG. A node-local miss counter reports degraded (fallback)
/// mode for telemetry and the chaos suite; the commit rule itself never
/// depends on local timing, which is what keeps replay deterministic and
/// all correct processes in agreement on every wave's candidate.
class BullsharkRider final : public OrderingRule {
 public:
  /// Requires builder.options().rounds_per_wave == 2 (callers force it via
  /// ordering_rounds_per_wave).
  BullsharkRider(dag::DagBuilder& builder, coin::Coin& coin,
                 BullsharkOptions opts = {});

  OrderingKind kind() const override { return OrderingKind::kBullshark; }

  /// Node-local liveness health: kSteady while anchors keep committing,
  /// kFallback after miss_threshold consecutive anchor misses (left again
  /// on the next direct steady-wave commit).
  enum class Mode : std::uint8_t { kSteady, kFallback };

  Mode mode() const { return mode_; }
  bool is_fallback_wave(Wave w) const {
    return opts_.fallback_stride > 0 && w % opts_.fallback_stride == 0;
  }
  /// Steady-wave anchor schedule (round-robin unless overridden).
  ProcessId anchor_of(Wave w) const;

  std::uint64_t steady_commits() const { return steady_commits_; }
  std::uint64_t fallback_commits() const { return fallback_commits_; }
  /// kSteady -> kFallback transitions over the run.
  std::uint64_t fallback_entries() const { return fallback_entries_; }

 protected:
  void prepare_wave(Wave w) override;
  std::uint32_t commit_threshold(Wave) const override;
  void on_wave_outcome(Wave w, bool committed) override;

 private:
  BullsharkOptions opts_;
  Mode mode_ = Mode::kSteady;
  std::uint64_t consecutive_misses_ = 0;
  std::uint64_t steady_commits_ = 0;
  std::uint64_t fallback_commits_ = 0;
  std::uint64_t fallback_entries_ = 0;
};

/// Personality factory. `bullshark` is consulted only for kBullshark.
std::unique_ptr<OrderingRule> make_ordering(OrderingKind kind,
                                            dag::DagBuilder& builder,
                                            coin::Coin& coin,
                                            BullsharkOptions bullshark = {});

}  // namespace dr::core
