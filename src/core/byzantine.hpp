// Byzantine behaviour implementations used by the harness, tests, and
// fault-injection benches. These are attack *strategies* within the model —
// the protocol must neutralize them, and the test suite checks that it does.
#pragma once

#include <memory>

#include "rbc/bracha.hpp"
#include "rbc/rbc.hpp"
#include "sim/network.hpp"

namespace dr::core {

/// An equivocating broadcaster: on broadcast(r, m) it hand-crafts two
/// conflicting Bracha SEND messages (payload m and a mutated m') and sends
/// one to each half of the committee. It otherwise participates in the
/// Bracha protocol honestly (echoes, readies) through the wrapped instance,
/// which is the strongest profile for this attack: the split quorum can
/// only be resolved by other processes' echoes.
///
/// Reliable broadcast Agreement must ensure all correct processes deliver
/// the same variant (or none) — the equivocation tests assert exactly that.
class EquivocatingBrachaRbc final : public rbc::ReliableBroadcast {
 public:
  EquivocatingBrachaRbc(sim::Network& net, ProcessId pid);

  void set_deliver(DeliverFn fn) override { inner_.set_deliver(std::move(fn)); }
  void broadcast(Round r, net::Payload payload) override;

 private:
  sim::Network& net_;
  ProcessId pid_;
  rbc::BrachaRbc inner_;
};

}  // namespace dr::core
