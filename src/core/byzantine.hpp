// Byzantine behaviour implementations used by the harness, tests, and
// fault-injection benches. These are attack *strategies* within the model —
// the protocol must neutralize them, and the test suite checks that it does.
//
// Strategies are written against net::Bus, the seam shared by the simulator
// (sim::Network) and the real-concurrency runtime (node::NodeBus), so the
// exact same adversarial code runs under the discrete-event scheduler and
// inside live threaded clusters (node/byzantine.hpp wires it there).
#pragma once

#include <memory>

#include "net/bus.hpp"
#include "rbc/bracha.hpp"
#include "rbc/rbc.hpp"

namespace dr::core {

/// Mirrors BrachaRbc's SEND wire format (type | source | round | blob).
/// Exposed so Byzantine strategies can hand-craft protocol messages the
/// honest implementation would never produce.
Bytes encode_bracha_send(ProcessId source, Round r, BytesView payload);

/// Produces a structurally valid conflicting vertex: same edges, different
/// block bytes — the nastiest equivocation variant, indistinguishable from
/// the original except by content.
Bytes mutate_vertex_payload(BytesView payload);

/// An equivocating broadcaster: on broadcast(r, m) it hand-crafts two
/// conflicting Bracha SEND messages (payload m and a mutated m') and sends
/// one to each half of the committee. It otherwise participates in the
/// Bracha protocol honestly (echoes, readies) through the wrapped instance,
/// which is the strongest profile for this attack: the split quorum can
/// only be resolved by other processes' echoes.
///
/// Reliable broadcast Agreement must ensure all correct processes deliver
/// the same variant (or none) — the equivocation tests assert exactly that.
class EquivocatingBrachaRbc final : public rbc::ReliableBroadcast {
 public:
  EquivocatingBrachaRbc(net::Bus& net, ProcessId pid);

  void set_deliver(DeliverFn fn) override { inner_.set_deliver(std::move(fn)); }
  void broadcast(Round r, net::Payload payload) override;

  /// Conflicting SEND pairs launched so far (attack-liveness telemetry: a
  /// test asserting "the adversary was neutralized" must also assert the
  /// adversary actually acted).
  std::uint64_t equivocations() const { return equivocations_; }

 private:
  net::Bus& net_;
  ProcessId pid_;
  rbc::BrachaRbc inner_;
  std::uint64_t equivocations_ = 0;
};

}  // namespace dr::core
