#include "core/system.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "core/audit.hpp"
#include "core/byzantine.hpp"

namespace dr::core {

Node::Node(sim::Network& net, ProcessId pid, const SystemConfig& cfg,
           const coin::CoinDealer* dealer, std::uint64_t node_seed,
           sim::Simulator& sim) {
  const FaultKind fault =
      pid < cfg.faults.size() ? cfg.faults[pid] : FaultKind::kNone;

  if (fault == FaultKind::kEquivocate) {
    DR_ASSERT_MSG(cfg.rbc_kind == rbc::RbcKind::kBracha,
                  "equivocation attack is implemented for Bracha RBC");
    rbc_ = std::make_unique<EquivocatingBrachaRbc>(net, pid);
  } else {
    rbc_ = rbc::make_factory(cfg.rbc_kind, cfg.gossip)(net, pid, cfg.seed);
  }

  coin::ThresholdCoin* threshold_coin = nullptr;
  switch (cfg.coin_mode) {
    case CoinMode::kLocal:
      coin_ = std::make_unique<coin::LocalCoin>(cfg.seed ^ 0xC0111ULL,
                                                cfg.committee.n);
      break;
    case CoinMode::kThreshold:
    case CoinMode::kPiggyback: {
      auto tc = std::make_unique<coin::ThresholdCoin>(
          net, coin::ProcessCoinKey(dealer, pid),
          /*broadcast_shares=*/cfg.coin_mode == CoinMode::kThreshold);
      threshold_coin = tc.get();
      coin_ = std::move(tc);
      break;
    }
  }

  builder_ = std::make_unique<dag::DagBuilder>(cfg.committee, pid, *rbc_,
                                               cfg.builder);
  if (cfg.coin_mode == CoinMode::kPiggyback) {
    builder_->enable_coin_piggyback(
        [threshold_coin](Wave w) { return threshold_coin->share_to_embed(w); },
        [threshold_coin](ProcessId from, Wave w, std::uint64_t y) {
          threshold_coin->ingest_share(from, w, y);
        });
  }
  rider_ = make_ordering(cfg.ordering, *builder_, *coin_, cfg.bullshark);
  if (cfg.gc_depth_rounds > 0) rider_->enable_gc(cfg.gc_depth_rounds);
  rider_->set_deliver([this, &sim](const Bytes& block,
                                   const crypto::Digest& block_digest, Round r,
                                   ProcessId src) {
    delivered_.push_back(
        DeliveredRecord{block_digest, block.size(), r, src, sim.now()});
    if (app_deliver_) app_deliver_(block, r, src);
  });
  rider_->set_commit_observer(
      [this, &sim](Wave w, dag::VertexId leader, bool direct) {
        commits_.push_back(CommitRecord{w, leader, direct, sim.now()});
      });
  (void)node_seed;
}

System::System(SystemConfig cfg) : cfg_(std::move(cfg)), sim_(cfg_.seed) {
  DR_ASSERT_MSG(cfg_.committee.valid(), "System: committee must satisfy n > 3f");
  // The personality owns the wave geometry: Bullshark's commit rule is
  // defined over 2-round waves, so its choice overrides the builder knob.
  if (const Round rpw = ordering_rounds_per_wave(cfg_.ordering)) {
    cfg_.builder.rounds_per_wave = rpw;
  }
  if (!cfg_.delays) {
    cfg_.delays = std::make_unique<sim::UniformDelay>(1, 100);
  }
  net_ = std::make_unique<sim::Network>(sim_, cfg_.committee,
                                        std::move(cfg_.delays));
  faults_ = cfg_.faults;
  faults_.resize(cfg_.committee.n, FaultKind::kNone);
  cfg_.faults = faults_;

  dealer_ = std::make_unique<coin::CoinDealer>(cfg_.seed ^ coin::kDealerSeedTweak,
                                               cfg_.committee);

  // Mark faults on the network before any traffic flows: crash silences a
  // process entirely; silent/equivocating processes count as corrupted for
  // the adversary budget and the honest-bytes accounting.
  for (ProcessId pid = 0; pid < cfg_.committee.n; ++pid) {
    if (faults_[pid] == FaultKind::kCrash) {
      net_->crash(pid);
    } else if (faults_[pid] != FaultKind::kNone) {
      net_->corrupt(pid);
    }
  }

  Xoshiro256 seeder(cfg_.seed ^ 0x5EEDULL);
  nodes_.reserve(cfg_.committee.n);
  for (ProcessId pid = 0; pid < cfg_.committee.n; ++pid) {
    nodes_.push_back(std::make_unique<Node>(*net_, pid, cfg_, dealer_.get(),
                                            seeder(), sim_));
  }
}

System::~System() = default;

void System::start() {
  for (ProcessId pid = 0; pid < cfg_.committee.n; ++pid) {
    // Crashed processes never run; silent ones only service others' RBC
    // instances (their components are wired but propose nothing).
    if (faults_[pid] == FaultKind::kCrash || faults_[pid] == FaultKind::kSilent) {
      continue;
    }
    nodes_[pid]->builder().start();
  }
}

std::vector<ProcessId> System::correct_ids() const {
  std::vector<ProcessId> out;
  for (ProcessId pid = 0; pid < cfg_.committee.n; ++pid) {
    if (is_correct(pid)) out.push_back(pid);
  }
  return out;
}

bool System::run_until_delivered(std::uint64_t count, std::uint64_t max_events) {
  return sim_.run_until(
      [this, count] {
        for (ProcessId pid : correct_ids()) {
          if (nodes_[pid]->rider().delivered_count() < count) return false;
        }
        return true;
      },
      max_events);
}

bool System::run_until_wave_decided(Wave w, std::uint64_t max_events) {
  return sim_.run_until(
      [this, w] {
        for (ProcessId pid : correct_ids()) {
          if (nodes_[pid]->rider().decided_wave() < w) return false;
        }
        return true;
      },
      max_events);
}

bool prefix_consistent(const System& sys) {
  std::vector<std::vector<DeliveredRecord>> logs;
  for (ProcessId pid : sys.correct_ids()) {
    logs.push_back(sys.node(pid).delivered());
  }
  return !audit_total_order(logs).has_value();
}

double chain_quality(const System& sys) {
  const std::vector<ProcessId> ids = sys.correct_ids();
  if (ids.empty()) return 0.0;
  std::size_t prefix = SIZE_MAX;
  for (ProcessId pid : ids) {
    prefix = std::min(prefix, sys.node(pid).delivered().size());
  }
  if (prefix == 0 || prefix == SIZE_MAX) return 0.0;
  const auto& log = sys.node(ids[0]).delivered();
  std::size_t correct_blocks = 0;
  for (std::size_t i = 0; i < prefix; ++i) {
    if (sys.is_correct(log[i].source)) ++correct_blocks;
  }
  return static_cast<double>(correct_blocks) / static_cast<double>(prefix);
}

}  // namespace dr::core
