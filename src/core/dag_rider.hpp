// DAG-Rider — Algorithm 3. The zero-overhead ordering layer: consumes
// wave_ready signals from the DAG builder and leader draws from the global
// coin, commits wave leaders via the 2f+1 strong-path rule, recovers skipped
// waves transitively, and a_delivers causal histories deterministically.
// This class sends no messages: it only reads the local DAG and the coin.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <unordered_set>
#include <vector>

#include "coin/coin.hpp"
#include "core/contract.hpp"
#include "dag/builder.hpp"

namespace dr::core {

/// Contract bookkeeping for the decide step (Alg. 3 line 44): waves are
/// decided in strictly increasing order, which is what makes the line 40
/// look-back exhaustive and the delivered order a growing prefix (Lemmas
/// 7-8, Total Order). DagRider owns one; it is a standalone struct so the
/// contract suite (tests/test_contract.cpp) can prove the invariant fires
/// on an out-of-order commit without reaching into DagRider's internals.
struct WaveCommitMonotone {
  Wave last_decided = 0;

  void on_decide(Wave w) {
    DR_REQUIRE(w > last_decided,
               "wave decided out of order (Alg. 3 line 44 monotonicity)");
    last_decided = w;
  }
};

/// One a_deliver output record.
struct Delivered {
  Bytes block;
  Round round = 0;       ///< the paper's sequence number r (vertex round)
  ProcessId source = 0;  ///< p_k, the proposer
};

class DagRider {
 public:
  /// a_deliver(m, r, k). `block_digest` is the memoized digest of `block`,
  /// computed once at the codec boundary — consumers must use it instead of
  /// re-hashing the block bytes.
  using DeliverFn = std::function<void(const Bytes& block,
                                       const crypto::Digest& block_digest,
                                       Round r, ProcessId source)>;
  /// Observer fired when a wave leader is committed (popped for delivery);
  /// reports (wave, leader vertex, direct) where direct=false means the
  /// leader was recovered transitively from a later wave's commit.
  using CommitFn = std::function<void(Wave w, dag::VertexId leader, bool direct)>;

  DagRider(dag::DagBuilder& builder, coin::Coin& coin);

  void set_deliver(DeliverFn fn) { a_deliver_ = std::move(fn); }
  void set_commit_observer(CommitFn fn) { commit_observer_ = std::move(fn); }

  /// Enables DAG garbage collection (an extension over the paper; its
  /// production descendants do the same): after wave w is decided, rounds
  /// below round(w, 1) - depth_rounds are compacted. Trade-off: a correct
  /// process whose vertex arrives more than ~depth_rounds late loses that
  /// proposal (Validity becomes bounded-window); memory becomes bounded by
  /// the window instead of growing with the run.
  void enable_gc(Round depth_rounds) { gc_depth_rounds_ = depth_rounds; }

  /// a_bcast(b, r): r is implicit — correct processes broadcast blocks with
  /// consecutive sequence numbers, realized by the builder's round counter.
  void a_bcast(Bytes block) { builder_.enqueue_block(std::move(block)); }

  /// Seeds ordering state from a recovery snapshot (DESIGN.md §10), before
  /// the builder replays the WAL: waves up to `decided_wave` are treated as
  /// already decided (their re-fired wave_ready signals are suppressed), and
  /// `delivered_ids` marks vertices the pre-crash run already a_delivered so
  /// deterministic replay does not deliver them twice. Must run on a fresh
  /// rider. `delivered_count` continues the pre-crash sequence numbering.
  void restore(Wave decided_wave, std::uint64_t delivered_count,
               const std::vector<dag::VertexId>& delivered_ids);

  Wave decided_wave() const { return decided_wave_; }
  std::uint64_t delivered_count() const { return delivered_count_; }
  /// Waves whose leader this process committed, in commit order.
  const std::vector<std::pair<Wave, dag::VertexId>>& committed_leaders() const {
    return committed_leaders_;
  }
  /// Number of waves evaluated whose commit rule failed directly (skipped at
  /// evaluation time; they may still be recovered transitively later).
  std::uint64_t waves_without_direct_commit() const { return waves_no_direct_; }
  std::uint64_t waves_evaluated() const { return waves_evaluated_; }

 private:
  void on_wave_ready(Wave w);
  void on_coin(Wave w, ProcessId leader);
  /// Runs every ready wave whose coin (and all earlier coins) resolved.
  void process_ready_waves();
  void handle_wave(Wave w, ProcessId leader_process);
  /// get_wave_vertex_leader (Alg. 3 line 46): the leader's round(w,1)
  /// vertex in the local DAG, if present.
  std::optional<dag::VertexId> wave_leader_vertex(Wave w, ProcessId leader) const;
  void order_vertices(std::vector<std::pair<Wave, dag::VertexId>>& leaders_stack);

  dag::DagBuilder& builder_;
  coin::Coin& coin_;
  DeliverFn a_deliver_;
  CommitFn commit_observer_;

  Wave decided_wave_ = 0;
  Wave next_wave_to_process_ = 1;
  std::set<Wave> ready_waves_;
  std::map<Wave, ProcessId> coin_values_;
  std::unordered_set<dag::VertexId, dag::VertexIdHash> delivered_vertices_;
  std::vector<std::pair<Wave, dag::VertexId>> committed_leaders_;
  std::uint64_t delivered_count_ = 0;
  std::uint64_t waves_no_direct_ = 0;
  std::uint64_t waves_evaluated_ = 0;
  bool processing_ = false;
  Round gc_depth_rounds_ = 0;  ///< 0 = GC disabled (the paper's semantics)
  DR_CONTRACT_STATE(WaveCommitMonotone decide_monotone_;)
};

}  // namespace dr::core
