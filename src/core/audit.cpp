#include "core/audit.hpp"

#include <algorithm>
#include <set>
#include <sstream>
#include <utility>

namespace dr::core {
namespace {

std::string describe(const DeliveredRecord& r) {
  std::ostringstream os;
  os << "(round=" << r.round << ", source=" << r.source << ", size=" << r.block_size << ")";
  return os.str();
}

}  // namespace

std::optional<std::string> audit_total_order(
    const std::vector<std::vector<DeliveredRecord>>& logs) {
  for (std::size_t a = 0; a < logs.size(); ++a) {
    for (std::size_t b = a + 1; b < logs.size(); ++b) {
      const std::size_t len = std::min(logs[a].size(), logs[b].size());
      for (std::size_t i = 0; i < len; ++i) {
        if (!logs[a][i].same_value(logs[b][i])) {
          std::ostringstream os;
          os << "total order violated: logs " << a << " and " << b
             << " diverge at position " << i << ": " << describe(logs[a][i])
             << " vs " << describe(logs[b][i]);
          return os.str();
        }
      }
    }
  }
  return std::nullopt;
}

std::optional<std::string> audit_integrity(
    const std::vector<std::vector<DeliveredRecord>>& logs) {
  for (std::size_t p = 0; p < logs.size(); ++p) {
    std::set<std::pair<Round, ProcessId>> seen;
    for (std::size_t i = 0; i < logs[p].size(); ++i) {
      if (!seen.emplace(logs[p][i].round, logs[p][i].source).second) {
        std::ostringstream os;
        os << "integrity violated: log " << p << " delivers "
           << describe(logs[p][i]) << " twice (second at position " << i << ")";
        return os.str();
      }
    }
  }
  return std::nullopt;
}

std::optional<std::string> audit_commits(
    const std::vector<std::vector<CommitRecord>>& logs) {
  for (std::size_t p = 0; p < logs.size(); ++p) {
    for (std::size_t i = 0; i + 1 < logs[p].size(); ++i) {
      if (logs[p][i].wave >= logs[p][i + 1].wave) {
        std::ostringstream os;
        os << "commit monotonicity violated: log " << p << " commits wave "
           << logs[p][i + 1].wave << " after wave " << logs[p][i].wave;
        return os.str();
      }
    }
  }
  for (std::size_t a = 0; a < logs.size(); ++a) {
    for (std::size_t b = a + 1; b < logs.size(); ++b) {
      const std::size_t len = std::min(logs[a].size(), logs[b].size());
      for (std::size_t i = 0; i < len; ++i) {
        if (logs[a][i].wave != logs[b][i].wave ||
            !(logs[a][i].leader == logs[b][i].leader)) {
          std::ostringstream os;
          os << "commit agreement violated: logs " << a << " and " << b
             << " disagree at commit " << i << " (waves " << logs[a][i].wave
             << " vs " << logs[b][i].wave << ")";
          return os.str();
        }
      }
    }
  }
  return std::nullopt;
}

std::optional<std::string> audit_logs(
    const std::vector<std::vector<DeliveredRecord>>& delivered,
    const std::vector<std::vector<CommitRecord>>& commits) {
  if (auto v = audit_total_order(delivered)) return v;
  if (auto v = audit_integrity(delivered)) return v;
  if (auto v = audit_commits(commits)) return v;
  return std::nullopt;
}

}  // namespace dr::core
