// Delivery and commit records — the observable output of one process's run.
// Runtime-agnostic: the simulator harness (core::System) stamps `time` with
// the discrete-event clock, the real-concurrency runtime (node::Node) with
// microseconds since node start. The auditors in core/audit.hpp consume
// these records from either runtime, which is what lets the simulator act
// as the correctness oracle for the threaded implementation.
#pragma once

#include <cstdint>

#include "common/types.hpp"
#include "crypto/sha256.hpp"
#include "dag/vertex.hpp"

namespace dr::core {

/// One a_deliver record (block stored as digest+size so long runs stay
/// small; auditors compare digests).
struct DeliveredRecord {
  crypto::Digest block_digest{};
  std::size_t block_size = 0;
  Round round = 0;
  ProcessId source = 0;
  std::uint64_t time = 0;  ///< sim ticks or real microseconds (see header)

  bool same_value(const DeliveredRecord& o) const {
    return block_digest == o.block_digest && round == o.round &&
           source == o.source;
  }
};

/// One commit record (wave leader popped for delivery).
struct CommitRecord {
  Wave wave = 0;
  dag::VertexId leader;
  bool direct = false;
  std::uint64_t time = 0;
};

}  // namespace dr::core
