#include "core/byzantine.hpp"

#include "dag/vertex.hpp"

namespace dr::core {

Bytes encode_bracha_send(ProcessId source, Round r, BytesView payload) {
  ByteWriter w(payload.size() + 20);
  w.u8(1);  // BrachaRbc::kSend
  w.u32(source);
  w.u64(r);
  w.blob(payload);
  return std::move(w).take();
}

Bytes mutate_vertex_payload(BytesView payload) {
  auto parsed = dr::dag::Vertex::deserialize(payload);
  if (!parsed) {
    Bytes copy(payload.begin(), payload.end());
    copy.push_back(0xFF);
    return copy;
  }
  dr::dag::Vertex v = std::move(parsed).value();
  v.block.push_back(0xEE);
  return v.serialize();
}

EquivocatingBrachaRbc::EquivocatingBrachaRbc(net::Bus& net, ProcessId pid)
    : net_(net), pid_(pid), inner_(net, pid) {}

void EquivocatingBrachaRbc::broadcast(Round r, net::Payload payload) {
  const Bytes variant_b = mutate_vertex_payload(payload.view());
  // Each variant is encoded once; the per-recipient sends share the buffers.
  const net::Payload send_a(encode_bracha_send(pid_, r, payload.view()));
  const net::Payload send_b(encode_bracha_send(pid_, r, variant_b));
  for (ProcessId to = 0; to < net_.n(); ++to) {
    net_.send(pid_, to, net::Channel::kBracha, to % 2 == 0 ? send_a : send_b);
  }
  ++equivocations_;
}

}  // namespace dr::core
