// Log-level BAB auditors, shared between the simulator test suite and the
// real-concurrency runtime cross-check. They operate purely on delivery /
// commit records (core/records.hpp), so the exact same predicates that gate
// the property sweeps under the discrete-event adversary also gate 4-node
// threaded clusters under TSan/ASan — the simulator is the oracle, these
// functions are the shared judge.
//
// Each auditor returns std::nullopt when the invariant holds, or a
// human-readable description of the first violation found.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/records.hpp"

namespace dr::core {

/// Total Order: every pair of logs agrees on the common prefix
/// (same block digest, round, and source at every shared position).
std::optional<std::string> audit_total_order(
    const std::vector<std::vector<DeliveredRecord>>& logs);

/// Integrity: within each log, at most one delivery per (round, source).
std::optional<std::string> audit_integrity(
    const std::vector<std::vector<DeliveredRecord>>& logs);

/// Commit sanity: within each log waves strictly increase (monotonicity);
/// across logs the committed (wave, leader) sequences are prefix-consistent
/// (agreement on which vertex leads every wave).
std::optional<std::string> audit_commits(
    const std::vector<std::vector<CommitRecord>>& logs);

/// Runs all three auditors; first violation wins.
std::optional<std::string> audit_logs(
    const std::vector<std::vector<DeliveredRecord>>& delivered,
    const std::vector<std::vector<CommitRecord>>& commits);

}  // namespace dr::core
