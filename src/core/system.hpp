// System harness: assembles n DAG-Rider processes (reliable broadcast +
// threshold coin + DAG builder + ordering layer) on the simulated network,
// injects faults, and exposes delivered logs. This is the top-level entry
// point a library user instantiates; every test, bench, and example builds
// on it.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "coin/coin.hpp"
#include "coin/dealer.hpp"
#include "coin/threshold_coin.hpp"
#include "core/ordering.hpp"
#include "core/records.hpp"
#include "crypto/sha256.hpp"
#include "rbc/factory.hpp"
#include "sim/adversary.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"

namespace dr::core {

enum class CoinMode {
  kLocal,      ///< perfect-coin oracle (unit/experiment isolation)
  kThreshold,  ///< threshold coin, shares broadcast on the coin channel
  kPiggyback,  ///< threshold coin, shares embedded in DAG vertices (fn. 1)
};

enum class FaultKind {
  kNone,
  kCrash,       ///< sends and receives nothing, ever
  kSilent,      ///< participates in others' broadcasts but proposes nothing
  kEquivocate,  ///< proposes conflicting vertices to different halves
                ///< (Bracha RBC only; reliable broadcast must defuse it)
  kStealthy,    ///< behaves exactly like a correct process but counts as
                ///< Byzantine — the chain-quality worst case, where the
                ///< adversary's processes participate fully to claim as
                ///< many slots of every ordered prefix as possible
};

struct SystemConfig {
  Committee committee = Committee::for_f(1);
  std::uint64_t seed = 1;
  rbc::RbcKind rbc_kind = rbc::RbcKind::kBracha;
  rbc::GossipParams gossip;
  CoinMode coin_mode = CoinMode::kThreshold;
  /// Which commit rule orders the DAG (DESIGN.md §14). kBullshark forces
  /// builder.rounds_per_wave to 2 (its wave geometry).
  OrderingKind ordering = OrderingKind::kDagRider;
  BullsharkOptions bullshark{};
  /// Rounds per wave / weak-edge ablation knobs.
  dag::BuilderOptions builder{.auto_blocks = true, .auto_block_size = 64};
  /// DAG garbage-collection window in rounds; 0 disables GC (the paper's
  /// unbounded semantics). See DagRider::enable_gc for the trade-off.
  Round gc_depth_rounds = 0;
  /// Delay model; nullptr -> UniformDelay(1, 100).
  std::unique_ptr<sim::DelayModel> delays;
  /// fault[pid] (missing entries default kNone). At most f non-kNone.
  std::vector<FaultKind> faults;
};

/// The full protocol stack of a single process. DeliveredRecord /
/// CommitRecord now live in core/records.hpp, shared with the
/// real-concurrency runtime (node::Node) and the auditors in core/audit.hpp.

class Node {
 public:
  Node(sim::Network& net, ProcessId pid, const SystemConfig& cfg,
       const coin::CoinDealer* dealer, std::uint64_t node_seed,
       sim::Simulator& sim);

  dag::DagBuilder& builder() { return *builder_; }
  OrderingRule& rider() { return *rider_; }
  rbc::ReliableBroadcast& rbc() { return *rbc_; }
  coin::Coin& coin() { return *coin_; }

  const std::vector<DeliveredRecord>& delivered() const { return delivered_; }
  const std::vector<CommitRecord>& commits() const { return commits_; }

  /// Application-level delivery hook, invoked after the harness records the
  /// delivery. Lets applications (state machines, mempools, workload
  /// generators) consume block contents without replacing the bookkeeping.
  using AppDeliverFn = std::function<void(const Bytes& block, Round r, ProcessId source)>;
  void set_app_deliver(AppDeliverFn fn) { app_deliver_ = std::move(fn); }

 private:
  std::unique_ptr<rbc::ReliableBroadcast> rbc_;
  std::unique_ptr<coin::Coin> coin_;
  std::unique_ptr<dag::DagBuilder> builder_;
  std::unique_ptr<OrderingRule> rider_;
  std::vector<DeliveredRecord> delivered_;
  std::vector<CommitRecord> commits_;
  AppDeliverFn app_deliver_;
};

class System {
 public:
  explicit System(SystemConfig cfg);
  ~System();

  /// Starts all non-faulty (and equivocating) processes.
  void start();

  sim::Simulator& simulator() { return sim_; }
  sim::Network& network() { return *net_; }
  const Committee& committee() const { return cfg_.committee; }
  std::uint32_t n() const { return cfg_.committee.n; }

  bool is_correct(ProcessId pid) const {
    return faults_[pid] == FaultKind::kNone;
  }
  std::vector<ProcessId> correct_ids() const;
  Node& node(ProcessId pid) { return *nodes_[pid]; }
  const Node& node(ProcessId pid) const { return *nodes_[pid]; }

  /// Runs until every correct process has a_delivered >= count blocks.
  /// Returns false if the simulation stalled or max_events elapsed first.
  bool run_until_delivered(std::uint64_t count, std::uint64_t max_events = 50'000'000);
  /// Runs until every correct process decided wave >= w.
  bool run_until_wave_decided(Wave w, std::uint64_t max_events = 50'000'000);

 private:
  SystemConfig cfg_;
  sim::Simulator sim_;
  std::unique_ptr<sim::Network> net_;
  std::unique_ptr<coin::CoinDealer> dealer_;
  std::vector<FaultKind> faults_;
  std::vector<std::unique_ptr<Node>> nodes_;
};

/// Test/analysis helpers over delivered logs.

/// True iff every pair of correct logs is prefix-consistent (Total Order).
bool prefix_consistent(const System& sys);

/// Chain quality of the longest common delivered prefix: fraction of
/// blocks proposed by correct processes.
double chain_quality(const System& sys);

}  // namespace dr::core
