// Executable contracts for the protocol layers. DR_REQUIRE / DR_ENSURE /
// DR_INVARIANT turn the paper's safety lemmas (strong-edge quorums, round
// monotonicity, no duplicate delivery, decoder dead-state absorption) into
// pre/postconditions that are *compiled in* for every Debug, sanitizer, and
// DAGRIDER_PARANOID=ON build, and compiled out of optimized release builds.
//
// Contrast with common/assert.hpp: DR_ASSERT is unconditional (hygiene checks
// cheap enough to keep everywhere); contracts may sit on hot paths and carry
// per-call bookkeeping, so they get an on/off switch. Violation always aborts
// — a broken invariant inside a BFT protocol invalidates the run, and death
// tests (tests/test_contract.cpp) rely on the abort being observable.
//
// Each instrumented site carries a comment naming the paper lemma/claim it
// guards; DESIGN.md §"Static analysis & contracts" holds the full map.
#pragma once

#include <cstdio>
#include <cstdlib>

// Contracts are active when explicitly requested (DAGRIDER_PARANOID, set by
// the CMake option of the same name), in any build without NDEBUG (Debug),
// and in sanitizer builds (the CI ASan/UBSan/TSan jobs use RelWithDebInfo,
// which defines NDEBUG — detect the sanitizers directly instead).
#if defined(DAGRIDER_PARANOID)
#define DR_CONTRACTS_ENABLED 1
#elif !defined(NDEBUG)
#define DR_CONTRACTS_ENABLED 1
#elif defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define DR_CONTRACTS_ENABLED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define DR_CONTRACTS_ENABLED 1
#endif
#endif

#ifndef DR_CONTRACTS_ENABLED
#define DR_CONTRACTS_ENABLED 0
#endif

namespace dr::contract {

[[noreturn]] inline void violation(const char* kind, const char* expr,
                                   const char* file, int line,
                                   const char* what) {
  std::fprintf(stderr, "%s violated: %s at %s:%d — %s\n", kind, expr, file,
               line, what);
  std::abort();
}

}  // namespace dr::contract

#if DR_CONTRACTS_ENABLED

/// Precondition on the caller: fed-in state must satisfy `expr`.
#define DR_REQUIRE(expr, what)                                              \
  do {                                                                      \
    if (!(expr))                                                            \
      ::dr::contract::violation("DR_REQUIRE", #expr, __FILE__, __LINE__,    \
                                (what));                                    \
  } while (0)

/// Postcondition on this function: produced state must satisfy `expr`.
#define DR_ENSURE(expr, what)                                               \
  do {                                                                      \
    if (!(expr))                                                            \
      ::dr::contract::violation("DR_ENSURE", #expr, __FILE__, __LINE__,     \
                                (what));                                    \
  } while (0)

/// Object/loop invariant: must hold at every observation point.
#define DR_INVARIANT(expr, what)                                            \
  do {                                                                      \
    if (!(expr))                                                            \
      ::dr::contract::violation("DR_INVARIANT", #expr, __FILE__, __LINE__,  \
                                (what));                                    \
  } while (0)

/// Declares state that exists only to feed contracts (e.g. an RBC delivery
/// dedup set); compiled out with the contracts that read it. Variadic so
/// declarations containing template commas need no extra parentheses.
#define DR_CONTRACT_STATE(...) __VA_ARGS__

#else  // !DR_CONTRACTS_ENABLED

#define DR_REQUIRE(expr, what) ((void)0)
#define DR_ENSURE(expr, what) ((void)0)
#define DR_INVARIANT(expr, what) ((void)0)
#define DR_CONTRACT_STATE(...)

#endif  // DR_CONTRACTS_ENABLED

namespace dr::contract {

/// Recovery-phase discipline for components rebuilt from a write-ahead log
/// (PR: durable storage). Legal transitions: kFresh → kRestoring →
/// kRestored → kLive, or kFresh → kLive directly (no WAL). The phases exist
/// because replay and live operation have incompatible side effects: feeding
/// restore records into a live component would re-broadcast history, and
/// starting mid-restore would propose on top of a half-rebuilt DAG. The
/// replayed DAG itself re-enters through the ordinary gates — Dag::insert's
/// 2f+1 strong-edge DR_REQUIRE and the round-advance quorum DR_REQUIRE both
/// hold over restored state exactly as over live state.
struct RestorePhase {
  enum class Phase { kFresh, kRestoring, kRestored, kLive };
  Phase phase = Phase::kFresh;

  void begin_restore() {
    DR_REQUIRE(phase == Phase::kFresh,
               "restore must begin on a fresh component");
    phase = Phase::kRestoring;
  }
  void finish_restore() {
    DR_REQUIRE(phase == Phase::kRestoring,
               "finish_restore without begin_restore");
    phase = Phase::kRestored;
  }
  void start() {
    DR_REQUIRE(phase == Phase::kFresh || phase == Phase::kRestored,
               "component started twice or mid-restore");
    phase = Phase::kLive;
  }

  bool live() const { return phase == Phase::kLive; }
  bool restoring() const { return phase == Phase::kRestoring; }
};

}  // namespace dr::contract
