// Systematic Reed–Solomon erasure code over GF(256) using a Cauchy matrix
// for the parity rows. (k, m): k data shards, m parity shards, any k of the
// k+m shards reconstruct the data. AVID uses (f+1, 2f) so that f+1 echoed
// fragments suffice to rebuild a broadcast payload.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/bytes.hpp"
#include "common/expected.hpp"

namespace dr::crypto {

class ReedSolomon {
 public:
  /// k data shards + m parity shards; requires 1 <= k, 0 <= m, k + m <= 255.
  ReedSolomon(std::uint32_t k, std::uint32_t m);

  std::uint32_t data_shards() const { return k_; }
  std::uint32_t parity_shards() const { return m_; }
  std::uint32_t total_shards() const { return k_ + m_; }

  /// Splits `data` into k equal shards (zero-padded) and appends m parity
  /// shards. Shard size = ceil((|data|+8) / k); an 8-byte length header is
  /// embedded so decode can strip padding exactly.
  std::vector<Bytes> encode(BytesView data) const;

  /// Reconstructs the original byte string from any >= k shards.
  /// `shards[i]` empty (or nullopt) means shard i is missing.
  Expected<Bytes> decode(const std::vector<std::optional<Bytes>>& shards) const;

  /// Re-derives one missing shard (by index) from any k present shards;
  /// used to check a received fragment against a Merkle root cheaply.
  Expected<Bytes> reconstruct_shard(
      const std::vector<std::optional<Bytes>>& shards, std::uint32_t index) const;

 private:
  /// Row `row` of the encoding matrix (identity on top, Cauchy below).
  std::uint8_t matrix_at(std::uint32_t row, std::uint32_t col) const;

  /// Solves for the data shards given k present shard rows. Returns the k
  /// recovered data shards.
  Expected<std::vector<Bytes>> solve_data(
      const std::vector<std::optional<Bytes>>& shards) const;

  std::uint32_t k_;
  std::uint32_t m_;
};

}  // namespace dr::crypto
