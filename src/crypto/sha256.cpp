#include "crypto/sha256.hpp"

#include <cstdlib>
#include <cstring>

#include "crypto/sha256_internal.hpp"

namespace dr::crypto {
namespace {

inline std::uint32_t rotr(std::uint32_t x, int n) {
  return (x >> n) | (x << (32 - n));
}

bool env_forces_scalar() {
  const char* v = std::getenv("DAGRIDER_SHA256_SCALAR");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

}  // namespace

namespace detail {

void compress_scalar(std::uint32_t* state, const std::uint8_t* blocks,
                     std::size_t nblocks) {
  for (std::size_t blk = 0; blk < nblocks; ++blk) {
    const std::uint8_t* block = blocks + blk * 64;
    std::uint32_t w[64];
    for (int i = 0; i < 16; ++i) {
      w[i] = (static_cast<std::uint32_t>(block[4 * i]) << 24) |
             (static_cast<std::uint32_t>(block[4 * i + 1]) << 16) |
             (static_cast<std::uint32_t>(block[4 * i + 2]) << 8) |
             static_cast<std::uint32_t>(block[4 * i + 3]);
    }
    for (int i = 16; i < 64; ++i) {
      const std::uint32_t s0 =
          rotr(w[i - 15], 7) ^ rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
      const std::uint32_t s1 =
          rotr(w[i - 2], 17) ^ rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
      w[i] = w[i - 16] + s0 + w[i - 7] + s1;
    }

    std::uint32_t a = state[0], b = state[1], c = state[2], d = state[3];
    std::uint32_t e = state[4], f = state[5], g = state[6], h = state[7];
    for (int i = 0; i < 64; ++i) {
      const std::uint32_t s1 = rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25);
      const std::uint32_t ch = (e & f) ^ (~e & g);
      const std::uint32_t t1 = h + s1 + ch + kSha256Round[i] + w[i];
      const std::uint32_t s0 = rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22);
      const std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
      const std::uint32_t t2 = s0 + maj;
      h = g;
      g = f;
      f = e;
      e = d + t1;
      d = c;
      c = b;
      b = a;
      a = t1 + t2;
    }
    state[0] += a;
    state[1] += b;
    state[2] += c;
    state[3] += d;
    state[4] += e;
    state[5] += f;
    state[6] += g;
    state[7] += h;
  }
}

CompressFn dispatched_compress() {
  // Resolved exactly once; the env override is read before any hashing so a
  // force-scalar test run never mixes backends mid-process.
  static const CompressFn fn = [] {
    if (!env_forces_scalar() && shani_supported()) return &compress_shani;
    return &compress_scalar;
  }();
  return fn;
}

}  // namespace detail

const char* sha256_backend() {
  return detail::dispatched_compress() == &detail::compress_scalar ? "scalar"
                                                                   : "sha-ni";
}

void Sha256::reset() {
  std::memcpy(h_.data(), detail::kSha256Init, sizeof(detail::kSha256Init));
  buf_len_ = 0;
  total_len_ = 0;
}

void Sha256::update(BytesView data) {
  total_len_ += data.size();
  std::size_t off = 0;
  if (buf_len_ > 0) {
    const std::size_t take = std::min(data.size(), buf_.size() - buf_len_);
    std::memcpy(buf_.data() + buf_len_, data.data(), take);
    buf_len_ += take;
    off = take;
    if (buf_len_ == buf_.size()) {
      compress_(h_.data(), buf_.data(), 1);
      buf_len_ = 0;
    }
  }
  if (const std::size_t full = (data.size() - off) / 64; full > 0) {
    compress_(h_.data(), data.data() + off, full);
    off += full * 64;
  }
  if (off < data.size()) {
    std::memcpy(buf_.data(), data.data() + off, data.size() - off);
    buf_len_ = data.size() - off;
  }
}

Digest Sha256::finish() {
  const std::uint64_t bit_len = total_len_ * 8;
  const std::uint8_t pad = 0x80;
  update(BytesView{&pad, 1});
  const std::uint8_t zero = 0;
  while (buf_len_ != 56) update(BytesView{&zero, 1});
  std::uint8_t len_be[8];
  for (int i = 0; i < 8; ++i) {
    len_be[i] = static_cast<std::uint8_t>(bit_len >> (8 * (7 - i)));
  }
  // Bypass total_len_ bookkeeping: the length block is part of padding.
  std::memcpy(buf_.data() + 56, len_be, 8);
  compress_(h_.data(), buf_.data(), 1);

  Digest out{};
  for (std::size_t i = 0; i < 8; ++i) {
    out[4 * i] = static_cast<std::uint8_t>(h_[i] >> 24);
    out[4 * i + 1] = static_cast<std::uint8_t>(h_[i] >> 16);
    out[4 * i + 2] = static_cast<std::uint8_t>(h_[i] >> 8);
    out[4 * i + 3] = static_cast<std::uint8_t>(h_[i]);
  }
  return out;
}

Digest sha256(BytesView data) {
  Sha256 ctx;
  ctx.update(data);
  return ctx.finish();
}

Digest sha256(std::string_view s) {
  Sha256 ctx;
  ctx.update(s);
  return ctx.finish();
}

Digest sha256_portable(BytesView data) {
  Sha256 ctx(Sha256::Backend::kScalar);
  ctx.update(data);
  return ctx.finish();
}

Digest sha256_tagged(std::string_view tag, std::initializer_list<BytesView> parts) {
  Sha256 ctx;
  ctx.update(tag);
  for (BytesView p : parts) {
    std::uint8_t len_le[8];
    const std::uint64_t n = p.size();
    for (int i = 0; i < 8; ++i) len_le[i] = static_cast<std::uint8_t>(n >> (8 * i));
    ctx.update(BytesView{len_le, 8});
    ctx.update(p);
  }
  return ctx.finish();
}

std::uint64_t digest_prefix_u64(const Digest& d) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(d[i]) << (8 * i);
  }
  return v;
}

Bytes digest_bytes(const Digest& d) { return Bytes(d.begin(), d.end()); }

}  // namespace dr::crypto
