#include "crypto/merkle.hpp"

#include "common/assert.hpp"

namespace dr::crypto {

Digest MerkleTree::hash_leaf(BytesView leaf) {
  Sha256 ctx;
  const std::uint8_t tag = 0x00;
  ctx.update(BytesView{&tag, 1});
  ctx.update(leaf);
  return ctx.finish();
}

Digest MerkleTree::hash_node(const Digest& left, const Digest& right) {
  Sha256 ctx;
  const std::uint8_t tag = 0x01;
  ctx.update(BytesView{&tag, 1});
  ctx.update(BytesView{left.data(), left.size()});
  ctx.update(BytesView{right.data(), right.size()});
  return ctx.finish();
}

MerkleTree::MerkleTree(const std::vector<Bytes>& leaves) {
  DR_ASSERT_MSG(!leaves.empty(), "MerkleTree over zero leaves");
  std::vector<Digest> level;
  level.reserve(leaves.size());
  for (const Bytes& leaf : leaves) level.push_back(hash_leaf(leaf));
  levels_.push_back(std::move(level));
  while (levels_.back().size() > 1) {
    const std::vector<Digest>& prev = levels_.back();
    std::vector<Digest> next;
    next.reserve((prev.size() + 1) / 2);
    for (std::size_t i = 0; i + 1 < prev.size(); i += 2) {
      next.push_back(hash_node(prev[i], prev[i + 1]));
    }
    if (prev.size() % 2 == 1) next.push_back(prev.back());  // promote odd node
    levels_.push_back(std::move(next));
  }
}

MerkleProof MerkleTree::prove(std::uint32_t index) const {
  DR_ASSERT(index < leaf_count());
  MerkleProof proof;
  proof.leaf_index = index;
  proof.leaf_count = leaf_count();
  std::uint32_t i = index;
  for (std::size_t lvl = 0; lvl + 1 < levels_.size(); ++lvl) {
    const std::vector<Digest>& level = levels_[lvl];
    const std::uint32_t sibling = i ^ 1u;
    if (sibling < level.size()) proof.siblings.push_back(level[sibling]);
    // A promoted odd node has no sibling on this level and hashes upward
    // unchanged, so nothing is appended for it.
    i /= 2;
  }
  return proof;
}

bool MerkleTree::verify(const Digest& root, BytesView leaf,
                        const MerkleProof& proof) {
  if (proof.leaf_index >= proof.leaf_count || proof.leaf_count == 0) return false;
  Digest acc = hash_leaf(leaf);
  std::uint32_t i = proof.leaf_index;
  std::uint32_t count = proof.leaf_count;
  std::size_t used = 0;
  while (count > 1) {
    const std::uint32_t sibling = i ^ 1u;
    if (sibling < count) {
      if (used >= proof.siblings.size()) return false;
      const Digest& sib = proof.siblings[used++];
      acc = (i % 2 == 0) ? hash_node(acc, sib) : hash_node(sib, acc);
    }
    i /= 2;
    count = (count + 1) / 2;
  }
  return used == proof.siblings.size() && acc == root;
}

Bytes MerkleProof::serialize() const {
  ByteWriter w(wire_size());
  w.u32(leaf_index);
  w.u32(leaf_count);
  w.u32(static_cast<std::uint32_t>(siblings.size()));
  for (const Digest& d : siblings) w.raw(BytesView{d.data(), d.size()});
  return std::move(w).take();
}

bool MerkleProof::deserialize(ByteReader& in, MerkleProof& out) {
  out.leaf_index = in.u32();
  out.leaf_count = in.u32();
  const std::uint32_t n = in.u32();
  if (!in.ok() || n > 64) return false;  // > 2^64 leaves is nonsense
  out.siblings.clear();
  out.siblings.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    Bytes raw = in.raw(kDigestSize);
    if (!in.ok()) return false;
    Digest d{};
    std::copy(raw.begin(), raw.end(), d.begin());
    out.siblings.push_back(d);
  }
  return in.ok();
}

}  // namespace dr::crypto
