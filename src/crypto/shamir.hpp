// Shamir secret sharing over Field61. The threshold coin's dealer shares one
// master secret per coin instance; any `threshold` shares reconstruct it via
// Lagrange interpolation at x = 0, fewer reveal nothing (information-
// theoretically), which is what the paper's unpredictability property needs.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "crypto/field61.hpp"

namespace dr::crypto {

struct ShamirShare {
  std::uint64_t x = 0;  ///< evaluation point (process index + 1; never 0)
  std::uint64_t y = 0;  ///< polynomial value, an element of Field61
};

class Shamir {
 public:
  /// Splits `secret` into n shares with reconstruction threshold `threshold`
  /// (polynomial degree threshold - 1). Coefficients drawn from `rng`.
  static std::vector<ShamirShare> split(std::uint64_t secret,
                                        std::uint32_t threshold, std::uint32_t n,
                                        Xoshiro256& rng);

  /// Lagrange interpolation at x = 0 over exactly `threshold` shares.
  /// Precondition: share x-coordinates are distinct and nonzero.
  static std::uint64_t reconstruct(const std::vector<ShamirShare>& shares);

  /// Evaluates the sharing polynomial implied by `shares` at point x.
  /// Used by the coin dealer to verify a claimed share against ground truth.
  static std::uint64_t interpolate_at(const std::vector<ShamirShare>& shares,
                                      std::uint64_t x);
};

}  // namespace dr::crypto
