#include "crypto/reed_solomon.hpp"

#include <algorithm>

#include "crypto/gf256.hpp"

namespace dr::crypto {
namespace {

/// Gaussian elimination over GF(256). `a` is an n x n matrix (row-major),
/// `b` holds n rows of shard bytes. Solves a * x = b in place; x replaces b.
bool gauss_solve(std::vector<std::uint8_t>& a, std::vector<Bytes>& b,
                 std::uint32_t n) {
  const auto at = [&](std::uint32_t r, std::uint32_t c) -> std::uint8_t& {
    return a[r * n + c];
  };
  for (std::uint32_t col = 0; col < n; ++col) {
    // Find a pivot row.
    std::uint32_t pivot = col;
    while (pivot < n && at(pivot, col) == 0) ++pivot;
    if (pivot == n) return false;  // singular
    if (pivot != col) {
      for (std::uint32_t c = 0; c < n; ++c) std::swap(at(pivot, c), at(col, c));
      std::swap(b[pivot], b[col]);
    }
    // Normalize the pivot row.
    const std::uint8_t inv = GF256::inv(at(col, col));
    for (std::uint32_t c = 0; c < n; ++c) at(col, c) = GF256::mul(at(col, c), inv);
    for (auto& byte : b[col]) byte = GF256::mul(byte, inv);
    // Eliminate the column everywhere else.
    for (std::uint32_t r = 0; r < n; ++r) {
      if (r == col) continue;
      const std::uint8_t factor = at(r, col);
      if (factor == 0) continue;
      for (std::uint32_t c = 0; c < n; ++c) {
        at(r, c) = GF256::add(at(r, c), GF256::mul(factor, at(col, c)));
      }
      for (std::size_t i = 0; i < b[r].size(); ++i) {
        b[r][i] = GF256::add(b[r][i], GF256::mul(factor, b[col][i]));
      }
    }
  }
  return true;
}

}  // namespace

ReedSolomon::ReedSolomon(std::uint32_t k, std::uint32_t m) : k_(k), m_(m) {
  DR_ASSERT_MSG(k >= 1 && k + m <= 255, "ReedSolomon: invalid (k, m)");
}

std::uint8_t ReedSolomon::matrix_at(std::uint32_t row, std::uint32_t col) const {
  DR_ASSERT(col < k_ && row < k_ + m_);
  if (row < k_) return row == col ? 1 : 0;  // systematic identity block
  // Cauchy block: 1 / (x_i + y_j) with x_i = k..k+m-1, y_j = 0..k-1.
  // x and y ranges are disjoint in GF(256), so x_i + y_j (XOR of distinct
  // values) is nonzero and every square submatrix is invertible.
  const std::uint8_t x = static_cast<std::uint8_t>(row);        // k..k+m-1
  const std::uint8_t y = static_cast<std::uint8_t>(col);        // 0..k-1
  return GF256::inv(GF256::add(x, y));
}

std::vector<Bytes> ReedSolomon::encode(BytesView data) const {
  // 8-byte little-endian length header so decode strips padding exactly.
  const std::uint64_t len = data.size();
  const std::size_t padded = len + 8;
  const std::size_t shard_size = (padded + k_ - 1) / k_;

  std::vector<Bytes> shards(k_ + m_);
  Bytes flat(shard_size * k_, 0);
  for (std::size_t i = 0; i < 8; ++i) {
    flat[i] = static_cast<std::uint8_t>(len >> (8 * i));
  }
  std::copy(data.begin(), data.end(), flat.begin() + 8);

  for (std::uint32_t i = 0; i < k_; ++i) {
    shards[i] = Bytes(flat.begin() + static_cast<std::ptrdiff_t>(i * shard_size),
                      flat.begin() + static_cast<std::ptrdiff_t>((i + 1) * shard_size));
  }
  for (std::uint32_t r = 0; r < m_; ++r) {
    Bytes parity(shard_size, 0);
    for (std::uint32_t c = 0; c < k_; ++c) {
      const std::uint8_t coef = matrix_at(k_ + r, c);
      if (coef == 0) continue;
      for (std::size_t i = 0; i < shard_size; ++i) {
        parity[i] = GF256::add(parity[i], GF256::mul(coef, shards[c][i]));
      }
    }
    shards[k_ + r] = std::move(parity);
  }
  return shards;
}

Expected<std::vector<Bytes>> ReedSolomon::solve_data(
    const std::vector<std::optional<Bytes>>& shards) const {
  if (shards.size() != k_ + m_) {
    return Expected<std::vector<Bytes>>::failure("wrong shard vector size");
  }
  // Collect the first k present shards and their matrix rows.
  std::vector<std::uint8_t> a;
  a.reserve(static_cast<std::size_t>(k_) * k_);
  std::vector<Bytes> b;
  std::size_t shard_size = 0;
  for (std::uint32_t i = 0; i < k_ + m_ && b.size() < k_; ++i) {
    if (!shards[i].has_value()) continue;
    if (shard_size == 0) {
      shard_size = shards[i]->size();
      if (shard_size == 0) {
        return Expected<std::vector<Bytes>>::failure("empty shard");
      }
    } else if (shards[i]->size() != shard_size) {
      return Expected<std::vector<Bytes>>::failure("inconsistent shard sizes");
    }
    for (std::uint32_t c = 0; c < k_; ++c) a.push_back(matrix_at(i, c));
    b.push_back(*shards[i]);
  }
  if (b.size() < k_) {
    return Expected<std::vector<Bytes>>::failure("not enough shards to decode");
  }
  if (!gauss_solve(a, b, k_)) {
    return Expected<std::vector<Bytes>>::failure("singular decode matrix");
  }
  return b;
}

Expected<Bytes> ReedSolomon::decode(
    const std::vector<std::optional<Bytes>>& shards) const {
  auto data = solve_data(shards);
  if (!data) return Expected<Bytes>::failure(data.error());
  const std::vector<Bytes>& rows = data.value();
  const std::size_t shard_size = rows[0].size();

  Bytes flat;
  flat.reserve(shard_size * k_);
  for (const Bytes& row : rows) flat.insert(flat.end(), row.begin(), row.end());

  std::uint64_t len = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    len |= static_cast<std::uint64_t>(flat[i]) << (8 * i);
  }
  if (len + 8 > flat.size()) {
    return Expected<Bytes>::failure("corrupt length header");
  }
  return Bytes(flat.begin() + 8, flat.begin() + static_cast<std::ptrdiff_t>(8 + len));
}

Expected<Bytes> ReedSolomon::reconstruct_shard(
    const std::vector<std::optional<Bytes>>& shards, std::uint32_t index) const {
  if (index >= k_ + m_) return Expected<Bytes>::failure("shard index out of range");
  auto data = solve_data(shards);
  if (!data) return Expected<Bytes>::failure(data.error());
  const std::vector<Bytes>& rows = data.value();
  const std::size_t shard_size = rows[0].size();
  Bytes out(shard_size, 0);
  for (std::uint32_t c = 0; c < k_; ++c) {
    const std::uint8_t coef = matrix_at(index, c);
    if (coef == 0) continue;
    for (std::size_t i = 0; i < shard_size; ++i) {
      out[i] = GF256::add(out[i], GF256::mul(coef, rows[c][i]));
    }
  }
  return out;
}

}  // namespace dr::crypto
