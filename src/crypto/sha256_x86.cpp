// x86-64 SHA-NI backend for the SHA-256 block compression. Compiled with
// per-function target attributes (no global -msha), so the object links into
// portable builds; dispatched_compress() only selects it after
// __builtin_cpu_supports says the CPU really has the extension.
//
// Round structure: the sha256rnds2 instruction retires two rounds per issue
// on the ABEF/CDGH register split, and sha256msg1/sha256msg2 plus one
// alignr+add compute the message-schedule recurrence
//   W[i] = sigma1(W[i-2]) + W[i-7] + sigma0(W[i-15]) + W[i-16]
// four lanes at a time. The loop below walks the sixteen 4-round groups with
// a rotating 4-register schedule window: group g consumes M[g&3]
// (= W[4g..4g+3]), finalizes the next value of M[(g+1)&3] during groups
// 3..14, and applies the msg1 half for M[(g-1)&3]'s next value during groups
// 1..12 — the same dataflow as the canonical unrolled SHA-NI sequence.
#include "crypto/sha256.hpp"
#include "crypto/sha256_internal.hpp"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define DR_SHA256_HAVE_SHANI 1
#include <immintrin.h>
#endif

namespace dr::crypto::detail {

#ifdef DR_SHA256_HAVE_SHANI

bool shani_supported() {
  return __builtin_cpu_supports("sha") && __builtin_cpu_supports("ssse3") &&
         __builtin_cpu_supports("sse4.1");
}

__attribute__((target("sha,ssse3,sse4.1"))) void compress_shani(
    std::uint32_t* state, const std::uint8_t* blocks, std::size_t nblocks) {
  // Byte shuffle turning each 32-bit word big-endian within its lane.
  const __m128i kBswap =
      _mm_set_epi64x(0x0c0d0e0f08090a0bLL, 0x0405060700010203LL);

  // Pack {a,b,c,d,e,f,g,h} into the ABEF / CDGH layout sha256rnds2 expects.
  __m128i tmp = _mm_loadu_si128(reinterpret_cast<const __m128i*>(state));
  __m128i state1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(state + 4));
  tmp = _mm_shuffle_epi32(tmp, 0xB1);
  state1 = _mm_shuffle_epi32(state1, 0x1B);
  __m128i state0 = _mm_alignr_epi8(tmp, state1, 8);
  state1 = _mm_blend_epi16(state1, tmp, 0xF0);

  for (std::size_t blk = 0; blk < nblocks; ++blk) {
    const std::uint8_t* block = blocks + blk * 64;
    const __m128i abef_save = state0;
    const __m128i cdgh_save = state1;

    __m128i m[4];
    for (int i = 0; i < 4; ++i) {
      m[i] = _mm_shuffle_epi8(
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(block + 16 * i)),
          kBswap);
    }

    for (int g = 0; g < 16; ++g) {
      const __m128i k = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(&kSha256Round[4 * g]));
      __m128i wk = _mm_add_epi32(m[g & 3], k);
      state1 = _mm_sha256rnds2_epu32(state1, state0, wk);
      if (g >= 3 && g <= 14) {
        // W[i-7] lanes via alignr, then the sigma1 half of the recurrence.
        const __m128i shifted = _mm_alignr_epi8(m[g & 3], m[(g + 3) & 3], 4);
        m[(g + 1) & 3] = _mm_add_epi32(m[(g + 1) & 3], shifted);
        m[(g + 1) & 3] = _mm_sha256msg2_epu32(m[(g + 1) & 3], m[g & 3]);
      }
      wk = _mm_shuffle_epi32(wk, 0x0E);
      state0 = _mm_sha256rnds2_epu32(state0, state1, wk);
      if (g >= 1 && g <= 12) {
        // sigma0(W[i-15]) + W[i-16] half, applied before the lanes are due.
        m[(g + 3) & 3] = _mm_sha256msg1_epu32(m[(g + 3) & 3], m[g & 3]);
      }
    }

    state0 = _mm_add_epi32(state0, abef_save);
    state1 = _mm_add_epi32(state1, cdgh_save);
  }

  // Unpack ABEF/CDGH back to {a..h}.
  tmp = _mm_shuffle_epi32(state0, 0x1B);
  state1 = _mm_shuffle_epi32(state1, 0xB1);
  state0 = _mm_blend_epi16(tmp, state1, 0xF0);
  state1 = _mm_alignr_epi8(state1, tmp, 8);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(state), state0);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(state + 4), state1);
}

#else  // no SHA-NI on this target

bool shani_supported() { return false; }

void compress_shani(std::uint32_t* state, const std::uint8_t* blocks,
                    std::size_t nblocks) {
  // Unreachable by construction (dispatch checks shani_supported()); fall
  // back to the scalar path rather than crash if called anyway.
  compress_scalar(state, blocks, nblocks);
}

#endif  // DR_SHA256_HAVE_SHANI

}  // namespace dr::crypto::detail
