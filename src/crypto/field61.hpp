// Arithmetic modulo the Mersenne prime p = 2^61 - 1. Field for the Shamir
// secret sharing behind the threshold coin: big enough that a uniformly
// drawn coin value mod n is (negligibly close to) fair for any realistic n,
// small enough that products fit in unsigned 128-bit arithmetic.
#pragma once

#include <cstdint>

#include "common/assert.hpp"

namespace dr::crypto {

class Field61 {
 public:
  static constexpr std::uint64_t kP = (1ULL << 61) - 1;

  /// Canonical representative in [0, p).
  static constexpr std::uint64_t reduce(std::uint64_t x) {
    // x < 2^64; fold twice to land under p.
    x = (x & kP) + (x >> 61);
    if (x >= kP) x -= kP;
    return x;
  }

  static constexpr std::uint64_t add(std::uint64_t a, std::uint64_t b) {
    std::uint64_t s = a + b;  // < 2^62, no overflow
    if (s >= kP) s -= kP;
    return s;
  }

  static constexpr std::uint64_t sub(std::uint64_t a, std::uint64_t b) {
    return a >= b ? a - b : a + kP - b;
  }

  static constexpr std::uint64_t mul(std::uint64_t a, std::uint64_t b) {
    __extension__ using u128 = unsigned __int128;
    const u128 prod = static_cast<u128>(a) * static_cast<u128>(b);
    const std::uint64_t lo = static_cast<std::uint64_t>(prod) & kP;
    const std::uint64_t hi = static_cast<std::uint64_t>(prod >> 61);
    std::uint64_t s = lo + hi;
    if (s >= kP) s -= kP;
    return s;
  }

  static constexpr std::uint64_t pow(std::uint64_t base, std::uint64_t e) {
    std::uint64_t acc = 1;
    base = reduce(base);
    while (e > 0) {
      if (e & 1) acc = mul(acc, base);
      base = mul(base, base);
      e >>= 1;
    }
    return acc;
  }

  /// Multiplicative inverse via Fermat's little theorem; a must be nonzero.
  static std::uint64_t inv(std::uint64_t a) {
    a = reduce(a);
    DR_ASSERT_MSG(a != 0, "Field61 inverse of zero");
    return pow(a, kP - 2);
  }
};

}  // namespace dr::crypto
