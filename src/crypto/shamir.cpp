#include "crypto/shamir.hpp"

#include "common/assert.hpp"

namespace dr::crypto {

std::vector<ShamirShare> Shamir::split(std::uint64_t secret,
                                       std::uint32_t threshold, std::uint32_t n,
                                       Xoshiro256& rng) {
  DR_ASSERT_MSG(threshold >= 1 && threshold <= n, "Shamir: bad threshold");
  // coeffs[0] = secret; higher coefficients uniform in the field.
  std::vector<std::uint64_t> coeffs(threshold);
  coeffs[0] = Field61::reduce(secret);
  for (std::uint32_t i = 1; i < threshold; ++i) {
    std::uint64_t c;
    do {
      c = rng() & ((1ULL << 61) - 1);
    } while (c >= Field61::kP);  // rejection sample for uniformity
    coeffs[i] = c;
  }
  std::vector<ShamirShare> shares(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint64_t x = i + 1;
    // Horner evaluation.
    std::uint64_t y = 0;
    for (std::uint32_t j = threshold; j-- > 0;) {
      y = Field61::add(Field61::mul(y, x), coeffs[j]);
    }
    shares[i] = ShamirShare{x, y};
  }
  return shares;
}

std::uint64_t Shamir::interpolate_at(const std::vector<ShamirShare>& shares,
                                     std::uint64_t at) {
  DR_ASSERT_MSG(!shares.empty(), "Shamir: no shares");
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < shares.size(); ++i) {
    std::uint64_t num = 1;
    std::uint64_t den = 1;
    for (std::size_t j = 0; j < shares.size(); ++j) {
      if (j == i) continue;
      num = Field61::mul(num, Field61::sub(at, shares[j].x));
      den = Field61::mul(den, Field61::sub(shares[i].x, shares[j].x));
    }
    const std::uint64_t term =
        Field61::mul(shares[i].y, Field61::mul(num, Field61::inv(den)));
    acc = Field61::add(acc, term);
  }
  return acc;
}

std::uint64_t Shamir::reconstruct(const std::vector<ShamirShare>& shares) {
  return interpolate_at(shares, 0);
}

}  // namespace dr::crypto
