// GF(2^8) arithmetic with the AES polynomial x^8+x^4+x^3+x+1 (0x11b).
// Backs the Reed–Solomon erasure codes used by the AVID broadcast.
#pragma once

#include <array>
#include <cstdint>

namespace dr::crypto {

/// Log/antilog tables built once at static-init time.
class GF256 {
 public:
  static std::uint8_t add(std::uint8_t a, std::uint8_t b) { return a ^ b; }
  static std::uint8_t sub(std::uint8_t a, std::uint8_t b) { return a ^ b; }

  static std::uint8_t mul(std::uint8_t a, std::uint8_t b) {
    if (a == 0 || b == 0) return 0;
    const Tables& t = tables();
    return t.exp[t.log[a] + t.log[b]];
  }

  /// Multiplicative inverse; a must be nonzero.
  static std::uint8_t inv(std::uint8_t a);

  /// a / b; b must be nonzero.
  static std::uint8_t div(std::uint8_t a, std::uint8_t b);

  /// alpha^e where alpha = 0x03 is a generator of GF(256)*.
  static std::uint8_t exp(unsigned e) { return tables().exp[e % 255]; }

 private:
  struct Tables {
    std::array<std::uint8_t, 512> exp;  // doubled to skip the mod-255 in mul
    std::array<std::uint8_t, 256> log;
  };
  static const Tables& tables();
};

}  // namespace dr::crypto
