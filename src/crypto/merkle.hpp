// Binary Merkle tree with inclusion proofs; commits an AVID sender to the
// full fragment vector so Byzantine senders cannot hand out inconsistent
// erasure-coded shards.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.hpp"
#include "crypto/sha256.hpp"

namespace dr::crypto {

struct MerkleProof {
  std::uint32_t leaf_index = 0;
  std::uint32_t leaf_count = 0;
  std::vector<Digest> siblings;  // bottom-up

  Bytes serialize() const;
  [[nodiscard]] static bool deserialize(ByteReader& in, MerkleProof& out);
  /// Wire size in bytes; used for communication accounting.
  std::size_t wire_size() const { return 12 + siblings.size() * kDigestSize; }
};

/// Immutable tree over a vector of leaf byte-strings.
/// Leaves are hashed with a domain tag distinct from interior nodes, so a
/// leaf can never be reinterpreted as an interior node (second-preimage
/// hardening). An odd node on a level is promoted, not duplicated.
class MerkleTree {
 public:
  explicit MerkleTree(const std::vector<Bytes>& leaves);

  const Digest& root() const { return levels_.back()[0]; }
  std::uint32_t leaf_count() const {
    return static_cast<std::uint32_t>(levels_[0].size());
  }
  MerkleProof prove(std::uint32_t index) const;

  /// Stateless verification of (leaf bytes, proof) against a root.
  static bool verify(const Digest& root, BytesView leaf, const MerkleProof& proof);

  static Digest hash_leaf(BytesView leaf);
  static Digest hash_node(const Digest& left, const Digest& right);

 private:
  std::vector<std::vector<Digest>> levels_;  // levels_[0] = leaf hashes
};

}  // namespace dr::crypto
