#include "crypto/gf256.hpp"

#include "common/assert.hpp"

namespace dr::crypto {

const GF256::Tables& GF256::tables() {
  static const Tables t = [] {
    Tables t{};
    std::uint8_t x = 1;
    for (std::size_t i = 0; i < 255; ++i) {
      t.exp[i] = x;
      t.log[x] = static_cast<std::uint8_t>(i);
      // Multiply by the generator 0x03 = x + 1: x*3 = (x<<1) ^ x, reduced.
      std::uint8_t hi = static_cast<std::uint8_t>(x & 0x80);
      std::uint8_t xt = static_cast<std::uint8_t>(x << 1);
      if (hi) xt ^= 0x1b;  // reduce modulo x^8+x^4+x^3+x+1
      x = static_cast<std::uint8_t>(xt ^ x);
    }
    for (std::size_t i = 255; i < 512; ++i) t.exp[i] = t.exp[i - 255];
    t.log[0] = 0;  // unused; mul guards zero operands
    return t;
  }();
  return t;
}

std::uint8_t GF256::inv(std::uint8_t a) {
  DR_ASSERT_MSG(a != 0, "GF256 inverse of zero");
  const Tables& t = tables();
  return t.exp[255u - t.log[a]];
}

std::uint8_t GF256::div(std::uint8_t a, std::uint8_t b) {
  DR_ASSERT_MSG(b != 0, "GF256 division by zero");
  if (a == 0) return 0;
  const Tables& t = tables();
  return t.exp[(t.log[a] + 255u - t.log[b]) % 255u];
}

}  // namespace dr::crypto
