// SHA-256 implemented from scratch (FIPS 180-4). Used for vertex digests,
// Merkle trees in the AVID broadcast, and as the PRF behind the coin dealer.
//
// The block compression has two backends: a portable scalar implementation
// and an x86 SHA-NI one (sha256_x86.cpp). One-shot and incremental hashing
// dispatch at runtime via __builtin_cpu_supports; the scalar path stays
// reachable everywhere through sha256_portable() and the
// DAGRIDER_SHA256_SCALAR=1 environment override, and the test suite checks
// the two backends bit-identical over random inputs and fuzz corpora.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

#include "common/bytes.hpp"

namespace dr::crypto {

inline constexpr std::size_t kDigestSize = 32;
using Digest = std::array<std::uint8_t, kDigestSize>;

namespace detail {
/// Compresses `nblocks` consecutive 64-byte blocks into `state` (the eight
/// working words of FIPS 180-4 §6.2).
using CompressFn = void (*)(std::uint32_t* state, const std::uint8_t* blocks,
                            std::size_t nblocks);
void compress_scalar(std::uint32_t* state, const std::uint8_t* blocks,
                     std::size_t nblocks);
/// The backend sha256()/Sha256{} use: SHA-NI when the CPU has it and
/// DAGRIDER_SHA256_SCALAR is unset, scalar otherwise. Resolved once.
CompressFn dispatched_compress();
}  // namespace detail

/// Name of the backend dispatched_compress() resolved to ("sha-ni" or
/// "scalar") — surfaced by bench_micro and the perf-smoke CI job.
const char* sha256_backend();

/// Incremental SHA-256 context.
class Sha256 {
 public:
  enum class Backend {
    kAuto,    ///< runtime-dispatched (SHA-NI where available)
    kScalar,  ///< portable path, for cross-checking the dispatched backend
  };

  Sha256() : Sha256(Backend::kAuto) {}
  explicit Sha256(Backend backend)
      : compress_(backend == Backend::kScalar ? &detail::compress_scalar
                                              : detail::dispatched_compress()) {
    reset();
  }

  void reset();
  void update(BytesView data);
  void update(std::string_view s) {
    update(BytesView{reinterpret_cast<const std::uint8_t*>(s.data()), s.size()});
  }
  /// Finalizes and returns the digest; the context must be reset() to reuse.
  Digest finish();

 private:
  detail::CompressFn compress_;
  std::array<std::uint32_t, 8> h_;
  std::array<std::uint8_t, 64> buf_;
  std::size_t buf_len_ = 0;
  std::uint64_t total_len_ = 0;
};

/// One-shot convenience.
Digest sha256(BytesView data);
Digest sha256(std::string_view s);

/// One-shot through the scalar backend regardless of CPU features; the
/// property tests assert sha256() == sha256_portable() bit-for-bit.
Digest sha256_portable(BytesView data);

/// Domain-separated hash of several fields: H(tag || len(a)||a || ...).
Digest sha256_tagged(std::string_view tag, std::initializer_list<BytesView> parts);

/// First 8 bytes of a digest as a little-endian u64 (leader election, PRF).
std::uint64_t digest_prefix_u64(const Digest& d);

Bytes digest_bytes(const Digest& d);

}  // namespace dr::crypto
