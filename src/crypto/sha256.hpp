// SHA-256 implemented from scratch (FIPS 180-4). Used for vertex digests,
// Merkle trees in the AVID broadcast, and as the PRF behind the coin dealer.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

#include "common/bytes.hpp"

namespace dr::crypto {

inline constexpr std::size_t kDigestSize = 32;
using Digest = std::array<std::uint8_t, kDigestSize>;

/// Incremental SHA-256 context.
class Sha256 {
 public:
  Sha256() { reset(); }

  void reset();
  void update(BytesView data);
  void update(std::string_view s) {
    update(BytesView{reinterpret_cast<const std::uint8_t*>(s.data()), s.size()});
  }
  /// Finalizes and returns the digest; the context must be reset() to reuse.
  Digest finish();

 private:
  void compress(const std::uint8_t* block);

  std::array<std::uint32_t, 8> h_;
  std::array<std::uint8_t, 64> buf_;
  std::size_t buf_len_ = 0;
  std::uint64_t total_len_ = 0;
};

/// One-shot convenience.
Digest sha256(BytesView data);
Digest sha256(std::string_view s);

/// Domain-separated hash of several fields: H(tag || len(a)||a || ...).
Digest sha256_tagged(std::string_view tag, std::initializer_list<BytesView> parts);

/// First 8 bytes of a digest as a little-endian u64 (leader election, PRF).
std::uint64_t digest_prefix_u64(const Digest& d);

Bytes digest_bytes(const Digest& d);

}  // namespace dr::crypto
