// Bracha reliable broadcast with the hash-echo optimization: ECHO and READY
// carry a 32-byte digest instead of the full payload, cutting the dominant
// O(n^2 |m|) term of classic Bracha to O(n |m| + n^2 * 32) per broadcast.
//
// Totality needs one extra mechanism: a process can collect 2f+1 READYs
// without ever receiving the payload (a Byzantine sender may have SENDed to
// a subset). Since a correct READY chain starts from 2f+1 ECHOes and
// correct processes only ECHO after holding the payload, at least f+1
// correct processes hold it; the lacking process PULLs it from the echoers
// and verifies against the digest. No timers needed: pulls go to every
// known holder at once, first digest-matching response wins.
//
// Per instance (source, round):
//   sender:            SEND(m) to all
//   on SEND:           ECHO(H(m)) to all                        (once)
//   on 2f+1 ECHO(d):   READY(d) to all                          (once)
//   on  f+1 READY(d):  READY(d) to all                          (once)
//   on 2f+1 READY(d):  deliver if payload held, else FETCH(d) from holders
//   on FETCH(d):       PAYLOAD(m) back to the requester if held
//   on PAYLOAD(m):     deliver if H(m)=d and the READY quorum is in
#pragma once

#include <cstdint>
#include <map>
#include <unordered_set>

#include "crypto/sha256.hpp"
#include "rbc/rbc.hpp"

namespace dr::rbc {

class BrachaHashRbc final : public ReliableBroadcast {
 public:
  BrachaHashRbc(net::Bus& net, ProcessId pid);

  void set_deliver(DeliverFn fn) override { deliver_ = std::move(fn); }
  void broadcast(Round r, net::Payload payload) override;

 private:
  enum MsgType : std::uint8_t {
    kSend = 1,
    kEcho = 2,
    kReady = 3,
    kFetch = 4,
    kPayload = 5,
  };

  struct InstanceKey {
    ProcessId source;
    Round round;
    bool operator<(const InstanceKey& o) const {
      return source != o.source ? source < o.source : round < o.round;
    }
  };

  struct PerDigest {
    std::unordered_set<ProcessId> echoes;
    std::unordered_set<ProcessId> readies;
    /// Holders already asked for the payload. Pulls are incremental: an
    /// echo arriving after the READY quorum still triggers a fetch, so a
    /// quorum reached before any echo cannot strand the instance.
    std::unordered_set<ProcessId> fetched_from;
  };

  struct Instance {
    std::map<crypto::Digest, PerDigest> by_digest;
    net::Payload payload;  ///< window into the SEND/PAYLOAD message it rode in
    bool have_payload = false;
    crypto::Digest payload_digest{};
    bool echoed = false;
    bool readied = false;
    bool delivered = false;
  };

  void on_message(ProcessId from, const net::Payload& msg);
  void maybe_progress(const InstanceKey& key, const crypto::Digest& digest);
  Bytes header(MsgType type, ProcessId source, Round r) const;

  net::Bus& net_;
  ProcessId pid_;
  DeliverFn deliver_;
  std::map<InstanceKey, Instance> instances_;
};

}  // namespace dr::rbc
