#include "rbc/avid.hpp"

#include "common/assert.hpp"

namespace dr::rbc {
namespace {

/// Wire format shared by DISPERSE and ECHO:
/// type u8 | source u32 | round u64 | root 32B | frag_index u32 |
/// frag blob | proof blob
struct FragmentMsg {
  std::uint8_t type = 0;
  ProcessId source = 0;
  Round round = 0;
  dr::crypto::Digest root{};
  std::uint32_t frag_index = 0;
  Bytes fragment;
  dr::crypto::MerkleProof proof;
};

bool parse_fragment_msg(BytesView data, FragmentMsg& out) {
  ByteReader in(data);
  out.type = in.u8();
  out.source = in.u32();
  out.round = in.u64();
  Bytes root = in.raw(dr::crypto::kDigestSize);
  out.frag_index = in.u32();
  out.fragment = in.blob();
  if (!in.ok()) return false;
  std::copy(root.begin(), root.end(), out.root.begin());
  if (!dr::crypto::MerkleProof::deserialize(in, out.proof)) return false;
  return in.done();
}

}  // namespace

AvidRbc::AvidRbc(net::Bus& net, ProcessId pid)
    : net_(net),
      pid_(pid),
      rs_(net.committee().small_quorum(),            // k = f+1 data shards
          net.n() - net.committee().small_quorum())  // m = n-f-1 parity
{
  net_.subscribe(pid_, net::Channel::kAvid,
                 [this](ProcessId from, const net::Payload& msg) {
                   on_message(from, msg.view());
                 });
}

void AvidRbc::broadcast(Round r, net::Payload payload) {
  // AVID sends a distinct fragment to each peer, so the fan-out is
  // inherently per-recipient; the shared-buffer optimization does not apply.
  const std::vector<Bytes> fragments = rs_.encode(payload.view());
  DR_ASSERT(fragments.size() == net_.n());
  const crypto::MerkleTree tree(fragments);
  for (ProcessId to = 0; to < net_.n(); ++to) {
    ByteWriter w(fragments[to].size() + 128);
    w.u8(kDisperse);
    w.u32(pid_);
    w.u64(r);
    w.raw(BytesView{tree.root().data(), tree.root().size()});
    w.u32(to);  // fragment index == recipient id
    w.blob(fragments[to]);
    const Bytes proof = tree.prove(to).serialize();
    w.raw(proof);
    net_.send(pid_, to, net::Channel::kAvid, std::move(w).take());
  }
}

void AvidRbc::on_message(ProcessId from, BytesView data) {
  if (data.empty()) return;
  const std::uint8_t type = data[0];

  if (type == kReady) {
    ByteReader in(data);
    in.u8();
    const ProcessId source = in.u32();
    const Round round = in.u64();
    Bytes root_raw = in.raw(crypto::kDigestSize);
    if (!in.done() || source >= net_.n()) return;
    crypto::Digest root{};
    std::copy(root_raw.begin(), root_raw.end(), root.begin());
    const InstanceKey key{source, round};
    Instance& inst = instances_[key];
    if (inst.delivered) return;
    inst.by_root[root].ready_senders.insert(from);
    maybe_progress(key, root);
    return;
  }

  FragmentMsg msg;
  if (!parse_fragment_msg(data, msg)) return;
  if (msg.source >= net_.n() || msg.frag_index >= net_.n()) return;
  if (msg.type == kDisperse && from != msg.source) return;  // forged sender
  // An echo must carry the echoer's own fragment; anything else inflates a
  // single Byzantine process into many fragment slots.
  if (msg.type == kEcho && msg.frag_index != from) return;
  if (msg.type == kDisperse && msg.frag_index != pid_) return;
  if (!crypto::MerkleTree::verify(msg.root, msg.fragment, msg.proof)) return;
  if (msg.proof.leaf_count != net_.n()) return;

  const InstanceKey key{msg.source, msg.round};
  Instance& inst = instances_[key];
  if (inst.delivered) return;
  PerRoot& pr = inst.by_root[msg.root];

  switch (msg.type) {
    case kDisperse: {
      pr.fragments.emplace(msg.frag_index, msg.fragment);
      if (!inst.echoed) {
        inst.echoed = true;
        ByteWriter w(msg.fragment.size() + 128);
        w.u8(kEcho);
        w.u32(msg.source);
        w.u64(msg.round);
        w.raw(BytesView{msg.root.data(), msg.root.size()});
        w.u32(pid_);
        w.blob(msg.fragment);
        w.raw(msg.proof.serialize());
        net_.broadcast(pid_, net::Channel::kAvid, std::move(w).take());
      }
      break;
    }
    case kEcho: {
      pr.fragments.emplace(msg.frag_index, msg.fragment);
      pr.echo_senders.insert(from);
      break;
    }
    default:
      return;
  }
  maybe_progress(key, msg.root);
}

bool AvidRbc::ensure_payload(PerRoot& pr, const crypto::Digest& root) {
  if (pr.encoding_checked) return pr.encoding_ok;
  if (pr.fragments.size() < rs_.data_shards()) return false;
  pr.encoding_checked = true;
  pr.encoding_ok = false;

  std::vector<std::optional<Bytes>> shards(net_.n());
  for (const auto& [idx, frag] : pr.fragments) shards[idx] = frag;
  auto decoded = rs_.decode(shards);
  if (!decoded) return false;

  // Re-encode and check the full fragment vector against the Merkle root:
  // this catches a Byzantine sender that dispersed fragments of *different*
  // codewords under one root.
  const std::vector<Bytes> full = rs_.encode(decoded.value());
  const crypto::MerkleTree tree(full);
  if (tree.root() != root) return false;

  pr.reconstructed = std::move(decoded).value();
  pr.encoding_ok = true;
  return true;
}

void AvidRbc::maybe_progress(const InstanceKey& key, const crypto::Digest& root) {
  Instance& inst = instances_[key];
  PerRoot& pr = inst.by_root[root];
  const std::uint32_t quorum = net_.committee().quorum();
  const std::uint32_t small = net_.committee().small_quorum();

  const bool echo_quorum = pr.echo_senders.size() >= quorum;
  const bool ready_amplify = pr.ready_senders.size() >= small;
  if (!inst.readied && (ready_amplify || (echo_quorum && ensure_payload(pr, root)))) {
    inst.readied = true;
    ByteWriter w(64);
    w.u8(kReady);
    w.u32(key.source);
    w.u64(key.round);
    w.raw(BytesView{root.data(), root.size()});
    net_.broadcast(pid_, net::Channel::kAvid, std::move(w).take());
  }
  if (pr.ready_senders.size() >= quorum && !inst.delivered &&
      ensure_payload(pr, root)) {
    inst.delivered = true;
    Bytes payload = std::move(*pr.reconstructed);
    inst.by_root.clear();
    contract_on_deliver(key.source, key.round);
    if (deliver_) deliver_(key.source, key.round, net::Payload(std::move(payload)));
  }
}

}  // namespace dr::rbc
