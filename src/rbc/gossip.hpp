// Sample-based probabilistic reliable broadcast in the spirit of Guerraoui,
// Kuznetsov, Monti, Pavlovič, Seredinschi, "Scalable Byzantine Reliable
// Broadcast" [25] (Murmur dissemination + Sieve echo sampling), providing
// delivery with probability 1-ε at O(n log n) message cost.
//
// Per instance (source, round):
//   dissemination (Murmur): the sender gossips GOSSIP(m) to its gossip
//     sample of size g = O(log n); every process forwards on first receipt.
//   consistency (Sieve): process p has an echo sample E_p of size e; when a
//     process q first receives a candidate payload it sends ECHO(digest) to
//     every p that sampled q. p delivers m once a threshold fraction of E_p
//     echoed m's digest and the payload itself has arrived via gossip.
//
// Simulation note (DESIGN.md §3): samples are derived from the public system
// seed so each process can compute who sampled it without the subscribe
// round of the original protocol. This preserves message complexity and the
// ε-probabilistic delivery behaviour that Table 1's gossip row measures; it
// weakens adaptive-attack resistance, which none of our adversaries exploit.
#pragma once

#include <cstdint>
#include <map>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "crypto/sha256.hpp"
#include "rbc/rbc.hpp"

namespace dr::rbc {

struct GossipParams {
  std::uint32_t gossip_fanout = 0;   ///< g; 0 -> auto: ceil(2 ln n) + 2
  std::uint32_t echo_sample = 0;     ///< e; 0 -> auto: ceil(4 ln n) + 4
  double echo_threshold = 0.66;      ///< fraction of echo sample required
};

class GossipRbc final : public ReliableBroadcast {
 public:
  GossipRbc(net::Bus& net, ProcessId pid, std::uint64_t system_seed,
            GossipParams params = {});

  void set_deliver(DeliverFn fn) override { deliver_ = std::move(fn); }
  void broadcast(Round r, net::Payload payload) override;

  std::uint32_t gossip_fanout() const { return fanout_; }
  std::uint32_t echo_sample_size() const { return sample_; }

 private:
  enum MsgType : std::uint8_t { kGossip = 1, kEcho = 2 };

  struct InstanceKey {
    ProcessId source;
    Round round;
    bool operator<(const InstanceKey& o) const {
      return source != o.source ? source < o.source : round < o.round;
    }
  };

  struct Instance {
    net::Payload payload;
    bool have_payload = false;
    crypto::Digest payload_digest{};
    std::map<crypto::Digest, std::unordered_set<ProcessId>> echoes;
    bool forwarded = false;
    bool echoed = false;
    bool delivered = false;
  };

  void on_message(ProcessId from, const net::Payload& msg);
  void handle_payload(const InstanceKey& key, Instance& inst,
                      net::Payload payload);
  void maybe_deliver(const InstanceKey& key, Instance& inst);
  static std::vector<ProcessId> sample_of(std::uint64_t system_seed,
                                          std::uint32_t n, ProcessId owner,
                                          std::uint32_t size, const char* tag);

  net::Bus& net_;
  ProcessId pid_;
  DeliverFn deliver_;
  std::uint32_t fanout_;
  std::uint32_t sample_;
  std::uint32_t echo_needed_;
  std::vector<ProcessId> gossip_targets_;   ///< my gossip sample
  std::vector<ProcessId> echo_sample_;      ///< whose echoes I count
  std::vector<ProcessId> echo_subscribers_; ///< processes that sampled me
  std::map<InstanceKey, Instance> instances_;
};

}  // namespace dr::rbc
