// Asynchronous Verifiable Information Dispersal, Cachin–Tessaro [14],
// dispersal/retrieval form (as used by Dumbo-MVBA): dispersing |v| bytes
// costs O(|v| + n log n) bits (fragments travel once, acknowledgements are
// digest-sized), and each retrieval costs O(|v| + n log n). This is the
// primitive that lets Dumbo — and DAG-Rider's AVID instantiation — reach
// amortized-linear communication.
//
//   disperse(tag, v): RS-encode v into n fragments (k = f+1), Merkle-commit,
//                     send DISPERSE(root, frag_i, proof_i) to each p_i.
//   on DISPERSE:      verify proof, store fragment, broadcast STORED(root).
//   availability:     a root is *available* once 2f+1 STORED(root) are seen
//                     (>= f+1 correct processes hold verified fragments).
//   retrieve(root):   broadcast RETRIEVE(root); holders answer FRAG(root,
//                     index, fragment, proof); reconstruct from any f+1.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <unordered_set>
#include <vector>

#include "crypto/merkle.hpp"
#include "crypto/reed_solomon.hpp"
#include "crypto/sha256.hpp"
#include "rbc/rbc.hpp"

namespace dr::rbc {

class AvidDispersal {
 public:
  /// Fired (once per root) when 2f+1 STORED acknowledgements are observed.
  using AvailableFn = std::function<void(const crypto::Digest& root)>;
  /// Fired when a requested root has been reconstructed and its re-encoding
  /// verified against the Merkle root.
  using RetrievedFn = std::function<void(const crypto::Digest& root, Bytes value)>;

  AvidDispersal(net::Bus& net, ProcessId pid,
                net::Channel channel = net::Channel::kDumbo);

  void set_available(AvailableFn fn) { available_ = std::move(fn); }

  /// Disperses `value`; returns its commitment root immediately.
  crypto::Digest disperse(const Bytes& value);

  /// Requests reconstruction of `root` from fragment holders.
  void retrieve(const crypto::Digest& root, RetrievedFn fn);

  bool is_available(const crypto::Digest& root) const;

 private:
  enum MsgType : std::uint8_t {
    kDisperse = 1,
    kStored = 2,
    kRetrieve = 3,
    kFragment = 4,
  };

  struct RootState {
    std::optional<Bytes> my_fragment;       // fragment stored at this process
    std::optional<crypto::MerkleProof> my_proof;
    std::unordered_set<ProcessId> stored_acks;
    bool available_fired = false;
    std::unordered_set<ProcessId> pending_requesters;
    // Retrieval (as requester):
    bool retrieving = false;
    std::map<std::uint32_t, Bytes> collected;
    std::vector<RetrievedFn> retrieve_callbacks;
    std::optional<Bytes> value;  // reconstructed (or locally dispersed)
  };

  void on_message(ProcessId from, BytesView data);
  void send_fragment_to(ProcessId to, const crypto::Digest& root, RootState& rs);
  void try_reconstruct(const crypto::Digest& root, RootState& rs);

  net::Bus& net_;
  ProcessId pid_;
  net::Channel channel_;
  AvailableFn available_;
  crypto::ReedSolomon rs_;
  std::map<crypto::Digest, RootState> roots_;
};

}  // namespace dr::rbc
