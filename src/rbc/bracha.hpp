// Classic Bracha reliable broadcast [11]. Per instance (source, round):
//   sender:            SEND(m) to all
//   on SEND:           ECHO(m) to all                    (once)
//   on 2f+1 ECHO(m):   READY(m) to all                   (once)
//   on  f+1 READY(m):  READY(m) to all                   (once, amplification)
//   on 2f+1 READY(m):  r_deliver(m)
// Echoes and readies are counted per payload digest, so an equivocating
// sender splits its quorum and no conflicting deliveries can occur.
#pragma once

#include <cstdint>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "crypto/sha256.hpp"
#include "rbc/rbc.hpp"

namespace dr::rbc {

class BrachaRbc final : public ReliableBroadcast {
 public:
  BrachaRbc(net::Bus& net, ProcessId pid);

  void set_deliver(DeliverFn fn) override { deliver_ = std::move(fn); }
  void broadcast(Round r, net::Payload payload) override;

 private:
  enum MsgType : std::uint8_t { kSend = 1, kEcho = 2, kReady = 3 };

  /// Key of one broadcast instance.
  struct InstanceKey {
    ProcessId source;
    Round round;
    bool operator<(const InstanceKey& o) const {
      return source != o.source ? source < o.source : round < o.round;
    }
  };

  struct PerPayload {
    std::unordered_set<ProcessId> echoes;
    std::unordered_set<ProcessId> readies;
    net::Payload payload;  ///< window into the first carrying message seen
    bool have_payload = false;
  };

  struct Instance {
    std::map<crypto::Digest, PerPayload> by_digest;
    bool echoed = false;
    bool readied = false;
    bool delivered = false;
  };

  void on_message(ProcessId from, const net::Payload& msg);
  void maybe_progress(const InstanceKey& key, const crypto::Digest& digest);
  Bytes encode(MsgType type, ProcessId source, Round r, BytesView payload) const;

  net::Bus& net_;
  ProcessId pid_;
  DeliverFn deliver_;
  std::map<InstanceKey, Instance> instances_;
};

}  // namespace dr::rbc
