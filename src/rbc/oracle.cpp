#include "rbc/oracle.hpp"

namespace dr::rbc {

OracleRbc::OracleRbc(net::Bus& net, ProcessId pid) : net_(net), pid_(pid) {
  net_.subscribe(pid_, net::Channel::kOracle,
                 [this](ProcessId from, const net::Payload& msg) {
                   on_message(from, msg);
                 });
}

void OracleRbc::broadcast(Round r, net::Payload payload) {
  ByteWriter w(payload.size() + 12);
  w.u64(r);
  w.blob(payload.view());
  net_.broadcast(pid_, net::Channel::kOracle, std::move(w).take());
}

void OracleRbc::on_message(ProcessId from, const net::Payload& msg) {
  ByteReader in(msg.view());
  const Round r = in.u64();
  const std::uint32_t len = in.u32();
  if (!in.ok() || in.remaining() != len) return;
  // Integrity: first payload per (source, round) wins; an equivocating
  // sender is silently reduced to its first message, which is exactly the
  // guarantee a real RBC provides.
  if (!delivered_.emplace(from, r).second) return;
  contract_on_deliver(from, r);
  // Blob starts after [u64 r][u32 len] = 12 header bytes.
  if (deliver_) deliver_(from, r, msg.window(12, len));
}

}  // namespace dr::rbc
