#include "rbc/oracle.hpp"

namespace dr::rbc {

OracleRbc::OracleRbc(net::Bus& net, ProcessId pid) : net_(net), pid_(pid) {
  net_.subscribe(pid_, net::Channel::kOracle,
                 [this](ProcessId from, BytesView data) { on_message(from, data); });
}

void OracleRbc::broadcast(Round r, Bytes payload) {
  ByteWriter w(payload.size() + 12);
  w.u64(r);
  w.blob(payload);
  net_.broadcast(pid_, net::Channel::kOracle, std::move(w).take());
}

void OracleRbc::on_message(ProcessId from, BytesView data) {
  ByteReader in(data);
  const Round r = in.u64();
  Bytes payload = in.blob();
  if (!in.done()) return;
  // Integrity: first payload per (source, round) wins; an equivocating
  // sender is silently reduced to its first message, which is exactly the
  // guarantee a real RBC provides.
  if (!delivered_.emplace(from, r).second) return;
  contract_on_deliver(from, r);
  if (deliver_) deliver_(from, r, payload);
}

}  // namespace dr::rbc
