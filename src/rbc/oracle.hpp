// Idealized reliable broadcast realized by simulator fiat: one message per
// recipient, delivered after network delay, with agreement/validity enforced
// by construction (even a Byzantine *sender* cannot equivocate because the
// payload is sent once through a shared trusted path).
//
// Used to (a) unit-test the DAG and ordering layers in isolation from any
// real broadcast protocol, and (b) provide a lower-bound cost baseline
// (exactly n payload copies per broadcast) in ablation benches.
#pragma once

#include <map>
#include <set>

#include "rbc/rbc.hpp"

namespace dr::rbc {

class OracleRbc final : public ReliableBroadcast {
 public:
  OracleRbc(net::Bus& net, ProcessId pid);

  void set_deliver(DeliverFn fn) override { deliver_ = std::move(fn); }
  void broadcast(Round r, net::Payload payload) override;

 private:
  void on_message(ProcessId from, const net::Payload& msg);

  net::Bus& net_;
  ProcessId pid_;
  DeliverFn deliver_;
  std::set<std::pair<ProcessId, Round>> delivered_;  // Integrity guard
};

}  // namespace dr::rbc
