// Reliable broadcast abstraction (§2): r_bcast(m, r) / r_deliver(m, r, p_k)
// with Agreement, Integrity, and Validity. One component instance per
// process multiplexes all (source, round) broadcast instances.
//
// Instantiations (Table 1 rows):
//   BrachaRbc  — classic Bracha [11]: O(n^2) messages, echoes carry the
//                full payload; deterministic guarantees.
//   AvidRbc    — Cachin–Tessaro-style verifiable information dispersal [14]:
//                RS-coded fragments + Merkle commitments;
//                O(n |m| + n^2 log n) bits; deterministic guarantees.
//   GossipRbc  — Guerraoui et al.-style sample-based broadcast [25]:
//                O(n log n) messages with whp (1-ε) guarantees.
//   OracleRbc  — simulator-level idealized broadcast for layering tests.
#pragma once

#include <functional>
#include <memory>
#include <set>
#include <utility>

#include "common/bytes.hpp"
#include "common/types.hpp"
#include "core/contract.hpp"
#include "net/bus.hpp"

namespace dr::rbc {

class ReliableBroadcast {
 public:
  /// r_deliver(m, r, p_k): payload m broadcast by source in round r. The
  /// payload is a shared immutable buffer (usually a window into the frame
  /// it arrived in); its memoized digest carries across layers, so consumers
  /// never re-hash bytes the broadcast already classified.
  using DeliverFn =
      std::function<void(ProcessId source, Round r, net::Payload payload)>;

  virtual ~ReliableBroadcast() = default;

  /// Registers the deliver upcall. Must be called before any broadcast.
  virtual void set_deliver(DeliverFn fn) = 0;

  /// r_bcast(m, r) by this process. At most one call per round per process
  /// (the DAG layer guarantees this; Byzantine components may violate it and
  /// the abstraction's Integrity property masks the damage).
  virtual void broadcast(Round r, net::Payload payload) = 0;

 protected:
  /// Contract hook: every implementation calls this immediately before its
  /// deliver upcall. Enforces RBC Integrity (§2) — at most one r_deliver per
  /// (source, round) — independently of each implementation's own
  /// `delivered` gating, so a refactor of any one instantiation's state
  /// machine cannot silently re-deliver (the DAG layer's "no equivocation
  /// past reliable broadcast" assumption, Lemma 2, rests on this).
  void contract_on_deliver(ProcessId source, Round r) {
#if DR_CONTRACTS_ENABLED
    DR_REQUIRE(delivered_contract_.emplace(source, r).second,
               "duplicate r_deliver for (source, round) — RBC Integrity");
#else
    (void)source;
    (void)r;
#endif
  }

 private:
  DR_CONTRACT_STATE(std::set<std::pair<ProcessId, Round>> delivered_contract_;)
};

/// Factory signature used by the system harness so every experiment can be
/// parameterized over the broadcast instantiation.
using RbcFactory = std::function<std::unique_ptr<ReliableBroadcast>(
    net::Bus& net, ProcessId pid, std::uint64_t seed)>;

}  // namespace dr::rbc
