#include "rbc/bracha_hash.hpp"

namespace dr::rbc {
namespace {

/// Offset of the payload bytes inside kSend / kPayload messages:
/// [u8 type][u32 source][u64 round][u32 blob_len].
constexpr std::size_t kPayloadOffset = 1 + 4 + 8 + 4;

}  // namespace

BrachaHashRbc::BrachaHashRbc(net::Bus& net, ProcessId pid)
    : net_(net), pid_(pid) {
  net_.subscribe(pid_, net::Channel::kBracha,
                 [this](ProcessId from, const net::Payload& msg) {
                   on_message(from, msg);
                 });
}

Bytes BrachaHashRbc::header(MsgType type, ProcessId source, Round r) const {
  ByteWriter w(64);
  w.u8(type);
  w.u32(source);
  w.u64(r);
  return std::move(w).take();
}

void BrachaHashRbc::broadcast(Round r, net::Payload payload) {
  ByteWriter w(payload.size() + 20);
  w.u8(kSend);
  w.u32(pid_);
  w.u64(r);
  w.blob(payload.view());
  net_.broadcast(pid_, net::Channel::kBracha, std::move(w).take());
}

void BrachaHashRbc::on_message(ProcessId from, const net::Payload& msg) {
  ByteReader in(msg.view());
  const auto type = static_cast<MsgType>(in.u8());
  const ProcessId source = in.u32();
  const Round round = in.u64();
  if (!in.ok() || source >= net_.n()) return;
  const InstanceKey key{source, round};
  Instance& inst = instances_[key];

  switch (type) {
    case kSend: {
      const std::uint32_t len = in.u32();
      if (!in.ok() || in.remaining() != len || from != source) return;
      if (!inst.have_payload) {
        // Window into the SEND frame: no copy, and the digest memo rides the
        // window so delivery/fetch verification never re-hashes.
        inst.payload = msg.window(kPayloadOffset, len);
        inst.payload_digest = inst.payload.digest();
        inst.have_payload = true;
      }
      if (!inst.echoed) {
        inst.echoed = true;
        ByteWriter w(64);
        w.u8(kEcho);
        w.u32(source);
        w.u64(round);
        w.raw(BytesView{inst.payload_digest.data(), inst.payload_digest.size()});
        net_.broadcast(pid_, net::Channel::kBracha, std::move(w).take());
      }
      maybe_progress(key, inst.payload_digest);
      break;
    }
    case kEcho:
    case kReady: {
      Bytes draw = in.raw(crypto::kDigestSize);
      if (!in.done()) return;
      crypto::Digest d{};
      std::copy(draw.begin(), draw.end(), d.begin());
      PerDigest& pd = inst.by_digest[d];
      (type == kEcho ? pd.echoes : pd.readies).insert(from);
      maybe_progress(key, d);
      break;
    }
    case kFetch: {
      Bytes draw = in.raw(crypto::kDigestSize);
      if (!in.done()) return;
      crypto::Digest d{};
      std::copy(draw.begin(), draw.end(), d.begin());
      if (!inst.have_payload || inst.payload_digest != d) return;
      ByteWriter w(inst.payload.size() + 20);
      w.u8(kPayload);
      w.u32(source);
      w.u64(round);
      w.blob(inst.payload.view());
      net_.send(pid_, from, net::Channel::kBracha, std::move(w).take());
      break;
    }
    case kPayload: {
      const std::uint32_t len = in.u32();
      if (!in.ok() || in.remaining() != len || inst.have_payload) return;
      net::Payload body = msg.window(kPayloadOffset, len);
      const crypto::Digest d = body.digest();
      // Accept only a payload we are actually waiting on (READY quorum for
      // this digest exists); a Byzantine responder cannot plant junk.
      auto it = inst.by_digest.find(d);
      if (it == inst.by_digest.end() ||
          it->second.readies.size() < net_.committee().quorum()) {
        return;
      }
      inst.payload_digest = d;
      inst.payload = std::move(body);
      inst.have_payload = true;
      maybe_progress(key, d);
      break;
    }
    default:
      return;
  }
}

void BrachaHashRbc::maybe_progress(const InstanceKey& key,
                                   const crypto::Digest& digest) {
  Instance& inst = instances_[key];
  if (inst.delivered) return;
  PerDigest& pd = inst.by_digest[digest];
  const std::uint32_t quorum = net_.committee().quorum();
  const std::uint32_t small = net_.committee().small_quorum();

  if (!inst.readied &&
      (pd.echoes.size() >= quorum || pd.readies.size() >= small)) {
    inst.readied = true;
    ByteWriter w(64);
    w.u8(kReady);
    w.u32(key.source);
    w.u64(key.round);
    w.raw(BytesView{digest.data(), digest.size()});
    net_.broadcast(pid_, net::Channel::kBracha, std::move(w).take());
  }
  if (pd.readies.size() < quorum) return;

  if (inst.have_payload && inst.payload_digest == digest) {
    inst.delivered = true;
    // Keep the payload: laggards that saw only READY digests pull it from
    // echoers/deliverers after the fact.
    inst.by_digest.clear();
    contract_on_deliver(key.source, key.round);
    if (deliver_) deliver_(key.source, key.round, inst.payload);
    return;
  }
  // Pull the payload from everyone who echoed it (correct echoers hold
  // it); the first digest-matching PAYLOAD completes delivery. Incremental:
  // each newly seen echoer gets one FETCH, so late echoes still unblock us.
  ByteWriter w(64);
  w.u8(kFetch);
  w.u32(key.source);
  w.u64(key.round);
  w.raw(BytesView{digest.data(), digest.size()});
  const net::Payload fetch(std::move(w).take());
  for (ProcessId holder : pd.echoes) {
    if (pd.fetched_from.insert(holder).second) {
      net_.send(pid_, holder, net::Channel::kBracha, fetch);
    }
  }
}

}  // namespace dr::rbc
