// Canonical RbcFactory instances for parameterizing experiments and tests
// over the broadcast instantiation (the rows of Table 1).
#pragma once

#include <memory>
#include <string>

#include "rbc/avid.hpp"
#include "rbc/bracha.hpp"
#include "rbc/bracha_hash.hpp"
#include "rbc/gossip.hpp"
#include "rbc/oracle.hpp"
#include "rbc/rbc.hpp"

namespace dr::rbc {

enum class RbcKind { kBracha, kBrachaHash, kAvid, kGossip, kOracle };

inline const char* to_string(RbcKind kind) {
  switch (kind) {
    case RbcKind::kBracha: return "bracha";
    case RbcKind::kBrachaHash: return "bracha-hash";
    case RbcKind::kAvid: return "avid";
    case RbcKind::kGossip: return "gossip";
    case RbcKind::kOracle: return "oracle";
  }
  return "?";
}

inline RbcFactory make_factory(RbcKind kind, GossipParams gossip_params = {}) {
  switch (kind) {
    case RbcKind::kBracha:
      return [](net::Bus& net, ProcessId pid, std::uint64_t) {
        return std::make_unique<BrachaRbc>(net, pid);
      };
    case RbcKind::kBrachaHash:
      return [](net::Bus& net, ProcessId pid, std::uint64_t) {
        return std::make_unique<BrachaHashRbc>(net, pid);
      };
    case RbcKind::kAvid:
      return [](net::Bus& net, ProcessId pid, std::uint64_t) {
        return std::make_unique<AvidRbc>(net, pid);
      };
    case RbcKind::kGossip:
      return [gossip_params](net::Bus& net, ProcessId pid, std::uint64_t seed) {
        return std::make_unique<GossipRbc>(net, pid, seed, gossip_params);
      };
    case RbcKind::kOracle:
      return [](net::Bus& net, ProcessId pid, std::uint64_t) {
        return std::make_unique<OracleRbc>(net, pid);
      };
  }
  return {};
}

}  // namespace dr::rbc
