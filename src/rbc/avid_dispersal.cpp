#include "rbc/avid_dispersal.hpp"

#include "common/assert.hpp"

namespace dr::rbc {

AvidDispersal::AvidDispersal(net::Bus& net, ProcessId pid,
                             net::Channel channel)
    : net_(net),
      pid_(pid),
      channel_(channel),
      rs_(net.committee().small_quorum(),
          net.n() - net.committee().small_quorum()) {
  net_.subscribe(pid_, channel_, [this](ProcessId from, const net::Payload& msg) {
    on_message(from, msg.view());
  });
}

crypto::Digest AvidDispersal::disperse(const Bytes& value) {
  const std::vector<Bytes> fragments = rs_.encode(value);
  const crypto::MerkleTree tree(fragments);
  const crypto::Digest root = tree.root();
  RootState& rs = roots_[root];
  rs.value = value;  // the disperser trivially holds the full value
  for (ProcessId to = 0; to < net_.n(); ++to) {
    ByteWriter w(fragments[to].size() + 128);
    w.u8(kDisperse);
    w.raw(BytesView{root.data(), root.size()});
    w.u32(to);
    w.blob(fragments[to]);
    w.raw(tree.prove(to).serialize());
    net_.send(pid_, to, channel_, std::move(w).take());
  }
  return root;
}

bool AvidDispersal::is_available(const crypto::Digest& root) const {
  auto it = roots_.find(root);
  return it != roots_.end() &&
         it->second.stored_acks.size() >= net_.committee().quorum();
}

void AvidDispersal::retrieve(const crypto::Digest& root, RetrievedFn fn) {
  RootState& rs = roots_[root];
  if (rs.value.has_value()) {
    fn(root, *rs.value);
    return;
  }
  rs.retrieve_callbacks.push_back(std::move(fn));
  if (rs.retrieving) return;
  rs.retrieving = true;
  ByteWriter w(40);
  w.u8(kRetrieve);
  w.raw(BytesView{root.data(), root.size()});
  net_.broadcast(pid_, channel_, std::move(w).take());
}

void AvidDispersal::send_fragment_to(ProcessId to, const crypto::Digest& root,
                                     RootState& rs) {
  if (!rs.my_fragment.has_value()) return;
  ByteWriter w(rs.my_fragment->size() + 128);
  w.u8(kFragment);
  w.raw(BytesView{root.data(), root.size()});
  w.u32(pid_);
  w.blob(*rs.my_fragment);
  w.raw(rs.my_proof->serialize());
  net_.send(pid_, to, channel_, std::move(w).take());
}

void AvidDispersal::on_message(ProcessId from, BytesView data) {
  ByteReader in(data);
  const std::uint8_t type = in.u8();
  Bytes root_raw = in.raw(crypto::kDigestSize);
  if (!in.ok()) return;
  crypto::Digest root{};
  std::copy(root_raw.begin(), root_raw.end(), root.begin());

  switch (type) {
    case kDisperse: {
      const std::uint32_t index = in.u32();
      Bytes fragment = in.blob();
      crypto::MerkleProof proof;
      if (!in.ok() || index != pid_) return;
      if (!crypto::MerkleProof::deserialize(in, proof) || !in.done()) return;
      if (proof.leaf_count != net_.n()) return;
      if (!crypto::MerkleTree::verify(root, fragment, proof)) return;
      RootState& rs = roots_[root];
      if (rs.my_fragment.has_value()) return;  // duplicate disperse
      rs.my_fragment = std::move(fragment);
      rs.my_proof = std::move(proof);
      ByteWriter w(40);
      w.u8(kStored);
      w.raw(BytesView{root.data(), root.size()});
      net_.broadcast(pid_, channel_, std::move(w).take());
      // Serve retrievals that raced ahead of our fragment.
      for (ProcessId requester : rs.pending_requesters) {
        send_fragment_to(requester, root, rs);
      }
      rs.pending_requesters.clear();
      break;
    }
    case kStored: {
      if (!in.done()) return;
      RootState& rs = roots_[root];
      rs.stored_acks.insert(from);
      if (!rs.available_fired &&
          rs.stored_acks.size() >= net_.committee().quorum()) {
        rs.available_fired = true;
        if (available_) available_(root);
      }
      break;
    }
    case kRetrieve: {
      if (!in.done()) return;
      RootState& rs = roots_[root];
      if (rs.my_fragment.has_value()) {
        send_fragment_to(from, root, rs);
      } else {
        rs.pending_requesters.insert(from);
      }
      break;
    }
    case kFragment: {
      const std::uint32_t index = in.u32();
      Bytes fragment = in.blob();
      crypto::MerkleProof proof;
      if (!in.ok() || index >= net_.n()) return;
      if (!crypto::MerkleProof::deserialize(in, proof) || !in.done()) return;
      if (proof.leaf_count != net_.n()) return;
      if (!crypto::MerkleTree::verify(root, fragment, proof)) return;
      RootState& rs = roots_[root];
      if (!rs.retrieving || rs.value.has_value()) return;
      rs.collected.emplace(index, std::move(fragment));
      try_reconstruct(root, rs);
      break;
    }
    default:
      break;
  }
}

void AvidDispersal::try_reconstruct(const crypto::Digest& root, RootState& rs) {
  if (rs.collected.size() < rs_.data_shards()) return;
  std::vector<std::optional<Bytes>> shards(net_.n());
  for (const auto& [idx, frag] : rs.collected) shards[idx] = frag;
  auto decoded = rs_.decode(shards);
  if (!decoded) return;
  // Defend against an inconsistent disperser: the re-encoded fragment
  // vector must reproduce the commitment root.
  const std::vector<Bytes> full = rs_.encode(decoded.value());
  if (crypto::MerkleTree(full).root() != root) return;
  rs.value = std::move(decoded).value();
  auto callbacks = std::move(rs.retrieve_callbacks);
  rs.retrieve_callbacks.clear();
  for (auto& cb : callbacks) cb(root, *rs.value);
}

}  // namespace dr::rbc
