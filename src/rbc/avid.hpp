// AVID-style reliable broadcast after Cachin–Tessaro [14]: the sender
// disperses Reed–Solomon fragments committed by a Merkle root, processes
// echo only their own fragment, and a Bracha-style READY round on the root
// makes delivery total. Per broadcast of |m| bytes the bit cost is
// O(n |m| + n^2 log n) instead of Bracha's O(n^2 |m|).
//
// Per instance (source, round):
//   sender:   RS-encode m into n fragments (k = f+1 data shards), build
//             Merkle tree; send DISPERSE(root, frag_i, proof_i) to each p_i.
//   on DISPERSE with valid proof:  ECHO(root, frag_i, proof_i) to all (once).
//   on 2f+1 ECHO for one root:     reconstruct m from any f+1 fragments,
//             re-encode, recompute the Merkle root; if it matches, the
//             sender's encoding was consistent -> READY(root) to all.
//             (A mismatch proves a Byzantine sender; the instance is dead —
//             no correct process will ever deliver it, which is allowed.)
//   on  f+1 READY(root):           READY(root) to all (amplification).
//   on 2f+1 READY(root) and m reconstructed:  r_deliver(m).
// Totality: f+1 correct processes must have echoed valid fragments for any
// root to collect 2f+1 READYs, and their echoes reach everyone, giving the
// k = f+1 fragments needed to reconstruct.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <unordered_set>

#include "crypto/merkle.hpp"
#include "crypto/reed_solomon.hpp"
#include "crypto/sha256.hpp"
#include "rbc/rbc.hpp"

namespace dr::rbc {

class AvidRbc final : public ReliableBroadcast {
 public:
  AvidRbc(net::Bus& net, ProcessId pid);

  void set_deliver(DeliverFn fn) override { deliver_ = std::move(fn); }
  void broadcast(Round r, net::Payload payload) override;

 private:
  enum MsgType : std::uint8_t { kDisperse = 1, kEcho = 2, kReady = 3 };

  struct InstanceKey {
    ProcessId source;
    Round round;
    bool operator<(const InstanceKey& o) const {
      return source != o.source ? source < o.source : round < o.round;
    }
  };

  struct PerRoot {
    std::map<std::uint32_t, Bytes> fragments;      // fragment index -> bytes
    std::unordered_set<ProcessId> echo_senders;
    std::unordered_set<ProcessId> ready_senders;
    std::optional<Bytes> reconstructed;
    bool encoding_checked = false;
    bool encoding_ok = false;
  };

  struct Instance {
    std::map<crypto::Digest, PerRoot> by_root;
    bool echoed = false;
    bool readied = false;
    bool delivered = false;
  };

  void on_message(ProcessId from, BytesView data);
  void maybe_progress(const InstanceKey& key, const crypto::Digest& root);
  /// Tries to rebuild the payload and verify the sender's encoding against
  /// the Merkle root. Returns true iff the payload is available and valid.
  bool ensure_payload(PerRoot& pr, const crypto::Digest& root);

  net::Bus& net_;
  ProcessId pid_;
  DeliverFn deliver_;
  crypto::ReedSolomon rs_;
  std::map<InstanceKey, Instance> instances_;
};

}  // namespace dr::rbc
