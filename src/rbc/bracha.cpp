#include "rbc/bracha.hpp"

#include <algorithm>

namespace dr::rbc {
namespace {

/// Offset of the payload bytes inside an encoded Bracha message:
/// [u8 type][u32 source][u64 round][u32 blob_len] = 17 bytes of header.
constexpr std::size_t kPayloadOffset = 1 + 4 + 8 + 4;

}  // namespace

BrachaRbc::BrachaRbc(net::Bus& net, ProcessId pid) : net_(net), pid_(pid) {
  net_.subscribe(pid_, net::Channel::kBracha,
                 [this](ProcessId from, const net::Payload& msg) {
                   on_message(from, msg);
                 });
}

Bytes BrachaRbc::encode(MsgType type, ProcessId source, Round r,
                        BytesView payload) const {
  ByteWriter w(payload.size() + 20);
  w.u8(type);
  w.u32(source);
  w.u64(r);
  w.blob(payload);
  return std::move(w).take();
}

void BrachaRbc::broadcast(Round r, net::Payload payload) {
  net_.broadcast(pid_, net::Channel::kBracha,
                 encode(kSend, pid_, r, payload.view()));
}

void BrachaRbc::on_message(ProcessId from, const net::Payload& msg) {
  ByteReader in(msg.view());
  const auto type = static_cast<MsgType>(in.u8());
  const ProcessId source = in.u32();
  const Round round = in.u64();
  const std::uint32_t len = in.u32();
  if (!in.ok() || in.remaining() != len || source >= net_.n()) {
    return;  // malformed
  }
  // SEND must come from its claimed source; the network authenticates links,
  // so a Byzantine process cannot forge someone else's broadcast.
  if (type == kSend && from != source) return;
  if (type != kSend && type != kEcho && type != kReady) return;

  const InstanceKey key{source, round};
  Instance& inst = instances_[key];
  if (inst.delivered) return;

  // Classify this message's payload against the variants already tracked by
  // raw byte comparison before falling back to hashing: equal bytes imply an
  // equal digest, and in the common (non-equivocating) case every SEND, ECHO
  // and READY of an instance carries the same bytes — so the 2n+1 messages
  // of one well-behaved broadcast cost one SHA-256, not 2n+1.
  const BytesView body{msg.data() + kPayloadOffset, len};
  PerPayload* pp = nullptr;
  crypto::Digest digest;
  for (auto& [d, cand] : inst.by_digest) {
    if (cand.have_payload && cand.payload.size() == len &&
        std::equal(body.begin(), body.end(), cand.payload.view().begin())) {
      digest = d;
      pp = &cand;
      break;
    }
  }
  if (pp == nullptr) {
    // First time this byte pattern is seen: hash it once, via a window that
    // shares the message buffer (no copy) and memoizes the digest.
    net::Payload window = msg.window(kPayloadOffset, len);
    digest = window.digest();
    pp = &inst.by_digest[digest];
    if (!pp->have_payload) {
      pp->payload = std::move(window);
      pp->have_payload = true;
    }
  }

  switch (type) {
    case kSend: {
      if (!inst.echoed) {
        inst.echoed = true;
        net_.broadcast(pid_, net::Channel::kBracha,
                       encode(kEcho, source, round, pp->payload.view()));
      }
      break;
    }
    case kEcho: {
      pp->echoes.insert(from);
      break;
    }
    case kReady: {
      pp->readies.insert(from);
      break;
    }
    default:
      return;
  }
  maybe_progress(key, digest);
}

void BrachaRbc::maybe_progress(const InstanceKey& key, const crypto::Digest& digest) {
  Instance& inst = instances_[key];
  PerPayload& pp = inst.by_digest[digest];
  const std::uint32_t quorum = net_.committee().quorum();
  const std::uint32_t small = net_.committee().small_quorum();

  const bool ready_trigger =
      pp.echoes.size() >= quorum || pp.readies.size() >= small;
  if (ready_trigger && !inst.readied && pp.have_payload) {
    inst.readied = true;
    net_.broadcast(pid_, net::Channel::kBracha,
                   encode(kReady, key.source, key.round, pp.payload.view()));
  }
  if (pp.readies.size() >= quorum && pp.have_payload && !inst.delivered) {
    inst.delivered = true;
    contract_on_deliver(key.source, key.round);
    if (deliver_) deliver_(key.source, key.round, pp.payload);
    // Keep the instance so late messages are ignored (Integrity), but free
    // the bulky per-payload state.
    inst.by_digest.clear();
  }
}

}  // namespace dr::rbc
