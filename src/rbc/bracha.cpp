#include "rbc/bracha.hpp"

namespace dr::rbc {

BrachaRbc::BrachaRbc(net::Bus& net, ProcessId pid) : net_(net), pid_(pid) {
  net_.subscribe(pid_, net::Channel::kBracha,
                 [this](ProcessId from, BytesView data) { on_message(from, data); });
}

Bytes BrachaRbc::encode(MsgType type, ProcessId source, Round r,
                        BytesView payload) const {
  ByteWriter w(payload.size() + 20);
  w.u8(type);
  w.u32(source);
  w.u64(r);
  w.blob(payload);
  return std::move(w).take();
}

void BrachaRbc::broadcast(Round r, Bytes payload) {
  net_.broadcast(pid_, net::Channel::kBracha, encode(kSend, pid_, r, payload));
}

void BrachaRbc::on_message(ProcessId from, BytesView data) {
  ByteReader in(data);
  const auto type = static_cast<MsgType>(in.u8());
  const ProcessId source = in.u32();
  const Round round = in.u64();
  Bytes payload = in.blob();
  if (!in.done() || source >= net_.n()) return;  // malformed
  // SEND must come from its claimed source; the network authenticates links,
  // so a Byzantine process cannot forge someone else's broadcast.
  if (type == kSend && from != source) return;

  const InstanceKey key{source, round};
  Instance& inst = instances_[key];
  if (inst.delivered) return;
  const crypto::Digest digest = crypto::sha256(payload);
  PerPayload& pp = inst.by_digest[digest];

  switch (type) {
    case kSend: {
      if (!pp.have_payload) {
        pp.payload = std::move(payload);
        pp.have_payload = true;
      }
      if (!inst.echoed) {
        inst.echoed = true;
        net_.broadcast(pid_, net::Channel::kBracha,
                       encode(kEcho, source, round, pp.payload));
      }
      break;
    }
    case kEcho: {
      if (!pp.have_payload) {
        pp.payload = std::move(payload);
        pp.have_payload = true;
      }
      pp.echoes.insert(from);
      break;
    }
    case kReady: {
      if (!pp.have_payload) {
        pp.payload = std::move(payload);
        pp.have_payload = true;
      }
      pp.readies.insert(from);
      break;
    }
    default:
      return;
  }
  maybe_progress(key, digest);
}

void BrachaRbc::maybe_progress(const InstanceKey& key, const crypto::Digest& digest) {
  Instance& inst = instances_[key];
  PerPayload& pp = inst.by_digest[digest];
  const std::uint32_t quorum = net_.committee().quorum();
  const std::uint32_t small = net_.committee().small_quorum();

  const bool ready_trigger =
      pp.echoes.size() >= quorum || pp.readies.size() >= small;
  if (ready_trigger && !inst.readied && pp.have_payload) {
    inst.readied = true;
    net_.broadcast(pid_, net::Channel::kBracha,
                   encode(kReady, key.source, key.round, pp.payload));
  }
  if (pp.readies.size() >= quorum && pp.have_payload && !inst.delivered) {
    inst.delivered = true;
    contract_on_deliver(key.source, key.round);
    if (deliver_) deliver_(key.source, key.round, pp.payload);
    // Keep the instance so late messages are ignored (Integrity), but free
    // the bulky per-payload state.
    inst.by_digest.clear();
  }
}

}  // namespace dr::rbc
