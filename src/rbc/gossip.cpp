#include "rbc/gossip.hpp"

#include <algorithm>
#include <cmath>

#include "common/rng.hpp"

namespace dr::rbc {

std::vector<ProcessId> GossipRbc::sample_of(std::uint64_t system_seed,
                                            std::uint32_t n, ProcessId owner,
                                            std::uint32_t size, const char* tag) {
  // Distinct-element sample via seeded partial Fisher-Yates.
  size = std::min(size, n);
  Xoshiro256 rng(system_seed ^ crypto::digest_prefix_u64(crypto::sha256_tagged(
                                   tag, {BytesView{reinterpret_cast<const std::uint8_t*>(&owner),
                                                   sizeof(owner)}})));
  std::vector<ProcessId> ids(n);
  for (std::uint32_t i = 0; i < n; ++i) ids[i] = i;
  for (std::uint32_t i = 0; i < size; ++i) {
    const std::uint32_t j = i + static_cast<std::uint32_t>(rng.below(n - i));
    std::swap(ids[i], ids[j]);
  }
  ids.resize(size);
  return ids;
}

GossipRbc::GossipRbc(net::Bus& net, ProcessId pid, std::uint64_t system_seed,
                     GossipParams params)
    : net_(net), pid_(pid) {
  const std::uint32_t n = net.n();
  const double ln_n = std::log(std::max<std::uint32_t>(n, 2));
  fanout_ = params.gossip_fanout != 0
                ? params.gossip_fanout
                : static_cast<std::uint32_t>(std::ceil(2.0 * ln_n)) + 2;
  sample_ = params.echo_sample != 0
                ? params.echo_sample
                : static_cast<std::uint32_t>(std::ceil(4.0 * ln_n)) + 4;
  fanout_ = std::min(fanout_, n);
  sample_ = std::min(sample_, n);
  echo_needed_ = std::max<std::uint32_t>(
      1, static_cast<std::uint32_t>(std::ceil(params.echo_threshold * sample_)));

  gossip_targets_ = sample_of(system_seed, n, pid, fanout_, "gossip/murmur");
  echo_sample_ = sample_of(system_seed, n, pid, sample_, "gossip/sieve");
  // Public-seed samples let us invert the relation locally: q must echo to
  // every p whose echo sample contains q.
  for (ProcessId p = 0; p < n; ++p) {
    const std::vector<ProcessId> ep =
        sample_of(system_seed, n, p, sample_, "gossip/sieve");
    if (std::find(ep.begin(), ep.end(), pid) != ep.end()) {
      echo_subscribers_.push_back(p);
    }
  }

  net_.subscribe(pid_, net::Channel::kGossip,
                 [this](ProcessId from, const net::Payload& msg) {
                   on_message(from, msg);
                 });
}

void GossipRbc::broadcast(Round r, net::Payload payload) {
  ByteWriter w(payload.size() + 20);
  w.u8(kGossip);
  w.u32(pid_);
  w.u64(r);
  w.blob(payload.view());
  const net::Payload msg(std::move(w).take());
  // The sender seeds dissemination through its own gossip sample and also
  // processes the payload locally (self-delivery path). Every send shares
  // the one encoded buffer.
  for (ProcessId to : gossip_targets_) {
    net_.send(pid_, to, net::Channel::kGossip, msg);
  }
  const InstanceKey key{pid_, r};
  Instance& inst = instances_[key];
  // The local path keeps a window into the encoded message so the digest
  // memo is shared with the bytes that went out on the wire.
  handle_payload(key, inst, msg.window(1 + 4 + 8 + 4, payload.size()));
}

void GossipRbc::on_message(ProcessId from, const net::Payload& msg) {
  ByteReader in(msg.view());
  const auto type = static_cast<MsgType>(in.u8());

  if (type == kGossip) {
    const ProcessId source = in.u32();
    const Round round = in.u64();
    const std::uint32_t len = in.u32();
    constexpr std::size_t kPayloadOffset = 1 + 4 + 8 + 4;
    if (!in.ok() || in.remaining() != len || source >= net_.n()) return;
    const InstanceKey key{source, round};
    Instance& inst = instances_[key];
    if (inst.have_payload) return;  // already seen; stop the rumor here
    // Forward before consuming: rumor spreading. The relayed message is
    // byte-identical to the one received, so forward the incoming frame's
    // buffer itself — zero re-encoding, zero copies.
    if (!inst.forwarded) {
      inst.forwarded = true;
      for (ProcessId to : gossip_targets_) {
        if (to != from) net_.send(pid_, to, net::Channel::kGossip, msg);
      }
    }
    handle_payload(key, inst, msg.window(kPayloadOffset, len));
    return;
  }

  if (type == kEcho) {
    const ProcessId source = in.u32();
    const Round round = in.u64();
    Bytes digest_raw = in.raw(crypto::kDigestSize);
    if (!in.done() || source >= net_.n()) return;
    crypto::Digest digest{};
    std::copy(digest_raw.begin(), digest_raw.end(), digest.begin());
    const InstanceKey key{source, round};
    Instance& inst = instances_[key];
    // Count only echoes from my own echo sample; others carry no evidence.
    if (std::find(echo_sample_.begin(), echo_sample_.end(), from) ==
        echo_sample_.end()) {
      return;
    }
    inst.echoes[digest].insert(from);
    maybe_deliver(key, inst);
  }
}

void GossipRbc::handle_payload(const InstanceKey& key, Instance& inst,
                               net::Payload payload) {
  if (inst.have_payload) return;
  inst.have_payload = true;
  inst.payload = std::move(payload);
  inst.payload_digest = inst.payload.digest();  // memoized on the window
  if (!inst.echoed) {
    inst.echoed = true;
    ByteWriter w(64);
    w.u8(kEcho);
    w.u32(key.source);
    w.u64(key.round);
    w.raw(BytesView{inst.payload_digest.data(), inst.payload_digest.size()});
    const net::Payload msg(std::move(w).take());
    for (ProcessId to : echo_subscribers_) {
      net_.send(pid_, to, net::Channel::kGossip, msg);
    }
  }
  maybe_deliver(key, inst);
}

void GossipRbc::maybe_deliver(const InstanceKey& key, Instance& inst) {
  if (inst.delivered || !inst.have_payload) return;
  auto it = inst.echoes.find(inst.payload_digest);
  if (it == inst.echoes.end() || it->second.size() < echo_needed_) return;
  inst.delivered = true;
  contract_on_deliver(key.source, key.round);
  if (deliver_) deliver_(key.source, key.round, inst.payload);
}

}  // namespace dr::rbc
