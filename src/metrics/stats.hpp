// Small statistics helpers for experiment harnesses.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

namespace dr::metrics {

class Summary {
 public:
  void add(double x) { values_.push_back(x); }
  std::size_t count() const { return values_.size(); }

  double mean() const {
    if (values_.empty()) return 0.0;
    double s = 0.0;
    for (double v : values_) s += v;
    return s / static_cast<double>(values_.size());
  }

  double stddev() const {
    if (values_.size() < 2) return 0.0;
    const double m = mean();
    double s = 0.0;
    for (double v : values_) s += (v - m) * (v - m);
    return std::sqrt(s / static_cast<double>(values_.size() - 1));
  }

  double min() const {
    return values_.empty() ? 0.0 : *std::min_element(values_.begin(), values_.end());
  }
  double max() const {
    return values_.empty() ? 0.0 : *std::max_element(values_.begin(), values_.end());
  }

  /// p in [0, 1]; nearest-rank on a sorted copy.
  double percentile(double p) const {
    if (values_.empty()) return 0.0;
    std::vector<double> sorted = values_;
    std::sort(sorted.begin(), sorted.end());
    const std::size_t idx = std::min(
        sorted.size() - 1,
        static_cast<std::size_t>(p * static_cast<double>(sorted.size())));
    return sorted[idx];
  }

  const std::vector<double>& values() const { return values_; }

 private:
  std::vector<double> values_;
};

}  // namespace dr::metrics
