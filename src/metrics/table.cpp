#include "metrics/table.hpp"

#include <algorithm>
#include <cstdint>
#include <cstdio>

namespace dr::metrics {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit_row = [&](const std::vector<std::string>& cells, std::string& out) {
    out += "|";
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string{};
      out += " " + cell + std::string(widths[c] - cell.size(), ' ') + " |";
    }
    out += "\n";
  };
  std::string out;
  emit_row(headers_, out);
  out += "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out += std::string(widths[c] + 2, '-') + "|";
  }
  out += "\n";
  for (const auto& row : rows_) emit_row(row, out);
  return out;
}

void Table::print() const { std::fputs(render().c_str(), stdout); }

std::string Table::fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::fmt_u64(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  return buf;
}

}  // namespace dr::metrics
