// Fixed-width console table writer used by every bench harness to print the
// rows/series of the paper's tables and figures.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dr::metrics {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Adds one row; cells are stringified by the caller.
  void add_row(std::vector<std::string> cells);

  /// Renders with column auto-sizing and a header rule.
  std::string render() const;
  void print() const;

  static std::string fmt(double v, int precision = 2);
  static std::string fmt_u64(std::uint64_t v);

  /// Structured access for machine-readable sinks (bench --json output).
  const std::vector<std::string>& headers() const { return headers_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace dr::metrics
