// Flat named-counter snapshot: the node runtime's introspection format
// (node::Node::counters()). A vector of (name, value) pairs rather than a
// struct so call sites can aggregate counters from independent subsystems
// (builder, catch-up sync, storage) without this header knowing about them.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "metrics/table.hpp"

namespace dr::metrics {

using Counter = std::pair<std::string, std::uint64_t>;
using Counters = std::vector<Counter>;

/// Appends `items` to `out` with every name prefixed "<prefix>.". Used to
/// merge counters from subsystems that expose structurally-compatible pair
/// vectors without depending on this header (e.g. net::TransportCounters —
/// chaos fault-injection and TCP link-error counts surface through here).
template <typename Items>
inline void append_prefixed(Counters& out, const std::string& prefix,
                            const Items& items) {
  for (const auto& [name, value] : items) {
    out.emplace_back(prefix + "." + name, value);
  }
}

/// Sums counters with identical names across per-node snapshots — the
/// cluster-wide aggregate a soak run reports (and ships in bench --json).
inline Counters aggregate(const std::vector<Counters>& per_node) {
  Counters out;
  for (const Counters& node : per_node) {
    for (const Counter& c : node) {
      bool merged = false;
      for (Counter& o : out) {
        if (o.first == c.first) {
          o.second += c.second;
          merged = true;
          break;
        }
      }
      if (!merged) out.push_back(c);
    }
  }
  return out;
}

/// Renders counters as a two-column table for bench/example output.
inline Table counters_table(const Counters& counters) {
  Table t({"counter", "value"});
  for (const Counter& c : counters) {
    t.add_row({c.first, Table::fmt_u64(c.second)});
  }
  return t;
}

}  // namespace dr::metrics
