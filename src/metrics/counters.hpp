// Flat named-counter snapshot: the node runtime's introspection format
// (node::Node::counters()). A vector of (name, value) pairs rather than a
// struct so call sites can aggregate counters from independent subsystems
// (builder, catch-up sync, storage) without this header knowing about them.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "metrics/table.hpp"

namespace dr::metrics {

using Counter = std::pair<std::string, std::uint64_t>;
using Counters = std::vector<Counter>;

/// Renders counters as a two-column table for bench/example output.
inline Table counters_table(const Counters& counters) {
  Table t({"counter", "value"});
  for (const Counter& c : counters) {
    t.add_row({c.first, Table::fmt_u64(c.second)});
  }
  return t;
}

}  // namespace dr::metrics
