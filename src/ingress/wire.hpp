// Wire contract of the client ingress tier (DESIGN.md §13). A client session
// opens with a fixed-size hello exchange, then both directions speak
// net::Frame-framed messages on Channel::kIngress:
//   client -> server  SubmitBatch   (a batch of transactions)
//   server -> client  SubmitReply   (per-tx admission verdicts, synchronous)
//   server -> client  CommitAcks    (asynchronous commit acknowledgements)
// Like net/frame.hpp this codec is defensive: it is the first parser that
// touches bytes from an untrusted client, so every malformed input must be
// rejected crisply instead of trusted.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/bytes.hpp"
#include "common/expected.hpp"

namespace dr::ingress {

/// First bytes a client sends: [u32 magic][u16 version][u16 flags].
inline constexpr std::uint32_t kIngressMagic = 0x49474144;  // "DAGI" LE
inline constexpr std::uint16_t kIngressVersion = 1;
inline constexpr std::size_t kClientHelloBytes = 8;

/// Server's answer: [u32 magic][u16 version][u16 status][u64 session_id].
/// On any status other than kOk the server closes the socket right after
/// writing the hello — closing is the whole error protocol, as on the
/// node-to-node handshake.
inline constexpr std::size_t kServerHelloBytes = 16;

enum class HelloStatus : std::uint16_t {
  kOk = 0,
  kFull = 1,  ///< session table at capacity; try another node
};

struct ClientHello {
  std::uint32_t magic = kIngressMagic;
  std::uint16_t version = kIngressVersion;
  std::uint16_t flags = 0;  ///< reserved; must be 0 in v1
};

struct ServerHello {
  std::uint32_t magic = kIngressMagic;
  std::uint16_t version = kIngressVersion;
  HelloStatus status = HelloStatus::kOk;
  std::uint64_t session_id = 0;  ///< nonzero once accepted
};

Bytes encode_client_hello(const ClientHello& hello);
Bytes encode_server_hello(const ServerHello& hello);
Expected<ClientHello> decode_client_hello(BytesView data);
Expected<ServerHello> decode_server_hello(BytesView data);

/// Per-transaction admission verdict, carried in SubmitReply. kAccepted is
/// the only status that promises the tx entered a mempool shard; everything
/// else is explicit backpressure or dedup (DESIGN.md §13 backpressure
/// contract) and the client must not expect a CommitAck for that tx.
enum class SubmitStatus : std::uint8_t {
  kAccepted = 0,
  kBusy = 1,                ///< admission watermark hit: retry later
  kDuplicatePending = 2,    ///< same digest already pending / proposed
  kDuplicateCommitted = 3,  ///< same digest in the recently-committed window
  kShardFull = 4,           ///< owning shard at hard capacity
  kTooLarge = 5,            ///< payload above kMaxTxBytes
};
inline constexpr std::uint8_t kSubmitStatusCount = 6;

inline constexpr bool submit_status_valid(std::uint8_t raw) {
  return raw < kSubmitStatusCount;
}
const char* to_string(SubmitStatus s);

/// Tag byte opening every kIngress frame payload.
inline constexpr std::uint8_t kSubmitBatchTag = 1;
inline constexpr std::uint8_t kSubmitReplyTag = 2;
inline constexpr std::uint8_t kCommitAcksTag = 3;

/// Bounds: a batch always fits one frame, and a 4-byte count can never make
/// the server allocate unboundedly.
inline constexpr std::size_t kMaxBatchTxs = 1024;
inline constexpr std::size_t kMaxTxBytes = 64 * 1024;
inline constexpr std::size_t kMaxAckEntries = 4096;

/// One client transaction: (client_id, tx_id) names it for ack routing, the
/// payload is the opaque bytes the application wants ordered.
struct TxSubmit {
  std::uint64_t tx_id = 0;
  Bytes payload;
};

/// [tag][u64 client_id][u32 count][{u64 tx_id}{blob payload}]*
struct SubmitBatch {
  std::uint64_t client_id = 0;
  std::vector<TxSubmit> txs;
};

struct ReplyEntry {
  std::uint64_t tx_id = 0;
  SubmitStatus status = SubmitStatus::kAccepted;
};

/// [tag][u64 client_id][u32 count][{u64 tx_id}{u8 status}]*
struct SubmitReply {
  std::uint64_t client_id = 0;
  std::vector<ReplyEntry> entries;
};

/// One committed transaction routed back to its submitting session.
/// latency_us is the server-observed submit -> a_deliver time; the client's
/// own clock gives the true client-observed figure.
struct AckEntry {
  std::uint64_t client_id = 0;
  std::uint64_t tx_id = 0;
  std::uint64_t latency_us = 0;
};

/// [tag][u32 count][{u64 client_id}{u64 tx_id}{u64 latency_us}]*
struct CommitAcks {
  std::vector<AckEntry> acks;
};

Bytes encode_submit_batch(const SubmitBatch& batch);
Bytes encode_submit_reply(const SubmitReply& reply);
Bytes encode_commit_acks(const CommitAcks& acks);

/// Discriminates on the tag byte; exactly one optional is set on success.
struct IngressMessage {
  std::optional<SubmitBatch> batch;
  std::optional<SubmitReply> reply;
  std::optional<CommitAcks> acks;
};

/// Rejects unknown tags, oversized counts/payloads, truncation, trailing
/// bytes, and invalid status codes.
Expected<IngressMessage> decode_ingress_message(BytesView data);

}  // namespace dr::ingress
