// Client side of the ingress wire protocol (DESIGN.md §13): one TCP
// connection = one session. Single-threaded by design — the owner calls
// process() to pump I/O and receives SubmitReply / CommitAcks through
// callbacks; the loadgen multiplexes thousands of logical clients over a
// handful of these connections, polling their fds itself.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>

#include "ingress/sockets.hpp"
#include "ingress/wire.hpp"
#include "net/frame.hpp"

namespace dr::ingress {

class Client {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;
    /// Local bound on queued outbound frames; submit() refuses beyond it
    /// (client-side backpressure, surfaced by the loadgen as
    /// local_backpressure).
    std::size_t max_out_frames = 256;
  };

  explicit Client(Options opts) : opts_(std::move(opts)) {}
  ~Client() { close(); }

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Nonblocking connect + hello exchange, bounded by timeout_ms (polling,
  /// never parking in a blocking syscall). False on refusal, timeout, a
  /// kFull server, or a malformed hello.
  bool connect(int timeout_ms);
  void close();

  bool connected() const { return fd_ >= 0 && session_ != 0; }
  std::uint64_t session_id() const { return session_; }
  int fd() const { return fd_; }
  bool has_backlog() const { return !out_.empty(); }

  /// Queue one tx (or a prebuilt batch) for submission. False when
  /// disconnected or the local out-queue is full — the caller retries later.
  bool submit(std::uint64_t client_id, std::uint64_t tx_id,
              BytesView payload);
  bool submit_batch(const SubmitBatch& batch);

  /// Pump I/O for up to timeout_ms (0 = just poll once): flush queued
  /// frames, read whatever arrived, fire callbacks. Returns false once the
  /// connection is gone.
  bool process(int timeout_ms);

  /// Per-tx admission verdict from a SubmitReply.
  std::function<void(std::uint64_t client_id, std::uint64_t tx_id,
                     SubmitStatus status)>
      on_reply;
  /// Commit acknowledgement; latency_us is the server-observed figure.
  std::function<void(std::uint64_t client_id, std::uint64_t tx_id,
                     std::uint64_t latency_us)>
      on_ack;

 private:
  bool queue_frame(Bytes frame);
  bool flush_out();
  bool read_ready();
  void dispatch(const net::Frame& frame);

  Options opts_;
  int fd_ = -1;
  std::uint64_t session_ = 0;
  net::FrameDecoder decoder_{0};
  std::deque<Bytes> out_;
  std::size_t out_offset_ = 0;
};

}  // namespace dr::ingress
