#include "ingress/client.hpp"

#include <algorithm>
#include <chrono>

namespace dr::ingress {

namespace {

std::uint64_t mono_ms() {
  const auto d = std::chrono::steady_clock::now().time_since_epoch();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(d).count());
}

}  // namespace

bool Client::connect(int timeout_ms) {
  close();
  const std::uint64_t deadline =
      mono_ms() + static_cast<std::uint64_t>(std::max(0, timeout_ms));
  fd_ = sock::connect_nonblocking(opts_.host, opts_.port);
  if (fd_ < 0) return false;
  // Wait for the TCP handshake to finish.
  for (;;) {
    pollfd pfd{fd_, static_cast<short>(POLLOUT), 0};
    const int rc = sock::poll_fds(&pfd, 1, 10);
    if (rc > 0) break;
    if (mono_ms() >= deadline) {
      close();
      return false;
    }
  }
  if (!sock::connect_finished(fd_)) {
    close();
    return false;
  }
  sock::set_nodelay(fd_);
  // Hello out (8 bytes — fits any socket buffer, but stay nonblocking).
  const Bytes hello = encode_client_hello(ClientHello{});
  std::size_t sent_total = 0;
  while (sent_total < hello.size()) {
    std::size_t sent = 0;
    const sock::Io rc = sock::send_some(fd_, hello.data() + sent_total,
                                        hello.size() - sent_total, sent);
    if (rc == sock::Io::kClosed || mono_ms() >= deadline) {
      close();
      return false;
    }
    sent_total += sent;
    if (rc == sock::Io::kWouldBlock) {
      pollfd pfd{fd_, static_cast<short>(POLLOUT), 0};
      sock::poll_fds(&pfd, 1, 10);
    }
  }
  // Hello back (16 bytes).
  std::uint8_t buf[kServerHelloBytes];
  std::size_t got_total = 0;
  while (got_total < kServerHelloBytes) {
    std::size_t got = 0;
    const sock::Io rc = sock::recv_some(fd_, buf + got_total,
                                        kServerHelloBytes - got_total, got);
    if (rc == sock::Io::kClosed || mono_ms() >= deadline) {
      close();
      return false;
    }
    got_total += got;
    if (rc == sock::Io::kWouldBlock) {
      pollfd pfd{fd_, static_cast<short>(POLLIN), 0};
      sock::poll_fds(&pfd, 1, 10);
    }
  }
  const auto reply = decode_server_hello(BytesView{buf, kServerHelloBytes});
  if (!reply.ok() || reply.value().status != HelloStatus::kOk) {
    close();
    return false;
  }
  session_ = reply.value().session_id;
  return true;
}

void Client::close() {
  if (fd_ >= 0) sock::close_fd(fd_);
  fd_ = -1;
  session_ = 0;
  decoder_ = net::FrameDecoder{0};
  out_.clear();
  out_offset_ = 0;
}

bool Client::submit(std::uint64_t client_id, std::uint64_t tx_id,
                    BytesView payload) {
  SubmitBatch batch;
  batch.client_id = client_id;
  batch.txs.push_back(TxSubmit{tx_id, Bytes(payload.begin(), payload.end())});
  return submit_batch(batch);
}

bool Client::submit_batch(const SubmitBatch& batch) {
  if (!connected() || batch.txs.empty()) return false;
  return queue_frame(net::encode_frame(0, net::Channel::kIngress,
                                       BytesView(encode_submit_batch(batch))));
}

bool Client::process(int timeout_ms) {
  if (fd_ < 0) return false;
  const auto events = static_cast<short>(
      out_.empty() ? POLLIN : (POLLIN | POLLOUT));
  pollfd pfd{fd_, events, 0};
  const int rc = sock::poll_fds(&pfd, 1, timeout_ms);
  if (rc < 0) {
    close();
    return false;
  }
  if (rc > 0 && (pfd.revents & (POLLERR | POLLNVAL)) != 0) {
    close();
    return false;
  }
  if (!out_.empty() && !flush_out()) return false;
  if (rc > 0 && (pfd.revents & (POLLIN | POLLHUP)) != 0 && !read_ready()) {
    return false;
  }
  return fd_ >= 0;
}

bool Client::queue_frame(Bytes frame) {
  if (out_.size() >= opts_.max_out_frames) return false;
  out_.push_back(std::move(frame));
  return flush_out();
}

bool Client::flush_out() {
  while (!out_.empty()) {
    const Bytes& front = out_.front();
    std::size_t sent = 0;
    const sock::Io rc = sock::send_some(fd_, front.data() + out_offset_,
                                        front.size() - out_offset_, sent);
    if (rc == sock::Io::kClosed) {
      close();
      return false;
    }
    out_offset_ += sent;
    if (out_offset_ == front.size()) {
      out_.pop_front();
      out_offset_ = 0;
      continue;
    }
    if (rc == sock::Io::kWouldBlock) break;
  }
  return true;
}

bool Client::read_ready() {
  std::uint8_t buf[4096];
  for (;;) {
    std::size_t got = 0;
    const sock::Io rc = sock::recv_some(fd_, buf, sizeof(buf), got);
    if (rc == sock::Io::kWouldBlock) break;
    if (rc == sock::Io::kClosed) {
      close();
      return false;
    }
    decoder_.feed(BytesView{buf, got});
    while (auto frame = decoder_.next()) dispatch(*frame);
    if (decoder_.dead()) {
      close();
      return false;
    }
  }
  return true;
}

void Client::dispatch(const net::Frame& frame) {
  if (frame.channel != net::Channel::kIngress) return;
  const auto msg = decode_ingress_message(frame.payload.view());
  if (!msg.ok()) return;
  if (msg.value().reply.has_value() && on_reply) {
    const SubmitReply& reply = *msg.value().reply;
    for (const ReplyEntry& e : reply.entries) {
      on_reply(reply.client_id, e.tx_id, e.status);
    }
  }
  if (msg.value().acks.has_value() && on_ack) {
    for (const AckEntry& a : msg.value().acks->acks) {
      on_ack(a.client_id, a.tx_id, a.latency_us);
    }
  }
}

}  // namespace dr::ingress
