// Digest-partitioned mempool behind the client ingress tier (DESIGN.md §13).
// Replaces the single-lock txpool::Mempool stub on the node's hot path: the
// ingress I/O thread and any number of client threads submit concurrently,
// the node thread drains blocks, and contention stays per-shard.
//
// Identity is the tx digest — sha256 over (id, payload), excluding the
// server-stamped submit_time so a client resubmitting the same logical tx
// (e.g. after a reconnect) maps to the same digest on every node. Each
// digest lives in exactly one shard for its whole life cycle:
//   pending (FIFO, waiting for a block) -> in-flight (drained into a
//   proposal, awaiting a_deliver) -> recently-committed (bounded dedup
//   window so replays after commit don't double-enter the DAG).
#pragma once

#include <atomic>
#include <cstring>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "crypto/sha256.hpp"
#include "ingress/wire.hpp"
#include "txpool/transaction.hpp"

namespace dr::ingress {

/// Content address of one transaction: sha256(le64(id) || payload). Stable
/// across resubmission (submit_time is server-stamped and excluded) and
/// recomputable from a decoded block at every node, which is what lets
/// deliver-side dedup and ack routing key on it.
crypto::Digest tx_digest(const txpool::Transaction& tx);

/// Where a transaction came from, kept while it is pending/in-flight so the
/// commit ack can be routed back to the owning session. session_id 0 means
/// "no session" (internal submission paths); submit_us is on the ingress
/// server's clock.
struct TxOrigin {
  std::uint64_t session_id = 0;
  std::uint64_t client_id = 0;
  std::uint64_t tx_id = 0;
  std::uint64_t submit_us = 0;
};

struct MempoolOptions {
  std::uint32_t shards = 8;
  /// Hard per-shard bound on pending txs; beyond it submit() returns
  /// kShardFull (backpressure, not silent drops).
  std::size_t shard_capacity = 16'384;
  /// Total recently-committed digests remembered for post-commit dedup,
  /// split evenly across shards. Bounded: commits beyond the window are
  /// forgotten and a very late replay would be re-accepted (DESIGN.md §13).
  std::size_t committed_window = 1 << 16;
  /// Fraction of total pending capacity above which admission turns kBusy —
  /// the explicit "DagBuilder is behind" signal, softer than kShardFull.
  double busy_watermark = 0.75;
  std::size_t max_tx_bytes = kMaxTxBytes;
};

/// Monotonic counters, snapshot via stats().
struct MempoolStats {
  std::uint64_t accepted = 0;
  std::uint64_t rejected_busy = 0;
  std::uint64_t rejected_dup_pending = 0;
  std::uint64_t rejected_dup_committed = 0;
  std::uint64_t rejected_overflow = 0;
  std::uint64_t rejected_too_large = 0;
  std::uint64_t drained = 0;
  std::uint64_t committed_with_origin = 0;  ///< commits that owned a session
  std::uint64_t committed_foreign = 0;      ///< committed via another node
  std::uint64_t window_evictions = 0;
  std::uint64_t restored_in_flight = 0;  ///< txs re-registered from the WAL
};

class ShardedMempool {
 public:
  explicit ShardedMempool(MempoolOptions opts = {});

  ShardedMempool(const ShardedMempool&) = delete;
  ShardedMempool& operator=(const ShardedMempool&) = delete;

  /// Full admission pipeline: size gate, committed-window dedup,
  /// pending/in-flight dedup, busy watermark, shard capacity. On
  /// kDuplicatePending from the *same* (client_id, tx_id) — a reconnecting
  /// client resubmitting — the stored origin's session is re-homed to the
  /// new session so the eventual ack follows the client.
  SubmitStatus submit(txpool::Transaction tx, TxOrigin origin);

  /// Drains up to max_txs pending transactions round-robin across shards
  /// (node thread). Drained txs move to the in-flight set: still deduped,
  /// no longer proposable, origins retained for ack routing.
  std::vector<txpool::Transaction> drain(std::size_t max_txs);

  /// Marks one delivered tx digest committed (node thread, a_deliver path):
  /// drops it from pending/in-flight and records it in the bounded
  /// recently-committed window. Returns the origin when this node owned the
  /// submitting session (the ack path), nullopt for foreign or internal txs.
  std::optional<TxOrigin> mark_committed(const crypto::Digest& digest);

  /// Recovery seeding (node thread, during WAL replay setup): re-registers
  /// a tx carried by a restored-but-not-yet-delivered own proposal, closing
  /// the at-least-once race where a client resubmit after our restart was
  /// re-accepted into a second block while the WAL'd proposal still held the
  /// tx (double delivery). The restored entry sits in the in-flight set with
  /// an empty origin — the pre-crash session is gone, so the eventual commit
  /// ack is unroutable; the resubmitting client observes kDuplicatePending
  /// now and kDuplicateCommitted once the replayed proposal delivers. No-op
  /// if the digest is already pending, in-flight, or recently committed.
  void restore_in_flight(const txpool::Transaction& tx);

  bool recently_committed(const crypto::Digest& digest) const;
  /// True while the digest is pending or in-flight.
  bool knows(const crypto::Digest& digest) const;

  std::size_t pending() const {
    return pending_count_.load(std::memory_order_relaxed);
  }
  std::size_t in_flight() const {
    return in_flight_count_.load(std::memory_order_relaxed);
  }
  /// The admission signal: pending load at/above the busy watermark.
  bool busy() const {
    return pending() >= busy_threshold_;
  }

  std::uint32_t shard_count() const {
    return static_cast<std::uint32_t>(shards_.size());
  }
  std::uint32_t shard_of(const crypto::Digest& digest) const;

  MempoolStats stats() const;
  const MempoolOptions& options() const { return opts_; }

 private:
  struct DigestHash {
    std::size_t operator()(const crypto::Digest& d) const {
      // The digest is already uniform; its first 8 bytes are the hash.
      std::uint64_t h = 0;
      std::memcpy(&h, d.data(), sizeof(h));
      return static_cast<std::size_t>(h);
    }
  };

  struct PendingTx {
    txpool::Transaction tx;
    TxOrigin origin;
  };

  struct Shard {
    mutable std::mutex mu;
    /// FIFO of pending digests; entries whose digest left `pending` (e.g.
    /// committed via a foreign block first) are skipped lazily on drain.
    std::deque<crypto::Digest> fifo;
    std::unordered_map<crypto::Digest, PendingTx, DigestHash> pending;
    std::unordered_map<crypto::Digest, TxOrigin, DigestHash> in_flight;
    std::unordered_set<crypto::Digest, DigestHash> committed;
    std::deque<crypto::Digest> committed_ring;  ///< eviction order
  };

  MempoolOptions opts_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::size_t committed_per_shard_;
  std::size_t busy_threshold_;

  std::atomic<std::size_t> pending_count_{0};
  std::atomic<std::size_t> in_flight_count_{0};
  std::atomic<std::uint32_t> drain_cursor_{0};

  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> rejected_busy_{0};
  std::atomic<std::uint64_t> rejected_dup_pending_{0};
  std::atomic<std::uint64_t> rejected_dup_committed_{0};
  std::atomic<std::uint64_t> rejected_overflow_{0};
  std::atomic<std::uint64_t> rejected_too_large_{0};
  std::atomic<std::uint64_t> drained_{0};
  std::atomic<std::uint64_t> committed_with_origin_{0};
  std::atomic<std::uint64_t> committed_foreign_{0};
  std::atomic<std::uint64_t> window_evictions_{0};
  std::atomic<std::uint64_t> restored_in_flight_{0};
};

}  // namespace dr::ingress
