// TCP tx-submission front end (DESIGN.md §13). One poll()-driven I/O thread
// owns every client session: it accepts connections, runs the hello
// exchange, decodes SubmitBatch frames, pushes transactions into the
// ShardedMempool with their origin attached, answers with per-tx
// SubmitReply verdicts, and flushes CommitAcks queued by the node thread's
// a_deliver path back to the owning session.
//
// Threading contract: the I/O thread is the only toucher of sockets and
// session state. The node thread calls complete() — which only appends to a
// mutex-guarded ack queue and pokes the wake pipe — and any thread may read
// counters(). Per-session output queues are bounded; a slow client loses
// acks (counted), never stalls the server.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "ingress/mempool.hpp"
#include "ingress/sockets.hpp"
#include "metrics/counters.hpp"
#include "net/frame.hpp"

namespace dr::ingress {

/// Globally-unique transaction id derived from the client's (client_id,
/// tx_id) pair. Deterministic, so a reconnecting client resubmitting the
/// same logical tx reproduces the same id — and therefore the same tx
/// digest — on every node.
std::uint64_t compose_tx_id(std::uint64_t client_id, std::uint64_t tx_id);

/// Fixed log2-microsecond latency histogram: lock-free record() from any
/// thread, approximate percentiles good to a factor of two — enough for the
/// server-side ack-latency counters (the loadgen computes exact client-side
/// percentiles separately).
class LatencyHistogram {
 public:
  static constexpr std::size_t kBuckets = 40;

  void record(std::uint64_t us);
  std::uint64_t total() const;
  /// Upper bound of the bucket holding the p-quantile (p in [0,1]);
  /// 0 when empty.
  std::uint64_t percentile_us(double p) const;

 private:
  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
};

struct ServerOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = kernel-assigned; read back via port()
  std::size_t max_sessions = 1 << 16;
  /// Per-session bound on queued outbound buffers; beyond it acks are
  /// dropped (counted) and a session that can't absorb its own submit
  /// replies is closed.
  std::size_t max_out_frames = 1024;
  /// poll() timeout: the latency floor for ack flushes when the wake pipe
  /// is quiet.
  int poll_interval_ms = 20;
};

class IngressServer {
 public:
  IngressServer(ShardedMempool& mempool, ServerOptions opts);
  ~IngressServer();

  IngressServer(const IngressServer&) = delete;
  IngressServer& operator=(const IngressServer&) = delete;

  /// Extra admission signal beyond the mempool watermark (the node wires
  /// its DagBuilder backlog in here). Called on the I/O thread per batch;
  /// returning true turns every tx of the batch into kBusy. Set before
  /// start().
  void set_busy_hook(std::function<bool()> hook) {
    busy_hook_ = std::move(hook);
  }

  bool start();
  void stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  std::uint16_t port() const { return port_; }

  /// Node thread, a_deliver path: queue a commit ack for the session that
  /// submitted `origin` and record the submit->deliver latency (both ends
  /// stamped on this server's own clock). Safe to call when stopped.
  void complete(const TxOrigin& origin);

  /// Monotonic microseconds on the clock submit_us is stamped with.
  static std::uint64_t now_us();

  metrics::Counters counters() const;
  const LatencyHistogram& ack_latency() const { return ack_latency_; }

 private:
  struct Session;

  void io_loop();
  void accept_new_sessions();
  void service_session(std::size_t slot, Session& s, bool readable,
                       bool writable);
  void handle_message(Session& s, const net::Frame& frame);
  void handle_batch(Session& s, const SubmitBatch& batch);
  void flush_pending_acks();
  bool queue_bytes(Session& s, Bytes bytes, bool droppable);
  void flush_out(Session& s);
  void close_session(std::size_t idx);

  ShardedMempool& mempool_;
  ServerOptions opts_;
  std::function<bool()> busy_hook_;

  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::thread io_thread_;
  std::atomic<bool> running_{false};

  /// I/O-thread-only session table (index-stable via tombstones) plus the
  /// session_id -> slot map the ack flusher routes with.
  std::vector<std::unique_ptr<Session>> sessions_;
  std::unordered_map<std::uint64_t, std::size_t> by_id_;
  std::size_t live_sessions_ = 0;
  std::uint64_t next_session_id_ = 1;

  /// complete() -> I/O thread handoff.
  std::mutex acks_mu_;
  std::vector<AckEntry> pending_acks_;
  std::vector<std::uint64_t> pending_ack_sessions_;
  sock::WakePipe wake_;

  LatencyHistogram ack_latency_;
  std::atomic<std::uint64_t> sessions_opened_{0};
  std::atomic<std::uint64_t> sessions_closed_{0};
  std::atomic<std::uint64_t> sessions_rejected_full_{0};
  std::atomic<std::uint64_t> handshake_failures_{0};
  std::atomic<std::uint64_t> protocol_errors_{0};
  std::atomic<std::uint64_t> batches_rx_{0};
  std::atomic<std::uint64_t> txs_rx_{0};
  std::atomic<std::uint64_t> busy_hook_rejects_{0};
  std::atomic<std::uint64_t> acks_enqueued_{0};
  std::atomic<std::uint64_t> acks_sent_{0};
  std::atomic<std::uint64_t> acks_dropped_{0};
  std::atomic<std::uint64_t> acks_orphaned_{0};
};

}  // namespace dr::ingress
