// Open-loop client load generator (DESIGN.md §13). Simulates a large
// population of logical clients (tens of thousands to a million) multiplexed
// over a bounded set of real TCP connections: arrivals follow an aggregate
// Poisson process at a configured rate, the submitting client is drawn from
// a Zipf distribution (a few hot clients, a long cold tail), and an optional
// churn schedule closes and reopens connections mid-run, resubmitting the
// un-acked transactions of the affected clients — the reconnect path the
// mempool's origin re-homing exists for.
//
// Everything is seeded and deterministic on the loadgen side: a resubmitted
// tx regenerates byte-identical payload from (client_id, tx_id), so it maps
// to the same digest at every node.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "common/bytes.hpp"
#include "metrics/stats.hpp"

namespace dr::ingress {

/// Deterministic payload for (client_id, tx_id): 16 bytes of ids followed by
/// SplitMix64 filler. Regenerable, so churned clients resubmit exactly the
/// bytes they first sent. Always at least 16 bytes.
Bytes loadgen_payload(std::uint64_t client_id, std::uint64_t tx_id,
                      std::size_t bytes);

struct LoadGenTarget {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
};

struct LoadGenOptions {
  /// Logical client population (each with its own id space and Zipf weight).
  std::uint64_t clients = 10'000;
  /// Real TCP connections the population is multiplexed over.
  std::size_t connections = 64;
  /// Ingress endpoints; connection i targets targets[i % targets.size()].
  std::vector<LoadGenTarget> targets;
  /// 0 = run until request_stop().
  std::uint64_t duration_ms = 0;
  /// Aggregate open-loop arrival rate across the whole population.
  double rate_tps = 10'000.0;
  std::size_t payload_bytes = 32;
  /// Zipf exponent for the client popularity distribution (0 = uniform).
  double zipf_s = 1.0;
  /// Every churn_period_ms one connection is torn down and redialed, and
  /// the outstanding txs of its clients are resubmitted. 0 = no churn.
  std::uint64_t churn_period_ms = 0;
  std::uint64_t seed = 1;
  /// Max txs of one client coalesced into a single SubmitBatch.
  std::size_t batch_max = 64;
  int connect_timeout_ms = 2'000;
  /// After the run window, keep pumping acks for up to this long.
  std::uint64_t drain_ms = 2'000;
};

struct LoadGenReport {
  std::uint64_t submitted = 0;      ///< txs handed to a connection
  std::uint64_t accepted = 0;
  std::uint64_t busy = 0;
  std::uint64_t dup_pending = 0;
  std::uint64_t dup_committed = 0;
  std::uint64_t shard_full = 0;
  std::uint64_t too_large = 0;
  std::uint64_t acked = 0;
  std::uint64_t resubmitted = 0;
  std::uint64_t local_backpressure = 0;  ///< conn out-queue full, tx dropped
  std::uint64_t overload_skips = 0;      ///< arrival debt shed under overload
  std::uint64_t churn_events = 0;
  std::uint64_t connect_failures = 0;
  std::uint64_t outstanding_at_end = 0;
  std::uint64_t elapsed_ms = 0;
  /// Client-observed submit -> commit-ack latency.
  metrics::Summary ack_latency_ms;
  bool ok = false;
  std::string error;
};

class LoadGen {
 public:
  explicit LoadGen(LoadGenOptions opts);
  ~LoadGen();

  LoadGen(const LoadGen&) = delete;
  LoadGen& operator=(const LoadGen&) = delete;

  /// Spawns the driver thread. One LoadGen = one run.
  bool start();
  /// Asks the driver to wind down early (it still drains acks).
  void request_stop() { stop_.store(true, std::memory_order_release); }
  /// Joins the driver — it exits on its own once duration_ms elapses — and
  /// returns the final report. Callers without a duration must
  /// request_stop() first (or use stop_and_report()).
  LoadGenReport wait_and_report();
  /// request_stop() + wait_and_report().
  LoadGenReport stop_and_report();

 private:
  struct Driver;

  LoadGenOptions opts_;
  std::thread thread_;
  std::atomic<bool> stop_{false};
  bool started_ = false;
  bool joined_ = false;
  LoadGenReport report_;
};

}  // namespace dr::ingress
