// The one sanctioned raw-syscall site for src/ingress/ (see sockets.hpp and
// the daglint ingress-blocking rule). Everything here is nonblocking by
// construction.
#include "ingress/sockets.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace dr::ingress::sock {

namespace {

bool make_addr(const std::string& host, std::uint16_t port,
               sockaddr_in& addr) {
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  return ::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) == 1;
}

}  // namespace

int listen_nonblocking(const std::string& host, std::uint16_t port,
                       int backlog) {
  sockaddr_in addr{};
  if (!make_addr(host, port, addr)) return -1;
  const int fd =
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(fd, backlog) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

std::uint16_t local_port(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return 0;
  }
  return ntohs(addr.sin_port);
}

int accept_nonblocking(int listen_fd) {
  for (;;) {
    const int fd =
        ::accept4(listen_fd, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd >= 0) return fd;
    if (errno == EINTR) continue;
    return -1;
  }
}

int connect_nonblocking(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  if (!make_addr(host, port, addr)) return -1;
  const int fd =
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  for (;;) {
    const int rc =
        ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
    if (rc == 0) return fd;
    if (errno == EINTR) continue;
    if (errno == EINPROGRESS) return fd;  // completes under poll(POLLOUT)
    ::close(fd);
    return -1;
  }
}

bool connect_finished(int fd) {
  int err = 0;
  socklen_t len = sizeof(err);
  if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0) return false;
  return err == 0;
}

Io recv_some(int fd, std::uint8_t* buf, std::size_t len, std::size_t& got) {
  got = 0;
  for (;;) {
    const ssize_t n = ::recv(fd, buf, len, MSG_DONTWAIT);
    if (n > 0) {
      got = static_cast<std::size_t>(n);
      return Io::kProgress;
    }
    if (n == 0) return Io::kClosed;  // orderly EOF
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return Io::kWouldBlock;
    return Io::kClosed;
  }
}

Io send_some(int fd, const std::uint8_t* data, std::size_t len,
             std::size_t& sent) {
  sent = 0;
  for (;;) {
    const ssize_t n = ::send(fd, data, len, MSG_DONTWAIT | MSG_NOSIGNAL);
    if (n >= 0) {
      sent = static_cast<std::size_t>(n);
      return Io::kProgress;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return Io::kWouldBlock;
    return Io::kClosed;
  }
}

int poll_fds(pollfd* fds, std::size_t count, int timeout_ms) {
  for (;;) {
    const int rc = ::poll(fds, static_cast<nfds_t>(count), timeout_ms);
    if (rc >= 0) return rc;
    if (errno == EINTR) continue;
    return -1;
  }
}

bool WakePipe::open_pipe() {
  int fds[2] = {-1, -1};
  if (::pipe2(fds, O_NONBLOCK | O_CLOEXEC) != 0) return false;
  rd = fds[0];
  wr = fds[1];
  return true;
}

void WakePipe::signal() const {
  if (wr < 0) return;
  const std::uint8_t byte = 1;
  // A full pipe already guarantees a pending wakeup; EAGAIN is success.
  [[maybe_unused]] const ssize_t n = ::write(wr, &byte, 1);
}

void WakePipe::drain() const {
  if (rd < 0) return;
  std::uint8_t buf[64];
  while (::read(rd, buf, sizeof(buf)) > 0) {
  }
}

void WakePipe::close_pipe() {
  if (rd >= 0) ::close(rd);
  if (wr >= 0) ::close(wr);
  rd = -1;
  wr = -1;
}

void set_nodelay(int fd) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

void shutdown_fd(int fd) {
  if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
}

void close_fd(int fd) {
  if (fd >= 0) ::close(fd);
}

}  // namespace dr::ingress::sock
