#include "ingress/wire.hpp"

namespace dr::ingress {

const char* to_string(SubmitStatus s) {
  switch (s) {
    case SubmitStatus::kAccepted: return "accepted";
    case SubmitStatus::kBusy: return "busy";
    case SubmitStatus::kDuplicatePending: return "dup-pending";
    case SubmitStatus::kDuplicateCommitted: return "dup-committed";
    case SubmitStatus::kShardFull: return "shard-full";
    case SubmitStatus::kTooLarge: return "too-large";
  }
  return "unknown";
}

Bytes encode_client_hello(const ClientHello& hello) {
  ByteWriter w(kClientHelloBytes);
  w.u32(hello.magic);
  w.u16(hello.version);
  w.u16(hello.flags);
  return std::move(w).take();
}

Bytes encode_server_hello(const ServerHello& hello) {
  ByteWriter w(kServerHelloBytes);
  w.u32(hello.magic);
  w.u16(hello.version);
  w.u16(static_cast<std::uint16_t>(hello.status));
  w.u64(hello.session_id);
  return std::move(w).take();
}

Expected<ClientHello> decode_client_hello(BytesView data) {
  using Out = Expected<ClientHello>;
  ByteReader in(data);
  ClientHello hello;
  hello.magic = in.u32();
  hello.version = in.u16();
  hello.flags = in.u16();
  if (!in.done()) return Out::failure("client hello truncated");
  if (hello.magic != kIngressMagic) return Out::failure("bad ingress magic");
  if (hello.version != kIngressVersion) {
    return Out::failure("unsupported ingress version");
  }
  if (hello.flags != 0) return Out::failure("reserved hello flags set");
  return hello;
}

Expected<ServerHello> decode_server_hello(BytesView data) {
  using Out = Expected<ServerHello>;
  ByteReader in(data);
  ServerHello hello;
  hello.magic = in.u32();
  hello.version = in.u16();
  const std::uint16_t status = in.u16();
  hello.session_id = in.u64();
  if (!in.done()) return Out::failure("server hello truncated");
  if (hello.magic != kIngressMagic) return Out::failure("bad ingress magic");
  if (hello.version != kIngressVersion) {
    return Out::failure("unsupported ingress version");
  }
  if (status > static_cast<std::uint16_t>(HelloStatus::kFull)) {
    return Out::failure("unknown hello status");
  }
  hello.status = static_cast<HelloStatus>(status);
  if (hello.status == HelloStatus::kOk && hello.session_id == 0) {
    return Out::failure("accepted hello carries no session id");
  }
  return hello;
}

Bytes encode_submit_batch(const SubmitBatch& batch) {
  ByteWriter w(16 + batch.txs.size() * 64);
  w.u8(kSubmitBatchTag);
  w.u64(batch.client_id);
  w.u32(static_cast<std::uint32_t>(batch.txs.size()));
  for (const TxSubmit& tx : batch.txs) {
    w.u64(tx.tx_id);
    w.blob(tx.payload);
  }
  return std::move(w).take();
}

Bytes encode_submit_reply(const SubmitReply& reply) {
  ByteWriter w(16 + reply.entries.size() * 9);
  w.u8(kSubmitReplyTag);
  w.u64(reply.client_id);
  w.u32(static_cast<std::uint32_t>(reply.entries.size()));
  for (const ReplyEntry& e : reply.entries) {
    w.u64(e.tx_id);
    w.u8(static_cast<std::uint8_t>(e.status));
  }
  return std::move(w).take();
}

Bytes encode_commit_acks(const CommitAcks& acks) {
  ByteWriter w(8 + acks.acks.size() * 24);
  w.u8(kCommitAcksTag);
  w.u32(static_cast<std::uint32_t>(acks.acks.size()));
  for (const AckEntry& a : acks.acks) {
    w.u64(a.client_id);
    w.u64(a.tx_id);
    w.u64(a.latency_us);
  }
  return std::move(w).take();
}

Expected<IngressMessage> decode_ingress_message(BytesView data) {
  using Out = Expected<IngressMessage>;
  ByteReader in(data);
  IngressMessage msg;
  const std::uint8_t tag = in.u8();
  switch (tag) {
    case kSubmitBatchTag: {
      SubmitBatch batch;
      batch.client_id = in.u64();
      const std::uint32_t count = in.u32();
      if (!in.ok()) return Out::failure("submit batch truncated");
      if (count == 0) return Out::failure("empty submit batch");
      if (count > kMaxBatchTxs) return Out::failure("submit batch too long");
      batch.txs.reserve(count);
      for (std::uint32_t i = 0; i < count; ++i) {
        TxSubmit tx;
        tx.tx_id = in.u64();
        tx.payload = in.blob();
        if (!in.ok()) return Out::failure("submit batch truncated");
        if (tx.payload.size() > kMaxTxBytes) {
          return Out::failure("oversized tx payload");
        }
        batch.txs.push_back(std::move(tx));
      }
      msg.batch = std::move(batch);
      break;
    }
    case kSubmitReplyTag: {
      SubmitReply reply;
      reply.client_id = in.u64();
      const std::uint32_t count = in.u32();
      if (!in.ok()) return Out::failure("submit reply truncated");
      if (count > kMaxBatchTxs) return Out::failure("submit reply too long");
      reply.entries.reserve(count);
      for (std::uint32_t i = 0; i < count; ++i) {
        ReplyEntry e;
        e.tx_id = in.u64();
        const std::uint8_t status = in.u8();
        if (!in.ok()) return Out::failure("submit reply truncated");
        if (!submit_status_valid(status)) {
          return Out::failure("unknown submit status");
        }
        e.status = static_cast<SubmitStatus>(status);
        reply.entries.push_back(e);
      }
      msg.reply = std::move(reply);
      break;
    }
    case kCommitAcksTag: {
      CommitAcks acks;
      const std::uint32_t count = in.u32();
      if (!in.ok()) return Out::failure("commit acks truncated");
      if (count > kMaxAckEntries) return Out::failure("ack batch too long");
      acks.acks.reserve(count);
      for (std::uint32_t i = 0; i < count; ++i) {
        AckEntry a;
        a.client_id = in.u64();
        a.tx_id = in.u64();
        a.latency_us = in.u64();
        if (!in.ok()) return Out::failure("commit acks truncated");
        acks.acks.push_back(a);
      }
      msg.acks = std::move(acks);
      break;
    }
    default:
      return Out::failure("unknown ingress message tag");
  }
  if (!in.done()) return Out::failure("trailing bytes after ingress message");
  return msg;
}

}  // namespace dr::ingress
