#include "ingress/loadgen.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <memory>
#include <unordered_map>

#include "common/rng.hpp"
#include "ingress/client.hpp"

namespace dr::ingress {

namespace {

std::uint64_t mono_us() {
  const auto d = std::chrono::steady_clock::now().time_since_epoch();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(d).count());
}

/// Arrivals shed per iteration cap: under overload the open loop drops time
/// debt instead of building an unbounded backlog (counted as
/// overload_skips).
constexpr std::size_t kMaxArrivalsPerTick = 16'384;

}  // namespace

Bytes loadgen_payload(std::uint64_t client_id, std::uint64_t tx_id,
                      std::size_t bytes) {
  const std::size_t size = std::max<std::size_t>(16, bytes);
  ByteWriter w(size);
  w.u64(client_id);
  w.u64(tx_id);
  SplitMix64 fill(client_id ^ (tx_id * 0x9e3779b97f4a7c15ULL));
  std::size_t remaining = size - 16;
  while (remaining >= 8) {
    w.u64(fill.next());
    remaining -= 8;
  }
  std::uint64_t last = fill.next();
  while (remaining > 0) {
    w.u8(static_cast<std::uint8_t>(last & 0xff));
    last >>= 8;
    --remaining;
  }
  return std::move(w).take();
}

/// All run state, confined to the driver thread.
struct LoadGen::Driver {
  explicit Driver(LoadGen& owner)
      : gen(owner), opts(owner.opts_), rng(owner.opts_.seed) {}

  LoadGen& gen;
  const LoadGenOptions& opts;
  Xoshiro256 rng;
  LoadGenReport report;

  std::vector<std::unique_ptr<Client>> conns;
  std::vector<std::uint64_t> reconnect_after_us;  ///< backoff per conn
  /// Zipf CDF over the client population, sampled by binary search.
  std::vector<double> zipf_cdf;
  std::vector<std::uint32_t> next_tx;  ///< per-client tx_id counter
  /// key = (client_id << 32) | tx_id -> submit time (us, loadgen clock).
  std::unordered_map<std::uint64_t, std::uint64_t> outstanding;
  /// Per-connection, per-client coalescing buffers, flushed every tick.
  std::vector<std::unordered_map<std::uint64_t, std::vector<TxSubmit>>>
      pending;

  static std::uint64_t key_of(std::uint64_t client_id, std::uint64_t tx_id) {
    return (client_id << 32) | (tx_id & 0xffffffffull);
  }

  std::size_t conn_of(std::uint64_t client_id) const {
    return static_cast<std::size_t>(client_id % opts.connections);
  }

  void build_zipf() {
    zipf_cdf.resize(opts.clients);
    double total = 0.0;
    for (std::uint64_t i = 0; i < opts.clients; ++i) {
      total += 1.0 / std::pow(static_cast<double>(i + 1), opts.zipf_s);
      zipf_cdf[i] = total;
    }
  }

  std::uint64_t sample_client() {
    const double u = rng.uniform() * zipf_cdf.back();
    const auto it = std::lower_bound(zipf_cdf.begin(), zipf_cdf.end(), u);
    return static_cast<std::uint64_t>(it - zipf_cdf.begin());
  }

  Client::Options conn_options(std::size_t i) const {
    const LoadGenTarget& t = opts.targets[i % opts.targets.size()];
    return Client::Options{t.host, t.port, 256};
  }

  void wire_callbacks(Client& c) {
    c.on_reply = [this](std::uint64_t client_id, std::uint64_t tx_id,
                        SubmitStatus status) {
      switch (status) {
        case SubmitStatus::kAccepted:
          ++report.accepted;
          return;  // stays outstanding until the ack
        case SubmitStatus::kBusy:
          ++report.busy;
          break;
        case SubmitStatus::kDuplicatePending:
          ++report.dup_pending;
          return;  // first submission still owns the eventual ack
        case SubmitStatus::kDuplicateCommitted:
          ++report.dup_committed;
          break;
        case SubmitStatus::kShardFull:
          ++report.shard_full;
          break;
        case SubmitStatus::kTooLarge:
          ++report.too_large;
          break;
      }
      outstanding.erase(key_of(client_id, tx_id));  // won't be acked
    };
    c.on_ack = [this](std::uint64_t client_id, std::uint64_t tx_id,
                      std::uint64_t /*server_latency_us*/) {
      const auto it = outstanding.find(key_of(client_id, tx_id));
      if (it == outstanding.end()) return;  // late ack after give-up
      const std::uint64_t now = mono_us();
      const std::uint64_t us = now > it->second ? now - it->second : 0;
      report.ack_latency_ms.add(static_cast<double>(us) / 1000.0);
      outstanding.erase(it);
      ++report.acked;
    };
  }

  bool connect_conn(std::size_t i) {
    conns[i] = std::make_unique<Client>(conn_options(i));
    wire_callbacks(*conns[i]);
    if (conns[i]->connect(opts.connect_timeout_ms)) return true;
    ++report.connect_failures;
    conns[i].reset();
    return false;
  }

  void enqueue_tx(std::uint64_t client_id, std::uint64_t tx_id,
                  std::uint64_t submit_us, bool resubmit) {
    const std::size_t conn = conn_of(client_id);
    if (conns[conn] == nullptr || !conns[conn]->connected()) {
      ++report.local_backpressure;
      if (!resubmit) outstanding.erase(key_of(client_id, tx_id));
      return;
    }
    pending[conn][client_id].push_back(
        TxSubmit{tx_id, loadgen_payload(client_id, tx_id,
                                        opts.payload_bytes)});
    if (!resubmit) {
      outstanding.emplace(key_of(client_id, tx_id), submit_us);
      ++report.submitted;
    } else {
      ++report.resubmitted;
    }
  }

  void flush_pending() {
    for (std::size_t conn = 0; conn < conns.size(); ++conn) {
      auto& per_client = pending[conn];
      if (per_client.empty()) continue;
      Client* c = conns[conn].get();
      for (auto& [client_id, txs] : per_client) {
        for (std::size_t base = 0; base < txs.size();
             base += opts.batch_max) {
          SubmitBatch batch;
          batch.client_id = client_id;
          const std::size_t end =
              std::min(txs.size(), base + opts.batch_max);
          batch.txs.assign(
              std::make_move_iterator(txs.begin() +
                                      static_cast<std::ptrdiff_t>(base)),
              std::make_move_iterator(txs.begin() +
                                      static_cast<std::ptrdiff_t>(end)));
          if (c == nullptr || !c->submit_batch(batch)) {
            // Conn gone or its out-queue is full: shed the chunk.
            for (const TxSubmit& tx : batch.txs) {
              outstanding.erase(key_of(client_id, tx.tx_id));
              ++report.local_backpressure;
            }
          }
        }
      }
      per_client.clear();
    }
  }

  void churn_one(std::uint64_t now) {
    const std::size_t conn = static_cast<std::size_t>(
        rng.below(static_cast<std::uint64_t>(opts.connections)));
    ++report.churn_events;
    if (conns[conn] != nullptr) conns[conn]->close();
    conns[conn].reset();
    if (!connect_conn(conn)) {
      reconnect_after_us[conn] = now + 100'000;
      return;
    }
    resubmit_outstanding(conn);
  }

  /// After a reconnect, replay every un-acked tx whose client lives on this
  /// connection; payloads regenerate byte-identically so the server dedups
  /// or re-homes rather than double-admitting.
  void resubmit_outstanding(std::size_t conn) {
    for (const auto& [key, submit_us] : outstanding) {
      const std::uint64_t client_id = key >> 32;
      if (conn_of(client_id) != conn) continue;
      const std::uint64_t tx_id = key & 0xffffffffull;
      enqueue_tx(client_id, tx_id, submit_us, /*resubmit=*/true);
    }
  }

  void pump_conns() {
    for (auto& c : conns) {
      if (c != nullptr) c->process(0);
    }
  }

  void poll_wait(int timeout_ms) {
    std::vector<pollfd> pfds;
    for (const auto& c : conns) {
      if (c == nullptr || c->fd() < 0) continue;
      const auto events = static_cast<short>(
          c->has_backlog() ? (POLLIN | POLLOUT) : POLLIN);
      pfds.push_back(pollfd{c->fd(), events, 0});
    }
    if (pfds.empty()) return;
    sock::poll_fds(pfds.data(), pfds.size(), timeout_ms);
  }

  void run() {
    if (opts.targets.empty() || opts.connections == 0 ||
        opts.clients == 0 || opts.rate_tps <= 0.0) {
      report.error = "invalid loadgen options";
      return;
    }
    build_zipf();
    next_tx.assign(opts.clients, 0);
    conns.resize(opts.connections);
    reconnect_after_us.assign(opts.connections, 0);
    pending.resize(opts.connections);
    std::size_t live = 0;
    for (std::size_t i = 0; i < opts.connections; ++i) {
      if (connect_conn(i)) {
        ++live;
      } else {
        reconnect_after_us[i] = mono_us() + 100'000;
      }
    }
    if (live == 0) {
      report.error = "no ingress connection could be established";
      return;
    }
    const std::uint64_t start = mono_us();
    const std::uint64_t end_us =
        opts.duration_ms == 0 ? 0 : start + opts.duration_ms * 1000;
    const double us_per_tx = 1e6 / opts.rate_tps;
    double next_arrival = static_cast<double>(start);
    std::uint64_t next_churn =
        opts.churn_period_ms == 0 ? 0 : start + opts.churn_period_ms * 1000;
    while (!gen.stop_.load(std::memory_order_acquire)) {
      const std::uint64_t now = mono_us();
      if (end_us != 0 && now >= end_us) break;
      // Open-loop Poisson arrivals (exponential gaps, rate * population).
      std::size_t burst = 0;
      while (next_arrival <= static_cast<double>(now)) {
        if (burst++ >= kMaxArrivalsPerTick) {
          ++report.overload_skips;
          next_arrival = static_cast<double>(now);
          break;
        }
        const std::uint64_t client_id = sample_client();
        const std::uint64_t tx_id = next_tx[client_id]++;
        enqueue_tx(client_id, tx_id, now, /*resubmit=*/false);
        const double u = std::max(rng.uniform(), 1e-12);
        next_arrival += -std::log(u) * us_per_tx;
      }
      flush_pending();
      if (next_churn != 0 && now >= next_churn) {
        churn_one(now);
        next_churn = now + opts.churn_period_ms * 1000;
      }
      // Lazy redial of dead connections (initial failures / failed churn).
      for (std::size_t i = 0; i < conns.size(); ++i) {
        if (conns[i] == nullptr && reconnect_after_us[i] != 0 &&
            now >= reconnect_after_us[i]) {
          if (connect_conn(i)) {
            reconnect_after_us[i] = 0;
            resubmit_outstanding(i);
          } else {
            reconnect_after_us[i] = now + 100'000;
          }
        }
      }
      poll_wait(1);
      pump_conns();
    }
    // Drain window: stop submitting, keep collecting acks.
    const std::uint64_t drain_end = mono_us() + opts.drain_ms * 1000;
    while (!outstanding.empty() && mono_us() < drain_end) {
      poll_wait(5);
      pump_conns();
    }
    report.outstanding_at_end = outstanding.size();
    report.elapsed_ms = (mono_us() - start) / 1000;
    report.ok = true;
    for (auto& c : conns) {
      if (c != nullptr) c->close();
    }
  }
};

LoadGen::LoadGen(LoadGenOptions opts) : opts_(std::move(opts)) {}

LoadGen::~LoadGen() {
  request_stop();
  if (thread_.joinable()) thread_.join();
}

bool LoadGen::start() {
  if (started_) return false;
  started_ = true;
  thread_ = std::thread([this] {
    Driver driver(*this);
    driver.run();
    report_ = std::move(driver.report);
  });
  return true;
}

LoadGenReport LoadGen::wait_and_report() {
  if (thread_.joinable()) thread_.join();
  joined_ = true;
  return report_;
}

LoadGenReport LoadGen::stop_and_report() {
  request_stop();
  return wait_and_report();
}

}  // namespace dr::ingress
