// Nonblocking socket helpers for the ingress tier. This file pair is the
// single sanctioned home for raw socket syscalls under src/ingress/ (the
// daglint ingress-blocking rule exempts ingress/sockets.cpp and nothing
// else): every descriptor produced here is O_NONBLOCK, every I/O call is
// MSG_DONTWAIT, so no caller can accidentally park an event-loop thread in
// the kernel behind a slow client.
#pragma once

#include <poll.h>

#include <cstddef>
#include <cstdint>
#include <string>

namespace dr::ingress::sock {

/// Result of a nonblocking read/write step.
enum class Io : int {
  kProgress = 0,    ///< some bytes moved (see the out-param for how many)
  kWouldBlock = 1,  ///< no buffer space / no data right now; poll and retry
  kClosed = 2,      ///< EOF or a hard error; tear the session down
};

/// Bound + listening nonblocking socket on host:port (numeric IPv4;
/// port 0 = kernel-assigned, read back via local_port). -1 on failure.
int listen_nonblocking(const std::string& host, std::uint16_t port,
                       int backlog);
std::uint16_t local_port(int fd);

/// One accept4(SOCK_NONBLOCK) step; -1 when no connection is pending (or on
/// error — callers treat both as "nothing to do this round").
int accept_nonblocking(int listen_fd);

/// Starts a nonblocking connect; the socket is usually mid-handshake
/// (EINPROGRESS) on return. Poll for POLLOUT then call connect_finished.
/// -1 on immediate failure.
int connect_nonblocking(const std::string& host, std::uint16_t port);
/// After writability: true iff the connect completed without error.
bool connect_finished(int fd);

Io recv_some(int fd, std::uint8_t* buf, std::size_t len, std::size_t& got);
Io send_some(int fd, const std::uint8_t* data, std::size_t len,
             std::size_t& sent);

/// poll(2) wrapper so event loops never touch the raw syscall form the
/// daglint rules pattern-match on. Returns the number of ready fds (0 on
/// timeout, -1 on error other than EINTR).
int poll_fds(pollfd* fds, std::size_t count, int timeout_ms);

/// Self-pipe wakeup: lets another thread (the node thread queueing commit
/// acks) interrupt a poll() without signals or busy-waiting.
struct WakePipe {
  int rd = -1;
  int wr = -1;
  bool open_pipe();   ///< O_NONBLOCK | O_CLOEXEC both ends
  void signal() const;
  void drain() const;
  void close_pipe();
};

void set_nodelay(int fd);
void shutdown_fd(int fd);
void close_fd(int fd);

}  // namespace dr::ingress::sock
