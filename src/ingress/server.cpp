#include "ingress/server.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <chrono>
#include <deque>
#include <utility>

namespace dr::ingress {

std::uint64_t compose_tx_id(std::uint64_t client_id, std::uint64_t tx_id) {
  // splitmix64-style finalizer over the pair: deterministic (resubmits
  // reproduce the digest) and well-spread across mempool shards.
  std::uint64_t x =
      client_id * 0x9E3779B97F4A7C15ull ^ (tx_id + 0xD1B54A32D192ED03ull);
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ull;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBull;
  x ^= x >> 31;
  return x;
}

void LatencyHistogram::record(std::uint64_t us) {
  const auto width = static_cast<std::size_t>(std::bit_width(us));
  const std::size_t idx = std::min(width, kBuckets - 1);
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t LatencyHistogram::total() const {
  std::uint64_t sum = 0;
  for (const auto& b : buckets_) sum += b.load(std::memory_order_relaxed);
  return sum;
}

std::uint64_t LatencyHistogram::percentile_us(double p) const {
  const std::uint64_t n = total();
  if (n == 0) return 0;
  const double clamped = std::clamp(p, 0.0, 1.0);
  const auto target = static_cast<std::uint64_t>(
      std::max(1.0, clamped * static_cast<double>(n)));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    seen += buckets_[i].load(std::memory_order_relaxed);
    if (seen >= target) {
      // Bucket i holds values with bit_width == i: upper bound 2^i - 1.
      return i == 0 ? 0 : (std::uint64_t{1} << i) - 1;
    }
  }
  return std::uint64_t{1} << (kBuckets - 1);
}

std::uint64_t IngressServer::now_us() {
  const auto d = std::chrono::steady_clock::now().time_since_epoch();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(d).count());
}

/// Per-client connection state; only the I/O thread touches it.
struct IngressServer::Session {
  int fd = -1;
  std::uint64_t id = 0;  ///< 0 until the hello exchange completes
  bool doomed = false;
  std::array<std::uint8_t, kClientHelloBytes> hello{};
  std::size_t hello_got = 0;
  net::FrameDecoder decoder{0};  ///< n=0: client frames carry no peer id
  std::deque<Bytes> out;
  std::size_t out_offset = 0;  ///< consumed prefix of out.front()
};

IngressServer::IngressServer(ShardedMempool& mempool, ServerOptions opts)
    : mempool_(mempool), opts_(std::move(opts)) {}

IngressServer::~IngressServer() { stop(); }

bool IngressServer::start() {
  if (running_.load(std::memory_order_acquire)) return true;
  listen_fd_ = sock::listen_nonblocking(opts_.host, opts_.port, 1024);
  if (listen_fd_ < 0) return false;
  port_ = sock::local_port(listen_fd_);
  if (!wake_.open_pipe()) {
    sock::close_fd(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  running_.store(true, std::memory_order_release);
  io_thread_ = std::thread([this] { io_loop(); });
  return true;
}

void IngressServer::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  wake_.signal();
  if (io_thread_.joinable()) io_thread_.join();
  for (auto& s : sessions_) {
    if (s != nullptr && s->fd >= 0) {
      sock::shutdown_fd(s->fd);
      sock::close_fd(s->fd);
      sessions_closed_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  sessions_.clear();
  by_id_.clear();
  live_sessions_ = 0;
  sock::close_fd(listen_fd_);
  listen_fd_ = -1;
  wake_.close_pipe();
}

void IngressServer::complete(const TxOrigin& origin) {
  const std::uint64_t now = now_us();
  const std::uint64_t latency =
      now > origin.submit_us ? now - origin.submit_us : 0;
  ack_latency_.record(latency);
  acks_enqueued_.fetch_add(1, std::memory_order_relaxed);
  if (!running_.load(std::memory_order_acquire)) return;
  {
    std::lock_guard<std::mutex> lk(acks_mu_);
    pending_acks_.push_back(
        AckEntry{origin.client_id, origin.tx_id, latency});
    pending_ack_sessions_.push_back(origin.session_id);
  }
  wake_.signal();
}

void IngressServer::io_loop() {
  std::vector<pollfd> pfds;
  std::vector<std::size_t> slot_of_pfd;
  while (running_.load(std::memory_order_acquire)) {
    pfds.clear();
    slot_of_pfd.clear();
    const auto kIn = static_cast<short>(POLLIN);
    pfds.push_back(pollfd{wake_.rd, kIn, 0});
    pfds.push_back(pollfd{listen_fd_, kIn, 0});
    for (std::size_t i = 0; i < sessions_.size(); ++i) {
      Session* s = sessions_[i].get();
      if (s == nullptr) continue;
      const auto events = static_cast<short>(
          s->out.empty() ? POLLIN : (POLLIN | POLLOUT));
      pfds.push_back(pollfd{s->fd, events, 0});
      slot_of_pfd.push_back(i);
    }
    sock::poll_fds(pfds.data(), pfds.size(), opts_.poll_interval_ms);
    if (!running_.load(std::memory_order_acquire)) break;
    if ((pfds[0].revents & POLLIN) != 0) wake_.drain();
    flush_pending_acks();
    if ((pfds[1].revents & POLLIN) != 0) accept_new_sessions();
    for (std::size_t p = 2; p < pfds.size(); ++p) {
      const std::size_t slot = slot_of_pfd[p - 2];
      Session* s = sessions_[slot].get();
      if (s == nullptr) continue;
      if ((pfds[p].revents & (POLLERR | POLLHUP | POLLNVAL)) != 0) {
        s->doomed = true;
      } else {
        service_session(slot, *s, (pfds[p].revents & POLLIN) != 0,
                        (pfds[p].revents & POLLOUT) != 0);
      }
      if (s->doomed) close_session(slot);
    }
  }
}

void IngressServer::accept_new_sessions() {
  for (;;) {
    const int fd = sock::accept_nonblocking(listen_fd_);
    if (fd < 0) return;
    if (live_sessions_ >= opts_.max_sessions) {
      // Best-effort kFull hello, then close: "try another node".
      const Bytes hello = encode_server_hello(
          ServerHello{kIngressMagic, kIngressVersion, HelloStatus::kFull, 0});
      std::size_t sent = 0;
      sock::send_some(fd, hello.data(), hello.size(), sent);
      sock::close_fd(fd);
      sessions_rejected_full_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    sock::set_nodelay(fd);
    auto session = std::make_unique<Session>();
    session->fd = fd;
    std::size_t slot = sessions_.size();
    for (std::size_t i = 0; i < sessions_.size(); ++i) {
      if (sessions_[i] == nullptr) {
        slot = i;
        break;
      }
    }
    if (slot == sessions_.size()) {
      sessions_.push_back(std::move(session));
    } else {
      sessions_[slot] = std::move(session);
    }
    ++live_sessions_;
    sessions_opened_.fetch_add(1, std::memory_order_relaxed);
  }
}

void IngressServer::service_session(std::size_t slot, Session& s,
                                    bool readable, bool writable) {
  if (readable) {
    std::uint8_t buf[4096];
    for (;;) {
      std::size_t got = 0;
      const sock::Io rc = sock::recv_some(s.fd, buf, sizeof(buf), got);
      if (rc == sock::Io::kWouldBlock) break;
      if (rc == sock::Io::kClosed) {
        s.doomed = true;
        return;
      }
      std::size_t off = 0;
      if (s.id == 0) {
        // Still mid-hello: accumulate the fixed-size client hello first.
        const std::size_t need = kClientHelloBytes - s.hello_got;
        const std::size_t take = std::min(need, got);
        std::copy_n(buf, take, s.hello.data() + s.hello_got);
        s.hello_got += take;
        off = take;
        if (s.hello_got < kClientHelloBytes) continue;
        const auto hello = decode_client_hello(
            BytesView{s.hello.data(), kClientHelloBytes});
        if (!hello.ok()) {
          handshake_failures_.fetch_add(1, std::memory_order_relaxed);
          s.doomed = true;
          return;
        }
        s.id = next_session_id_++;
        by_id_.emplace(s.id, slot);
        if (!queue_bytes(s, encode_server_hello(ServerHello{
                                kIngressMagic, kIngressVersion,
                                HelloStatus::kOk, s.id}),
                         /*droppable=*/false)) {
          return;
        }
      }
      if (off < got) s.decoder.feed(BytesView{buf + off, got - off});
      while (auto frame = s.decoder.next()) {
        handle_message(s, *frame);
        if (s.doomed) return;
      }
      if (s.decoder.dead()) {
        protocol_errors_.fetch_add(1, std::memory_order_relaxed);
        s.doomed = true;
        return;
      }
    }
  }
  if (writable || !s.out.empty()) flush_out(s);
}

void IngressServer::handle_message(Session& s, const net::Frame& frame) {
  if (frame.channel != net::Channel::kIngress) {
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    s.doomed = true;
    return;
  }
  const auto msg = decode_ingress_message(frame.payload.view());
  if (!msg.ok() || !msg.value().batch.has_value()) {
    // Malformed, or a server->client message (reply/acks) from a client.
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    s.doomed = true;
    return;
  }
  handle_batch(s, *msg.value().batch);
}

void IngressServer::handle_batch(Session& s, const SubmitBatch& batch) {
  batches_rx_.fetch_add(1, std::memory_order_relaxed);
  txs_rx_.fetch_add(batch.txs.size(), std::memory_order_relaxed);
  const bool hook_busy = busy_hook_ && busy_hook_();
  const std::uint64_t now = now_us();
  SubmitReply reply;
  reply.client_id = batch.client_id;
  reply.entries.reserve(batch.txs.size());
  for (const TxSubmit& tx : batch.txs) {
    SubmitStatus status;
    if (hook_busy) {
      status = SubmitStatus::kBusy;
      busy_hook_rejects_.fetch_add(1, std::memory_order_relaxed);
    } else {
      txpool::Transaction t;
      t.id = compose_tx_id(batch.client_id, tx.tx_id);
      t.submit_time = now;
      t.payload = tx.payload;
      status = mempool_.submit(
          std::move(t), TxOrigin{s.id, batch.client_id, tx.tx_id, now});
    }
    reply.entries.push_back(ReplyEntry{tx.tx_id, status});
  }
  // A session that can't even absorb its own submit replies is closed
  // (queue_bytes dooms it); clients treat the lost replies as a disconnect.
  queue_bytes(s, net::encode_frame(0, net::Channel::kIngress,
                                   BytesView(encode_submit_reply(reply))),
              /*droppable=*/false);
}

void IngressServer::flush_pending_acks() {
  std::vector<AckEntry> acks;
  std::vector<std::uint64_t> owners;
  {
    std::lock_guard<std::mutex> lk(acks_mu_);
    acks.swap(pending_acks_);
    owners.swap(pending_ack_sessions_);
  }
  if (acks.empty()) return;
  // Group per live session, then ship each group as CommitAcks frames.
  std::unordered_map<std::size_t, CommitAcks> grouped;
  for (std::size_t i = 0; i < acks.size(); ++i) {
    const auto it = by_id_.find(owners[i]);
    if (it == by_id_.end()) {
      acks_orphaned_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    grouped[it->second].acks.push_back(acks[i]);
  }
  for (auto& [slot, group] : grouped) {
    Session* s = sessions_[slot].get();
    if (s == nullptr || s->doomed) {
      acks_orphaned_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    for (std::size_t base = 0; base < group.acks.size();
         base += kMaxAckEntries) {
      CommitAcks chunk;
      const std::size_t end =
          std::min(group.acks.size(), base + kMaxAckEntries);
      chunk.acks.assign(group.acks.begin() + static_cast<std::ptrdiff_t>(base),
                        group.acks.begin() + static_cast<std::ptrdiff_t>(end));
      const std::size_t count = chunk.acks.size();
      if (queue_bytes(*s,
                      net::encode_frame(0, net::Channel::kIngress,
                                        BytesView(encode_commit_acks(chunk))),
                      /*droppable=*/true)) {
        acks_sent_.fetch_add(count, std::memory_order_relaxed);
      } else {
        acks_dropped_.fetch_add(count, std::memory_order_relaxed);
      }
    }
    if (s->doomed) close_session(slot);
  }
}

bool IngressServer::queue_bytes(Session& s, Bytes bytes, bool droppable) {
  if (s.out.size() >= opts_.max_out_frames) {
    if (!droppable) s.doomed = true;
    return false;
  }
  s.out.push_back(std::move(bytes));
  flush_out(s);
  return true;
}

void IngressServer::flush_out(Session& s) {
  while (!s.out.empty()) {
    const Bytes& front = s.out.front();
    std::size_t sent = 0;
    const sock::Io rc = sock::send_some(s.fd, front.data() + s.out_offset,
                                        front.size() - s.out_offset, sent);
    if (rc == sock::Io::kClosed) {
      s.doomed = true;
      return;
    }
    s.out_offset += sent;
    if (s.out_offset == front.size()) {
      s.out.pop_front();
      s.out_offset = 0;
      continue;
    }
    if (rc == sock::Io::kWouldBlock) return;  // poll for POLLOUT
  }
}

void IngressServer::close_session(std::size_t idx) {
  Session* s = sessions_[idx].get();
  if (s == nullptr) return;
  if (s->id != 0) by_id_.erase(s->id);
  sock::close_fd(s->fd);
  sessions_[idx].reset();
  --live_sessions_;
  sessions_closed_.fetch_add(1, std::memory_order_relaxed);
}

metrics::Counters IngressServer::counters() const {
  const std::uint64_t opened =
      sessions_opened_.load(std::memory_order_relaxed);
  const std::uint64_t closed =
      sessions_closed_.load(std::memory_order_relaxed);
  metrics::Counters c;
  c.emplace_back("sessions_opened", opened);
  c.emplace_back("sessions_closed", closed);
  c.emplace_back("sessions_open", opened - closed);
  c.emplace_back("sessions_rejected_full",
                 sessions_rejected_full_.load(std::memory_order_relaxed));
  c.emplace_back("handshake_failures",
                 handshake_failures_.load(std::memory_order_relaxed));
  c.emplace_back("protocol_errors",
                 protocol_errors_.load(std::memory_order_relaxed));
  c.emplace_back("batches_rx", batches_rx_.load(std::memory_order_relaxed));
  c.emplace_back("txs_rx", txs_rx_.load(std::memory_order_relaxed));
  c.emplace_back("busy_hook_rejects",
                 busy_hook_rejects_.load(std::memory_order_relaxed));
  c.emplace_back("acks_enqueued",
                 acks_enqueued_.load(std::memory_order_relaxed));
  c.emplace_back("acks_sent", acks_sent_.load(std::memory_order_relaxed));
  c.emplace_back("acks_dropped",
                 acks_dropped_.load(std::memory_order_relaxed));
  c.emplace_back("acks_orphaned",
                 acks_orphaned_.load(std::memory_order_relaxed));
  c.emplace_back("ack_p50_us", ack_latency_.percentile_us(0.50));
  c.emplace_back("ack_p99_us", ack_latency_.percentile_us(0.99));
  return c;
}

}  // namespace dr::ingress
