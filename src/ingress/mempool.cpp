#include "ingress/mempool.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace dr::ingress {

crypto::Digest tx_digest(const txpool::Transaction& tx) {
  // Codec-boundary hash (sanctioned in tools/daglint/sha256_allowlist.txt):
  // the tx identity must be recomputable from a decoded block alone, so it
  // covers exactly the replay-stable fields — id and payload, never the
  // server-stamped submit_time.
  ByteWriter w(8 + tx.payload.size());
  w.u64(tx.id);
  w.raw(tx.payload);
  return crypto::sha256(BytesView(w.bytes()));
}

ShardedMempool::ShardedMempool(MempoolOptions opts) : opts_(opts) {
  DR_ASSERT_MSG(opts_.shards >= 1, "ShardedMempool needs at least one shard");
  shards_.reserve(opts_.shards);
  for (std::uint32_t s = 0; s < opts_.shards; ++s) {
    shards_.push_back(std::make_unique<Shard>());
  }
  committed_per_shard_ =
      std::max<std::size_t>(1, opts_.committed_window / opts_.shards);
  const double total =
      static_cast<double>(opts_.shard_capacity) * opts_.shards;
  busy_threshold_ = static_cast<std::size_t>(total * opts_.busy_watermark);
  busy_threshold_ = std::max<std::size_t>(1, busy_threshold_);
}

std::uint32_t ShardedMempool::shard_of(const crypto::Digest& digest) const {
  std::uint64_t h = 0;
  std::memcpy(&h, digest.data(), sizeof(h));
  return static_cast<std::uint32_t>(h % shards_.size());
}

SubmitStatus ShardedMempool::submit(txpool::Transaction tx, TxOrigin origin) {
  if (tx.payload.size() > opts_.max_tx_bytes) {
    rejected_too_large_.fetch_add(1, std::memory_order_relaxed);
    return SubmitStatus::kTooLarge;
  }
  const crypto::Digest digest = tx_digest(tx);
  Shard& shard = *shards_[shard_of(digest)];
  std::lock_guard<std::mutex> lk(shard.mu);
  if (shard.committed.count(digest) != 0) {
    rejected_dup_committed_.fetch_add(1, std::memory_order_relaxed);
    return SubmitStatus::kDuplicateCommitted;
  }
  // Reconnect re-homing: the same logical tx resubmitted from a new session
  // keeps its place (and original submit_us, so latency stays end-to-end)
  // but acks now route to the live session instead of the dead one.
  auto rehome = [&origin](TxOrigin& stored) {
    if (origin.session_id != 0 && stored.client_id == origin.client_id &&
        stored.tx_id == origin.tx_id) {
      stored.session_id = origin.session_id;
      if (stored.submit_us == 0) stored.submit_us = origin.submit_us;
    }
  };
  if (auto it = shard.pending.find(digest); it != shard.pending.end()) {
    rehome(it->second.origin);
    rejected_dup_pending_.fetch_add(1, std::memory_order_relaxed);
    return SubmitStatus::kDuplicatePending;
  }
  if (auto it = shard.in_flight.find(digest); it != shard.in_flight.end()) {
    rehome(it->second);
    rejected_dup_pending_.fetch_add(1, std::memory_order_relaxed);
    return SubmitStatus::kDuplicatePending;
  }
  if (busy()) {
    rejected_busy_.fetch_add(1, std::memory_order_relaxed);
    return SubmitStatus::kBusy;
  }
  if (shard.pending.size() >= opts_.shard_capacity) {
    rejected_overflow_.fetch_add(1, std::memory_order_relaxed);
    return SubmitStatus::kShardFull;
  }
  shard.fifo.push_back(digest);
  shard.pending.emplace(digest, PendingTx{std::move(tx), origin});
  pending_count_.fetch_add(1, std::memory_order_relaxed);
  accepted_.fetch_add(1, std::memory_order_relaxed);
  return SubmitStatus::kAccepted;
}

std::vector<txpool::Transaction> ShardedMempool::drain(std::size_t max_txs) {
  std::vector<txpool::Transaction> out;
  if (max_txs == 0 || pending() == 0) return out;
  out.reserve(std::min(max_txs, pending()));
  // Round-robin across shards from a moving cursor so no shard starves when
  // blocks are smaller than the backlog.
  const auto nshards = static_cast<std::uint32_t>(shards_.size());
  const std::uint32_t start =
      drain_cursor_.fetch_add(1, std::memory_order_relaxed) % nshards;
  for (std::uint32_t i = 0; i < nshards && out.size() < max_txs; ++i) {
    Shard& shard = *shards_[(start + i) % nshards];
    std::lock_guard<std::mutex> lk(shard.mu);
    while (out.size() < max_txs && !shard.fifo.empty()) {
      const crypto::Digest digest = shard.fifo.front();
      shard.fifo.pop_front();
      auto it = shard.pending.find(digest);
      if (it == shard.pending.end()) continue;  // committed out from under us
      out.push_back(std::move(it->second.tx));
      shard.in_flight.emplace(digest, it->second.origin);
      shard.pending.erase(it);
      pending_count_.fetch_sub(1, std::memory_order_relaxed);
      in_flight_count_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  drained_.fetch_add(out.size(), std::memory_order_relaxed);
  return out;
}

std::optional<TxOrigin> ShardedMempool::mark_committed(
    const crypto::Digest& digest) {
  Shard& shard = *shards_[shard_of(digest)];
  std::lock_guard<std::mutex> lk(shard.mu);
  std::optional<TxOrigin> origin;
  if (auto it = shard.in_flight.find(digest); it != shard.in_flight.end()) {
    origin = it->second;
    shard.in_flight.erase(it);
    in_flight_count_.fetch_sub(1, std::memory_order_relaxed);
  } else if (auto p = shard.pending.find(digest); p != shard.pending.end()) {
    // Committed via a foreign node's block before this node proposed it;
    // the fifo entry goes stale and drain() skips it.
    origin = p->second.origin;
    shard.pending.erase(p);
    pending_count_.fetch_sub(1, std::memory_order_relaxed);
  }
  if (shard.committed.insert(digest).second) {
    shard.committed_ring.push_back(digest);
    if (shard.committed_ring.size() > committed_per_shard_) {
      shard.committed.erase(shard.committed_ring.front());
      shard.committed_ring.pop_front();
      window_evictions_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  if (origin.has_value() && origin->session_id != 0) {
    committed_with_origin_.fetch_add(1, std::memory_order_relaxed);
    return origin;
  }
  committed_foreign_.fetch_add(1, std::memory_order_relaxed);
  return std::nullopt;
}

void ShardedMempool::restore_in_flight(const txpool::Transaction& tx) {
  const crypto::Digest digest = tx_digest(tx);
  Shard& shard = *shards_[shard_of(digest)];
  std::lock_guard<std::mutex> lk(shard.mu);
  if (shard.committed.count(digest) != 0 ||
      shard.pending.count(digest) != 0 ||
      shard.in_flight.count(digest) != 0) {
    return;
  }
  shard.in_flight.emplace(digest, TxOrigin{});
  in_flight_count_.fetch_add(1, std::memory_order_relaxed);
  restored_in_flight_.fetch_add(1, std::memory_order_relaxed);
}

bool ShardedMempool::recently_committed(const crypto::Digest& digest) const {
  const Shard& shard = *shards_[shard_of(digest)];
  std::lock_guard<std::mutex> lk(shard.mu);
  return shard.committed.count(digest) != 0;
}

bool ShardedMempool::knows(const crypto::Digest& digest) const {
  const Shard& shard = *shards_[shard_of(digest)];
  std::lock_guard<std::mutex> lk(shard.mu);
  return shard.pending.count(digest) != 0 ||
         shard.in_flight.count(digest) != 0;
}

MempoolStats ShardedMempool::stats() const {
  MempoolStats s;
  s.accepted = accepted_.load(std::memory_order_relaxed);
  s.rejected_busy = rejected_busy_.load(std::memory_order_relaxed);
  s.rejected_dup_pending =
      rejected_dup_pending_.load(std::memory_order_relaxed);
  s.rejected_dup_committed =
      rejected_dup_committed_.load(std::memory_order_relaxed);
  s.rejected_overflow = rejected_overflow_.load(std::memory_order_relaxed);
  s.rejected_too_large = rejected_too_large_.load(std::memory_order_relaxed);
  s.drained = drained_.load(std::memory_order_relaxed);
  s.committed_with_origin =
      committed_with_origin_.load(std::memory_order_relaxed);
  s.committed_foreign = committed_foreign_.load(std::memory_order_relaxed);
  s.window_evictions = window_evictions_.load(std::memory_order_relaxed);
  s.restored_in_flight = restored_in_flight_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace dr::ingress
