// Distributed (f+1)-of-n threshold coin over the simulated network.
// choose_leader(w) broadcasts this process's share for instance w; once f+1
// valid shares for w are collected (from broadcasts of any processes), the
// secret is Lagrange-reconstructed and hashed into a leader id.
//
// Properties (matching §2 of the paper):
//  * Agreement  — all correct processes reconstruct the same secret: shares
//    of a degree-f polynomial determine it uniquely, and invalid shares are
//    rejected by the verifier.
//  * Termination — once f+1 correct processes call choose_leader(w), f+1
//    valid shares reach everyone (reliable links), so every call returns.
//  * Unpredictability — below f+1 revealed shares the secret is information-
//    theoretically undetermined.
//  * Fairness — the secret is PRF-uniform; leader = H(secret, w) mod n.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "coin/coin.hpp"
#include "coin/dealer.hpp"
#include "net/bus.hpp"

namespace dr::coin {

class ThresholdCoin final : public Coin {
 public:
  /// If broadcast_shares is false, choose_leader does not send the share on
  /// the coin channel — the caller must disseminate shares out-of-band
  /// (piggybacked on DAG vertices, paper footnote 1) via ingest_share.
  ThresholdCoin(net::Bus& net, ProcessCoinKey key, bool broadcast_shares = true);

  void choose_leader(Wave w, std::function<void(ProcessId)> cb) override;

  /// True once this process has reconstructed instance w.
  bool has_value(Wave w) const;
  std::optional<ProcessId> peek(Wave w) const;

  /// Feeds a share that arrived out-of-band (e.g. piggybacked on a DAG
  /// vertex instead of the coin channel). Same validation path.
  void ingest_share(ProcessId from, Wave w, std::uint64_t y);

  /// Share for instance w to embed in an outgoing vertex (piggyback mode).
  std::uint64_t share_to_embed(Wave w) const { return key_.my_share(w).y; }

 private:
  struct Instance {
    std::map<std::uint64_t, std::uint64_t> shares;  // x -> y, valid only
    std::optional<ProcessId> leader;
    std::vector<std::function<void(ProcessId)>> waiting;
    bool share_sent = false;
  };

  void on_message(ProcessId from, BytesView payload);
  void try_reconstruct(Wave w, Instance& inst);

  net::Bus& net_;
  ProcessCoinKey key_;
  bool broadcast_shares_;
  std::map<Wave, Instance> instances_;
};

}  // namespace dr::coin
