// Trusted-dealer setup for the threshold coin.
//
// Substitution note (see DESIGN.md §3): the paper instantiates the coin with
// an (f+1)-of-n threshold signature scheme (e.g. [42]) under a trusted PKI.
// We reproduce the same share structure with Shamir sharing over Field61:
// for every instance w the dealer defines a fresh degree-f polynomial whose
// free coefficient is the instance secret; process i's "signature share" is
// the evaluation at x = i+1. Any f+1 valid shares reconstruct the secret by
// Lagrange interpolation; f or fewer reveal nothing (information-theoretic,
// which is *stronger* than the computational guarantee of real threshold
// signatures). Share verification — in reality a pairing/ZK check against
// the PKI — is simulated by recomputation against dealer ground truth,
// exposed through the narrow ShareVerifier interface below.
#pragma once

#include <cstdint>
#include <memory>

#include "common/types.hpp"
#include "crypto/field61.hpp"
#include "crypto/sha256.hpp"
#include "crypto/shamir.hpp"

namespace dr::coin {

/// Domain-separation tweak XORed into a deployment's master seed to derive
/// the dealer seed. Shared by the simulator harness and the real runtime so
/// that independent OS processes configured with the same master seed (the
/// "trusted setup" of a TCP cluster) derive identical coin shares.
inline constexpr std::uint64_t kDealerSeedTweak = 0xDEA1ULL;

/// Public share-verification capability. This is the only dealer power that
/// protocol code (including Byzantine components) may hold: it corresponds
/// to the public verification key of a threshold signature scheme.
class ShareVerifier {
 public:
  virtual ~ShareVerifier() = default;
  virtual bool verify_share(Wave w, std::uint64_t x, std::uint64_t y) const = 0;
};

class CoinDealer final : public ShareVerifier {
 public:
  CoinDealer(std::uint64_t master_seed, Committee committee)
      : master_(master_seed), committee_(committee) {}

  const Committee& committee() const { return committee_; }

  /// Share threshold: f + 1, as in the paper.
  std::uint32_t threshold() const { return committee_.small_quorum(); }

  /// Process pid's share for instance w — its "private key" output.
  /// Protocol components receive it through ShareDealer::my_share only.
  crypto::ShamirShare share_for(Wave w, ProcessId pid) const {
    return crypto::ShamirShare{pid + 1, poly_eval(w, pid + 1)};
  }

  bool verify_share(Wave w, std::uint64_t x, std::uint64_t y) const override {
    if (x == 0 || x > committee_.n) return false;
    return poly_eval(w, x) == y;
  }

  /// Instance secret (= polynomial at 0). TEST/ORACLE ONLY: protocol code
  /// never calls this; doing so would break the unpredictability model.
  std::uint64_t secret(Wave w) const { return coeff(w, 0); }

 private:
  /// j-th coefficient of instance w's degree-f polynomial, derived by PRF so
  /// the dealer is stateless across unbounded instances.
  std::uint64_t coeff(Wave w, std::uint32_t j) const {
    std::uint8_t buf[20];
    for (int i = 0; i < 8; ++i) buf[i] = static_cast<std::uint8_t>(master_ >> (8 * i));
    for (int i = 0; i < 8; ++i) buf[8 + i] = static_cast<std::uint8_t>(w >> (8 * i));
    for (int i = 0; i < 4; ++i) buf[16 + i] = static_cast<std::uint8_t>(j >> (8 * i));
    const crypto::Digest d =
        crypto::sha256_tagged("dagrider/coin-coeff", {BytesView{buf, 20}});
    return crypto::Field61::reduce(crypto::digest_prefix_u64(d));
  }

  std::uint64_t poly_eval(Wave w, std::uint64_t x) const {
    // Degree f polynomial, Horner form.
    const std::uint32_t deg = committee_.f;
    std::uint64_t y = 0;
    for (std::uint32_t j = deg + 1; j-- > 0;) {
      y = crypto::Field61::add(crypto::Field61::mul(y, x), coeff(w, j));
    }
    return y;
  }

  std::uint64_t master_;
  Committee committee_;
};

/// The slice of dealer power handed to one process: its own shares plus the
/// public verifier. Mirrors "private key share + public key" of a real
/// threshold setup.
class ProcessCoinKey {
 public:
  ProcessCoinKey(const CoinDealer* dealer, ProcessId pid)
      : dealer_(dealer), pid_(pid) {}

  ProcessId pid() const { return pid_; }
  crypto::ShamirShare my_share(Wave w) const { return dealer_->share_for(w, pid_); }
  const ShareVerifier& verifier() const { return *dealer_; }
  std::uint32_t threshold() const { return dealer_->threshold(); }

 private:
  const CoinDealer* dealer_;
  ProcessId pid_;
};

}  // namespace dr::coin
