#include "coin/threshold_coin.hpp"

#include "common/bytes.hpp"

namespace dr::coin {

ThresholdCoin::ThresholdCoin(net::Bus& net, ProcessCoinKey key,
                             bool broadcast_shares)
    : net_(net), key_(key), broadcast_shares_(broadcast_shares) {
  net_.subscribe(key_.pid(), net::Channel::kCoin,
                 [this](ProcessId from, const net::Payload& payload) {
                   on_message(from, payload.view());
                 });
}

void ThresholdCoin::choose_leader(Wave w, std::function<void(ProcessId)> cb) {
  Instance& inst = instances_[w];
  if (inst.leader.has_value()) {
    cb(*inst.leader);
    return;
  }
  inst.waiting.push_back(std::move(cb));
  if (!inst.share_sent && broadcast_shares_) {
    inst.share_sent = true;
    const crypto::ShamirShare share = key_.my_share(w);
    ByteWriter msg(16);
    msg.u64(w);
    msg.u64(share.y);
    net_.broadcast(key_.pid(), net::Channel::kCoin, std::move(msg).take());
    // Our own share also arrives via the broadcast self-delivery, so no
    // local insertion is needed here.
  }
}

void ThresholdCoin::on_message(ProcessId from, BytesView payload) {
  ByteReader in(payload);
  const Wave w = in.u64();
  const std::uint64_t y = in.u64();
  if (!in.done()) return;  // malformed — drop
  ingest_share(from, w, y);
}

void ThresholdCoin::ingest_share(ProcessId from, Wave w, std::uint64_t y) {
  const std::uint64_t x = from + 1;
  if (!key_.verifier().verify_share(w, x, y)) return;  // Byzantine garbage
  Instance& inst = instances_[w];
  if (inst.leader.has_value()) return;
  inst.shares.emplace(x, y);
  try_reconstruct(w, inst);
}

void ThresholdCoin::try_reconstruct(Wave w, Instance& inst) {
  if (inst.shares.size() < key_.threshold()) return;
  std::vector<crypto::ShamirShare> pts;
  pts.reserve(key_.threshold());
  for (const auto& [x, y] : inst.shares) {
    pts.push_back(crypto::ShamirShare{x, y});
    if (pts.size() == key_.threshold()) break;
  }
  const std::uint64_t secret = crypto::Shamir::reconstruct(pts);
  inst.leader = leader_from_secret(secret, w, net_.n());
  auto waiting = std::move(inst.waiting);
  inst.waiting.clear();
  for (auto& cb : waiting) cb(*inst.leader);
}

bool ThresholdCoin::has_value(Wave w) const {
  auto it = instances_.find(w);
  return it != instances_.end() && it->second.leader.has_value();
}

std::optional<ProcessId> ThresholdCoin::peek(Wave w) const {
  auto it = instances_.find(w);
  if (it == instances_.end()) return std::nullopt;
  return it->second.leader;
}

}  // namespace dr::coin
