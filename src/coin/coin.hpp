// Global perfect coin abstraction (§2 of the paper): per wave w,
// choose_leader(w) returns the same uniformly random process at every
// correct process, and the value is unpredictable until f+1 processes ask.
#pragma once

#include <cstdint>
#include <functional>

#include "common/types.hpp"
#include "crypto/sha256.hpp"

namespace dr::coin {

/// Asynchronous coin interface. A threshold implementation cannot answer
/// synchronously (it must first gather f+1 shares), so the result arrives
/// through a callback; implementations must invoke callbacks for the same
/// wave with the same leader at every correct process (Agreement), and must
/// eventually answer once f+1 correct processes have asked (Termination).
class Coin {
 public:
  virtual ~Coin() = default;
  virtual void choose_leader(Wave w, std::function<void(ProcessId)> cb) = 0;
};

/// Maps a reconstructed coin secret to a leader in [0, n).
inline ProcessId leader_from_secret(std::uint64_t secret, Wave w, std::uint32_t n) {
  std::uint8_t buf[16];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<std::uint8_t>(secret >> (8 * i));
  for (int i = 0; i < 8; ++i) buf[8 + i] = static_cast<std::uint8_t>(w >> (8 * i));
  const crypto::Digest d = crypto::sha256_tagged("dagrider/leader", {BytesView{buf, 16}});
  return static_cast<ProcessId>(crypto::digest_prefix_u64(d) % n);
}

/// Oracle coin: all instances constructed with the same seed agree on a
/// hash-derived leader and answer immediately. Models the *perfect coin
/// oracle* for unit tests and for experiments that isolate the ordering
/// layer; unpredictability holds because the adversarial schedulers never
/// read it (enforced by construction — DelayModel has no access).
class LocalCoin final : public Coin {
 public:
  LocalCoin(std::uint64_t seed, std::uint32_t n) : seed_(seed), n_(n) {}

  void choose_leader(Wave w, std::function<void(ProcessId)> cb) override {
    cb(leader_for(w));
  }

  /// Deterministic leader, exposed so tests/adversaries-with-hindsight can
  /// inspect the schedule after the fact.
  ProcessId leader_for(Wave w) const {
    std::uint8_t buf[8];
    for (int i = 0; i < 8; ++i) buf[i] = static_cast<std::uint8_t>(seed_ >> (8 * i));
    const crypto::Digest d =
        crypto::sha256_tagged("dagrider/localcoin", {BytesView{buf, 8}});
    return leader_from_secret(crypto::digest_prefix_u64(d), w, n_);
  }

 private:
  std::uint64_t seed_;
  std::uint32_t n_;
};

}  // namespace dr::coin
