#include "dag/vertex.hpp"

namespace dr::dag {

Bytes Vertex::serialize() const {
  ByteWriter w(wire_size());
  w.blob(block);
  w.u32(static_cast<std::uint32_t>(strong_edges.size()));
  for (ProcessId p : strong_edges) w.u32(p);
  w.u32(static_cast<std::uint32_t>(weak_edges.size()));
  for (const VertexId& id : weak_edges) {
    w.u32(id.source);
    w.u64(id.round);
  }
  w.u8(has_coin_share ? 1 : 0);
  if (has_coin_share) w.u64(coin_share);
  return std::move(w).take();
}

Expected<Vertex> Vertex::deserialize(BytesView data) {
  ByteReader in(data);
  Vertex v;
  v.block = in.blob();
  const std::uint32_t n_strong = in.u32();
  if (!in.ok() || n_strong > 4096) {
    return Expected<Vertex>::failure("bad strong edge count");
  }
  v.strong_edges.reserve(n_strong);
  for (std::uint32_t i = 0; i < n_strong; ++i) v.strong_edges.push_back(in.u32());
  const std::uint32_t n_weak = in.u32();
  if (!in.ok() || n_weak > 1u << 20) {
    return Expected<Vertex>::failure("bad weak edge count");
  }
  v.weak_edges.reserve(n_weak);
  for (std::uint32_t i = 0; i < n_weak; ++i) {
    VertexId id;
    id.source = in.u32();
    id.round = in.u64();
    v.weak_edges.push_back(id);
  }
  v.has_coin_share = in.u8() != 0;
  if (v.has_coin_share) v.coin_share = in.u64();
  if (!in.done()) return Expected<Vertex>::failure("trailing bytes in vertex");
  return v;
}

crypto::Digest Vertex::block_digest() const {
  if (!wire.empty()) {
    // Wire layout opens with [u32 block_len][block bytes ...]; a window over
    // the block shares the wire buffer and memoizes its digest there.
    ByteReader in(wire.view());
    const std::uint32_t len = in.u32();
    if (in.ok() && in.remaining() >= len) return wire.window(4, len).digest();
  }
  return crypto::sha256(block);
}

net::Payload Vertex::wire_payload() const {
  if (!wire.empty()) return wire;
  return net::Payload(serialize());
}

std::size_t Vertex::wire_size() const {
  return 4 + block.size() + 4 + 4 * strong_edges.size() + 4 +
         12 * weak_edges.size() + 1 + (has_coin_share ? 8 : 0);
}

}  // namespace dr::dag
