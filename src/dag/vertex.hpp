// Vertex struct of Algorithm 1. A vertex is identified by (source, round) —
// reliable broadcast Integrity guarantees at most one vertex per pair, so
// edges reference vertices by id rather than by hash.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/bytes.hpp"
#include "common/expected.hpp"
#include "common/types.hpp"
#include "crypto/sha256.hpp"
#include "net/payload.hpp"

namespace dr::dag {

struct VertexId {
  ProcessId source = kInvalidProcess;
  Round round = 0;

  bool operator==(const VertexId&) const = default;
  bool operator<(const VertexId& o) const {
    return round != o.round ? round < o.round : source < o.source;
  }
};

struct VertexIdHash {
  std::size_t operator()(const VertexId& id) const {
    return std::hash<std::uint64_t>{}(
        (static_cast<std::uint64_t>(id.source) << 40) ^ id.round);
  }
};

struct Vertex {
  Round round = 0;          ///< set from r_deliver metadata, not the payload
  ProcessId source = 0;     ///< set from r_deliver metadata, not the payload
  Bytes block;              ///< block of transactions from the BAB layer
  /// Strong edges: sources of referenced vertices in round-1 (the round is
  /// implicit, which is also how the paper compresses references).
  std::vector<ProcessId> strong_edges;
  /// Weak edges: ids of referenced vertices in rounds < round-1.
  std::vector<VertexId> weak_edges;
  /// Optional piggybacked threshold-coin share (footnote 1 of the paper):
  /// a vertex opening round 4w+1 may carry its sender's share for wave w.
  std::uint64_t coin_share = 0;
  bool has_coin_share = false;
  /// The exact bytes this vertex travelled as (r_delivered payload or the
  /// encoding produced at propose time). Empty only for vertices built field
  /// by field in tests. The codec is bijective, so when set these bytes equal
  /// serialize() — keeping them lets storage, catch-up, and digest consumers
  /// reuse the buffer instead of re-encoding or re-hashing.
  net::Payload wire;

  VertexId id() const { return VertexId{source, round}; }

  /// Digest of the block bytes. When `wire` is set the digest is taken over
  /// a window into that buffer (no copy); otherwise the block is hashed
  /// directly. This is the single place block digests are computed.
  crypto::Digest block_digest() const;

  /// Serialized form of this vertex, reusing `wire` when available so the
  /// common path performs no encoding work at all.
  net::Payload wire_payload() const;

  /// Serialized form excludes source/round: those travel as reliable
  /// broadcast metadata and are stamped on delivery (Alg. 2 lines 23-24),
  /// so a Byzantine sender cannot claim someone else's slot.
  Bytes serialize() const;
  static Expected<Vertex> deserialize(BytesView data);

  /// Wire size in bytes of the serialized vertex (for accounting math).
  std::size_t wire_size() const;
};

}  // namespace dr::dag
