// Local DAG view (the paper's DAG_i[]). Stores vertices by (round, source),
// maintains per-vertex ancestor bitsets for O(1) path / strong_path queries
// (Alg. 1 lines 1-4), and answers the causal-history traversals behind
// order_vertices (Alg. 3 line 54).
//
// Invariant (Claim 1 by construction): a vertex is only inserted after all
// vertices it references, so ancestor bitsets can be completed at insertion
// time and never change afterwards.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "common/types.hpp"
#include "dag/bitset.hpp"
#include "dag/vertex.hpp"

namespace dr::dag {

class Dag {
 public:
  /// Builds the DAG with the hardcoded genesis round 0 of 2f+1 vertices
  /// from sources 0..2f (Alg. 1 initialization).
  explicit Dag(Committee committee);

  const Committee& committee() const { return committee_; }

  bool contains(VertexId id) const;
  const Vertex* get(VertexId id) const;

  /// Number of vertices known in round r.
  std::uint32_t round_size(Round r) const;
  /// Sources present in round r, ascending.
  std::vector<ProcessId> round_sources(Round r) const;
  /// Highest round with at least one vertex.
  Round max_round() const { return rounds_.empty() ? 0 : rounds_.size() - 1; }
  std::uint64_t vertex_count() const { return vertex_count_; }

  /// Inserts v. Precondition: all strong/weak predecessors are present
  /// (the DagBuilder's buffer gates on this, Alg. 2 line 7) — except
  /// predecessors in rounds below compacted_floor(), which WAL restore and
  /// catch-up sync may reference after GC freed their slots — and no vertex
  /// with the same id exists (reliable broadcast Integrity).
  void insert(Vertex v);

  /// path(v, u): directed path using strong and weak edges (Alg. 1 line 1).
  bool path(VertexId from, VertexId to) const;
  /// strong_path(v, u): path using only strong edges (Alg. 1 line 3).
  bool strong_path(VertexId from, VertexId to) const;

  /// Number of vertices in round r with a strong path to `to` — the
  /// commit-rule quorum count (Alg. 3 line 36).
  std::uint32_t strong_support_in_round(Round r, VertexId to) const;

  /// Garbage collection (an extension; the paper itself never prunes, its
  /// production descendants — Narwhal/Bullshark — do exactly this): frees
  /// the blocks, edge lists, and ancestor bitsets of every vertex in rounds
  /// < floor, and truncates retained vertices' bitsets below the floor.
  /// Contract: the caller (the ordering layer) compacts only rounds whose
  /// delivered vertices it no longer needs; afterwards path/strong_path
  /// with a target below the floor return false, and causal-history
  /// traversals must prune at delivered vertices (they already do).
  void compact_below(Round floor);
  Round compacted_floor() const { return compacted_floor_; }
  /// 64-bit words currently allocated by all ancestor bitsets — the memory
  /// introspection hook used by the GC tests and benches.
  std::size_t allocated_bitset_words() const;

  /// ORs {id} ∪ ancestors(id) into `out`, using the slot scheme
  /// slot = round * n + source. Used by weak-edge construction to track the
  /// reachable set of a vertex under construction.
  void merge_closure_into(VertexId id, Bitset& out) const;

  /// All vertices u with path(from, u) (including `from` itself) for which
  /// skip(u) is false, pruned at skipped vertices: the traversal does not
  /// descend below a skipped vertex. Sound for delivery because the
  /// delivered set is causally closed (ancestors of delivered vertices are
  /// delivered). Result is unordered; callers sort deterministically.
  std::vector<VertexId> causal_history(
      VertexId from, const std::function<bool(VertexId)>& skip) const;

 private:
  struct Stored {
    Vertex vertex;
    Bitset ancestors;         ///< all-edge ancestors (strong + weak), incl. parents
    Bitset strong_ancestors;  ///< strong-edge-only ancestors
  };

  std::size_t slot(VertexId id) const {
    return static_cast<std::size_t>(id.round) * committee_.n + id.source;
  }
  const Stored* stored(VertexId id) const;

  Committee committee_;
  /// rounds_[r][source] — the per-round vertex slots of DAG_i[].
  std::vector<std::vector<std::optional<Stored>>> rounds_;
  std::uint64_t vertex_count_ = 0;
  Round compacted_floor_ = 0;
};

}  // namespace dr::dag
