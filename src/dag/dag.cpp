#include "dag/dag.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "core/contract.hpp"

namespace dr::dag {

Dag::Dag(Committee committee) : committee_(committee) {
  DR_ASSERT_MSG(committee_.valid(), "Dag: committee must satisfy n > 3f");
  rounds_.emplace_back(committee_.n);
  // Hardcoded genesis: 2f+1 empty vertices from sources 0..2f (Alg. 1).
  for (ProcessId p = 0; p < committee_.quorum(); ++p) {
    Stored s;
    s.vertex.round = 0;
    s.vertex.source = p;
    rounds_[0][p] = std::move(s);
    ++vertex_count_;
  }
}

const Dag::Stored* Dag::stored(VertexId id) const {
  if (id.round >= rounds_.size() || id.source >= committee_.n) return nullptr;
  const std::optional<Stored>& slot = rounds_[id.round][id.source];
  return slot.has_value() ? &*slot : nullptr;
}

bool Dag::contains(VertexId id) const { return stored(id) != nullptr; }

const Vertex* Dag::get(VertexId id) const {
  const Stored* s = stored(id);
  return s ? &s->vertex : nullptr;
}

std::uint32_t Dag::round_size(Round r) const {
  if (r >= rounds_.size()) return 0;
  std::uint32_t c = 0;
  for (const auto& slot : rounds_[r]) c += slot.has_value() ? 1u : 0u;
  return c;
}

std::vector<ProcessId> Dag::round_sources(Round r) const {
  std::vector<ProcessId> out;
  if (r >= rounds_.size()) return out;
  for (ProcessId p = 0; p < committee_.n; ++p) {
    if (rounds_[r][p].has_value()) out.push_back(p);
  }
  return out;
}

void Dag::insert(Vertex v) {
  DR_ASSERT_MSG(v.source < committee_.n, "vertex source out of range");
  DR_ASSERT_MSG(v.round >= 1, "only genesis lives in round 0");
  // Alg. 2 line 25 / Lemma 4: every non-genesis vertex carries >= 2f+1
  // strong edges, so any two committed leaders' strong supports intersect
  // in a correct process. A forged vertex with only 2f edges reaching this
  // point means the validate() gate upstream was bypassed.
  DR_REQUIRE(v.strong_edges.size() >= committee_.quorum(),
             "vertex inserted with fewer than 2f+1 strong edges");
  while (rounds_.size() <= v.round) rounds_.emplace_back(committee_.n);
  DR_ASSERT_MSG(!rounds_[v.round][v.source].has_value(),
                "duplicate vertex insert violates RBC Integrity");

  Stored s;
  // Complete the transitive closure from the (already complete) parents.
  // A parent may legitimately be absent only when its round lies below the
  // compacted floor: a WAL-restored or peer-synced vertex at the floor
  // references parents whose slots were freed by GC. Skipping their bitset
  // contribution is exact, not approximate — compact_below truncates all
  // reachability bits below the floor word anyway, and path/strong_path
  // answer false for targets in the compacted region by contract.
  for (ProcessId p : v.strong_edges) {
    const VertexId pid{p, v.round - 1};
    const Stored* parent = stored(pid);
    if (parent == nullptr) {
      DR_ASSERT_MSG(pid.round < compacted_floor_,
                    "strong predecessor missing at insert");
      continue;
    }
    s.ancestors.set(slot(pid));
    s.ancestors.or_with(parent->ancestors);
    s.strong_ancestors.set(slot(pid));
    s.strong_ancestors.or_with(parent->strong_ancestors);
  }
  for (const VertexId& wid : v.weak_edges) {
    const Stored* parent = stored(wid);
    if (parent == nullptr) {
      DR_ASSERT_MSG(wid.round < compacted_floor_,
                    "weak predecessor missing at insert");
      continue;
    }
    s.ancestors.set(slot(wid));
    s.ancestors.or_with(parent->ancestors);
  }
  s.vertex = std::move(v);
  const VertexId id = s.vertex.id();
  rounds_[id.round][id.source] = std::move(s);
  ++vertex_count_;
}

bool Dag::path(VertexId from, VertexId to) const {
  if (to.round < compacted_floor_) return false;  // compacted region
  if (from == to) return contains(from);
  const Stored* s = stored(from);
  return s != nullptr && contains(to) && s->ancestors.test(slot(to));
}

bool Dag::strong_path(VertexId from, VertexId to) const {
  if (to.round < compacted_floor_) return false;  // compacted region
  if (from == to) return contains(from);
  const Stored* s = stored(from);
  return s != nullptr && contains(to) && s->strong_ancestors.test(slot(to));
}

void Dag::compact_below(Round floor) {
  if (floor <= compacted_floor_) return;
  for (Round r = compacted_floor_; r < floor && r < rounds_.size(); ++r) {
    for (auto& slot_opt : rounds_[r]) {
      if (!slot_opt.has_value()) continue;
      Stored& s = *slot_opt;
      Bytes{}.swap(s.vertex.block);
      std::vector<ProcessId>{}.swap(s.vertex.strong_edges);
      std::vector<VertexId>{}.swap(s.vertex.weak_edges);
      s.ancestors = Bitset{};
      s.strong_ancestors = Bitset{};
    }
  }
  // Retained vertices no longer need reachability bits into the compacted
  // region. Truncate conservatively at the word containing the floor slot.
  const std::size_t word =
      (static_cast<std::size_t>(floor) * committee_.n) / 64;
  for (Round r = floor; r < rounds_.size(); ++r) {
    for (auto& slot_opt : rounds_[r]) {
      if (!slot_opt.has_value()) continue;
      slot_opt->ancestors.truncate_below_word(word);
      slot_opt->strong_ancestors.truncate_below_word(word);
    }
  }
  compacted_floor_ = floor;
}

std::size_t Dag::allocated_bitset_words() const {
  std::size_t words = 0;
  for (const auto& round : rounds_) {
    for (const auto& slot_opt : round) {
      if (!slot_opt.has_value()) continue;
      words += slot_opt->ancestors.allocated_words() +
               slot_opt->strong_ancestors.allocated_words();
    }
  }
  return words;
}

std::uint32_t Dag::strong_support_in_round(Round r, VertexId to) const {
  if (r >= rounds_.size()) return 0;
  std::uint32_t c = 0;
  for (const auto& slot_opt : rounds_[r]) {
    if (slot_opt.has_value() && slot_opt->strong_ancestors.test(slot(to))) ++c;
  }
  return c;
}

void Dag::merge_closure_into(VertexId id, Bitset& out) const {
  const Stored* s = stored(id);
  DR_ASSERT_MSG(s != nullptr, "merge_closure_into: vertex missing");
  out.set(slot(id));
  out.or_with(s->ancestors);
}

std::vector<VertexId> Dag::causal_history(
    VertexId from, const std::function<bool(VertexId)>& skip) const {
  std::vector<VertexId> out;
  if (!contains(from) || skip(from)) return out;
  std::vector<VertexId> stack{from};
  // Visited tracking uses a local bitset keyed by the same slot scheme.
  Bitset visited;
  visited.set(slot(from));
  while (!stack.empty()) {
    const VertexId id = stack.back();
    stack.pop_back();
    out.push_back(id);
    const Vertex& v = stored(id)->vertex;
    auto consider = [&](VertexId next) {
      if (visited.test(slot(next))) return;
      visited.set(slot(next));
      if (!contains(next) || skip(next)) return;
      stack.push_back(next);
    };
    if (id.round >= 1) {
      for (ProcessId p : v.strong_edges) consider(VertexId{p, id.round - 1});
    }
    for (const VertexId& wid : v.weak_edges) consider(wid);
  }
  return out;
}

}  // namespace dr::dag
