#include "dag/builder.hpp"

#include <algorithm>
#include <unordered_set>

#include "common/assert.hpp"
#include "common/log.hpp"

namespace dr::dag {

DagBuilder::DagBuilder(Committee committee, ProcessId pid,
                       rbc::ReliableBroadcast& rbc, BuilderOptions options)
    : committee_(committee),
      pid_(pid),
      rbc_(rbc),
      options_(options),
      dag_(committee),
      buffered_per_source_(committee.n, 0),
      last_round_from_(committee.n, 0) {
  DR_ASSERT(pid < committee.n);
  DR_ASSERT(options_.rounds_per_wave >= 1);
  rbc_.set_deliver([this](ProcessId source, Round r, net::Payload payload) {
    on_deliver(source, r, std::move(payload));
  });
}

void DagBuilder::enqueue_block(Bytes block) {
  blocks_to_propose_.push_back(std::move(block));
  if (phase_.live()) pump();  // a block can unblock round advancement
}

void DagBuilder::start() {
  DR_ASSERT_MSG(!phase_.live(), "DagBuilder::start called twice");
  phase_.start();
  if (round_ >= 1 || !restored_proposals_.empty()) {
    // Restarted from a WAL. A proposal at the recovered frontier may already
    // exist (logged pre-crash, re-sent below); remember that before the
    // drain so the frontier-participation step cannot double-propose.
    const bool proposed_at_frontier =
        dag_.contains(VertexId{pid_, round_}) ||
        restored_proposals_.count(round_) > 0;
    // Re-send logged proposals up to the frontier whose vertices never
    // completed their broadcast (crash between log/send and r_deliver).
    // Identical bytes — peers that already delivered them ignore the
    // replay; peers that did not get a second chance to.
    const Round resend_floor = std::max<Round>(1, gc_floor_);
    for (auto it = restored_proposals_.begin();
         it != restored_proposals_.end();) {
      if (it->first > round_) break;  // re-sent when advancement reaches it
      if (it->first >= resend_floor &&
          !dag_.contains(VertexId{pid_, it->first})) {
        rbc_.broadcast(it->first, Bytes(it->second));
        ++stats_.proposals_rebroadcast;
      }
      it = restored_proposals_.erase(it);
    }
    // Frontier participation: finish_restore advanced into round_ on the
    // strength of other processes' quorums without this process proposing
    // there. If the parent quorum is locally present and a block is
    // available, propose now — after a whole-cluster restart someone must
    // re-open the frontier round or every node waits on the others.
    if (round_ >= 1 && !proposed_at_frontier &&
        dag_.round_size(round_ - 1) >= committee_.quorum() &&
        (!blocks_to_propose_.empty() || options_.auto_blocks)) {
      propose(round_);
    }
  }
  pump();
}

void DagBuilder::begin_restore(Round floor) {
  phase_.begin_restore();
  DR_ASSERT_MSG(round_ == 0 && buffer_.empty(),
                "restore must precede all protocol activity");
  if (floor > 0) {
    gc_floor_ = floor;
    dag_.compact_below(floor);
    // Advancement resumes from the floor; finish_restore pushes the counter
    // up through every round the replayed records certify.
    round_ = floor;
  }
}

void DagBuilder::restore_deliver(ProcessId source, Round r, net::Payload payload) {
  DR_REQUIRE(phase_.restoring(),
             "restore_deliver outside begin/finish_restore");
  // Same gates as a live delivery (validate, dedup, parent gating); nothing
  // pumps until finish_restore because the builder is not live yet.
  on_deliver(source, r, std::move(payload));
}

void DagBuilder::restore_own_proposal(Round r, Bytes payload) {
  DR_REQUIRE(phase_.restoring(),
             "restore_own_proposal outside begin/finish_restore");
  if (r < 1) return;
  restored_proposals_[r] = std::move(payload);
}

void DagBuilder::finish_restore() {
  phase_.finish_restore();
  const std::uint64_t before = dag_.vertex_count();
  bool progress = true;
  while (progress) {
    progress = try_insert_buffered();
    // Advance through every round the restored DAG already certifies with a
    // 2f+1 quorum, re-firing wave boundaries so the ordering layer replays
    // its commit decisions deterministically — but broadcast nothing: these
    // rounds' proposals were sent in a previous life or were never ours.
    while (dag_.round_size(round_) >= committee_.quorum()) {
      if (round_ % options_.rounds_per_wave == 0 && round_ > 0 && wave_ready_) {
        wave_ready_(round_ / options_.rounds_per_wave);
      }
      round_ += 1;
      progress = true;
    }
  }
  stats_.restored_vertices += dag_.vertex_count() - before;
  DR_LOG_TRACE("p%u restored %llu vertices, resuming at round %llu", pid_,
               static_cast<unsigned long long>(dag_.vertex_count() - before),
               static_cast<unsigned long long>(round_));
}

void DagBuilder::sync_deliver(ProcessId source, Round r, net::Payload payload) {
  ++stats_.sync_deliveries;
  on_deliver(source, r, std::move(payload), /*solicited=*/true);
}

Round DagBuilder::lowest_missing_parent_round() const {
  const Round floor = std::max<Round>(1, gc_floor_);
  Round best = 0;
  const auto consider = [&](Round r) {
    if (r < floor) return;  // GC'd parents are tolerated by Dag::insert
    if (best == 0 || r < best) best = r;
  };
  for (const Vertex& v : buffer_) {
    if (v.round >= 1 && v.round - 1 >= gc_floor_) {
      for (ProcessId p : v.strong_edges) {
        if (!dag_.contains(VertexId{p, v.round - 1})) consider(v.round - 1);
      }
    }
    for (const VertexId& id : v.weak_edges) {
      if (!dag_.contains(id)) consider(id.round);
    }
  }
  return best;
}

bool DagBuilder::validate(const Vertex& v) const {
  if (v.source >= committee_.n || v.round < 1) return false;
  // Alg. 2 line 25: at least 2f+1 strong edges into the previous round.
  if (v.strong_edges.size() < committee_.quorum()) return false;
  std::unordered_set<ProcessId> seen;
  for (ProcessId p : v.strong_edges) {
    if (p >= committee_.n || !seen.insert(p).second) return false;
  }
  std::unordered_set<std::uint64_t> weak_seen;
  for (const VertexId& id : v.weak_edges) {
    // Weak edges target rounds r' with 1 <= r' < round-1 (Alg. 2 line 29).
    if (id.source >= committee_.n || id.round < 1 || id.round + 1 >= v.round) {
      return false;
    }
    const std::uint64_t key =
        (static_cast<std::uint64_t>(id.source) << 40) ^ id.round;
    if (!weak_seen.insert(key).second) return false;
  }
  return true;
}

void DagBuilder::on_deliver(ProcessId source, Round r, net::Payload payload,
                            bool solicited) {
  auto parsed = Vertex::deserialize(payload.view());
  if (!parsed) return;  // malformed Byzantine vertex — drop
  Vertex v = std::move(parsed).value();
  // Source and round come from the reliable broadcast metadata
  // (Alg. 2 lines 23-24); the payload cannot spoof them.
  v.source = source;
  v.round = r;
  // Keep the delivered bytes: storage, catch-up serving, and block-digest
  // windows all reuse this buffer instead of re-serializing (DESIGN.md §11).
  v.wire = std::move(payload);
  if (r < gc_floor_) {  // arrived after its round was collected
    ++stats_.gc_dropped_deliveries;
    return;
  }
  if (!validate(v)) return;
  if (dag_.contains(v.id())) return;  // duplicate (RBC Integrity backstop)
  if (r > highest_seen_round_) highest_seen_round_ = r;
  if (r > last_round_from_[source]) last_round_from_[source] = r;

  // Piggybacked coin share: the vertex opening round 4w+1 may carry its
  // sender's share for wave w (paper footnote 1).
  if (v.has_coin_share && coin_sink_ && v.round % options_.rounds_per_wave == 1) {
    const Wave w = (v.round - 1) / options_.rounds_per_wave;
    if (w >= 1) coin_sink_(source, w, v.coin_share);
  }

  // WAL replay and solicited catch-up vertices bypass the quota: a recovered
  // history can legitimately hold far more than the live skew bound per
  // source, and a lagging node's buffer is already saturated by far-future
  // live traffic — quota-rejecting the very vertices it asked for would
  // wedge catch-up permanently. (Accounting below still runs, so the pump
  // invariant keeps holding; solicited volume is bounded by the sync layer's
  // in-flight window.)
  if (!phase_.restoring() && !solicited &&
      buffered_per_source_[source] >= options_.buffer_quota_per_source) {
    ++stats_.quota_rejections;
    return;  // flooding defense: sender parked too many orphan vertices
  }
  buffered_per_source_[source] += 1;
  buffer_.push_back(std::move(v));
  if (phase_.live()) pump();
}

bool DagBuilder::try_insert_buffered() {
  bool inserted_any = false;
  for (std::size_t i = 0; i < buffer_.size();) {
    Vertex& v = buffer_[i];
    if (v.round < gc_floor_) {  // its round was collected while buffered
      ++stats_.gc_dropped_buffered;
      buffered_per_source_[v.source] -= 1;
      buffer_[i] = std::move(buffer_.back());
      buffer_.pop_back();
      continue;
    }
    // Paper processes buffered vertices with v.round <= r (Alg. 2 line 6).
    // Parents in rounds below the GC floor count as satisfied: their slots
    // were freed, and Dag::insert skips their (truncated-anyway) bits.
    bool ready = v.round <= round_;
    if (ready && v.round - 1 >= gc_floor_) {
      for (ProcessId p : v.strong_edges) {
        if (!dag_.contains(VertexId{p, v.round - 1})) {
          ready = false;
          break;
        }
      }
    }
    if (ready) {
      for (const VertexId& id : v.weak_edges) {
        if (id.round < gc_floor_) continue;  // compacted: satisfied
        if (!dag_.contains(id)) {
          ready = false;
          break;
        }
      }
    }
    if (!ready) {
      ++i;
      continue;
    }
    if (dag_.contains(v.id())) {  // duplicate raced into the DAG
      buffered_per_source_[v.source] -= 1;
      buffer_[i] = std::move(buffer_.back());
      buffer_.pop_back();
      continue;
    }
    Vertex taken = std::move(v);
    buffered_per_source_[taken.source] -= 1;
    buffer_[i] = std::move(buffer_.back());
    buffer_.pop_back();
    const VertexId id = taken.id();
    dag_.insert(std::move(taken));
    if (vertex_added_) vertex_added_(*dag_.get(id));
    inserted_any = true;
    // Restart the scan: the insert may unblock earlier-scanned vertices.
    i = 0;
  }
  return inserted_any;
}

bool DagBuilder::should_skip_proposal(Round next) const {
  if (options_.lag_skip_threshold == 0) return false;
  for (Round k = 0; k < options_.lag_skip_threshold; ++k) {
    if (dag_.round_size(next + k) < committee_.quorum()) return false;
  }
  return true;
}

bool DagBuilder::can_advance() const {
  if (dag_.round_size(round_) < committee_.quorum()) return false;
  // Advancing into a skipped round or a restored proposal needs no block.
  if (should_skip_proposal(round_ + 1)) return true;
  if (restored_proposals_.count(round_ + 1) > 0) return true;
  // create_new_vertex waits for a block (Alg. 2 line 17); auto_blocks
  // realizes the "infinitely many blocks" assumption.
  return !blocks_to_propose_.empty() || options_.auto_blocks;
}

void DagBuilder::pump() {
  if (pumping_) return;  // guard against reentrancy via callbacks
  pumping_ = true;
  bool progress = true;
  while (progress) {
    progress = try_insert_buffered();
    while (can_advance()) {
      advance_round();
      progress = true;
    }
  }
  pumping_ = false;
#if DR_CONTRACTS_ENABLED
  // Flooding-defense accounting: the per-source quota counters must agree
  // with the buffer's contents, or the quota either leaks (source starves
  // forever) or stops bounding memory (Byzantine flooding wins).
  std::size_t accounted = 0;
  for (std::size_t per_source : buffered_per_source_) accounted += per_source;
  DR_INVARIANT(accounted == buffer_.size(),
               "buffer quota accounting diverged from buffer contents");
#endif
}

void DagBuilder::advance_round() {
  if (round_ % options_.rounds_per_wave == 0 && round_ > 0 && wave_ready_) {
    wave_ready_(round_ / options_.rounds_per_wave);  // Alg. 2 line 12
  }
  // Round ordering (Alg. 2 lines 8-10): a correct process broadcasts exactly
  // one vertex per round and only after seeing 2f+1 vertices in the current
  // round; skipping ahead would broadcast a vertex whose strong edges cannot
  // reference a full quorum of round_-1 vertices.
  DR_REQUIRE(dag_.round_size(round_) >= committee_.quorum(),
             "round advanced without a 2f+1 quorum in the current round");
  round_ += 1;
  if (should_skip_proposal(round_)) {
    // This round's quorum (and its successor's) already closed without us:
    // our vertex could never be strongly referenced. Catch up instead.
    ++stats_.rounds_skipped;
    return;
  }
  propose(round_);
}

void DagBuilder::propose(Round r) {
  if (auto it = restored_proposals_.find(r); it != restored_proposals_.end()) {
    // This round was proposed in a previous life: re-send the logged bytes
    // verbatim. Creating a fresh vertex here would put two different
    // vertices into one (source, round) slot — equivocation.
    Bytes payload = std::move(it->second);
    restored_proposals_.erase(it);
    ++stats_.proposals_rebroadcast;
    rbc_.broadcast(r, std::move(payload));
    return;
  }
  Vertex v = create_new_vertex(r);
  DR_ENSURE(v.strong_edges.size() >= committee_.quorum() && v.round == r &&
                v.source == pid_,
            "own vertex must reference a full strong-edge quorum (Alg. 2 "
            "line 19)");
  DR_LOG_TRACE("p%u broadcasts vertex round=%llu strong=%zu weak=%zu", pid_,
               static_cast<unsigned long long>(r), v.strong_edges.size(),
               v.weak_edges.size());
  const net::Payload payload(v.serialize());
  // Persist-before-send: once these bytes can reach any peer, they are on
  // disk — a restart can only ever re-send them, never contradict them.
  if (proposal_log_) proposal_log_(r, payload.view());
  rbc_.broadcast(r, payload);
}

Vertex DagBuilder::create_new_vertex(Round r) {
  Vertex v;
  v.round = r;
  v.source = pid_;
  if (!blocks_to_propose_.empty()) {
    v.block = std::move(blocks_to_propose_.front());
    blocks_to_propose_.pop_front();
  } else {
    DR_ASSERT(options_.auto_blocks);
    v.block.assign(options_.auto_block_size, 0xAB);
  }
  v.strong_edges = dag_.round_sources(r - 1);  // Alg. 2 line 19
  if (options_.weak_edges) set_weak_edges(v);
  if (coin_provider_ && r % options_.rounds_per_wave == 1) {
    const Wave w = (r - 1) / options_.rounds_per_wave;
    if (w >= 1) {
      v.coin_share = coin_provider_(w);
      v.has_coin_share = true;
    }
  }
  return v;
}

void DagBuilder::apply_gc_floor(Round floor) {
  // Laggard-aware holdback: never collect rounds the slowest recently-heard
  // peer may still fetch over catch-up sync, up to gc_max_holdback_rounds of
  // history. Without this a depth-based floor outruns a restarted straggler
  // — by the time it asks for its missing parents every peer has already
  // freed them, and the straggler can never rejoin (DESIGN.md §10).
  if (gc_floor_cap_ < floor) {
    const Round hold_limit = floor > options_.gc_max_holdback_rounds
                                 ? floor - options_.gc_max_holdback_rounds
                                 : 0;
    const Round held = std::max(gc_floor_cap_, hold_limit);
    if (held < floor) ++stats_.gc_floor_holds;
    floor = held;
  }
  if (floor <= gc_floor_) return;
  gc_floor_ = floor;
  dag_.compact_below(floor);
  // Buffered vertices below the floor are dropped lazily on the next pump;
  // force one now so memory is released promptly.
  if (phase_.live()) pump();
}

void DagBuilder::set_weak_edges(Vertex& v) const {
  // Alg. 2 lines 27-31: walk rounds v.round-2 down to 1 and add a weak edge
  // to every vertex not already reachable. Reachability is tracked with a
  // bitset built from the chosen parents' ancestor closures.
  if (v.round < 3) return;
  Bitset covered;
  auto covered_test = [&](VertexId id) {
    return covered.test(static_cast<std::size_t>(id.round) * committee_.n +
                        id.source);
  };
  // Seed with the strong parents' ancestor closures: the union is exactly
  // the set reachable from v-to-be before any weak edges are added.
  for (ProcessId p : v.strong_edges) {
    dag_.merge_closure_into(VertexId{p, v.round - 1}, covered);
  }
  const Round scan_floor = std::max<Round>(1, gc_floor_);
  for (Round r = v.round - 2; r >= scan_floor; --r) {
    for (ProcessId p : dag_.round_sources(r)) {
      const VertexId u{p, r};
      if (covered_test(u)) continue;
      v.weak_edges.push_back(u);
      dag_.merge_closure_into(u, covered);
    }
  }
}

}  // namespace dr::dag
