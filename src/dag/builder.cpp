#include "dag/builder.hpp"

#include <algorithm>
#include <unordered_set>

#include "common/assert.hpp"
#include "common/log.hpp"
#include "core/contract.hpp"

namespace dr::dag {

DagBuilder::DagBuilder(Committee committee, ProcessId pid,
                       rbc::ReliableBroadcast& rbc, BuilderOptions options)
    : committee_(committee),
      pid_(pid),
      rbc_(rbc),
      options_(options),
      dag_(committee),
      buffered_per_source_(committee.n, 0) {
  DR_ASSERT(pid < committee.n);
  DR_ASSERT(options_.rounds_per_wave >= 1);
  rbc_.set_deliver([this](ProcessId source, Round r, Bytes payload) {
    on_deliver(source, r, std::move(payload));
  });
}

void DagBuilder::enqueue_block(Bytes block) {
  blocks_to_propose_.push_back(std::move(block));
  if (started_) pump();  // a block can unblock round advancement
}

void DagBuilder::start() {
  DR_ASSERT_MSG(!started_, "DagBuilder::start called twice");
  started_ = true;
  pump();
}

bool DagBuilder::validate(const Vertex& v) const {
  if (v.source >= committee_.n || v.round < 1) return false;
  // Alg. 2 line 25: at least 2f+1 strong edges into the previous round.
  if (v.strong_edges.size() < committee_.quorum()) return false;
  std::unordered_set<ProcessId> seen;
  for (ProcessId p : v.strong_edges) {
    if (p >= committee_.n || !seen.insert(p).second) return false;
  }
  std::unordered_set<std::uint64_t> weak_seen;
  for (const VertexId& id : v.weak_edges) {
    // Weak edges target rounds r' with 1 <= r' < round-1 (Alg. 2 line 29).
    if (id.source >= committee_.n || id.round < 1 || id.round + 1 >= v.round) {
      return false;
    }
    const std::uint64_t key =
        (static_cast<std::uint64_t>(id.source) << 40) ^ id.round;
    if (!weak_seen.insert(key).second) return false;
  }
  return true;
}

void DagBuilder::on_deliver(ProcessId source, Round r, Bytes payload) {
  auto parsed = Vertex::deserialize(payload);
  if (!parsed) return;  // malformed Byzantine vertex — drop
  Vertex v = std::move(parsed).value();
  // Source and round come from the reliable broadcast metadata
  // (Alg. 2 lines 23-24); the payload cannot spoof them.
  v.source = source;
  v.round = r;
  if (r < gc_floor_) return;  // arrived after its round was collected
  if (!validate(v)) return;
  if (dag_.contains(v.id())) return;  // duplicate (RBC Integrity backstop)

  // Piggybacked coin share: the vertex opening round 4w+1 may carry its
  // sender's share for wave w (paper footnote 1).
  if (v.has_coin_share && coin_sink_ && v.round % options_.rounds_per_wave == 1) {
    const Wave w = (v.round - 1) / options_.rounds_per_wave;
    if (w >= 1) coin_sink_(source, w, v.coin_share);
  }

  if (buffered_per_source_[source] >= options_.buffer_quota_per_source) {
    ++quota_rejections_;
    return;  // flooding defense: sender parked too many orphan vertices
  }
  buffered_per_source_[source] += 1;
  buffer_.push_back(std::move(v));
  if (started_) pump();
}

bool DagBuilder::try_insert_buffered() {
  bool inserted_any = false;
  for (std::size_t i = 0; i < buffer_.size();) {
    Vertex& v = buffer_[i];
    if (v.round < gc_floor_) {  // its round was collected while buffered
      buffered_per_source_[v.source] -= 1;
      buffer_[i] = std::move(buffer_.back());
      buffer_.pop_back();
      continue;
    }
    // Paper processes buffered vertices with v.round <= r (Alg. 2 line 6).
    bool ready = v.round <= round_;
    if (ready) {
      for (ProcessId p : v.strong_edges) {
        if (!dag_.contains(VertexId{p, v.round - 1})) {
          ready = false;
          break;
        }
      }
    }
    if (ready) {
      for (const VertexId& id : v.weak_edges) {
        if (!dag_.contains(id)) {
          ready = false;
          break;
        }
      }
    }
    if (!ready) {
      ++i;
      continue;
    }
    if (dag_.contains(v.id())) {  // duplicate raced into the DAG
      buffered_per_source_[v.source] -= 1;
      buffer_[i] = std::move(buffer_.back());
      buffer_.pop_back();
      continue;
    }
    Vertex taken = std::move(v);
    buffered_per_source_[taken.source] -= 1;
    buffer_[i] = std::move(buffer_.back());
    buffer_.pop_back();
    const VertexId id = taken.id();
    dag_.insert(std::move(taken));
    if (vertex_added_) vertex_added_(*dag_.get(id));
    inserted_any = true;
    // Restart the scan: the insert may unblock earlier-scanned vertices.
    i = 0;
  }
  return inserted_any;
}

bool DagBuilder::can_advance() const {
  if (dag_.round_size(round_) < committee_.quorum()) return false;
  // create_new_vertex waits for a block (Alg. 2 line 17); auto_blocks
  // realizes the "infinitely many blocks" assumption.
  return !blocks_to_propose_.empty() || options_.auto_blocks;
}

void DagBuilder::pump() {
  if (pumping_) return;  // guard against reentrancy via callbacks
  pumping_ = true;
  bool progress = true;
  while (progress) {
    progress = try_insert_buffered();
    while (can_advance()) {
      advance_round();
      progress = true;
    }
  }
  pumping_ = false;
#if DR_CONTRACTS_ENABLED
  // Flooding-defense accounting: the per-source quota counters must agree
  // with the buffer's contents, or the quota either leaks (source starves
  // forever) or stops bounding memory (Byzantine flooding wins).
  std::size_t accounted = 0;
  for (std::size_t per_source : buffered_per_source_) accounted += per_source;
  DR_INVARIANT(accounted == buffer_.size(),
               "buffer quota accounting diverged from buffer contents");
#endif
}

void DagBuilder::advance_round() {
  if (round_ % options_.rounds_per_wave == 0 && round_ > 0 && wave_ready_) {
    wave_ready_(round_ / options_.rounds_per_wave);  // Alg. 2 line 12
  }
  // Round ordering (Alg. 2 lines 8-10): a correct process broadcasts exactly
  // one vertex per round and only after seeing 2f+1 vertices in the current
  // round; skipping ahead would broadcast a vertex whose strong edges cannot
  // reference a full quorum of round_-1 vertices.
  DR_REQUIRE(dag_.round_size(round_) >= committee_.quorum(),
             "round advanced without a 2f+1 quorum in the current round");
  round_ += 1;
  Vertex v = create_new_vertex(round_);
  DR_ENSURE(v.strong_edges.size() >= committee_.quorum() &&
                v.round == round_ && v.source == pid_,
            "own vertex must reference a full strong-edge quorum (Alg. 2 "
            "line 19)");
  DR_LOG_TRACE("p%u broadcasts vertex round=%llu strong=%zu weak=%zu", pid_,
               static_cast<unsigned long long>(round_), v.strong_edges.size(),
               v.weak_edges.size());
  rbc_.broadcast(round_, v.serialize());
}

Vertex DagBuilder::create_new_vertex(Round r) {
  Vertex v;
  v.round = r;
  v.source = pid_;
  if (!blocks_to_propose_.empty()) {
    v.block = std::move(blocks_to_propose_.front());
    blocks_to_propose_.pop_front();
  } else {
    DR_ASSERT(options_.auto_blocks);
    v.block.assign(options_.auto_block_size, 0xAB);
  }
  v.strong_edges = dag_.round_sources(r - 1);  // Alg. 2 line 19
  if (options_.weak_edges) set_weak_edges(v);
  if (coin_provider_ && r % options_.rounds_per_wave == 1) {
    const Wave w = (r - 1) / options_.rounds_per_wave;
    if (w >= 1) {
      v.coin_share = coin_provider_(w);
      v.has_coin_share = true;
    }
  }
  return v;
}

void DagBuilder::apply_gc_floor(Round floor) {
  if (floor <= gc_floor_) return;
  gc_floor_ = floor;
  dag_.compact_below(floor);
  // Buffered vertices below the floor are dropped lazily on the next pump;
  // force one now so memory is released promptly.
  if (started_) pump();
}

void DagBuilder::set_weak_edges(Vertex& v) const {
  // Alg. 2 lines 27-31: walk rounds v.round-2 down to 1 and add a weak edge
  // to every vertex not already reachable. Reachability is tracked with a
  // bitset built from the chosen parents' ancestor closures.
  if (v.round < 3) return;
  Bitset covered;
  auto covered_test = [&](VertexId id) {
    return covered.test(static_cast<std::size_t>(id.round) * committee_.n +
                        id.source);
  };
  // Seed with the strong parents' ancestor closures: the union is exactly
  // the set reachable from v-to-be before any weak edges are added.
  for (ProcessId p : v.strong_edges) {
    dag_.merge_closure_into(VertexId{p, v.round - 1}, covered);
  }
  const Round scan_floor = std::max<Round>(1, gc_floor_);
  for (Round r = v.round - 2; r >= scan_floor; --r) {
    for (ProcessId p : dag_.round_sources(r)) {
      const VertexId u{p, r};
      if (covered_test(u)) continue;
      v.weak_edges.push_back(u);
      dag_.merge_closure_into(u, covered);
    }
  }
}

}  // namespace dr::dag
