// DAG construction — Algorithm 2. Consumes r_deliver events from a reliable
// broadcast, gates vertices in a buffer until their causal history is
// complete, advances rounds at 2f+1 vertices, and reliably broadcasts this
// process's own vertex per round with strong + weak edges.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <vector>

#include "dag/dag.hpp"
#include "rbc/rbc.hpp"

namespace dr::dag {

struct BuilderOptions {
  /// Rounds per wave (the paper's 4; the ablation bench varies it).
  Round rounds_per_wave = kRoundsPerWave;
  /// If true, an empty blocksToPropose queue never stalls round advancement:
  /// a synthetic block of `auto_block_size` bytes is proposed instead. This
  /// realizes the paper's "each process atomically broadcasts infinitely
  /// many blocks" assumption without an explicit client loop.
  bool auto_blocks = false;
  std::size_t auto_block_size = 0;
  /// If false, no weak edges are emitted — an ablation that knocks out the
  /// Validity property (DESIGN.md experiment ABL).
  bool weak_edges = true;
  /// Maximum buffered (not-yet-insertable) vertices per source. A Byzantine
  /// process can reference never-delivered parents to park garbage in the
  /// buffer forever; the quota bounds that to O(n * quota) memory. A correct
  /// process can legitimately run ahead by the delivery skew, so this must
  /// comfortably exceed the expected round lead (default: 128 rounds).
  std::size_t buffer_quota_per_source = 128;
};

class DagBuilder {
 public:
  /// wave_ready(w) — the Alg. 2 line 12 signal into the ordering layer.
  using WaveReadyFn = std::function<void(Wave)>;
  /// Observer invoked after a vertex is added to the local DAG.
  using VertexAddedFn = std::function<void(const Vertex&)>;
  /// Piggybacked-coin hooks (footnote 1): provider returns this process's
  /// share for wave w when its round-(4w+1) vertex is created; sink receives
  /// shares found on delivered vertices.
  using CoinShareProviderFn = std::function<std::uint64_t(Wave)>;
  using CoinShareSinkFn = std::function<void(ProcessId, Wave, std::uint64_t)>;

  DagBuilder(Committee committee, ProcessId pid, rbc::ReliableBroadcast& rbc,
             BuilderOptions options = {});

  void set_wave_ready(WaveReadyFn fn) { wave_ready_ = std::move(fn); }
  void set_vertex_added(VertexAddedFn fn) { vertex_added_ = std::move(fn); }
  void enable_coin_piggyback(CoinShareProviderFn provider, CoinShareSinkFn sink) {
    coin_provider_ = std::move(provider);
    coin_sink_ = std::move(sink);
  }

  /// blocksToPropose.enqueue(b) (Alg. 3 line 33 pushes through this).
  void enqueue_block(Bytes block);
  std::size_t blocks_pending() const { return blocks_to_propose_.size(); }

  /// Starts the protocol: performs the initial advance out of round 0,
  /// broadcasting this process's round-1 vertex. Call once after wiring.
  void start();

  const Dag& dag() const { return dag_; }
  ProcessId pid() const { return pid_; }
  Round current_round() const { return round_; }
  std::size_t buffer_size() const { return buffer_.size(); }
  /// Deliveries rejected because the sender exceeded its buffer quota.
  std::uint64_t quota_rejections() const { return quota_rejections_; }
  const BuilderOptions& options() const { return options_; }

  /// Structural validation of a delivered vertex (Alg. 2 line 25 plus
  /// hygiene). Exposed for tests and for Byzantine-input fuzzing.
  bool validate(const Vertex& v) const;

  /// Raises the garbage-collection floor (driven by the ordering layer
  /// after delivery): rounds below `floor` are compacted in the DAG,
  /// buffered vertices for them are dropped, and deliveries for them are
  /// rejected. Monotonic; see Dag::compact_below for the semantics.
  void apply_gc_floor(Round floor);
  Round gc_floor() const { return gc_floor_; }

 private:
  void on_deliver(ProcessId source, Round r, Bytes payload);
  /// Drains the buffer and advances rounds until quiescent (Alg. 2 loop).
  void pump();
  [[nodiscard]] bool try_insert_buffered();
  bool can_advance() const;
  void advance_round();
  Vertex create_new_vertex(Round r);
  void set_weak_edges(Vertex& v) const;

  Committee committee_;
  ProcessId pid_;
  rbc::ReliableBroadcast& rbc_;
  BuilderOptions options_;
  Dag dag_;
  Round round_ = 0;
  std::vector<Vertex> buffer_;
  std::deque<Bytes> blocks_to_propose_;
  WaveReadyFn wave_ready_;
  VertexAddedFn vertex_added_;
  CoinShareProviderFn coin_provider_;
  CoinShareSinkFn coin_sink_;
  bool started_ = false;
  bool pumping_ = false;
  Round gc_floor_ = 0;
  std::vector<std::size_t> buffered_per_source_;
  std::uint64_t quota_rejections_ = 0;
};

}  // namespace dr::dag
