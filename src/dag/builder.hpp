// DAG construction — Algorithm 2. Consumes r_deliver events from a reliable
// broadcast, gates vertices in a buffer until their causal history is
// complete, advances rounds at 2f+1 vertices, and reliably broadcasts this
// process's own vertex per round with strong + weak edges.
//
// Durability extension (DESIGN.md §10): the builder can be rebuilt from a
// write-ahead log before start() — begin_restore / restore_deliver /
// restore_own_proposal / finish_restore replay a logged history through the
// exact same validation and insertion gates as live delivery, re-firing
// wave_ready at every boundary so the ordering layer deterministically
// replays its commits, and resuming the round counter where the quorums
// certify instead of at round 1. sync_deliver feeds vertices fetched from
// peers by the catch-up protocol (node/catchup.hpp) through the same gates.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "core/contract.hpp"
#include "dag/dag.hpp"
#include "rbc/rbc.hpp"

namespace dr::dag {

struct BuilderOptions {
  /// Rounds per wave (the paper's 4; the ablation bench varies it).
  Round rounds_per_wave = kRoundsPerWave;
  /// If true, an empty blocksToPropose queue never stalls round advancement:
  /// a synthetic block of `auto_block_size` bytes is proposed instead. This
  /// realizes the paper's "each process atomically broadcasts infinitely
  /// many blocks" assumption without an explicit client loop.
  bool auto_blocks = false;
  std::size_t auto_block_size = 0;
  /// If false, no weak edges are emitted — an ablation that knocks out the
  /// Validity property (DESIGN.md experiment ABL).
  bool weak_edges = true;
  /// Maximum buffered (not-yet-insertable) vertices per source. A Byzantine
  /// process can reference never-delivered parents to park garbage in the
  /// buffer forever; the quota bounds that to O(n * quota) memory. A correct
  /// process can legitimately run ahead by the delivery skew, so this must
  /// comfortably exceed the expected round lead (default: 128 rounds).
  std::size_t buffer_quota_per_source = 128;
  /// When > 0: at advancement time, if the local DAG already holds a 2f+1
  /// quorum in each of the next `lag_skip_threshold` rounds, this process is
  /// clearly behind the cluster frontier and advances WITHOUT creating and
  /// broadcasting its own vertex — a vertex for a round whose quorum (and
  /// successor's quorum) already closed can never be strongly referenced, so
  /// broadcasting it only burns bandwidth and delays catch-up. Skipped
  /// rounds consume no queued block. 0 disables (the paper's behaviour,
  /// kept for the simulator; the node runtime enables it so a restarted or
  /// lagging node sprints to the frontier).
  Round lag_skip_threshold = 0;
  /// Upper bound on how far the laggard-aware GC cap (set_gc_floor_cap) may
  /// hold the floor below its depth-based target. Bounds the history a dead
  /// or Byzantine straggler can pin in memory to O(n * holdback) vertices.
  Round gc_max_holdback_rounds = 16384;
};

/// Monotonic builder counters, surfaced through node::Node::counters().
struct BuilderStats {
  /// r_deliveries dropped because their round was already GC-collected.
  std::uint64_t gc_dropped_deliveries = 0;
  /// Buffered vertices dropped when the GC floor rose past their round.
  std::uint64_t gc_dropped_buffered = 0;
  /// Deliveries rejected by the per-source buffer quota.
  std::uint64_t quota_rejections = 0;
  /// Vertices fed by the catch-up sync path (attempted, pre-validation).
  std::uint64_t sync_deliveries = 0;
  /// Rounds advanced without an own proposal (lag_skip_threshold).
  std::uint64_t rounds_skipped = 0;
  /// Logged proposals re-broadcast after a restart (identical bytes).
  std::uint64_t proposals_rebroadcast = 0;
  /// Vertices re-inserted into the DAG by WAL replay.
  std::uint64_t restored_vertices = 0;
  /// apply_gc_floor calls clamped by the laggard-aware floor cap.
  std::uint64_t gc_floor_holds = 0;
};

/// set_gc_floor_cap value meaning "no peer constrains the floor".
inline constexpr Round kNoGcFloorCap = ~Round{0};

class DagBuilder {
 public:
  /// wave_ready(w) — the Alg. 2 line 12 signal into the ordering layer.
  using WaveReadyFn = std::function<void(Wave)>;
  /// Observer invoked after a vertex is added to the local DAG.
  using VertexAddedFn = std::function<void(const Vertex&)>;
  /// Persistence hook invoked with this process's own (round, serialized
  /// vertex) BEFORE rbc_.broadcast — logging the proposal first is what
  /// makes a restart re-send identical bytes instead of equivocating.
  using ProposalLogFn = std::function<void(Round, BytesView)>;
  /// Piggybacked-coin hooks (footnote 1): provider returns this process's
  /// share for wave w when its round-(4w+1) vertex is created; sink receives
  /// shares found on delivered vertices.
  using CoinShareProviderFn = std::function<std::uint64_t(Wave)>;
  using CoinShareSinkFn = std::function<void(ProcessId, Wave, std::uint64_t)>;

  DagBuilder(Committee committee, ProcessId pid, rbc::ReliableBroadcast& rbc,
             BuilderOptions options = {});

  void set_wave_ready(WaveReadyFn fn) { wave_ready_ = std::move(fn); }
  void set_vertex_added(VertexAddedFn fn) { vertex_added_ = std::move(fn); }
  void set_proposal_log(ProposalLogFn fn) { proposal_log_ = std::move(fn); }
  void enable_coin_piggyback(CoinShareProviderFn provider, CoinShareSinkFn sink) {
    coin_provider_ = std::move(provider);
    coin_sink_ = std::move(sink);
  }

  /// blocksToPropose.enqueue(b) (Alg. 3 line 33 pushes through this).
  void enqueue_block(Bytes block);
  std::size_t blocks_pending() const { return blocks_to_propose_.size(); }

  /// Starts the protocol: performs the initial advance out of round 0 (or,
  /// after a restore, re-broadcasts still-pending logged proposals and
  /// proposes at the recovered frontier). Call once after wiring.
  void start();

  /// --- WAL restore (all before start(); see the header comment). ---
  /// Enters restore mode. `floor` is the snapshot's GC floor: the DAG is
  /// compacted to it and the round counter resumes there (0 = full replay).
  void begin_restore(Round floor);
  /// Replays one logged r_delivery through the ordinary validation gates.
  void restore_deliver(ProcessId source, Round r, net::Payload payload);
  /// Registers one logged own proposal; it is re-broadcast verbatim at
  /// start() or when advancement re-reaches its round, never recreated.
  void restore_own_proposal(Round r, Bytes payload);
  /// Inserts everything insertable and advances the round counter through
  /// every round the restored DAG certifies with a 2f+1 quorum, re-firing
  /// wave_ready at each boundary — without broadcasting anything.
  void finish_restore();

  /// Catch-up path: a vertex fetched from f+1 agreeing peers rather than
  /// r_delivered by the RBC. Validated, deduplicated, parent-gated, and
  /// quota-bounded exactly like a live delivery.
  void sync_deliver(ProcessId source, Round r, net::Payload payload);

  const Dag& dag() const { return dag_; }
  ProcessId pid() const { return pid_; }
  Round current_round() const { return round_; }
  /// Highest round any validated delivery has mentioned — the catch-up
  /// protocol's estimate of the cluster frontier.
  Round highest_seen_round() const { return highest_seen_round_; }
  std::size_t buffer_size() const { return buffer_.size(); }
  /// Lowest round holding a parent (strong or weak) that a buffered vertex
  /// references but the DAG does not contain, or 0 when nothing is missing.
  /// This is what catch-up sync uses to aim requests BELOW the current
  /// round: after a restart a round may hold only the 2f+1 vertices that
  /// advanced it, and a later vertex's edge to one of the absent ones would
  /// otherwise block insertion forever.
  Round lowest_missing_parent_round() const;
  /// Deliveries rejected because the sender exceeded its buffer quota.
  std::uint64_t quota_rejections() const { return stats_.quota_rejections; }
  const BuilderStats& stats() const { return stats_; }
  const BuilderOptions& options() const { return options_; }

  /// Structural validation of a delivered vertex (Alg. 2 line 25 plus
  /// hygiene). Exposed for tests and for Byzantine-input fuzzing.
  bool validate(const Vertex& v) const;

  /// Raises the garbage-collection floor (driven by the ordering layer
  /// after delivery): rounds below `floor` are compacted in the DAG,
  /// buffered vertices for them are dropped, and deliveries for them are
  /// rejected. Monotonic; see Dag::compact_below for the semantics.
  /// The requested floor is first clamped by the laggard-aware cap below.
  void apply_gc_floor(Round floor);
  Round gc_floor() const { return gc_floor_; }

  /// Laggard-aware GC holdback (DESIGN.md §10): the node layer lowers this
  /// cap to just below the round of the slowest peer it has recently heard
  /// from, so the floor never collects history that a live-but-lagging peer
  /// could still fetch over catch-up sync — without it, a depth-based floor
  /// outruns a restarted straggler and makes its recovery impossible.
  /// kNoGcFloorCap (the default) disables the clamp; the clamp is in turn
  /// bounded by gc_max_holdback_rounds so a dead peer cannot pin memory.
  void set_gc_floor_cap(Round cap) { gc_floor_cap_ = cap; }
  /// Highest round of any validated delivery from `source` (live, restore,
  /// or sync) — the node layer's per-peer progress estimate for the cap.
  Round highest_round_from(ProcessId source) const {
    return last_round_from_[source];
  }

 private:
  /// `solicited` marks vertices this process explicitly requested (catch-up
  /// sync): those bypass the per-source flooding quota, because their volume
  /// is already bounded by the requester's in-flight window and dropping one
  /// would lose it permanently (the sync layer de-duplicates accepted ids).
  void on_deliver(ProcessId source, Round r, net::Payload payload,
                  bool solicited = false);
  /// Drains the buffer and advances rounds until quiescent (Alg. 2 loop).
  void pump();
  [[nodiscard]] bool try_insert_buffered();
  bool can_advance() const;
  void advance_round();
  /// True when rounds next..next+threshold-1 all already hold a quorum.
  bool should_skip_proposal(Round next) const;
  /// Creates (or, post-restore, replays) and broadcasts the round-r vertex.
  void propose(Round r);
  Vertex create_new_vertex(Round r);
  void set_weak_edges(Vertex& v) const;

  Committee committee_;
  ProcessId pid_;
  rbc::ReliableBroadcast& rbc_;
  BuilderOptions options_;
  Dag dag_;
  Round round_ = 0;
  Round highest_seen_round_ = 0;
  std::vector<Vertex> buffer_;
  std::deque<Bytes> blocks_to_propose_;
  WaveReadyFn wave_ready_;
  VertexAddedFn vertex_added_;
  ProposalLogFn proposal_log_;
  CoinShareProviderFn coin_provider_;
  CoinShareSinkFn coin_sink_;
  /// Own proposals recovered from the WAL, keyed by round; drained as they
  /// are re-broadcast (start()) or re-reached (propose()).
  std::map<Round, Bytes> restored_proposals_;
  contract::RestorePhase phase_;
  bool pumping_ = false;
  Round gc_floor_ = 0;
  Round gc_floor_cap_ = kNoGcFloorCap;
  std::vector<std::size_t> buffered_per_source_;
  /// Highest validated delivery round per source (feeds highest_round_from).
  std::vector<Round> last_round_from_;
  BuilderStats stats_;
};

}  // namespace dr::dag
