// Growable bitset for vertex ancestor sets. Slot i = round * n + source,
// so reachability queries ("is u an ancestor of v?") are single bit probes
// and transitive closure updates are word-wide unions.
#pragma once

#include <cstdint>
#include <vector>

namespace dr::dag {

/// Supports windowed truncation: garbage collection drops the words below a
/// watermark so long-running DAGs keep bounded memory; bits below the
/// truncation point read as 0 (their vertices are compacted — queries
/// against them are answered by the delivered-set, not by reachability).
class Bitset {
 public:
  void set(std::size_t i) {
    const std::size_t word = i / 64;
    if (word < offset_) return;  // below the GC watermark: nothing to record
    if (word - offset_ >= words_.size()) words_.resize(word - offset_ + 1, 0);
    words_[word - offset_] |= 1ULL << (i % 64);
  }

  bool test(std::size_t i) const {
    const std::size_t word = i / 64;
    if (word < offset_) return false;
    return word - offset_ < words_.size() && (words_[word - offset_] >> (i % 64)) & 1;
  }

  /// this |= other. Offsets may differ (older vertices truncate lower);
  /// the result keeps this bitset's offset, ignoring bits below it.
  void or_with(const Bitset& other) {
    const std::size_t skip = offset_ > other.offset_ ? offset_ - other.offset_ : 0;
    if (other.offset_ > offset_) {
      // Other starts higher: align our view of its words.
      const std::size_t shift = other.offset_ - offset_;
      if (other.words_.size() + shift > words_.size()) {
        words_.resize(other.words_.size() + shift, 0);
      }
      for (std::size_t i = 0; i < other.words_.size(); ++i) {
        words_[i + shift] |= other.words_[i];
      }
      return;
    }
    if (other.words_.size() > skip) {
      const std::size_t n = other.words_.size() - skip;
      if (n > words_.size()) words_.resize(n, 0);
      for (std::size_t i = 0; i < n; ++i) words_[i] |= other.words_[i + skip];
    }
  }

  /// Frees all words below `word`; bits there read as 0 afterwards.
  void truncate_below_word(std::size_t word) {
    if (word <= offset_) return;
    const std::size_t drop = word - offset_;
    if (drop >= words_.size()) {
      words_.clear();
    } else {
      words_.erase(words_.begin(), words_.begin() + static_cast<std::ptrdiff_t>(drop));
    }
    words_.shrink_to_fit();
    offset_ = word;
  }

  std::size_t count() const {
    std::size_t c = 0;
    for (std::uint64_t w : words_) c += static_cast<std::size_t>(__builtin_popcountll(w));
    return c;
  }

  std::size_t capacity_bits() const { return (offset_ + words_.size()) * 64; }
  std::size_t allocated_words() const { return words_.size(); }

 private:
  std::vector<std::uint64_t> words_;
  std::size_t offset_ = 0;  ///< words below this index are dropped
};

}  // namespace dr::dag
