// Abstract message bus: the slice of the network that protocol components
// (reliable broadcast, threshold coin) program against. Two implementations
// exist — sim::Network (single-threaded discrete-event delivery under an
// adversarial delay model) and node::NodeBus (real OS threads over a wire
// transport) — so the exact same protocol code runs in both worlds. This is
// the seam that lets the simulator remain the correctness oracle for the
// real-concurrency runtime.
#pragma once

#include <functional>

#include "common/bytes.hpp"
#include "common/types.hpp"
#include "net/channel.hpp"
#include "net/payload.hpp"

namespace dr::net {

class Bus {
 public:
  /// Delivery upcall for one (process, channel) subscription. The payload is
  /// a shared immutable buffer: handlers may keep (refcounted) windows into
  /// it or re-broadcast it without copying.
  using Handler = std::function<void(ProcessId from, const Payload& payload)>;

  virtual ~Bus() = default;

  virtual const Committee& committee() const = 0;
  std::uint32_t n() const { return committee().n; }

  /// Registers the delivery callback for (process, channel). At most one
  /// handler per pair; re-registration replaces.
  virtual void subscribe(ProcessId pid, Channel channel, Handler handler) = 0;

  /// Point-to-point send. Self-sends are queued like any other message —
  /// never delivered synchronously — so handlers are not reentered.
  virtual void send(ProcessId from, ProcessId to, Channel channel,
                    Payload payload) = 0;

  /// Sends the same payload to all n processes (including self). Every link
  /// shares one payload buffer — implementations must not deep-copy it.
  virtual void broadcast(ProcessId from, Channel channel, Payload payload) = 0;
};

}  // namespace dr::net
