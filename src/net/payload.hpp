// Refcounted immutable payload buffer — the zero-copy currency of the wire
// layer (DESIGN.md §11). A broadcast encodes its bytes once and every link
// (including the self-loop) shares the same buffer; a received frame's blob
// can be re-broadcast or windowed into sub-ranges without copying. The
// SHA-256 digest of a payload's bytes is memoized per window so each
// distinct byte string is hashed at most once no matter how many protocol
// layers ask for it (single-hash discipline).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <utility>

#include "common/bytes.hpp"
#include "crypto/sha256.hpp"

namespace dr::net {

/// Immutable shared byte buffer with an optional sub-range window.
///
/// Ownership model: copying a Payload bumps a refcount; the underlying bytes
/// are never duplicated unless the caller explicitly asks (copy_of /
/// to_bytes, both counted — see copy_count()). Windows share the parent's
/// buffer and keep it alive; a window carries its own digest memo because
/// its bytes differ from the parent's.
///
/// Thread-safety: the buffer is immutable after construction, so concurrent
/// reads from transport/link threads are safe; digest() memoization is
/// guarded by std::call_once.
class Payload {
 public:
  Payload() = default;

  /// Takes ownership of the buffer — no copy. Implicit on purpose: every
  /// send/broadcast call site that builds a message with ByteWriter hands
  /// over the rvalue Bytes it just produced.
  Payload(Bytes&& bytes)  // NOLINT(google-explicit-constructor)
      : rep_(bytes.empty() ? nullptr
                           : std::make_shared<const Rep>(std::move(bytes))) {}

  /// Deep copy of a view the caller keeps owning. Counted (copy_count()).
  static Payload copy_of(BytesView data);

  std::size_t size() const { return rep_ == nullptr ? 0 : rep_->len; }
  bool empty() const { return size() == 0; }
  const std::uint8_t* data() const {
    return rep_ == nullptr ? nullptr : rep_->buffer->data() + rep_->offset;
  }
  BytesView view() const { return BytesView{data(), size()}; }

  /// Sub-range [offset, offset+len) sharing this payload's buffer — no copy;
  /// the window keeps the whole buffer alive.
  Payload window(std::size_t offset, std::size_t len) const;

  /// SHA-256 of view(), computed at most once per window (thread-safe memo).
  const crypto::Digest& digest() const;

  /// Deep copy out, for callers that need an owned mutable Bytes. Counted.
  Bytes to_bytes() const {
    note_copy(size());
    return Bytes(view().begin(), view().end());
  }

  /// Process-wide count of deep payload copies (copy_of / to_bytes) and the
  /// bytes they moved, since the last reset. The zero-copy bench assertion
  /// (bench_micro) resets this, broadcasts, and requires the count to stay 0.
  static std::uint64_t copy_count();
  static std::uint64_t copied_bytes();
  static void reset_copy_counters();

 private:
  struct Rep {
    explicit Rep(Bytes&& bytes)
        : buffer(std::make_shared<const Bytes>(std::move(bytes))),
          offset(0),
          len(buffer->size()) {}
    Rep(std::shared_ptr<const Bytes> buf, std::size_t off, std::size_t n)
        : buffer(std::move(buf)), offset(off), len(n) {}

    std::shared_ptr<const Bytes> buffer;
    std::size_t offset = 0;
    std::size_t len = 0;
    mutable std::once_flag digest_once;
    mutable crypto::Digest digest_memo{};
  };

  explicit Payload(std::shared_ptr<const Rep> rep) : rep_(std::move(rep)) {}

  static void note_copy(std::size_t n);

  std::shared_ptr<const Rep> rep_;
};

}  // namespace dr::net
