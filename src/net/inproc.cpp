#include "net/inproc.hpp"

#include <chrono>
#include <mutex>
#include <thread>

#include "common/assert.hpp"

namespace dr::net {

class InProcEndpoint final : public Transport {
 public:
  InProcEndpoint(std::shared_ptr<InProcNetwork::Shared> shared, ProcessId pid)
      : shared_(std::move(shared)), pid_(pid) {}

  ~InProcEndpoint() override { stop(); }

  ProcessId pid() const override { return pid_; }
  const Committee& committee() const override { return shared_->committee; }

  void start(RecvFn recv) override {
    InProcNetwork::Peer& me = shared_->peers[pid_];
    std::unique_lock lock(me.mu);
    me.recv = std::move(recv);
    me.ever_ready.store(true, std::memory_order_release);
    me.ready.store(true, std::memory_order_release);
  }

  void send(ProcessId to, Channel channel, Payload payload) override {
    DR_ASSERT(to < shared_->committee.n);
    InProcNetwork::Peer& peer = shared_->peers[to];
    if (!peer.ready.load(std::memory_order_acquire)) {
      if (peer.ever_ready.load(std::memory_order_acquire)) {
        // The peer was up and went down (crash / restart window): drop, as a
        // real network would. Waiting here would stall the sending node's
        // whole protocol loop on a peer that may never return.
        return;
      }
      // The hosting harness starts every endpoint before any protocol
      // traffic flows; tolerate a short startup skew, then drop (the peer
      // never came up).
      const auto deadline =
          std::chrono::steady_clock::now() + std::chrono::seconds(5);
      while (!peer.ready.load(std::memory_order_acquire)) {
        if (std::chrono::steady_clock::now() > deadline) return;
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
    // Shared lock for the duration of the delivery: a concurrent stop()
    // takes the exclusive side and therefore cannot complete — nor can the
    // receiving node be torn down — while we are inside its recv hook.
    std::shared_lock lock(peer.mu);
    if (!peer.ready.load(std::memory_order_acquire)) return;  // lost the race
    peer.recv(Frame{pid_, channel, std::move(payload)});
  }

  void stop() override {
    InProcNetwork::Peer& me = shared_->peers[pid_];
    me.ready.store(false, std::memory_order_release);
    // Exclusive acquisition drains in-flight deliveries before the recv hook
    // (which captures the node being destroyed) is released.
    std::unique_lock lock(me.mu);
    me.recv = nullptr;
  }

 private:
  std::shared_ptr<InProcNetwork::Shared> shared_;
  ProcessId pid_;
};

InProcNetwork::InProcNetwork(Committee committee)
    : shared_(std::make_shared<Shared>()) {
  DR_ASSERT_MSG(committee.valid(), "InProcNetwork: committee must satisfy n > 3f");
  shared_->committee = committee;
  shared_->peers = std::vector<Peer>(committee.n);
}

std::unique_ptr<Transport> InProcNetwork::endpoint(ProcessId pid) {
  DR_ASSERT(pid < shared_->committee.n);
  return std::make_unique<InProcEndpoint>(shared_, pid);
}

}  // namespace dr::net
