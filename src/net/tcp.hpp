// TCP transport: length-prefixed frames (net/frame.hpp) over loopback/LAN
// sockets, one process per group of nodes. Link topology is dual-simplex:
// every node dials every other node once and uses that connection only for
// its own outgoing frames; the symmetric connection dialed by the peer
// carries the reverse direction. Each link opens with a versioned handshake
// and a committee cross-check, so mismatched builds or misconfigured
// clusters fail fast instead of corrupting streams.
//
// Threads per endpoint: 1 acceptor + (n-1) link writers + one reader per
// accepted connection. Backpressure is layered: a bounded per-link send
// queue (blocking-with-grace, like net::Inbox) in front of the kernel
// socket buffer, whose own fill blocks the writer thread.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/transport.hpp"

namespace dr::net {

struct TcpPeer {
  std::string host = "127.0.0.1";  ///< numeric IPv4 only
  std::uint16_t port = 0;
};

struct TcpOptions {
  std::size_t send_queue_capacity = 8192;
  std::chrono::milliseconds connect_timeout{15'000};
  std::chrono::milliseconds overflow_grace{100};
};

/// Binds `count` listening sockets on port 0, records the kernel-assigned
/// ports, and closes them. Racy by nature (another process may grab a port
/// before it is reused) but adequate for tests and single-machine demos.
std::vector<std::uint16_t> pick_free_ports(std::size_t count);

class TcpTransport final : public Transport {
 public:
  /// `peers[i]` is where node i listens; this endpoint binds peers[pid].
  TcpTransport(Committee committee, ProcessId pid, std::vector<TcpPeer> peers,
               TcpOptions opts = {});
  ~TcpTransport() override;

  ProcessId pid() const override { return pid_; }
  const Committee& committee() const override { return committee_; }

  void start(RecvFn recv) override;
  void send(ProcessId to, Channel channel, Payload payload) override;
  void stop() override;

  std::uint64_t backpressure_overflows() const override {
    return overflows_.load(std::memory_order_relaxed);
  }
  /// Links whose byte stream or handshake violated the protocol.
  std::uint64_t protocol_errors() const {
    return protocol_errors_.load(std::memory_order_relaxed);
  }

  TransportCounters counters() const override {
    return {{"tcp.protocol_errors", protocol_errors()},
            {"tcp.backpressure_overflows", backpressure_overflows()}};
  }

 private:
  /// One frame awaiting a link's socket: the per-link 12-byte header plus a
  /// refcounted reference to the payload buffer shared with every other link
  /// of the same broadcast. The writer sends both as one writev.
  struct OutFrame {
    FrameHeader header{};
    Payload payload;
  };

  struct OutLink {
    ProcessId peer = 0;
    std::thread writer;
    std::mutex mu;
    std::condition_variable cv;
    std::deque<OutFrame> queue;  ///< frames awaiting the socket
    bool closed = false;
    int fd = -1;  ///< guarded by mu; published so stop() can shutdown()
  };

  void writer_loop(OutLink& link);
  void acceptor_loop();
  void reader_loop(std::size_t idx, int fd);
  int dial(const TcpPeer& peer) const;
  void enqueue(OutLink& link, OutFrame frame);

  Committee committee_;
  ProcessId pid_;
  std::vector<TcpPeer> peers_;
  TcpOptions opts_;
  RecvFn recv_;

  std::atomic<int> listen_fd_{-1};
  std::thread acceptor_;
  std::vector<std::unique_ptr<OutLink>> out_;  ///< indexed by peer pid

  std::mutex readers_mu_;
  std::vector<std::thread> readers_;
  std::vector<int> reader_fds_;

  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> overflows_{0};
  std::atomic<std::uint64_t> protocol_errors_{0};
};

}  // namespace dr::net
