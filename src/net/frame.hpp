// Wire format of the real transports: length-prefixed frames carrying the
// Channel mux, plus the versioned handshake that opens every TCP link. All
// integers are little-endian, matching ByteWriter. The codec is defensive:
// it is the first parser that touches bytes from another machine, so every
// malformed input (truncated frame, oversized length prefix, unknown
// channel) must be rejected crisply instead of trusted.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/expected.hpp"
#include "common/types.hpp"
#include "core/contract.hpp"
#include "net/channel.hpp"
#include "net/payload.hpp"

namespace dr::net {

/// One routed protocol message, as carried by a Transport. The payload is a
/// shared immutable buffer: a broadcast's n frames all reference the same
/// bytes, and moving a Frame through the Inbox never copies them.
struct Frame {
  ProcessId from = 0;
  Channel channel = Channel::kBracha;
  Payload payload;
};

inline constexpr std::uint32_t kWireMagic = 0x52474144;  // "DAGR" LE
/// v2 added Channel::kSync and the VertexRequest/VertexResponse codec; v3
/// added Channel::kIngress (client tx-submission sessions, DESIGN.md §13).
/// A peer one version behind would reject the new channel as unknown, so
/// the handshake refuses to mix versions rather than degrade silently.
inline constexpr std::uint16_t kWireVersion = 3;

/// Upper bound on one frame's payload. A peer could otherwise make the
/// receiver allocate gigabytes with 4 cheap bytes of length prefix.
inline constexpr std::uint32_t kMaxFramePayload = 16u << 20;

/// Frame wire layout: [u32 payload_len][u32 from][u32 channel][payload].
inline constexpr std::size_t kFrameHeaderBytes = 12;

using FrameHeader = std::array<std::uint8_t, kFrameHeaderBytes>;

/// Just the 12-byte header. The zero-copy send path writes this and the
/// shared payload buffer as separate iovecs instead of concatenating.
FrameHeader encode_frame_header(ProcessId from, Channel channel,
                                std::size_t payload_len);

Bytes encode_frame(ProcessId from, Channel channel, BytesView payload);

/// Peer introduction, the first bytes on every TCP link:
/// [u32 magic][u16 version][u32 pid][u32 n][u32 f].
struct Handshake {
  std::uint32_t magic = kWireMagic;
  std::uint16_t version = kWireVersion;
  ProcessId pid = 0;
  std::uint32_t n = 0;
  std::uint32_t f = 0;
};
inline constexpr std::size_t kHandshakeWireBytes = 4 + 2 + 4 + 4 + 4;

Bytes encode_handshake(const Handshake& hs);

/// Rejects short input, wrong magic, and unknown version. Committee and pid
/// consistency is the transport's job (it knows the expected values).
Expected<Handshake> decode_handshake(BytesView data);

/// --- Catch-up sync codec (Channel::kSync payloads, DESIGN.md §10) ---
/// A restarted or lagging node asks peers for the vertices of a round range;
/// peers answer from their local DAG. Responses are only trusted on f+1
/// byte-identical copies from distinct peers (node/catchup.hpp), so the
/// codec's job is purely structural validation.

/// Tag byte opening every kSync payload.
inline constexpr std::uint8_t kSyncRequestTag = 1;
inline constexpr std::uint8_t kSyncResponseTag = 2;
/// Bounds chosen so one response always fits a single frame: a request may
/// span at most 64 rounds and a response carries at most 64 vertices.
inline constexpr Round kMaxSyncRoundSpan = 64;
inline constexpr std::size_t kMaxSyncVertices = 64;

/// "Send me every vertex you hold in rounds [from_round, to_round]."
struct VertexRequest {
  Round from_round = 1;
  Round to_round = 1;  ///< inclusive
};

/// One vertex carried by a response, with the RBC metadata the requester
/// needs to feed it through DagBuilder::sync_deliver.
struct SyncVertex {
  ProcessId source = 0;
  Round round = 0;
  Bytes payload;  ///< serialized dag::Vertex, exactly as r_delivered
};

/// Answer to a VertexRequest: whatever subset the responder still holds
/// (GC may have freed part of the range). May be empty.
struct VertexResponse {
  Round from_round = 1;
  Round to_round = 1;
  std::vector<SyncVertex> vertices;
};

Bytes encode_vertex_request(const VertexRequest& req);
Bytes encode_vertex_response(const VertexResponse& resp);

/// Discriminates on the tag byte; exactly one optional is set on success.
struct SyncMessage {
  std::optional<VertexRequest> request;
  std::optional<VertexResponse> response;
};

/// Rejects unknown tags, inverted or over-span ranges, round 0, oversized
/// vertex counts/payloads, and out-of-range sources (when n != 0).
Expected<SyncMessage> decode_sync_message(BytesView data, std::uint32_t n = 0);

/// Incremental decoder for a TCP byte stream: feed arbitrary chunks, pop
/// complete frames. A protocol violation (oversized length, unknown
/// channel, out-of-range source) flips the decoder into a dead state; the
/// owning link must then be torn down — resynchronizing inside a corrupted
/// byte stream is not possible with length-prefixed framing.
class FrameDecoder {
 public:
  /// `n` bounds the valid `from` ids; 0 disables the source check.
  explicit FrameDecoder(std::uint32_t n = 0) : n_(n) {}

  void feed(BytesView chunk);

  /// Pops the next complete frame, if one is buffered.
  [[nodiscard]] std::optional<Frame> next();

  bool dead() const { return dead_; }
  const std::string& error() const { return error_; }

 private:
  void fail(std::string why) {
    dead_ = true;
    error_ = std::move(why);
    // Dead-state reachability: every protocol violation must land here with
    // a diagnosable reason, and the state is absorbing (feed/next no-op
    // afterwards) — resynchronizing inside a corrupted length-prefixed
    // stream would let an adversary splice frames across the corruption.
    DR_ENSURE(dead_ && !error_.empty(),
              "decoder failure must record a reason and go dead");
  }

  std::uint32_t n_;
  Bytes buf_;
  std::size_t pos_ = 0;  ///< consumed prefix of buf_
  bool dead_ = false;
  std::string error_;
};

}  // namespace dr::net
