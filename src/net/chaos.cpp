#include "net/chaos.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "common/assert.hpp"
#include "core/contract.hpp"

namespace dr::net {
namespace {

/// Uniform double in [0, 1) from one 64-bit draw (same mapping as
/// Xoshiro256::uniform, but usable on a stateless per-frame hash).
double unit(std::uint64_t x) {
  return static_cast<double>(x >> 11) * 0x1.0p-53;
}

/// Uniform draw in [0, bound] from one 64-bit hash output. Modulo bias is
/// negligible for fault-schedule purposes (bound << 2^64) and keeps the
/// decision a single stateless evaluation.
std::uint64_t below_inclusive(std::uint64_t x, std::uint64_t bound) {
  return bound == 0 ? 0 : x % (bound + 1);
}

/// Mixes the frame coordinates into one 64-bit stream key. Every field gets
/// its own region and the seq is golden-ratio-spread so adjacent frames land
/// in unrelated SplitMix64 streams.
std::uint64_t frame_key(ProcessId from, ProcessId to, Channel channel,
                        std::uint64_t seq) {
  return (static_cast<std::uint64_t>(from) << 48) ^
         (static_cast<std::uint64_t>(to) << 32) ^
         (static_cast<std::uint64_t>(channel) << 24) ^
         (seq * 0x9e3779b97f4a7c15ULL);
}

}  // namespace

bool PartitionSpec::separates(ProcessId a, ProcessId b) const {
  const bool a_in = std::find(group_a.begin(), group_a.end(), a) != group_a.end();
  const bool b_in = std::find(group_a.begin(), group_a.end(), b) != group_a.end();
  return a_in != b_in;
}

const LinkFaults& ChaosPlan::faults_for(Channel channel) const {
  for (const auto& [ch, lf] : per_channel) {
    if (ch == channel) return lf;
  }
  return base;
}

ChaosPlan::Decision ChaosPlan::decide(ProcessId from, ProcessId to,
                                      Channel channel, std::uint64_t seq) const {
  Decision d;
  const LinkFaults& lf = faults_for(channel);
  if (!lf.any()) return d;
  // One independent hash stream per frame: thread timing can never perturb
  // the fate of frame k on a link, only when that fate is carried out.
  SplitMix64 h(seed ^ frame_key(from, to, channel, seq));
  // Lossy link with retransmission: draw per-attempt fates until one goes
  // through (or the forced-success cap). Every lost attempt costs one RTO.
  while (d.lost_attempts < kMaxLossStreak && unit(h.next()) < lf.drop) {
    ++d.lost_attempts;
  }
  d.delay_us = d.lost_attempts * lf.retransmit_us + lf.delay_min_us +
               below_inclusive(h.next(), lf.delay_max_us > lf.delay_min_us
                                             ? lf.delay_max_us - lf.delay_min_us
                                             : 0);
  if (unit(h.next()) < lf.reorder) {
    d.holdback_us =
        lf.reorder_holdback_us + below_inclusive(h.next(), lf.reorder_holdback_us);
  }
  if (unit(h.next()) < lf.duplicate) {
    d.duplicate = true;
    d.duplicate_gap_us = 1 + below_inclusive(h.next(), lf.delay_max_us);
  }
  return d;
}

bool ChaosPlan::partitioned(ProcessId from, ProcessId to,
                            std::uint64_t elapsed_us) const {
  return partition_heal_us(from, to, elapsed_us) != 0;
}

std::uint64_t ChaosPlan::partition_heal_us(ProcessId from, ProcessId to,
                                           std::uint64_t elapsed_us) const {
  std::uint64_t heal = 0;
  for (const PartitionSpec& p : partitions) {
    if (elapsed_us >= p.start_us && elapsed_us < p.heal_us &&
        p.separates(from, to)) {
      heal = std::max(heal, p.heal_us);
    }
  }
  return heal;
}

std::uint64_t ChaosPlan::max_injected_delay_us() const {
  auto worst = [](const LinkFaults& lf) {
    return lf.delay_max_us + 2 * lf.reorder_holdback_us +
           kMaxLossStreak * lf.retransmit_us;
  };
  std::uint64_t m = worst(base);
  for (const auto& [ch, lf] : per_channel) {
    (void)ch;
    m = std::max(m, worst(lf));
  }
  return m;
}

std::string ChaosPlan::describe() const {
  auto fmt_faults = [](const LinkFaults& lf) {
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "drop=%.3f dup=%.3f reorder=%.3f delay=[%llu,%llu]us "
                  "holdback=%lluus rto=%lluus rate=%lluB/s",
                  lf.drop, lf.duplicate, lf.reorder,
                  static_cast<unsigned long long>(lf.delay_min_us),
                  static_cast<unsigned long long>(lf.delay_max_us),
                  static_cast<unsigned long long>(lf.reorder_holdback_us),
                  static_cast<unsigned long long>(lf.retransmit_us),
                  static_cast<unsigned long long>(lf.bytes_per_sec));
    return std::string(buf);
  };
  std::string out = "chaos{seed=" + std::to_string(seed) + " " + fmt_faults(base);
  for (const auto& [ch, lf] : per_channel) {
    out += " ch" + std::to_string(static_cast<std::uint32_t>(ch)) + "{" +
           fmt_faults(lf) + "}";
  }
  for (const PartitionSpec& p : partitions) {
    out += " part[" + std::to_string(p.start_us) + ".." +
           std::to_string(p.heal_us) + "us A={";
    for (std::size_t i = 0; i < p.group_a.size(); ++i) {
      out += (i ? "," : "") + std::to_string(p.group_a[i]);
    }
    out += "}]";
  }
  out += "}";
  return out;
}

ChaosPlan ChaosPlan::randomized(std::uint64_t seed, std::uint32_t n,
                                bool allow_partition) {
  DR_ASSERT_MSG(n >= 1, "randomized plan needs a committee size");
  ChaosPlan plan;
  plan.seed = seed;
  Xoshiro256 rng(seed ^ 0xC0A05EEDULL);  // plan stream, distinct from decide()
  plan.base.drop = rng.uniform() * 0.10;
  plan.base.duplicate = rng.uniform() * 0.05;
  plan.base.reorder = rng.uniform() * 0.10;
  plan.base.delay_min_us = rng.below(500);
  plan.base.delay_max_us = plan.base.delay_min_us + rng.below(15'000);
  plan.base.reorder_holdback_us = 1'000 + rng.below(8'000);
  plan.base.retransmit_us = 15'000 + rng.below(45'000);
  // Throttle only some runs, and never below 1 MB/s: the point is jittered
  // pacing, not starving the cluster outright.
  plan.base.bytes_per_sec =
      rng.uniform() < 0.3 ? 1'000'000 + rng.below(8'000'000) : 0;
  // Lean harder on the catch-up path in some runs: extra kSync loss.
  if (rng.uniform() < 0.5) {
    LinkFaults sync = plan.base;
    sync.drop = std::min(0.35, sync.drop + rng.uniform() * 0.25);
    plan.per_channel.emplace_back(Channel::kSync, sync);
  }
  const std::uint32_t f = Committee::for_n(n).f;
  if (allow_partition && f >= 1 && rng.uniform() < 0.8) {
    PartitionSpec part;
    part.start_us = 50'000 + rng.below(150'000);
    part.heal_us = part.start_us + 50'000 + rng.below(250'000);
    // Cut off a minority of exactly f processes so the remaining 2f+1 side
    // keeps satisfying every quorum (liveness holds through the window).
    std::vector<ProcessId> ids(n);
    for (ProcessId p = 0; p < n; ++p) ids[p] = p;
    for (std::uint32_t i = 0; i < f; ++i) {
      const std::uint64_t j = i + rng.below(n - i);
      std::swap(ids[i], ids[j]);
      part.group_a.push_back(ids[i]);
    }
    plan.partitions.push_back(std::move(part));
  }
  return plan;
}

ChaosTransport::ChaosTransport(std::unique_ptr<Transport> inner, ChaosPlan plan)
    : inner_(std::move(inner)),
      plan_(std::move(plan)),
      epoch_(std::chrono::steady_clock::now()) {
  DR_ASSERT(inner_ != nullptr);
  for (const PartitionSpec& p : plan_.partitions) {
    // A partition without a heal point is not a chaos fault, it is a model
    // violation: liveness between correct processes requires finite delays.
    DR_REQUIRE(p.heal_us > p.start_us,
               "every scripted partition must heal after it starts");
  }
  const std::size_t n = inner_->committee().n;
  seq_.assign(n * kChannelCount, 0);
  bucket_free_us_.assign(n, 0);
}

ChaosTransport::~ChaosTransport() { stop(); }

std::uint64_t ChaosTransport::elapsed_us() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

void ChaosTransport::start(RecvFn recv) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    DR_ASSERT_MSG(!running_, "ChaosTransport::start is one-shot");
    running_ = true;
  }
  scheduler_ = std::thread([this] { scheduler_loop(); });
  inner_->start(std::move(recv));
}

void ChaosTransport::send(ProcessId to, Channel channel, Payload payload) {
  // Loopback is internal machinery (a node queueing work to itself), not a
  // network link; faulting it would wedge the node, not test the protocol.
  if (to == pid()) {
    inner_->send(to, channel, std::move(payload));
    return;
  }
  const std::uint64_t now = elapsed_us();
  ChaosPlan::Decision d;
  std::uint64_t due = now;
  bool throttled = false;
  bool deferred = false;
  {
    std::lock_guard<std::mutex> lk(mu_);
    const std::size_t slot =
        static_cast<std::size_t>(to) * kChannelCount +
        static_cast<std::uint32_t>(channel);
    d = plan_.decide(pid(), to, channel, seq_[slot]++);
    due = now + d.delay_us + d.holdback_us;
    // Link outage: frames sent into a partition window come out after its
    // heal point (plus their injected latency), like TCP retransmission
    // carrying data across a temporary cut.
    const std::uint64_t heal = plan_.partition_heal_us(pid(), to, now);
    if (heal != 0) {
      deferred = true;
      due = std::max(due, heal + d.delay_us);
    }
    const LinkFaults& lf = plan_.faults_for(channel);
    if (lf.bytes_per_sec > 0) {
      // Token bucket per destination: a frame occupies the link for
      // size/rate; queueing behind earlier frames is the throttle.
      const std::uint64_t transmit_us =
          payload.size() * 1'000'000 / lf.bytes_per_sec;
      std::uint64_t& free_at = bucket_free_us_[to];
      const std::uint64_t start_at = std::max(due, free_at);
      free_at = start_at + transmit_us;
      throttled = free_at > due;
      due = free_at;
    }
  }
  if (d.lost_attempts > 0) {
    stats_.drops.fetch_add(d.lost_attempts, std::memory_order_relaxed);
  }
  if (deferred) {
    stats_.partition_delays.fetch_add(1, std::memory_order_relaxed);
  }
  if (d.holdback_us > 0) stats_.reorders.fetch_add(1, std::memory_order_relaxed);
  if (throttled) stats_.throttled.fetch_add(1, std::memory_order_relaxed);
  if (due <= now && !d.duplicate) {
    stats_.forwarded.fetch_add(1, std::memory_order_relaxed);
    inner_->send(to, channel, std::move(payload));
    return;
  }
  stats_.delays.fetch_add(1, std::memory_order_relaxed);
  if (d.duplicate) {
    stats_.duplicates.fetch_add(1, std::memory_order_relaxed);
    enqueue(due + d.duplicate_gap_us, to, channel, payload);
  }
  enqueue(due, to, channel, std::move(payload));
}

void ChaosTransport::enqueue(std::uint64_t due_us, ProcessId to,
                             Channel channel, Payload payload) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (!running_) {
      stats_.dropped_at_stop.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    pending_.push(Pending{due_us, next_order_++, to, channel, std::move(payload)});
  }
  cv_.notify_one();
}

void ChaosTransport::scheduler_loop() {
  std::unique_lock<std::mutex> lk(mu_);
  while (running_) {
    if (pending_.empty()) {
      cv_.wait(lk, [this] { return !running_ || !pending_.empty(); });
      continue;
    }
    const std::uint64_t now = elapsed_us();
    const Pending& head = pending_.top();
    if (head.due_us > now) {
      cv_.wait_for(lk, std::chrono::microseconds(head.due_us - now));
      continue;
    }
    Pending item = pending_.top();
    pending_.pop();
    // Deliver outside the lock: the inner send may block on backpressure,
    // and new sends from the node thread must not be serialized behind it.
    lk.unlock();
    inner_->send(item.to, item.channel, std::move(item.payload));
    stats_.forwarded.fetch_add(1, std::memory_order_relaxed);
    lk.lock();
  }
}

void ChaosTransport::stop() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (!running_ && scheduler_.joinable() == false && pending_.empty()) {
      inner_->stop();  // idempotent passthrough
      return;
    }
    running_ = false;
    stats_.dropped_at_stop.fetch_add(pending_.size(),
                                     std::memory_order_relaxed);
    while (!pending_.empty()) pending_.pop();
  }
  cv_.notify_all();
  if (scheduler_.joinable()) scheduler_.join();
  inner_->stop();
}

TransportCounters ChaosTransport::counters() const {
  TransportCounters out = inner_->counters();
  auto get = [](const std::atomic<std::uint64_t>& a) {
    return a.load(std::memory_order_relaxed);
  };
  out.emplace_back("chaos.forwarded", get(stats_.forwarded));
  out.emplace_back("chaos.drops", get(stats_.drops));
  out.emplace_back("chaos.partition_delays", get(stats_.partition_delays));
  out.emplace_back("chaos.delays", get(stats_.delays));
  out.emplace_back("chaos.duplicates", get(stats_.duplicates));
  out.emplace_back("chaos.reorders", get(stats_.reorders));
  out.emplace_back("chaos.throttled", get(stats_.throttled));
  out.emplace_back("chaos.dropped_at_stop", get(stats_.dropped_at_stop));
  return out;
}

}  // namespace dr::net
