// Protocol multiplexing label shared by every message carrier: the simulated
// network, the real transports, and the wire frame format all tag messages
// with a Channel so one link can carry all protocol components. Lives in
// net/ (not sim/) because the wire codec must agree with the simulator on
// the numbering — it is part of the protocol's wire contract.
#pragma once

#include <cstdint>

namespace dr::net {

/// Each protocol component subscribes to one channel; a (to, channel) pair
/// identifies the delivery target.
enum class Channel : std::uint32_t {
  kBracha = 1,
  kAvid = 2,
  kGossip = 3,
  kCoin = 4,
  kVaba = 5,
  kDumbo = 6,
  kOracle = 7,
  kApp = 8,
  kBba = 9,
  /// Catch-up sync (DESIGN.md §10): VertexRequest/VertexResponse exchanges
  /// between a lagging node and its peers. Off the critical path — losing or
  /// reordering sync frames only delays catch-up, never safety.
  kSync = 10,
  /// Client ingress tier (DESIGN.md §13): SubmitBatch / SubmitReply /
  /// CommitAcks between external clients and a node's tx-submission front
  /// end. Never appears on node-to-node links; the ingress server speaks it
  /// over its own client sessions.
  kIngress = 11,
};
inline constexpr std::uint32_t kChannelCount = 12;

/// True iff `raw` is a defined channel id (wire-input validation).
inline constexpr bool channel_valid(std::uint32_t raw) {
  return raw >= 1 && raw < kChannelCount;
}

}  // namespace dr::net
