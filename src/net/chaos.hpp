// Fault-injecting transport decorator (DESIGN.md §12): wraps any
// net::Transport endpoint (InProcNetwork and TcpTransport alike) and applies
// adversarial faults to OUTBOUND frames according to a seeded ChaosPlan —
// drop, delay, reorder, duplicate, bandwidth throttling, and scripted
// partitions with a mandatory heal point. This is the live-runtime analogue
// of sim::DelayModel: the simulator's adversary chooses message delays on a
// virtual clock; ChaosTransport chooses frame fates on the real clock, at
// the same seam the protocol stack already programs against.
//
// Determinism contract (the seed-replay property the chaos suite regresses):
// every fault decision is a PURE FUNCTION of (plan seed, from, to, channel,
// per-link sequence number) — no wall-clock entropy, no std::random_device,
// no shared RNG whose consumption order depends on thread interleaving.
// Frames on one (destination, channel) link are numbered in send order by
// the single node thread that produces them, so the k-th frame on a link
// meets the same fate in every run with the same plan. Scripted partitions
// and the token-bucket throttle are functions of elapsed time since start()
// and of the frame sizes, which the plan also pins down. What is NOT
// reproduced bit-identically is OS thread timing; the auditors judge logs,
// not timings, so a replayed seed re-checks the same adversarial schedule.
//
// Model fidelity: all injected delays are finite and partitions must heal
// (enforced by DR_REQUIRE), so the asynchronous model's liveness assumption
// — eventual delivery between correct processes — is preserved in the
// limit. Frame LOSS is modelled the way a real stack experiences it: the
// link layer retransmits a lost frame after a seeded retransmission timeout
// (each attempt's fate drawn from the same pure per-frame hash stream, with
// a forced success after kMaxLossStreak losses). Bracha assumes reliable
// point-to-point channels — dropping an ECHO/READY outright with no
// retransmit would put the run outside the paper's model, and the whole
// cluster can wedge in one round with no frontier lag for catch-up sync to
// notice. Loss therefore injects RTO-sized latency spikes, reordering, and
// duplicate-looking retries rather than silent holes. Scripted partitions
// follow the same philosophy: a partition is a link OUTAGE, not frame loss
// — frames sent into the window are held and delivered after the heal
// point, exactly as TCP retransmission carries data across a temporary
// cut. (Dropping them outright can wedge the cluster outside the model:
// if the majority side cannot advance — say it hosts the Byzantine seat —
// no frontier lag ever develops and catch-up sync never fires.) True frame
// loss still exists where the system really loses frames: a crashed node's
// endpoint drops everything sent while it is down, which is what the churn
// soaks + catch-up sync exercise. Loopback (self-send) frames are never
// faulted: a node's own inbox is process-internal state, not a network
// link.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <queue>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "net/transport.hpp"

namespace dr::net {

/// Fault intensities for one class of links. Probabilities in [0, 1];
/// delays in microseconds. Defaults are all-zero (transparent pass-through).
struct LinkFaults {
  double drop = 0.0;       ///< P(one transmission attempt is lost)
  double duplicate = 0.0;  ///< P(frame delivered twice)
  double reorder = 0.0;    ///< P(frame held back so successors overtake it)
  std::uint64_t delay_min_us = 0;  ///< uniform per-frame latency, lower bound
  std::uint64_t delay_max_us = 0;  ///< upper bound (inclusive)
  /// Extra holdback applied to reordered frames, on top of the base delay.
  std::uint64_t reorder_holdback_us = 5'000;
  /// Link-layer retransmission timeout: each lost attempt adds this much
  /// latency before the next try (see the model-fidelity note above).
  std::uint64_t retransmit_us = 30'000;
  /// Token-bucket bandwidth cap per destination link; 0 = unlimited.
  std::uint64_t bytes_per_sec = 0;

  bool any() const {
    return drop > 0 || duplicate > 0 || reorder > 0 || delay_max_us > 0 ||
           bytes_per_sec > 0;
  }
};

/// One scripted partition window: frames crossing the {group_a, rest} cut
/// while start_us <= elapsed < heal_us are held back and delivered after
/// heal_us (link outage semantics — see the model-fidelity note above).
/// heal_us must be finite and past start_us — a partition that never heals
/// would violate the model's eventual-delivery assumption outright.
struct PartitionSpec {
  std::uint64_t start_us = 0;
  std::uint64_t heal_us = 0;
  std::vector<ProcessId> group_a;

  bool separates(ProcessId a, ProcessId b) const;
};

/// The full seeded fault schedule for one run. Every endpoint of a cluster
/// shares one plan; per-link independence comes from keying decisions on
/// (from, to, channel, seq), not from per-endpoint RNG state.
struct ChaosPlan {
  std::uint64_t seed = 1;
  /// Faults applied to every channel without an override.
  LinkFaults base;
  /// Per-channel overrides (e.g. drop only Channel::kSync traffic).
  std::vector<std::pair<Channel, LinkFaults>> per_channel;
  std::vector<PartitionSpec> partitions;

  /// Loss streaks longer than this are forced through on the next attempt,
  /// keeping worst-case injected latency finite even at drop = 1.0.
  static constexpr std::uint32_t kMaxLossStreak = 4;

  /// Deterministic fate of the seq-th frame from `from` to `to` on
  /// `channel`. Pure function of the plan — the seed-replay contract.
  struct Decision {
    /// Transmission attempts lost before the one that goes through; each
    /// adds retransmit_us to the frame's latency (0 = clean first try).
    std::uint32_t lost_attempts = 0;
    bool duplicate = false;
    std::uint64_t delay_us = 0;      ///< base injected latency
    std::uint64_t holdback_us = 0;   ///< extra reorder holdback
    std::uint64_t duplicate_gap_us = 0;  ///< echo's spacing after the original
  };
  Decision decide(ProcessId from, ProcessId to, Channel channel,
                  std::uint64_t seq) const;

  const LinkFaults& faults_for(Channel channel) const;

  /// True iff a scripted partition currently severs from -> to.
  bool partitioned(ProcessId from, ProcessId to, std::uint64_t elapsed_us) const;

  /// Latest heal point among the partitions currently severing from -> to,
  /// or 0 when the pair is connected — the earliest time a frame sent now
  /// can come out of the outage.
  std::uint64_t partition_heal_us(ProcessId from, ProcessId to,
                                  std::uint64_t elapsed_us) const;

  /// Human-readable one-line schedule, printed next to the seed on any soak
  /// violation so the failing run can be replayed and diffed.
  std::string describe() const;

  /// Largest injected latency this plan can produce (delay + holdback),
  /// across base and overrides. Finite by construction; tests use it to
  /// bound "eventually".
  std::uint64_t max_injected_delay_us() const;

  /// Derives a full randomized schedule from one seed — the generator the
  /// chaos soak sweeps. `allow_partition` gates the scripted-partition
  /// clause (some suites script their own). All randomness flows through
  /// Xoshiro256(seed): same seed, same plan, bit-identical.
  static ChaosPlan randomized(std::uint64_t seed, std::uint32_t n,
                              bool allow_partition = true);
};

/// Monotonic fault counters, readable while the transport runs.
struct ChaosStats {
  std::atomic<std::uint64_t> forwarded{0};  ///< frames passed through untouched
  std::atomic<std::uint64_t> drops{0};  ///< lost attempts (healed by retransmit)
  /// Frames held back by a partition window, delivered after its heal point.
  std::atomic<std::uint64_t> partition_delays{0};
  std::atomic<std::uint64_t> delays{0};
  std::atomic<std::uint64_t> duplicates{0};
  std::atomic<std::uint64_t> reorders{0};
  std::atomic<std::uint64_t> throttled{0};
  /// Frames still queued for delayed delivery when stop() discarded them
  /// (in-flight packets lost at shutdown, as on a real wire).
  std::atomic<std::uint64_t> dropped_at_stop{0};
};

class ChaosTransport final : public Transport {
 public:
  ChaosTransport(std::unique_ptr<Transport> inner, ChaosPlan plan);
  ~ChaosTransport() override;

  ProcessId pid() const override { return inner_->pid(); }
  const Committee& committee() const override { return inner_->committee(); }

  void start(RecvFn recv) override;
  void send(ProcessId to, Channel channel, Payload payload) override;
  void stop() override;

  std::uint64_t backpressure_overflows() const override {
    return inner_->backpressure_overflows();
  }
  TransportCounters counters() const override;

  const ChaosPlan& plan() const { return plan_; }
  const ChaosStats& stats() const { return stats_; }

  /// Microseconds since construction — the clock partition windows and the
  /// token bucket run on.
  std::uint64_t elapsed_us() const;

 private:
  struct Pending {
    std::uint64_t due_us = 0;
    std::uint64_t order = 0;  ///< FIFO tiebreak for equal due times
    ProcessId to = 0;
    Channel channel = Channel::kBracha;
    Payload payload;
  };
  struct PendingLater {
    bool operator()(const Pending& a, const Pending& b) const {
      if (a.due_us != b.due_us) return a.due_us > b.due_us;
      return a.order > b.order;
    }
  };

  void scheduler_loop();
  void enqueue(std::uint64_t due_us, ProcessId to, Channel channel,
               Payload payload);

  std::unique_ptr<Transport> inner_;
  ChaosPlan plan_;
  ChaosStats stats_;
  std::chrono::steady_clock::time_point epoch_;

  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<std::uint64_t> seq_;              ///< per (to, channel) counters
  std::vector<std::uint64_t> bucket_free_us_;   ///< per-destination throttle
  std::priority_queue<Pending, std::vector<Pending>, PendingLater> pending_;
  std::uint64_t next_order_ = 0;
  bool running_ = false;
  std::thread scheduler_;
};

}  // namespace dr::net
