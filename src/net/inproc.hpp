// In-process transport: n endpoints in one OS process, one per node thread,
// exchanging frames through direct handoff into each receiver's inbox (the
// receive hook). No serialization, no syscalls — this is the "as fast as
// the hardware allows" configuration, and the one the auditor cross-check
// tests run under sanitizers. Backpressure comes from the receiving node's
// bounded inbox: a sender blocks inside the receiver's recv hook until the
// consumer drains (see net::Inbox for the deadlock-freedom escape hatch).
#pragma once

#include <atomic>
#include <memory>
#include <shared_mutex>

#include "net/transport.hpp"

namespace dr::net {

class InProcNetwork {
 public:
  explicit InProcNetwork(Committee committee);

  const Committee& committee() const { return shared_->committee; }

  /// Creates the endpoint for `pid`. At most one endpoint per pid may be
  /// live at a time, but a pid whose previous endpoint has been stopped and
  /// destroyed may be re-created — that is how Cluster::restart_node crashes
  /// and revives a node on the same simulated network. Endpoints keep the
  /// shared registry alive, so the network object itself may be destroyed
  /// first.
  std::unique_ptr<Transport> endpoint(ProcessId pid);

 private:
  friend class InProcEndpoint;
  struct Peer {
    Transport::RecvFn recv;  ///< guarded by mu
    /// Serializes delivery against start/stop: senders hold it shared while
    /// inside recv, so stop() (exclusive) cannot return — and the endpoint's
    /// owner cannot destroy the receiving node — while a delivery is still
    /// running in another thread.
    std::shared_mutex mu;
    std::atomic<bool> ready{false};
    /// Set on first start and never cleared. A send to a not-ready peer that
    /// was ever up drops immediately (the peer crashed or is restarting —
    /// stalling the sender would stall its whole node loop); a send to a
    /// never-yet-started peer tolerates startup skew by briefly waiting.
    std::atomic<bool> ever_ready{false};
  };
  struct Shared {
    Committee committee;
    std::vector<Peer> peers;
  };
  std::shared_ptr<Shared> shared_;
};

}  // namespace dr::net
