// In-process transport: n endpoints in one OS process, one per node thread,
// exchanging frames through direct handoff into each receiver's inbox (the
// receive hook). No serialization, no syscalls — this is the "as fast as
// the hardware allows" configuration, and the one the auditor cross-check
// tests run under sanitizers. Backpressure comes from the receiving node's
// bounded inbox: a sender blocks inside the receiver's recv hook until the
// consumer drains (see net::Inbox for the deadlock-freedom escape hatch).
#pragma once

#include <atomic>
#include <memory>

#include "net/transport.hpp"

namespace dr::net {

class InProcNetwork {
 public:
  explicit InProcNetwork(Committee committee);

  const Committee& committee() const { return shared_->committee; }

  /// Creates the endpoint for `pid`. Call exactly once per pid. Endpoints
  /// keep the shared registry alive, so the network object itself may be
  /// destroyed first.
  std::unique_ptr<Transport> endpoint(ProcessId pid);

 private:
  friend class InProcEndpoint;
  struct Peer {
    Transport::RecvFn recv;
    std::atomic<bool> ready{false};
  };
  struct Shared {
    Committee committee;
    std::vector<Peer> peers;
  };
  std::shared_ptr<Shared> shared_;
};

}  // namespace dr::net
