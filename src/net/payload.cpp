#include "net/payload.hpp"

#include <atomic>

#include "common/assert.hpp"

namespace dr::net {
namespace {

std::atomic<std::uint64_t> g_copy_count{0};
std::atomic<std::uint64_t> g_copied_bytes{0};

const crypto::Digest& empty_digest() {
  static const crypto::Digest d = crypto::sha256(BytesView{});
  return d;
}

}  // namespace

// GCC 12's middle end, after inlining make_shared<const Bytes> plus the
// moved-from temporary's destructor, reports a spurious
// -Wfree-nonheap-object ("delete at nonzero offset") on this path; no such
// free exists — the vector's allocation moves wholesale into the shared
// buffer.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wfree-nonheap-object"
Payload Payload::copy_of(BytesView data) {
  note_copy(data.size());
  return Payload(Bytes(data.begin(), data.end()));
}
#pragma GCC diagnostic pop

Payload Payload::window(std::size_t offset, std::size_t len) const {
  DR_ASSERT_MSG(offset + len <= size(), "payload window out of range");
  if (len == 0) return Payload{};
  if (offset == 0 && len == size()) return *this;
  return Payload(std::make_shared<const Rep>(rep_->buffer,
                                             rep_->offset + offset, len));
}

const crypto::Digest& Payload::digest() const {
  if (rep_ == nullptr) return empty_digest();
  std::call_once(rep_->digest_once,
                 [&] { rep_->digest_memo = crypto::sha256(view()); });
  return rep_->digest_memo;
}

void Payload::note_copy(std::size_t n) {
  g_copy_count.fetch_add(1, std::memory_order_relaxed);
  g_copied_bytes.fetch_add(n, std::memory_order_relaxed);
}

std::uint64_t Payload::copy_count() {
  return g_copy_count.load(std::memory_order_relaxed);
}

std::uint64_t Payload::copied_bytes() {
  return g_copied_bytes.load(std::memory_order_relaxed);
}

void Payload::reset_copy_counters() {
  g_copy_count.store(0, std::memory_order_relaxed);
  g_copied_bytes.store(0, std::memory_order_relaxed);
}

}  // namespace dr::net
