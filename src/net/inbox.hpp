// Thread-safe MPSC inbox feeding a node's event loop. Many transport/link
// threads push; exactly one consumer drains in batches, so the consumer pays
// one lock round-trip per drain cycle regardless of how many messages are
// pending. The capacity is a soft bound realizing per-link backpressure:
// push() blocks while the inbox is full — but never forever. After a grace
// period it force-enqueues and counts an overflow, trading strict
// boundedness for deadlock freedom (two nodes blocked mid-broadcast into
// each other's full inboxes must not wedge the cluster).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "net/frame.hpp"

namespace dr::net {

class Inbox {
 public:
  explicit Inbox(std::size_t capacity = 1 << 16,
                 std::chrono::milliseconds overflow_grace =
                     std::chrono::milliseconds(100))
      : capacity_(capacity), overflow_grace_(overflow_grace) {}

  /// Blocking producer push with backpressure (see header comment).
  void push(Frame f) {
    std::unique_lock<std::mutex> lk(mu_);
    if (closed_) return;
    if (queue_.size() >= capacity_) {
      if (!not_full_.wait_for(lk, overflow_grace_, [this] {
            return queue_.size() < capacity_ || closed_;
          })) {
        ++overflows_;  // grace expired: overflow rather than deadlock
      }
      if (closed_) return;
    }
    queue_.push_back(std::move(f));
    not_empty_.notify_one();
  }

  /// Non-blocking push that ignores capacity. Used for a node's sends to
  /// itself: the consumer must never block on its own inbox.
  void push_unbounded(Frame f) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (closed_) return;
      queue_.push_back(std::move(f));
    }
    not_empty_.notify_one();
  }

  /// Appends everything pending to `out`. If the inbox is empty, blocks up
  /// to `wait` for the first message. Returns the number appended.
  [[nodiscard]] std::size_t pop_all(std::vector<Frame>& out,
                                    std::chrono::milliseconds wait) {
    std::unique_lock<std::mutex> lk(mu_);
    if (queue_.empty() && !closed_) {
      not_empty_.wait_for(lk, wait,
                          [this] { return !queue_.empty() || closed_; });
    }
    const std::size_t popped = queue_.size();
    for (Frame& f : queue_) out.push_back(std::move(f));
    queue_.clear();
    if (popped > 0) not_full_.notify_all();
    return popped;
  }

  /// Wakes the consumer and turns all future pushes into no-ops.
  void close() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lk(mu_);
    return closed_;
  }
  std::size_t size() const {
    std::lock_guard<std::mutex> lk(mu_);
    return queue_.size();
  }
  std::uint64_t overflows() const {
    std::lock_guard<std::mutex> lk(mu_);
    return overflows_;
  }

 private:
  const std::size_t capacity_;
  const std::chrono::milliseconds overflow_grace_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<Frame> queue_;
  std::uint64_t overflows_ = 0;
  bool closed_ = false;
};

}  // namespace dr::net
