// Point-to-point message carrier for one node endpoint. Implementations:
//   InProcNetwork/endpoint — shared-memory delivery between OS threads in
//     one process (the real-concurrency analogue of sim::Network);
//   TcpTransport — length-prefixed frames (net/frame.hpp) over TCP, with a
//     versioned handshake per link and a bounded per-link send queue.
// Delivery invokes the receive hook from transport- or sender-owned threads;
// the hosting node is expected to queue into its own event loop (node::Node
// routes everything through a net::Inbox) rather than process in place.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "net/frame.hpp"

namespace dr::net {

/// Flat named-counter snapshot a transport exposes for introspection.
/// Structurally identical to metrics::Counters (net/ cannot depend on
/// metrics/); node::Node::counters() merges these under a "transport."
/// prefix so soak runs are auditable from bench/CI artifacts.
using TransportCounters = std::vector<std::pair<std::string, std::uint64_t>>;

class Transport {
 public:
  using RecvFn = std::function<void(Frame f)>;

  virtual ~Transport() = default;

  virtual ProcessId pid() const = 0;
  virtual const Committee& committee() const = 0;

  /// Begins delivering inbound frames to `recv`. Must be called before any
  /// send; `recv` must be thread-safe (it is called from other threads).
  virtual void start(RecvFn recv) = 0;

  /// Queues `payload` for `to`. Self-sends loop back through the recv path
  /// (queued, never synchronous) so protocol code sees uniform semantics.
  /// Blocking is the backpressure mechanism; see the implementations. The
  /// payload buffer is shared, never copied: a broadcast passes the same
  /// Payload to all n sends and only the 12-byte frame header is per-link.
  virtual void send(ProcessId to, Channel channel, Payload payload) = 0;

  /// Stops all transport threads and closes links. After return, no more
  /// recv callbacks fire. Idempotent.
  virtual void stop() = 0;

  /// Sends that overstayed a full send queue's grace period (forced through
  /// rather than deadlocking; nonzero means the cluster is overdriven).
  virtual std::uint64_t backpressure_overflows() const { return 0; }

  /// Implementation-specific counters (chaos fault injection, TCP protocol
  /// errors, ...). Decorators append their own to the wrapped transport's.
  virtual TransportCounters counters() const { return {}; }
};

}  // namespace dr::net
