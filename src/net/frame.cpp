#include "net/frame.hpp"

namespace dr::net {

FrameHeader encode_frame_header(ProcessId from, Channel channel,
                                std::size_t payload_len) {
  DR_ASSERT_MSG(payload_len <= kMaxFramePayload, "frame payload too large");
  FrameHeader h{};
  const auto put_u32 = [&](std::size_t at, std::uint32_t v) {
    for (std::size_t i = 0; i < 4; ++i) {
      h[at + i] = static_cast<std::uint8_t>(v >> (8 * i));
    }
  };
  put_u32(0, static_cast<std::uint32_t>(payload_len));
  put_u32(4, from);
  put_u32(8, static_cast<std::uint32_t>(channel));
  return h;
}

Bytes encode_frame(ProcessId from, Channel channel, BytesView payload) {
  const FrameHeader h = encode_frame_header(from, channel, payload.size());
  ByteWriter w(kFrameHeaderBytes + payload.size());
  w.raw(BytesView{h.data(), h.size()});
  w.raw(payload);
  return std::move(w).take();
}

Bytes encode_handshake(const Handshake& hs) {
  ByteWriter w(kHandshakeWireBytes);
  w.u32(hs.magic);
  w.u16(hs.version);
  w.u32(hs.pid);
  w.u32(hs.n);
  w.u32(hs.f);
  return std::move(w).take();
}

Expected<Handshake> decode_handshake(BytesView data) {
  ByteReader in(data);
  Handshake hs;
  hs.magic = in.u32();
  hs.version = in.u16();
  hs.pid = in.u32();
  hs.n = in.u32();
  hs.f = in.u32();
  if (!in.done()) return Expected<Handshake>::failure("handshake truncated");
  if (hs.magic != kWireMagic) return Expected<Handshake>::failure("bad magic");
  if (hs.version != kWireVersion) {
    return Expected<Handshake>::failure("unsupported wire version");
  }
  return hs;
}

Bytes encode_vertex_request(const VertexRequest& req) {
  DR_ASSERT_MSG(req.from_round >= 1 && req.to_round >= req.from_round &&
                    req.to_round - req.from_round < kMaxSyncRoundSpan,
                "sync request range malformed");
  ByteWriter w(1 + 8 + 8);
  w.u8(kSyncRequestTag);
  w.u64(req.from_round);
  w.u64(req.to_round);
  return std::move(w).take();
}

Bytes encode_vertex_response(const VertexResponse& resp) {
  DR_ASSERT_MSG(resp.vertices.size() <= kMaxSyncVertices,
                "sync response overfull");
  std::size_t payload_bytes = 0;
  for (const SyncVertex& sv : resp.vertices) payload_bytes += sv.payload.size();
  ByteWriter w(1 + 8 + 8 + 4 + resp.vertices.size() * (4 + 8 + 4) +
               payload_bytes);
  w.u8(kSyncResponseTag);
  w.u64(resp.from_round);
  w.u64(resp.to_round);
  w.u32(static_cast<std::uint32_t>(resp.vertices.size()));
  for (const SyncVertex& sv : resp.vertices) {
    w.u32(sv.source);
    w.u64(sv.round);
    w.blob(BytesView(sv.payload));
  }
  return std::move(w).take();
}

Expected<SyncMessage> decode_sync_message(BytesView data, std::uint32_t n) {
  using Out = Expected<SyncMessage>;
  ByteReader in(data);
  const std::uint8_t tag = in.u8();
  SyncMessage msg;
  if (tag == kSyncRequestTag) {
    VertexRequest req;
    req.from_round = in.u64();
    req.to_round = in.u64();
    if (!in.ok() || !in.done()) return Out::failure("sync request truncated");
    if (req.from_round < 1 || req.to_round < req.from_round) {
      return Out::failure("sync request range inverted");
    }
    if (req.to_round - req.from_round >= kMaxSyncRoundSpan) {
      return Out::failure("sync request range too wide");
    }
    msg.request = req;
    return msg;
  }
  if (tag == kSyncResponseTag) {
    VertexResponse resp;
    resp.from_round = in.u64();
    resp.to_round = in.u64();
    const std::uint32_t count = in.u32();
    if (!in.ok()) return Out::failure("sync response truncated");
    if (resp.from_round < 1 || resp.to_round < resp.from_round) {
      return Out::failure("sync response range inverted");
    }
    if (count > kMaxSyncVertices) {
      return Out::failure("sync response overfull");
    }
    resp.vertices.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      SyncVertex sv;
      sv.source = in.u32();
      sv.round = in.u64();
      sv.payload = in.blob();
      if (!in.ok()) return Out::failure("sync response truncated");
      if (n != 0 && sv.source >= n) {
        return Out::failure("sync vertex source out of range");
      }
      if (sv.round < resp.from_round || sv.round > resp.to_round) {
        return Out::failure("sync vertex outside the response range");
      }
      if (sv.payload.size() > kMaxFramePayload) {
        return Out::failure("sync vertex payload oversized");
      }
      resp.vertices.push_back(std::move(sv));
    }
    if (!in.done()) return Out::failure("sync response has trailing bytes");
    msg.response = std::move(resp);
    return msg;
  }
  return Out::failure("unknown sync message tag");
}

void FrameDecoder::feed(BytesView chunk) {
  if (dead_) return;
  // Compact once the consumed prefix dominates the buffer, so long-lived
  // links do not grow their buffer without bound.
  if (pos_ > 0 && pos_ * 2 >= buf_.size()) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  buf_.insert(buf_.end(), chunk.begin(), chunk.end());
}

// GCC 12 false positive: inlining Payload's make_shared construction from
// the temporary Bytes below trips -Wfree-nonheap-object (see
// payload.cpp::copy_of for the identical pattern and rationale).
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wfree-nonheap-object"
std::optional<Frame> FrameDecoder::next() {
  if (dead_) return std::nullopt;
  // Consumed prefix can never pass the write cursor; a violation means the
  // header/payload accounting below drifted and the decoder would slice
  // frames at wrong offsets from then on.
  DR_INVARIANT(pos_ <= buf_.size(),
               "decoder consumed past the end of its buffer");
  const std::size_t avail = buf_.size() - pos_;
  if (avail < kFrameHeaderBytes) return std::nullopt;
  ByteReader in(BytesView{buf_.data() + pos_, avail});
  const std::uint32_t len = in.u32();
  const std::uint32_t from = in.u32();
  const std::uint32_t raw_channel = in.u32();
  if (len > kMaxFramePayload) {
    fail("oversized frame length prefix");
    return std::nullopt;
  }
  if (!channel_valid(raw_channel)) {
    fail("unknown channel id");
    return std::nullopt;
  }
  if (n_ != 0 && from >= n_) {
    fail("frame source out of range");
    return std::nullopt;
  }
  if (avail < kFrameHeaderBytes + len) return std::nullopt;  // partial frame
  Frame f;
  f.from = from;
  f.channel = static_cast<Channel>(raw_channel);
  f.payload = Payload(in.raw(len));
  pos_ += kFrameHeaderBytes + len;
  return f;
}
#pragma GCC diagnostic pop

}  // namespace dr::net
