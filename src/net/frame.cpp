#include "net/frame.hpp"

namespace dr::net {

Bytes encode_frame(ProcessId from, Channel channel, BytesView payload) {
  DR_ASSERT_MSG(payload.size() <= kMaxFramePayload, "frame payload too large");
  ByteWriter w(kFrameHeaderBytes + payload.size());
  w.u32(static_cast<std::uint32_t>(payload.size()));
  w.u32(from);
  w.u32(static_cast<std::uint32_t>(channel));
  w.raw(payload);
  return std::move(w).take();
}

Bytes encode_handshake(const Handshake& hs) {
  ByteWriter w(kHandshakeWireBytes);
  w.u32(hs.magic);
  w.u16(hs.version);
  w.u32(hs.pid);
  w.u32(hs.n);
  w.u32(hs.f);
  return std::move(w).take();
}

Expected<Handshake> decode_handshake(BytesView data) {
  ByteReader in(data);
  Handshake hs;
  hs.magic = in.u32();
  hs.version = in.u16();
  hs.pid = in.u32();
  hs.n = in.u32();
  hs.f = in.u32();
  if (!in.done()) return Expected<Handshake>::failure("handshake truncated");
  if (hs.magic != kWireMagic) return Expected<Handshake>::failure("bad magic");
  if (hs.version != kWireVersion) {
    return Expected<Handshake>::failure("unsupported wire version");
  }
  return hs;
}

void FrameDecoder::feed(BytesView chunk) {
  if (dead_) return;
  // Compact once the consumed prefix dominates the buffer, so long-lived
  // links do not grow their buffer without bound.
  if (pos_ > 0 && pos_ * 2 >= buf_.size()) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  buf_.insert(buf_.end(), chunk.begin(), chunk.end());
}

std::optional<Frame> FrameDecoder::next() {
  if (dead_) return std::nullopt;
  // Consumed prefix can never pass the write cursor; a violation means the
  // header/payload accounting below drifted and the decoder would slice
  // frames at wrong offsets from then on.
  DR_INVARIANT(pos_ <= buf_.size(),
               "decoder consumed past the end of its buffer");
  const std::size_t avail = buf_.size() - pos_;
  if (avail < kFrameHeaderBytes) return std::nullopt;
  ByteReader in(BytesView{buf_.data() + pos_, avail});
  const std::uint32_t len = in.u32();
  const std::uint32_t from = in.u32();
  const std::uint32_t raw_channel = in.u32();
  if (len > kMaxFramePayload) {
    fail("oversized frame length prefix");
    return std::nullopt;
  }
  if (!channel_valid(raw_channel)) {
    fail("unknown channel id");
    return std::nullopt;
  }
  if (n_ != 0 && from >= n_) {
    fail("frame source out of range");
    return std::nullopt;
  }
  if (avail < kFrameHeaderBytes + len) return std::nullopt;  // partial frame
  Frame f;
  f.from = from;
  f.channel = static_cast<Channel>(raw_channel);
  f.payload = in.raw(len);
  pos_ += kFrameHeaderBytes + len;
  return f;
}

}  // namespace dr::net
