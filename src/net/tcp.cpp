#include "net/tcp.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/assert.hpp"
#include "common/log.hpp"

namespace dr::net {

namespace {

/// Writes the whole buffer, riding out partial writes and EINTR. MSG_NOSIGNAL
/// turns a dead peer into an error return instead of SIGPIPE.
bool write_all(int fd, const std::uint8_t* data, std::size_t len) {
  std::size_t off = 0;
  while (off < len) {
    const ssize_t k = ::send(fd, data + off, len - off, MSG_NOSIGNAL);
    if (k < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(k);
  }
  return true;
}

/// Writes one frame as a header+payload iovec pair, riding out partial
/// writes and EINTR without ever concatenating the two buffers — the payload
/// iovec points straight into the refcounted buffer shared across links.
bool writev_frame(int fd, const std::uint8_t* header, std::size_t header_len,
                  const std::uint8_t* payload, std::size_t payload_len) {
  std::size_t off = 0;
  const std::size_t total = header_len + payload_len;
  while (off < total) {
    iovec iov[2];
    int iovcnt = 0;
    if (off < header_len) {
      iov[iovcnt].iov_base = const_cast<std::uint8_t*>(header + off);
      iov[iovcnt].iov_len = header_len - off;
      ++iovcnt;
    }
    const std::size_t p_off = off > header_len ? off - header_len : 0;
    if (p_off < payload_len) {
      iov[iovcnt].iov_base = const_cast<std::uint8_t*>(payload + p_off);
      iov[iovcnt].iov_len = payload_len - p_off;
      ++iovcnt;
    }
    msghdr msg{};
    msg.msg_iov = iov;
    msg.msg_iovlen = static_cast<std::size_t>(iovcnt);
    const ssize_t k = ::sendmsg(fd, &msg, MSG_NOSIGNAL);
    if (k < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(k);
  }
  return true;
}

/// Reads exactly `len` bytes; false on EOF/error.
bool read_exact(int fd, std::uint8_t* data, std::size_t len) {
  std::size_t off = 0;
  while (off < len) {
    const ssize_t k = ::recv(fd, data + off, len - off, 0);
    if (k < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (k == 0) return false;
    off += static_cast<std::size_t>(k);
  }
  return true;
}

sockaddr_in make_addr(const TcpPeer& peer) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(peer.port);
  const char* host = peer.host == "localhost" ? "127.0.0.1" : peer.host.c_str();
  DR_ASSERT_MSG(::inet_pton(AF_INET, host, &addr.sin_addr) == 1,
                "TcpTransport: host must be a numeric IPv4 address");
  return addr;
}

void set_nodelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

std::vector<std::uint16_t> pick_free_ports(std::size_t count) {
  std::vector<std::uint16_t> ports;
  std::vector<int> fds;
  for (std::size_t i = 0; i < count; ++i) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    DR_ASSERT(fd >= 0);
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    DR_ASSERT(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0);
    socklen_t len = sizeof(addr);
    DR_ASSERT(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0);
    ports.push_back(ntohs(addr.sin_port));
    fds.push_back(fd);
  }
  for (int fd : fds) ::close(fd);
  return ports;
}

TcpTransport::TcpTransport(Committee committee, ProcessId pid,
                           std::vector<TcpPeer> peers, TcpOptions opts)
    : committee_(committee), pid_(pid), peers_(std::move(peers)), opts_(opts) {
  DR_ASSERT_MSG(committee_.valid(), "TcpTransport: committee must satisfy n > 3f");
  DR_ASSERT(pid_ < committee_.n);
  DR_ASSERT_MSG(peers_.size() == committee_.n,
                "TcpTransport: need one listen address per committee member");
}

TcpTransport::~TcpTransport() { stop(); }

void TcpTransport::start(RecvFn recv) {
  DR_ASSERT_MSG(!running_.load(), "TcpTransport::start called twice");
  recv_ = std::move(recv);

  const int lfd = ::socket(AF_INET, SOCK_STREAM, 0);
  DR_ASSERT(lfd >= 0);
  int one = 1;
  ::setsockopt(lfd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = make_addr(peers_[pid_]);
  DR_ASSERT_MSG(
      ::bind(lfd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0,
      "TcpTransport: bind failed (port in use?)");
  DR_ASSERT(::listen(lfd, static_cast<int>(committee_.n) + 8) == 0);
  listen_fd_.store(lfd, std::memory_order_release);

  running_.store(true);
  acceptor_ = std::thread([this] { acceptor_loop(); });

  out_.resize(committee_.n);
  for (ProcessId peer = 0; peer < committee_.n; ++peer) {
    if (peer == pid_) continue;
    out_[peer] = std::make_unique<OutLink>();
    out_[peer]->peer = peer;
    OutLink* link = out_[peer].get();
    link->writer = std::thread([this, link] { writer_loop(*link); });
  }
}

void TcpTransport::send(ProcessId to, Channel channel, Payload payload) {
  DR_ASSERT(to < committee_.n);
  if (!running_.load(std::memory_order_acquire)) return;
  if (to == pid_) {
    // Loop self-sends straight into the recv path; the node queues them,
    // preserving the "never synchronous" delivery contract.
    recv_(Frame{pid_, channel, std::move(payload)});
    return;
  }
  OutFrame frame;
  frame.header = encode_frame_header(pid_, channel, payload.size());
  frame.payload = std::move(payload);
  enqueue(*out_[to], std::move(frame));
}

void TcpTransport::enqueue(OutLink& link, OutFrame frame) {
  std::unique_lock<std::mutex> lk(link.mu);
  if (link.closed) return;
  if (link.queue.size() >= opts_.send_queue_capacity) {
    if (!link.cv.wait_for(lk, opts_.overflow_grace, [&] {
          return link.queue.size() < opts_.send_queue_capacity || link.closed;
        })) {
      overflows_.fetch_add(1, std::memory_order_relaxed);
    }
    if (link.closed) return;
  }
  link.queue.push_back(std::move(frame));
  link.cv.notify_all();
}

int TcpTransport::dial(const TcpPeer& peer) const {
  const auto deadline = std::chrono::steady_clock::now() + opts_.connect_timeout;
  sockaddr_in addr = make_addr(peer);
  while (running_.load(std::memory_order_acquire)) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd >= 0 &&
        ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
      set_nodelay(fd);
      return fd;
    }
    if (fd >= 0) ::close(fd);
    if (std::chrono::steady_clock::now() > deadline) break;
    // The peer's listener may simply not be up yet (processes start in any
    // order); retry until the deadline.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  return -1;
}

void TcpTransport::writer_loop(OutLink& link) {
  const int fd = dial(peers_[link.peer]);
  {
    std::lock_guard<std::mutex> lk(link.mu);
    if (fd < 0) {
      DR_LOG_INFO("tcp p%u: could not reach peer %u", pid_, link.peer);
      link.closed = true;
      return;
    }
    link.fd = fd;  // published so stop() can shutdown a blocked write
  }
  // A link-level closer that keeps fd bookkeeping race-free: the fd is
  // closed exactly once, under the link mutex.
  auto close_link = [&] {
    std::lock_guard<std::mutex> lk(link.mu);
    link.closed = true;
    if (link.fd >= 0) {
      ::close(link.fd);
      link.fd = -1;
    }
    link.cv.notify_all();
  };

  const Bytes hello = encode_handshake(
      Handshake{kWireMagic, kWireVersion, pid_, committee_.n, committee_.f});
  if (!write_all(fd, hello.data(), hello.size())) {
    close_link();
    return;
  }

  std::vector<OutFrame> batch;
  while (true) {
    {
      std::unique_lock<std::mutex> lk(link.mu);
      link.cv.wait(lk, [&] { return !link.queue.empty() || link.closed; });
      if (link.queue.empty()) break;  // closed and drained
      while (!link.queue.empty()) {
        batch.push_back(std::move(link.queue.front()));
        link.queue.pop_front();
      }
      link.cv.notify_all();  // wake senders blocked on a full queue
    }
    for (OutFrame& frame : batch) {
      if (!writev_frame(fd, frame.header.data(), frame.header.size(),
                        frame.payload.data(), frame.payload.size())) {
        DR_LOG_INFO("tcp p%u: link to %u died mid-write", pid_, link.peer);
        close_link();
        return;
      }
    }
    batch.clear();
  }
  close_link();
}

void TcpTransport::acceptor_loop() {
  const int lfd = listen_fd_.load(std::memory_order_acquire);
  while (running_.load(std::memory_order_acquire)) {
    const int fd = ::accept(lfd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener closed by stop()
    }
    set_nodelay(fd);
    std::lock_guard<std::mutex> lk(readers_mu_);
    if (!running_.load(std::memory_order_acquire)) {
      ::close(fd);
      break;
    }
    const std::size_t idx = reader_fds_.size();
    reader_fds_.push_back(fd);
    readers_.emplace_back([this, idx, fd] { reader_loop(idx, fd); });
  }
}

void TcpTransport::reader_loop(std::size_t idx, int fd) {
  // The fd is closed on every exit path, under readers_mu_, and the slot is
  // tombstoned so stop() never touches a recycled descriptor.
  auto close_reader = [&] {
    std::lock_guard<std::mutex> lk(readers_mu_);
    ::close(fd);
    reader_fds_[idx] = -1;
  };

  std::uint8_t hs_buf[kHandshakeWireBytes];
  if (!read_exact(fd, hs_buf, sizeof(hs_buf))) {
    close_reader();
    return;
  }
  const auto hs = decode_handshake(BytesView{hs_buf, sizeof(hs_buf)});
  if (!hs.ok() || hs.value().pid >= committee_.n ||
      hs.value().n != committee_.n || hs.value().f != committee_.f ||
      hs.value().pid == pid_) {
    // Wrong version / wrong committee / forged id: refuse the link. Closing
    // is the whole error protocol — the dialer sees EOF and gives up.
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    DR_LOG_INFO("tcp p%u: rejected handshake (%s)", pid_,
                hs.ok() ? "committee/pid mismatch" : hs.error().c_str());
    close_reader();
    return;
  }
  const ProcessId peer = hs.value().pid;

  FrameDecoder decoder(committee_.n);
  std::uint8_t buf[64 * 1024];
  while (running_.load(std::memory_order_acquire)) {
    const ssize_t k = ::recv(fd, buf, sizeof(buf), 0);
    if (k < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (k == 0) break;  // clean EOF
    decoder.feed(BytesView{buf, static_cast<std::size_t>(k)});
    while (auto frame = decoder.next()) {
      if (frame->from != peer) {
        // A frame must carry its link owner's id; anything else is a bug or
        // an impersonation attempt.
        protocol_errors_.fetch_add(1, std::memory_order_relaxed);
        DR_LOG_INFO("tcp p%u: frame source %u on link owned by %u", pid_,
                    frame->from, peer);
        close_reader();
        return;
      }
      recv_(std::move(*frame));
    }
    if (decoder.dead()) {
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      DR_LOG_INFO("tcp p%u: framing violation from %u: %s", pid_, peer,
                  decoder.error().c_str());
      break;
    }
  }
  close_reader();
}

void TcpTransport::stop() {
  if (!running_.exchange(false)) return;

  // Unblock the acceptor, then the readers, then drain the writers. The
  // listener fd is closed only after the acceptor has joined, so the blocked
  // accept() is woken by shutdown() and never races a descriptor reuse.
  const int lfd = listen_fd_.exchange(-1, std::memory_order_acq_rel);
  if (lfd >= 0) ::shutdown(lfd, SHUT_RDWR);
  if (acceptor_.joinable()) acceptor_.join();
  if (lfd >= 0) ::close(lfd);

  {
    std::lock_guard<std::mutex> lk(readers_mu_);
    for (int fd : reader_fds_) {
      if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
    }
  }
  for (std::thread& t : readers_) {
    if (t.joinable()) t.join();
  }

  for (auto& link : out_) {
    if (!link) continue;
    {
      std::lock_guard<std::mutex> lk(link->mu);
      link->closed = true;
      // A writer stuck in send() on a full socket whose peer is gone must
      // be kicked out, or join() below would hang.
      if (link->fd >= 0) ::shutdown(link->fd, SHUT_RDWR);
    }
    link->cv.notify_all();
    if (link->writer.joinable()) link->writer.join();
  }
}

}  // namespace dr::net
