// Snapshot of one process's delivered/commit state, the companion of the
// WAL: compaction writes a snapshot at the GC floor, then rewrites the WAL
// keeping only rounds >= floor. Recovery seeds the ordering layer from the
// snapshot (decided wave, delivered-vertex ids at or above the floor, the
// full delivered/commit logs for the auditors) and replays the trimmed WAL
// on top. The file is written atomically (temp + rename, see store.cpp) and
// carries a trailing CRC-32 over everything before it, so a torn snapshot is
// detected as a whole rather than half-applied.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.hpp"
#include "common/expected.hpp"
#include "common/types.hpp"
#include "core/records.hpp"

namespace dr::storage {

inline constexpr std::uint32_t kSnapMagic = 0x504E5344;  // "DSNP" LE
/// v2 adds the ordering-personality stamp (kind + rounds_per_wave), so
/// recovery can refuse to replay a log written under a different commit
/// rule. v1 snapshots still decode, defaulting to DagRider's shape.
inline constexpr std::uint16_t kSnapVersion = 2;

/// Defensive caps mirroring the WAL codec: a corrupt count field must not
/// make recovery allocate gigabytes.
inline constexpr std::uint32_t kMaxSnapshotDelivered = 1u << 24;
inline constexpr std::uint32_t kMaxSnapshotCommits = 1u << 22;

struct Snapshot {
  Committee committee;
  ProcessId pid = 0;
  Round gc_floor = 0;
  Wave decided_wave = 0;
  /// core::OrderingKind of the writer, stored raw to keep this header free
  /// of the ordering layer. Wave/commit state is only meaningful under the
  /// personality (and wave geometry) that produced it.
  std::uint8_t ordering = 0;
  Round rounds_per_wave = kRoundsPerWave;
  std::vector<core::DeliveredRecord> delivered;
  std::vector<core::CommitRecord> commits;
};

Bytes encode_snapshot(const Snapshot& snap);

/// Rejects short input, wrong magic/version, count fields beyond the caps,
/// and any CRC mismatch. Committee/pid consistency against the recovering
/// process is the caller's job (VertexStore::recover knows the expected
/// values).
Expected<Snapshot> decode_snapshot(BytesView data);

}  // namespace dr::storage
