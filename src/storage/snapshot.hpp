// Snapshot of one process's delivered/commit state, the companion of the
// WAL: compaction writes a snapshot at the GC floor, then rewrites the WAL
// keeping only rounds >= floor. Recovery seeds the ordering layer from the
// snapshot (decided wave, delivered-vertex ids at or above the floor, the
// full delivered/commit logs for the auditors) and replays the trimmed WAL
// on top. The file is written atomically (temp + rename, see store.cpp) and
// carries a trailing CRC-32 over everything before it, so a torn snapshot is
// detected as a whole rather than half-applied.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.hpp"
#include "common/expected.hpp"
#include "common/types.hpp"
#include "core/records.hpp"

namespace dr::storage {

inline constexpr std::uint32_t kSnapMagic = 0x504E5344;  // "DSNP" LE
inline constexpr std::uint16_t kSnapVersion = 1;

/// Defensive caps mirroring the WAL codec: a corrupt count field must not
/// make recovery allocate gigabytes.
inline constexpr std::uint32_t kMaxSnapshotDelivered = 1u << 24;
inline constexpr std::uint32_t kMaxSnapshotCommits = 1u << 22;

struct Snapshot {
  Committee committee;
  ProcessId pid = 0;
  Round gc_floor = 0;
  Wave decided_wave = 0;
  std::vector<core::DeliveredRecord> delivered;
  std::vector<core::CommitRecord> commits;
};

Bytes encode_snapshot(const Snapshot& snap);

/// Rejects short input, wrong magic/version, count fields beyond the caps,
/// and any CRC mismatch. Committee/pid consistency against the recovering
/// process is the caller's job (VertexStore::recover knows the expected
/// values).
Expected<Snapshot> decode_snapshot(BytesView data);

}  // namespace dr::storage
