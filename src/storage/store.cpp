#include "storage/store.hpp"

#include <unistd.h>

#include <array>
#include <filesystem>

#include "common/assert.hpp"
#include "common/log.hpp"

namespace dr::storage {

namespace {

constexpr const char* kWalFile = "wal.bin";
constexpr const char* kSnapshotFile = "snapshot.bin";

Bytes read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return {};
  Bytes out;
  std::array<std::uint8_t, 65536> chunk;
  for (;;) {
    const std::size_t got = std::fread(chunk.data(), 1, chunk.size(), f);
    out.insert(out.end(), chunk.begin(),
               chunk.begin() + static_cast<std::ptrdiff_t>(got));
    if (got < chunk.size()) break;
  }
  std::fclose(f);
  return out;
}

void write_all(std::FILE* f, BytesView data) {
  const std::size_t wrote = std::fwrite(data.data(), 1, data.size(), f);
  DR_ASSERT_MSG(wrote == data.size(), "short write to vertex store");
}

void flush_file(std::FILE* f, bool fsync) {
  std::fflush(f);
  if (fsync) ::fsync(::fileno(f));
}

}  // namespace

VertexStore::VertexStore(Committee committee, ProcessId pid, StoreOptions opts)
    : committee_(committee), pid_(pid), opts_(std::move(opts)) {
  DR_ASSERT_MSG(!opts_.dir.empty(), "VertexStore needs a data directory");
  std::filesystem::create_directories(opts_.dir);
}

VertexStore::~VertexStore() {
  if (wal_ != nullptr) {
    flush_file(wal_, opts_.fsync);
    std::fclose(wal_);
  }
}

std::string VertexStore::wal_path() const {
  return opts_.dir + "/" + kWalFile;
}

std::string VertexStore::snapshot_path() const {
  return opts_.dir + "/" + kSnapshotFile;
}

void VertexStore::open_wal_for_append(bool write_header) {
  DR_ASSERT(wal_ == nullptr);
  wal_ = std::fopen(wal_path().c_str(), write_header ? "wb" : "ab");
  DR_ASSERT_MSG(wal_ != nullptr, "cannot open WAL for appending");
  if (write_header) {
    const Bytes header = encode_wal_header(committee_, pid_);
    write_all(wal_, BytesView(header));
    flush_file(wal_, opts_.fsync);
  }
}

RecoverResult VertexStore::recover() {
  DR_ASSERT_MSG(!recovered_, "VertexStore::recover is one-shot");
  recovered_ = true;
  RecoverResult result;

  const Bytes snap_bytes = read_file(snapshot_path());
  if (!snap_bytes.empty()) {
    Expected<Snapshot> snap = decode_snapshot(BytesView(snap_bytes));
    if (snap.ok() && snap.value().committee.n == committee_.n &&
        snap.value().committee.f == committee_.f &&
        snap.value().pid == pid_) {
      result.snapshot = std::move(snap).value();
      stats_.snapshot_loaded = true;
    } else {
      // A snapshot that fails its CRC or belongs to another process is
      // useless AND marks the WAL as untrustworthy (it may have been
      // compacted against that snapshot's floor): restart empty.
      DR_LOG_INFO("p%u: discarding unusable snapshot (%s)", pid_,
                  snap.ok() ? "foreign committee/pid" : snap.error().c_str());
      result.wal_clean = false;
      result.wal_error = "snapshot unusable; storage reset";
      open_wal_for_append(/*write_header=*/true);
      return result;
    }
  }

  const Bytes wal_bytes = read_file(wal_path());
  WalDecoder decoder(committee_, pid_);
  decoder.feed(BytesView(wal_bytes));
  while (auto rec = decoder.next()) {
    if (rec->type == WalRecordType::kVertex) {
      ++stats_.recovered_vertices;
    } else {
      ++stats_.recovered_proposals;
      pending_proposals_[rec->round] = rec->payload;
    }
    result.records.push_back(std::move(*rec));
  }
  if (!wal_bytes.empty() && !decoder.header_seen()) {
    // Header invalid (foreign committee/pid/corrupt): the whole file is
    // untrustworthy. Start a fresh WAL rather than appending to it.
    result.records.clear();
    pending_proposals_.clear();
    stats_.recovered_vertices = 0;
    stats_.recovered_proposals = 0;
    result.wal_clean = false;
    result.wal_error = decoder.error();
    open_wal_for_append(/*write_header=*/true);
    return result;
  }
  if (decoder.dead()) {
    result.wal_clean = false;
    result.wal_error = decoder.error();
  }
  if (wal_bytes.empty()) {
    open_wal_for_append(/*write_header=*/true);
    return result;
  }
  // Crash-consistent prefix: drop the torn or corrupt tail so future appends
  // extend a well-formed file (appending after garbage would hide every
  // record written post-restart from the next recovery).
  if (decoder.consumed() < wal_bytes.size()) {
    stats_.recovered_truncated_bytes = wal_bytes.size() - decoder.consumed();
    std::filesystem::resize_file(wal_path(), decoder.consumed());
  }
  open_wal_for_append(/*write_header=*/false);
  return result;
}

void VertexStore::append_record(const WalRecord& rec) {
  DR_ASSERT_MSG(wal_ != nullptr, "append before recover()");
  const Bytes encoded = encode_wal_record(rec);
  write_all(wal_, BytesView(encoded));
  flush_file(wal_, opts_.fsync);
  stats_.bytes_appended += encoded.size();
}

void VertexStore::append_vertex(const dag::Vertex& v) {
  WalRecord rec;
  rec.type = WalRecordType::kVertex;
  rec.source = v.source;
  rec.round = v.round;
  // wire_payload() reuses the delivered bytes when the vertex still carries
  // them (the common case) — no re-serialization on the append path.
  rec.payload = v.wire_payload().to_bytes();
  append_record(rec);
  ++stats_.vertices_appended;
}

void VertexStore::append_proposal(Round r, BytesView payload) {
  WalRecord rec;
  rec.type = WalRecordType::kProposal;
  rec.source = pid_;
  rec.round = r;
  rec.payload.assign(payload.begin(), payload.end());
  append_record(rec);
  pending_proposals_[r] = rec.payload;
  ++stats_.proposals_appended;
}

void VertexStore::compact(const Snapshot& snap, const dag::Dag& dag) {
  DR_ASSERT_MSG(wal_ != nullptr, "compact before recover()");
  // 1. Snapshot first, atomically. If we crash after this rename the old
  //    (longer) WAL replays against the new floor: records below it are
  //    dropped by the restore path, records above replay identically.
  const std::string snap_tmp = snapshot_path() + ".tmp";
  {
    std::FILE* f = std::fopen(snap_tmp.c_str(), "wb");
    DR_ASSERT_MSG(f != nullptr, "cannot open snapshot temp file");
    const Bytes encoded = encode_snapshot(snap);
    write_all(f, BytesView(encoded));
    flush_file(f, opts_.fsync);
    std::fclose(f);
  }
  std::filesystem::rename(snap_tmp, snapshot_path());

  // 2. Rewrite the WAL from the live DAG: rounds >= floor in ascending
  //    order (a valid causal order — strong edges point one round down,
  //    weak edges further down), then own proposals not yet in the DAG.
  for (auto it = pending_proposals_.begin(); it != pending_proposals_.end();) {
    const bool stale = it->first < snap.gc_floor ||
                       dag.contains(dag::VertexId{pid_, it->first});
    it = stale ? pending_proposals_.erase(it) : std::next(it);
  }
  const std::string wal_tmp = wal_path() + ".tmp";
  std::uint64_t kept = 0;
  {
    std::FILE* f = std::fopen(wal_tmp.c_str(), "wb");
    DR_ASSERT_MSG(f != nullptr, "cannot open WAL temp file");
    const Bytes header = encode_wal_header(committee_, pid_);
    write_all(f, BytesView(header));
    const Round from = std::max<Round>(1, snap.gc_floor);
    for (Round r = from; r <= dag.max_round(); ++r) {
      if (r < dag.compacted_floor()) continue;  // stubs: contents freed
      for (ProcessId p : dag.round_sources(r)) {
        const dag::Vertex* v = dag.get(dag::VertexId{p, r});
        WalRecord rec;
        rec.type = WalRecordType::kVertex;
        rec.source = p;
        rec.round = r;
        rec.payload = v->wire_payload().to_bytes();
        const Bytes encoded = encode_wal_record(rec);
        write_all(f, BytesView(encoded));
        ++kept;
      }
    }
    for (const auto& [r, payload] : pending_proposals_) {
      WalRecord rec;
      rec.type = WalRecordType::kProposal;
      rec.source = pid_;
      rec.round = r;
      rec.payload = payload;
      const Bytes encoded = encode_wal_record(rec);
      write_all(f, BytesView(encoded));
    }
    flush_file(f, opts_.fsync);
    std::fclose(f);
  }
  std::fclose(wal_);
  wal_ = nullptr;
  std::filesystem::rename(wal_tmp, wal_path());
  open_wal_for_append(/*write_header=*/false);
  ++stats_.compactions;
  DR_LOG_TRACE("p%u WAL compacted at floor=%llu kept=%llu", pid_,
               static_cast<unsigned long long>(snap.gc_floor),
               static_cast<unsigned long long>(kept));
}

}  // namespace dr::storage
