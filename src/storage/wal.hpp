// Append-only write-ahead vertex log. Records reuse the net/frame codec
// discipline — length-prefixed, little-endian, defensive caps, an absorbing
// dead state on any malformed input — plus a CRC-32 over every payload,
// because unlike a TCP stream the WAL's adversary is a torn write or bit rot
// on disk. The codec here is pure in-memory (encode bytes / decode bytes):
// the file layer lives in store.hpp, which keeps this half directly fuzzable
// (fuzz/fuzz_wal.cpp) without touching a filesystem.
//
// A WAL is crash-consistent by prefix: recovery replays records until the
// first corruption (bad CRC, truncated tail, impossible field) and discards
// everything after it. Records are appended in causal order — a vertex is
// logged only after Dag::insert accepted it, own proposals only after their
// strong-edge quorum was logged — so every prefix of a correct process's WAL
// is itself a valid DAG construction history.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "common/bytes.hpp"
#include "common/expected.hpp"
#include "common/types.hpp"

namespace dr::storage {

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over `data`.
/// Table-driven; the table is built once on first use.
std::uint32_t crc32(BytesView data);

inline constexpr std::uint32_t kWalMagic = 0x4C415744;  // "DWAL" LE
inline constexpr std::uint16_t kWalVersion = 1;

/// WAL file header: [u32 magic][u16 version][u16 reserved][u32 n][u32 f]
/// [u32 pid]. The committee shape and owning process are stamped so a WAL
/// replayed into the wrong process (copied data dir, misconfigured id) is
/// rejected wholesale instead of poisoning the DAG with another process's
/// proposals.
inline constexpr std::size_t kWalHeaderBytes = 4 + 2 + 2 + 4 + 4 + 4;

/// Record wire layout: [u32 payload_len][u32 crc32(payload)][payload] where
/// payload = [u8 type][u32 source][u64 round][vertex bytes]. The vertex
/// bytes are exactly Vertex::serialize — byte-identical to the RBC payload,
/// so digests agree across the WAL, the wire, and the catch-up sync.
inline constexpr std::size_t kWalRecordHeaderBytes = 4 + 4;
inline constexpr std::size_t kWalRecordPrefixBytes = 1 + 4 + 8;

/// Upper bound on one record's payload (a vertex can't exceed a frame).
inline constexpr std::uint32_t kMaxWalRecord = (16u << 20) + 64;

enum class WalRecordType : std::uint8_t {
  kVertex = 1,    ///< a vertex accepted into the local DAG (any source)
  kProposal = 2,  ///< this process's own vertex, logged before broadcast
};

/// One recovered record. For kVertex, (source, round) is the RBC delivery
/// metadata; for kProposal, source is the owning process and the payload is
/// the exact bytes handed to rbc_.broadcast (equivocation-freedom across
/// restarts depends on replaying these verbatim).
struct WalRecord {
  WalRecordType type = WalRecordType::kVertex;
  ProcessId source = 0;
  Round round = 0;
  Bytes payload;
};

Bytes encode_wal_header(const Committee& committee, ProcessId pid);
Bytes encode_wal_record(const WalRecord& rec);

/// Incremental WAL reader with the FrameDecoder discipline: feed arbitrary
/// chunks, pop complete records; any protocol violation (bad magic, foreign
/// committee, CRC mismatch, oversized length, unknown type, out-of-range
/// source) flips the decoder into an absorbing dead state. A cleanly
/// truncated tail (partial record at EOF) is NOT dead: it is the expected
/// shape of a crash mid-append, and `consumed()` tells the file layer where
/// to truncate before resuming appends.
class WalDecoder {
 public:
  WalDecoder(Committee expected, ProcessId pid)
      : committee_(expected), pid_(pid) {}

  void feed(BytesView chunk);

  /// Pops the next complete, CRC-verified record, if one is buffered.
  [[nodiscard]] std::optional<WalRecord> next();

  bool dead() const { return dead_; }
  const std::string& error() const { return error_; }
  bool header_seen() const { return header_seen_; }
  /// Total bytes consumed as complete header + records — the safe length to
  /// truncate a torn file to before appending again.
  std::uint64_t consumed() const { return consumed_; }

 private:
  void fail(std::string why);
  [[nodiscard]] bool try_header();

  Committee committee_;
  ProcessId pid_;
  Bytes buf_;
  std::size_t pos_ = 0;  ///< consumed prefix of buf_
  std::uint64_t consumed_ = 0;
  bool header_seen_ = false;
  bool dead_ = false;
  std::string error_;
};

}  // namespace dr::storage
