#include "storage/wal.hpp"

#include <array>

#include "common/assert.hpp"
#include "core/contract.hpp"

namespace dr::storage {

namespace {

std::array<std::uint32_t, 256> build_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

std::uint32_t crc32(BytesView data) {
  static const std::array<std::uint32_t, 256> table = build_crc_table();
  std::uint32_t c = 0xFFFFFFFFu;
  for (std::uint8_t b : data) c = table[(c ^ b) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

Bytes encode_wal_header(const Committee& committee, ProcessId pid) {
  ByteWriter w(kWalHeaderBytes);
  w.u32(kWalMagic);
  w.u16(kWalVersion);
  w.u16(0);  // reserved
  w.u32(committee.n);
  w.u32(committee.f);
  w.u32(pid);
  return std::move(w).take();
}

Bytes encode_wal_record(const WalRecord& rec) {
  ByteWriter p(kWalRecordPrefixBytes + rec.payload.size());
  p.u8(static_cast<std::uint8_t>(rec.type));
  p.u32(rec.source);
  p.u64(rec.round);
  p.raw(BytesView(rec.payload));
  const Bytes payload = std::move(p).take();
  DR_ASSERT_MSG(payload.size() <= kMaxWalRecord, "WAL record too large");
  ByteWriter w(kWalRecordHeaderBytes + payload.size());
  w.u32(static_cast<std::uint32_t>(payload.size()));
  w.u32(crc32(BytesView(payload)));
  w.raw(BytesView(payload));
  return std::move(w).take();
}

void WalDecoder::fail(std::string why) {
  dead_ = true;
  error_ = std::move(why);
  // Same absorbing-dead-state contract as net::FrameDecoder: resynchronizing
  // inside a corrupted length-prefixed file would splice records across the
  // corruption and replay a history this process never built.
  DR_ENSURE(dead_ && !error_.empty(),
            "WAL decoder failure must record a reason and go dead");
}

void WalDecoder::feed(BytesView chunk) {
  if (dead_) return;
  if (pos_ > 0 && pos_ * 2 >= buf_.size()) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  buf_.insert(buf_.end(), chunk.begin(), chunk.end());
}

bool WalDecoder::try_header() {
  const std::size_t avail = buf_.size() - pos_;
  if (avail < kWalHeaderBytes) return false;
  ByteReader in(BytesView{buf_.data() + pos_, avail});
  const std::uint32_t magic = in.u32();
  const std::uint16_t version = in.u16();
  (void)in.u16();  // reserved
  const std::uint32_t n = in.u32();
  const std::uint32_t f = in.u32();
  const std::uint32_t pid = in.u32();
  if (magic != kWalMagic) {
    fail("bad WAL magic");
    return false;
  }
  if (version != kWalVersion) {
    fail("unsupported WAL version");
    return false;
  }
  if (n != committee_.n || f != committee_.f) {
    fail("WAL written for a different committee");
    return false;
  }
  if (pid != pid_) {
    fail("WAL belongs to a different process");
    return false;
  }
  pos_ += kWalHeaderBytes;
  consumed_ += kWalHeaderBytes;
  header_seen_ = true;
  return true;
}

std::optional<WalRecord> WalDecoder::next() {
  if (dead_) return std::nullopt;
  DR_INVARIANT(pos_ <= buf_.size(),
               "WAL decoder consumed past the end of its buffer");
  if (!header_seen_ && !try_header()) return std::nullopt;
  const std::size_t avail = buf_.size() - pos_;
  if (avail < kWalRecordHeaderBytes) return std::nullopt;
  ByteReader in(BytesView{buf_.data() + pos_, avail});
  const std::uint32_t len = in.u32();
  const std::uint32_t crc = in.u32();
  if (len > kMaxWalRecord) {
    fail("oversized WAL record length prefix");
    return std::nullopt;
  }
  if (len < kWalRecordPrefixBytes) {
    fail("WAL record shorter than its fixed prefix");
    return std::nullopt;
  }
  if (avail < kWalRecordHeaderBytes + len) return std::nullopt;  // torn tail
  const BytesView payload{buf_.data() + pos_ + kWalRecordHeaderBytes, len};
  if (crc32(payload) != crc) {
    fail("WAL record CRC mismatch");
    return std::nullopt;
  }
  ByteReader body(payload);
  WalRecord rec;
  const std::uint8_t type = body.u8();
  rec.source = body.u32();
  rec.round = body.u64();
  rec.payload = body.raw(body.remaining());
  if (type != static_cast<std::uint8_t>(WalRecordType::kVertex) &&
      type != static_cast<std::uint8_t>(WalRecordType::kProposal)) {
    fail("unknown WAL record type");
    return std::nullopt;
  }
  rec.type = static_cast<WalRecordType>(type);
  if (rec.source >= committee_.n) {
    fail("WAL record source out of range");
    return std::nullopt;
  }
  if (rec.type == WalRecordType::kProposal && rec.source != pid_) {
    fail("WAL proposal record from a foreign process");
    return std::nullopt;
  }
  if (rec.round < 1) {
    fail("WAL record round below 1 (genesis is never logged)");
    return std::nullopt;
  }
  pos_ += kWalRecordHeaderBytes + len;
  consumed_ += kWalRecordHeaderBytes + len;
  return rec;
}

}  // namespace dr::storage
