#include "storage/snapshot.hpp"

#include <algorithm>

#include "storage/wal.hpp"

namespace dr::storage {

Bytes encode_snapshot(const Snapshot& snap) {
  ByteWriter w;
  w.u32(kSnapMagic);
  w.u16(kSnapVersion);
  w.u16(0);  // reserved
  w.u32(snap.committee.n);
  w.u32(snap.committee.f);
  w.u32(snap.pid);
  w.u64(snap.gc_floor);
  w.u64(snap.decided_wave);
  w.u8(snap.ordering);
  w.u64(snap.rounds_per_wave);
  w.u32(static_cast<std::uint32_t>(snap.delivered.size()));
  for (const core::DeliveredRecord& rec : snap.delivered) {
    w.raw(BytesView{rec.block_digest.data(), rec.block_digest.size()});
    w.u64(rec.block_size);
    w.u64(rec.round);
    w.u32(rec.source);
    w.u64(rec.time);
  }
  w.u32(static_cast<std::uint32_t>(snap.commits.size()));
  for (const core::CommitRecord& rec : snap.commits) {
    w.u64(rec.wave);
    w.u32(rec.leader.source);
    w.u64(rec.leader.round);
    w.u8(rec.direct ? 1 : 0);
    w.u64(rec.time);
  }
  w.u32(crc32(BytesView(w.bytes())));
  return std::move(w).take();
}

Expected<Snapshot> decode_snapshot(BytesView data) {
  using Fail = Expected<Snapshot>;
  if (data.size() < 4) return Fail::failure("snapshot too short for its CRC");
  const BytesView body{data.data(), data.size() - 4};
  ByteReader tail(BytesView{data.data() + data.size() - 4, 4});
  if (crc32(body) != tail.u32()) return Fail::failure("snapshot CRC mismatch");

  ByteReader in(body);
  Snapshot snap;
  if (in.u32() != kSnapMagic) return Fail::failure("bad snapshot magic");
  const std::uint16_t version = in.u16();
  if (version < 1 || version > kSnapVersion) {
    return Fail::failure("unsupported snapshot version");
  }
  (void)in.u16();  // reserved
  snap.committee.n = in.u32();
  snap.committee.f = in.u32();
  snap.pid = in.u32();
  snap.gc_floor = in.u64();
  snap.decided_wave = in.u64();
  if (version >= 2) {
    snap.ordering = in.u8();
    snap.rounds_per_wave = in.u64();
  }
  const std::uint32_t n_delivered = in.u32();
  if (!in.ok() || n_delivered > kMaxSnapshotDelivered) {
    return Fail::failure("snapshot delivered count implausible");
  }
  snap.delivered.reserve(n_delivered);
  for (std::uint32_t i = 0; i < n_delivered && in.ok(); ++i) {
    core::DeliveredRecord rec;
    const Bytes digest = in.raw(rec.block_digest.size());
    if (digest.size() == rec.block_digest.size()) {
      std::copy(digest.begin(), digest.end(), rec.block_digest.begin());
    }
    rec.block_size = in.u64();
    rec.round = in.u64();
    rec.source = in.u32();
    rec.time = in.u64();
    snap.delivered.push_back(rec);
  }
  const std::uint32_t n_commits = in.u32();
  if (!in.ok() || n_commits > kMaxSnapshotCommits) {
    return Fail::failure("snapshot commit count implausible");
  }
  snap.commits.reserve(n_commits);
  for (std::uint32_t i = 0; i < n_commits && in.ok(); ++i) {
    core::CommitRecord rec;
    rec.wave = in.u64();
    rec.leader.source = in.u32();
    rec.leader.round = in.u64();
    rec.direct = in.u8() != 0;
    rec.time = in.u64();
    snap.commits.push_back(rec);
  }
  if (!in.done()) return Fail::failure("snapshot truncated or oversized");
  if (!snap.committee.valid()) {
    return Fail::failure("snapshot committee invalid");
  }
  return snap;
}

}  // namespace dr::storage
