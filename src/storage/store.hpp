// File layer of the durable vertex store: owns the WAL file and the snapshot
// file inside one data directory, and is the ONLY place in src/ that touches
// the filesystem (enforced by tools/daglint's file-io rule — protocol layers
// stay I/O-free and deterministic).
//
// Layout: <dir>/wal.bin (header + append-only records, see wal.hpp) and
// <dir>/snapshot.bin (atomic temp+rename, see snapshot.hpp). Appends go
// through stdio with an fflush per record; opts.fsync additionally fsyncs,
// trading throughput for power-failure durability (the bench's --wal mode
// measures exactly this trade).
//
// Compaction contract: compact(snapshot, dag) first persists the snapshot,
// then rewrites the WAL from the live DAG keeping rounds >= snapshot
// gc_floor (in ascending round order — a valid causal order, since strong
// edges point one round down and weak edges further down). A crash between
// the two renames is safe: recovery takes the floor from the snapshot and
// drops WAL records below it, so the stale longer WAL replays identically.
#pragma once

#include <cstdio>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "dag/dag.hpp"
#include "storage/snapshot.hpp"
#include "storage/wal.hpp"

namespace dr::storage {

struct StoreOptions {
  std::string dir;
  /// fsync after every append (power-failure durability); default off —
  /// process-crash durability only, matching the crash model of the tests.
  bool fsync = false;
};

/// Monotonic counters, surfaced through node::Node::counters().
struct StoreStats {
  std::uint64_t vertices_appended = 0;
  std::uint64_t proposals_appended = 0;
  std::uint64_t bytes_appended = 0;
  std::uint64_t compactions = 0;
  std::uint64_t recovered_vertices = 0;
  std::uint64_t recovered_proposals = 0;
  std::uint64_t recovered_truncated_bytes = 0;  ///< torn/corrupt tail dropped
  bool snapshot_loaded = false;
};

struct RecoverResult {
  std::optional<Snapshot> snapshot;
  /// Vertex and proposal records in WAL order (a valid causal order).
  std::vector<WalRecord> records;
  /// False when recovery stopped early at a corrupt or torn region.
  bool wal_clean = true;
  std::string wal_error;
};

class VertexStore {
 public:
  /// Creates `opts.dir` if needed. Call recover() once before any append.
  VertexStore(Committee committee, ProcessId pid, StoreOptions opts);
  ~VertexStore();

  VertexStore(const VertexStore&) = delete;
  VertexStore& operator=(const VertexStore&) = delete;

  /// Reads snapshot + WAL, truncates any torn WAL tail, and opens the WAL
  /// for appending. A snapshot or WAL header that fails validation (foreign
  /// committee/pid, corrupt) is discarded wholesale — the store restarts
  /// empty rather than replaying another process's history.
  RecoverResult recover();

  /// Logs a vertex accepted into the local DAG (crash durability for the
  /// r_delivered prefix). Called on the node thread only.
  void append_vertex(const dag::Vertex& v);
  /// Logs this process's own proposal BEFORE it is broadcast, so a restart
  /// can re-send the identical bytes instead of equivocating.
  void append_proposal(Round r, BytesView payload);

  /// Persists `snap` atomically, then rewrites the WAL from `dag` keeping
  /// rounds >= snap.gc_floor plus still-pending own proposals.
  void compact(const Snapshot& snap, const dag::Dag& dag);

  const StoreStats& stats() const { return stats_; }
  std::string wal_path() const;
  std::string snapshot_path() const;

 private:
  void append_record(const WalRecord& rec);
  void open_wal_for_append(bool write_header);

  Committee committee_;
  ProcessId pid_;
  StoreOptions opts_;
  std::FILE* wal_ = nullptr;
  /// Own proposals not yet superseded by compaction — the in-memory mirror
  /// of the kProposal records that must survive a WAL rewrite.
  std::map<Round, Bytes> pending_proposals_;
  StoreStats stats_;
  bool recovered_ = false;
};

}  // namespace dr::storage
