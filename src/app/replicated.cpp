#include "app/replicated.hpp"

namespace dr::app {

ReplicatedService::ReplicatedService(core::System& sys, MachineFactory factory,
                                     std::size_t batch_max,
                                     sim::SimTime pump_every)
    : sys_(sys), batch_max_(batch_max), pump_every_(pump_every) {
  correct_ = sys_.correct_ids();
  for (ProcessId p = 0; p < sys_.n(); ++p) {
    machines_.push_back(factory());
    pools_.push_back(std::make_unique<txpool::Mempool>());
  }
  for (ProcessId p : correct_) {
    sys_.node(p).set_app_deliver(
        [this, p](const Bytes& block, Round, ProcessId) {
          auto txs = txpool::decode_block(block);
          if (!txs) return;  // padding / foreign block: no-op
          pools_[p]->observe_delivered(txs.value());
          for (const txpool::Transaction& tx : txs.value()) {
            machines_[p]->apply(tx.payload);
          }
        });
  }
}

bool ReplicatedService::submit(ProcessId p, std::uint64_t command_id,
                               Bytes command) {
  txpool::Transaction tx;
  tx.id = command_id;
  tx.submit_time = sys_.simulator().now();
  tx.payload = std::move(command);
  return pools_[p]->submit(std::move(tx));
}

void ReplicatedService::start() {
  for (ProcessId p : correct_) schedule_pump(p);
}

void ReplicatedService::schedule_pump(ProcessId p) {
  sys_.simulator().schedule(pump_every_, [this, p] {
    auto& builder = sys_.node(p).builder();
    if (builder.blocks_pending() == 0 && pools_[p]->pending() > 0) {
      Bytes block = pools_[p]->next_block(batch_max_);
      if (!block.empty()) sys_.node(p).rider().a_bcast(std::move(block));
    }
    schedule_pump(p);
  });
}

bool ReplicatedService::replicas_consistent() const {
  // Group correct replicas by applied-command count; within a group the
  // digests must match exactly (they executed the same ordered prefix —
  // KvStore rejections are deterministic, so counts identify positions).
  for (std::size_t a = 0; a < correct_.size(); ++a) {
    for (std::size_t b = a + 1; b < correct_.size(); ++b) {
      const StateMachine& ma = *machines_[correct_[a]];
      const StateMachine& mb = *machines_[correct_[b]];
      if (ma.applied_count() == mb.applied_count() &&
          ma.state_digest() != mb.state_digest()) {
        return false;
      }
    }
  }
  return true;
}

std::uint64_t ReplicatedService::applied_at_probe() const {
  return machines_[correct_.front()]->applied_count();
}

}  // namespace dr::app
