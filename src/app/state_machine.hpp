// Execution layer (§3 of the paper): BAB orders opaque blocks; a
// deterministic state machine applies them afterwards, validating commands
// at execution time. This module provides the interface plus a replicated
// key-value store implementation used by tests and examples.
#pragma once

#include "common/bytes.hpp"
#include "crypto/sha256.hpp"
#include "txpool/transaction.hpp"

namespace dr::app {

/// A deterministic state machine. Determinism contract: two instances that
/// apply the same command sequence must report identical state digests —
/// the whole point of total-order broadcast.
class StateMachine {
 public:
  virtual ~StateMachine() = default;

  /// Applies one ordered command. Invalid commands must be rejected
  /// deterministically (same command -> same verdict at every replica);
  /// returns whether the command was accepted.
  virtual bool apply(BytesView command) = 0;

  /// Digest of the full state, for cross-replica consistency audits.
  virtual crypto::Digest state_digest() const = 0;

  virtual std::uint64_t applied_count() const = 0;
};

}  // namespace dr::app
