#include "app/kvstore.hpp"

namespace dr::app {

namespace {
constexpr std::uint32_t kKvMagic = 0x6B76;
}  // namespace

Bytes KvCommand::encode() const {
  ByteWriter w(key.size() + value.size() + expected.size() + 24);
  w.u32(kKvMagic);
  w.u8(static_cast<std::uint8_t>(op));
  w.blob(key);
  w.blob(value);
  w.blob(expected);
  return std::move(w).take();
}

bool KvCommand::decode(BytesView data, KvCommand& out) {
  ByteReader in(data);
  if (in.u32() != kKvMagic) return false;
  const std::uint8_t op = in.u8();
  if (op < 1 || op > 3) return false;
  out.op = static_cast<Op>(op);
  Bytes key = in.blob();
  out.value = in.blob();
  out.expected = in.blob();
  if (!in.done()) return false;
  out.key.assign(key.begin(), key.end());
  return true;
}

bool KvStore::apply(BytesView command) {
  KvCommand cmd;
  if (!KvCommand::decode(command, cmd)) {
    ++rejected_;
    return false;
  }
  switch (cmd.op) {
    case KvCommand::Op::kPut:
      data_[cmd.key] = cmd.value;
      ++applied_;
      return true;
    case KvCommand::Op::kDel: {
      const bool erased = data_.erase(cmd.key) > 0;
      if (erased) {
        ++applied_;
      } else {
        ++rejected_;
      }
      return erased;
    }
    case KvCommand::Op::kCas: {
      auto it = data_.find(cmd.key);
      if (it == data_.end() || it->second != cmd.expected) {
        ++rejected_;
        return false;  // deterministic rejection: same view everywhere
      }
      it->second = cmd.value;
      ++applied_;
      return true;
    }
  }
  return false;
}

crypto::Digest KvStore::state_digest() const {
  crypto::Sha256 ctx;
  ctx.update(std::string_view{"dagrider/kvstate"});
  for (const auto& [key, value] : data_) {
    std::uint8_t len[8];
    const std::uint64_t klen = key.size();
    for (int i = 0; i < 8; ++i) len[i] = static_cast<std::uint8_t>(klen >> (8 * i));
    ctx.update(BytesView{len, 8});
    ctx.update(std::string_view{key});
    const std::uint64_t vlen = value.size();
    for (int i = 0; i < 8; ++i) len[i] = static_cast<std::uint8_t>(vlen >> (8 * i));
    ctx.update(BytesView{len, 8});
    ctx.update(value);
  }
  return ctx.finish();
}

std::optional<Bytes> KvStore::get(const std::string& key) const {
  auto it = data_.find(key);
  if (it == data_.end()) return std::nullopt;
  return it->second;
}

}  // namespace dr::app
