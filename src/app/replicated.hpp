// ReplicatedService: glues a core::System to per-replica state machines via
// the transaction layer. Commands submitted at any replica flow through the
// mempool -> BAB -> execution pipeline; digests audit replica agreement.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "app/state_machine.hpp"
#include "core/system.hpp"
#include "txpool/mempool.hpp"
#include "sim/network.hpp"

namespace dr::app {

class ReplicatedService {
 public:
  using MachineFactory = std::function<std::unique_ptr<StateMachine>()>;

  /// Builds one state machine per process and hooks block delivery into
  /// deterministic execution. Call before System::start().
  ReplicatedService(core::System& sys, MachineFactory factory,
                    std::size_t batch_max = 32,
                    sim::SimTime pump_every = 50);

  /// Submits a command at replica `p` (rejected if duplicate id).
  bool submit(ProcessId p, std::uint64_t command_id, Bytes command);

  /// Starts the proposal pacing loop. Call after System::start().
  void start();

  StateMachine& machine(ProcessId p) { return *machines_[p]; }
  const StateMachine& machine(ProcessId p) const { return *machines_[p]; }
  const txpool::Mempool& mempool(ProcessId p) const { return *pools_[p]; }

  /// True iff all correct replicas that applied the same number of commands
  /// report the same state digest; replicas at different positions are
  /// compared on count only (prefix property handles the rest).
  bool replicas_consistent() const;

  /// Commands applied at the first correct replica.
  std::uint64_t applied_at_probe() const;

 private:
  void schedule_pump(ProcessId p);

  core::System& sys_;
  std::size_t batch_max_;
  sim::SimTime pump_every_;
  std::vector<std::unique_ptr<StateMachine>> machines_;
  std::vector<std::unique_ptr<txpool::Mempool>> pools_;
  std::vector<ProcessId> correct_;
};

}  // namespace dr::app
