// Replicated key-value store: PUT / DEL / CAS commands over string keys.
// The canonical workload for SMR papers, here the reference StateMachine.
#pragma once

#include <map>
#include <optional>
#include <string>

#include "app/state_machine.hpp"

namespace dr::app {

/// Command encoding helpers (also used by clients).
struct KvCommand {
  enum class Op : std::uint8_t { kPut = 1, kDel = 2, kCas = 3 };

  Op op = Op::kPut;
  std::string key;
  Bytes value;     // for PUT / CAS (new value)
  Bytes expected;  // for CAS (required current value)

  Bytes encode() const;
  [[nodiscard]] static bool decode(BytesView data, KvCommand& out);
};

class KvStore final : public StateMachine {
 public:
  bool apply(BytesView command) override;
  crypto::Digest state_digest() const override;
  std::uint64_t applied_count() const override { return applied_; }

  std::optional<Bytes> get(const std::string& key) const;
  std::size_t size() const { return data_.size(); }
  std::uint64_t rejected_count() const { return rejected_; }

 private:
  std::map<std::string, Bytes> data_;  // ordered: digest is canonical
  std::uint64_t applied_ = 0;
  std::uint64_t rejected_ = 0;
};

}  // namespace dr::app
