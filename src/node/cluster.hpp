// n-node in-process cluster: one OS thread per node over the shared-memory
// transport (net::InProcNetwork), with the threshold-coin trusted setup
// derived from a single master seed. This is the fixture the sanitizer
// cross-check tests and the realtime throughput bench drive; the TCP
// equivalent is assembled by hand in examples/cluster_main.cpp because its
// processes don't share an address space.
#pragma once

#include <chrono>
#include <functional>
#include <memory>
#include <vector>

#include "coin/dealer.hpp"
#include "net/inproc.hpp"
#include "net/tcp.hpp"
#include "node/node.hpp"

namespace dr::node {

/// Per-cluster deviations from the uniform NodeOptions: the chaos/Byzantine
/// knobs (DESIGN.md §12). transport_wrap decorates every node's endpoint
/// (e.g. with a net::ChaosTransport) — it is re-applied on restart_node, so
/// a rejoining node re-enters the same fault environment it crashed out of.
/// profiles[pid] overrides opts.byzantine for that node only.
struct ClusterTweaks {
  using TransportWrap = std::function<std::unique_ptr<net::Transport>(
      ProcessId pid, std::unique_ptr<net::Transport> inner)>;
  TransportWrap transport_wrap;
  std::vector<ByzantineProfile> profiles;  ///< empty = all honest
  /// Node-to-node links over loopback TCP (net::TcpTransport) instead of the
  /// shared-memory transport — the configuration the ingress bench drives so
  /// client traffic and protocol traffic share a real network stack.
  bool tcp_transport = false;
};

class Cluster {
 public:
  explicit Cluster(Committee committee, NodeOptions opts = {},
                   ClusterTweaks tweaks = {});
  ~Cluster();

  void start();
  /// Two-phase teardown: joins every node's event loop before tearing down
  /// any transport, because peer node threads deliver straight into each
  /// other's inboxes (see Node::stop_loop/stop_transport).
  void stop();

  /// Crash-stops one node (full stop: loop + transport) while the rest of
  /// the cluster keeps running. Peers' sends to it drop, as on a real
  /// network partition.
  void stop_node(ProcessId pid);
  /// Changes one node's Byzantine profile for subsequent (re)starts — e.g.
  /// a kMute node that crash-stops and comes back honest, the shape of the
  /// ingress at-least-once regression. Takes effect at the next
  /// restart_node(pid); the running instance is untouched.
  void set_profile(ProcessId pid, ByzantineProfile profile);
  /// Replaces a stopped node with a fresh Node on the same endpoint slot and
  /// (when the cluster was built with a wal_dir) the same data directory —
  /// the restarted node recovers from its WAL, then catch-up sync fills the
  /// rounds it missed while down. Requires stop_node(pid) first.
  void restart_node(ProcessId pid);

  std::uint32_t n() const { return committee_.n; }
  const Committee& committee() const { return committee_; }
  Node& node(ProcessId pid) { return *nodes_[pid]; }
  const Node& node(ProcessId pid) const { return *nodes_[pid]; }

  /// Stable client-facing ingress port of one node (0 unless the cluster was
  /// built with opts.ingress_enable). Pre-picked at construction, so a node
  /// restarted via restart_node rebinds the same port and its clients can
  /// redial the endpoint they already know.
  std::uint16_t ingress_port(ProcessId pid) const {
    return ingress_ports_.empty() ? 0 : ingress_ports_[pid];
  }

  /// Polls until every node a_delivered >= count blocks, or timeout.
  bool wait_all_delivered(std::uint64_t count,
                          std::chrono::milliseconds timeout);

  /// Snapshots for the shared auditors (core/audit.hpp).
  std::vector<std::vector<core::DeliveredRecord>> delivered_logs() const;
  std::vector<std::vector<core::CommitRecord>> commit_logs() const;

 private:
  /// Per-node options: opts_.wal_dir (when set) is treated as a base
  /// directory and becomes <base>/node-<pid> for each node; tweaks_.profiles
  /// (when set) overrides the Byzantine profile per node.
  NodeOptions node_opts(ProcessId pid) const;
  std::unique_ptr<Node> build_node(ProcessId pid);

  Committee committee_;
  NodeOptions opts_;
  ClusterTweaks tweaks_;
  coin::CoinDealer dealer_;
  net::InProcNetwork net_;
  /// tweaks_.tcp_transport: where node i's protocol endpoint listens.
  std::vector<net::TcpPeer> tcp_peers_;
  /// opts_.ingress_enable: per-node client-facing ports, stable for the
  /// cluster's lifetime (restarts rebind them).
  std::vector<std::uint16_t> ingress_ports_;
  std::vector<std::unique_ptr<Node>> nodes_;
  bool started_ = false;
  bool stopped_ = false;
};

}  // namespace dr::node
