// n-node in-process cluster: one OS thread per node over the shared-memory
// transport (net::InProcNetwork), with the threshold-coin trusted setup
// derived from a single master seed. This is the fixture the sanitizer
// cross-check tests and the realtime throughput bench drive; the TCP
// equivalent is assembled by hand in examples/cluster_main.cpp because its
// processes don't share an address space.
#pragma once

#include <chrono>
#include <memory>
#include <vector>

#include "coin/dealer.hpp"
#include "net/inproc.hpp"
#include "node/node.hpp"

namespace dr::node {

class Cluster {
 public:
  explicit Cluster(Committee committee, NodeOptions opts = {});
  ~Cluster();

  void start();
  /// Two-phase teardown: joins every node's event loop before tearing down
  /// any transport, because peer node threads deliver straight into each
  /// other's inboxes (see Node::stop_loop/stop_transport).
  void stop();

  /// Crash-stops one node (full stop: loop + transport) while the rest of
  /// the cluster keeps running. Peers' sends to it drop, as on a real
  /// network partition.
  void stop_node(ProcessId pid);
  /// Replaces a stopped node with a fresh Node on the same endpoint slot and
  /// (when the cluster was built with a wal_dir) the same data directory —
  /// the restarted node recovers from its WAL, then catch-up sync fills the
  /// rounds it missed while down. Requires stop_node(pid) first.
  void restart_node(ProcessId pid);

  std::uint32_t n() const { return committee_.n; }
  const Committee& committee() const { return committee_; }
  Node& node(ProcessId pid) { return *nodes_[pid]; }
  const Node& node(ProcessId pid) const { return *nodes_[pid]; }

  /// Polls until every node a_delivered >= count blocks, or timeout.
  bool wait_all_delivered(std::uint64_t count,
                          std::chrono::milliseconds timeout);

  /// Snapshots for the shared auditors (core/audit.hpp).
  std::vector<std::vector<core::DeliveredRecord>> delivered_logs() const;
  std::vector<std::vector<core::CommitRecord>> commit_logs() const;

 private:
  /// Per-node options: opts_.wal_dir (when set) is treated as a base
  /// directory and becomes <base>/node-<pid> for each node.
  NodeOptions node_opts(ProcessId pid) const;

  Committee committee_;
  NodeOptions opts_;
  coin::CoinDealer dealer_;
  net::InProcNetwork net_;
  std::vector<std::unique_ptr<Node>> nodes_;
  bool started_ = false;
  bool stopped_ = false;
};

}  // namespace dr::node
