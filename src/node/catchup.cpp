#include "node/catchup.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/log.hpp"

namespace dr::node {

using dag::VertexId;

CatchupSync::CatchupSync(net::Bus& bus, ProcessId pid,
                         dag::DagBuilder& builder, CatchupOptions opts)
    : bus_(bus),
      pid_(pid),
      builder_(builder),
      opts_(opts),
      committee_(bus.committee()),
      peers_(committee_.n) {
  DR_ASSERT(opts_.rounds_per_request >= 1 &&
            opts_.rounds_per_request <= net::kMaxSyncRoundSpan);
  DR_ASSERT(opts_.max_response_vertices <= net::kMaxSyncVertices);
  bus_.subscribe(pid_, net::Channel::kSync,
                 [this](ProcessId from, const net::Payload& payload) {
                   on_sync_frame(from, payload);
                 });
}

void CatchupSync::on_sync_frame(ProcessId from, const net::Payload& payload) {
  if (from == pid_) return;  // self-sync is meaningless
  auto decoded = net::decode_sync_message(payload.view(), committee_.n);
  if (!decoded.ok()) return;  // malformed — drop, the codec validated shape
  net::SyncMessage msg = std::move(decoded).value();
  if (msg.request.has_value()) {
    serve_request(from, *msg.request);
  } else if (msg.response.has_value()) {
    ingest_response(from, *msg.response);
  }
}

void CatchupSync::serve_request(ProcessId from, const net::VertexRequest& req) {
  if (!opts_.enabled) return;
  const dag::Dag& dag = builder_.dag();
  // Clamp to what this process can actually serve: nothing below its own GC
  // floor (those slots are freed) or round 1, nothing above its max round.
  const Round lo =
      std::max({req.from_round, builder_.gc_floor(), Round{1}});
  const Round hi = std::min(req.to_round, dag.max_round());
  net::VertexResponse resp;
  resp.from_round = req.from_round;
  resp.to_round = req.to_round;
  std::size_t bytes = 0;
  for (Round r = lo; r <= hi && resp.vertices.size() < opts_.max_response_vertices;
       ++r) {
    for (ProcessId src : dag.round_sources(r)) {
      if (resp.vertices.size() >= opts_.max_response_vertices) break;
      const dag::Vertex* v = dag.get(VertexId{src, r});
      DR_ASSERT(v != nullptr);
      net::SyncVertex sv;
      sv.source = src;
      sv.round = r;
      // Deterministic bytes: the codec is bijective, so the retained wire
      // buffer (or a re-serialization, for restored vertices) yields the
      // identical bytes on every correct peer — which is what makes the
      // requester's f+1 byte-match rule meaningful.
      sv.payload = v->wire_payload().to_bytes();
      bytes += sv.payload.size();
      if (bytes > opts_.max_response_bytes) break;
      resp.vertices.push_back(std::move(sv));
    }
    if (bytes > opts_.max_response_bytes) break;
  }
  ++stats_.responses_served;
  // Reply even when empty: the requester learns this peer holds nothing in
  // the range and rotates elsewhere instead of waiting out the retry timer.
  bus_.send(pid_, from, net::Channel::kSync, encode_vertex_response(resp));
}

void CatchupSync::ingest_response(ProcessId from, net::VertexResponse& resp) {
  ++stats_.responses_received;
  // A response — any response — clears the peer's backoff: it is alive.
  peers_[from].backoff_until_us = 0;
  peers_[from].backoff_us = 0;

  const dag::Dag& dag = builder_.dag();
  for (net::SyncVertex& sv : resp.vertices) {
    const VertexId id{sv.source, sv.round};
    if (sv.round < std::max<Round>(1, builder_.gc_floor())) continue;
    if (accepted_.count(id) > 0 || dag.contains(id)) continue;
    net::Payload payload(std::move(sv.payload));
    const crypto::Digest digest = payload.digest();
    auto& variants = tally_[id];
    if (!variants.empty() && variants.count(digest) == 0) {
      ++stats_.vertices_mismatched;  // conflicting bytes for one slot
    }
    Voucher& voucher = variants[digest];
    if (voucher.peers.empty()) voucher.payload = std::move(payload);
    voucher.peers.insert(from);
    // f+1 distinct peers with identical bytes: at least one is correct.
    if (voucher.peers.size() >= committee_.small_quorum()) {
      ++stats_.vertices_accepted;
      accepted_.insert(id);
      net::Payload vouched = std::move(voucher.payload);
      tally_.erase(id);
      builder_.sync_deliver(id.source, id.round, std::move(vouched));
    }
  }
}

bool CatchupSync::choose_peer(std::uint64_t now_us, ProcessId& out) {
  for (std::uint32_t step = 0; step < committee_.n; ++step) {
    const ProcessId cand = static_cast<ProcessId>(
        (next_peer_ + step) % committee_.n);
    if (cand == pid_) continue;
    if (peers_[cand].backoff_until_us > now_us) continue;
    out = cand;
    next_peer_ = static_cast<ProcessId>((cand + 1) % committee_.n);
    return true;
  }
  return false;
}

void CatchupSync::send_request(Round from, Round to, std::uint64_t now_us) {
  // Replicate the range to f+1 distinct peers at once. The acceptance rule
  // needs small_quorum() byte-identical vouchers per slot, so a serial
  // one-peer-then-retry scheme only completes a tally after a full
  // retry_after_us — long enough for the peers' GC floors to overtake the
  // requested rounds and leave the tally stuck at one voucher forever.
  // Charging
  // each replica its backoff up front (an answer clears it) still rotates
  // retries away from crashed peers instead of hammering them.
  // One encoded request, shared by every replica send below.
  const net::Payload frame(encode_vertex_request(net::VertexRequest{from, to}));
  std::uint32_t sent = 0;
  for (std::uint32_t k = 0; k < committee_.small_quorum(); ++k) {
    ProcessId peer = 0;
    if (!choose_peer(now_us, peer)) break;  // everyone is backing off
    PeerState& ps = peers_[peer];
    ps.backoff_us = ps.backoff_us == 0
                        ? opts_.backoff_initial_us
                        : std::min(ps.backoff_us * 2, opts_.backoff_max_us);
    ps.backoff_until_us = now_us + ps.backoff_us;
    ++stats_.requests_sent;
    bus_.send(pid_, peer, net::Channel::kSync, frame);
    ++sent;
  }
  if (sent != 0) inflight_.push_back(Inflight{from, to, now_us});
}

void CatchupSync::tick(std::uint64_t now_us) {
  if (!opts_.enabled) return;
  const Round local = builder_.current_round();
  const Round frontier = builder_.highest_seen_round();
  // A buffered vertex can be waiting on a parent BELOW the current round:
  // after a restart a round may hold only the 2f+1 vertices that advanced
  // it, and a later vertex's strong or weak edge to one of the absent slots
  // blocks insertion forever unless requests reach below `local`.
  const Round missing = builder_.lowest_missing_parent_round();
  const bool parent_gap = missing != 0 && missing < local;
  if (!parent_gap && frontier < local + opts_.min_lag) {
    // Caught up (or nearly): drop request state; accepted_ only has to
    // bridge the window until the DAG absorbs each id (pruned below).
    inflight_.clear();
    if (!tally_.empty()) tally_.clear();
    prune(now_us);
    return;
  }

  // Everything from need_from upward may still be required; ranges entirely
  // below it have been satisfied (insertion consumed their vertices).
  const Round need_from =
      parent_gap ? missing : std::max<Round>(1, local);

  // Retire ranges the builder no longer needs, retry stale ones.
  for (std::size_t i = 0; i < inflight_.size();) {
    Inflight& rq = inflight_[i];
    if (rq.to < need_from) {
      inflight_[i] = inflight_.back();
      inflight_.pop_back();
      continue;
    }
    if (now_us - rq.sent_at_us >= opts_.retry_after_us) {
      ++stats_.retries;
      const Round from = rq.from;
      const Round to = rq.to;
      inflight_[i] = inflight_.back();
      inflight_.pop_back();
      send_request(from, to, now_us);  // rotates to the next eligible peer
      continue;
    }
    ++i;
  }

  // Issue new requests, lowest missing rounds first: parents must arrive
  // before children can leave the builder's buffer.
  const Round limit = std::max(frontier, local);
  Round cursor = need_from;
  while (inflight_.size() < opts_.max_inflight && cursor <= limit) {
    const Round to =
        std::min<Round>(cursor + opts_.rounds_per_request - 1, limit);
    bool covered = false;
    for (const Inflight& rq : inflight_) {
      if (rq.from <= cursor && cursor <= rq.to) {
        cursor = rq.to + 1;
        covered = true;
        break;
      }
    }
    if (covered) continue;
    const std::size_t before = inflight_.size();
    send_request(cursor, to, now_us);
    if (inflight_.size() == before) break;  // no eligible peer right now
    cursor = to + 1;
  }

  prune(now_us);
}

void CatchupSync::prune(std::uint64_t) {
  // Drop tallies the DAG has since absorbed through ordinary delivery, and
  // accepted ids the DAG now holds (or that GC retired): accepted_ only has
  // to bridge the window between sync_deliver and DAG insertion, after which
  // dag.contains() takes over as the dedup — so the set stays small even
  // across a very long catch-up.
  for (auto it = tally_.begin(); it != tally_.end();) {
    if (builder_.dag().contains(it->first) ||
        it->first.round < builder_.gc_floor()) {
      it = tally_.erase(it);
    } else {
      ++it;
    }
  }
  for (auto it = accepted_.begin(); it != accepted_.end();) {
    if (builder_.dag().contains(*it) || it->round < builder_.gc_floor()) {
      it = accepted_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace dr::node
