// Real-concurrency node runtime: one OS-thread event loop hosting the same
// protocol stack the simulator runs (reliable broadcast + threshold coin +
// DAG builder + DAG-Rider ordering), behind a thread-safe inbox.
//
// Concurrency model (see DESIGN.md "Real-concurrency runtime"): the protocol
// stack is single-threaded and lock-free by construction — every message,
// including this node's own broadcasts looping back, is dispatched on the
// node thread from the inbox. Thread-safety exists only at the boundaries:
// the net::Inbox (transport/link threads push, node thread drains), the
// sharded mempool's per-shard locks (client/ingress threads submit, node
// thread drains), the ingress server's ack queue (node thread enqueues, the
// ingress I/O thread flushes), and the delivered/commit log mutex (node
// thread appends, observers snapshot). Nothing inside rbc/, dag/, or core/
// ever sees two threads.
#pragma once

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "coin/coin.hpp"
#include "coin/dealer.hpp"
#include "coin/threshold_coin.hpp"
#include "common/assert.hpp"
#include "core/ordering.hpp"
#include "core/records.hpp"
#include "ingress/mempool.hpp"
#include "ingress/server.hpp"
#include "metrics/counters.hpp"
#include "net/bus.hpp"
#include "net/inbox.hpp"
#include "net/transport.hpp"
#include "node/byzantine.hpp"
#include "node/catchup.hpp"
#include "rbc/factory.hpp"
#include "storage/store.hpp"

namespace dr::node {

/// How the node draws its common coin. Mirrors core::CoinMode but without
/// dragging in the simulator harness header.
enum class CoinMode {
  kLocal,      ///< perfect-coin oracle (tests)
  kThreshold,  ///< shares broadcast on the coin channel
  kPiggyback,  ///< shares embedded in DAG vertices (paper footnote 1)
};

struct NodeOptions {
  rbc::RbcKind rbc_kind = rbc::RbcKind::kBracha;
  CoinMode coin_mode = CoinMode::kPiggyback;
  /// Which commit rule orders the DAG (DESIGN.md §14). kBullshark forces
  /// builder.rounds_per_wave to 2 (its wave geometry).
  core::OrderingKind ordering = core::OrderingKind::kDagRider;
  core::BullsharkOptions bullshark{};
  /// auto_blocks keeps rounds advancing when the mempool runs dry (the
  /// paper's "infinitely many blocks" assumption); size 0 = empty filler.
  /// lag_skip_threshold lets a node that restarted far behind sprint to the
  /// frontier instead of proposing into already-closed rounds.
  dag::BuilderOptions builder{.auto_blocks = true, .auto_block_size = 0,
                              .lag_skip_threshold = 2};
  /// Durable storage (DESIGN.md §10): empty = no persistence (the seed
  /// behaviour); set to a directory to WAL every accepted vertex and own
  /// proposal there and to recover from it on the next start().
  std::string wal_dir;
  /// fsync per WAL append (power-failure durability; default covers process
  /// crashes only, matching the restart tests' crash model).
  bool wal_fsync = false;
  /// Peer catch-up sync over Channel::kSync.
  CatchupOptions catchup{};
  /// Live adversarial profile (DESIGN.md §12): kHonest runs the protocol
  /// faithfully; any other value replaces the RBC with an attacking wrapper
  /// (node/byzantine.hpp). The crafted-SEND profiles require kBracha.
  ByzantineProfile byzantine = ByzantineProfile::kHonest;
  Round gc_depth_rounds = 0;
  /// Laggard-aware GC holdback: a peer heard from within this window pins
  /// the GC floor cap to just below its highest delivered round, keeping the
  /// history it may still catch-up-fetch servable (DESIGN.md §10). A peer
  /// silent for longer stops constraining the floor. 0 disables the clamp.
  std::uint64_t gc_peer_liveness_us = 2'000'000;
  std::uint64_t seed = 1;
  /// Transactions drained from the mempool into one proposed block.
  std::size_t block_max_txs = 256;
  /// Proposed-block backlog above which the loop stops draining the mempool
  /// (blocks park in the builder queue; leaving them in the mempool instead
  /// keeps them eligible for duplicate suppression).
  std::size_t max_blocks_pending = 2;
  std::size_t inbox_capacity = 1 << 16;
  /// Event-loop sleep cap when the inbox is empty.
  std::chrono::milliseconds idle_wait{1};
  /// Sharded mempool behind submit()/the ingress tier (DESIGN.md §13).
  ingress::MempoolOptions mempool{};
  /// Client ingress front end: when enabled, start() also opens a TCP
  /// tx-submission endpoint (ingress.port 0 = kernel-assigned, read back via
  /// ingress_port()) and a_deliver routes commit acks to client sessions.
  bool ingress_enable = false;
  ingress::ServerOptions ingress{};
};

/// net::Bus facade over one Transport endpoint: subscribe() registers local
/// handlers, send/broadcast go out through the transport, and dispatch()
/// (called only from the node thread) routes inbound frames to handlers.
/// This is the piece that lets rbc/ and coin/ components run unmodified on
/// real links.
class NodeBus final : public net::Bus {
 public:
  explicit NodeBus(net::Transport& transport)
      : transport_(transport), handlers_(net::kChannelCount) {}

  const Committee& committee() const override { return transport_.committee(); }

  void subscribe(ProcessId pid, net::Channel channel, Handler handler) override {
    DR_ASSERT_MSG(pid == transport_.pid(),
                  "NodeBus hosts exactly one process's handlers");
    handlers_[static_cast<std::uint32_t>(channel)] = std::move(handler);
  }

  void send(ProcessId from, ProcessId to, net::Channel channel,
            net::Payload payload) override {
    DR_ASSERT(from == transport_.pid());
    transport_.send(to, channel, std::move(payload));
  }

  void broadcast(ProcessId from, net::Channel channel,
                 net::Payload payload) override {
    DR_ASSERT(from == transport_.pid());
    // All n links (and the self-loop) share one payload buffer; only the
    // frame header is per-destination.
    for (ProcessId to = 0; to < committee().n; ++to) {
      transport_.send(to, channel, payload);
    }
  }

  /// Node-thread only.
  void dispatch(const net::Frame& f) {
    const auto idx = static_cast<std::uint32_t>(f.channel);
    if (idx < handlers_.size() && handlers_[idx]) {
      handlers_[idx](f.from, f.payload);
    }
  }

 private:
  net::Transport& transport_;
  std::vector<Handler> handlers_;
};

/// One live DAG-Rider process on a real transport.
class Node {
 public:
  /// `dealer` must outlive the node and be derived from the same master seed
  /// at every process (coin::kDealerSeedTweak); required for threshold /
  /// piggyback coin modes, may be nullptr for kLocal.
  Node(std::unique_ptr<net::Transport> transport,
       const coin::CoinDealer* dealer, NodeOptions opts = {});
  ~Node();

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  ProcessId pid() const { return transport_->pid(); }
  const Committee& committee() const { return transport_->committee(); }

  /// Starts the transport and the event loop; the loop's first act is
  /// builder().start(), broadcasting this node's round-1 vertex.
  void start();

  /// stop_loop() then stop_transport(). For in-process clusters the two
  /// phases must be split across all nodes (Cluster does this): every event
  /// loop must be joined before any transport is torn down, because peer
  /// node threads deliver straight into this node's inbox.
  void stop();
  void stop_loop();
  void stop_transport();

  /// Thread-safe client submission into the mempool. Returns false on
  /// duplicate or mempool overflow (client-facing backpressure).
  bool submit(txpool::Transaction tx);

  /// Full-verdict submission path (what the ingress server uses); submit()
  /// is the boolean convenience wrapper over this.
  ingress::SubmitStatus submit_tx(txpool::Transaction tx);

  ingress::ShardedMempool& mempool() { return mempool_; }
  /// Non-null iff opts.ingress_enable; the TCP port is assigned in start().
  ingress::IngressServer* ingress() { return ingress_.get(); }
  std::uint16_t ingress_port() const {
    return ingress_ ? ingress_->port() : 0;
  }

  /// a_bcast(b): queues an opaque block for proposal, bypassing the mempool.
  /// Thread-safe; the block rides the inbox to the node thread.
  void a_bcast(Bytes block);

  /// Microseconds since this node's construction (the `time` base of its
  /// delivery records; also the submit_time base for latency measurement).
  std::uint64_t now_us() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
  }

  std::uint64_t delivered_count() const {
    return delivered_count_.load(std::memory_order_acquire);
  }
  std::vector<core::DeliveredRecord> delivered_snapshot() const;
  std::vector<core::CommitRecord> commits_snapshot() const;

  /// Own proposals persisted to the WAL so far (0 when durability is off).
  /// Atomic: safe to poll while the node runs, unlike counters().
  std::uint64_t proposals_logged() const {
    return proposals_logged_.load(std::memory_order_relaxed);
  }

  std::uint64_t inbox_overflows() const { return inbox_.overflows(); }
  std::uint64_t backpressure_overflows() const {
    return transport_->backpressure_overflows();
  }

  /// Flat snapshot of the builder / catch-up / storage counters. Reads
  /// node-thread state, so call only after stop_loop() (or before start()).
  metrics::Counters counters() const;

  /// Application delivery hook, invoked on the node thread after the record
  /// is logged. Set before start().
  using AppDeliverFn = std::function<void(const Bytes& block, Round r,
                                          ProcessId source, std::uint64_t t_us)>;
  void set_app_deliver(AppDeliverFn fn) { app_deliver_ = std::move(fn); }

  net::Transport& transport() { return *transport_; }

 private:
  void loop();
  void refill_from_mempool();
  /// Recomputes the laggard-aware GC floor cap from per-peer progress.
  void refresh_gc_floor_cap(std::uint64_t now);
  /// Replays snapshot + WAL into the rider/builder; node thread, pre-start.
  void recover_from_store();
  /// Snapshots + rewrites the WAL whenever the GC floor has risen.
  void maybe_compact();

  NodeOptions opts_;
  std::unique_ptr<net::Transport> transport_;
  net::Inbox inbox_;
  NodeBus bus_;

  std::unique_ptr<rbc::ReliableBroadcast> rbc_;
  ByzantineRbc* byz_ = nullptr;  ///< rbc_ downview when opts_.byzantine is set
  std::unique_ptr<coin::Coin> coin_;
  std::unique_ptr<dag::DagBuilder> builder_;
  std::unique_ptr<core::OrderingRule> rider_;
  std::unique_ptr<storage::VertexStore> store_;
  std::unique_ptr<CatchupSync> catchup_;
  Round last_compact_floor_ = 0;
  /// now_us() of the last frame received from each peer (node thread only).
  std::vector<std::uint64_t> last_heard_us_;

  ingress::ShardedMempool mempool_;
  std::unique_ptr<ingress::IngressServer> ingress_;

  mutable std::mutex log_mu_;
  std::vector<core::DeliveredRecord> delivered_;
  std::vector<core::CommitRecord> commits_;
  std::atomic<std::uint64_t> delivered_count_{0};
  std::atomic<std::uint64_t> proposals_logged_{0};

  AppDeliverFn app_deliver_;
  std::chrono::steady_clock::time_point epoch_;
  std::thread thread_;
  std::atomic<bool> running_{false};
  bool loop_stopped_ = false;
  bool transport_stopped_ = false;
};

}  // namespace dr::node
