// Live Byzantine node profiles (DESIGN.md §12): the simulator's adversarial
// strategies ported to the real-concurrency runtime. A profile replaces the
// node's reliable-broadcast component with an attacking implementation that
// still runs on the ordinary node event loop over real links — so the
// adversary experiences the same concurrency, backpressure, and chaos
// faults as everyone else, and the survivors must neutralize it live.
//
// Profiles (all strongest-form: honest participation except for the attack):
//   kEquivocate — conflicting vertex variants to each half of the committee
//                 (core::EquivocatingBrachaRbc over the node's NodeBus);
//   kMute       — withholds every own broadcast (a "crashed proposer" that
//                 still echoes/readies others' traffic, keeping quorums warm
//                 while contributing no chain quality);
//   kSelective  — sends its SEND only to a 2f+1 window anchored at itself,
//                 starving a rotating f-sized blind set of first-hand copies
//                 (Bracha echo amplification must route around it).
//
// The crafted-SEND profiles (equivocate, selective) speak BrachaRbc's wire
// format and therefore require rbc_kind == kBracha; node::Node asserts this.
#pragma once

#include <cstdint>
#include <memory>

#include "core/byzantine.hpp"
#include "net/bus.hpp"
#include "rbc/rbc.hpp"

namespace dr::node {

enum class ByzantineProfile : std::uint8_t {
  kHonest = 0,
  kEquivocate,
  kMute,
  kSelective,
};

const char* to_string(ByzantineProfile p);

/// Attacking RBC wrapper: like any ReliableBroadcast, plus telemetry so
/// tests can assert the adversary actually attacked (a Byzantine test whose
/// adversary silently behaved is vacuous).
class ByzantineRbc : public rbc::ReliableBroadcast {
 public:
  virtual std::uint64_t attacks() const = 0;
};

/// Builds the attacking wrapper for `profile` (never kHonest). `inner` is
/// the honestly-constructed component; kMute wraps it, the crafted-SEND
/// profiles discard it and construct their own Bracha instance (re-
/// subscribing on the bus replaces the handlers, so the discard is safe).
std::unique_ptr<ByzantineRbc> make_byzantine_rbc(
    ByzantineProfile profile, net::Bus& bus, ProcessId pid,
    std::unique_ptr<rbc::ReliableBroadcast> inner);

}  // namespace dr::node
