#include "node/cluster.hpp"

#include <string>
#include <thread>

namespace dr::node {

Cluster::Cluster(Committee committee, NodeOptions opts, ClusterTweaks tweaks)
    : committee_(committee),
      opts_(std::move(opts)),
      tweaks_(std::move(tweaks)),
      dealer_(opts_.seed ^ coin::kDealerSeedTweak, committee),
      net_(committee) {
  DR_ASSERT_MSG(committee_.valid(), "Cluster: committee must satisfy n > 3f");
  DR_ASSERT_MSG(tweaks_.profiles.empty() ||
                    tweaks_.profiles.size() == committee_.n,
                "ClusterTweaks::profiles must cover every node or none");
  if (tweaks_.tcp_transport) {
    for (std::uint16_t port : net::pick_free_ports(committee_.n)) {
      tcp_peers_.push_back(net::TcpPeer{"127.0.0.1", port});
    }
  }
  if (opts_.ingress_enable) {
    ingress_ports_ = net::pick_free_ports(committee_.n);
  }
  nodes_.reserve(committee_.n);
  for (ProcessId pid = 0; pid < committee_.n; ++pid) {
    nodes_.push_back(build_node(pid));
  }
}

NodeOptions Cluster::node_opts(ProcessId pid) const {
  NodeOptions o = opts_;
  if (!o.wal_dir.empty()) {
    o.wal_dir += "/node-" + std::to_string(pid);
  }
  if (!tweaks_.profiles.empty()) o.byzantine = tweaks_.profiles[pid];
  if (o.ingress_enable) o.ingress.port = ingress_ports_[pid];
  return o;
}

std::unique_ptr<Node> Cluster::build_node(ProcessId pid) {
  std::unique_ptr<net::Transport> transport;
  if (tweaks_.tcp_transport) {
    transport =
        std::make_unique<net::TcpTransport>(committee_, pid, tcp_peers_);
  } else {
    transport = net_.endpoint(pid);
  }
  if (tweaks_.transport_wrap) {
    transport = tweaks_.transport_wrap(pid, std::move(transport));
    DR_ASSERT_MSG(transport != nullptr, "transport_wrap returned null");
  }
  return std::make_unique<Node>(std::move(transport), &dealer_, node_opts(pid));
}

Cluster::~Cluster() { stop(); }

void Cluster::start() {
  if (started_) return;
  started_ = true;
  for (auto& n : nodes_) n->start();
}

void Cluster::stop() {
  if (stopped_) return;
  stopped_ = true;
  for (auto& n : nodes_) n->stop_loop();
  for (auto& n : nodes_) n->stop_transport();
}

void Cluster::stop_node(ProcessId pid) {
  DR_ASSERT(pid < nodes_.size() && nodes_[pid] != nullptr);
  // Full stop, both phases: this node's loop cannot be mid-delivery into a
  // peer (InProcEndpoint::send drains under the peer's lock), and peers'
  // sends to this node drop once its endpoint goes not-ready.
  nodes_[pid]->stop();
}

void Cluster::set_profile(ProcessId pid, ByzantineProfile profile) {
  DR_ASSERT(pid < committee_.n);
  if (tweaks_.profiles.empty()) {
    tweaks_.profiles.assign(committee_.n, opts_.byzantine);
  }
  tweaks_.profiles[pid] = profile;
}

void Cluster::restart_node(ProcessId pid) {
  DR_ASSERT(pid < nodes_.size());
  DR_ASSERT_MSG(started_ && !stopped_,
                "restart_node only on a running cluster");
  nodes_[pid]->stop();  // idempotent if stop_node already ran
  nodes_[pid].reset();  // old endpoint destroyed before the slot is re-bound
  nodes_[pid] = build_node(pid);
  nodes_[pid]->start();
}

bool Cluster::wait_all_delivered(std::uint64_t count,
                                 std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  for (;;) {
    bool all = true;
    for (auto& n : nodes_) {
      if (n->delivered_count() < count) {
        all = false;
        break;
      }
    }
    if (all) return true;
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

std::vector<std::vector<core::DeliveredRecord>> Cluster::delivered_logs()
    const {
  std::vector<std::vector<core::DeliveredRecord>> out;
  out.reserve(nodes_.size());
  for (const auto& n : nodes_) out.push_back(n->delivered_snapshot());
  return out;
}

std::vector<std::vector<core::CommitRecord>> Cluster::commit_logs() const {
  std::vector<std::vector<core::CommitRecord>> out;
  out.reserve(nodes_.size());
  for (const auto& n : nodes_) out.push_back(n->commits_snapshot());
  return out;
}

}  // namespace dr::node
