#include "node/cluster.hpp"

#include <thread>

namespace dr::node {

Cluster::Cluster(Committee committee, NodeOptions opts)
    : committee_(committee),
      dealer_(opts.seed ^ coin::kDealerSeedTweak, committee),
      net_(committee) {
  DR_ASSERT_MSG(committee_.valid(), "Cluster: committee must satisfy n > 3f");
  nodes_.reserve(committee_.n);
  for (ProcessId pid = 0; pid < committee_.n; ++pid) {
    nodes_.push_back(
        std::make_unique<Node>(net_.endpoint(pid), &dealer_, opts));
  }
}

Cluster::~Cluster() { stop(); }

void Cluster::start() {
  if (started_) return;
  started_ = true;
  for (auto& n : nodes_) n->start();
}

void Cluster::stop() {
  if (stopped_) return;
  stopped_ = true;
  for (auto& n : nodes_) n->stop_loop();
  for (auto& n : nodes_) n->stop_transport();
}

bool Cluster::wait_all_delivered(std::uint64_t count,
                                 std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  for (;;) {
    bool all = true;
    for (auto& n : nodes_) {
      if (n->delivered_count() < count) {
        all = false;
        break;
      }
    }
    if (all) return true;
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

std::vector<std::vector<core::DeliveredRecord>> Cluster::delivered_logs()
    const {
  std::vector<std::vector<core::DeliveredRecord>> out;
  out.reserve(nodes_.size());
  for (const auto& n : nodes_) out.push_back(n->delivered_snapshot());
  return out;
}

std::vector<std::vector<core::CommitRecord>> Cluster::commit_logs() const {
  std::vector<std::vector<core::CommitRecord>> out;
  out.reserve(nodes_.size());
  for (const auto& n : nodes_) out.push_back(n->commits_snapshot());
  return out;
}

}  // namespace dr::node
