#include "node/node.hpp"

#include "crypto/sha256.hpp"
#include "txpool/transaction.hpp"

namespace dr::node {

Node::Node(std::unique_ptr<net::Transport> transport,
           const coin::CoinDealer* dealer, NodeOptions opts)
    : opts_(opts),
      transport_(std::move(transport)),
      inbox_(opts_.inbox_capacity),
      bus_(*transport_),
      epoch_(std::chrono::steady_clock::now()) {
  const ProcessId my_pid = transport_->pid();

  rbc_ = rbc::make_factory(opts_.rbc_kind)(bus_, my_pid, opts_.seed);

  coin::ThresholdCoin* threshold_coin = nullptr;
  switch (opts_.coin_mode) {
    case CoinMode::kLocal:
      coin_ = std::make_unique<coin::LocalCoin>(opts_.seed ^ 0xC0111ULL,
                                                committee().n);
      break;
    case CoinMode::kThreshold:
    case CoinMode::kPiggyback: {
      DR_ASSERT_MSG(dealer != nullptr,
                    "threshold coin modes need the trusted dealer setup");
      auto tc = std::make_unique<coin::ThresholdCoin>(
          bus_, coin::ProcessCoinKey(dealer, my_pid),
          /*broadcast_shares=*/opts_.coin_mode == CoinMode::kThreshold);
      threshold_coin = tc.get();
      coin_ = std::move(tc);
      break;
    }
  }

  builder_ = std::make_unique<dag::DagBuilder>(committee(), my_pid, *rbc_,
                                               opts_.builder);
  if (opts_.coin_mode == CoinMode::kPiggyback) {
    builder_->enable_coin_piggyback(
        [threshold_coin](Wave w) { return threshold_coin->share_to_embed(w); },
        [threshold_coin](ProcessId from, Wave w, std::uint64_t y) {
          threshold_coin->ingest_share(from, w, y);
        });
  }
  rider_ = std::make_unique<core::DagRider>(*builder_, *coin_);
  if (opts_.gc_depth_rounds > 0) rider_->enable_gc(opts_.gc_depth_rounds);

  rider_->set_deliver([this](const Bytes& block, Round r, ProcessId src) {
    const std::uint64_t t = now_us();
    {
      std::lock_guard<std::mutex> lk(log_mu_);
      delivered_.push_back(core::DeliveredRecord{crypto::sha256(block),
                                                 block.size(), r, src, t});
    }
    delivered_count_.fetch_add(1, std::memory_order_release);
    if (auto txs = txpool::decode_block(BytesView(block))) {
      std::lock_guard<std::mutex> lk(mempool_mu_);
      mempool_.observe_delivered(txs.value());
    }
    if (app_deliver_) app_deliver_(block, r, src, t);
  });
  rider_->set_commit_observer([this](Wave w, dag::VertexId leader, bool direct) {
    std::lock_guard<std::mutex> lk(log_mu_);
    commits_.push_back(core::CommitRecord{w, leader, direct, now_us()});
  });

  // a_bcast path: blocks ride the inbox as kApp frames from this node to
  // itself, so proposals enter the builder on the node thread like any
  // other event.
  bus_.subscribe(my_pid, net::Channel::kApp,
                 [this](ProcessId from, BytesView block) {
                   if (from != pid()) return;  // kApp is loopback-only
                   rider_->a_bcast(Bytes(block.begin(), block.end()));
                 });
}

Node::~Node() { stop(); }

void Node::start() {
  DR_ASSERT_MSG(!running_.load() && !loop_stopped_, "Node::start is one-shot");
  running_.store(true, std::memory_order_release);
  transport_->start([this](net::Frame f) {
    // Self-sends use the unbounded path: the consumer of this inbox is the
    // thread that produced them, and it must never block on itself.
    if (f.from == pid()) {
      inbox_.push_unbounded(std::move(f));
    } else {
      inbox_.push(std::move(f));
    }
  });
  thread_ = std::thread([this] { loop(); });
}

void Node::loop() {
  builder_->start();
  std::vector<net::Frame> batch;
  while (running_.load(std::memory_order_acquire)) {
    batch.clear();
    (void)inbox_.pop_all(batch, opts_.idle_wait);  // batch itself is the result
    for (const net::Frame& f : batch) {
      bus_.dispatch(f);
    }
    refill_from_mempool();
  }
}

void Node::refill_from_mempool() {
  if (builder_->blocks_pending() >= opts_.max_blocks_pending) return;
  Bytes block;
  {
    std::lock_guard<std::mutex> lk(mempool_mu_);
    if (mempool_.pending() == 0) return;
    block = mempool_.next_block(opts_.block_max_txs);
  }
  if (!block.empty()) rider_->a_bcast(std::move(block));
}

bool Node::submit(txpool::Transaction tx) {
  std::lock_guard<std::mutex> lk(mempool_mu_);
  return mempool_.submit(std::move(tx));
}

void Node::a_bcast(Bytes block) {
  net::Frame f{pid(), net::Channel::kApp, std::move(block)};
  if (std::this_thread::get_id() == thread_.get_id()) {
    inbox_.push_unbounded(std::move(f));
  } else {
    inbox_.push(std::move(f));
  }
}

void Node::stop_loop() {
  if (loop_stopped_) return;
  loop_stopped_ = true;
  running_.store(false, std::memory_order_release);
  inbox_.close();
  if (thread_.joinable()) thread_.join();
}

void Node::stop_transport() {
  if (transport_stopped_) return;
  transport_stopped_ = true;
  transport_->stop();
}

void Node::stop() {
  stop_loop();
  stop_transport();
}

std::vector<core::DeliveredRecord> Node::delivered_snapshot() const {
  std::lock_guard<std::mutex> lk(log_mu_);
  return delivered_;
}

std::vector<core::CommitRecord> Node::commits_snapshot() const {
  std::lock_guard<std::mutex> lk(log_mu_);
  return commits_;
}

}  // namespace dr::node
