#include "node/node.hpp"

#include <unordered_set>

#include "crypto/sha256.hpp"
#include "txpool/transaction.hpp"

namespace dr::node {

Node::Node(std::unique_ptr<net::Transport> transport,
           const coin::CoinDealer* dealer, NodeOptions opts)
    : opts_(opts),
      transport_(std::move(transport)),
      inbox_(opts_.inbox_capacity),
      bus_(*transport_),
      mempool_(opts_.mempool),
      epoch_(std::chrono::steady_clock::now()) {
  const ProcessId my_pid = transport_->pid();

  // The personality owns the wave geometry: Bullshark's commit rule is
  // defined over 2-round waves, so its choice overrides the builder knob.
  if (const Round rpw = core::ordering_rounds_per_wave(opts_.ordering)) {
    opts_.builder.rounds_per_wave = rpw;
  }

  rbc_ = rbc::make_factory(opts_.rbc_kind)(bus_, my_pid, opts_.seed);
  if (opts_.byzantine != ByzantineProfile::kHonest) {
    DR_ASSERT_MSG(opts_.byzantine == ByzantineProfile::kMute ||
                      opts_.rbc_kind == rbc::RbcKind::kBracha,
                  "crafted-SEND Byzantine profiles speak Bracha's wire format");
    auto byz = make_byzantine_rbc(opts_.byzantine, bus_, my_pid,
                                  std::move(rbc_));
    byz_ = byz.get();
    rbc_ = std::move(byz);
  }

  coin::ThresholdCoin* threshold_coin = nullptr;
  switch (opts_.coin_mode) {
    case CoinMode::kLocal:
      coin_ = std::make_unique<coin::LocalCoin>(opts_.seed ^ 0xC0111ULL,
                                                committee().n);
      break;
    case CoinMode::kThreshold:
    case CoinMode::kPiggyback: {
      DR_ASSERT_MSG(dealer != nullptr,
                    "threshold coin modes need the trusted dealer setup");
      auto tc = std::make_unique<coin::ThresholdCoin>(
          bus_, coin::ProcessCoinKey(dealer, my_pid),
          /*broadcast_shares=*/opts_.coin_mode == CoinMode::kThreshold);
      threshold_coin = tc.get();
      coin_ = std::move(tc);
      break;
    }
  }

  builder_ = std::make_unique<dag::DagBuilder>(committee(), my_pid, *rbc_,
                                               opts_.builder);
  if (opts_.coin_mode == CoinMode::kPiggyback) {
    builder_->enable_coin_piggyback(
        [threshold_coin](Wave w) { return threshold_coin->share_to_embed(w); },
        [threshold_coin](ProcessId from, Wave w, std::uint64_t y) {
          threshold_coin->ingest_share(from, w, y);
        });
  }
  rider_ = core::make_ordering(opts_.ordering, *builder_, *coin_,
                               opts_.bullshark);
  if (opts_.gc_depth_rounds > 0) rider_->enable_gc(opts_.gc_depth_rounds);

  rider_->set_deliver([this](const Bytes& block,
                             const crypto::Digest& block_digest, Round r,
                             ProcessId src) {
    const std::uint64_t t = now_us();
    {
      std::lock_guard<std::mutex> lk(log_mu_);
      delivered_.push_back(
          core::DeliveredRecord{block_digest, block.size(), r, src, t});
    }
    delivered_count_.fetch_add(1, std::memory_order_release);
    if (auto txs = txpool::decode_block(BytesView(block))) {
      // Commit path of the ingress tier (DESIGN.md §13): every delivered tx
      // enters the recently-committed dedup window, and the ones whose
      // submitting session lives on this node get their ack routed back.
      for (const txpool::Transaction& tx : txs.value()) {
        if (auto origin = mempool_.mark_committed(ingress::tx_digest(tx))) {
          if (ingress_) ingress_->complete(*origin);
        }
      }
    }
    if (app_deliver_) app_deliver_(block, r, src, t);
  });
  rider_->set_commit_observer([this](Wave w, dag::VertexId leader, bool direct) {
    std::lock_guard<std::mutex> lk(log_mu_);
    commits_.push_back(core::CommitRecord{w, leader, direct, now_us()});
  });

  // a_bcast path: blocks ride the inbox as kApp frames from this node to
  // itself, so proposals enter the builder on the node thread like any
  // other event.
  bus_.subscribe(my_pid, net::Channel::kApp,
                 [this](ProcessId from, const net::Payload& block) {
                   if (from != pid()) return;  // kApp is loopback-only
                   rider_->a_bcast(block.to_bytes());
                 });

  if (!opts_.wal_dir.empty()) {
    store_ = std::make_unique<storage::VertexStore>(
        committee(), my_pid,
        storage::StoreOptions{opts_.wal_dir, opts_.wal_fsync});
  }
  catchup_ = std::make_unique<CatchupSync>(bus_, my_pid, *builder_,
                                           opts_.catchup);
  last_heard_us_.assign(committee().n, 0);
  if (opts_.ingress_enable) {
    ingress_ = std::make_unique<ingress::IngressServer>(mempool_,
                                                        opts_.ingress);
  }
}

Node::~Node() { stop(); }

void Node::start() {
  DR_ASSERT_MSG(!running_.load() && !loop_stopped_, "Node::start is one-shot");
  running_.store(true, std::memory_order_release);
  transport_->start([this](net::Frame f) {
    // Self-sends use the unbounded path: the consumer of this inbox is the
    // thread that produced them, and it must never block on itself.
    if (f.from == pid()) {
      inbox_.push_unbounded(std::move(f));
    } else {
      inbox_.push(std::move(f));
    }
  });
  thread_ = std::thread([this] { loop(); });
  if (ingress_) {
    DR_ASSERT_MSG(ingress_->start(), "ingress listener failed to bind");
  }
}

void Node::loop() {
  if (store_) {
    recover_from_store();
    // Persistence hooks go in AFTER replay: replayed vertices are already in
    // the WAL, and re-appending them would double the file every restart.
    builder_->set_vertex_added(
        [this](const dag::Vertex& v) { store_->append_vertex(v); });
    builder_->set_proposal_log(
        [this](Round r, BytesView payload) {
          store_->append_proposal(r, payload);
          proposals_logged_.fetch_add(1, std::memory_order_relaxed);
        });
  }
  builder_->start();
  std::vector<net::Frame> batch;
  while (running_.load(std::memory_order_acquire)) {
    batch.clear();
    (void)inbox_.pop_all(batch, opts_.idle_wait);  // batch itself is the result
    const std::uint64_t now = now_us();
    for (const net::Frame& f : batch) {
      last_heard_us_[f.from] = now;
      bus_.dispatch(f);
    }
    refresh_gc_floor_cap(now);
    catchup_->tick(now_us());
    if (store_) maybe_compact();
    refill_from_mempool();
  }
}

void Node::refresh_gc_floor_cap(std::uint64_t now) {
  // Laggard-aware GC holdback (DESIGN.md §10): clamp the builder's GC floor
  // to just below the round of the slowest peer heard from recently, so the
  // history a live straggler still needs stays servable over catch-up sync.
  // The margin covers the straggler's own parent gap (strong edges reach one
  // round back, weak edges a few waves); a peer silent past the liveness
  // window stops constraining, and DagBuilder::apply_gc_floor bounds the
  // total holdback so a dead peer cannot pin memory forever.
  if (opts_.gc_depth_rounds == 0 || opts_.gc_peer_liveness_us == 0) return;
  // Every loop iteration: the scan is O(n) over counters already in cache,
  // and a stale cap lags the frontier by however long it goes unrefreshed,
  // eating into the margin below.
  const Round margin = opts_.gc_depth_rounds / 2 + 1;
  Round cap = dag::kNoGcFloorCap;
  for (ProcessId p = 0; p < committee().n; ++p) {
    if (p == pid()) continue;
    if (last_heard_us_[p] + opts_.gc_peer_liveness_us < now) continue;
    const Round r = builder_->highest_round_from(p);
    cap = std::min(cap, r > margin ? r - margin : Round{0});
  }
  builder_->set_gc_floor_cap(cap);
}

void Node::recover_from_store() {
  storage::RecoverResult rec = store_->recover();
  Round floor = 0;
  if (rec.snapshot.has_value()) {
    const storage::Snapshot& snap = *rec.snapshot;
    // Wave numbering and the commit rule differ between personalities; a
    // log written under one must not seed the other (DESIGN.md §14).
    DR_ASSERT_MSG(snap.ordering == static_cast<std::uint8_t>(opts_.ordering) &&
                      snap.rounds_per_wave == opts_.builder.rounds_per_wave,
                  "snapshot written under a different ordering personality");
    floor = snap.gc_floor;
    std::vector<dag::VertexId> delivered_ids;
    delivered_ids.reserve(snap.delivered.size());
    for (const core::DeliveredRecord& d : snap.delivered) {
      // Ids below the floor are pruned from the rider's dedup set anyway
      // (the causal traversal skips the compacted region wholesale).
      if (d.round >= floor) {
        delivered_ids.push_back(dag::VertexId{d.source, d.round});
      }
    }
    {
      std::lock_guard<std::mutex> lk(log_mu_);
      delivered_ = snap.delivered;
      commits_ = snap.commits;
    }
    delivered_count_.store(snap.delivered.size(), std::memory_order_release);
    rider_->restore(snap.decided_wave, snap.delivered.size(), delivered_ids);
  }
  if (!rec.snapshot.has_value() && rec.records.empty()) return;  // fresh

  // At-least-once seam (ROADMAP item 1): a restored own proposal may carry
  // client txs that were never a_delivered before the crash. Re-register
  // them as in-flight BEFORE replay, so a client resubmitting after our
  // restart dedups against the in-WAL copy instead of being re-accepted
  // into a second block — the double-delivery race. Proposals the snapshot
  // already recorded as delivered are skipped (their txs are committed);
  // for the rest, replay's a_deliver path marks whatever does commit, and
  // anything still undelivered stays deduped as in-flight.
  {
    std::unordered_set<Round> delivered_own;
    if (rec.snapshot.has_value()) {
      for (const core::DeliveredRecord& d : rec.snapshot->delivered) {
        if (d.source == pid()) delivered_own.insert(d.round);
      }
    }
    for (const storage::WalRecord& r : rec.records) {
      if (r.type != storage::WalRecordType::kProposal) continue;
      if (delivered_own.count(r.round) != 0) continue;
      const auto vx = dag::Vertex::deserialize(BytesView(r.payload));
      if (!vx.ok()) continue;
      if (auto txs = txpool::decode_block(BytesView(vx.value().block))) {
        for (const txpool::Transaction& tx : txs.value()) {
          mempool_.restore_in_flight(tx);
        }
      }
    }
  }

  builder_->begin_restore(floor);
  for (storage::WalRecord& r : rec.records) {
    if (r.type == storage::WalRecordType::kVertex) {
      builder_->restore_deliver(r.source, r.round, std::move(r.payload));
    } else {
      builder_->restore_own_proposal(r.round, std::move(r.payload));
    }
  }
  // Rebuild + deterministic replay of the post-snapshot waves: the rider's
  // snapshot guard suppresses the already-decided ones.
  builder_->finish_restore();
  last_compact_floor_ = builder_->gc_floor();
}

void Node::maybe_compact() {
  const Round floor = builder_->gc_floor();
  if (floor <= last_compact_floor_) return;
  last_compact_floor_ = floor;
  storage::Snapshot snap;
  snap.committee = committee();
  snap.pid = pid();
  snap.gc_floor = floor;
  snap.decided_wave = rider_->decided_wave();
  snap.ordering = static_cast<std::uint8_t>(opts_.ordering);
  snap.rounds_per_wave = opts_.builder.rounds_per_wave;
  {
    std::lock_guard<std::mutex> lk(log_mu_);
    snap.delivered = delivered_;
    snap.commits = commits_;
  }
  store_->compact(snap, builder_->dag());
}

void Node::refill_from_mempool() {
  while (builder_->blocks_pending() < opts_.max_blocks_pending) {
    std::vector<txpool::Transaction> txs =
        mempool_.drain(opts_.block_max_txs);
    if (txs.empty()) return;
    rider_->a_bcast(txpool::encode_block(txs));
  }
}

bool Node::submit(txpool::Transaction tx) {
  return submit_tx(std::move(tx)) == ingress::SubmitStatus::kAccepted;
}

ingress::SubmitStatus Node::submit_tx(txpool::Transaction tx) {
  // Internal (non-session) submission: origin 0 means no ack routing.
  return mempool_.submit(std::move(tx), ingress::TxOrigin{});
}

void Node::a_bcast(Bytes block) {
  net::Frame f{pid(), net::Channel::kApp, std::move(block)};
  if (std::this_thread::get_id() == thread_.get_id()) {
    inbox_.push_unbounded(std::move(f));
  } else {
    inbox_.push(std::move(f));
  }
}

void Node::stop_loop() {
  if (loop_stopped_) return;
  loop_stopped_ = true;
  running_.store(false, std::memory_order_release);
  inbox_.close();
  if (thread_.joinable()) thread_.join();
}

void Node::stop_transport() {
  if (transport_stopped_) return;
  transport_stopped_ = true;
  // Ingress sessions go first: client-facing sockets must not outlive the
  // loop that produced their acks.
  if (ingress_) ingress_->stop();
  transport_->stop();
}

void Node::stop() {
  stop_loop();
  stop_transport();
}

metrics::Counters Node::counters() const {
  metrics::Counters out;
  const dag::BuilderStats& b = builder_->stats();
  out.emplace_back("builder.gc_dropped_deliveries", b.gc_dropped_deliveries);
  out.emplace_back("builder.gc_dropped_buffered", b.gc_dropped_buffered);
  out.emplace_back("builder.quota_rejections", b.quota_rejections);
  out.emplace_back("builder.sync_deliveries", b.sync_deliveries);
  out.emplace_back("builder.rounds_skipped", b.rounds_skipped);
  out.emplace_back("builder.proposals_rebroadcast", b.proposals_rebroadcast);
  out.emplace_back("builder.restored_vertices", b.restored_vertices);
  out.emplace_back("builder.gc_floor_holds", b.gc_floor_holds);
  // Frontier gauges (not monotonic): where this builder stands right now.
  out.emplace_back("builder.current_round", builder_->current_round());
  out.emplace_back("builder.gc_floor", builder_->gc_floor());
  out.emplace_back("builder.highest_seen_round",
                   builder_->highest_seen_round());
  out.emplace_back("builder.buffer_size", builder_->buffer_size());
  out.emplace_back("builder.lowest_missing_parent_round",
                   builder_->lowest_missing_parent_round());
  const CatchupStats& c = catchup_->stats();
  out.emplace_back("catchup.requests_sent", c.requests_sent);
  out.emplace_back("catchup.responses_received", c.responses_received);
  out.emplace_back("catchup.responses_served", c.responses_served);
  out.emplace_back("catchup.vertices_accepted", c.vertices_accepted);
  out.emplace_back("catchup.vertices_mismatched", c.vertices_mismatched);
  out.emplace_back("catchup.retries", c.retries);
  if (store_) {
    const storage::StoreStats& s = store_->stats();
    out.emplace_back("store.vertices_appended", s.vertices_appended);
    out.emplace_back("store.proposals_appended", s.proposals_appended);
    out.emplace_back("store.bytes_appended", s.bytes_appended);
    out.emplace_back("store.compactions", s.compactions);
    out.emplace_back("store.recovered_vertices", s.recovered_vertices);
    out.emplace_back("store.recovered_proposals", s.recovered_proposals);
    out.emplace_back("store.recovered_truncated_bytes",
                     s.recovered_truncated_bytes);
    out.emplace_back("store.snapshot_loaded", s.snapshot_loaded ? 1 : 0);
  }
  const ingress::MempoolStats m = mempool_.stats();
  out.emplace_back("mempool.accepted", m.accepted);
  out.emplace_back("mempool.rejected_busy", m.rejected_busy);
  out.emplace_back("mempool.rejected_dup_pending", m.rejected_dup_pending);
  out.emplace_back("mempool.rejected_dup_committed",
                   m.rejected_dup_committed);
  out.emplace_back("mempool.rejected_overflow", m.rejected_overflow);
  out.emplace_back("mempool.rejected_too_large", m.rejected_too_large);
  out.emplace_back("mempool.drained", m.drained);
  out.emplace_back("mempool.committed_with_origin", m.committed_with_origin);
  out.emplace_back("mempool.committed_foreign", m.committed_foreign);
  out.emplace_back("mempool.window_evictions", m.window_evictions);
  out.emplace_back("mempool.restored_in_flight", m.restored_in_flight);
  out.emplace_back("mempool.pending", mempool_.pending());
  out.emplace_back("mempool.in_flight", mempool_.in_flight());
  if (ingress_) metrics::append_prefixed(out, "ingress", ingress_->counters());
  // Transport-side introspection: backpressure plus whatever the concrete
  // transport (or a chaos decorator around it) exposes, so fault-injection
  // soaks are auditable from the same flat snapshot as everything else.
  out.emplace_back("transport.backpressure_overflows",
                   transport_->backpressure_overflows());
  metrics::append_prefixed(out, "transport", transport_->counters());
  if (byz_ != nullptr) {
    out.emplace_back("byzantine.attacks", byz_->attacks());
  }
  out.emplace_back("ordering.kind",
                   static_cast<std::uint64_t>(opts_.ordering));
  out.emplace_back("ordering.decided_wave", rider_->decided_wave());
  out.emplace_back("ordering.waves_evaluated", rider_->waves_evaluated());
  out.emplace_back("ordering.waves_without_direct_commit",
                   rider_->waves_without_direct_commit());
  if (rider_->kind() == core::OrderingKind::kBullshark) {
    const auto* bs = static_cast<const core::BullsharkRider*>(rider_.get());
    out.emplace_back("ordering.steady_commits", bs->steady_commits());
    out.emplace_back("ordering.fallback_commits", bs->fallback_commits());
    out.emplace_back("ordering.fallback_entries", bs->fallback_entries());
    out.emplace_back(
        "ordering.fallback_mode",
        bs->mode() == core::BullsharkRider::Mode::kFallback ? 1 : 0);
  }
  return out;
}

std::vector<core::DeliveredRecord> Node::delivered_snapshot() const {
  std::lock_guard<std::mutex> lk(log_mu_);
  return delivered_;
}

std::vector<core::CommitRecord> Node::commits_snapshot() const {
  std::lock_guard<std::mutex> lk(log_mu_);
  return commits_;
}

}  // namespace dr::node
