#include "node/soak.hpp"

#include <algorithm>
#include <memory>
#include <thread>
#include <utility>

#include "common/assert.hpp"
#include "common/rng.hpp"
#include "core/audit.hpp"
#include "ingress/loadgen.hpp"
#include "net/chaos.hpp"

namespace dr::node {
namespace {

/// Salt separating the soak's schedule stream (Byzantine seat, churn victim
/// and timing) from the ChaosPlan stream derived from the same user seed.
constexpr std::uint64_t kSoakSeedTweak = 0x50A1C5EEDULL;

}  // namespace

std::string SoakResult::describe() const {
  std::string out = "chaos-soak seed=" + std::to_string(seed);
  out += std::string(" ordering=") + core::to_string(ordering);
  out += " byz_pid=" + std::to_string(byzantine_pid);
  out += " churn_pid=" + std::to_string(churn_pid);
  out += " plan=" + plan;
  if (!violation.empty()) out += " VIOLATION: " + violation;
  return out;
}

SoakResult run_chaos_soak(const SoakOptions& opts) {
  DR_ASSERT_MSG(!opts.with_churn || !opts.wal_dir.empty(),
                "churn requires a wal_dir to restart from");
  const Committee committee = Committee::for_n(opts.n);
  DR_ASSERT_MSG(committee.valid() && committee.f >= 1,
                "chaos soak needs n >= 4 (f >= 1)");

  SoakResult result;
  result.seed = opts.seed;
  result.ordering = opts.ordering;

  // Everything adversarial derives from the one seed: the link-fault plan
  // from its own stream inside randomized(), the seat/timing choices below
  // from a tweaked stream so adding a knob never shifts the plan.
  const net::ChaosPlan plan =
      net::ChaosPlan::randomized(opts.seed, opts.n, opts.with_partition);
  result.plan = plan.describe();

  SplitMix64 sched(opts.seed ^ kSoakSeedTweak);
  const ProcessId byz_pid =
      opts.byzantine != ByzantineProfile::kHonest
          ? static_cast<ProcessId>(sched.next() % opts.n)
          : static_cast<ProcessId>(opts.n);
  ProcessId churn_pid = static_cast<ProcessId>(opts.n);
  std::uint64_t churn_stop_ms = 0;
  std::uint64_t churn_down_ms = 0;
  if (opts.with_churn) {
    // Crash an honest node: restarting the adversary mid-attack is a
    // different experiment (equivocation state does not survive a reboot).
    do {
      churn_pid = static_cast<ProcessId>(sched.next() % opts.n);
    } while (churn_pid == byz_pid);
    churn_stop_ms = 80 + sched.next() % 120;
    churn_down_ms = 40 + sched.next() % 120;
  }
  result.byzantine_pid = byz_pid;
  result.churn_pid = churn_pid;

  NodeOptions nopts;
  nopts.seed = opts.seed;
  nopts.ordering = opts.ordering;
  nopts.wal_dir = opts.wal_dir;
  nopts.ingress_enable = opts.with_ingress;

  ClusterTweaks tweaks;
  tweaks.transport_wrap = [plan](ProcessId,
                                 std::unique_ptr<net::Transport> inner) {
    return std::make_unique<net::ChaosTransport>(std::move(inner), plan);
  };
  if (byz_pid < opts.n) {
    tweaks.profiles.assign(opts.n, ByzantineProfile::kHonest);
    tweaks.profiles[byz_pid] = opts.byzantine;
  }

  Cluster cluster(committee, nopts, std::move(tweaks));
  const auto deadline = std::chrono::steady_clock::now() + opts.timeout;
  cluster.start();

  // Client traffic rides the whole fault schedule: the loadgen submits
  // through every node's ingress endpoint (including the churn victim's —
  // its clients redial the stable port and resubmit after the restart).
  std::unique_ptr<ingress::LoadGen> loadgen;
  if (opts.with_ingress) {
    ingress::LoadGenOptions lg;
    lg.clients = opts.ingress_clients;
    lg.connections = std::max<std::size_t>(8, opts.n * 4);
    for (ProcessId pid = 0; pid < opts.n; ++pid) {
      lg.targets.push_back(
          ingress::LoadGenTarget{"127.0.0.1", cluster.ingress_port(pid)});
    }
    lg.rate_tps = opts.ingress_rate_tps;
    lg.churn_period_ms = opts.ingress_churn_period_ms;
    lg.seed = sched.next();
    lg.connect_timeout_ms = 500;
    lg.drain_ms = 500;
    loadgen = std::make_unique<ingress::LoadGen>(lg);
    loadgen->start();
  }

  if (opts.with_churn) {
    std::this_thread::sleep_for(std::chrono::milliseconds(churn_stop_ms));
    cluster.stop_node(churn_pid);
    std::this_thread::sleep_for(std::chrono::milliseconds(churn_down_ms));
    cluster.restart_node(churn_pid);
  }

  const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - std::chrono::steady_clock::now());
  result.progressed = cluster.wait_all_delivered(
      opts.target_delivered, std::max(remaining, std::chrono::milliseconds(1)));
  if (loadgen) {
    // Wind the clients down before the nodes: their sessions die with the
    // ingress servers, and the drain window wants live ack paths.
    const ingress::LoadGenReport lr = loadgen->stop_and_report();
    result.ingress_submitted = lr.submitted;
    result.ingress_acked = lr.acked;
    result.ingress_resubmitted = lr.resubmitted;
    result.ingress_churn_events = lr.churn_events;
    result.ingress_ack_p50_ms = lr.ack_latency_ms.percentile(0.50);
    result.ingress_ack_p99_ms = lr.ack_latency_ms.percentile(0.99);
  }
  cluster.stop();

  auto delivered = cluster.delivered_logs();
  auto commits = cluster.commit_logs();
  std::vector<metrics::Counters> per_node;
  per_node.reserve(opts.n);
  for (ProcessId pid = 0; pid < opts.n; ++pid) {
    per_node.push_back(cluster.node(pid).counters());
  }
  result.counters = metrics::aggregate(per_node);
  for (const auto& [name, value] : per_node[byz_pid < opts.n ? byz_pid : 0]) {
    if (name == "byzantine.attacks") result.byzantine_attacks = value;
  }

  // The BAB properties quantify over correct processes; a live adversary's
  // own log is not evidence of anything (it may say whatever it likes).
  if (byz_pid < opts.n) {
    delivered.erase(delivered.begin() + byz_pid);
    commits.erase(commits.begin() + byz_pid);
  }

  if (opts.canary && !delivered.empty() && delivered[0].size() >= 2) {
    // Self-test: duplicate (round, source) inside one log — an Integrity
    // violation every auditor pass must catch regardless of run timing.
    delivered[0][1].round = delivered[0][0].round;
    delivered[0][1].source = delivered[0][0].source;
  }

  if (auto v = core::audit_logs(delivered, commits)) {
    result.violation = *v;
  }
  result.ok = result.progressed && result.violation.empty();
  return result;
}

}  // namespace dr::node
