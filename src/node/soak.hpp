// Seeded chaos soak driver (DESIGN.md §12): runs one live cluster under a
// randomized fault schedule — chaos links, scripted partition, crash-churn,
// an optional live Byzantine node — and judges the surviving logs with the
// shared BAB auditors (core/audit.hpp). One seed pins the entire adversarial
// schedule: the ChaosPlan, the Byzantine seat, and the churn victim/timing
// all derive from it, so SoakResult::describe() is a complete replay recipe.
//
// The driver owns no files: callers that want churn (which needs durable
// state to restart from) pass a caller-created wal_dir. This keeps file I/O
// confined to src/storage/ per the daglint file-io rule.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

#include "metrics/counters.hpp"
#include "node/cluster.hpp"

namespace dr::node {

struct SoakOptions {
  std::uint64_t seed = 1;
  std::uint32_t n = 4;
  /// Ordering personality the whole cluster runs under (DESIGN.md §14).
  core::OrderingKind ordering = core::OrderingKind::kDagRider;
  /// Blocks every (audited) node must a_deliver for the run to count as
  /// having made progress.
  std::uint64_t target_delivered = 40;
  std::chrono::milliseconds timeout{30'000};
  /// Gates the randomized plan's scripted-partition clause.
  bool with_partition = true;
  /// Crash-stop one honest node mid-run and restart it (requires wal_dir so
  /// the victim has a WAL to recover from before catch-up sync tops it up).
  bool with_churn = false;
  /// != kHonest seats one live adversary at a seed-derived pid; its logs are
  /// excluded from the audit (the BAB model judges correct processes only).
  ByzantineProfile byzantine = ByzantineProfile::kHonest;
  /// Base directory for per-node WALs; empty = no persistence (and no churn).
  std::string wal_dir;
  /// Self-test hook: corrupt one delivered record before auditing, proving
  /// the harness catches violations and replays them from the printed seed.
  bool canary = false;
  /// Drive client traffic through every node's TCP ingress tier for the
  /// whole run, with seeded client connect/disconnect churn — the
  /// reconnect-resubmit path exercised under the same fault schedule as the
  /// protocol (DESIGN.md §13).
  bool with_ingress = false;
  std::uint64_t ingress_clients = 2'000;
  double ingress_rate_tps = 2'000.0;
  /// Loadgen-side connection churn period (0 = no client churn).
  std::uint64_t ingress_churn_period_ms = 150;
};

struct SoakResult {
  bool ok = false;          ///< progressed && no auditor violation
  bool progressed = false;  ///< every audited node hit target_delivered
  std::string violation;    ///< first auditor violation ("" when clean)
  std::uint64_t seed = 0;
  core::OrderingKind ordering = core::OrderingKind::kDagRider;
  std::string plan;  ///< ChaosPlan::describe() of the schedule that ran
  /// pid of the seated adversary, or n (== "none") when all-honest.
  ProcessId byzantine_pid = 0;
  std::uint64_t byzantine_attacks = 0;
  /// pid crashed and restarted mid-run, or n when churn was off.
  ProcessId churn_pid = 0;
  /// Cluster-wide counter aggregate (includes transport.chaos.* fault
  /// counts, transport.backpressure_overflows, and — with ingress on —
  /// the mempool.* / ingress.* families).
  metrics::Counters counters;
  /// Ingress loadgen outcome (all zero when with_ingress was off).
  std::uint64_t ingress_submitted = 0;
  std::uint64_t ingress_acked = 0;
  std::uint64_t ingress_resubmitted = 0;
  std::uint64_t ingress_churn_events = 0;
  double ingress_ack_p50_ms = 0.0;
  double ingress_ack_p99_ms = 0.0;

  /// One-line replay recipe, printed on any violation.
  std::string describe() const;
};

/// Runs one seeded soak to completion. Deterministic in its adversarial
/// schedule (see net/chaos.hpp for what the seed does and does not pin).
SoakResult run_chaos_soak(const SoakOptions& opts);

}  // namespace dr::node
