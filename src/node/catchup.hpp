// Peer catch-up sync (DESIGN.md §10): lets a restarted or lagging node fetch
// DAG vertices it missed while down, instead of waiting for future RBC
// traffic that will never re-send history. Runs entirely on the node thread
// — the kSync handler and tick() are both dispatched from Node::loop — and
// sends nothing unless the node is demonstrably behind.
//
// Trust model: a single peer's response proves nothing (a Byzantine peer can
// fabricate any vertex bytes). A fetched vertex is only fed to the builder
// once f+1 DISTINCT peers returned byte-identical payloads for the same
// (source, round) slot — at least one of them is correct, and a correct peer
// only serves vertices its own RBC r_delivered. The vertex then still passes
// through DagBuilder::sync_deliver's ordinary validation/parent gates, so
// catch-up can delay liveness but never corrupt the DAG.
//
// Request discipline: at most `max_inflight` round-ranges outstanding, each
// covering `rounds_per_request` rounds and replicated to f+1 distinct peers
// at once (one volley of responses can then complete the byte-match tally —
// essential while the peers' GC floors are advancing through the requested
// rounds), re-sent to the next peers after `retry_after_us`; per-peer
// exponential backoff keeps a dead or slow peer from absorbing every
// request.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <unordered_set>
#include <vector>

#include "dag/builder.hpp"
#include "net/bus.hpp"
#include "net/frame.hpp"

namespace dr::node {

struct CatchupOptions {
  bool enabled = true;
  /// Maximum round-ranges outstanding at once.
  std::size_t max_inflight = 4;
  /// Rounds per VertexRequest (<= net::kMaxSyncRoundSpan).
  Round rounds_per_request = 8;
  /// Re-issue an unanswered request (to a different peer) after this long.
  std::uint64_t retry_after_us = 200'000;
  /// Per-peer exponential backoff after an unanswered request.
  std::uint64_t backoff_initial_us = 100'000;
  std::uint64_t backoff_max_us = 2'000'000;
  /// Server-side caps per response (vertex count <= net::kMaxSyncVertices).
  std::size_t max_response_vertices = net::kMaxSyncVertices;
  std::size_t max_response_bytes = 1u << 20;
  /// Only sync when the observed frontier is at least this many rounds
  /// ahead of the local round — ordinary delivery skew is not lag.
  Round min_lag = 2;
};

/// Monotonic counters, surfaced through node::Node::counters().
struct CatchupStats {
  std::uint64_t requests_sent = 0;
  std::uint64_t responses_received = 0;
  std::uint64_t responses_served = 0;
  std::uint64_t vertices_accepted = 0;   ///< reached f+1 matching copies
  std::uint64_t vertices_mismatched = 0; ///< conflicting payloads for a slot
  std::uint64_t retries = 0;
};

class CatchupSync {
 public:
  /// Subscribes to Channel::kSync on `bus`. `builder` must outlive this.
  CatchupSync(net::Bus& bus, ProcessId pid, dag::DagBuilder& builder,
              CatchupOptions opts);

  /// Drives the requester side; call from the node loop with now_us().
  void tick(std::uint64_t now_us);

  const CatchupStats& stats() const { return stats_; }

 private:
  struct Inflight {
    Round from = 0;
    Round to = 0;  ///< inclusive
    std::uint64_t sent_at_us = 0;
  };
  struct PeerState {
    std::uint64_t backoff_until_us = 0;
    std::uint64_t backoff_us = 0;
  };

  void on_sync_frame(ProcessId from, const net::Payload& payload);
  void serve_request(ProcessId from, const net::VertexRequest& req);
  void ingest_response(ProcessId from, net::VertexResponse& resp);
  /// Drops tally/dedup state for ids the DAG has absorbed or GC retired.
  void prune(std::uint64_t now_us);
  /// Next peer (round-robin, != pid_) not currently backing off.
  bool choose_peer(std::uint64_t now_us, ProcessId& out);
  void send_request(Round from, Round to, std::uint64_t now_us);

  net::Bus& bus_;
  ProcessId pid_;
  dag::DagBuilder& builder_;
  CatchupOptions opts_;
  Committee committee_;

  /// One payload variant for a slot: the bytes (shared, not copied per
  /// response) and the distinct peers that returned exactly these bytes.
  struct Voucher {
    net::Payload payload;
    std::set<ProcessId> peers;
  };

  std::vector<Inflight> inflight_;
  std::vector<PeerState> peers_;
  ProcessId next_peer_ = 0;  ///< round-robin cursor
  /// Response tally: per slot, payload digest -> voucher. Keying by the
  /// memoized SHA-256 digest makes the f+1 byte-match rule O(1) per response
  /// instead of a full byte-wise map compare, under the same
  /// collision-resistance assumption the hash-echo RBC already relies on.
  std::map<dag::VertexId, std::map<crypto::Digest, Voucher>> tally_;
  /// Slots already handed to the builder (sync_deliver is one-shot here).
  std::unordered_set<dag::VertexId, dag::VertexIdHash> accepted_;
  CatchupStats stats_;
};

}  // namespace dr::node
