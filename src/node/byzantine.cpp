#include "node/byzantine.hpp"

#include "common/assert.hpp"
#include "rbc/bracha.hpp"

namespace dr::node {
namespace {

/// kEquivocate: delegates to the bus-generic simulator strategy — the exact
/// same attack code the discrete-event property sweeps run, now on threads.
class EquivocateRbc final : public ByzantineRbc {
 public:
  EquivocateRbc(net::Bus& bus, ProcessId pid) : inner_(bus, pid) {}

  void set_deliver(DeliverFn fn) override { inner_.set_deliver(std::move(fn)); }
  void broadcast(Round r, net::Payload payload) override {
    inner_.broadcast(r, std::move(payload));
  }
  std::uint64_t attacks() const override { return inner_.equivocations(); }

 private:
  core::EquivocatingBrachaRbc inner_;
};

/// kMute: swallows every own broadcast; everything else (echo/ready
/// participation, delivery of others' vertices) stays honest through the
/// wrapped instance, whose bus subscriptions remain live.
class MuteRbc final : public ByzantineRbc {
 public:
  explicit MuteRbc(std::unique_ptr<rbc::ReliableBroadcast> inner)
      : inner_(std::move(inner)) {}

  void set_deliver(DeliverFn fn) override { inner_->set_deliver(std::move(fn)); }
  void broadcast(Round, net::Payload) override { ++withheld_; }
  std::uint64_t attacks() const override { return withheld_; }

 private:
  std::unique_ptr<rbc::ReliableBroadcast> inner_;
  std::uint64_t withheld_ = 0;
};

/// kSelective: hand-crafts its Bracha SEND and delivers it only to the
/// quorum-sized window of ids starting at itself; the remaining f processes
/// never see a first-hand copy and must rely on echo amplification.
class SelectiveRbc final : public ByzantineRbc {
 public:
  SelectiveRbc(net::Bus& bus, ProcessId pid)
      : bus_(bus), pid_(pid), inner_(bus, pid) {}

  void set_deliver(DeliverFn fn) override { inner_.set_deliver(std::move(fn)); }

  void broadcast(Round r, net::Payload payload) override {
    const net::Payload send(
        core::encode_bracha_send(pid_, r, payload.view()));
    const std::uint32_t n = bus_.n();
    const std::uint32_t favored = quorum_2f1(n);
    for (std::uint32_t i = 0; i < favored; ++i) {
      const ProcessId to = (pid_ + i) % n;
      bus_.send(pid_, to, net::Channel::kBracha, send);
    }
    ++attacks_;
  }
  std::uint64_t attacks() const override { return attacks_; }

 private:
  net::Bus& bus_;
  ProcessId pid_;
  rbc::BrachaRbc inner_;
  std::uint64_t attacks_ = 0;
};

}  // namespace

const char* to_string(ByzantineProfile p) {
  switch (p) {
    case ByzantineProfile::kHonest: return "honest";
    case ByzantineProfile::kEquivocate: return "equivocate";
    case ByzantineProfile::kMute: return "mute";
    case ByzantineProfile::kSelective: return "selective";
  }
  return "?";
}

std::unique_ptr<ByzantineRbc> make_byzantine_rbc(
    ByzantineProfile profile, net::Bus& bus, ProcessId pid,
    std::unique_ptr<rbc::ReliableBroadcast> inner) {
  switch (profile) {
    case ByzantineProfile::kEquivocate:
      return std::make_unique<EquivocateRbc>(bus, pid);
    case ByzantineProfile::kMute:
      return std::make_unique<MuteRbc>(std::move(inner));
    case ByzantineProfile::kSelective:
      return std::make_unique<SelectiveRbc>(bus, pid);
    case ByzantineProfile::kHonest:
      break;
  }
  DR_ASSERT_MSG(false, "make_byzantine_rbc: kHonest has no attacking wrapper");
  return nullptr;
}

}  // namespace dr::node
