#include "baselines/dumbo/dumbo.hpp"

namespace dr::baselines {
namespace {

Bytes encode_candidate(ProcessId proposer, const dr::crypto::Digest& root) {
  ByteWriter w(40);
  w.u32(proposer);
  w.raw(BytesView{root.data(), root.size()});
  return std::move(w).take();
}

[[nodiscard]] bool decode_candidate(BytesView data, ProcessId& proposer,
                                    dr::crypto::Digest& root) {
  ByteReader in(data);
  proposer = in.u32();
  Bytes raw = in.raw(dr::crypto::kDigestSize);
  if (!in.done()) return false;
  std::copy(raw.begin(), raw.end(), root.begin());
  return true;
}

}  // namespace

DumboMvba::DumboMvba(sim::Network& net, ProcessId pid, coin::Coin& coin,
                     DecideFn decide)
    : net_(net),
      pid_(pid),
      decide_(std::move(decide)),
      dispersal_(net, pid, sim::Channel::kDumbo),
      vaba_(net, pid, coin,
            [this](SlotId slot, ProcessId proposer, const Bytes& value) {
              on_vaba_decide(slot, proposer, value);
            },
            sim::Channel::kVaba) {
  dispersal_.set_available(
      [this](const crypto::Digest& root) { on_available(root); });
}

void DumboMvba::propose(SlotId slot, Bytes value) {
  SlotState& st = slots_[slot];
  st.my_root = dispersal_.disperse(value);
  root_to_slot_[st.my_root] = slot;
  // Availability may already hold (STORED acks race the disperse return
  // only in retries; check anyway for idempotence).
  if (dispersal_.is_available(st.my_root)) on_available(st.my_root);
}

void DumboMvba::on_available(const crypto::Digest& root) {
  auto it = root_to_slot_.find(root);
  if (it == root_to_slot_.end()) return;  // someone else's dispersal
  const SlotId slot = it->second;
  SlotState& st = slots_[slot];
  if (st.proposed_to_vaba || st.decided) return;
  st.proposed_to_vaba = true;
  vaba_.propose(slot, encode_candidate(pid_, root));
}

void DumboMvba::on_vaba_decide(SlotId slot, ProcessId /*proposer*/,
                               const Bytes& value) {
  SlotState& st = slots_[slot];
  if (st.decided) return;
  ProcessId candidate_owner = 0;
  crypto::Digest root{};
  if (!decode_candidate(value, candidate_owner, root)) return;
  dispersal_.retrieve(root, [this, slot, candidate_owner](
                                const crypto::Digest&, Bytes batch) {
    SlotState& st = slots_[slot];
    if (st.decided) return;
    st.decided = true;
    if (decide_) decide_(slot, candidate_owner, batch);
  });
}

bool DumboMvba::decided(SlotId slot) const {
  auto it = slots_.find(slot);
  return it != slots_.end() && it->second.decided;
}

}  // namespace dr::baselines
