// Dumbo-MVBA-style multi-valued validated agreement (Lu, Lu, Tang, Wang,
// PODC'20) — the amortized-O(n) baseline of Table 1. The trick over plain
// VABA: big proposals are *dispersed* (AVID, O(|v| + n log n) bits), the
// expensive agreement runs only on 36-byte commitment roots, and just the
// winning proposal is retrieved.
//
// Per slot:
//   1. disperse(my batch) -> root
//   2. when 2f+1 STORED acks for my root: vaba.propose(slot, (pid, root))
//   3. on VABA decide (slot, winner, (q, root_q)): retrieve(root_q)
//   4. on retrieval: deliver (slot, q, batch)
//
// Simulation note: VABA's external-validity check ("root is available") is
// enforced at propose time by the proposer's own 2f+1 STORED quorum; the
// crash-fault experiments never exercise a Byzantine proposer lying about
// availability (DESIGN.md §3).
#pragma once

#include <functional>
#include <map>

#include "baselines/vaba/vaba.hpp"
#include "rbc/avid_dispersal.hpp"
#include "sim/network.hpp"

namespace dr::baselines {

class DumboMvba {
 public:
  using DecideFn =
      std::function<void(SlotId slot, ProcessId proposer, const Bytes& value)>;

  DumboMvba(sim::Network& net, ProcessId pid, coin::Coin& coin, DecideFn decide);

  void propose(SlotId slot, Bytes value);
  bool decided(SlotId slot) const;

 private:
  struct SlotState {
    crypto::Digest my_root{};
    bool proposed_to_vaba = false;
    bool decided = false;
  };

  void on_available(const crypto::Digest& root);
  void on_vaba_decide(SlotId slot, ProcessId proposer, const Bytes& value);

  sim::Network& net_;
  ProcessId pid_;
  DecideFn decide_;
  rbc::AvidDispersal dispersal_;
  Vaba vaba_;
  std::map<SlotId, SlotState> slots_;
  std::map<crypto::Digest, SlotId> root_to_slot_;
};

}  // namespace dr::baselines
