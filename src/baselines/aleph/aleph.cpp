#include "baselines/aleph/aleph.hpp"

namespace dr::baselines {

AlephOrderer::AlephOrderer(dag::DagBuilder& builder, sim::Network& net,
                           ProcessId pid, coin::Coin& coin)
    : builder_(builder),
      net_(net),
      pid_(pid),
      bba_(net, pid, coin,
           [this](std::uint64_t instance, bool value) {
             on_bba_decide(instance, value);
           }) {
  builder_.set_vertex_added([this](const dag::Vertex& v) { on_vertex_added(v); });
}

void AlephOrderer::on_vertex_added(const dag::Vertex& v) {
  // A late vertex for a slot already being voted on: input was already cast
  // (possibly 0); nothing to retract — that is precisely Aleph's validity
  // gap. New DAG height may unlock voting for older rounds though.
  (void)v;
  maybe_start_votes();
}

void AlephOrderer::maybe_start_votes() {
  const dag::Dag& dag = builder_.dag();
  const Round top = dag.max_round();
  // Vote on round r's slots once the DAG reaches r + kLag.
  while (votes_started_upto_ + kLag < top) {
    const Round r = ++votes_started_upto_;
    for (ProcessId p = 0; p < net_.n(); ++p) {
      const bool have = dag.contains(dag::VertexId{p, r});
      bba_.propose(slot_instance(p, r), have);
    }
  }
}

void AlephOrderer::on_bba_decide(std::uint64_t instance, bool value) {
  const ProcessId p = slot_process(instance);
  const Round r = slot_round(instance);
  decisions_[r][p] = value;
  drain_output();
}

void AlephOrderer::drain_output() {
  const dag::Dag& dag = builder_.dag();
  while (true) {
    auto it = decisions_.find(next_round_to_output_);
    if (it == decisions_.end() || it->second.size() < net_.n()) return;
    // All n slot decisions for this round are in. Included vertices must be
    // present locally before output — BBA validity guarantees some correct
    // process had it, so reliable broadcast will deliver it here too.
    for (const auto& [p, included] : it->second) {
      if (included && !dag.contains(dag::VertexId{p, next_round_to_output_})) {
        return;  // wait for the vertex to arrive
      }
    }
    for (const auto& [p, included] : it->second) {
      if (!included) {
        // Slot decided out: if the vertex exists (or arrives later), its
        // block is dropped forever — Aleph's missing-Validity in action.
        ++excluded_count_;
        continue;
      }
      const dag::Vertex* v = dag.get(dag::VertexId{p, next_round_to_output_});
      ++delivered_count_;
      if (deliver_) deliver_(v->block, v->round, v->source);
    }
    decisions_.erase(it);
    ++next_round_to_output_;
  }
}

}  // namespace dr::baselines
