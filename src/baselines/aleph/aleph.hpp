// Aleph-style DAG BFT (Gągol, Leśniak, Straszak, Świętek, AFT'19) — the
// related-work comparator of §7. Like DAG-Rider it builds a round-based DAG
// over reliable broadcast; unlike DAG-Rider it runs a *binary Byzantine
// agreement per DAG slot* to decide whether each vertex is included, then
// orders included vertices round by round.
//
// Per round r, slot (p, r): when this process's DAG reaches round r + kLag,
// it inputs to BBA instance (p, r) the bit "is (p, r) in my DAG?". Decided-1
// vertices of a round are output (once all of the round's slots decided and
// all earlier rounds were output) in source order.
//
// What this reproduces from the paper's comparison:
//   * cost: n BBA instances per round, each O(n^2) messages -> O(n^3) per
//     round of n vertices, vs DAG-Rider's zero ordering messages;
//   * no Validity: a slow-but-correct process's vertex can be decided 0 and
//     is then dropped forever (DAG-Rider's weak edges prevent exactly this);
//   * latency: a round outputs only when the SLOWEST of its n BBAs decides
//     (max of n geometrics), vs DAG-Rider's single-coin waves.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <set>

#include "baselines/bba/binary_agreement.hpp"
#include "dag/builder.hpp"
#include "sim/network.hpp"

namespace dr::baselines {

class AlephOrderer {
 public:
  /// deliver(block, round, source) — same shape as DAG-Rider's a_deliver.
  using DeliverFn =
      std::function<void(const Bytes& block, Round r, ProcessId source)>;

  /// How many rounds the DAG must run ahead of round r before voting on
  /// r's slots (gives slow vertices a chance to arrive; the paper's Aleph
  /// votes with the DAG structure itself — a fixed lag models it simply).
  static constexpr Round kLag = 2;

  AlephOrderer(dag::DagBuilder& builder, sim::Network& net, ProcessId pid,
               coin::Coin& coin);

  void set_deliver(DeliverFn fn) { deliver_ = std::move(fn); }

  Round rounds_output() const { return next_round_to_output_ - 1; }
  std::uint64_t delivered_count() const { return delivered_count_; }
  std::uint64_t excluded_count() const { return excluded_count_; }

 private:
  void on_vertex_added(const dag::Vertex& v);
  void maybe_start_votes();
  void on_bba_decide(std::uint64_t instance, bool value);
  void drain_output();

  static std::uint64_t slot_instance(ProcessId p, Round r) {
    return (static_cast<std::uint64_t>(r) << 16) | p;
  }
  static ProcessId slot_process(std::uint64_t instance) {
    return static_cast<ProcessId>(instance & 0xFFFF);
  }
  static Round slot_round(std::uint64_t instance) { return instance >> 16; }

  dag::DagBuilder& builder_;
  sim::Network& net_;
  ProcessId pid_;
  BinaryAgreement bba_;
  DeliverFn deliver_;
  Round votes_started_upto_ = 0;    ///< rounds whose slots have been proposed
  Round next_round_to_output_ = 1;
  std::map<Round, std::map<ProcessId, bool>> decisions_;
  std::uint64_t delivered_count_ = 0;
  std::uint64_t excluded_count_ = 0;
};

}  // namespace dr::baselines
