#include "baselines/bba/binary_agreement.hpp"

#include "crypto/sha256.hpp"

namespace dr::baselines {

BinaryAgreement::BinaryAgreement(sim::Network& net, ProcessId pid,
                                 coin::Coin& coin, DecideFn decide,
                                 sim::Channel channel)
    : net_(net), pid_(pid), coin_(coin), decide_cb_(std::move(decide)),
      channel_(channel) {
  net_.subscribe(pid_, channel_, [this](ProcessId from, const net::Payload& msg) {
    on_message(from, msg.view());
  });
}

std::uint64_t BinaryAgreement::coin_instance(std::uint64_t instance,
                                             std::uint64_t round) {
  std::uint8_t buf[16];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<std::uint8_t>(instance >> (8 * i));
  for (int i = 0; i < 8; ++i) buf[8 + i] = static_cast<std::uint8_t>(round >> (8 * i));
  return crypto::digest_prefix_u64(
      crypto::sha256_tagged("bba/coin", {BytesView{buf, 16}}));
}

void BinaryAgreement::propose(std::uint64_t instance, bool value) {
  Instance& inst = instances_[instance];
  if (inst.started || inst.decision.has_value()) return;
  inst.started = true;
  inst.est = value;
  send_bval(instance, 1, value);
}

void BinaryAgreement::send_bval(std::uint64_t instance, std::uint64_t round,
                                bool b) {
  Instance& inst = instances_[instance];
  RoundState& rs = inst.rounds[round];
  if (rs.bval_sent[b ? 1 : 0]) return;
  rs.bval_sent[b ? 1 : 0] = true;
  ByteWriter w(24);
  w.u8(kBval);
  w.u64(instance);
  w.u64(round);
  w.u8(b ? 1 : 0);
  net_.broadcast(pid_, channel_, std::move(w).take());
}

bool BinaryAgreement::decided(std::uint64_t instance) const {
  auto it = instances_.find(instance);
  return it != instances_.end() && it->second.decision.has_value();
}

std::optional<bool> BinaryAgreement::decision(std::uint64_t instance) const {
  auto it = instances_.find(instance);
  if (it == instances_.end()) return std::nullopt;
  return it->second.decision;
}

std::uint64_t BinaryAgreement::rounds_used(std::uint64_t instance) const {
  auto it = instances_.find(instance);
  return it != instances_.end() ? it->second.decided_round : 0;
}

void BinaryAgreement::on_message(ProcessId from, BytesView data) {
  ByteReader in(data);
  const auto type = static_cast<MsgType>(in.u8());
  const std::uint64_t instance = in.u64();

  if (type == kDecide) {
    const std::uint8_t v = in.u8();
    if (!in.done() || v > 1) return;
    Instance& inst = instances_[instance];
    inst.decide_senders[v].insert(from);
    // f+1 DECIDEs contain a correct decider; adopting preserves agreement,
    // and once the quorum exists this process can stop playing rounds.
    if (inst.decide_senders[v].size() >= net_.committee().small_quorum()) {
      if (!inst.decision.has_value()) decide(instance, v == 1, inst.round);
      inst.halted = true;
    }
    return;
  }

  const std::uint64_t round = in.u64();
  const std::uint8_t v = in.u8();
  if (!in.done() || v > 1 || round == 0 || round > 1u << 20) return;
  Instance& inst = instances_[instance];
  RoundState& rs = inst.rounds[round];

  switch (type) {
    case kBval: {
      rs.bval_senders[v].insert(from);
      // Amplification at f+1, bin_values admission at 2f+1.
      if (rs.bval_senders[v].size() >= net_.committee().small_quorum()) {
        send_bval(instance, round, v == 1);
      }
      if (rs.bval_senders[v].size() >= net_.committee().quorum()) {
        rs.bin_values[v] = true;
      }
      break;
    }
    case kAux: {
      if (!rs.aux_seen.insert(from).second) return;
      rs.aux_by_value[v].insert(from);
      break;
    }
    default:
      return;
  }
  if (inst.started) advance(instance);
}

void BinaryAgreement::advance(std::uint64_t instance) {
  Instance& inst = instances_[instance];
  if (inst.halted) return;
  RoundState& rs = inst.rounds[inst.round];

  // Step 2: first nonempty bin_values -> AUX broadcast.
  if (!rs.aux_sent && (rs.bin_values[0] || rs.bin_values[1])) {
    rs.aux_sent = true;
    const bool w = rs.bin_values[inst.est ? 1 : 0] ? inst.est : rs.bin_values[1];
    ByteWriter msg(24);
    msg.u8(kAux);
    msg.u64(instance);
    msg.u64(inst.round);
    msg.u8(w ? 1 : 0);
    net_.broadcast(pid_, channel_, std::move(msg).take());
  }
  try_finish_round(instance, inst.round);
}

void BinaryAgreement::try_finish_round(std::uint64_t instance,
                                       std::uint64_t round) {
  Instance& inst = instances_[instance];
  if (inst.halted || round != inst.round) return;
  RoundState& rs = inst.rounds[round];
  if (rs.done || !rs.aux_sent) return;
  // MMR gather: a set of 2f+1 AUX messages whose values all lie in
  // bin_values. Count only AUX for admitted values, so a Byzantine AUX
  // carrying a never-admitted value cannot block the round.
  std::size_t valid = 0;
  bool in_v[2] = {false, false};
  for (int b = 0; b < 2; ++b) {
    if (rs.bin_values[b] && !rs.aux_by_value[b].empty()) {
      valid += rs.aux_by_value[b].size();
      in_v[b] = true;
    }
  }
  if (valid < net_.committee().quorum()) return;

  if (!rs.coin_requested) {
    rs.coin_requested = true;
    coin_.choose_leader(coin_instance(instance, round),
                        [this, instance, round](ProcessId value) {
                          on_coin(instance, round, value);
                        });
  }
  if (!rs.coin.has_value()) return;
  rs.done = true;

  const bool s = *rs.coin;
  if (in_v[0] != in_v[1]) {  // V = {b}
    const bool b = in_v[1];
    inst.est = b;
    if (b == s && !inst.decision.has_value()) {
      decide(instance, b, round);
      // Keep playing rounds (est is stable at b) until f+1 DECIDEs halt
      // the instance — otherwise a lone decider's silence could starve the
      // 2f+1 quorums laggards still need.
    }
  } else {  // V = {0, 1}
    inst.est = s;
  }
  inst.round = round + 1;
  send_bval(instance, inst.round, inst.est);
  advance(instance);
}

void BinaryAgreement::on_coin(std::uint64_t instance, std::uint64_t round,
                              ProcessId value) {
  Instance& inst = instances_[instance];
  RoundState& rs = inst.rounds[round];
  // Leader-id parity as the common bit: unpredictable, agreed, and within
  // 1/(2n) of fair — amply sufficient for the expected-O(1) argument.
  rs.coin = (value % 2) == 1;
  try_finish_round(instance, round);
}

void BinaryAgreement::decide(std::uint64_t instance, bool value,
                             std::uint64_t round) {
  Instance& inst = instances_[instance];
  if (inst.decision.has_value()) return;
  inst.decision = value;
  inst.decided_round = round;
  if (!inst.decide_sent) {
    inst.decide_sent = true;
    ByteWriter w(16);
    w.u8(kDecide);
    w.u64(instance);
    w.u8(value ? 1 : 0);
    net_.broadcast(pid_, channel_, std::move(w).take());
  }
  if (decide_cb_) decide_cb_(instance, value);
}

}  // namespace dr::baselines
