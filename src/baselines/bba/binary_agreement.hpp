// Signature-free Binary Byzantine Agreement after Mostéfaoui, Moumen,
// Raynal (PODC'14): the per-vertex decision engine of the Aleph baseline
// (§7 of the DAG-Rider paper), and a useful primitive on its own.
//
// Per instance and round r:
//   BV-broadcast:  BVAL(r, b); re-broadcast on f+1 copies of b (amplify),
//                  add b to bin_values on 2f+1 copies.
//   AUX:           once bin_values nonempty, AUX(r, w), w in bin_values.
//   Gather:        wait for 2f+1 AUX whose values all lie in bin_values;
//                  let V = that value set.
//   Coin:          s = coin(instance, r).
//   Decide:        if V = {b}: est = b, and if b == s -> DECIDE(b);
//                  else est = s; proceed to round r+1.
// A DECIDE(b) message short-circuits laggards: f+1 matching DECIDEs imply a
// correct decider, so adopting is safe.
//
// Properties: Validity (decided value was some correct process's input),
// Agreement, and expected O(1) rounds given the unpredictable common coin.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <unordered_set>

#include "coin/coin.hpp"
#include "common/bytes.hpp"
#include "common/types.hpp"
#include "sim/network.hpp"

namespace dr::baselines {

class BinaryAgreement {
 public:
  /// decide(instance, value).
  using DecideFn = std::function<void(std::uint64_t instance, bool value)>;

  BinaryAgreement(sim::Network& net, ProcessId pid, coin::Coin& coin,
                  DecideFn decide, sim::Channel channel = sim::Channel::kBba);

  /// Proposes this process's binary input for `instance` (idempotent).
  void propose(std::uint64_t instance, bool value);

  bool decided(std::uint64_t instance) const;
  std::optional<bool> decision(std::uint64_t instance) const;
  /// BBA rounds consumed by a decided instance (expected O(1)).
  std::uint64_t rounds_used(std::uint64_t instance) const;

 private:
  enum MsgType : std::uint8_t { kBval = 1, kAux = 2, kDecide = 3 };

  struct RoundState {
    std::unordered_set<ProcessId> bval_senders[2];
    bool bval_sent[2] = {false, false};
    bool bin_values[2] = {false, false};
    /// AUX senders per value (each sender counted once, first value wins).
    std::unordered_set<ProcessId> aux_by_value[2];
    std::unordered_set<ProcessId> aux_seen;
    bool aux_sent = false;
    bool coin_requested = false;
    std::optional<bool> coin;
    bool done = false;
  };

  struct Instance {
    bool started = false;
    bool est = false;
    std::uint64_t round = 1;
    std::map<std::uint64_t, RoundState> rounds;
    std::optional<bool> decision;
    std::uint64_t decided_round = 0;
    std::unordered_set<ProcessId> decide_senders[2];
    bool decide_sent = false;
    /// A decided process keeps playing rounds (est is then stable) until
    /// f+1 DECIDEs exist — the termination gadget that lets every correct
    /// process either decide via the coin or adopt via the quorum.
    bool halted = false;
  };

  void on_message(ProcessId from, BytesView data);
  void send_bval(std::uint64_t instance, std::uint64_t round, bool b);
  void advance(std::uint64_t instance);
  void try_finish_round(std::uint64_t instance, std::uint64_t round);
  void on_coin(std::uint64_t instance, std::uint64_t round, ProcessId value);
  void decide(std::uint64_t instance, bool value, std::uint64_t round);

  static std::uint64_t coin_instance(std::uint64_t instance, std::uint64_t round);

  sim::Network& net_;
  ProcessId pid_;
  coin::Coin& coin_;
  DecideFn decide_cb_;
  sim::Channel channel_;
  std::map<std::uint64_t, Instance> instances_;
};

}  // namespace dr::baselines
