#include "baselines/vaba/vaba.hpp"

#include "common/assert.hpp"
#include "crypto/sha256.hpp"

namespace dr::baselines {
namespace {

Bytes header(std::uint8_t type, SlotId slot, std::uint64_t view) {
  ByteWriter w(24);
  w.u8(type);
  w.u64(slot);
  w.u64(view);
  return std::move(w).take();
}

}  // namespace

Vaba::Vaba(sim::Network& net, ProcessId pid, coin::Coin& coin, DecideFn decide,
           sim::Channel channel)
    : net_(net), pid_(pid), coin_(coin), decide_(std::move(decide)),
      channel_(channel) {
  net_.subscribe(pid_, channel_, [this](ProcessId from, const net::Payload& msg) {
    on_message(from, msg.view());
  });
}

std::uint64_t Vaba::coin_instance(SlotId slot, std::uint64_t view) {
  std::uint8_t buf[16];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<std::uint8_t>(slot >> (8 * i));
  for (int i = 0; i < 8; ++i) buf[8 + i] = static_cast<std::uint8_t>(view >> (8 * i));
  return crypto::digest_prefix_u64(
      crypto::sha256_tagged("vaba/coin", {BytesView{buf, 16}}));
}

void Vaba::propose(SlotId slot, Bytes value) {
  SlotState& st = slots_[slot];
  if (st.proposing || st.decided) return;
  st.proposing = true;
  st.my_value = std::move(value);
  enter_view(slot, st.view);
}

void Vaba::enter_view(SlotId slot, std::uint64_t view) {
  SlotState& st = slots_[slot];
  if (st.decided) return;
  st.views.try_emplace(view);
  broadcast_step(slot, view, 1);
  // Messages for this view may have piled up while we lagged behind.
  maybe_abandon(slot, view);
  maybe_finish_view(slot, view);
}

void Vaba::broadcast_step(SlotId slot, std::uint64_t view, std::uint32_t step) {
  SlotState& st = slots_[slot];
  ViewState& vs = st.views[view];
  vs.my_step = step;
  ByteWriter w(st.my_value.size() + 32);
  w.u8(kStep);
  w.u64(slot);
  w.u64(view);
  w.u32(step);
  w.blob(st.my_value);
  net_.broadcast(pid_, channel_, std::move(w).take());
}

bool Vaba::decided(SlotId slot) const {
  auto it = slots_.find(slot);
  return it != slots_.end() && it->second.decided;
}

std::uint64_t Vaba::views_used(SlotId slot) const {
  auto it = slots_.find(slot);
  return it != slots_.end() ? it->second.decided_view : 0;
}

void Vaba::on_message(ProcessId from, BytesView data) {
  ByteReader in(data);
  const std::uint8_t type = in.u8();
  if (type == kDecide) {
    const SlotId slot = in.u64();
    const ProcessId proposer = in.u32();
    Bytes value = in.blob();
    if (!in.done() || proposer >= net_.n()) return;
    handle_decide(slot, proposer, std::move(value));
    return;
  }
  const SlotId slot = in.u64();
  const std::uint64_t view = in.u64();
  switch (type) {
    case kStep: {
      const std::uint32_t step = in.u32();
      Bytes value = in.blob();
      if (!in.done() || step < 1 || step > kSteps) return;
      handle_step(slot, view, from, step, std::move(value));
      break;
    }
    case kAck: {
      const std::uint32_t step = in.u32();
      if (!in.done() || step < 1 || step > kSteps) return;
      handle_ack(slot, view, from, step);
      break;
    }
    case kDone: {
      if (!in.done()) return;
      handle_done(slot, view, from);
      break;
    }
    case kViewChange: {
      if (!in.ok()) return;
      handle_view_change(slot, view, from,
                         data.subspan(17));  // body after type|slot|view
      break;
    }
    default:
      break;
  }
}

void Vaba::handle_step(SlotId slot, std::uint64_t view, ProcessId from,
                       std::uint32_t step, Bytes value) {
  SlotState& st = slots_[slot];
  ViewState& vs = st.views[view];
  Promotion& promo = vs.promotions[from];
  if (step > promo.max_step) {
    promo.max_step = step;
    promo.value = std::move(value);
  }
  if (vs.abandoned || st.decided) return;  // stop acking after abandon
  if (validity_ && !validity_(slot, from, promo.value)) return;
  ByteWriter w(32);
  w.u8(kAck);
  w.u64(slot);
  w.u64(view);
  w.u32(step);
  net_.send(pid_, from, channel_, std::move(w).take());
}

void Vaba::handle_ack(SlotId slot, std::uint64_t view, ProcessId from,
                      std::uint32_t step) {
  SlotState& st = slots_[slot];
  ViewState& vs = st.views[view];
  if (step > kSteps) return;
  vs.acks[step].insert(from);
  if (step != vs.my_step || st.decided) return;
  if (vs.acks[step].size() < net_.committee().quorum()) return;
  if (step < kSteps) {
    broadcast_step(slot, view, step + 1);
  } else if (!vs.done_sent) {
    vs.done_sent = true;
    net_.broadcast(pid_, channel_, header(kDone, slot, view));
  }
}

void Vaba::handle_done(SlotId slot, std::uint64_t view, ProcessId from) {
  SlotState& st = slots_[slot];
  ViewState& vs = st.views[view];
  vs.dones.insert(from);
  maybe_abandon(slot, view);
}

void Vaba::maybe_abandon(SlotId slot, std::uint64_t view) {
  SlotState& st = slots_[slot];
  ViewState& vs = st.views[view];
  if (vs.abandoned || st.decided) return;
  if (vs.dones.size() < net_.committee().quorum()) return;
  vs.abandoned = true;
  if (!vs.coin_requested) {
    vs.coin_requested = true;
    // Retroactive leader election — the coin reveals the view's leader only
    // after 2f+1 promotions finished, exactly like DAG-Rider's waves.
    coin_.choose_leader(coin_instance(slot, view),
                        [this, slot, view](ProcessId leader) {
                          on_coin(slot, view, leader);
                        });
  }
}

void Vaba::on_coin(SlotId slot, std::uint64_t view, ProcessId leader) {
  SlotState& st = slots_[slot];
  ViewState& vs = st.views[view];
  vs.leader = leader;
  // Report the leader's highest promotion step we witnessed.
  const Promotion& promo = vs.promotions[leader];
  ByteWriter w(promo.value.size() + 40);
  w.u8(kViewChange);
  w.u64(slot);
  w.u64(view);
  w.u32(promo.max_step);
  w.blob(promo.value);
  net_.broadcast(pid_, channel_, std::move(w).take());
  // Process reports that raced ahead of our coin callback.
  auto pending = std::move(vs.pending_vc);
  vs.pending_vc.clear();
  for (auto& [from, body] : pending) {
    process_vc(slot, view, from, body);
  }
}

void Vaba::handle_view_change(SlotId slot, std::uint64_t view, ProcessId from,
                              BytesView body) {
  SlotState& st = slots_[slot];
  ViewState& vs = st.views[view];
  if (!vs.leader.has_value()) {
    vs.pending_vc.emplace_back(from, Bytes(body.begin(), body.end()));
    return;
  }
  process_vc(slot, view, from, body);
}

void Vaba::process_vc(SlotId slot, std::uint64_t view, ProcessId from,
                      BytesView body) {
  ByteReader in(body);
  const std::uint32_t step = in.u32();
  Bytes value = in.blob();
  if (!in.done()) return;
  SlotState& st = slots_[slot];
  ViewState& vs = st.views[view];
  if (!vs.vc_senders.insert(from).second) return;
  if (step > vs.vc_max_step) {
    vs.vc_max_step = step;
    vs.vc_value = std::move(value);
  }
  maybe_finish_view(slot, view);
}

void Vaba::maybe_finish_view(SlotId slot, std::uint64_t view) {
  SlotState& st = slots_[slot];
  ViewState& vs = st.views[view];
  if (st.decided || view != st.view) return;
  if (vs.vc_senders.size() < net_.committee().quorum()) return;
  DR_ASSERT(vs.leader.has_value());

  if (vs.vc_max_step >= kSteps) {
    // Commit proof witnessed: decide the leader's value and short-circuit
    // laggards (stands in for gossiping the commit proof).
    st.decided = true;
    st.decided_view = view;
    ByteWriter w(vs.vc_value.size() + 24);
    w.u8(kDecide);
    w.u64(slot);
    w.u32(*vs.leader);
    w.blob(vs.vc_value);
    net_.broadcast(pid_, channel_, std::move(w).take());
    if (decide_) decide_(slot, *vs.leader, vs.vc_value);
    return;
  }
  if (vs.vc_max_step >= 2) {
    // Key witnessed: adopt the leader's value for re-proposal.
    st.my_value = vs.vc_value;
  }
  st.view = view + 1;
  enter_view(slot, st.view);
}

void Vaba::handle_decide(SlotId slot, ProcessId proposer, Bytes value) {
  SlotState& st = slots_[slot];
  if (st.decided) return;
  st.decided = true;
  st.decided_view = st.view;
  // Relay once so every correct process terminates even if the original
  // decider's broadcast partially predated a crash.
  ByteWriter w(value.size() + 24);
  w.u8(kDecide);
  w.u64(slot);
  w.u32(proposer);
  w.blob(value);
  net_.broadcast(pid_, channel_, std::move(w).take());
  if (decide_) decide_(slot, proposer, value);
}

}  // namespace dr::baselines
