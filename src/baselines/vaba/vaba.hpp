// VABA — Validated Asynchronous Byzantine Agreement after Abraham, Malkhi,
// Spiegelman (PODC'19) — the O(n^2)-per-decision baseline of Table 1.
//
// Structure per (slot, view):
//  1. Proposal promotion: every process promotes its value through four
//     sequential provable-broadcast steps (STEP k carries the value; 2f+1
//     ACKs unlock step k+1). Step 2 yields a "key", step 3 a "lock", step 4
//     a "commit" proof.
//  2. After completing step 4 a proposer broadcasts DONE. On 2f+1 DONEs a
//     process abandons the view (stops acking) and asks the coin for the
//     view's leader — elected retroactively, like DAG-Rider's waves.
//  3. View-change: everyone reports the leader's highest promotion step it
//     witnessed. On 2f+1 reports: step 4 seen -> decide the leader's value;
//     step >= 2 seen -> adopt it for the next view; else keep own value.
//
// Simulation note (DESIGN.md §3): ack/proof aggregation is modelled by
// counting ACK messages instead of verifying aggregate signatures, and a
// DECIDE short-circuit message replaces the commit-proof gossip. Message
// and bit complexity per view are the paper's O(n^2); the crash-fault +
// adversarial-delay experiments exercise exactly this cost model.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "coin/coin.hpp"
#include "common/bytes.hpp"
#include "common/types.hpp"
#include "sim/network.hpp"

namespace dr::baselines {

class Vaba {
 public:
  /// decide(slot, proposer-whose-value-won, value).
  using DecideFn =
      std::function<void(SlotId slot, ProcessId proposer, const Bytes& value)>;
  /// External validity: whether to ack `proposer`'s promotion of `value`.
  using ValidityFn =
      std::function<bool(SlotId slot, ProcessId proposer, BytesView value)>;

  Vaba(sim::Network& net, ProcessId pid, coin::Coin& coin, DecideFn decide,
       sim::Channel channel = sim::Channel::kVaba);

  void set_validity(ValidityFn fn) { validity_ = std::move(fn); }

  /// Proposes this process's value for `slot` (starts view 1).
  void propose(SlotId slot, Bytes value);

  bool decided(SlotId slot) const;
  /// Views consumed for a decided slot (1 = first view committed).
  std::uint64_t views_used(SlotId slot) const;

 private:
  static constexpr std::uint32_t kSteps = 4;
  enum MsgType : std::uint8_t {
    kStep = 1,
    kAck = 2,
    kDone = 3,
    kViewChange = 4,
    kDecide = 5,
  };

  struct Promotion {
    std::uint32_t max_step = 0;
    Bytes value;
  };

  struct ViewState {
    // This process as proposer:
    std::uint32_t my_step = 0;  // highest step broadcast
    std::vector<std::unordered_set<ProcessId>> acks{kSteps + 1};
    bool done_sent = false;
    // This process as participant:
    std::unordered_map<ProcessId, Promotion> promotions;
    std::unordered_set<ProcessId> dones;
    bool abandoned = false;
    bool coin_requested = false;
    std::optional<ProcessId> leader;
    std::unordered_set<ProcessId> vc_senders;
    std::uint32_t vc_max_step = 0;
    Bytes vc_value;
    /// View-change reports that arrived before the local coin resolved.
    std::vector<std::pair<ProcessId, Bytes>> pending_vc;
  };

  struct SlotState {
    Bytes my_value;
    bool proposing = false;
    std::uint64_t view = 1;
    std::map<std::uint64_t, ViewState> views;
    bool decided = false;
    std::uint64_t decided_view = 0;
  };

  void on_message(ProcessId from, BytesView data);
  void handle_step(SlotId slot, std::uint64_t view, ProcessId from,
                   std::uint32_t step, Bytes value);
  void handle_ack(SlotId slot, std::uint64_t view, ProcessId from,
                  std::uint32_t step);
  void handle_done(SlotId slot, std::uint64_t view, ProcessId from);
  void handle_view_change(SlotId slot, std::uint64_t view, ProcessId from,
                          BytesView body);
  void handle_decide(SlotId slot, ProcessId proposer, Bytes value);

  void broadcast_step(SlotId slot, std::uint64_t view, std::uint32_t step);
  void maybe_abandon(SlotId slot, std::uint64_t view);
  void on_coin(SlotId slot, std::uint64_t view, ProcessId leader);
  void process_vc(SlotId slot, std::uint64_t view, ProcessId from, BytesView body);
  void maybe_finish_view(SlotId slot, std::uint64_t view);
  void enter_view(SlotId slot, std::uint64_t view);

  /// Coin instance id for (slot, view) — disjoint from every other consumer
  /// of the shared coin by domain-tagged hashing.
  static std::uint64_t coin_instance(SlotId slot, std::uint64_t view);

  sim::Network& net_;
  ProcessId pid_;
  coin::Coin& coin_;
  DecideFn decide_;
  ValidityFn validity_;
  sim::Channel channel_;
  std::map<SlotId, SlotState> slots_;
};

}  // namespace dr::baselines
