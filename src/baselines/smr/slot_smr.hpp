// Slot-parallel SMR driver over VABA or Dumbo-MVBA — the "VABA SMR" and
// "Dumbo SMR" rows of Table 1. An unbounded sequence of slots is agreed on
// independently; up to `window` (= n in the paper's comparison) slots run
// concurrently, but outputs must be emitted in slot order with no gaps —
// which is precisely what makes the time complexity O(log n) per n outputs
// (Ben-Or & El-Yaniv: max of n geometric latencies).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "baselines/dumbo/dumbo.hpp"
#include "baselines/vaba/vaba.hpp"
#include "coin/dealer.hpp"
#include "coin/threshold_coin.hpp"
#include "crypto/sha256.hpp"
#include "sim/adversary.hpp"
#include "sim/simulator.hpp"

namespace dr::baselines {

enum class SmrBackend { kVaba, kDumbo };

inline const char* to_string(SmrBackend b) {
  return b == SmrBackend::kVaba ? "vaba-smr" : "dumbo-smr";
}

class SlotSmrNode {
 public:
  struct Output {
    SlotId slot = 0;
    ProcessId proposer = 0;       ///< whose batch won the slot
    crypto::Digest batch_digest{};
    std::size_t batch_size = 0;
    sim::SimTime time = 0;        ///< when emitted in-order (not when decided)
  };

  SlotSmrNode(sim::Network& net, ProcessId pid, coin::Coin& coin,
              SmrBackend backend, std::uint32_t window, std::size_t batch_size,
              std::uint64_t seed, sim::Simulator& sim);

  void start();

  /// In-order emitted outputs (slot 1, 2, 3, ... with no gaps).
  const std::vector<Output>& outputs() const { return outputs_; }
  std::uint64_t slots_output() const { return outputs_.size(); }

  /// This process's batch for a slot — deterministic, unique per (pid, slot).
  Bytes batch_for(SlotId slot) const;

 private:
  void propose_pending();
  void on_decide(SlotId slot, ProcessId proposer, const Bytes& value);
  void drain_in_order();

  sim::Network& net_;
  ProcessId pid_;
  sim::Simulator& sim_;
  std::uint32_t window_;
  std::size_t batch_size_;
  std::uint64_t seed_;
  std::unique_ptr<Vaba> vaba_;        // backend kVaba
  std::unique_ptr<DumboMvba> dumbo_;  // backend kDumbo
  SlotId next_to_propose_ = 1;
  SlotId next_to_output_ = 1;
  std::map<SlotId, Output> decided_;
  std::vector<Output> outputs_;
  bool started_ = false;
};

/// Harness mirroring core::System for the baseline SMRs.
struct SmrSystemConfig {
  Committee committee = Committee::for_f(1);
  std::uint64_t seed = 1;
  SmrBackend backend = SmrBackend::kVaba;
  std::uint32_t window = 0;  ///< concurrent slots; 0 -> n (paper's setting)
  std::size_t batch_size = 64;
  std::unique_ptr<sim::DelayModel> delays;  ///< nullptr -> UniformDelay(1, 100)
  std::vector<ProcessId> crashed;
};

class SmrSystem {
 public:
  explicit SmrSystem(SmrSystemConfig cfg);
  ~SmrSystem();

  void start();
  sim::Simulator& simulator() { return sim_; }
  sim::Network& network() { return *net_; }
  SlotSmrNode& node(ProcessId pid) { return *nodes_[pid]; }
  const SlotSmrNode& node(ProcessId pid) const { return *nodes_[pid]; }
  bool is_correct(ProcessId pid) const { return !net_->is_corrupted(pid); }
  std::vector<ProcessId> correct_ids() const;

  /// Runs until every correct process emitted >= count in-order outputs.
  bool run_until_output(std::uint64_t count, std::uint64_t max_events = 100'000'000);

 private:
  SmrSystemConfig cfg_;
  sim::Simulator sim_;
  std::unique_ptr<sim::Network> net_;
  std::unique_ptr<coin::CoinDealer> dealer_;
  std::vector<std::unique_ptr<coin::ThresholdCoin>> coins_;
  std::vector<std::unique_ptr<SlotSmrNode>> nodes_;
};

}  // namespace dr::baselines
