#include "baselines/smr/slot_smr.hpp"

#include "common/assert.hpp"
#include "common/rng.hpp"

namespace dr::baselines {

SlotSmrNode::SlotSmrNode(sim::Network& net, ProcessId pid, coin::Coin& coin,
                         SmrBackend backend, std::uint32_t window,
                         std::size_t batch_size, std::uint64_t seed,
                         sim::Simulator& sim)
    : net_(net),
      pid_(pid),
      sim_(sim),
      window_(window == 0 ? net.n() : window),
      batch_size_(batch_size),
      seed_(seed) {
  auto decide = [this](SlotId slot, ProcessId proposer, const Bytes& value) {
    on_decide(slot, proposer, value);
  };
  if (backend == SmrBackend::kVaba) {
    vaba_ = std::make_unique<Vaba>(net, pid, coin, decide);
  } else {
    dumbo_ = std::make_unique<DumboMvba>(net, pid, coin, decide);
  }
}

Bytes SlotSmrNode::batch_for(SlotId slot) const {
  Bytes batch(batch_size_);
  Xoshiro256 rng(seed_ ^ (static_cast<std::uint64_t>(pid_) << 40) ^ slot);
  for (auto& b : batch) b = static_cast<std::uint8_t>(rng());
  return batch;
}

void SlotSmrNode::start() {
  DR_ASSERT(!started_);
  started_ = true;
  propose_pending();
}

void SlotSmrNode::propose_pending() {
  while (next_to_propose_ < next_to_output_ + window_) {
    const SlotId slot = next_to_propose_++;
    if (vaba_) {
      vaba_->propose(slot, batch_for(slot));
    } else {
      dumbo_->propose(slot, batch_for(slot));
    }
  }
}

void SlotSmrNode::on_decide(SlotId slot, ProcessId proposer, const Bytes& value) {
  if (decided_.count(slot) > 0) return;
  Output out;
  out.slot = slot;
  out.proposer = proposer;
  out.batch_digest = crypto::sha256(value);
  out.batch_size = value.size();
  decided_.emplace(slot, out);
  drain_in_order();
}

void SlotSmrNode::drain_in_order() {
  // The execution constraint of the paper's comparison: slot decisions are
  // emitted strictly in order, so one slow slot gates all later ones.
  bool advanced = false;
  while (true) {
    auto it = decided_.find(next_to_output_);
    if (it == decided_.end()) break;
    it->second.time = sim_.now();
    outputs_.push_back(it->second);
    decided_.erase(it);
    ++next_to_output_;
    advanced = true;
  }
  if (advanced && started_) propose_pending();
}

SmrSystem::SmrSystem(SmrSystemConfig cfg) : cfg_(std::move(cfg)), sim_(cfg_.seed) {
  DR_ASSERT_MSG(cfg_.committee.valid(), "SmrSystem: n > 3f required");
  if (!cfg_.delays) cfg_.delays = std::make_unique<sim::UniformDelay>(1, 100);
  net_ = std::make_unique<sim::Network>(sim_, cfg_.committee,
                                        std::move(cfg_.delays));
  dealer_ = std::make_unique<coin::CoinDealer>(cfg_.seed ^ 0xDEA1ULL,
                                               cfg_.committee);
  for (ProcessId pid : cfg_.crashed) net_->crash(pid);
  for (ProcessId pid = 0; pid < cfg_.committee.n; ++pid) {
    coins_.push_back(std::make_unique<coin::ThresholdCoin>(
        *net_, coin::ProcessCoinKey(dealer_.get(), pid)));
    nodes_.push_back(std::make_unique<SlotSmrNode>(
        *net_, pid, *coins_.back(), cfg_.backend, cfg_.window, cfg_.batch_size,
        cfg_.seed, sim_));
  }
}

SmrSystem::~SmrSystem() = default;

void SmrSystem::start() {
  for (ProcessId pid = 0; pid < cfg_.committee.n; ++pid) {
    if (!net_->is_crashed(pid)) nodes_[pid]->start();
  }
}

std::vector<ProcessId> SmrSystem::correct_ids() const {
  std::vector<ProcessId> out;
  for (ProcessId pid = 0; pid < cfg_.committee.n; ++pid) {
    if (is_correct(pid)) out.push_back(pid);
  }
  return out;
}

bool SmrSystem::run_until_output(std::uint64_t count, std::uint64_t max_events) {
  return sim_.run_until(
      [this, count] {
        for (ProcessId pid : correct_ids()) {
          if (nodes_[pid]->slots_output() < count) return false;
        }
        return true;
      },
      max_events);
}

}  // namespace dr::baselines
