#include "txpool/client.hpp"

#include <cmath>

namespace dr::txpool {

ClientSwarm::ClientSwarm(core::System& sys, WorkloadConfig cfg,
                         std::uint64_t seed)
    : sys_(sys), cfg_(cfg), rng_(seed) {
  for (ProcessId p = 0; p < sys_.n(); ++p) {
    pools_.push_back(std::make_unique<Mempool>());
  }
  correct_ = sys_.correct_ids();
  DR_ASSERT_MSG(!correct_.empty(), "ClientSwarm needs a correct process");
  probe_ = correct_.front();

  for (ProcessId p : correct_) {
    sys_.node(p).set_app_deliver(
        [this, p](const Bytes& block, Round, ProcessId) {
          auto txs = decode_block(block);
          if (!txs) return;  // synthetic / foreign block
          pools_[p]->observe_delivered(txs.value());
          if (p == probe_) on_deliver_at_probe_txs(txs.value());
        });
  }
}

void ClientSwarm::on_deliver_at_probe(const Bytes& block) {
  auto txs = decode_block(block);
  if (!txs) return;
  on_deliver_at_probe_txs(txs.value());
}

void ClientSwarm::start() {
  schedule_submit();
  for (ProcessId p : correct_) schedule_pump(p);
}

void ClientSwarm::schedule_submit() {
  // Exponential inter-arrival with mean 1 / tx_per_tick (open loop).
  const double u = std::max(rng_.uniform(), 1e-12);
  const auto gap = static_cast<sim::SimTime>(
      std::max(1.0, -std::log(u) / cfg_.tx_per_tick));
  sys_.simulator().schedule(gap, [this] {
    if (submitting_) {
      Transaction tx;
      tx.id = next_tx_id_++;
      tx.submit_time = sys_.simulator().now();
      tx.payload.assign(cfg_.tx_payload, static_cast<std::uint8_t>(tx.id));
      // Submit to `submit_copies` distinct correct processes (clients retry
      // elsewhere when a process looks dead; we model the redundant form).
      const std::size_t start = rng_.below(correct_.size());
      for (std::uint32_t c = 0; c < cfg_.submit_copies; ++c) {
        const ProcessId p = correct_[(start + c) % correct_.size()];
        pools_[p]->submit(tx);
      }
      ++submitted_;
      schedule_submit();
    }
  });
}

void ClientSwarm::schedule_pump(ProcessId p) {
  sys_.simulator().schedule(cfg_.pump_every, [this, p] {
    // Keep the proposal queue primed: one pending block at a time so every
    // vertex carries the freshest batch.
    auto& builder = sys_.node(p).builder();
    if (builder.blocks_pending() == 0 && pools_[p]->pending() > 0) {
      Bytes block = pools_[p]->next_block(cfg_.batch_max);
      if (!block.empty()) sys_.node(p).rider().a_bcast(std::move(block));
    }
    schedule_pump(p);
  });
}

void ClientSwarm::on_deliver_at_probe_txs(const std::vector<Transaction>& txs) {
  for (const Transaction& tx : txs) {
    if (!committed_ids_.insert(tx.id).second) continue;  // re-proposed copy
    ++committed_unique_;
    latency_.add(static_cast<double>(sys_.simulator().now() - tx.submit_time));
  }
}

}  // namespace dr::txpool
