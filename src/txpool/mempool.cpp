#include "txpool/mempool.hpp"

namespace dr::txpool {

namespace {
constexpr std::uint32_t kBlockMagic = 0x7B10C35;
}  // namespace

Bytes encode_block(const std::vector<Transaction>& txs) {
  std::size_t size = 8;
  for (const Transaction& tx : txs) size += tx.wire_size();
  ByteWriter w(size);
  w.u32(kBlockMagic);
  w.u32(static_cast<std::uint32_t>(txs.size()));
  for (const Transaction& tx : txs) tx.serialize_into(w);
  return std::move(w).take();
}

Expected<std::vector<Transaction>> decode_block(BytesView block) {
  ByteReader in(block);
  if (in.u32() != kBlockMagic) {
    return Expected<std::vector<Transaction>>::failure("not a tx block");
  }
  const std::uint32_t count = in.u32();
  if (!in.ok() || count > 1u << 22) {
    return Expected<std::vector<Transaction>>::failure("absurd tx count");
  }
  std::vector<Transaction> txs;
  txs.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    Transaction tx;
    if (!Transaction::deserialize_from(in, tx)) {
      return Expected<std::vector<Transaction>>::failure("truncated tx");
    }
    txs.push_back(std::move(tx));
  }
  if (!in.done()) {
    return Expected<std::vector<Transaction>>::failure("trailing bytes");
  }
  return txs;
}

bool Mempool::submit(Transaction tx) {
  if (seen_.count(tx.id) > 0 || delivered_.count(tx.id) > 0) {
    ++dup_rejects_;
    return false;
  }
  if (queue_.size() >= max_pending_) {
    ++overflow_rejects_;
    return false;
  }
  seen_.insert(tx.id);
  queue_.push_back(std::move(tx));
  ++accepted_;
  return true;
}

Bytes Mempool::next_block(std::size_t max_txs) {
  if (queue_.empty()) return {};
  std::vector<Transaction> batch;
  batch.reserve(std::min(max_txs, queue_.size()));
  while (!queue_.empty() && batch.size() < max_txs) {
    // Skip transactions that got ordered via someone else's block while
    // they waited here.
    Transaction tx = std::move(queue_.front());
    queue_.pop_front();
    if (delivered_.count(tx.id) > 0) continue;
    batch.push_back(std::move(tx));
  }
  if (batch.empty()) return {};
  return encode_block(batch);
}

std::size_t Mempool::observe_delivered(const std::vector<Transaction>& txs) {
  std::size_t newly = 0;
  for (const Transaction& tx : txs) {
    if (delivered_.insert(tx.id).second) ++newly;
  }
  return newly;
}

}  // namespace dr::txpool
