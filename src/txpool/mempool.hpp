// Per-process mempool: accepts client submissions, deduplicates (clients
// may submit one transaction to several processes for redundancy), and
// drains FIFO batches into BAB blocks.
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_set>

#include "txpool/transaction.hpp"

namespace dr::txpool {

class Mempool {
 public:
  /// max_pending bounds memory against client overload; excess submissions
  /// are rejected (returns false) — backpressure, not silent drops.
  explicit Mempool(std::size_t max_pending = 100'000)
      : max_pending_(max_pending) {}

  /// Returns false if duplicate or over capacity.
  bool submit(Transaction tx);

  /// True once a transaction id has been seen (pending or already drained).
  bool knows(std::uint64_t id) const { return seen_.count(id) > 0; }

  std::size_t pending() const { return queue_.size(); }
  std::uint64_t accepted() const { return accepted_; }
  std::uint64_t rejected_duplicates() const { return dup_rejects_; }
  std::uint64_t rejected_overflow() const { return overflow_rejects_; }

  /// Drains up to max_txs transactions into a BAB block. Empty block (zero
  /// bytes) if the pool is empty.
  Bytes next_block(std::size_t max_txs);

  /// Removes transactions observed in a delivered block (they were ordered
  /// by someone else's vertex; proposing them again would waste bytes).
  /// Returns how many pending entries were dropped.
  std::size_t observe_delivered(const std::vector<Transaction>& txs);

 private:
  std::size_t max_pending_;
  std::deque<Transaction> queue_;
  std::unordered_set<std::uint64_t> seen_;
  std::unordered_set<std::uint64_t> delivered_;
  std::uint64_t accepted_ = 0;
  std::uint64_t dup_rejects_ = 0;
  std::uint64_t overflow_rejects_ = 0;
};

}  // namespace dr::txpool
