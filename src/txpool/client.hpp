// Open-loop client swarm over a core::System: submits transactions at a
// configured rate to per-process mempools, paces block proposals into the
// BAB layer, and tracks end-to-end (submit -> a_deliver) latency.
//
// This is the workload generator behind the throughput/latency experiments;
// it realizes the paper's communication-measurement setup ("each message
// contains a block of transactions", §3) with live traffic instead of
// synthetic auto-blocks.
#pragma once

#include <memory>
#include <vector>

#include "core/system.hpp"
#include "metrics/stats.hpp"
#include "txpool/mempool.hpp"
#include "sim/network.hpp"

namespace dr::txpool {

struct WorkloadConfig {
  double tx_per_tick = 0.05;      ///< aggregate client submission rate
  std::size_t tx_payload = 64;    ///< bytes per transaction
  std::size_t batch_max = 64;     ///< max transactions per proposed block
  sim::SimTime pump_every = 50;   ///< proposal pacing interval (ticks)
  /// How many distinct processes each transaction is submitted to (>= 1;
  /// redundancy lowers the loss risk if the chosen process is faulty).
  std::uint32_t submit_copies = 1;
};

class ClientSwarm {
 public:
  ClientSwarm(core::System& sys, WorkloadConfig cfg, std::uint64_t seed);

  /// Starts submission + pacing events; call once after System::start().
  void start();
  /// Stops injecting new transactions (in-flight ones keep completing).
  void stop_submitting() { submitting_ = false; }

  std::uint64_t submitted() const { return submitted_; }
  std::uint64_t committed() const { return committed_unique_; }
  /// Latency (ticks) distribution, measured at the probe (first correct)
  /// process, first-delivery per transaction id.
  const metrics::Summary& latency() const { return latency_; }
  const Mempool& mempool(ProcessId p) const { return *pools_[p]; }

 private:
  void schedule_submit();
  void schedule_pump(ProcessId p);
  void on_deliver_at_probe(const Bytes& block);
  void on_deliver_at_probe_txs(const std::vector<Transaction>& txs);

  core::System& sys_;
  WorkloadConfig cfg_;
  Xoshiro256 rng_;
  std::vector<std::unique_ptr<Mempool>> pools_;
  std::vector<ProcessId> correct_;
  ProcessId probe_ = 0;
  std::uint64_t next_tx_id_ = 1;
  std::uint64_t submitted_ = 0;
  std::uint64_t committed_unique_ = 0;
  std::unordered_set<std::uint64_t> committed_ids_;
  metrics::Summary latency_;
  bool submitting_ = true;
};

}  // namespace dr::txpool
