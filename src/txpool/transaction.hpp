// Client transactions and the block (batch) wire format. The BAB layer
// treats blocks as opaque bytes; this is the application-side contract that
// turns "blocks of transactions" (Alg. 1's v.block) into measurable
// per-transaction throughput and latency.
#pragma once

#include <cstdint>

#include "common/bytes.hpp"
#include "common/expected.hpp"
#include "common/types.hpp"
#include "sim/simulator.hpp"

namespace dr::txpool {

struct Transaction {
  std::uint64_t id = 0;            ///< client-assigned, globally unique
  sim::SimTime submit_time = 0;    ///< for end-to-end latency accounting
  Bytes payload;

  void serialize_into(ByteWriter& w) const {
    w.u64(id);
    w.u64(submit_time);
    w.blob(payload);
  }
  [[nodiscard]] static bool deserialize_from(ByteReader& in, Transaction& out) {
    out.id = in.u64();
    out.submit_time = in.u64();
    out.payload = in.blob();
    return in.ok();
  }
  std::size_t wire_size() const { return 16 + 4 + payload.size(); }
};

/// Serializes a batch of transactions into one BAB block.
Bytes encode_block(const std::vector<Transaction>& txs);

/// Parses a BAB block back into transactions. Blocks produced by other
/// components (e.g. synthetic auto-blocks) fail cleanly.
Expected<std::vector<Transaction>> decode_block(BytesView block);

}  // namespace dr::txpool
