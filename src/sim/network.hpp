// Simulated asynchronous message-passing network with reliable authenticated
// point-to-point links (the paper's model, §2): messages between correct
// processes always arrive, after an adversary-chosen finite delay. The
// network also does the byte/message accounting behind every Table-1 number.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/types.hpp"
#include "net/bus.hpp"
#include "sim/simulator.hpp"

namespace dr::sim {

/// The Channel mux now lives in net/ (it is part of the wire contract shared
/// with the real transports); these aliases keep sim-facing code unchanged.
using Channel = net::Channel;
using net::kChannelCount;

/// Chooses per-message delays. The adversary of the asynchronous model *is*
/// the delay model: it may reorder arbitrarily but must keep delays finite
/// between correct processes.
class DelayModel {
 public:
  virtual ~DelayModel() = default;
  /// Delay in ticks for a message sent now from `from` to `to`.
  virtual SimTime delay(ProcessId from, ProcessId to, Channel channel,
                        std::size_t bytes, SimTime now, Xoshiro256& rng) = 0;
  /// Upper bound used to convert measured latencies into the paper's
  /// "asynchronous time units" (max delay among correct processes).
  virtual SimTime max_delay() const = 0;
};

/// Uniform random delay in [min, max] — the baseline benign scheduler.
class UniformDelay final : public DelayModel {
 public:
  UniformDelay(SimTime min_ticks, SimTime max_ticks)
      : min_(min_ticks), max_(max_ticks) {}
  SimTime delay(ProcessId, ProcessId, Channel, std::size_t, SimTime,
                Xoshiro256& rng) override {
    return min_ + rng.below(max_ - min_ + 1);
  }
  SimTime max_delay() const override { return max_; }

 private:
  SimTime min_;
  SimTime max_;
};

/// Per-process byte and message accounting.
struct TrafficCounter {
  std::uint64_t messages_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t bytes_delivered = 0;
};

/// The simulated network realizes the abstract net::Bus contract under a
/// discrete-event clock and an adversarial delay model; the same protocol
/// components also run over net::Transport in the real-concurrency runtime.
class Network final : public net::Bus {
 public:
  using Handler = net::Bus::Handler;

  Network(Simulator& sim, Committee committee, std::unique_ptr<DelayModel> delays);

  Simulator& simulator() { return sim_; }
  const Committee& committee() const override { return committee_; }
  std::uint32_t n() const { return committee_.n; }

  /// Registers the delivery callback for (process, channel). At most one
  /// handler per pair; re-registration replaces (supports test harness reuse).
  void subscribe(ProcessId pid, Channel channel, Handler handler) override;

  /// Point-to-point send. Counted against `from`'s traffic. Self-sends are
  /// delivered through the queue like any other message (with delay), which
  /// keeps protocol logic uniform.
  void send(ProcessId from, ProcessId to, Channel channel,
            net::Payload payload) override;

  /// Convenience: sends the same payload to all n processes (including self);
  /// the n scheduled deliveries share one payload buffer. Wire accounting is
  /// unchanged — each link still counts the full payload size.
  void broadcast(ProcessId from, Channel channel, net::Payload payload) override;

  /// Marks a process as (adaptively) corrupted. Per the model, the adversary
  /// may drop this process's messages that are still in flight; we drop them
  /// all (the strongest choice available to it).
  void corrupt(ProcessId pid);
  bool is_corrupted(ProcessId pid) const { return corrupted_[pid]; }
  std::uint32_t corrupted_count() const;

  /// Stops delivery entirely (crash fault, a special case of Byzantine).
  void crash(ProcessId pid);
  bool is_crashed(ProcessId pid) const { return crashed_[pid]; }

  const TrafficCounter& traffic(ProcessId pid) const { return traffic_[pid]; }
  /// Bytes sent on one protocol channel across all senders (e.g. to verify
  /// the ordering layer's zero-overhead claim, or to split DAG vs coin cost).
  std::uint64_t channel_bytes_sent(Channel channel) const {
    return channel_bytes_[static_cast<std::uint32_t>(channel)];
  }
  /// Total bytes sent by processes that are currently correct (the paper
  /// counts only honest senders' bits).
  std::uint64_t total_honest_bytes_sent() const;
  std::uint64_t total_bytes_sent() const;
  std::uint64_t total_messages_sent() const;
  SimTime max_delay() const { return delays_->max_delay(); }

  /// Resets traffic counters (e.g., after warmup rounds).
  void reset_traffic();

 private:
  struct Pending {
    ProcessId from;
    std::uint64_t epoch;  // sender corruption epoch at send time
  };

  Simulator& sim_;
  Committee committee_;
  std::unique_ptr<DelayModel> delays_;
  std::vector<std::vector<Handler>> handlers_;  // [pid][channel]
  std::vector<TrafficCounter> traffic_;
  std::vector<std::uint64_t> channel_bytes_ = std::vector<std::uint64_t>(kChannelCount, 0);
  std::vector<bool> corrupted_;
  std::vector<bool> crashed_;
  std::vector<std::uint64_t> corruption_epoch_;
};

}  // namespace dr::sim
