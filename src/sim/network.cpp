#include "sim/network.hpp"

#include "common/assert.hpp"

namespace dr::sim {

Network::Network(Simulator& sim, Committee committee,
                 std::unique_ptr<DelayModel> delays)
    : sim_(sim),
      committee_(committee),
      delays_(std::move(delays)),
      handlers_(committee.n, std::vector<Handler>(kChannelCount)),
      traffic_(committee.n),
      corrupted_(committee.n, false),
      crashed_(committee.n, false),
      corruption_epoch_(committee.n, 0) {
  DR_ASSERT_MSG(committee.valid(), "Network: committee must satisfy n > 3f");
  DR_ASSERT(delays_ != nullptr);
}

void Network::subscribe(ProcessId pid, Channel channel, Handler handler) {
  DR_ASSERT(pid < committee_.n);
  handlers_[pid][static_cast<std::uint32_t>(channel)] = std::move(handler);
}

void Network::send(ProcessId from, ProcessId to, Channel channel,
                   net::Payload payload) {
  DR_ASSERT(from < committee_.n && to < committee_.n);
  if (crashed_[from]) return;  // a crashed process sends nothing

  TrafficCounter& tc = traffic_[from];
  tc.messages_sent += 1;
  tc.bytes_sent += payload.size();
  channel_bytes_[static_cast<std::uint32_t>(channel)] += payload.size();

  const SimTime d = delays_->delay(from, to, channel, payload.size(),
                                   sim_.now(), sim_.rng());
  const std::uint64_t sender_epoch = corruption_epoch_[from];
  // The closure owns the payload; delivery checks the corruption epoch so the
  // adaptive adversary's "drop undelivered messages of a newly corrupted
  // process" power is honoured exactly.
  sim_.schedule(d, [this, from, to, channel, sender_epoch,
                    payload = std::move(payload)]() {
    if (crashed_[to]) return;
    if (corruption_epoch_[from] != sender_epoch) return;  // dropped in flight
    Handler& h = handlers_[to][static_cast<std::uint32_t>(channel)];
    if (!h) return;
    traffic_[to].messages_delivered += 1;
    traffic_[to].bytes_delivered += payload.size();
    h(from, payload);
  });
}

void Network::broadcast(ProcessId from, Channel channel, net::Payload payload) {
  // Each send's closure takes a refcount on the same buffer — n scheduled
  // deliveries, zero payload copies.
  for (ProcessId to = 0; to < committee_.n; ++to) {
    send(from, to, channel, payload);
  }
}

void Network::corrupt(ProcessId pid) {
  DR_ASSERT(pid < committee_.n);
  if (!corrupted_[pid]) {
    corrupted_[pid] = true;
    corruption_epoch_[pid] += 1;  // invalidates all in-flight messages
    DR_ASSERT_MSG(corrupted_count() <= committee_.f,
                  "adversary exceeded corruption budget f");
  }
}

void Network::crash(ProcessId pid) {
  corrupt(pid);
  crashed_[pid] = true;
}

std::uint32_t Network::corrupted_count() const {
  std::uint32_t c = 0;
  for (bool b : corrupted_) c += b ? 1 : 0;
  return c;
}

std::uint64_t Network::total_honest_bytes_sent() const {
  std::uint64_t sum = 0;
  for (ProcessId p = 0; p < committee_.n; ++p) {
    if (!corrupted_[p]) sum += traffic_[p].bytes_sent;
  }
  return sum;
}

std::uint64_t Network::total_bytes_sent() const {
  std::uint64_t sum = 0;
  for (const TrafficCounter& t : traffic_) sum += t.bytes_sent;
  return sum;
}

std::uint64_t Network::total_messages_sent() const {
  std::uint64_t sum = 0;
  for (const TrafficCounter& t : traffic_) sum += t.messages_sent;
  return sum;
}

void Network::reset_traffic() {
  for (TrafficCounter& t : traffic_) t = TrafficCounter{};
  for (std::uint64_t& b : channel_bytes_) b = 0;
}

}  // namespace dr::sim
