#include "sim/simulator.hpp"

#include <algorithm>

namespace dr::sim {

bool Simulator::is_cancelled(std::uint64_t id) {
  auto it = std::find(cancelled_.begin(), cancelled_.end(), id);
  if (it == cancelled_.end()) return false;
  // Each id is executed at most once, so drop the tombstone when consumed.
  cancelled_.erase(it);
  return true;
}

std::uint64_t Simulator::run(std::uint64_t max_events) {
  std::uint64_t count = 0;
  while (!queue_.empty() && count < max_events) {
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.time;
    if (is_cancelled(ev.seq)) continue;
    ev.fn();
    ++count;
    ++executed_;
  }
  return count;
}

bool Simulator::run_until(const std::function<bool()>& done,
                          std::uint64_t max_events) {
  if (done()) return true;
  std::uint64_t count = 0;
  while (!queue_.empty() && count < max_events) {
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.time;
    if (is_cancelled(ev.seq)) continue;
    ev.fn();
    ++count;
    ++executed_;
    if (done()) return true;
  }
  return false;
}

}  // namespace dr::sim
