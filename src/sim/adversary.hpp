// Adversarial schedulers. In the asynchronous model the adversary's whole
// power over correct processes is choosing message delays; each class below
// is one strategy. All keep delays finite (the model requires eventual
// delivery between correct processes).
#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "sim/network.hpp"

namespace dr::sim {

/// Delays every message from a fixed victim set by `slow` ticks; everyone
/// else gets uniform [min, fast]. Models a WAN where f processes sit behind
/// a bad link — the classic way to keep them out of round quorums.
class FixedSetDelay final : public DelayModel {
 public:
  FixedSetDelay(std::vector<ProcessId> victims, SimTime fast, SimTime slow)
      : victims_(victims.begin(), victims.end()), fast_(fast), slow_(slow) {}

  SimTime delay(ProcessId from, ProcessId, Channel, std::size_t, SimTime,
                Xoshiro256& rng) override {
    if (victims_.count(from) > 0) return slow_ + rng.below(slow_ / 4 + 1);
    return 1 + rng.below(fast_);
  }
  SimTime max_delay() const override { return slow_ + slow_ / 4; }

 private:
  std::unordered_set<ProcessId> victims_;
  SimTime fast_;
  SimTime slow_;
};

/// Rotates which k processes are slow, switching every `period` ticks.
/// Stronger than FixedSetDelay against DAG-Rider: it tries to keep a
/// *different* set of processes out of each round's quorum, so no process is
/// reliably in the common core. Because the wave leader is drawn after the
/// wave completes, rotation cannot bias which leader lands outside the core.
class RotatingDelay final : public DelayModel {
 public:
  RotatingDelay(std::uint32_t n, std::uint32_t k, SimTime period, SimTime fast,
                SimTime slow)
      : n_(n), k_(k), period_(period), fast_(fast), slow_(slow) {}

  SimTime delay(ProcessId from, ProcessId, Channel, std::size_t, SimTime now,
                Xoshiro256& rng) override {
    const std::uint64_t phase = now / period_;
    const ProcessId first = static_cast<ProcessId>((phase * k_) % n_);
    // Victims are k consecutive ids starting at `first` (wrapping).
    const std::uint32_t offset = (from + n_ - first) % n_;
    if (offset < k_) return slow_ + rng.below(slow_ / 4 + 1);
    return 1 + rng.below(fast_);
  }
  SimTime max_delay() const override { return slow_ + slow_ / 4; }

 private:
  std::uint32_t n_;
  std::uint32_t k_;
  SimTime period_;
  SimTime fast_;
  SimTime slow_;
};

/// Splits processes into two groups; cross-group messages are stalled by
/// `partition_extra` until `heal_time`, after which the network is uniform.
/// Exercises liveness recovery after long asynchrony.
class PartitionDelay final : public DelayModel {
 public:
  PartitionDelay(std::vector<ProcessId> group_a, SimTime heal_time,
                 SimTime fast, SimTime partition_extra)
      : group_a_(group_a.begin(), group_a.end()),
        heal_time_(heal_time),
        fast_(fast),
        extra_(partition_extra) {}

  SimTime delay(ProcessId from, ProcessId to, Channel, std::size_t, SimTime now,
                Xoshiro256& rng) override {
    const bool cross = group_a_.count(from) != group_a_.count(to);
    SimTime d = 1 + rng.below(fast_);
    if (cross && now < heal_time_) {
      // Stall until just past the heal point, plus jitter.
      d += (heal_time_ - now) + extra_ + rng.below(fast_);
    }
    return d;
  }
  SimTime max_delay() const override { return fast_ + 1; }  // post-heal regime

 private:
  std::unordered_set<ProcessId> group_a_;
  SimTime heal_time_;
  SimTime fast_;
  SimTime extra_;
};

/// Victim -> blind-group slowdown: messages from `victims` to `blind`
/// processes are slow; every other link is fast. A victim's vertices stay
/// strongly connected through the fast receivers but miss the blind group's
/// round quorums, so when the coin elects a victim, its wave leader gathers
/// sub-2f+1 support (no direct commit) while remaining reachable by strong
/// paths — the precise precondition of Figure 2's transitive recovery.
class SplitVictimDelay final : public DelayModel {
 public:
  SplitVictimDelay(std::vector<ProcessId> victims, std::vector<ProcessId> blind,
                   SimTime fast, SimTime slow)
      : victims_(victims.begin(), victims.end()),
        blind_(blind.begin(), blind.end()),
        fast_(fast),
        slow_(slow) {}

  SimTime delay(ProcessId from, ProcessId to, Channel, std::size_t, SimTime,
                Xoshiro256& rng) override {
    if (victims_.count(from) > 0 && blind_.count(to) > 0) {
      return slow_ + rng.below(slow_ / 4 + 1);
    }
    return 1 + rng.below(fast_);
  }
  SimTime max_delay() const override { return slow_ + slow_ / 4; }

 private:
  std::unordered_set<ProcessId> victims_;
  std::unordered_set<ProcessId> blind_;
  SimTime fast_;
  SimTime slow_;
};

/// Per-link asymmetric delays that re-randomize every `period` ticks: link
/// (from -> to) is slow in epoch e iff H(from, to, e) hits. Unlike the
/// victim-set models this desynchronizes *views*: two receivers observe the
/// same sender at very different times, which is what makes commit-rule
/// evaluations diverge across processes (the Figure-2 scenario).
class AsymmetricDelay final : public DelayModel {
 public:
  AsymmetricDelay(std::uint64_t seed, SimTime period, SimTime fast, SimTime slow,
                  std::uint32_t slow_one_in = 3)
      : seed_(seed), period_(period), fast_(fast), slow_(slow),
        slow_one_in_(slow_one_in) {}

  SimTime delay(ProcessId from, ProcessId to, Channel, std::size_t, SimTime now,
                Xoshiro256& rng) override {
    const std::uint64_t epoch = now / period_;
    SplitMix64 h(seed_ ^ (static_cast<std::uint64_t>(from) << 40) ^
                 (static_cast<std::uint64_t>(to) << 20) ^ epoch);
    if (h.next() % slow_one_in_ == 0) return slow_ + rng.below(slow_ / 4 + 1);
    return 1 + rng.below(fast_);
  }
  SimTime max_delay() const override { return slow_ + slow_ / 4; }

 private:
  std::uint64_t seed_;
  SimTime period_;
  SimTime fast_;
  SimTime slow_;
  std::uint32_t slow_one_in_;
};

/// Mutable victim set: the harness (playing the adversary's brain) can
/// retarget delays while the run executes — e.g. ambush a wave leader the
/// moment the coin reveals it. Demonstrates why *retrospective* election
/// defeats the adaptive adversary: the ambush always comes too late.
class TargetedDelay final : public DelayModel {
 public:
  TargetedDelay(SimTime fast, SimTime slow) : fast_(fast), slow_(slow) {}

  void set_victims(std::unordered_set<ProcessId> victims) {
    victims_ = std::move(victims);
  }
  void add_victim(ProcessId pid) { victims_.insert(pid); }
  void clear_victims() { victims_.clear(); }

  SimTime delay(ProcessId from, ProcessId, Channel, std::size_t, SimTime,
                Xoshiro256& rng) override {
    if (victims_.count(from) > 0) return slow_ + rng.below(slow_ / 4 + 1);
    return 1 + rng.below(fast_);
  }
  SimTime max_delay() const override { return slow_ + slow_ / 4; }

 private:
  std::unordered_set<ProcessId> victims_;
  SimTime fast_;
  SimTime slow_;
};

}  // namespace dr::sim
