// Deterministic discrete-event simulator. A single logical clock and a
// priority queue of closures; ties broken by insertion sequence so identical
// (topology, seed) pairs replay the exact same execution.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/rng.hpp"

namespace dr::sim {

/// Simulated time in abstract ticks. Message delays are on the order of
/// 1'000 ticks so sub-tick rounding never matters.
using SimTime = std::uint64_t;

class Simulator {
 public:
  explicit Simulator(std::uint64_t seed) : rng_(seed) {}

  SimTime now() const { return now_; }
  Xoshiro256& rng() { return rng_; }

  /// Schedules `fn` to run at now() + delay. Returns an id usable by cancel().
  std::uint64_t schedule(SimTime delay, std::function<void()> fn) {
    const std::uint64_t id = next_seq_++;
    queue_.push(Event{now_ + delay, id, std::move(fn), false});
    return id;
  }

  /// Lazily cancels a scheduled event (it stays queued but will not run).
  void cancel(std::uint64_t id) { cancelled_.push_back(id); }

  /// Runs events until the queue is empty or `max_events` have executed.
  /// Returns the number of events executed.
  std::uint64_t run(std::uint64_t max_events = UINT64_MAX);

  /// Runs until the predicate returns true (checked after every event) or
  /// the queue drains. Returns true iff the predicate was satisfied.
  bool run_until(const std::function<bool()>& done,
                 std::uint64_t max_events = UINT64_MAX);

  bool idle() const { return queue_.empty(); }
  std::uint64_t events_executed() const { return executed_; }

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq;
    std::function<void()> fn;
    bool cancelled;
    bool operator>(const Event& o) const {
      return time != o.time ? time > o.time : seq > o.seq;
    }
  };

  bool is_cancelled(std::uint64_t id);

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  std::vector<std::uint64_t> cancelled_;
  Xoshiro256 rng_;
};

}  // namespace dr::sim
