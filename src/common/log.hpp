// Tiny leveled logger. Off by default so tests and benchmarks stay quiet;
// examples flip it on to narrate protocol progress.
#pragma once

#include <cstdarg>
#include <cstdio>

namespace dr {

enum class LogLevel : int { kNone = 0, kInfo = 1, kDebug = 2, kTrace = 3 };

/// Global log threshold (a deliberate exception to I.2: logging is the one
/// piece of cross-cutting mutable state, and it never affects behaviour).
LogLevel log_level();
void set_log_level(LogLevel level);

void log_write(LogLevel level, const char* fmt, ...)
#if defined(__GNUC__)
    __attribute__((format(printf, 2, 3)))
#endif
    ;

}  // namespace dr

#define DR_LOG_INFO(...) ::dr::log_write(::dr::LogLevel::kInfo, __VA_ARGS__)
#define DR_LOG_DEBUG(...) ::dr::log_write(::dr::LogLevel::kDebug, __VA_ARGS__)
#define DR_LOG_TRACE(...) ::dr::log_write(::dr::LogLevel::kTrace, __VA_ARGS__)
