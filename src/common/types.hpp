// Core identifier and quorum types shared by every DAG-Rider module.
#pragma once

#include <cstdint>
#include <limits>

namespace dr {

/// Index of a process in the system, 0-based. The paper writes p_1..p_n;
/// we use 0..n-1 internally and render 1-based only in human-facing output.
using ProcessId = std::uint32_t;

/// Round number in the DAG. Round 0 holds the hardcoded genesis vertices.
using Round = std::uint64_t;

/// Wave number, 1-based as in the paper (wave w spans rounds 4(w-1)+1..4w).
using Wave = std::uint64_t;

/// Sequence number of an a_bcast call (the paper's r in a_bcast(m, r)).
using SlotId = std::uint64_t;

inline constexpr ProcessId kInvalidProcess =
    std::numeric_limits<ProcessId>::max();

/// Quorum arithmetic for n = 3f + 1.
struct Committee {
  std::uint32_t n = 0;  ///< total number of processes
  std::uint32_t f = 0;  ///< maximum tolerated Byzantine processes

  static constexpr Committee for_n(std::uint32_t n) {
    return Committee{n, (n - 1) / 3};
  }
  static constexpr Committee for_f(std::uint32_t f) {
    return Committee{3 * f + 1, f};
  }

  /// 2f + 1, the quorum used for round advancement and the commit rule.
  [[nodiscard]] constexpr std::uint32_t quorum() const { return 2 * f + 1; }
  /// f + 1, the intersection bound / coin reconstruction threshold.
  [[nodiscard]] constexpr std::uint32_t small_quorum() const { return f + 1; }
  /// n - 2f, the smallest vote count certain to intersect any 2f+1-sized
  /// strong-edge set (Bullshark's steady-state commit threshold). Equals
  /// small_quorum() when n = 3f+1; for committees with slack (n > 3f+1) the
  /// f+1 shortcut would NOT intersect, so this is the safe general form.
  [[nodiscard]] constexpr std::uint32_t vote_quorum() const { return n - 2 * f; }
  [[nodiscard]] constexpr bool valid() const { return n >= 1 && n > 3 * f; }
};

/// Named quorum helpers for call sites that hold a process count rather than
/// a Committee. These four functions (plus the Committee members above) are
/// the only places quorum arithmetic may be written — tools/daglint's
/// quorum-arith rule rejects inline `2f+1`-style expressions everywhere
/// else, because off-by-one quorums break the Lemma 4 intersection argument
/// silently.
[[nodiscard]] constexpr std::uint32_t quorum_2f1(std::uint32_t n) {
  return Committee::for_n(n).quorum();
}
[[nodiscard]] constexpr std::uint32_t weak_quorum_f1(std::uint32_t n) {
  return Committee::for_n(n).small_quorum();
}

/// Number of rounds per wave (the paper fixes 4; ablations vary it).
inline constexpr Round kRoundsPerWave = 4;

/// k-th round of wave w, k in [1..4]: round(w, k) = 4(w-1) + k.
constexpr Round wave_round(Wave w, Round k, Round rounds_per_wave = kRoundsPerWave) {
  return rounds_per_wave * (w - 1) + k;
}

/// Wave that a round belongs to (rounds >= 1).
constexpr Wave wave_of_round(Round r, Round rounds_per_wave = kRoundsPerWave) {
  return (r - 1) / rounds_per_wave + 1;
}

}  // namespace dr
