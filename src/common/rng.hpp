// Deterministic pseudo-random generators. Every source of randomness in the
// repository (adversarial schedules, workloads, coin dealer secrets) is
// derived from an explicit seed so that each experiment replays exactly.
#pragma once

#include <cstdint>
#include <limits>

namespace dr {

/// SplitMix64 — used to expand a single seed into independent streams.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** — fast, high-quality stream generator for simulation use.
/// Satisfies the UniformRandomBitGenerator concept for <random> adapters.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t below(std::uint64_t bound) {
    if (bound == 0) return 0;
    while (true) {
      const std::uint64_t x = (*this)();
      // Rejection sample the top of the range.
      if (x < max() - max() % bound) return x % bound;
    }
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Derives an independent child generator; used to give each process /
  /// subsystem its own stream so adding a consumer never perturbs others.
  Xoshiro256 fork(std::uint64_t salt) {
    SplitMix64 sm((*this)() ^ (salt * 0x9e3779b97f4a7c15ULL + 0x1234567));
    return Xoshiro256(sm.next());
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace dr
