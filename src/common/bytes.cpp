#include "common/bytes.hpp"

namespace dr {

std::string to_hex(BytesView b) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(b.size() * 2);
  for (std::uint8_t byte : b) {
    out.push_back(kDigits[byte >> 4]);
    out.push_back(kDigits[byte & 0xf]);
  }
  return out;
}

}  // namespace dr
