// Hard invariant checks. These abort: an invariant violation inside a BFT
// protocol simulation means the experiment itself is meaningless, so there is
// no point in attempting recovery (Core Guidelines E.5 / I.4).
#pragma once

#include <cstdio>
#include <cstdlib>

namespace dr::detail {
[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const char* msg) {
  std::fprintf(stderr, "DR_ASSERT failed: %s at %s:%d%s%s\n", expr, file, line,
               msg ? " — " : "", msg ? msg : "");
  std::abort();
}
}  // namespace dr::detail

#define DR_ASSERT(expr)                                              \
  do {                                                               \
    if (!(expr)) ::dr::detail::assert_fail(#expr, __FILE__, __LINE__, nullptr); \
  } while (0)

#define DR_ASSERT_MSG(expr, msg)                                     \
  do {                                                               \
    if (!(expr)) ::dr::detail::assert_fail(#expr, __FILE__, __LINE__, (msg)); \
  } while (0)
