// Minimal byte-oriented serialization. Every protocol message is serialized
// through ByteWriter so the simulator can account for wire bytes exactly —
// the communication-complexity experiments (Table 1) depend on this.
#pragma once

#include <cstdint>
#include <cstring>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/assert.hpp"

namespace dr {

using Bytes = std::vector<std::uint8_t>;
using BytesView = std::span<const std::uint8_t>;

/// Appends fixed-width little-endian integers and length-prefixed blobs.
class ByteWriter {
 public:
  ByteWriter() = default;
  explicit ByteWriter(std::size_t reserve) { buf_.reserve(reserve); }

  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) { append_le(v); }
  void u32(std::uint32_t v) { append_le(v); }
  void u64(std::uint64_t v) { append_le(v); }

  /// Raw bytes, no length prefix. Use for fixed-size digests.
  void raw(BytesView b) { buf_.insert(buf_.end(), b.begin(), b.end()); }

  /// Length-prefixed (u32) variable blob.
  void blob(BytesView b) {
    u32(static_cast<std::uint32_t>(b.size()));
    raw(b);
  }
  void blob(std::string_view s) {
    blob(BytesView{reinterpret_cast<const std::uint8_t*>(s.data()), s.size()});
  }

  std::size_t size() const { return buf_.size(); }
  Bytes take() && { return std::move(buf_); }
  const Bytes& bytes() const { return buf_; }

 private:
  template <typename T>
  void append_le(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }
  Bytes buf_;
};

/// Consumes what ByteWriter produced. All reads are checked: a read past the
/// end (malformed message from a Byzantine sender) flips the reader into a
/// failed state instead of reading garbage; callers test ok() once at the end.
class ByteReader {
 public:
  explicit ByteReader(BytesView data) : data_(data) {}

  std::uint8_t u8() { return read_le<std::uint8_t>(); }
  std::uint16_t u16() { return read_le<std::uint16_t>(); }
  std::uint32_t u32() { return read_le<std::uint32_t>(); }
  std::uint64_t u64() { return read_le<std::uint64_t>(); }

  /// Reads exactly n raw bytes (fixed-size digest fields).
  Bytes raw(std::size_t n) {
    if (!check(n)) return {};
    Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
              data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += n;
    return out;
  }

  /// Reads a u32 length prefix then that many bytes.
  Bytes blob() {
    const std::uint32_t n = u32();
    return raw(n);
  }

  bool ok() const { return ok_; }
  bool done() const { return ok_ && pos_ == data_.size(); }
  std::size_t remaining() const { return data_.size() - pos_; }

 private:
  template <typename T>
  T read_le() {
    if (!check(sizeof(T))) return T{};
    T v{};
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v = static_cast<T>(v | (static_cast<T>(data_[pos_ + i]) << (8 * i)));
    }
    pos_ += sizeof(T);
    return v;
  }
  bool check(std::size_t n) {
    if (!ok_ || pos_ + n > data_.size()) {
      ok_ = false;
      return false;
    }
    return true;
  }

  BytesView data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

/// Hex rendering for digests in logs and test failure messages.
std::string to_hex(BytesView b);

}  // namespace dr
