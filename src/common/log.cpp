#include "common/log.hpp"

namespace dr {
namespace {
LogLevel g_level = LogLevel::kNone;
}  // namespace

LogLevel log_level() { return g_level; }
void set_log_level(LogLevel level) { g_level = level; }

void log_write(LogLevel level, const char* fmt, ...) {
  if (static_cast<int>(level) > static_cast<int>(g_level)) return;
  std::va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  std::fputc('\n', stderr);
  va_end(args);
}

}  // namespace dr
