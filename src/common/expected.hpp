// A small Expected<T> used for fallible decode/verify paths where throwing
// would be wrong (Byzantine inputs are expected, not exceptional).
#pragma once

#include <optional>
#include <string>
#include <utility>

#include "common/assert.hpp"

namespace dr {

/// Result of an operation that can fail with a human-readable reason.
/// Intentionally simpler than std::expected (not in our toolchain's stdlib):
/// errors are diagnostic strings because protocol code never branches on
/// error *kind* — a bad message is dropped either way.
template <typename T>
class [[nodiscard]] Expected {
 public:
  Expected(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  static Expected failure(std::string reason) {
    Expected e;
    e.error_ = std::move(reason);
    return e;
  }

  bool ok() const { return value_.has_value(); }
  explicit operator bool() const { return ok(); }

  const T& value() const& {
    DR_ASSERT_MSG(ok(), error_.c_str());
    return *value_;
  }
  T&& value() && {
    DR_ASSERT_MSG(ok(), error_.c_str());
    return std::move(*value_);
  }
  const std::string& error() const {
    DR_ASSERT(!ok());
    return error_;
  }

 private:
  Expected() = default;
  std::optional<T> value_;
  std::string error_;
};

}  // namespace dr
