// T1-comm — Table 1, "Communication Complexity" column.
//
// Measures honest bytes sent per ordered value for:
//   VABA SMR            (paper: O(n^2) per decision)
//   Dumbo SMR           (paper: amortized O(n))
//   DAG-Rider + Bracha  (paper: amortized O(n^2))
//   DAG-Rider + gossip  (paper: amortized O(n log n))
//   DAG-Rider + AVID    (paper: amortized O(n))
//
// Absolute numbers are simulator-specific; the *shape* across n is the
// reproduction target: the growth column shows bytes/value(n) relative to
// n = 4, next to the paper's predicted growth for the same ratio.
#include <cmath>

#include "baselines/smr/slot_smr.hpp"
#include "bench_util.hpp"

namespace dr::bench {
namespace {

constexpr std::size_t kValueSize = 32;  // one "transaction"

/// Bytes per ordered value for a slot-SMR baseline. Every slot decides one
/// batch of `values_per_batch` values; proposals that lose the slot are
/// wasted bytes, which is exactly the VABA/Dumbo overhead the paper calls
/// out. Warmup: first output emitted everywhere.
double smr_bytes_per_value(std::uint32_t n, baselines::SmrBackend backend,
                           std::uint32_t values_per_batch, std::uint64_t seed,
                           std::uint64_t slots = 6) {
  baselines::SmrSystemConfig cfg;
  cfg.committee = Committee::for_n(n);
  cfg.seed = seed;
  cfg.backend = backend;
  cfg.batch_size = static_cast<std::size_t>(values_per_batch) * kValueSize;
  baselines::SmrSystem sys(std::move(cfg));
  sys.start();
  if (!sys.run_until_output(1)) return -1;
  sys.network().reset_traffic();
  const std::uint64_t warm = sys.node(0).slots_output();
  if (!sys.run_until_output(warm + slots)) return -1;
  const std::uint64_t values = slots * values_per_batch;
  return static_cast<double>(sys.network().total_honest_bytes_sent()) /
         static_cast<double>(values);
}

struct Row {
  std::string name;
  std::string paper_complexity;
  /// bytes/value measured at each n.
  std::vector<double> measured;
  /// predicted growth of bytes/value from n0 to n (for the growth column).
  std::function<double(double n0, double n)> predicted_growth;
};

void run() {
  print_header("T1-comm", "communication complexity (honest bytes per ordered value)");

  std::vector<Row> rows;
  rows.push_back({"VABA SMR", "O(n^2)", {}, [](double a, double b) {
                    return (b * b) / (a * a);
                  }});
  rows.push_back({"Dumbo SMR", "~O(n)", {}, [](double a, double b) {
                    return b / a;
                  }});
  rows.push_back({"DAG-Rider + Bracha", "~O(n^2)", {}, [](double a, double b) {
                    return (b * b) / (a * a);
                  }});
  rows.push_back({"DAG-Rider + Bracha(hash-echo)", "~O(n)+n^2 digests", {},
                  [](double a, double b) { return b / a; }});
  rows.push_back({"DAG-Rider + gossip", "~O(n log n)", {}, [](double a, double b) {
                    return (b * std::log(b)) / (a * std::log(a));
                  }});
  rows.push_back({"DAG-Rider + AVID", "~O(n)", {}, [](double a, double b) {
                    return b / a;
                  }});

  // Average each cell over seeds: VABA/Dumbo view counts are random
  // variables and single runs are noisy.
  const std::vector<std::uint64_t> kSeeds{11, 22, 33};
  auto avg = [&](const std::function<double(std::uint64_t)>& one) {
    metrics::Summary s;
    for (std::uint64_t seed : kSeeds) {
      const double v = one(seed);
      if (v > 0) s.add(v);
    }
    return s.mean();
  };

  for (std::uint32_t n : sweep_n()) {
    // The paper's amortization: batch O(n) values per block/batch.
    const std::uint32_t batch = n;
    rows[0].measured.push_back(avg([&](std::uint64_t seed) {
      return smr_bytes_per_value(n, baselines::SmrBackend::kVaba, batch, seed);
    }));
    rows[1].measured.push_back(avg([&](std::uint64_t seed) {
      return smr_bytes_per_value(n, baselines::SmrBackend::kDumbo, batch, seed);
    }));
    rows[2].measured.push_back(avg([&](std::uint64_t seed) {
      return run_dag_rider(n, rbc::RbcKind::kBracha, seed, batch, kValueSize)
          .bytes_per_value;
    }));
    rows[3].measured.push_back(avg([&](std::uint64_t seed) {
      return run_dag_rider(n, rbc::RbcKind::kBrachaHash, seed, batch, kValueSize)
          .bytes_per_value;
    }));
    rows[4].measured.push_back(avg([&](std::uint64_t seed) {
      return run_dag_rider(n, rbc::RbcKind::kGossip, seed, batch, kValueSize)
          .bytes_per_value;
    }));
    rows[5].measured.push_back(avg([&](std::uint64_t seed) {
      return run_dag_rider(n, rbc::RbcKind::kAvid, seed, batch, kValueSize)
          .bytes_per_value;
    }));
  }

  std::vector<std::string> headers{"protocol", "paper"};
  for (std::uint32_t n : sweep_n()) headers.push_back("n=" + std::to_string(n));
  headers.push_back("growth(meas)");
  headers.push_back("growth(pred)");
  metrics::Table table(std::move(headers));
  const double n0 = sweep_n().front(), n1 = sweep_n().back();
  for (const Row& r : rows) {
    std::vector<std::string> cells{r.name, r.paper_complexity};
    for (double v : r.measured) cells.push_back(metrics::Table::fmt(v, 0));
    cells.push_back(metrics::Table::fmt(r.measured.back() / r.measured.front(), 1) + "x");
    cells.push_back(metrics::Table::fmt(r.predicted_growth(n0, n1), 1) + "x");
    table.add_row(std::move(cells));
  }
  emit(table);
  std::printf(
      "\nReading: growth(meas) ~ growth(pred) per row reproduces the column;\n"
      "AVID & Dumbo stay near-linear while Bracha & VABA grow ~quadratically.\n");
}

}  // namespace
}  // namespace dr::bench

int main(int argc, char** argv) {
  dr::bench::bench_init(argc, argv);
  dr::bench::run();
  dr::bench::bench_finish();
  return 0;
}
