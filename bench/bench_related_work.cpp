// RW — §7 related-work comparison: DAG-Rider vs an Aleph-style DAG BFT
// (round-based DAG + one binary agreement per slot).
//
// Reproduced claims:
//   * communication: Aleph pays O(n^3) agreement messages per DAG round
//     on top of the broadcasts; DAG-Rider's ordering layer pays zero.
//   * latency: Aleph outputs a round only when the slowest of its n BBAs
//     decides; DAG-Rider decides a whole wave with one coin flip.
//   * validity: a slow-but-correct process is starved by Aleph (its slots
//     decide 0) but not by DAG-Rider (weak edges).
#include "baselines/aleph/aleph.hpp"
#include "bench_util.hpp"
#include "coin/threshold_coin.hpp"

namespace dr::bench {
namespace {

struct AlephRun {
  double bytes_per_vertex = 0;
  double time_per_round = 0;  // sim ticks per output round
  std::uint64_t excluded = 0;
  std::uint64_t delivered = 0;
  bool ok = false;
};

AlephRun run_aleph(std::uint32_t n, std::uint64_t seed, bool slow_victim) {
  const Committee c = Committee::for_n(n);
  sim::Simulator sim(seed);
  std::unique_ptr<sim::DelayModel> delays;
  if (slow_victim) {
    // ~6 DAG rounds of lag: far beyond Aleph's voting window (kLag = 2),
    // comfortably inside DAG-Rider's weak-edge reach within the horizon.
    delays = std::make_unique<sim::FixedSetDelay>(
        std::vector<ProcessId>{n - 1}, 30, 400);
  } else {
    delays = std::make_unique<sim::UniformDelay>(1, 100);
  }
  sim::Network net(sim, c, std::move(delays));
  coin::CoinDealer dealer(seed ^ 0xA1, c);
  const auto factory = rbc::make_factory(rbc::RbcKind::kOracle);
  std::vector<std::unique_ptr<rbc::ReliableBroadcast>> rbcs;
  std::vector<std::unique_ptr<dag::DagBuilder>> builders;
  std::vector<std::unique_ptr<coin::ThresholdCoin>> coins;
  std::vector<std::unique_ptr<baselines::AlephOrderer>> orderers;
  for (ProcessId p = 0; p < n; ++p) {
    rbcs.push_back(factory(net, p, seed));
    builders.push_back(std::make_unique<dag::DagBuilder>(
        c, p, *rbcs[p],
        dag::BuilderOptions{.auto_blocks = true, .auto_block_size = 64}));
    coins.push_back(std::make_unique<coin::ThresholdCoin>(
        net, coin::ProcessCoinKey(&dealer, p)));
    orderers.push_back(std::make_unique<baselines::AlephOrderer>(
        *builders[p], net, p, *coins[p]));
  }
  for (auto& b : builders) b->start();

  AlephRun out;
  const Round target = 8;
  if (!sim.run_until([&] { return orderers[0]->rounds_output() >= target; },
                     400'000'000)) {
    return out;
  }
  out.delivered = orderers[0]->delivered_count();
  out.excluded = orderers[0]->excluded_count();
  out.bytes_per_vertex = static_cast<double>(net.total_bytes_sent()) /
                         static_cast<double>(out.delivered ? out.delivered : 1);
  out.time_per_round =
      static_cast<double>(sim.now()) / static_cast<double>(target);
  out.ok = true;
  return out;
}

struct RiderRun {
  double bytes_per_vertex = 0;
  double time_per_round = 0;
  std::uint64_t starved = 0;
  bool ok = false;
};

RiderRun run_rider(std::uint32_t n, std::uint64_t seed, bool slow_victim) {
  core::SystemConfig cfg;
  cfg.committee = Committee::for_n(n);
  cfg.seed = seed;
  cfg.rbc_kind = rbc::RbcKind::kOracle;
  cfg.builder.auto_blocks = true;
  cfg.builder.auto_block_size = 64;
  if (slow_victim) {
    cfg.delays = std::make_unique<sim::FixedSetDelay>(
        std::vector<ProcessId>{n - 1}, 30, 400);
  }
  core::System sys(std::move(cfg));
  sys.start();
  RiderRun out;
  const std::uint64_t target_blocks = 20ull * n;  // past the victim's lag
  if (!sys.run_until_delivered(target_blocks, 400'000'000)) return out;
  const auto& log = sys.node(0).delivered();
  out.bytes_per_vertex = static_cast<double>(sys.network().total_bytes_sent()) /
                         static_cast<double>(log.size());
  Round max_round = 0;
  std::uint64_t from_victim = 0;
  for (const auto& rec : log) {
    max_round = std::max(max_round, rec.round);
    from_victim += rec.source == n - 1 ? 1 : 0;
  }
  out.time_per_round = static_cast<double>(sys.simulator().now()) /
                       static_cast<double>(max_round ? max_round : 1);
  out.starved = from_victim == 0 ? 1 : 0;
  out.ok = true;
  return out;
}

void run() {
  print_header("RW", "§7 comparison: DAG-Rider vs Aleph-style per-slot BBA");
  metrics::Table t({"system", "n", "bytes/ordered vertex", "ticks/DAG round",
                    "slow-victim blocks ordered?"});
  for (std::uint32_t n : {4u, 7u, 10u}) {
    const AlephRun a = run_aleph(n, 21, false);
    const AlephRun a_slow = run_aleph(n, 21, true);
    t.add_row({"Aleph-style", std::to_string(n),
               a.ok ? metrics::Table::fmt(a.bytes_per_vertex, 0) : "stall",
               a.ok ? metrics::Table::fmt(a.time_per_round, 0) : "-",
               a_slow.ok ? (a_slow.excluded > 0 ? "no (excluded)" : "yes")
                         : "stall"});
    const RiderRun r = run_rider(n, 21, false);
    const RiderRun r_slow = run_rider(n, 21, true);
    t.add_row({"DAG-Rider", std::to_string(n),
               r.ok ? metrics::Table::fmt(r.bytes_per_vertex, 0) : "stall",
               r.ok ? metrics::Table::fmt(r.time_per_round, 0) : "-",
               r_slow.ok ? (r_slow.starved ? "no" : "yes (weak edges)") : "stall"});
  }
  emit(t);
  std::printf(
      "\nBoth systems run the same DAG substrate (oracle broadcast, 64B\n"
      "blocks); the delta is pure ordering cost. Reading: Aleph pays n BBAs\n"
      "of O(n^2) messages per round and grows much faster in bytes/vertex;\n"
      "it also excludes the slow-but-correct process (no Validity), which\n"
      "DAG-Rider's weak edges rescue.\n");
}

}  // namespace
}  // namespace dr::bench

int main(int argc, char** argv) {
  dr::bench::bench_init(argc, argv);
  dr::bench::run();
  dr::bench::bench_finish();
  return 0;
}
