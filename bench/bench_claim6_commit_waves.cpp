// C6 — Claim 6: for every correct process and wave, the expected number of
// waves until the commit rule is met is <= 3/2 + ε.
//
// The bound comes from Lemma 2's common core: the wave leader is drawn
// *after* the wave completes, so with probability >= (2f+1)/(3f+1) ~ 2/3 it
// lands inside the core and commits directly; waves-to-commit is geometric.
// We measure the per-wave direct-commit rate and the gap distribution under
// schedulers of increasing nastiness.
#include "bench_util.hpp"

namespace dr::bench {
namespace {

struct Claim6Row {
  std::string scheduler;
  metrics::Summary direct_rate;   // fraction of waves with direct commit
  metrics::Summary mean_gap;      // waves between consecutive commits
  std::map<std::uint64_t, std::uint64_t> gap_histogram;
};

void run_one(std::uint64_t seed, std::unique_ptr<sim::DelayModel> delays,
             Claim6Row& row, std::uint32_t f) {
  core::SystemConfig cfg;
  cfg.committee = Committee::for_f(f);
  cfg.seed = seed;
  cfg.rbc_kind = rbc::RbcKind::kOracle;
  cfg.builder.auto_blocks = true;
  cfg.builder.auto_block_size = 8;
  cfg.delays = std::move(delays);
  core::System sys(std::move(cfg));
  sys.start();
  if (!sys.simulator().run_until(
          [&sys] { return sys.node(0).rider().decided_wave() >= 30; },
          200'000'000)) {
    return;
  }
  const auto& rider = sys.node(0).rider();
  const auto& commits = rider.committed_leaders();
  row.direct_rate.add(1.0 - static_cast<double>(rider.waves_without_direct_commit()) /
                                static_cast<double>(rider.waves_evaluated()));
  Wave prev = 0;
  metrics::Summary gaps;
  for (const auto& [wave, leader] : commits) {
    const std::uint64_t gap = wave - prev;
    gaps.add(static_cast<double>(gap));
    row.gap_histogram[gap] += 1;
    prev = wave;
  }
  row.mean_gap.add(gaps.mean());
}

void run() {
  print_header("C6", "expected waves until the commit rule is met (bound: 3/2 + eps)");

  const std::uint32_t f = 1;
  std::vector<Claim6Row> rows(3);
  rows[0].scheduler = "uniform delays";
  rows[1].scheduler = "rotating slow set";
  rows[2].scheduler = "fixed slow set (f procs)";

  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    run_one(seed, std::make_unique<sim::UniformDelay>(1, 100), rows[0], f);
    run_one(seed,
            std::make_unique<sim::RotatingDelay>(4, 1, 220, 25, 260), rows[1], f);
    run_one(seed,
            std::make_unique<sim::FixedSetDelay>(std::vector<ProcessId>{3}, 30,
                                                 300),
            rows[2], f);
  }

  metrics::Table t({"scheduler", "direct-commit rate", "paper bound",
                    "mean waves/commit", "p95 waves/commit"});
  for (Claim6Row& r : rows) {
    t.add_row({r.scheduler, metrics::Table::fmt(r.direct_rate.mean(), 3),
               ">= 2/3 - eps", metrics::Table::fmt(r.mean_gap.mean(), 3),
               metrics::Table::fmt(r.mean_gap.percentile(0.95), 2)});
  }
  emit(t);

  std::printf("\ncommit-gap histogram (waves between commits, rotating scheduler):\n");
  for (const auto& [gap, count] : rows[1].gap_histogram) {
    std::printf("  gap %llu: %-6llu %s\n", (unsigned long long)gap,
                (unsigned long long)count,
                std::string(std::min<std::uint64_t>(count / 8, 60), '#').c_str());
  }
  std::printf(
      "\nReading: the commit rate stays >= 2/3 under every scheduler (Lemma\n"
      "2's common core + retroactive coin), so mean waves/commit <= 3/2 and\n"
      "the gap distribution is geometric — Claim 6.\n");
}

}  // namespace
}  // namespace dr::bench

int main(int argc, char** argv) {
  dr::bench::bench_init(argc, argv);
  dr::bench::run();
  dr::bench::bench_finish();
  return 0;
}
