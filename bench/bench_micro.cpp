// MICRO — google-benchmark microbenchmarks for the substrates: hashing
// (dispatched vs forced-scalar), frame encoding, broadcast fan-out,
// erasure coding, Merkle trees, Shamir, DAG insertion and reachability.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>

#include "common/rng.hpp"
#include "crypto/merkle.hpp"
#include "crypto/reed_solomon.hpp"
#include "crypto/sha256.hpp"
#include "crypto/shamir.hpp"
#include "dag/dag.hpp"
#include "net/frame.hpp"
#include "net/payload.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"

namespace dr {
namespace {

Bytes random_bytes(std::size_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  Bytes out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng());
  return out;
}

void BM_Sha256(benchmark::State& state) {
  const Bytes data = random_bytes(static_cast<std::size_t>(state.range(0)), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::sha256(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
  state.SetLabel(crypto::sha256_backend());
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(65536);

void BM_Sha256Scalar(benchmark::State& state) {
  // Portable baseline: divide BM_Sha256's bytes/sec by this to get the
  // hardware-acceleration speedup on the host.
  const Bytes data = random_bytes(static_cast<std::size_t>(state.range(0)), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::sha256_portable(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
  state.SetLabel("scalar");
}
BENCHMARK(BM_Sha256Scalar)->Arg(64)->Arg(1024)->Arg(65536);

void BM_PayloadDigestMemoized(benchmark::State& state) {
  // The single-hash discipline in one number: repeated digest() calls on a
  // shared payload cost a lookup, not a SHA-256 pass.
  const net::Payload payload(random_bytes(16'384, 5));
  (void)payload.digest();  // warm the memo
  for (auto _ : state) {
    benchmark::DoNotOptimize(payload.digest());
  }
}
BENCHMARK(BM_PayloadDigestMemoized);

void BM_FrameEncode(benchmark::State& state) {
  const Bytes payload = random_bytes(static_cast<std::size_t>(state.range(0)), 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        net::encode_frame(2, net::Channel::kBracha, BytesView(payload)));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_FrameEncode)->Arg(256)->Arg(4096);

void BM_FrameEncodeHeader(benchmark::State& state) {
  // The zero-copy wire path's per-frame cost: 12 header bytes on the stack,
  // payload untouched (contrast with BM_FrameEncode's full copy).
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        net::encode_frame_header(2, net::Channel::kBracha, 4096));
  }
}
BENCHMARK(BM_FrameEncodeHeader);

void BM_BroadcastFanout(benchmark::State& state) {
  // One broadcast scheduled to all n processes through the simulator bus.
  // The first iteration doubles as the zero-copy regression gate: a single
  // broadcast must perform ZERO deep payload copies end to end.
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const std::size_t kPayloadSize = 16'384;
  bool checked = false;
  for (auto _ : state) {
    state.PauseTiming();
    sim::Simulator sim(42);
    sim::Network net(sim, Committee::for_n(n),
                     std::make_unique<sim::UniformDelay>(1, 1));
    std::size_t delivered = 0;
    for (ProcessId p = 0; p < n; ++p) {
      net.subscribe(p, net::Channel::kGossip,
                    [&delivered](ProcessId, const net::Payload&) { ++delivered; });
    }
    net::Payload payload(random_bytes(kPayloadSize, 7));
    state.ResumeTiming();
    net::Payload::reset_copy_counters();
    net.broadcast(0, net::Channel::kGossip, std::move(payload));
    sim.run();
    benchmark::DoNotOptimize(delivered);
    if (!checked) {
      checked = true;
      if (delivered != n || net::Payload::copy_count() != 0) {
        std::fprintf(stderr,
                     "FATAL: broadcast fan-out regressed: delivered=%zu/%u "
                     "payload copies=%llu (expected 0)\n",
                     delivered, n,
                     static_cast<unsigned long long>(net::Payload::copy_count()));
        std::abort();
      }
    }
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kPayloadSize));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_BroadcastFanout)->Arg(4)->Arg(10)->Arg(31);

void BM_RsEncode(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const Committee c = Committee::for_n(n);
  crypto::ReedSolomon rs(c.small_quorum(), n - c.small_quorum());
  const Bytes data = random_bytes(16'384, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rs.encode(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 16'384);
}
BENCHMARK(BM_RsEncode)->Arg(4)->Arg(10)->Arg(31);

void BM_RsDecodeWithErasures(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const Committee c = Committee::for_n(n);
  crypto::ReedSolomon rs(c.small_quorum(), n - c.small_quorum());
  const Bytes data = random_bytes(16'384, 3);
  auto shards = rs.encode(data);
  std::vector<std::optional<Bytes>> present(n);
  // Keep only the last k shards (all-parity worst case for the solver).
  for (std::uint32_t i = n - c.small_quorum(); i < n; ++i) present[i] = shards[i];
  for (auto _ : state) {
    auto out = rs.decode(present);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 16'384);
}
BENCHMARK(BM_RsDecodeWithErasures)->Arg(4)->Arg(10)->Arg(31);

void BM_MerkleBuildAndProve(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<Bytes> leaves;
  for (std::size_t i = 0; i < n; ++i) leaves.push_back(random_bytes(512, i));
  for (auto _ : state) {
    crypto::MerkleTree tree(leaves);
    benchmark::DoNotOptimize(tree.prove(static_cast<std::uint32_t>(n / 2)));
  }
}
BENCHMARK(BM_MerkleBuildAndProve)->Arg(4)->Arg(16)->Arg(64);

void BM_MerkleVerify(benchmark::State& state) {
  std::vector<Bytes> leaves;
  for (std::size_t i = 0; i < 32; ++i) leaves.push_back(random_bytes(512, i));
  crypto::MerkleTree tree(leaves);
  const auto proof = tree.prove(17);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::MerkleTree::verify(tree.root(), leaves[17], proof));
  }
}
BENCHMARK(BM_MerkleVerify);

void BM_ShamirReconstruct(benchmark::State& state) {
  const auto t = static_cast<std::uint32_t>(state.range(0));
  Xoshiro256 rng(4);
  auto shares = crypto::Shamir::split(12345, t, 3 * t + 1, rng);
  shares.resize(t);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::Shamir::reconstruct(shares));
  }
}
BENCHMARK(BM_ShamirReconstruct)->Arg(2)->Arg(5)->Arg(11);

/// Builds a fully-connected DAG of `rounds` rounds at committee size n.
dag::Dag build_dag(std::uint32_t n, Round rounds) {
  dag::Dag d(Committee::for_n(n));
  for (Round r = 1; r <= rounds; ++r) {
    const auto prev = d.round_sources(r - 1);
    for (ProcessId p = 0; p < n; ++p) {
      dag::Vertex v;
      v.source = p;
      v.round = r;
      v.block = Bytes{1};
      v.strong_edges = prev;
      d.insert(std::move(v));
    }
  }
  return d;
}

void BM_DagInsert(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(build_dag(n, 40));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 40 * n);
}
BENCHMARK(BM_DagInsert)->Arg(4)->Arg(10)->Arg(31);

void BM_DagStrongPathQuery(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const dag::Dag d = build_dag(n, 40);
  for (auto _ : state) {
    // Deep query: top round to round 1 — O(1) via ancestor bitsets.
    benchmark::DoNotOptimize(
        d.strong_path(dag::VertexId{0, 40}, dag::VertexId{n - 1, 1}));
  }
}
BENCHMARK(BM_DagStrongPathQuery)->Arg(4)->Arg(10)->Arg(31);

void BM_DagCausalHistory(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const dag::Dag d = build_dag(n, 40);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        d.causal_history(dag::VertexId{0, 40}, [](dag::VertexId) {
          return false;
        }));
  }
}
BENCHMARK(BM_DagCausalHistory)->Arg(4)->Arg(10)->Arg(31);

void BM_DagCommitRuleSupport(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const dag::Dag d = build_dag(n, 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(d.strong_support_in_round(4, dag::VertexId{0, 1}));
  }
}
BENCHMARK(BM_DagCommitRuleSupport)->Arg(4)->Arg(10)->Arg(31);

}  // namespace
}  // namespace dr

// Same CLI contract as the table benches: --json <path> (mapped onto the
// library's JSON reporter) and --smoke (minimal per-benchmark runtime).
int main(int argc, char** argv) {
  std::vector<std::string> args;
  args.reserve(static_cast<std::size_t>(argc) + 2);
  args.emplace_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--json" && i + 1 < argc) {
      args.push_back(std::string("--benchmark_out=") + argv[++i]);
      args.emplace_back("--benchmark_out_format=json");
    } else if (a == "--smoke") {
      args.emplace_back("--benchmark_min_time=0.005");
    } else {
      args.push_back(a);
    }
  }
  std::vector<char*> cargv;
  cargv.reserve(args.size());
  for (auto& s : args) cargv.push_back(s.data());
  int cargc = static_cast<int>(cargv.size());
  ::benchmark::Initialize(&cargc, cargv.data());
  if (::benchmark::ReportUnrecognizedArguments(cargc, cargv.data())) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
