// MICRO — google-benchmark microbenchmarks for the substrates: hashing,
// erasure coding, Merkle trees, Shamir, DAG insertion and reachability.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "crypto/merkle.hpp"
#include "crypto/reed_solomon.hpp"
#include "crypto/sha256.hpp"
#include "crypto/shamir.hpp"
#include "dag/dag.hpp"

namespace dr {
namespace {

Bytes random_bytes(std::size_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  Bytes out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng());
  return out;
}

void BM_Sha256(benchmark::State& state) {
  const Bytes data = random_bytes(static_cast<std::size_t>(state.range(0)), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::sha256(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(65536);

void BM_RsEncode(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const Committee c = Committee::for_n(n);
  crypto::ReedSolomon rs(c.small_quorum(), n - c.small_quorum());
  const Bytes data = random_bytes(16'384, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rs.encode(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 16'384);
}
BENCHMARK(BM_RsEncode)->Arg(4)->Arg(10)->Arg(31);

void BM_RsDecodeWithErasures(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const Committee c = Committee::for_n(n);
  crypto::ReedSolomon rs(c.small_quorum(), n - c.small_quorum());
  const Bytes data = random_bytes(16'384, 3);
  auto shards = rs.encode(data);
  std::vector<std::optional<Bytes>> present(n);
  // Keep only the last k shards (all-parity worst case for the solver).
  for (std::uint32_t i = n - c.small_quorum(); i < n; ++i) present[i] = shards[i];
  for (auto _ : state) {
    auto out = rs.decode(present);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 16'384);
}
BENCHMARK(BM_RsDecodeWithErasures)->Arg(4)->Arg(10)->Arg(31);

void BM_MerkleBuildAndProve(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<Bytes> leaves;
  for (std::size_t i = 0; i < n; ++i) leaves.push_back(random_bytes(512, i));
  for (auto _ : state) {
    crypto::MerkleTree tree(leaves);
    benchmark::DoNotOptimize(tree.prove(static_cast<std::uint32_t>(n / 2)));
  }
}
BENCHMARK(BM_MerkleBuildAndProve)->Arg(4)->Arg(16)->Arg(64);

void BM_MerkleVerify(benchmark::State& state) {
  std::vector<Bytes> leaves;
  for (std::size_t i = 0; i < 32; ++i) leaves.push_back(random_bytes(512, i));
  crypto::MerkleTree tree(leaves);
  const auto proof = tree.prove(17);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::MerkleTree::verify(tree.root(), leaves[17], proof));
  }
}
BENCHMARK(BM_MerkleVerify);

void BM_ShamirReconstruct(benchmark::State& state) {
  const auto t = static_cast<std::uint32_t>(state.range(0));
  Xoshiro256 rng(4);
  auto shares = crypto::Shamir::split(12345, t, 3 * t + 1, rng);
  shares.resize(t);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::Shamir::reconstruct(shares));
  }
}
BENCHMARK(BM_ShamirReconstruct)->Arg(2)->Arg(5)->Arg(11);

/// Builds a fully-connected DAG of `rounds` rounds at committee size n.
dag::Dag build_dag(std::uint32_t n, Round rounds) {
  dag::Dag d(Committee::for_n(n));
  for (Round r = 1; r <= rounds; ++r) {
    const auto prev = d.round_sources(r - 1);
    for (ProcessId p = 0; p < n; ++p) {
      dag::Vertex v;
      v.source = p;
      v.round = r;
      v.block = Bytes{1};
      v.strong_edges = prev;
      d.insert(std::move(v));
    }
  }
  return d;
}

void BM_DagInsert(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(build_dag(n, 40));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 40 * n);
}
BENCHMARK(BM_DagInsert)->Arg(4)->Arg(10)->Arg(31);

void BM_DagStrongPathQuery(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const dag::Dag d = build_dag(n, 40);
  for (auto _ : state) {
    // Deep query: top round to round 1 — O(1) via ancestor bitsets.
    benchmark::DoNotOptimize(
        d.strong_path(dag::VertexId{0, 40}, dag::VertexId{n - 1, 1}));
  }
}
BENCHMARK(BM_DagStrongPathQuery)->Arg(4)->Arg(10)->Arg(31);

void BM_DagCausalHistory(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const dag::Dag d = build_dag(n, 40);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        d.causal_history(dag::VertexId{0, 40}, [](dag::VertexId) {
          return false;
        }));
  }
}
BENCHMARK(BM_DagCausalHistory)->Arg(4)->Arg(10)->Arg(31);

void BM_DagCommitRuleSupport(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const dag::Dag d = build_dag(n, 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(d.strong_support_in_round(4, dag::VertexId{0, 1}));
  }
}
BENCHMARK(BM_DagCommitRuleSupport)->Arg(4)->Arg(10)->Arg(31);

}  // namespace
}  // namespace dr

// Same CLI contract as the table benches: --json <path> (mapped onto the
// library's JSON reporter) and --smoke (minimal per-benchmark runtime).
int main(int argc, char** argv) {
  std::vector<std::string> args;
  args.reserve(static_cast<std::size_t>(argc) + 2);
  args.emplace_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--json" && i + 1 < argc) {
      args.push_back(std::string("--benchmark_out=") + argv[++i]);
      args.emplace_back("--benchmark_out_format=json");
    } else if (a == "--smoke") {
      args.emplace_back("--benchmark_min_time=0.005");
    } else {
      args.push_back(a);
    }
  }
  std::vector<char*> cargv;
  cargv.reserve(args.size());
  for (auto& s : args) cargv.push_back(s.data());
  int cargc = static_cast<int>(cargv.size());
  ::benchmark::Initialize(&cargc, cargv.data());
  if (::benchmark::ReportUnrecognizedArguments(cargc, cargv.data())) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
