// T1-time — Table 1, "Expected time complexity" column.
//
// Paper metric: asynchronous time units until O(n) values proposed by
// different correct processes are delivered. DAG-Rider commits an entire
// wave leader's causal history (>= 2f+1 proposers' blocks) every O(1) waves
// -> flat in n. A slot-parallel VABA/Dumbo SMR must emit n slots in order,
// and the max of n geometric per-slot latencies grows ~log n (Ben-Or &
// El-Yaniv), which the "growth" column should reproduce.
#include <cmath>
#include <functional>

#include "baselines/smr/slot_smr.hpp"
#include "bench_util.hpp"

namespace dr::bench {
namespace {

/// All rows run under the same scheduler: f processes behind a slow link.
/// Under fully benign delays every VABA slot decides in view 1 and the
/// in-order constraint never binds; with f slow proposers the coin elects
/// an unfinished leader with probability ~f/n per view, per-slot latency is
/// geometric, and emitting n slots in order pays the max of n draws —
/// the O(log n) of Ben-Or & El-Yaniv. DAG-Rider under the *same* scheduler
/// skips the occasional wave but its per-commit work is one wave regardless
/// of n, so it stays flat.
std::unique_ptr<sim::DelayModel> slow_f_delays(std::uint32_t n) {
  const Committee c = Committee::for_n(n);
  std::vector<ProcessId> slow;
  for (std::uint32_t i = 0; i < c.f; ++i) slow.push_back(n - 1 - i);
  return std::make_unique<sim::FixedSetDelay>(slow, /*fast=*/100, /*slow=*/500);
}

/// Time units for a slot SMR to emit its first n in-order outputs.
double smr_time_units_for_n_outputs(std::uint32_t n,
                                    baselines::SmrBackend backend,
                                    std::uint64_t seed) {
  baselines::SmrSystemConfig cfg;
  cfg.committee = Committee::for_n(n);
  cfg.seed = seed;
  cfg.backend = backend;
  cfg.batch_size = 32;
  cfg.window = n;  // the paper's "up to n slots concurrently"
  cfg.delays = slow_f_delays(n);
  baselines::SmrSystem sys(std::move(cfg));
  const sim::SimTime unit = sys.network().max_delay();
  sys.start();
  if (!sys.run_until_output(n)) return -1;
  // Use the slowest correct process (system-level latency).
  sim::SimTime worst = 0;
  for (ProcessId p : sys.correct_ids()) {
    worst = std::max(worst, sys.node(p).outputs()[n - 1].time);
  }
  return static_cast<double>(worst) / static_cast<double>(unit);
}

void run() {
  print_header("T1-time",
               "expected time complexity (time units to order O(n) values "
               "from distinct correct processes)");

  std::vector<std::string> headers{"protocol", "paper"};
  for (std::uint32_t n : sweep_n()) headers.push_back("n=" + std::to_string(n));
  headers.push_back("growth n=4->16");
  metrics::Table table(std::move(headers));

  const int kSeeds = 10;

  auto sweep = [&](const std::string& name, const std::string& paper,
                   const std::function<double(std::uint32_t, std::uint64_t)>& one) {
    std::vector<std::string> cells{name, paper};
    double first = 0, last = 0;
    for (std::uint32_t n : sweep_n()) {
      metrics::Summary s;
      for (int seed = 1; seed <= kSeeds; ++seed) {
        const double v = one(n, 1000 + static_cast<std::uint64_t>(seed));
        if (v >= 0) s.add(v);
      }
      cells.push_back(metrics::Table::fmt(s.mean(), 1));
      if (n == sweep_n().front()) first = s.mean();
      if (n == sweep_n().back()) last = s.mean();
    }
    cells.push_back(metrics::Table::fmt(last / first, 2) + "x");
    table.add_row(std::move(cells));
  };

  sweep("DAG-Rider + Bracha", "O(1)", [](std::uint32_t n, std::uint64_t seed) {
    return run_dag_rider(n, rbc::RbcKind::kBracha, seed, 1, 32, 4,
                         core::CoinMode::kThreshold, slow_f_delays(n))
        .time_units_to_n_values;
  });
  sweep("DAG-Rider + AVID", "O(1)", [](std::uint32_t n, std::uint64_t seed) {
    return run_dag_rider(n, rbc::RbcKind::kAvid, seed, 1, 32, 4,
                         core::CoinMode::kThreshold, slow_f_delays(n))
        .time_units_to_n_values;
  });
  sweep("VABA SMR", "O(log n)", [](std::uint32_t n, std::uint64_t seed) {
    return smr_time_units_for_n_outputs(n, baselines::SmrBackend::kVaba, seed);
  });
  sweep("Dumbo SMR", "O(log n)", [](std::uint32_t n, std::uint64_t seed) {
    return smr_time_units_for_n_outputs(n, baselines::SmrBackend::kDumbo, seed);
  });

  emit(table);
  const double log_growth = std::log(16.0) / std::log(4.0);
  std::printf(
      "\nAll rows share one scheduler: f processes behind a slow link.\n"
      "Reading: DAG-Rider rows stay ~flat (O(1)); SMR rows grow with n —\n"
      "the in-order constraint pays the max of n geometric per-slot\n"
      "latencies (theory: >= log(n) growth ~= %.2fx from n=4 to n=16, plus\n"
      "re-proposal queueing).\n",
      log_growth);
}

}  // namespace
}  // namespace dr::bench

int main(int argc, char** argv) {
  dr::bench::bench_init(argc, argv);
  dr::bench::run();
  dr::bench::bench_finish();
  return 0;
}
