// F1 — Figure 1: the structured round-based DAG.
//
// Re-creates the figure's setting (n = 4, f = 1) on a live run, renders the
// delivered DAG of process 1 as ASCII art, and checks the structural
// invariants the figure illustrates:
//   * every completed round has >= 2f+1 = 3 vertices;
//   * every vertex has >= 2f+1 strong edges into the previous round;
//   * weak edges appear exactly when a vertex would otherwise be
//     unreachable (here induced by one slow process).
#include "bench_util.hpp"

namespace dr::bench {
namespace {

void run() {
  print_header("F1", "DAG structure at process 1 (n = 4, f = 1)");

  core::SystemConfig cfg;
  cfg.committee = Committee::for_f(1);
  cfg.seed = 2021;
  cfg.rbc_kind = rbc::RbcKind::kBracha;
  cfg.builder.auto_blocks = true;
  cfg.builder.auto_block_size = 8;
  // Process 3 sits behind a slow link, like the figure's v_2 source: its
  // vertices arrive late and pick up weak edges from others.
  cfg.delays = std::make_unique<sim::FixedSetDelay>(std::vector<ProcessId>{3},
                                                    /*fast=*/30, /*slow=*/350);
  core::System sys(std::move(cfg));
  sys.start();
  sys.run_until_delivered(24, 50'000'000);

  const dag::Dag& dag = sys.node(0).builder().dag();
  const Round top = std::min<Round>(dag.max_round(), 9);

  // ASCII rendering: one row per source, one column per round.
  std::printf("rounds:    ");
  for (Round r = 1; r <= top; ++r) std::printf(" r%-2llu", (unsigned long long)r);
  std::printf("\n");
  std::uint64_t weak_edge_count = 0;
  for (ProcessId p = 0; p < 4; ++p) {
    std::printf("process %u: ", p + 1);
    for (Round r = 1; r <= top; ++r) {
      const dag::Vertex* v = dag.get(dag::VertexId{p, r});
      if (v == nullptr) {
        std::printf("  . ");
      } else if (!v->weak_edges.empty()) {
        std::printf(" [W]");  // vertex that carries weak edges
        weak_edge_count += v->weak_edges.size();
      } else {
        std::printf(" [*]");
      }
    }
    std::printf("\n");
  }
  std::printf("[*] vertex with strong edges only; [W] vertex also carrying "
              "weak edges; . not present\n\n");

  // Invariant checks (the figure's captions, verified live).
  bool ok = true;
  const Round completed = sys.node(0).builder().current_round();
  for (Round r = 1; r < completed; ++r) {
    if (dag.round_size(r) < 3) {
      std::printf("VIOLATION: round %llu has %u < 2f+1 vertices\n",
                  (unsigned long long)r, dag.round_size(r));
      ok = false;
    }
  }
  std::uint64_t strong_total = 0, vertices = 0;
  for (Round r = 1; r <= dag.max_round(); ++r) {
    for (ProcessId s : dag.round_sources(r)) {
      const dag::Vertex* v = dag.get(dag::VertexId{s, r});
      ++vertices;
      strong_total += v->strong_edges.size();
      if (v->strong_edges.size() < 3) {
        std::printf("VIOLATION: vertex (%u, %llu) has %zu strong edges\n", s,
                    (unsigned long long)r, v->strong_edges.size());
        ok = false;
      }
      for (const dag::VertexId& w : v->weak_edges) {
        if (w.round + 1 >= r) {
          std::printf("VIOLATION: weak edge from round %llu to %llu\n",
                      (unsigned long long)r, (unsigned long long)w.round);
          ok = false;
        }
      }
    }
  }
  metrics::Table t({"metric", "value"});
  t.add_row({"completed rounds", metrics::Table::fmt_u64(completed)});
  t.add_row({"vertices in DAG", metrics::Table::fmt_u64(vertices)});
  t.add_row({"avg strong edges/vertex",
             metrics::Table::fmt(static_cast<double>(strong_total) /
                                 static_cast<double>(vertices), 2)});
  t.add_row({"weak edges (slow process 4 rescued)",
             metrics::Table::fmt_u64(weak_edge_count)});
  t.add_row({"structure invariants", ok ? "all hold" : "VIOLATED"});
  emit(t);
}

}  // namespace
}  // namespace dr::bench

int main(int argc, char** argv) {
  dr::bench::bench_init(argc, argv);
  dr::bench::run();
  dr::bench::bench_finish();
  return 0;
}
