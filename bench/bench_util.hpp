// Shared measurement helpers for the table/figure reproduction benches.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <set>
#include <string>
#include <utility>

#include "core/system.hpp"
#include "metrics/stats.hpp"
#include "metrics/table.hpp"
#include "sim/network.hpp"

namespace dr::bench {

/// Committee sizes swept by the scaling experiments.
inline const std::vector<std::uint32_t> kSweepN = {4, 7, 10, 13, 16};

/// Command line shared by every bench binary:
///   --json <path>   additionally write every emitted table as one JSON doc
///   --smoke         cut sweeps/workloads down to a CI-sized smoke run
///   --wal <dir>     durability mode: nodes write WALs under <dir> (cleared
///                   per configuration), measuring the append+flush overhead
///   --restart       crash-recovery mode: kill + restart a node and report
///                   WAL replay + catch-up time (bench_realtime_throughput)
///   --chaos [seed]  chaos mode: run the cluster behind net::ChaosTransport
///                   under ChaosPlan::randomized(seed) and report throughput
///                   under faults plus the injected-fault counter table
///                   (bench_realtime_throughput; default seed 1)
///   --ingress       client-ingress mode: drive an n=4 TCP cluster through
///                   the tx-submission front end with the open-loop loadgen
///                   and report throughput plus p50/p99 commit-ack latency
///                   (bench_realtime_throughput)
///   --ordering <p>  ordering head-to-head: run the n=4 cluster under BOTH
///                   personalities (dagrider and bullshark) and report the
///                   p50 commit-latency ratio, with <p> = dagrider |
///                   bullshark | both naming the personality under test
///                   (bench_realtime_throughput; both always run so the
///                   comparison and its JSON artifact carry both rows)
struct BenchArgs {
  std::string json_path;
  std::string wal_dir;
  bool restart = false;
  bool smoke = false;
  bool chaos = false;
  std::uint64_t chaos_seed = 1;
  bool ingress = false;
  std::string ordering;  ///< empty = no ordering comparison requested
};

inline BenchArgs parse_bench_args(int argc, char** argv) {
  BenchArgs out;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--json" && i + 1 < argc) {
      out.json_path = argv[++i];
    } else if (a == "--wal" && i + 1 < argc) {
      out.wal_dir = argv[++i];
    } else if (a == "--restart") {
      out.restart = true;
    } else if (a == "--smoke") {
      out.smoke = true;
    } else if (a == "--chaos") {
      out.chaos = true;
      if (i + 1 < argc && argv[i + 1][0] != '-') {
        out.chaos_seed = std::strtoull(argv[++i], nullptr, 10);
      }
    } else if (a == "--ingress") {
      out.ingress = true;
    } else if (a == "--ordering" && i + 1 < argc) {
      out.ordering = argv[++i];
    }
  }
  return out;
}

/// Process-wide bench I/O: collects every table emitted under the section id
/// of the preceding print_header, and flushes them as JSON when --json was
/// given. Console rendering is unchanged — the JSON sink rides along.
class BenchIo {
 public:
  static BenchIo& instance() {
    static BenchIo io;
    return io;
  }

  void init(int argc, char** argv) { args_ = parse_bench_args(argc, argv); }
  bool smoke() const { return args_.smoke; }
  const std::string& wal_dir() const { return args_.wal_dir; }
  bool restart() const { return args_.restart; }
  bool chaos() const { return args_.chaos; }
  std::uint64_t chaos_seed() const { return args_.chaos_seed; }
  bool ingress() const { return args_.ingress; }
  const std::string& ordering() const { return args_.ordering; }
  void section(std::string id) { section_ = std::move(id); }

  void emit(const metrics::Table& t) {
    t.print();
    tables_.emplace_back(section_.empty() ? "table" : section_, t);
  }

  /// False when --json was requested but the file could not be written, so
  /// CI fails instead of silently missing its artifact.
  bool flush() const {
    if (args_.json_path.empty()) return true;
    std::ofstream out(args_.json_path);
    if (!out) {
      std::fprintf(stderr, "bench: cannot write %s\n", args_.json_path.c_str());
      return false;
    }
    auto esc = [](const std::string& s) {
      std::string r;
      for (char c : s) {
        if (c == '"' || c == '\\') r += '\\';
        r += c;
      }
      return r;
    };
    out << "{\n  \"smoke\": " << (args_.smoke ? "true" : "false")
        << ",\n  \"tables\": [\n";
    for (std::size_t t = 0; t < tables_.size(); ++t) {
      const auto& [id, table] = tables_[t];
      out << "    {\"id\": \"" << esc(id) << "\", \"headers\": [";
      for (std::size_t i = 0; i < table.headers().size(); ++i) {
        out << (i ? ", " : "") << '"' << esc(table.headers()[i]) << '"';
      }
      out << "], \"rows\": [";
      for (std::size_t r = 0; r < table.rows().size(); ++r) {
        out << (r ? ", " : "") << '[';
        for (std::size_t c = 0; c < table.rows()[r].size(); ++c) {
          out << (c ? ", " : "") << '"' << esc(table.rows()[r][c]) << '"';
        }
        out << ']';
      }
      out << "]}" << (t + 1 < tables_.size() ? "," : "") << '\n';
    }
    out << "  ]\n}\n";
    std::fprintf(stderr, "bench: wrote JSON to %s\n", args_.json_path.c_str());
    return out.good();
  }

 private:
  BenchArgs args_;
  std::string section_;
  std::vector<std::pair<std::string, metrics::Table>> tables_;
};

inline void bench_init(int argc, char** argv) {
  BenchIo::instance().init(argc, argv);
}
inline void bench_finish() {
  if (!BenchIo::instance().flush()) std::exit(1);
}
inline bool smoke() { return BenchIo::instance().smoke(); }
inline const std::string& bench_wal_dir() {
  return BenchIo::instance().wal_dir();
}
inline bool restart_mode() { return BenchIo::instance().restart(); }
inline bool chaos_mode() { return BenchIo::instance().chaos(); }
inline std::uint64_t chaos_seed() { return BenchIo::instance().chaos_seed(); }
inline bool ingress_mode() { return BenchIo::instance().ingress(); }
inline const std::string& ordering_mode() {
  return BenchIo::instance().ordering();
}
inline void emit(const metrics::Table& t) { BenchIo::instance().emit(t); }

/// kSweepN, trimmed in smoke mode.
inline std::vector<std::uint32_t> sweep_n() {
  return smoke() ? std::vector<std::uint32_t>{4, 7} : kSweepN;
}

struct DagRiderRun {
  double bytes_per_value = 0;      ///< honest bytes / ordered value
  double time_units_per_commit = 0;
  double time_units_to_n_values = 0;  ///< paper's time-complexity metric
  std::uint64_t values_ordered = 0;
  std::uint64_t commits = 0;
  double waves_per_commit = 0;
  bool ok = false;
};

/// Runs DAG-Rider at committee size n with `values_per_block` batched values
/// of `value_size` bytes each, until `target_commits` leader commits land at
/// every correct process. Communication is measured after a warmup of one
/// committed wave so setup costs do not pollute the amortized figures.
inline DagRiderRun run_dag_rider(std::uint32_t n, rbc::RbcKind kind,
                                 std::uint64_t seed,
                                 std::uint32_t values_per_block,
                                 std::size_t value_size,
                                 std::uint64_t target_commits = 6,
                                 core::CoinMode coin = core::CoinMode::kThreshold,
                                 std::unique_ptr<sim::DelayModel> delays = nullptr) {
  core::SystemConfig cfg;
  cfg.committee = Committee::for_n(n);
  cfg.seed = seed;
  cfg.rbc_kind = kind;
  cfg.coin_mode = coin;
  cfg.builder.auto_blocks = true;
  cfg.builder.auto_block_size =
      static_cast<std::size_t>(values_per_block) * value_size;
  if (delays) cfg.delays = std::move(delays);
  core::System sys(std::move(cfg));
  sys.start();

  DagRiderRun out;
  const sim::SimTime unit = sys.network().max_delay();

  // Warmup: first commit everywhere, then reset the traffic counters.
  auto commits_everywhere = [&](std::uint64_t k) {
    return [&sys, k] {
      for (ProcessId p : sys.correct_ids()) {
        if (sys.node(p).commits().size() < k) return false;
      }
      return true;
    };
  };
  if (!sys.simulator().run_until(commits_everywhere(1), 80'000'000)) return out;
  sys.network().reset_traffic();
  const std::uint64_t delivered_at_warmup =
      sys.node(sys.correct_ids()[0]).delivered().size();
  const sim::SimTime t0 = sys.simulator().now();

  if (!sys.simulator().run_until(commits_everywhere(1 + target_commits),
                                 400'000'000)) {
    return out;
  }
  const sim::SimTime t1 = sys.simulator().now();
  const ProcessId probe = sys.correct_ids()[0];
  const core::Node& node = sys.node(probe);

  const std::uint64_t blocks = node.delivered().size() - delivered_at_warmup;
  out.values_ordered = blocks * values_per_block;
  out.commits = target_commits;
  out.bytes_per_value =
      static_cast<double>(sys.network().total_honest_bytes_sent()) /
      static_cast<double>(out.values_ordered ? out.values_ordered : 1);
  out.time_units_per_commit = static_cast<double>(t1 - t0) /
                              static_cast<double>(target_commits) /
                              static_cast<double>(unit);
  // Paper metric: time units until O(n) values from different correct
  // processes are delivered, measured from the warmup point.
  {
    std::set<ProcessId> sources;
    sim::SimTime t_n = t1;
    for (std::size_t i = delivered_at_warmup; i < node.delivered().size(); ++i) {
      sources.insert(node.delivered()[i].source);
      if (sources.size() >= sys.committee().quorum()) {
        t_n = node.delivered()[i].time;
        break;
      }
    }
    out.time_units_to_n_values =
        static_cast<double>(t_n - t0) / static_cast<double>(unit);
  }
  const auto& rider = sys.node(probe).rider();
  out.waves_per_commit =
      static_cast<double>(rider.waves_evaluated()) /
      static_cast<double>(rider.committed_leaders().size()
                              ? rider.committed_leaders().size()
                              : 1);
  out.ok = true;
  return out;
}

inline void print_header(const char* id, const char* title) {
  BenchIo::instance().section(id);
  std::printf("\n=== %s — %s ===\n", id, title);
}

}  // namespace dr::bench
