// Shared measurement helpers for the table/figure reproduction benches.
#pragma once

#include <cstdio>
#include <memory>
#include <set>
#include <string>

#include "core/system.hpp"
#include "metrics/stats.hpp"
#include "metrics/table.hpp"

namespace dr::bench {

/// Committee sizes swept by the scaling experiments.
inline const std::vector<std::uint32_t> kSweepN = {4, 7, 10, 13, 16};

struct DagRiderRun {
  double bytes_per_value = 0;      ///< honest bytes / ordered value
  double time_units_per_commit = 0;
  double time_units_to_n_values = 0;  ///< paper's time-complexity metric
  std::uint64_t values_ordered = 0;
  std::uint64_t commits = 0;
  double waves_per_commit = 0;
  bool ok = false;
};

/// Runs DAG-Rider at committee size n with `values_per_block` batched values
/// of `value_size` bytes each, until `target_commits` leader commits land at
/// every correct process. Communication is measured after a warmup of one
/// committed wave so setup costs do not pollute the amortized figures.
inline DagRiderRun run_dag_rider(std::uint32_t n, rbc::RbcKind kind,
                                 std::uint64_t seed,
                                 std::uint32_t values_per_block,
                                 std::size_t value_size,
                                 std::uint64_t target_commits = 6,
                                 core::CoinMode coin = core::CoinMode::kThreshold,
                                 std::unique_ptr<sim::DelayModel> delays = nullptr) {
  core::SystemConfig cfg;
  cfg.committee = Committee::for_n(n);
  cfg.seed = seed;
  cfg.rbc_kind = kind;
  cfg.coin_mode = coin;
  cfg.builder.auto_blocks = true;
  cfg.builder.auto_block_size =
      static_cast<std::size_t>(values_per_block) * value_size;
  if (delays) cfg.delays = std::move(delays);
  core::System sys(std::move(cfg));
  sys.start();

  DagRiderRun out;
  const sim::SimTime unit = sys.network().max_delay();

  // Warmup: first commit everywhere, then reset the traffic counters.
  auto commits_everywhere = [&](std::uint64_t k) {
    return [&sys, k] {
      for (ProcessId p : sys.correct_ids()) {
        if (sys.node(p).commits().size() < k) return false;
      }
      return true;
    };
  };
  if (!sys.simulator().run_until(commits_everywhere(1), 80'000'000)) return out;
  sys.network().reset_traffic();
  const std::uint64_t delivered_at_warmup =
      sys.node(sys.correct_ids()[0]).delivered().size();
  const sim::SimTime t0 = sys.simulator().now();

  if (!sys.simulator().run_until(commits_everywhere(1 + target_commits),
                                 400'000'000)) {
    return out;
  }
  const sim::SimTime t1 = sys.simulator().now();
  const ProcessId probe = sys.correct_ids()[0];
  const core::Node& node = sys.node(probe);

  const std::uint64_t blocks = node.delivered().size() - delivered_at_warmup;
  out.values_ordered = blocks * values_per_block;
  out.commits = target_commits;
  out.bytes_per_value =
      static_cast<double>(sys.network().total_honest_bytes_sent()) /
      static_cast<double>(out.values_ordered ? out.values_ordered : 1);
  out.time_units_per_commit = static_cast<double>(t1 - t0) /
                              static_cast<double>(target_commits) /
                              static_cast<double>(unit);
  // Paper metric: time units until O(n) values from different correct
  // processes are delivered, measured from the warmup point.
  {
    std::set<ProcessId> sources;
    sim::SimTime t_n = t1;
    for (std::size_t i = delivered_at_warmup; i < node.delivered().size(); ++i) {
      sources.insert(node.delivered()[i].source);
      if (sources.size() >= sys.committee().quorum()) {
        t_n = node.delivered()[i].time;
        break;
      }
    }
    out.time_units_to_n_values =
        static_cast<double>(t_n - t0) / static_cast<double>(unit);
  }
  const auto& rider = sys.node(probe).rider();
  out.waves_per_commit =
      static_cast<double>(rider.waves_evaluated()) /
      static_cast<double>(rider.committed_leaders().size()
                              ? rider.committed_leaders().size()
                              : 1);
  out.ok = true;
  return out;
}

inline void print_header(const char* id, const char* title) {
  std::printf("\n=== %s — %s ===\n", id, title);
}

}  // namespace dr::bench
