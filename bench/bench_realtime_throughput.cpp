// RT — real-concurrency throughput/latency of the threaded node runtime
// (src/node/) over the in-process transport: commits/sec and end-to-end
// transaction latency percentiles vs committee size and block size. Unlike
// every other bench in this directory, nothing here is simulated — these are
// OS threads on real clocks, so absolute numbers depend on the host (and on
// sanitizers; CI runs this in --smoke mode only as a liveness check).
//
// Latency is measured client-to-commit: submit stamps the transaction with
// node 0's clock, and delivery at node 0 records the difference, so no
// cross-node clock skew enters the measurement.
// With --wal <dir> every node in every sweep configuration writes its
// append-only vertex WAL under <dir>, measuring the durability overhead
// against the in-memory numbers. With --restart the bench instead kills one
// node of a durable 4-node cluster mid-run, restarts it from its WAL, and
// reports how long WAL replay + peer catch-up took to rejoin the commit
// frontier (requires --wal, or falls back to a temp directory).
// With --chaos [seed] the whole cluster runs behind net::ChaosTransport
// under ChaosPlan::randomized(seed): throughput/latency under seeded link
// faults, with the injected-fault counters emitted as their own table (and
// into --json), so fault pressure is auditable next to the numbers it
// degraded.
// With --ordering <dagrider|bullshark|both> the bench runs the same n=4
// workload under BOTH ordering personalities (DESIGN.md §14) and reports
// them side by side plus the p50 commit-latency ratio — the happy-path
// latency claim of the Bullshark commit rule, measured on this host. Both
// rows land in the --json artifact regardless of which personality the flag
// named, so either invocation yields the full comparison.
#include <atomic>
#include <filesystem>
#include <mutex>

#include "bench_util.hpp"
#include "core/audit.hpp"
#include "core/ordering.hpp"
#include "ingress/loadgen.hpp"
#include "metrics/counters.hpp"
#include "net/chaos.hpp"
#include "node/cluster.hpp"
#include "txpool/transaction.hpp"

namespace dr::bench {
namespace {

struct RealtimeRun {
  double txs_per_sec = 0;
  double commits_per_sec = 0;
  double blocks_per_sec = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  bool ok = false;
};

/// Fresh per-configuration WAL base under --wal, or "" (durability off).
std::string wal_base(const std::string& config) {
  if (bench_wal_dir().empty()) return "";
  const std::string dir = bench_wal_dir() + "/" + config;
  std::filesystem::remove_all(dir);
  return dir;
}

RealtimeRun run_cluster(std::uint32_t n, std::size_t block_max_txs,
                        std::uint64_t total_txs, std::size_t tx_payload,
                        const std::string& wal_dir = "",
                        const net::ChaosPlan* plan = nullptr,
                        metrics::Counters* counters_out = nullptr,
                        core::OrderingKind ordering =
                            core::OrderingKind::kDagRider) {
  node::NodeOptions opts;
  opts.seed = 1234;
  opts.block_max_txs = block_max_txs;
  opts.wal_dir = wal_dir;
  opts.ordering = ordering;
  Committee committee = Committee::for_n(n);
  node::ClusterTweaks tweaks;
  if (plan != nullptr) {
    tweaks.transport_wrap = [plan](ProcessId,
                                   std::unique_ptr<net::Transport> inner) {
      return std::make_unique<net::ChaosTransport>(std::move(inner), *plan);
    };
  }
  node::Cluster cluster(committee, opts, std::move(tweaks));

  // Latency samples and completion tracking, fed by node 0's deliver hook.
  metrics::Summary latency_ms;
  std::mutex lat_mu;
  std::atomic<std::uint64_t> txs_done{0};
  node::Node& probe = cluster.node(0);
  probe.set_app_deliver([&](const Bytes& block, Round, ProcessId,
                            std::uint64_t t_us) {
    auto txs = txpool::decode_block(BytesView(block));
    if (!txs.ok()) return;
    std::lock_guard<std::mutex> lk(lat_mu);
    for (const auto& tx : txs.value()) {
      latency_ms.add(static_cast<double>(t_us - tx.submit_time) / 1000.0);
    }
    txs_done.fetch_add(txs.value().size(), std::memory_order_relaxed);
  });

  cluster.start();
  const std::uint64_t t_start = probe.now_us();

  for (std::uint64_t id = 1; id <= total_txs; ++id) {
    txpool::Transaction tx;
    tx.id = id;
    tx.submit_time = probe.now_us();
    tx.payload = Bytes(tx_payload, static_cast<std::uint8_t>(id));
    cluster.node(static_cast<ProcessId>(id % n)).submit(std::move(tx));
  }

  RealtimeRun out;
  if (!cluster.wait_all_delivered(1, std::chrono::minutes(2))) {
    cluster.stop();
    return out;
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::minutes(3);
  while (txs_done.load(std::memory_order_relaxed) < total_txs) {
    if (std::chrono::steady_clock::now() >= deadline) {
      cluster.stop();
      return out;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  const std::uint64_t t_end = probe.now_us();
  const std::uint64_t commits = probe.commits_snapshot().size();
  const std::uint64_t blocks = probe.delivered_count();
  cluster.stop();
  if (counters_out != nullptr) {
    std::vector<metrics::Counters> per_node;
    for (ProcessId pid = 0; pid < n; ++pid) {
      per_node.push_back(cluster.node(pid).counters());
    }
    *counters_out = metrics::aggregate(per_node);
  }

  const auto violation =
      core::audit_logs(cluster.delivered_logs(), cluster.commit_logs());
  if (violation.has_value()) {
    std::fprintf(stderr, "RT AUDIT FAILURE: %s\n", violation->c_str());
    return out;
  }

  const double secs = static_cast<double>(t_end - t_start) / 1e6;
  out.txs_per_sec = static_cast<double>(total_txs) / secs;
  out.commits_per_sec = static_cast<double>(commits) / secs;
  out.blocks_per_sec = static_cast<double>(blocks) / secs;
  {
    std::lock_guard<std::mutex> lk(lat_mu);
    out.p50_ms = latency_ms.percentile(0.50);
    out.p99_ms = latency_ms.percentile(0.99);
  }
  out.ok = true;
  return out;
}

void sweep_committee_size() {
  const std::uint64_t total = smoke() ? 2'000 : 20'000;
  metrics::Table t({"n", "txs/s", "blocks/s", "commits/s", "p50 ms", "p99 ms"});
  for (std::uint32_t n : std::vector<std::uint32_t>{4, 7, 10}) {
    if (smoke() && n > 4) continue;
    const RealtimeRun r =
        run_cluster(n, /*block_max_txs=*/256, total, /*tx_payload=*/32,
                    wal_base("rt-n" + std::to_string(n)));
    t.add_row({std::to_string(n),
               r.ok ? metrics::Table::fmt(r.txs_per_sec, 0) : "stall",
               metrics::Table::fmt(r.blocks_per_sec, 0),
               metrics::Table::fmt(r.commits_per_sec, 1),
               metrics::Table::fmt(r.p50_ms, 2),
               metrics::Table::fmt(r.p99_ms, 2)});
  }
  emit(t);
}

void sweep_block_size() {
  const std::uint64_t total = smoke() ? 2'000 : 20'000;
  metrics::Table t(
      {"txs/block", "txs/s", "blocks/s", "commits/s", "p50 ms", "p99 ms"});
  for (std::size_t b : std::vector<std::size_t>{64, 256, 1024}) {
    if (smoke() && b > 64) continue;
    const RealtimeRun r = run_cluster(4, b, total, /*tx_payload=*/32,
                                      wal_base("rt-b" + std::to_string(b)));
    t.add_row({std::to_string(b),
               r.ok ? metrics::Table::fmt(r.txs_per_sec, 0) : "stall",
               metrics::Table::fmt(r.blocks_per_sec, 0),
               metrics::Table::fmt(r.commits_per_sec, 1),
               metrics::Table::fmt(r.p50_ms, 2),
               metrics::Table::fmt(r.p99_ms, 2)});
  }
  emit(t);
}

// --ordering: the same n=4 workload under both ordering personalities. The
// DAG layer, runtime, and transport are identical; only the commit rule
// differs, so the p50 delta is the happy-path latency cost of DAG-Rider's
// 4-round waves vs Bullshark's 2-round anchors (DESIGN.md §14).
void sweep_ordering() {
  const std::uint64_t total = smoke() ? 2'000 : 20'000;
  metrics::Table t({"ordering", "txs/s", "blocks/s", "commits/s", "p50 ms",
                    "p99 ms"});
  double p50[2] = {0, 0};
  bool ok[2] = {false, false};
  for (core::OrderingKind kind :
       {core::OrderingKind::kDagRider, core::OrderingKind::kBullshark}) {
    const char* name = core::to_string(kind);
    const RealtimeRun r = run_cluster(
        4, /*block_max_txs=*/256, total, /*tx_payload=*/32,
        wal_base(std::string("rt-ord-") + name), nullptr, nullptr, kind);
    const auto idx = static_cast<std::size_t>(kind);
    p50[idx] = r.p50_ms;
    ok[idx] = r.ok;
    t.add_row({name, r.ok ? metrics::Table::fmt(r.txs_per_sec, 0) : "stall",
               metrics::Table::fmt(r.blocks_per_sec, 0),
               metrics::Table::fmt(r.commits_per_sec, 1),
               metrics::Table::fmt(r.p50_ms, 2),
               metrics::Table::fmt(r.p99_ms, 2)});
  }
  emit(t);
  if (ok[0] && ok[1] && p50[1] > 0) {
    metrics::Table ratio({"metric", "value"});
    ratio.add_row({"p50 ratio dagrider/bullshark",
                   metrics::Table::fmt(p50[0] / p50[1], 2)});
    emit(ratio);
  } else {
    std::fprintf(stderr, "RT ORDERING: a personality stalled; no ratio\n");
  }
}

// --restart: crash one node of a durable 4-node cluster, restart it, and
// time WAL replay + catch-up sync until it regains the commit frontier the
// survivors held at the moment of restart.
void measure_restart() {
  const std::string dir =
      bench_wal_dir().empty()
          ? (std::filesystem::temp_directory_path() / "dr_rt_restart").string()
          : bench_wal_dir() + "/rt-restart";
  std::filesystem::remove_all(dir);

  node::NodeOptions opts;
  opts.seed = 1234;
  opts.wal_dir = dir;
  node::Cluster cluster(Committee::for_n(4), opts);
  cluster.start();
  node::Node& probe = cluster.node(0);

  // Warm-up, then a downtime window the restarted node must sync across.
  const std::uint64_t warm = smoke() ? 100 : 1'000;
  const std::uint64_t window = smoke() ? 200 : 2'000;
  if (!cluster.wait_all_delivered(warm, std::chrono::minutes(2))) {
    std::fprintf(stderr, "RT RESTART: warm-up stalled\n");
    return;
  }
  cluster.stop_node(2);
  const std::uint64_t at_crash = probe.delivered_count();
  const auto gap_deadline =
      std::chrono::steady_clock::now() + std::chrono::minutes(2);
  while (probe.delivered_count() < at_crash + window) {
    if (std::chrono::steady_clock::now() >= gap_deadline) {
      std::fprintf(stderr, "RT RESTART: survivors stalled\n");
      return;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  const std::uint64_t t0 = probe.now_us();
  cluster.restart_node(2);
  const std::uint64_t rejoin_target = probe.delivered_count();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::minutes(3);
  while (cluster.node(2).delivered_count() < rejoin_target) {
    if (std::chrono::steady_clock::now() >= deadline) {
      std::fprintf(stderr, "RT RESTART: rejoin stalled\n");
      return;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const double rejoin_ms = static_cast<double>(probe.now_us() - t0) / 1000.0;
  cluster.stop();

  const auto violation =
      core::audit_logs(cluster.delivered_logs(), cluster.commit_logs());
  if (violation.has_value()) {
    std::fprintf(stderr, "RT RESTART AUDIT FAILURE: %s\n", violation->c_str());
    return;
  }

  metrics::Table t({"metric", "value"});
  t.add_row({"blocks delivered at crash", metrics::Table::fmt_u64(at_crash)});
  t.add_row({"blocks missed while down", metrics::Table::fmt_u64(window)});
  t.add_row({"rejoin latency ms", metrics::Table::fmt(rejoin_ms, 1)});
  for (const auto& [name, value] : cluster.node(2).counters()) {
    if (name == "builder.restored_vertices" ||
        name == "builder.sync_deliveries" ||
        name == "catchup.requests_sent" ||
        name == "catchup.vertices_accepted" ||
        name == "store.recovered_vertices" ||
        name == "store.recovered_proposals") {
      t.add_row({name, metrics::Table::fmt_u64(value)});
    }
  }
  emit(t);
}

// --chaos: the committee-size sweep with every endpoint wrapped in a
// ChaosTransport running ChaosPlan::randomized(chaos_seed()). Reports the
// same throughput/latency columns (now under fault pressure) plus one table
// of injected-fault and backpressure counters per configuration.
void sweep_chaos() {
  const std::uint64_t total = smoke() ? 1'000 : 10'000;
  metrics::Table t({"n", "txs/s", "blocks/s", "commits/s", "p50 ms", "p99 ms"});
  metrics::Table faults({"n", "counter", "value"});
  for (std::uint32_t n : std::vector<std::uint32_t>{4, 7}) {
    if (smoke() && n > 4) continue;
    const net::ChaosPlan plan = net::ChaosPlan::randomized(chaos_seed(), n);
    std::printf("chaos n=%u %s\n", n, plan.describe().c_str());
    metrics::Counters counters;
    const RealtimeRun r =
        run_cluster(n, /*block_max_txs=*/256, total, /*tx_payload=*/32,
                    wal_base("rt-chaos-n" + std::to_string(n)), &plan,
                    &counters);
    t.add_row({std::to_string(n),
               r.ok ? metrics::Table::fmt(r.txs_per_sec, 0) : "stall",
               metrics::Table::fmt(r.blocks_per_sec, 0),
               metrics::Table::fmt(r.commits_per_sec, 1),
               metrics::Table::fmt(r.p50_ms, 2),
               metrics::Table::fmt(r.p99_ms, 2)});
    for (const auto& [name, value] : counters) {
      if (name.rfind("transport.chaos.", 0) == 0 ||
          name == "transport.backpressure_overflows") {
        faults.add_row({std::to_string(n), name,
                        metrics::Table::fmt_u64(value)});
      }
    }
  }
  emit(t);
  emit(faults);
}

// --ingress: an n=4 cluster with TCP node-to-node links and the client
// ingress tier enabled. The open-loop loadgen multiplexes the logical client
// population over real connections against all four tx-submission endpoints,
// Zipf-skewed, with mid-run connection churn. Reports client-observed
// end-to-end throughput and p50/p99 commit-ack latency, plus the ingress /
// mempool counter families.
void sweep_ingress() {
  const std::uint64_t clients = smoke() ? 2'000 : 10'000;
  const double rate_tps = smoke() ? 20'000.0 : 120'000.0;
  const std::uint64_t duration_ms = smoke() ? 3'000 : 10'000;

  node::NodeOptions opts;
  opts.seed = 1234;
  opts.wal_dir = wal_base("rt-ingress");
  opts.ingress_enable = true;
  node::ClusterTweaks tweaks;
  tweaks.tcp_transport = true;
  node::Cluster cluster(Committee::for_n(4), opts, std::move(tweaks));
  cluster.start();

  ingress::LoadGenOptions lg;
  lg.clients = clients;
  lg.connections = 64;
  for (ProcessId pid = 0; pid < 4; ++pid) {
    lg.targets.push_back(
        ingress::LoadGenTarget{"127.0.0.1", cluster.ingress_port(pid)});
  }
  lg.duration_ms = duration_ms;
  lg.rate_tps = rate_tps;
  lg.payload_bytes = 32;
  lg.churn_period_ms = 500;
  lg.seed = 42;
  ingress::LoadGen gen(lg);
  gen.start();
  const ingress::LoadGenReport r = gen.wait_and_report();
  cluster.stop();

  const auto violation =
      core::audit_logs(cluster.delivered_logs(), cluster.commit_logs());
  if (violation.has_value()) {
    std::fprintf(stderr, "RT INGRESS AUDIT FAILURE: %s\n", violation->c_str());
    return;
  }

  const double secs =
      static_cast<double>(r.elapsed_ms ? r.elapsed_ms : 1) / 1000.0;
  metrics::Table t({"metric", "value"});
  t.add_row({"clients", metrics::Table::fmt_u64(clients)});
  t.add_row({"submitted", metrics::Table::fmt_u64(r.submitted)});
  t.add_row({"accepted", metrics::Table::fmt_u64(r.accepted)});
  t.add_row({"acked", metrics::Table::fmt_u64(r.acked)});
  t.add_row({"acked txs/s",
             metrics::Table::fmt(static_cast<double>(r.acked) / secs, 0)});
  t.add_row({"ack p50 ms",
             metrics::Table::fmt(r.ack_latency_ms.percentile(0.50), 2)});
  t.add_row({"ack p99 ms",
             metrics::Table::fmt(r.ack_latency_ms.percentile(0.99), 2)});
  t.add_row({"busy rejects", metrics::Table::fmt_u64(r.busy)});
  t.add_row({"dup pending", metrics::Table::fmt_u64(r.dup_pending)});
  t.add_row({"dup committed", metrics::Table::fmt_u64(r.dup_committed)});
  t.add_row({"resubmitted", metrics::Table::fmt_u64(r.resubmitted)});
  t.add_row({"churn events", metrics::Table::fmt_u64(r.churn_events)});
  t.add_row(
      {"local backpressure", metrics::Table::fmt_u64(r.local_backpressure)});
  t.add_row(
      {"outstanding at end", metrics::Table::fmt_u64(r.outstanding_at_end)});
  emit(t);

  std::vector<metrics::Counters> per_node;
  for (ProcessId pid = 0; pid < 4; ++pid) {
    per_node.push_back(cluster.node(pid).counters());
  }
  metrics::Table ic({"counter", "value"});
  for (const auto& [name, value] : metrics::aggregate(per_node)) {
    if (name.rfind("ingress.", 0) == 0 || name.rfind("mempool.", 0) == 0) {
      ic.add_row({name, metrics::Table::fmt_u64(value)});
    }
  }
  emit(ic);
}

}  // namespace
}  // namespace dr::bench

int main(int argc, char** argv) {
  dr::bench::bench_init(argc, argv);
  if (dr::bench::ingress_mode()) {
    dr::bench::print_header(
        "RT-INGRESS",
        "client ingress tier: open-loop loadgen over TCP, commit-ack latency");
    dr::bench::sweep_ingress();
    dr::bench::bench_finish();
    return 0;
  }
  if (!dr::bench::ordering_mode().empty()) {
    if (dr::bench::ordering_mode() != "both" &&
        !dr::core::parse_ordering(dr::bench::ordering_mode()).has_value()) {
      std::fprintf(stderr, "unknown ordering: %s (dagrider|bullshark|both)\n",
                   dr::bench::ordering_mode().c_str());
      return 2;
    }
    dr::bench::print_header(
        "RT-ORDERING",
        "ordering personalities head-to-head: dagrider vs bullshark (n=4)");
    dr::bench::sweep_ordering();
    dr::bench::bench_finish();
    return 0;
  }
  if (dr::bench::chaos_mode()) {
    dr::bench::print_header(
        "RT-CHAOS",
        "real-concurrency runtime under seeded chaos faults (in-proc)");
    dr::bench::sweep_chaos();
    dr::bench::bench_finish();
    return 0;
  }
  if (dr::bench::restart_mode()) {
    dr::bench::print_header(
        "RT-RESTART", "crash restart: WAL replay + catch-up rejoin latency");
    dr::bench::measure_restart();
  } else {
    dr::bench::print_header(
        "RT", "real-concurrency runtime: commits/sec and tx latency (in-proc)");
    dr::bench::sweep_committee_size();
    dr::bench::sweep_block_size();
  }
  dr::bench::bench_finish();
  return 0;
}
