// F2 — Figure 2: the commit rule and transitive wave recovery.
//
// The figure shows wave 2's leader missing its direct commit (< 2f+1 round-8
// vertices with strong paths) while wave 3's leader commits — and wave 2's
// leader is then committed *first*, through the strong path from wave 3's
// leader. We reproduce the mechanism statistically: across seeded runs with
// an adversarial scheduler, count waves that fail their direct commit and
// verify that every one of them is either recovered transitively (ordered
// before the recovering wave) or provably skipped at every correct process.
#include "bench_util.hpp"

namespace dr::bench {
namespace {

struct Fig2Stats {
  std::uint64_t waves_evaluated = 0;
  std::uint64_t direct_commits = 0;
  std::uint64_t failed_direct = 0;
  std::uint64_t transitive_recoveries = 0;
  std::uint64_t order_violations = 0;
  bool example_printed = false;
};

void run_one(std::uint64_t seed, Fig2Stats& stats) {
  core::SystemConfig cfg;
  cfg.committee = Committee::for_f(1);  // n = 4, f = 1, as in the figure
  cfg.seed = seed;
  cfg.rbc_kind = rbc::RbcKind::kOracle;
  // Instant oracle coin: commit rules evaluate exactly at wave_ready, when
  // views are maximally divergent (a threshold coin's share round-trip
  // would give slow vertices time to arrive and mask the divergence).
  cfg.coin_mode = core::CoinMode::kLocal;
  cfg.builder.auto_blocks = true;
  cfg.builder.auto_block_size = 8;
  // Per-link asymmetric delays with jitter on the order of a round: the
  // processes evaluate the commit rule against *different* round-4 subsets,
  // so one process commits a wave leader directly while another misses it
  // and recovers it transitively — the figure's setting.
  cfg.delays = std::make_unique<sim::AsymmetricDelay>(
      seed, /*period=*/300, /*fast=*/40, /*slow=*/300, /*slow_one_in=*/4);
  core::System sys(std::move(cfg));
  sys.start();
  if (!sys.simulator().run_until(
          [&sys] {
            for (ProcessId p : sys.correct_ids()) {
              if (sys.node(p).rider().decided_wave() < 10) return false;
            }
            return true;
          },
          100'000'000)) {
    return;
  }

  // Aggregate over every correct process: a wave can be a direct commit at
  // one process and a transitive recovery at another — that split IS the
  // figure's point.
  for (ProcessId probe : sys.correct_ids()) {
    const auto& rider = sys.node(probe).rider();
    const auto& commits = sys.node(probe).commits();
    stats.waves_evaluated += rider.waves_evaluated();
    stats.failed_direct += rider.waves_without_direct_commit();

    for (std::size_t i = 0; i < commits.size(); ++i) {
      if (commits[i].direct) {
        ++stats.direct_commits;
        continue;
      }
      ++stats.transitive_recoveries;
      // A transitively recovered wave must be ordered before the (later)
      // wave that recovered it — i.e., commit order == wave order.
      if (i + 1 < commits.size() && commits[i].wave > commits[i + 1].wave) {
        ++stats.order_violations;
      }
      if (!stats.example_printed) {
        stats.example_printed = true;
        // Narrate the figure's exact scenario from live data.
        const auto& rec = commits[i];
        std::printf(
            "example (seed %llu, process %u): wave %llu's leader (process %u,\n"
            "  round %llu) failed its direct commit rule here but was\n"
            "  recovered via a strong path from a later wave's leader and\n"
            "  ordered FIRST — exactly Figure 2's v_2-before-v_3 scenario.\n\n",
            (unsigned long long)seed, probe, (unsigned long long)rec.wave,
            rec.leader.source, (unsigned long long)rec.leader.round);
      }
    }
  }
}

void run() {
  print_header("F2", "commit rule with transitive wave recovery");
  Fig2Stats stats;
  for (std::uint64_t seed = 1; seed <= 40; ++seed) run_one(seed, stats);

  metrics::Table t({"wave outcome (process-local)", "count"});
  t.add_row({"waves evaluated", metrics::Table::fmt_u64(stats.waves_evaluated)});
  t.add_row({"direct commit (2f+1 support in round(w,4))",
             metrics::Table::fmt_u64(stats.direct_commits)});
  t.add_row({"commit rule failed at evaluation",
             metrics::Table::fmt_u64(stats.failed_direct)});
  t.add_row({"  ... later recovered transitively (the figure's v2)",
             metrics::Table::fmt_u64(stats.transitive_recoveries)});
  t.add_row({"  ... skipped consistently at every process (allowed)",
             metrics::Table::fmt_u64(stats.failed_direct -
                                     stats.transitive_recoveries)});
  t.add_row({"wave-order violations", metrics::Table::fmt_u64(stats.order_violations)});
  emit(t);
  std::printf(
      "\nReading: a wave that fails its local commit rule is either (a)\n"
      "recovered transitively via the strong path from a later committed\n"
      "leader and ordered FIRST (Figure 2's v2-before-v3), or (b) skipped by\n"
      "every correct process — Lemma 1 guarantees no third outcome, and the\n"
      "zero order violations confirm it.\n");
}

}  // namespace
}  // namespace dr::bench

int main(int argc, char** argv) {
  dr::bench::bench_init(argc, argv);
  dr::bench::run();
  dr::bench::bench_finish();
  return 0;
}
