// ABL — design ablations called out in DESIGN.md:
//   1. Wave length: the paper fixes 4 rounds/wave (rounds 1-3 build the
//      common core, round 4 votes). Shorter waves commit more often but the
//      direct-commit probability collapses below 4; longer waves waste
//      rounds. Measured: direct-commit rate and time units per ordered value.
//   2. Coin transport: dedicated channel vs piggybacked on vertices —
//      bytes saved and latency effect.
//   3. Weak edges: on/off — the fairness/validity price of turning them off.
#include "bench_util.hpp"

namespace dr::bench {
namespace {

struct WaveAblation {
  Round rounds_per_wave;
  double direct_rate = 0;
  double time_units_per_commit = 0;
  double delivered_per_commit = 0;
};

WaveAblation run_wave_len(Round rpw, std::uint64_t seed) {
  WaveAblation out{rpw};
  core::SystemConfig cfg;
  cfg.committee = Committee::for_f(1);
  cfg.seed = seed;
  cfg.rbc_kind = rbc::RbcKind::kOracle;
  cfg.builder.auto_blocks = true;
  cfg.builder.auto_block_size = 16;
  cfg.builder.rounds_per_wave = rpw;
  cfg.delays = std::make_unique<sim::RotatingDelay>(4, 1, 220, 25, 260);
  core::System sys(std::move(cfg));
  const sim::SimTime unit = sys.network().max_delay();
  sys.start();
  if (!sys.simulator().run_until(
          [&sys] { return sys.node(0).commits().size() >= 12; }, 200'000'000)) {
    return out;
  }
  const auto& rider = sys.node(0).rider();
  out.direct_rate = 1.0 - static_cast<double>(rider.waves_without_direct_commit()) /
                              static_cast<double>(rider.waves_evaluated());
  out.time_units_per_commit =
      static_cast<double>(sys.simulator().now()) / 12.0 / static_cast<double>(unit);
  out.delivered_per_commit =
      static_cast<double>(rider.delivered_count()) / 12.0;
  return out;
}

void wave_length_ablation() {
  std::printf("\n-- ablation 1: rounds per wave (paper: 4) --\n");
  metrics::Table t({"rounds/wave", "direct-commit rate", "time units/commit",
                    "blocks delivered/commit"});
  for (Round rpw : {2ull, 3ull, 4ull, 5ull, 6ull}) {
    metrics::Summary rate, tpc, dpc;
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
      const WaveAblation a = run_wave_len(rpw, seed * 7);
      if (a.direct_rate > 0) {
        rate.add(a.direct_rate);
        tpc.add(a.time_units_per_commit);
        dpc.add(a.delivered_per_commit);
      }
    }
    t.add_row({metrics::Table::fmt_u64(rpw), metrics::Table::fmt(rate.mean(), 3),
               metrics::Table::fmt(tpc.mean(), 1),
               metrics::Table::fmt(dpc.mean(), 1)});
  }
  emit(t);
  std::printf(
      "Reading: longer waves deliver more blocks per commit at higher\n"
      "latency per commit; the direct-commit rate stays high for ALL wave\n"
      "lengths under randomized schedulers. The paper's choice of 4 rounds\n"
      "is not about empirical rate — it is the minimum for Lemma 2's\n"
      "common-core argument, which bounds the rate >= 2/3 against the\n"
      "WORST-CASE adversary (shorter waves lose that guarantee even though\n"
      "random schedules cannot exhibit the loss).\n");
}

void coin_transport_ablation() {
  std::printf("\n-- ablation 2: coin share transport --\n");
  metrics::Table t({"transport", "total bytes", "coin-channel bytes",
                    "sim time to 12 commits"});
  for (auto mode : {core::CoinMode::kThreshold, core::CoinMode::kPiggyback}) {
    core::SystemConfig cfg;
    cfg.committee = Committee::for_f(1);
    cfg.seed = 4242;
    cfg.rbc_kind = rbc::RbcKind::kBracha;
    cfg.builder.auto_blocks = true;
    cfg.builder.auto_block_size = 16;
    cfg.coin_mode = mode;
    core::System sys(std::move(cfg));
    sys.start();
    const bool ok = sys.simulator().run_until(
        [&sys] { return sys.node(0).commits().size() >= 12; }, 200'000'000);
    t.add_row({mode == core::CoinMode::kThreshold ? "dedicated channel"
                                                  : "piggybacked on vertices",
               metrics::Table::fmt_u64(sys.network().total_bytes_sent()),
               metrics::Table::fmt_u64(
                   sys.network().channel_bytes_sent(sim::Channel::kCoin)),
               ok ? metrics::Table::fmt_u64(sys.simulator().now()) : "stall"});
  }
  emit(t);
  std::printf(
      "Reading: piggybacking (paper footnote 1) removes the coin channel and\n"
      "message type entirely — an architectural simplification, not a byte\n"
      "saving: under Bracha each embedded share is echoed O(n^2) times,\n"
      "whereas the dedicated channel sends each share exactly n times.\n");
}

void weak_edge_ablation() {
  std::printf("\n-- ablation 3: weak edges (Validity mechanism) --\n");
  metrics::Table t({"weak edges", "slow process's blocks ordered",
                    "fast process's blocks ordered"});
  for (bool weak : {true, false}) {
    core::SystemConfig cfg;
    cfg.committee = Committee::for_f(1);
    cfg.seed = 777;
    cfg.rbc_kind = rbc::RbcKind::kOracle;
    cfg.builder.auto_blocks = true;
    cfg.builder.auto_block_size = 16;
    cfg.builder.weak_edges = weak;
    // Slow enough that process 2's vertices miss every round quorum, short
    // enough that they do arrive within the measured horizon — so the only
    // thing deciding their fate is whether weak edges exist.
    cfg.delays = std::make_unique<sim::FixedSetDelay>(std::vector<ProcessId>{2},
                                                      20, 400);
    core::System sys(std::move(cfg));
    sys.start();
    sys.run_until_delivered(160, 400'000'000);
    std::uint64_t slow = 0, fast = 0;
    for (const core::DeliveredRecord& r : sys.node(0).delivered()) {
      slow += r.source == 2 ? 1 : 0;
      fast += r.source == 0 ? 1 : 0;
    }
    t.add_row({weak ? "on (paper)" : "off (ablated)",
               metrics::Table::fmt_u64(slow), metrics::Table::fmt_u64(fast)});
  }
  emit(t);
  std::printf(
      "Reading: with weak edges the slow-but-correct process's blocks are\n"
      "ordered (later, but ordered); without them it is starved — weak edges\n"
      "are exactly the Validity property's mechanism (§5).\n");
}

void coin_unpredictability_ablation() {
  std::printf("\n-- ablation 4: coin unpredictability (why retroactive election matters) --\n");
  // Two adversaries with IDENTICAL delay powers (they may mark any single
  // process "slow" at any time). One is blind; the other can predict the
  // coin — i.e., unpredictability is broken — and always ambushes the
  // upcoming waves' leaders before their leader vertices spread.
  metrics::Table t({"adversary", "waves decided (same time budget)",
                    "blocks delivered"});
  // Both adversaries get the same *simulated time* budget. (An event budget
  // would be unfair: the stalled run burns events building an ever-deeper
  // uncommitted DAG.)
  const sim::SimTime kTimeBudget = 60'000;
  for (bool foresight : {false, true}) {
    core::SystemConfig cfg;
    cfg.committee = Committee::for_f(1);
    cfg.seed = 31337;
    cfg.rbc_kind = rbc::RbcKind::kOracle;
    cfg.coin_mode = core::CoinMode::kLocal;
    cfg.builder.auto_blocks = true;
    cfg.builder.auto_block_size = 8;
    auto delays = std::make_unique<sim::TargetedDelay>(/*fast=*/40, /*slow=*/2000);
    sim::TargetedDelay* knob = delays.get();
    cfg.delays = std::move(delays);
    core::System sys(std::move(cfg));
    auto* oracle = dynamic_cast<coin::LocalCoin*>(&sys.node(0).coin());
    sys.start();
    if (!foresight) knob->set_victims({0});  // blind: pick someone, anyone
    while (sys.simulator().now() < kTimeBudget && !sys.simulator().idle()) {
      sys.simulator().run(500);
      if (foresight && oracle != nullptr) {
        // Peek at the coin for the wave being built and the next one, and
        // stall those leaders' traffic — the attack unpredictability rules
        // out. (The oracle coin makes the brokenness explicit.)
        Round top = 1;
        for (ProcessId p : sys.correct_ids()) {
          top = std::max(top, sys.node(p).builder().current_round());
        }
        const Wave w = wave_of_round(top);
        knob->set_victims({oracle->leader_for(w), oracle->leader_for(w + 1)});
      }
    }
    t.add_row({foresight ? "coin-predicting (unpredictability broken)"
                         : "blind (model-compliant)",
               metrics::Table::fmt_u64(sys.node(0).rider().decided_wave()),
               metrics::Table::fmt_u64(sys.node(0).rider().delivered_count())});
  }
  emit(t);
  std::printf(
      "Reading: with the same delay budget, the blind adversary cannot stop\n"
      "commits (leaders are drawn AFTER waves complete), while a coin-\n"
      "predicting adversary ambushes each upcoming leader and stalls the\n"
      "protocol — DAG-Rider's liveness rests exactly on the coin's\n"
      "unpredictability property (§2), and on nothing else.\n");
}

}  // namespace
}  // namespace dr::bench

int main(int argc, char** argv) {
  dr::bench::bench_init(argc, argv);
  dr::bench::print_header("ABL", "design ablations");
  dr::bench::wave_length_ablation();
  dr::bench::coin_transport_ablation();
  dr::bench::weak_edge_ablation();
  dr::bench::coin_unpredictability_ablation();
  dr::bench::bench_finish();
  return 0;
}
