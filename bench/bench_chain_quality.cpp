// CQ — Chain quality (§3): in every ordered prefix of size (2f+1)r, at
// least (f+1)r entries were broadcast by correct processes — i.e. the
// Byzantine fraction of any prefix is bounded by f/(2f+1), because every
// round contributes >= 2f+1 vertices of which at most f are Byzantine.
//
// Adversary profile (worst case for quality): f "stealthy" Byzantine
// processes participate flawlessly so their blocks claim as many prefix
// slots as possible, while f *correct* processes sit behind a slow link so
// rounds complete with the minimum 2f+1 = f Byzantine + f+1 correct mix.
#include "bench_util.hpp"

namespace dr::bench {
namespace {

void run() {
  print_header("CQ", "chain quality: correct-process share of every ordered prefix");

  metrics::Table t({"f", "n", "prefix", "correct share (min over prefixes)",
                    "paper bound (f+1)/(2f+1)"});

  for (std::uint32_t f : {1u, 2u, 3u}) {
    const Committee c = Committee::for_f(f);
    core::SystemConfig cfg;
    cfg.committee = c;
    cfg.seed = 90 + f;
    cfg.rbc_kind = rbc::RbcKind::kBracha;
    cfg.builder.auto_blocks = true;
    cfg.builder.auto_block_size = 16;
    cfg.faults.assign(c.n, core::FaultKind::kNone);
    std::vector<ProcessId> slow_correct;
    for (std::uint32_t i = 0; i < f; ++i) {
      cfg.faults[c.n - 1 - i] = core::FaultKind::kStealthy;
      slow_correct.push_back(i);  // distinct from the Byzantine set
    }
    cfg.delays = std::make_unique<sim::FixedSetDelay>(slow_correct,
                                                      /*fast=*/50, /*slow=*/260);
    core::System sys(std::move(cfg));
    sys.start();
    if (!sys.run_until_delivered(12ull * c.n, 400'000'000)) {
      t.add_row({std::to_string(f), std::to_string(c.n), "-", "stalled", "-"});
      continue;
    }
    const auto& log = sys.node(0).delivered();
    // Minimum correct share over all prefixes of size (2f+1)*r.
    double min_share = 1.0;
    std::uint64_t correct_so_far = 0;
    std::size_t window = 0;
    for (std::size_t i = 0; i < log.size(); ++i) {
      correct_so_far += sys.is_correct(log[i].source) ? 1u : 0u;
      if ((i + 1) % c.quorum() == 0) {
        ++window;
        min_share = std::min(
            min_share, static_cast<double>(correct_so_far) /
                           static_cast<double>(i + 1));
      }
    }
    const double bound = static_cast<double>(f + 1) /
                         static_cast<double>(2 * f + 1);
    t.add_row({std::to_string(f), std::to_string(c.n),
               std::to_string(log.size()), metrics::Table::fmt(min_share, 3),
               metrics::Table::fmt(bound, 3)});
  }
  emit(t);
  std::printf(
      "\nReading: the minimum correct share across all (2f+1)r prefixes sits\n"
      "at or above (f+1)/(2f+1) — the chain-quality remark of §3.\n");
}

}  // namespace
}  // namespace dr::bench

int main(int argc, char** argv) {
  dr::bench::bench_init(argc, argv);
  dr::bench::run();
  dr::bench::bench_finish();
  return 0;
}
