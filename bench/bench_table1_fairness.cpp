// T1-fair — Table 1, "Eventual Fairness" column.
//
// DAG-Rider's Validity guarantees every correct process's proposal is
// eventually ordered (weak edges), even for processes behind slow links —
// "yes" in the table. The gossip instantiation is (1-ε)-fair. Leader-based
// slot SMRs order exactly one proposal per slot and drop the rest — "no".
//
// Measured: fraction of correct-process proposals ordered within a horizon,
// and per-process representation in the ordered prefix.
#include "baselines/smr/slot_smr.hpp"
#include "bench_util.hpp"

namespace dr::bench {
namespace {

struct Fairness {
  double ordered_fraction = 0;   ///< proposals ordered / proposals made
  double starved_processes = 0;  ///< correct processes with NO ordered proposal
};

Fairness dag_rider_fairness(std::uint32_t n, rbc::RbcKind kind,
                            std::uint64_t seed, bool slow_victim) {
  core::SystemConfig cfg;
  cfg.committee = Committee::for_n(n);
  cfg.seed = seed;
  cfg.rbc_kind = kind;
  cfg.builder.auto_blocks = true;
  cfg.builder.auto_block_size = 32;
  if (slow_victim) {
    cfg.delays = std::make_unique<sim::FixedSetDelay>(
        std::vector<ProcessId>{0}, /*fast=*/40, /*slow=*/400);
  }
  core::System sys(std::move(cfg));
  sys.start();
  Fairness out;
  if (!sys.run_until_delivered(8ull * n, 200'000'000)) return out;

  const ProcessId probe = sys.correct_ids()[0];
  // Horizon: every proposal that could have been ordered = vertices the
  // probe's DAG holds up to its last committed round; proposals ordered =
  // delivered records. Approximate the "made" count by the max round each
  // source reached in the probe's delivered log + pending DAG contents.
  std::map<ProcessId, std::uint64_t> ordered_per_source;
  for (const core::DeliveredRecord& r : sys.node(probe).delivered()) {
    ordered_per_source[r.source] += 1;
  }
  std::uint64_t made = 0;
  for (ProcessId p = 0; p < n; ++p) {
    // Each correct process proposes one block per round it reached.
    made += sys.node(p).builder().current_round();
  }
  std::uint64_t ordered = sys.node(probe).delivered().size();
  out.ordered_fraction =
      std::min(1.0, static_cast<double>(ordered) / static_cast<double>(made));
  int starved = 0;
  for (ProcessId p = 0; p < n; ++p) {
    if (ordered_per_source[p] == 0) ++starved;
  }
  out.starved_processes = starved;
  return out;
}

Fairness smr_fairness(std::uint32_t n, baselines::SmrBackend backend,
                      std::uint64_t seed) {
  baselines::SmrSystemConfig cfg;
  cfg.committee = Committee::for_n(n);
  cfg.seed = seed;
  cfg.backend = backend;
  cfg.batch_size = 32;
  baselines::SmrSystem sys(std::move(cfg));
  sys.start();
  Fairness out;
  const std::uint64_t horizon = 3ull * n;
  if (!sys.run_until_output(horizon, 400'000'000)) return out;
  // Each slot had n proposals (one per process); exactly 1 won.
  std::map<ProcessId, std::uint64_t> wins;
  for (std::size_t i = 0; i < horizon; ++i) {
    wins[sys.node(0).outputs()[i].proposer] += 1;
  }
  out.ordered_fraction = 1.0 / static_cast<double>(n);
  int starved = 0;
  for (ProcessId p = 0; p < n; ++p) {
    if (wins[p] == 0) ++starved;
  }
  out.starved_processes = starved;
  return out;
}

void run() {
  print_header("T1-fair", "eventual fairness (proposals ordered / proposals made)");
  const std::uint32_t n = 10;
  metrics::Table table({"protocol", "paper", "ordered fraction",
                        "starved processes (slow-link victim run)"});

  {
    const Fairness fast = dag_rider_fairness(n, rbc::RbcKind::kBracha, 5, false);
    const Fairness slow = dag_rider_fairness(n, rbc::RbcKind::kBracha, 5, true);
    table.add_row({"DAG-Rider + Bracha", "yes",
                   metrics::Table::fmt(fast.ordered_fraction, 2),
                   metrics::Table::fmt(slow.starved_processes, 0)});
  }
  {
    const Fairness fast = dag_rider_fairness(n, rbc::RbcKind::kAvid, 6, false);
    const Fairness slow = dag_rider_fairness(n, rbc::RbcKind::kAvid, 6, true);
    table.add_row({"DAG-Rider + AVID", "yes",
                   metrics::Table::fmt(fast.ordered_fraction, 2),
                   metrics::Table::fmt(slow.starved_processes, 0)});
  }
  {
    const Fairness g = dag_rider_fairness(n, rbc::RbcKind::kGossip, 7, false);
    table.add_row({"DAG-Rider + gossip", "(1-eps)-fair",
                   metrics::Table::fmt(g.ordered_fraction, 2), "-"});
  }
  {
    const Fairness v = smr_fairness(n, baselines::SmrBackend::kVaba, 8);
    table.add_row({"VABA SMR", "no", metrics::Table::fmt(v.ordered_fraction, 2),
                   metrics::Table::fmt(v.starved_processes, 0)});
  }
  {
    const Fairness d = smr_fairness(n, baselines::SmrBackend::kDumbo, 9);
    table.add_row({"Dumbo SMR", "no", metrics::Table::fmt(d.ordered_fraction, 2),
                   metrics::Table::fmt(d.starved_processes, 0)});
  }
  emit(table);
  std::printf(
      "\nReading: DAG-Rider orders (eventually) every correct proposal — the\n"
      "ordered fraction tracks 1.0 up to pipeline lag and no process is\n"
      "starved even behind a slow link. Slot SMRs order 1/n of proposals and\n"
      "can starve correct processes indefinitely.\n");
}

}  // namespace
}  // namespace dr::bench

int main(int argc, char** argv) {
  dr::bench::bench_init(argc, argv);
  dr::bench::run();
  dr::bench::bench_finish();
  return 0;
}
