// LAT — §6.2 time complexity, widened: commit latency in asynchronous time
// units as n grows, fault-free vs f crashed vs adversarial scheduling.
// DAG-Rider's wave pipeline keeps this ~constant in n (a wave is 4 rounds
// of 2f+1-quorum gathering regardless of n).
#include "bench_util.hpp"

namespace dr::bench {
namespace {

double commit_latency(std::uint32_t n, std::uint64_t seed, bool crash_f,
                      bool adversarial) {
  core::SystemConfig cfg;
  cfg.committee = Committee::for_n(n);
  cfg.seed = seed;
  cfg.rbc_kind = rbc::RbcKind::kBracha;
  cfg.builder.auto_blocks = true;
  cfg.builder.auto_block_size = 32;
  if (adversarial) {
    cfg.delays = std::make_unique<sim::RotatingDelay>(
        n, cfg.committee.f, /*period=*/300, /*fast=*/30, /*slow=*/330);
  }
  if (crash_f) {
    cfg.faults.assign(n, core::FaultKind::kNone);
    for (std::uint32_t i = 0; i < cfg.committee.f; ++i) {
      cfg.faults[n - 1 - i] = core::FaultKind::kCrash;
    }
  }
  const DagRiderRun r = [&] {
    core::System sys(std::move(cfg));
    sys.start();
    DagRiderRun out;
    const sim::SimTime unit = sys.network().max_delay();
    auto all_committed = [&sys](std::uint64_t k) {
      for (ProcessId p : sys.correct_ids()) {
        if (sys.node(p).commits().size() < k) return false;
      }
      return true;
    };
    if (!sys.simulator().run_until([&] { return all_committed(1); },
                                   100'000'000)) {
      return out;
    }
    const sim::SimTime t0 = sys.simulator().now();
    if (!sys.simulator().run_until([&] { return all_committed(6); },
                                   400'000'000)) {
      return out;
    }
    out.time_units_per_commit =
        static_cast<double>(sys.simulator().now() - t0) / 5.0 /
        static_cast<double>(unit);
    out.ok = true;
    return out;
  }();
  return r.ok ? r.time_units_per_commit : -1;
}

void run() {
  print_header("LAT", "commit latency (time units per committed wave) vs n");

  std::vector<std::string> headers{"scenario"};
  for (std::uint32_t n : sweep_n()) headers.push_back("n=" + std::to_string(n));
  metrics::Table t(std::move(headers));

  auto sweep = [&](const char* name, bool crash, bool adv) {
    std::vector<std::string> cells{name};
    for (std::uint32_t n : sweep_n()) {
      metrics::Summary s;
      for (std::uint64_t seed = 1; seed <= 4; ++seed) {
        const double v = commit_latency(n, seed * 31, crash, adv);
        if (v >= 0) s.add(v);
      }
      cells.push_back(metrics::Table::fmt(s.mean(), 1));
    }
    t.add_row(std::move(cells));
  };

  sweep("fault-free, uniform delays", false, false);
  sweep("f crashed", true, false);
  sweep("rotating adversary", false, true);
  emit(t);
  std::printf(
      "\nReading: rows stay ~flat across n (O(1) expected time complexity),\n"
      "with a constant-factor penalty for crashes/adversarial scheduling.\n");
}

}  // namespace
}  // namespace dr::bench

int main(int argc, char** argv) {
  dr::bench::bench_init(argc, argv);
  dr::bench::run();
  dr::bench::bench_finish();
  return 0;
}
