// bank_smr — Byzantine fault-tolerant state machine replication on DAG-Rider.
//
// The paper (§3) positions BAB as the sequencing layer of an SMR: order
// first, execute after. This example builds exactly that separation: a tiny
// bank whose *only* connection to consensus is "apply the delivered blocks
// in delivered order".
//
// Four replicas each run a DAG-Rider stack; clients submit signed-ish
// transfer commands to *different* replicas; one replica crashes mid-run.
// At the end, every live replica holds byte-identical account balances —
// including for transfers submitted to the crashed replica before it died.
#include <cstdio>
#include <map>
#include <string>

#include "core/system.hpp"

namespace {

using namespace dr;

/// A transfer command. Execution validates it (sufficient funds), which is
/// the "execution engine validates transactions" role from §3 — consensus
/// itself never inspects block contents.
struct Transfer {
  std::uint32_t from = 0;
  std::uint32_t to = 0;
  std::int64_t amount = 0;

  Bytes encode() const {
    ByteWriter w(20);
    w.u32(0xBA2B);  // command tag
    w.u32(from);
    w.u32(to);
    w.u64(static_cast<std::uint64_t>(amount));
    return std::move(w).take();
  }
  static bool decode(BytesView b, Transfer& out) {
    ByteReader in(b);
    if (in.u32() != 0xBA2B) return false;
    out.from = in.u32();
    out.to = in.u32();
    out.amount = static_cast<std::int64_t>(in.u64());
    return in.done();
  }
};

/// Deterministic state machine: account -> balance.
class Bank {
 public:
  Bank() {
    for (std::uint32_t acc = 0; acc < 4; ++acc) balances_[acc] = 100;
  }

  /// Applies one delivered block. Invalid or non-bank blocks are no-ops —
  /// the ordering layer delivers *everything*, execution filters.
  void apply(BytesView block) {
    Transfer t;
    if (!Transfer::decode(block, t)) return;
    if (t.amount <= 0 || balances_[t.from] < t.amount) return;  // rejected
    balances_[t.from] -= t.amount;
    balances_[t.to] += t.amount;
    ++applied_;
  }

  std::string render() const {
    std::string out;
    for (const auto& [acc, bal] : balances_) {
      out += "acct" + std::to_string(acc) + "=" + std::to_string(bal) + " ";
    }
    return out;
  }
  bool operator==(const Bank& o) const { return balances_ == o.balances_; }
  std::uint64_t applied() const { return applied_; }

 private:
  std::map<std::uint32_t, std::int64_t> balances_;
  std::uint64_t applied_ = 0;
};

}  // namespace

int main() {
  core::SystemConfig cfg;
  cfg.committee = Committee::for_f(1);
  cfg.seed = 99;
  cfg.rbc_kind = rbc::RbcKind::kAvid;  // erasure-coded broadcast
  cfg.builder.auto_blocks = true;      // pad rounds with empty blocks
  cfg.builder.auto_block_size = 0;
  core::System sys(std::move(cfg));

  // One bank replica per process, fed by the a_deliver stream. We re-wire
  // the deliver callback to ALSO execute (the harness still logs records).
  std::vector<Bank> banks(4);
  for (ProcessId p = 0; p < 4; ++p) {
    sys.node(p).rider().set_deliver(
        [&banks, p](const Bytes& block, const crypto::Digest&, Round,
                    ProcessId) { banks[p].apply(block); });
  }

  // Clients: transfers submitted to different replicas, interleaved.
  sys.node(0).rider().a_bcast(Transfer{0, 1, 30}.encode());
  sys.node(1).rider().a_bcast(Transfer{1, 2, 50}.encode());
  sys.node(2).rider().a_bcast(Transfer{2, 3, 70}.encode());
  sys.node(3).rider().a_bcast(Transfer{3, 0, 10}.encode());  // dies below
  sys.node(0).rider().a_bcast(Transfer{0, 3, 500}.encode());  // overdraft: rejected
  sys.node(1).rider().a_bcast(Transfer{1, 0, 25}.encode());

  sys.start();

  // Let the transfers propagate, then crash replica 3 mid-run. Its already-
  // broadcast transfer must STILL be ordered everywhere (validity).
  sys.simulator().run_until(
      [&] { return banks[0].applied() >= 2; }, 10'000'000);
  std::printf("crashing replica 3 at t=%llu...\n",
              static_cast<unsigned long long>(sys.simulator().now()));
  sys.network().crash(3);

  if (!sys.simulator().run_until(
          [&] {
            for (ProcessId p = 0; p < 3; ++p) {
              if (banks[p].applied() < 5) return false;
            }
            return true;
          },
          50'000'000)) {
    std::fprintf(stderr, "stalled before all transfers applied\n");
    return 1;
  }

  std::printf("\nfinal replicated state (replicas 0-2 live, 3 crashed):\n");
  for (ProcessId p = 0; p < 3; ++p) {
    std::printf("  replica %u: %s(%llu transfers applied)\n", p,
                banks[p].render().c_str(),
                static_cast<unsigned long long>(banks[p].applied()));
  }
  const bool consistent = banks[0] == banks[1] && banks[1] == banks[2];
  std::printf("\nreplica state machines agree: %s\n",
              consistent ? "YES" : "NO — BUG");
  std::printf("overdraft transfer was ordered but rejected at execution, as\n"
              "the paper's order-then-execute separation prescribes.\n");
  return consistent ? 0 : 1;
}
