// scenario_runner — configurable DAG-Rider experiment driver.
//
//   usage: scenario_runner [--f K] [--rbc bracha|bracha-hash|avid|gossip|oracle]
//                          [--coin threshold|piggyback|local]
//                          [--adversary uniform|rotating|fixed|asym|partition]
//                          [--faults crash=2,silent=1,equivocate=1,stealthy=0]
//                          [--seed S] [--waves W] [--gc ROUNDS] [--block BYTES]
//
// Runs one deployment to the target decided wave and prints a full metrics
// report: progress, commits, traffic split by channel, latency, fairness,
// and the BAB safety audit.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/system.hpp"
#include "metrics/table.hpp"

namespace {

using namespace dr;

struct Args {
  std::uint32_t f = 1;
  std::string rbc = "bracha";
  std::string coin = "threshold";
  std::string adversary = "uniform";
  std::uint64_t seed = 1;
  Wave waves = 10;
  Round gc = 0;
  std::size_t block = 64;
  std::uint32_t crash = 0, silent = 0, equivocate = 0, stealthy = 0;
};

bool parse_faults(const char* spec, Args& a) {
  // "crash=2,silent=1,..."
  std::string s(spec);
  std::size_t pos = 0;
  while (pos < s.size()) {
    const std::size_t eq = s.find('=', pos);
    if (eq == std::string::npos) return false;
    const std::string key = s.substr(pos, eq - pos);
    const std::size_t comma = s.find(',', eq);
    const std::string val =
        s.substr(eq + 1, (comma == std::string::npos ? s.size() : comma) - eq - 1);
    const auto count = static_cast<std::uint32_t>(std::atoi(val.c_str()));
    if (key == "crash") a.crash = count;
    else if (key == "silent") a.silent = count;
    else if (key == "equivocate") a.equivocate = count;
    else if (key == "stealthy") a.stealthy = count;
    else return false;
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return true;
}

bool parse_args(int argc, char** argv, Args& a) {
  for (int i = 1; i < argc; ++i) {
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (!std::strcmp(argv[i], "--f")) {
      const char* v = next();
      if (!v) return false;
      a.f = static_cast<std::uint32_t>(std::atoi(v));
    } else if (!std::strcmp(argv[i], "--rbc")) {
      const char* v = next();
      if (!v) return false;
      a.rbc = v;
    } else if (!std::strcmp(argv[i], "--coin")) {
      const char* v = next();
      if (!v) return false;
      a.coin = v;
    } else if (!std::strcmp(argv[i], "--adversary")) {
      const char* v = next();
      if (!v) return false;
      a.adversary = v;
    } else if (!std::strcmp(argv[i], "--faults")) {
      const char* v = next();
      if (!v || !parse_faults(v, a)) return false;
    } else if (!std::strcmp(argv[i], "--seed")) {
      const char* v = next();
      if (!v) return false;
      a.seed = std::strtoull(v, nullptr, 10);
    } else if (!std::strcmp(argv[i], "--waves")) {
      const char* v = next();
      if (!v) return false;
      a.waves = std::strtoull(v, nullptr, 10);
    } else if (!std::strcmp(argv[i], "--gc")) {
      const char* v = next();
      if (!v) return false;
      a.gc = std::strtoull(v, nullptr, 10);
    } else if (!std::strcmp(argv[i], "--block")) {
      const char* v = next();
      if (!v) return false;
      a.block = static_cast<std::size_t>(std::atoll(v));
    } else {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Args a;
  if (!parse_args(argc, argv, a)) {
    std::fprintf(stderr,
                 "usage: scenario_runner [--f K] [--rbc KIND] [--coin MODE]\n"
                 "  [--adversary KIND] [--faults crash=N,...] [--seed S]\n"
                 "  [--waves W] [--gc ROUNDS] [--block BYTES]\n");
    return 2;
  }

  core::SystemConfig cfg;
  cfg.committee = Committee::for_f(a.f);
  const std::uint32_t n = cfg.committee.n;
  cfg.seed = a.seed;
  cfg.builder.auto_blocks = true;
  cfg.builder.auto_block_size = a.block;
  cfg.gc_depth_rounds = a.gc;

  if (a.rbc == "bracha") cfg.rbc_kind = rbc::RbcKind::kBracha;
  else if (a.rbc == "bracha-hash") cfg.rbc_kind = rbc::RbcKind::kBrachaHash;
  else if (a.rbc == "avid") cfg.rbc_kind = rbc::RbcKind::kAvid;
  else if (a.rbc == "gossip") cfg.rbc_kind = rbc::RbcKind::kGossip;
  else if (a.rbc == "oracle") cfg.rbc_kind = rbc::RbcKind::kOracle;
  else { std::fprintf(stderr, "unknown --rbc %s\n", a.rbc.c_str()); return 2; }

  if (a.coin == "threshold") cfg.coin_mode = core::CoinMode::kThreshold;
  else if (a.coin == "piggyback") cfg.coin_mode = core::CoinMode::kPiggyback;
  else if (a.coin == "local") cfg.coin_mode = core::CoinMode::kLocal;
  else { std::fprintf(stderr, "unknown --coin %s\n", a.coin.c_str()); return 2; }

  if (a.adversary == "uniform") {
    cfg.delays = std::make_unique<sim::UniformDelay>(1, 100);
  } else if (a.adversary == "rotating") {
    cfg.delays = std::make_unique<sim::RotatingDelay>(n, cfg.committee.f, 300,
                                                      40, 350);
  } else if (a.adversary == "fixed") {
    std::vector<ProcessId> victims;
    for (std::uint32_t i = 0; i < cfg.committee.f; ++i) victims.push_back(i);
    cfg.delays = std::make_unique<sim::FixedSetDelay>(victims, 40, 350);
  } else if (a.adversary == "asym") {
    cfg.delays = std::make_unique<sim::AsymmetricDelay>(a.seed, 300, 40, 300, 4);
  } else if (a.adversary == "partition") {
    std::vector<ProcessId> group_a;
    for (ProcessId p = 0; p < n / 2; ++p) group_a.push_back(p);
    cfg.delays =
        std::make_unique<sim::PartitionDelay>(group_a, 20'000, 50, 100);
  } else {
    std::fprintf(stderr, "unknown --adversary %s\n", a.adversary.c_str());
    return 2;
  }

  const std::uint32_t total_faults = a.crash + a.silent + a.equivocate + a.stealthy;
  if (total_faults > cfg.committee.f) {
    std::fprintf(stderr, "faults (%u) exceed f=%u\n", total_faults, cfg.committee.f);
    return 2;
  }
  if (a.equivocate > 0 && cfg.rbc_kind != rbc::RbcKind::kBracha) {
    std::fprintf(stderr, "equivocate faults require --rbc bracha\n");
    return 2;
  }
  cfg.faults.assign(n, core::FaultKind::kNone);
  ProcessId fp = n - 1;
  for (std::uint32_t i = 0; i < a.crash; ++i) cfg.faults[fp--] = core::FaultKind::kCrash;
  for (std::uint32_t i = 0; i < a.silent; ++i) cfg.faults[fp--] = core::FaultKind::kSilent;
  for (std::uint32_t i = 0; i < a.equivocate; ++i) cfg.faults[fp--] = core::FaultKind::kEquivocate;
  for (std::uint32_t i = 0; i < a.stealthy; ++i) cfg.faults[fp--] = core::FaultKind::kStealthy;

  std::printf("scenario: n=%u f=%u rbc=%s coin=%s adversary=%s seed=%llu "
              "faults[crash=%u silent=%u equiv=%u stealthy=%u] gc=%llu\n\n",
              n, cfg.committee.f, a.rbc.c_str(), a.coin.c_str(),
              a.adversary.c_str(), (unsigned long long)a.seed, a.crash,
              a.silent, a.equivocate, a.stealthy, (unsigned long long)a.gc);

  core::System sys(std::move(cfg));
  sys.start();
  const bool ok = sys.simulator().run_until(
      [&] {
        for (ProcessId p : sys.correct_ids()) {
          if (sys.node(p).rider().decided_wave() < a.waves) return false;
        }
        return true;
      },
      500'000'000);
  if (!ok) {
    std::printf("RESULT: stalled before wave %llu (events=%llu, t=%llu)\n",
                (unsigned long long)a.waves,
                (unsigned long long)sys.simulator().events_executed(),
                (unsigned long long)sys.simulator().now());
    return 1;
  }

  const ProcessId probe = sys.correct_ids().front();
  auto& node = sys.node(probe);
  metrics::Table t({"metric", "value"});
  t.add_row({"simulated time (ticks)",
             metrics::Table::fmt_u64(sys.simulator().now())});
  t.add_row({"events executed",
             metrics::Table::fmt_u64(sys.simulator().events_executed())});
  t.add_row({"decided wave", metrics::Table::fmt_u64(node.rider().decided_wave())});
  t.add_row({"blocks delivered", metrics::Table::fmt_u64(node.delivered().size())});
  t.add_row({"commits (direct+transitive)",
             metrics::Table::fmt_u64(node.commits().size())});
  t.add_row({"waves without direct commit",
             metrics::Table::fmt_u64(node.rider().waves_without_direct_commit())});
  t.add_row({"total bytes sent",
             metrics::Table::fmt_u64(sys.network().total_bytes_sent())});
  t.add_row({"honest bytes sent",
             metrics::Table::fmt_u64(sys.network().total_honest_bytes_sent())});
  t.add_row({"coin-channel bytes",
             metrics::Table::fmt_u64(
                 sys.network().channel_bytes_sent(sim::Channel::kCoin))});
  t.add_row({"bytes / delivered block",
             metrics::Table::fmt(
                 static_cast<double>(sys.network().total_honest_bytes_sent()) /
                     static_cast<double>(node.delivered().size()),
                 1)});
  t.add_row({"DAG vertices (probe)",
             metrics::Table::fmt_u64(node.builder().dag().vertex_count())});
  t.add_row({"GC floor", metrics::Table::fmt_u64(node.builder().dag().compacted_floor())});
  t.add_row({"chain quality", metrics::Table::fmt(core::chain_quality(sys), 3)});
  t.add_row({"total order", core::prefix_consistent(sys) ? "consistent" : "VIOLATED"});
  t.print();
  return core::prefix_consistent(sys) ? 0 : 1;
}
