// Chaos soak runner: sweeps seeded randomized fault schedules over live
// clusters (n = 4 / 7 / 10) and fails loudly — with the exact seed and the
// full fault plan — on the first BAB invariant violation, so any failure
// replays bit-identically with `chaos_soak --seed <printed seed>`.
//
// Usage:
//   chaos_soak                     # default sweep (20 seeds across 4/7/10)
//   chaos_soak --smoke             # CI-sized sweep (short, n=4 heavy)
//   chaos_soak --seed 17 [--n 7]   # replay exactly one seeded run
//   chaos_soak --seeds 40          # wider sweep
//   chaos_soak --wal <dir>         # enable durability + crash-churn soaks
//   chaos_soak --ingress           # client traffic through the TCP ingress
//                                  # tier (with churning clients) every run
//   chaos_soak --ordering bullshark  # run every soak under the Bullshark
//                                    # ordering personality (default dagrider)
//
// Exit status: 0 when every run progressed and passed the auditors; 1 on
// the first violation or stall.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>

#include "core/ordering.hpp"
#include "node/soak.hpp"

namespace {

struct Args {
  std::uint64_t seeds = 20;      // sweep width
  std::uint64_t seed = 0;        // != 0: replay exactly this seed
  std::uint32_t n = 0;           // != 0: restrict the sweep to one size
  std::string wal_dir;
  bool smoke = false;
  bool ingress = false;
  dr::core::OrderingKind ordering = dr::core::OrderingKind::kDagRider;
};

Args parse(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--seeds") && i + 1 < argc) {
      a.seeds = std::strtoull(argv[++i], nullptr, 10);
    } else if (!std::strcmp(argv[i], "--seed") && i + 1 < argc) {
      a.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (!std::strcmp(argv[i], "--n") && i + 1 < argc) {
      a.n = static_cast<std::uint32_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (!std::strcmp(argv[i], "--wal") && i + 1 < argc) {
      a.wal_dir = argv[++i];
    } else if (!std::strcmp(argv[i], "--smoke")) {
      a.smoke = true;
    } else if (!std::strcmp(argv[i], "--ingress")) {
      a.ingress = true;
    } else if (!std::strcmp(argv[i], "--ordering") && i + 1 < argc) {
      const auto kind = dr::core::parse_ordering(argv[++i]);
      if (!kind.has_value()) {
        std::fprintf(stderr, "unknown ordering: %s (dagrider|bullshark)\n",
                     argv[i]);
        std::exit(2);
      }
      a.ordering = *kind;
    } else {
      std::fprintf(stderr, "unknown arg: %s\n", argv[i]);
      std::exit(2);
    }
  }
  return a;
}

std::string fresh_wal(const std::string& base, std::uint64_t seed,
                      std::uint32_t n) {
  if (base.empty()) return "";
  const std::string dir =
      base + "/soak-s" + std::to_string(seed) + "-n" + std::to_string(n);
  std::filesystem::remove_all(dir);
  return dir;
}

/// Runs one seeded soak; returns false (after printing the replay recipe)
/// on violation or stall.
bool run_one(const Args& args, std::uint64_t seed, std::uint32_t n) {
  dr::node::SoakOptions opts;
  opts.seed = seed;
  opts.n = n;
  opts.ordering = args.ordering;
  opts.target_delivered = args.smoke ? 20 : 40;
  opts.timeout = std::chrono::minutes(3);
  opts.wal_dir = fresh_wal(args.wal_dir, seed, n);
  // Rotate the soak flavour by seed so one sweep covers plain chaos, churn
  // (when durable), and every live Byzantine profile.
  if (!opts.wal_dir.empty() && seed % 3 == 1) opts.with_churn = true;
  switch (seed % 4) {
    case 1: opts.byzantine = dr::node::ByzantineProfile::kEquivocate; break;
    case 2: opts.byzantine = dr::node::ByzantineProfile::kMute; break;
    case 3: opts.byzantine = dr::node::ByzantineProfile::kSelective; break;
    default: break;  // seed % 4 == 0: all honest
  }
  // A Byzantine node and churn at once would leave only f honest-and-up
  // nodes short of quorum windows; keep the two flavours separate.
  if (opts.with_churn) opts.byzantine = dr::node::ByzantineProfile::kHonest;
  if (args.ingress) {
    opts.with_ingress = true;
    opts.ingress_clients = args.smoke ? 500 : 2'000;
    opts.ingress_rate_tps = args.smoke ? 500.0 : 2'000.0;
  }

  const dr::node::SoakResult r = dr::node::run_chaos_soak(opts);
  if (r.ok) {
    std::printf("ok   seed=%llu n=%u ordering=%s byz=%s churn=%s faults=%s\n",
                static_cast<unsigned long long>(seed), n,
                dr::core::to_string(opts.ordering), to_string(opts.byzantine),
                opts.with_churn ? "yes" : "no",
                r.plan.c_str());
    if (opts.with_ingress) {
      std::printf(
          "     ingress: submitted=%llu acked=%llu resubmitted=%llu "
          "client_churn=%llu ack_p50=%.1fms ack_p99=%.1fms\n",
          static_cast<unsigned long long>(r.ingress_submitted),
          static_cast<unsigned long long>(r.ingress_acked),
          static_cast<unsigned long long>(r.ingress_resubmitted),
          static_cast<unsigned long long>(r.ingress_churn_events),
          r.ingress_ack_p50_ms, r.ingress_ack_p99_ms);
    }
    return true;
  }
  std::fprintf(stderr, "FAIL %s\n", r.describe().c_str());
  std::fprintf(stderr,
               "     %s — replay with: chaos_soak --seed %llu --n %u%s\n",
               r.progressed ? "invariant violation" : "no progress (stall)",
               static_cast<unsigned long long>(seed), n,
               args.wal_dir.empty() ? "" : " --wal <dir>");
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse(argc, argv);

  if (args.seed != 0) {  // single-run replay mode
    return run_one(args, args.seed, args.n != 0 ? args.n : 4) ? 0 : 1;
  }

  const std::vector<std::uint32_t> sizes =
      args.n != 0 ? std::vector<std::uint32_t>{args.n}
      : args.smoke ? std::vector<std::uint32_t>{4, 4, 4, 7}
                   : std::vector<std::uint32_t>{4, 7, 10};
  const std::uint64_t seeds = args.smoke ? 6 : args.seeds;

  std::uint64_t runs = 0;
  for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
    // Spread committee sizes across the sweep instead of multiplying it.
    const std::uint32_t n = sizes[seed % sizes.size()];
    if (!run_one(args, seed, n)) return 1;
    ++runs;
  }
  std::printf("chaos soak: %llu seeded runs, zero violations\n",
              static_cast<unsigned long long>(runs));
  return 0;
}
