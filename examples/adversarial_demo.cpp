// adversarial_demo — DAG-Rider under fire.
//
// A narrated run with every hostile element the model allows, all at once:
//   * an equivocating Byzantine process crafting conflicting vertices,
//   * an adaptive network adversary with asymmetric per-link delays,
//   * a late-healing partition.
// The demo prints what each defense does as it happens, then audits the
// BAB properties at the end.
#include <cstdio>

#include "core/system.hpp"

int main() {
  using namespace dr;

  std::printf("=== DAG-Rider adversarial demo (n = 7, f = 2) ===\n\n");
  std::printf("adversary setup:\n");
  std::printf("  * process 5 equivocates: every broadcast sends variant A to\n");
  std::printf("    even-numbered processes and variant B to the rest\n");
  std::printf("  * process 6 has crashed before the run\n");
  std::printf("  * links flip between fast and slow per (sender, receiver)\n\n");

  core::SystemConfig cfg;
  cfg.committee = Committee::for_f(2);  // n = 7
  cfg.seed = 424242;
  cfg.rbc_kind = rbc::RbcKind::kBracha;
  cfg.coin_mode = core::CoinMode::kThreshold;
  cfg.builder.auto_blocks = true;
  cfg.builder.auto_block_size = 24;
  cfg.delays = std::make_unique<sim::AsymmetricDelay>(7, /*period=*/250,
                                                      /*fast=*/30, /*slow=*/400);
  cfg.faults.assign(cfg.committee.n, core::FaultKind::kNone);
  cfg.faults[5] = core::FaultKind::kEquivocate;
  cfg.faults[6] = core::FaultKind::kCrash;
  core::System sys(std::move(cfg));
  sys.start();

  // Milestone narration.
  const std::uint64_t kTargets[] = {10, 40, 80};
  for (std::uint64_t target : kTargets) {
    if (!sys.run_until_delivered(target, 200'000'000)) {
      std::fprintf(stderr, "stalled before %llu deliveries\n",
                   static_cast<unsigned long long>(target));
      return 1;
    }
    auto& node = sys.node(0);
    std::printf("t=%-8llu delivered=%-4zu decided_wave=%-3llu commits=%zu\n",
                static_cast<unsigned long long>(sys.simulator().now()),
                node.delivered().size(),
                static_cast<unsigned long long>(node.rider().decided_wave()),
                node.commits().size());
  }

  // Audit.
  std::printf("\n=== audit ===\n");
  const bool total_order = core::prefix_consistent(sys);
  std::printf("total order across correct processes: %s\n",
              total_order ? "CONSISTENT" : "VIOLATED");

  // Equivocation audit: did process 5 manage to get two different blocks
  // delivered for the same round anywhere?
  bool equivocation_leak = false;
  for (ProcessId a : sys.correct_ids()) {
    for (ProcessId b : sys.correct_ids()) {
      const auto& la = sys.node(a).delivered();
      const auto& lb = sys.node(b).delivered();
      for (const auto& ra : la) {
        if (ra.source != 5) continue;
        for (const auto& rb : lb) {
          if (rb.source == 5 && rb.round == ra.round &&
              rb.block_digest != ra.block_digest) {
            equivocation_leak = true;
          }
        }
      }
    }
  }
  std::printf("equivocator split any (round, source) slot: %s\n",
              equivocation_leak ? "YES — BUG" : "no (reliable broadcast held)");

  std::uint64_t from_equivocator = 0;
  for (const auto& r : sys.node(0).delivered()) {
    from_equivocator += r.source == 5 ? 1 : 0;
  }
  std::printf("equivocator's blocks ordered anyway: %llu "
              "(one variant per round wins or none does)\n",
              static_cast<unsigned long long>(from_equivocator));
  std::printf("chain quality (correct-process share): %.2f (bound: %.2f)\n",
              core::chain_quality(sys), 3.0 / 5.0);

  return total_order && !equivocation_leak ? 0 : 1;
}
