// Quickstart: spin up a 4-process DAG-Rider deployment on the simulated
// network, atomically broadcast a few payloads, and watch every process
// deliver them in the same total order.
//
//   $ ./build/examples/quickstart
//
// The three public pieces a user touches:
//   core::SystemConfig — committee size, reliable-broadcast flavor, coin,
//                        fault injection, delay model;
//   core::System       — owns the simulator, network, and n protocol stacks;
//   DagRider::a_bcast / the delivered() log — the BAB interface itself.
#include <cstdio>
#include <string>

#include "core/system.hpp"

int main() {
  using namespace dr;

  // 1. Configure a committee of n = 3f+1 = 4 processes, Bracha broadcast,
  //    threshold coin, and a seeded asynchronous network.
  core::SystemConfig cfg;
  cfg.committee = Committee::for_f(1);
  cfg.seed = 2021;
  cfg.rbc_kind = rbc::RbcKind::kBracha;
  cfg.coin_mode = core::CoinMode::kThreshold;
  // Processes propose synthetic blocks when the application has nothing
  // queued, so the DAG always advances ("infinitely many blocks", §3).
  cfg.builder.auto_blocks = true;
  cfg.builder.auto_block_size = 32;

  core::System sys(std::move(cfg));

  // 2. Atomically broadcast three payloads from process 0. a_bcast enqueues
  //    the block; it rides the process's next DAG vertex.
  for (const char* msg : {"pay alice 10", "pay bob 5", "mint 100"}) {
    Bytes block(msg, msg + std::string(msg).size());
    sys.node(0).rider().a_bcast(std::move(block));
  }

  // 3. Run the asynchronous network until every process delivered >= 40
  //    blocks (our three, plus the synthetic traffic around them).
  sys.start();
  if (!sys.run_until_delivered(40)) {
    std::fprintf(stderr, "simulation stalled\n");
    return 1;
  }

  // 4. Inspect the outcome: all correct processes hold the same prefix.
  std::printf("process 0 delivered %zu blocks; first 10 in order:\n",
              sys.node(0).delivered().size());
  for (std::size_t i = 0; i < 10; ++i) {
    const core::DeliveredRecord& r = sys.node(0).delivered()[i];
    std::printf("  #%zu  round %llu  from process %u  (%zu bytes)\n", i,
                static_cast<unsigned long long>(r.round), r.source,
                r.block_size);
  }
  std::printf("total order across processes: %s\n",
              core::prefix_consistent(sys) ? "consistent" : "VIOLATED");
  std::printf("committed waves at process 0: %zu, decided wave %llu\n",
              sys.node(0).commits().size(),
              static_cast<unsigned long long>(
                  sys.node(0).rider().decided_wave()));
  return 0;
}
