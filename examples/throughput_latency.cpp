// throughput_latency — live-workload performance study.
//
// Open-loop clients inject transactions into per-process mempools; blocks
// carry real batches instead of synthetic filler. Reports end-to-end
// (submit -> a_deliver) latency percentiles and committed throughput for
// each reliable-broadcast instantiation at several committee sizes.
//
//   usage: throughput_latency [tx_per_tick]
#include <cstdio>
#include <cstdlib>

#include "metrics/table.hpp"
#include "txpool/client.hpp"

int main(int argc, char** argv) {
  using namespace dr;
  const double rate = argc > 1 ? std::atof(argv[1]) : 0.2;

  metrics::Table table({"rbc", "n", "committed tx", "tx/1k-ticks",
                        "latency p50", "latency p95", "bytes/tx"});

  for (rbc::RbcKind kind :
       {rbc::RbcKind::kBracha, rbc::RbcKind::kAvid, rbc::RbcKind::kGossip}) {
    for (std::uint32_t n : {4u, 10u}) {
      core::SystemConfig cfg;
      cfg.committee = Committee::for_n(n);
      cfg.seed = 1234;
      cfg.rbc_kind = kind;
      cfg.builder.auto_blocks = true;
      cfg.builder.auto_block_size = 0;
      core::System sys(std::move(cfg));

      txpool::WorkloadConfig wl;
      wl.tx_per_tick = rate;
      wl.tx_payload = 64;
      wl.batch_max = 32;
      txpool::ClientSwarm swarm(sys, wl, 99);
      sys.start();
      swarm.start();

      const bool ok = sys.simulator().run_until(
          [&] { return swarm.committed() >= 400; }, 100'000'000);
      if (!ok) {
        table.add_row({rbc::to_string(kind), std::to_string(n), "stalled"});
        continue;
      }
      const double elapsed = static_cast<double>(sys.simulator().now());
      table.add_row(
          {rbc::to_string(kind), std::to_string(n),
           metrics::Table::fmt_u64(swarm.committed()),
           metrics::Table::fmt(
               static_cast<double>(swarm.committed()) / elapsed * 1000.0, 1),
           metrics::Table::fmt(swarm.latency().percentile(0.50), 0),
           metrics::Table::fmt(swarm.latency().percentile(0.95), 0),
           metrics::Table::fmt(
               static_cast<double>(sys.network().total_bytes_sent()) /
                   static_cast<double>(swarm.committed()),
               0)});
    }
  }
  std::printf("=== live-workload throughput & latency (rate %.2f tx/tick) ===\n",
              rate);
  table.print();
  std::printf(
      "\nNotes: latency in simulator ticks (uniform link delay 1-100).\n"
      "AVID's erasure coding pays off in bytes/tx as n grows; gossip trades\n"
      "deterministic guarantees for the lowest byte cost.\n");
  return 0;
}
