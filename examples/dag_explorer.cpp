// dag_explorer — watch the DAG grow and the ordering layer interpret it.
//
// Runs a 4-process deployment, then renders process 1's local DAG round by
// round with wave boundaries, per-wave leaders, and commit decisions — a
// live, textual version of the paper's Figures 1 and 2.
//
//   usage: dag_explorer [seed] [waves]
#include <cstdio>
#include <cstdlib>
#include <map>

#include "core/system.hpp"

int main(int argc, char** argv) {
  using namespace dr;
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;
  const Wave waves = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 6;

  core::SystemConfig cfg;
  cfg.committee = Committee::for_f(1);
  cfg.seed = seed;
  cfg.rbc_kind = rbc::RbcKind::kOracle;
  cfg.coin_mode = core::CoinMode::kLocal;
  cfg.builder.auto_blocks = true;
  cfg.builder.auto_block_size = 8;
  // Mild asymmetric chaos so the DAG is visibly ragged (missing slots,
  // weak edges) without stalling.
  cfg.delays = std::make_unique<sim::AsymmetricDelay>(seed, 300, 40, 300, 4);
  core::System sys(std::move(cfg));
  sys.start();
  if (!sys.simulator().run_until(
          [&] { return sys.node(0).rider().decided_wave() >= waves; },
          100'000'000)) {
    std::fprintf(stderr, "stalled\n");
    return 1;
  }

  const dag::Dag& dag = sys.node(0).builder().dag();
  const auto& commits = sys.node(0).commits();
  std::map<Wave, core::CommitRecord> commit_by_wave;
  for (const auto& c : commits) commit_by_wave[c.wave] = c;

  // Reconstruct each wave's drawn leader from the oracle coin.
  auto* oracle = dynamic_cast<coin::LocalCoin*>(&sys.node(0).coin());

  std::printf("=== local DAG of process 1 (seed %llu) ===\n",
              static_cast<unsigned long long>(seed));
  std::printf("legend: [*] vertex  [W] vertex with weak edges  [L] wave leader"
              "   .  missing\n\n");
  for (Wave w = 1; w <= waves; ++w) {
    const ProcessId leader = oracle ? oracle->leader_for(w) : kInvalidProcess;
    std::printf("--- wave %llu: coin drew process %u", (unsigned long long)w,
                leader + 1);
    auto it = commit_by_wave.find(w);
    if (it == commit_by_wave.end()) {
      std::printf("  -> not committed (skipped or recovered later)\n");
    } else if (it->second.direct) {
      std::printf("  -> committed DIRECTLY (2f+1 round-%llu support)\n",
                  (unsigned long long)wave_round(w, 4));
    } else {
      std::printf("  -> committed TRANSITIVELY via a later wave's leader\n");
    }
    for (ProcessId p = 0; p < 4; ++p) {
      std::printf("  p%u: ", p + 1);
      for (Round k = 1; k <= 4; ++k) {
        const Round r = wave_round(w, k);
        const dag::Vertex* v = dag.get(dag::VertexId{p, r});
        if (v == nullptr) {
          std::printf("   . ");
        } else if (k == 1 && p == leader) {
          std::printf("  [L]");
        } else if (!v->weak_edges.empty()) {
          std::printf("  [W]");
        } else {
          std::printf("  [*]");
        }
      }
      std::printf("\n");
    }
  }

  std::printf("\ncommit log at process 1 (order of a_deliver batches):\n");
  for (const auto& c : commits) {
    std::printf("  wave %-3llu leader=p%u round=%llu  %s\n",
                (unsigned long long)c.wave, c.leader.source + 1,
                (unsigned long long)c.leader.round,
                c.direct ? "direct" : "recovered transitively");
  }
  std::printf("\ndelivered %zu blocks; decided wave %llu; vertices in DAG %llu\n",
              sys.node(0).delivered().size(),
              (unsigned long long)sys.node(0).rider().decided_wave(),
              (unsigned long long)dag.vertex_count());
  return 0;
}
