// cluster_main — run a live DAG-Rider cluster on the real-concurrency
// runtime (src/node/). Three modes:
//
//   --mode inproc   (default) n nodes as OS threads in this process,
//                   shared-memory transport
//   --mode tcp      n nodes in this process, loopback TCP links (the full
//                   wire path: framing, handshakes, reader/writer threads)
//   --mode tcp2     forks into TWO OS processes, each hosting half of the
//                   nodes, connected over loopback TCP. The halves verify
//                   agreement for real: the child streams the digest chain
//                   of its ordered prefix through a pipe and the parent
//                   compares it against its own.
//
// Common flags: --n <4> --seed <1> --txs <2000> --blocks <160>
//
// Every process derives the threshold-coin trusted setup from --seed alone
// (coin::kDealerSeedTweak), which is how independent OS processes agree on
// the dealer without exchanging keys — the demo analogue of distributing
// key shares at setup time.
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/audit.hpp"
#include "crypto/sha256.hpp"
#include "net/tcp.hpp"
#include "node/cluster.hpp"
#include "txpool/transaction.hpp"

namespace {

using namespace dr;

struct Args {
  std::string mode = "inproc";
  std::uint32_t n = 4;
  std::uint64_t seed = 1;
  std::uint64_t txs = 2'000;
  std::uint64_t blocks = 160;  ///< delivered blocks to wait for per node
};

Args parse(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    const std::string k = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (k == "--mode") a.mode = next();
    else if (k == "--n") a.n = static_cast<std::uint32_t>(std::atoi(next()));
    else if (k == "--seed") a.seed = std::strtoull(next(), nullptr, 10);
    else if (k == "--txs") a.txs = std::strtoull(next(), nullptr, 10);
    else if (k == "--blocks") a.blocks = std::strtoull(next(), nullptr, 10);
    else {
      std::fprintf(stderr,
                   "usage: cluster_main [--mode inproc|tcp|tcp2] [--n N] "
                   "[--seed S] [--txs T] [--blocks B]\n");
      std::exit(2);
    }
  }
  return a;
}

void submit_workload(node::Cluster& cluster, std::uint64_t txs) {
  for (std::uint64_t id = 1; id <= txs; ++id) {
    txpool::Transaction tx;
    tx.id = id;
    tx.submit_time = cluster.node(0).now_us();
    tx.payload = Bytes(32, static_cast<std::uint8_t>(id));
    cluster.node(static_cast<ProcessId>(id % cluster.n())).submit(std::move(tx));
  }
}

int report(const std::vector<std::vector<core::DeliveredRecord>>& delivered,
           const std::vector<std::vector<core::CommitRecord>>& commits,
           double secs) {
  const auto violation = core::audit_logs(delivered, commits);
  if (violation.has_value()) {
    std::fprintf(stderr, "AUDIT FAILURE: %s\n", violation->c_str());
    return 1;
  }
  std::printf("ordered %zu blocks at node 0 in %.2fs (%.0f blocks/s), "
              "%zu commits; auditors clean\n",
              delivered[0].size(), secs,
              static_cast<double>(delivered[0].size()) / secs,
              commits[0].size());
  return 0;
}

int run_inproc(const Args& a) {
  node::NodeOptions opts;
  opts.seed = a.seed;
  node::Cluster cluster(Committee::for_n(a.n), opts);
  cluster.start();
  const auto t0 = std::chrono::steady_clock::now();
  submit_workload(cluster, a.txs);
  if (!cluster.wait_all_delivered(a.blocks, std::chrono::minutes(2))) {
    std::fprintf(stderr, "cluster stalled\n");
    return 1;
  }
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  cluster.stop();
  return report(cluster.delivered_logs(), cluster.commit_logs(), secs);
}

/// Builds the nodes this process hosts ([lo, hi)) on TCP transports.
std::vector<std::unique_ptr<node::Node>> make_tcp_nodes(
    const Committee& committee, const std::vector<net::TcpPeer>& peers,
    const coin::CoinDealer& dealer, std::uint64_t seed, ProcessId lo,
    ProcessId hi) {
  node::NodeOptions opts;
  opts.seed = seed;
  opts.builder.auto_block_size = 16;
  std::vector<std::unique_ptr<node::Node>> nodes;
  for (ProcessId pid = lo; pid < hi; ++pid) {
    nodes.push_back(std::make_unique<node::Node>(
        std::make_unique<net::TcpTransport>(committee, pid, peers), &dealer,
        opts));
  }
  return nodes;
}

bool wait_delivered(std::vector<std::unique_ptr<node::Node>>& nodes,
                    std::uint64_t target) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::minutes(2);
  for (;;) {
    bool all = true;
    for (auto& n : nodes) {
      if (n->delivered_count() < target) {
        all = false;
        break;
      }
    }
    if (all) return true;
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
}

/// Digest chain over the first `prefix` delivered records — two processes
/// comparing these literally compare their ordered histories.
crypto::Digest prefix_digest(const std::vector<core::DeliveredRecord>& log,
                             std::uint64_t prefix) {
  ByteWriter w;
  for (std::uint64_t i = 0; i < prefix; ++i) {
    w.raw(BytesView(log[i].block_digest.data(), log[i].block_digest.size()));
    w.u64(log[i].round);
    w.u32(log[i].source);
  }
  return crypto::sha256(w.bytes());
}

int run_tcp_single(const Args& a) {
  const Committee committee = Committee::for_n(a.n);
  const auto ports = net::pick_free_ports(a.n);
  std::vector<net::TcpPeer> peers;
  for (auto p : ports) peers.push_back(net::TcpPeer{"127.0.0.1", p});
  const coin::CoinDealer dealer(a.seed ^ coin::kDealerSeedTweak, committee);

  auto nodes = make_tcp_nodes(committee, peers, dealer, a.seed, 0, a.n);
  const auto t0 = std::chrono::steady_clock::now();
  for (auto& n : nodes) n->start();
  if (!wait_delivered(nodes, a.blocks)) {
    std::fprintf(stderr, "tcp cluster stalled\n");
    return 1;
  }
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  for (auto& n : nodes) n->stop_loop();
  for (auto& n : nodes) n->stop_transport();

  std::vector<std::vector<core::DeliveredRecord>> delivered;
  std::vector<std::vector<core::CommitRecord>> commits;
  for (auto& n : nodes) {
    delivered.push_back(n->delivered_snapshot());
    commits.push_back(n->commits_snapshot());
  }
  return report(delivered, commits, secs);
}

int run_tcp_two_processes(const Args& a) {
  const Committee committee = Committee::for_n(a.n);
  const auto ports = net::pick_free_ports(a.n);
  std::vector<net::TcpPeer> peers;
  for (auto p : ports) peers.push_back(net::TcpPeer{"127.0.0.1", p});
  const ProcessId split = committee.n / 2;

  int pipefd[2];
  if (::pipe(pipefd) != 0) {
    std::perror("pipe");
    return 1;
  }

  // Fork BEFORE any thread exists; each process builds its own dealer from
  // the shared seed and hosts its half of the committee.
  const pid_t child = ::fork();
  if (child < 0) {
    std::perror("fork");
    return 1;
  }

  const bool is_child = child == 0;
  const ProcessId lo = is_child ? split : 0;
  const ProcessId hi = is_child ? committee.n : split;
  const coin::CoinDealer dealer(a.seed ^ coin::kDealerSeedTweak, committee);
  auto nodes = make_tcp_nodes(committee, peers, dealer, a.seed, lo, hi);
  for (auto& n : nodes) n->start();

  const bool ok = wait_delivered(nodes, a.blocks);
  for (auto& n : nodes) n->stop_loop();
  for (auto& n : nodes) n->stop_transport();

  std::vector<std::vector<core::DeliveredRecord>> delivered;
  std::vector<std::vector<core::CommitRecord>> commits;
  for (auto& n : nodes) {
    delivered.push_back(n->delivered_snapshot());
    commits.push_back(n->commits_snapshot());
  }

  if (is_child) {
    ::close(pipefd[0]);
    int rc = 1;
    if (!ok) {
      std::fprintf(stderr, "child half stalled waiting for %llu blocks\n",
                   static_cast<unsigned long long>(a.blocks));
    } else if (auto v = core::audit_logs(delivered, commits)) {
      std::fprintf(stderr, "child AUDIT FAILURE: %s\n", v->c_str());
    } else {
      const crypto::Digest d = prefix_digest(delivered[0], a.blocks);
      if (::write(pipefd[1], d.data(), d.size()) ==
          static_cast<ssize_t>(d.size())) {
        rc = 0;
      }
    }
    ::close(pipefd[1]);
    std::_Exit(rc);  // skip static destructors shared with the parent image
  }

  ::close(pipefd[1]);
  int rc = 1;
  crypto::Digest theirs{};
  const bool got_digest =
      ::read(pipefd[0], theirs.data(), theirs.size()) ==
      static_cast<ssize_t>(theirs.size());
  ::close(pipefd[0]);
  int child_status = -1;
  ::waitpid(child, &child_status, 0);

  if (!ok) {
    std::fprintf(stderr, "parent half stalled\n");
  } else if (auto v = core::audit_logs(delivered, commits)) {
    std::fprintf(stderr, "parent AUDIT FAILURE: %s\n", v->c_str());
  } else if (!got_digest || !WIFEXITED(child_status) ||
             WEXITSTATUS(child_status) != 0) {
    std::fprintf(stderr, "child half failed\n");
  } else if (prefix_digest(delivered[0], a.blocks) != theirs) {
    std::fprintf(stderr, "CROSS-PROCESS DISAGREEMENT on the first %llu blocks\n",
                 static_cast<unsigned long long>(a.blocks));
  } else {
    std::printf("two OS processes (%u + %u nodes) agree on the first %llu "
                "ordered blocks; auditors clean in both halves\n",
                split, committee.n - split,
                static_cast<unsigned long long>(a.blocks));
    rc = 0;
  }
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  const Args a = parse(argc, argv);
  if (a.mode == "inproc") return run_inproc(a);
  if (a.mode == "tcp") return run_tcp_single(a);
  if (a.mode == "tcp2") return run_tcp_two_processes(a);
  std::fprintf(stderr, "unknown --mode %s\n", a.mode.c_str());
  return 2;
}
