// Unit tests: Reed–Solomon erasure codes and Merkle trees (the AVID
// substrate). Parameterized over (k, m) to sweep committee sizes.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "crypto/merkle.hpp"
#include "crypto/reed_solomon.hpp"

namespace dr::crypto {
namespace {

Bytes random_bytes(std::size_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  Bytes out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng());
  return out;
}

class RsParam : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(RsParam, RoundTripWithMaximalErasures) {
  const auto k = static_cast<std::uint32_t>(std::get<0>(GetParam()));
  const auto m = static_cast<std::uint32_t>(std::get<1>(GetParam()));
  const auto payload_size = static_cast<std::size_t>(std::get<2>(GetParam()));
  ReedSolomon rs(k, m);
  const Bytes data = random_bytes(payload_size, k * 1000 + m * 10 + payload_size);
  auto shards = rs.encode(data);
  ASSERT_EQ(shards.size(), k + m);

  // Erase m shards (the maximum) in several patterns.
  Xoshiro256 rng(99);
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<std::optional<Bytes>> present(k + m);
    for (std::size_t i = 0; i < k + m; ++i) present[i] = shards[i];
    // Knock out m random distinct shards.
    std::vector<std::size_t> idx(k + m);
    for (std::size_t i = 0; i < k + m; ++i) idx[i] = i;
    for (std::size_t i = 0; i < m; ++i) {
      std::swap(idx[i], idx[i + rng.below(k + m - i)]);
      present[idx[i]].reset();
    }
    auto decoded = rs.decode(present);
    ASSERT_TRUE(decoded.ok()) << decoded.ok();
    EXPECT_EQ(decoded.value(), data);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Committees, RsParam,
    ::testing::Values(std::tuple{2, 2, 100},    // n=4  (f=1)
                      std::tuple{3, 4, 257},    // n=7  (f=2)
                      std::tuple{4, 6, 1024},   // n=10 (f=3)
                      std::tuple{5, 8, 33},     // n=13 (f=4)
                      std::tuple{1, 3, 10},     // degenerate k=1
                      std::tuple{8, 0, 64},     // no parity
                      std::tuple{11, 20, 4096}  // n=31 (f=10)
                      ));

TEST(ReedSolomon, EmptyPayloadRoundTrip) {
  ReedSolomon rs(3, 4);
  auto shards = rs.encode(Bytes{});
  std::vector<std::optional<Bytes>> present(7);
  for (std::size_t i = 3; i < 7; ++i) present[i] = shards[i];  // parity only
  auto decoded = rs.decode(present);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded.value().empty());
}

TEST(ReedSolomon, TooFewShardsFails) {
  ReedSolomon rs(3, 4);
  auto shards = rs.encode(random_bytes(100, 1));
  std::vector<std::optional<Bytes>> present(7);
  present[0] = shards[0];
  present[5] = shards[5];
  auto decoded = rs.decode(present);
  EXPECT_FALSE(decoded.ok());
}

TEST(ReedSolomon, InconsistentShardSizesRejected) {
  ReedSolomon rs(2, 2);
  auto shards = rs.encode(random_bytes(64, 2));
  std::vector<std::optional<Bytes>> present(4);
  present[0] = shards[0];
  present[1] = shards[1];
  present[1]->push_back(0);  // corrupt length
  auto decoded = rs.decode(present);
  EXPECT_FALSE(decoded.ok());
}

TEST(ReedSolomon, ReconstructShardMatchesOriginal) {
  ReedSolomon rs(4, 6);
  const Bytes data = random_bytes(500, 3);
  auto shards = rs.encode(data);
  std::vector<std::optional<Bytes>> present(10);
  for (std::size_t i = 0; i < 4; ++i) present[i + 3] = shards[i + 3];
  for (std::uint32_t target = 0; target < 10; ++target) {
    auto rebuilt = rs.reconstruct_shard(present, target);
    ASSERT_TRUE(rebuilt.ok());
    EXPECT_EQ(rebuilt.value(), shards[target]) << "shard " << target;
  }
}

TEST(ReedSolomon, CorruptedShardChangesDecodeOutput) {
  // RS erasure decoding trusts the shards it is given: flipping a byte must
  // change the output (detection is Merkle's job in AVID).
  ReedSolomon rs(3, 2);
  const Bytes data = random_bytes(90, 4);
  auto shards = rs.encode(data);
  std::vector<std::optional<Bytes>> present(5);
  for (std::size_t i = 0; i < 3; ++i) present[i] = shards[i];
  (*present[1])[3] ^= 0x40;
  auto decoded = rs.decode(present);
  if (decoded.ok()) {
    EXPECT_NE(decoded.value(), data);
  }
}

TEST(Merkle, ProofsVerifyForEveryLeafAndCount) {
  for (std::size_t count : {1u, 2u, 3u, 4u, 5u, 7u, 8u, 9u, 16u, 31u}) {
    std::vector<Bytes> leaves;
    for (std::size_t i = 0; i < count; ++i) {
      leaves.push_back(random_bytes(10 + i, 1000 + i));
    }
    MerkleTree tree(leaves);
    for (std::size_t i = 0; i < count; ++i) {
      const MerkleProof proof = tree.prove(static_cast<std::uint32_t>(i));
      EXPECT_TRUE(MerkleTree::verify(tree.root(), leaves[i], proof))
          << "count=" << count << " leaf=" << i;
    }
  }
}

TEST(Merkle, WrongLeafRejected) {
  std::vector<Bytes> leaves{{1}, {2}, {3}, {4}, {5}};
  MerkleTree tree(leaves);
  const MerkleProof proof = tree.prove(2);
  Bytes tampered = leaves[2];
  tampered[0] ^= 1;
  EXPECT_FALSE(MerkleTree::verify(tree.root(), tampered, proof));
}

TEST(Merkle, ProofForWrongIndexRejected) {
  std::vector<Bytes> leaves{{1}, {2}, {3}, {4}};
  MerkleTree tree(leaves);
  MerkleProof proof = tree.prove(1);
  proof.leaf_index = 2;  // claim a different position
  EXPECT_FALSE(MerkleTree::verify(tree.root(), leaves[1], proof));
}

TEST(Merkle, WrongRootRejected) {
  std::vector<Bytes> leaves{{1}, {2}, {3}, {4}};
  MerkleTree tree(leaves);
  Digest other = tree.root();
  other[0] ^= 1;
  EXPECT_FALSE(MerkleTree::verify(other, leaves[0], tree.prove(0)));
}

TEST(Merkle, LeafCannotPoseAsInteriorNode) {
  // Domain separation: a crafted "leaf" equal to H(left)||H(right) must not
  // verify at the parent position.
  std::vector<Bytes> leaves{{1}, {2}};
  MerkleTree tree(leaves);
  const Digest l0 = MerkleTree::hash_leaf(leaves[0]);
  const Digest l1 = MerkleTree::hash_leaf(leaves[1]);
  Bytes forged;
  forged.insert(forged.end(), l0.begin(), l0.end());
  forged.insert(forged.end(), l1.begin(), l1.end());
  MerkleProof empty_proof;
  empty_proof.leaf_index = 0;
  empty_proof.leaf_count = 1;
  EXPECT_FALSE(MerkleTree::verify(tree.root(), forged, empty_proof));
}

TEST(Merkle, ProofSerializationRoundTrip) {
  std::vector<Bytes> leaves;
  for (std::size_t i = 0; i < 9; ++i) leaves.push_back(random_bytes(8, i));
  MerkleTree tree(leaves);
  const MerkleProof proof = tree.prove(6);
  const Bytes wire = proof.serialize();
  EXPECT_EQ(wire.size(), proof.wire_size());
  ByteReader in(wire);
  MerkleProof back;
  ASSERT_TRUE(MerkleProof::deserialize(in, back));
  EXPECT_TRUE(in.done());
  EXPECT_EQ(back.leaf_index, proof.leaf_index);
  EXPECT_EQ(back.leaf_count, proof.leaf_count);
  EXPECT_TRUE(MerkleTree::verify(tree.root(), leaves[6], back));
}

TEST(Merkle, TruncatedProofRejected) {
  std::vector<Bytes> leaves{{1}, {2}, {3}, {4}};
  MerkleTree tree(leaves);
  Bytes wire = tree.prove(0).serialize();
  wire.pop_back();
  ByteReader in(wire);
  MerkleProof back;
  EXPECT_FALSE(MerkleProof::deserialize(in, back) && in.done());
}

}  // namespace
}  // namespace dr::crypto
