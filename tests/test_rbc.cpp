// Reliable-broadcast property tests, parameterized across instantiations:
// Validity, Agreement, Integrity under correct senders, crash faults, and
// (for deterministic RBCs) Byzantine equivocation.
#include <gtest/gtest.h>

#include <algorithm>

#include "crypto/sha256.hpp"
#include "rbc_test_util.hpp"
#include "sim/network.hpp"

namespace dr::rbc {
namespace {

using testing::RbcHarness;

Bytes payload_of(const char* s) {
  return Bytes(reinterpret_cast<const std::uint8_t*>(s),
               reinterpret_cast<const std::uint8_t*>(s) + std::strlen(s));
}

/// Parameter: (kind, n). Gossip is excluded from Byzantine cases; its
/// guarantees are probabilistic (Table 1's ε row) and covered separately.
class RbcParam
    : public ::testing::TestWithParam<std::tuple<RbcKind, std::uint32_t>> {};

TEST_P(RbcParam, ValidityCorrectSenderDeliversEverywhere) {
  const auto [kind, n] = GetParam();
  RbcHarness h(Committee::for_n(n), kind, 1234);
  const Bytes msg = payload_of("hello world");
  h.instance(0).broadcast(7, Bytes(msg));
  h.sim().run();
  for (ProcessId p = 0; p < n; ++p) {
    const auto* e = h.log(p).find(0, 7);
    ASSERT_NE(e, nullptr) << "process " << p << " missed the delivery";
    EXPECT_EQ(e->payload, msg);
  }
}

TEST_P(RbcParam, IntegrityAtMostOneDeliveryPerSourceRound) {
  const auto [kind, n] = GetParam();
  RbcHarness h(Committee::for_n(n), kind, 99);
  h.instance(1).broadcast(3, payload_of("a"));
  h.sim().run();
  for (ProcessId p = 0; p < n; ++p) {
    EXPECT_EQ(h.log(p).count(1, 3), 1);
  }
}

TEST_P(RbcParam, ConcurrentBroadcastsFromAllProcessesAllDeliver) {
  const auto [kind, n] = GetParam();
  RbcHarness h(Committee::for_n(n), kind, 4321);
  for (ProcessId p = 0; p < n; ++p) {
    ByteWriter w;
    w.u32(p);
    h.instance(p).broadcast(1, std::move(w).take());
  }
  h.sim().run();
  for (ProcessId receiver = 0; receiver < n; ++receiver) {
    for (ProcessId source = 0; source < n; ++source) {
      EXPECT_NE(h.log(receiver).find(source, 1), nullptr)
          << receiver << " missing broadcast of " << source;
    }
  }
}

TEST_P(RbcParam, MultipleRoundsFromSameSender) {
  const auto [kind, n] = GetParam();
  RbcHarness h(Committee::for_n(n), kind, 5);
  for (Round r = 1; r <= 10; ++r) {
    ByteWriter w;
    w.u64(r * 1000);
    h.instance(2).broadcast(r, std::move(w).take());
  }
  h.sim().run();
  for (ProcessId p = 0; p < n; ++p) {
    for (Round r = 1; r <= 10; ++r) {
      ASSERT_NE(h.log(p).find(2, r), nullptr);
    }
  }
}

TEST_P(RbcParam, ToleratesFCrashedReceivers) {
  const auto [kind, n] = GetParam();
  const Committee c = Committee::for_n(n);
  RbcHarness h(c, kind, 777);
  for (std::uint32_t i = 0; i < c.f; ++i) h.net().crash(n - 1 - i);
  h.instance(0).broadcast(1, payload_of("survives crashes"));
  h.sim().run();
  for (ProcessId p : h.correct_ids()) {
    EXPECT_NE(h.log(p).find(0, 1), nullptr) << "correct process " << p;
  }
}

TEST_P(RbcParam, LargePayloadRoundTrips) {
  const auto [kind, n] = GetParam();
  RbcHarness h(Committee::for_n(n), kind, 31);
  Bytes big(10'000);
  Xoshiro256 rng(3);
  for (auto& b : big) b = static_cast<std::uint8_t>(rng());
  h.instance(1).broadcast(2, Bytes(big));
  h.sim().run();
  for (ProcessId p = 0; p < n; ++p) {
    const auto* e = h.log(p).find(1, 2);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(crypto::sha256(e->payload), crypto::sha256(big));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Deterministic, RbcParam,
    ::testing::Combine(::testing::Values(RbcKind::kBracha, RbcKind::kBrachaHash,
                                         RbcKind::kAvid, RbcKind::kOracle),
                       ::testing::Values(4u, 7u, 10u)),
    [](const auto& info) {
      std::string name = std::string(to_string(std::get<0>(info.param))) +
                         "_n" + std::to_string(std::get<1>(info.param));
      std::replace(name.begin(), name.end(), '-', '_');
      return name;
    });

// ---------------------------------------------------------------------------
// Byzantine sender scenarios (deterministic RBCs must defuse them).

/// Crafts a Bracha SEND message (format mirrored from bracha.cpp).
Bytes bracha_send(ProcessId source, Round r, const Bytes& payload) {
  ByteWriter w;
  w.u8(1);
  w.u32(source);
  w.u64(r);
  w.blob(payload);
  return std::move(w).take();
}

TEST(BrachaByzantine, EquivocatingSenderCannotSplitDelivery) {
  const Committee c = Committee::for_f(1);
  RbcHarness h(c, RbcKind::kBracha, 2024);
  h.net().corrupt(3);
  // Byzantine process 3 sends payload A to {0,1} and payload B to {2}.
  const Bytes a = payload_of("variant A");
  const Bytes b = payload_of("variant B");
  h.net().send(3, 0, sim::Channel::kBracha, bracha_send(3, 1, a));
  h.net().send(3, 1, sim::Channel::kBracha, bracha_send(3, 1, a));
  h.net().send(3, 2, sim::Channel::kBracha, bracha_send(3, 1, b));
  h.sim().run();
  // Agreement: either all correct processes delivered the same payload, or
  // none delivered.
  std::optional<Bytes> delivered;
  for (ProcessId p = 0; p < 3; ++p) {
    const auto* e = h.log(p).find(3, 1);
    if (e == nullptr) continue;
    if (!delivered.has_value()) {
      delivered = e->payload;
    } else {
      EXPECT_EQ(*delivered, e->payload) << "correct processes split!";
    }
  }
  // With 2-vs-1 split and quorum 3, variant A can gather echoes from
  // {0,1} only — no payload reaches an echo quorum, so nothing delivers.
  for (ProcessId p = 0; p < 3; ++p) {
    EXPECT_EQ(h.log(p).find(3, 1), nullptr);
  }
}

TEST(BrachaByzantine, ForgedSenderIdentityIgnored) {
  const Committee c = Committee::for_f(1);
  RbcHarness h(c, RbcKind::kBracha, 11);
  h.net().corrupt(3);
  // Process 3 tries to broadcast *as process 0* — authenticated links make
  // the claimed source visible, so the SEND must be dropped.
  for (ProcessId to = 0; to < 4; ++to) {
    h.net().send(3, to, sim::Channel::kBracha,
                 bracha_send(0, 1, payload_of("forged")));
  }
  h.sim().run();
  for (ProcessId p = 0; p < 3; ++p) {
    EXPECT_EQ(h.log(p).find(0, 1), nullptr);
  }
}

TEST(BrachaByzantine, MalformedMessagesAreDropped) {
  const Committee c = Committee::for_f(1);
  RbcHarness h(c, RbcKind::kBracha, 12);
  h.net().corrupt(3);
  h.net().send(3, 0, sim::Channel::kBracha, Bytes{0xFF});           // junk type
  h.net().send(3, 0, sim::Channel::kBracha, Bytes{});               // empty
  h.net().send(3, 0, sim::Channel::kBracha, Bytes{1, 2, 3});        // truncated
  h.instance(1).broadcast(1, payload_of("normal traffic continues"));
  h.sim().run();
  EXPECT_NE(h.log(0).find(1, 1), nullptr);  // protocol unharmed
}

TEST(AvidByzantine, InconsistentEncodingNeverDelivers) {
  // A Byzantine AVID sender commits to fragments that are NOT a valid RS
  // codeword: correct processes must reject at the re-encoding check and
  // never deliver (allowed: a Byzantine broadcast may deliver nothing).
  const Committee c = Committee::for_f(1);
  RbcHarness h(c, RbcKind::kAvid, 13);
  h.net().corrupt(3);

  // Build a VALID fragment set, then corrupt one data fragment before
  // Merkle-committing, producing a consistent tree over an inconsistent
  // codeword.
  crypto::ReedSolomon rs(c.small_quorum(), c.n - c.small_quorum());
  const Bytes value = payload_of("inconsistent dispersal");
  std::vector<Bytes> frags = rs.encode(value);
  frags[0][0] ^= 0x5A;  // now NOT a codeword
  crypto::MerkleTree tree(frags);
  for (ProcessId to = 0; to < 4; ++to) {
    ByteWriter w;
    w.u8(1);  // kDisperse
    w.u32(3);
    w.u64(1);
    w.raw(BytesView{tree.root().data(), tree.root().size()});
    w.u32(to);
    w.blob(frags[to]);
    w.raw(tree.prove(to).serialize());
    h.net().send(3, to, sim::Channel::kAvid, std::move(w).take());
  }
  h.sim().run();
  for (ProcessId p = 0; p < 3; ++p) {
    EXPECT_EQ(h.log(p).find(3, 1), nullptr) << "process " << p;
  }
}

TEST(AvidByzantine, TamperedFragmentRejectedByMerkleProof) {
  const Committee c = Committee::for_f(1);
  RbcHarness h(c, RbcKind::kAvid, 14);
  // Honest broadcast from 0 still delivers even if Byzantine 3 injects junk
  // echo fragments for the same instance.
  h.net().corrupt(3);
  h.instance(0).broadcast(1, payload_of("honest payload"));
  for (ProcessId to = 0; to < 3; ++to) {
    ByteWriter w;
    w.u8(2);  // kEcho
    w.u32(0);
    w.u64(1);
    crypto::Digest fake{};
    w.raw(BytesView{fake.data(), fake.size()});
    w.u32(3);
    w.blob(payload_of("junk"));
    crypto::MerkleProof p;
    p.leaf_index = 3;
    p.leaf_count = 4;
    w.raw(p.serialize());
    h.net().send(3, to, sim::Channel::kAvid, std::move(w).take());
  }
  h.sim().run();
  for (ProcessId p = 0; p < 3; ++p) {
    const auto* e = h.log(p).find(0, 1);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->payload, payload_of("honest payload"));
  }
}

// ---------------------------------------------------------------------------
// Hash-echo Bracha specifics.

TEST(BrachaHash, CheaperThanClassicBrachaOnLargePayloads) {
  const Committee c = Committee::for_n(10);
  const Bytes payload(8'000, 0x3C);

  RbcHarness classic(c, RbcKind::kBracha, 5);
  classic.instance(0).broadcast(1, Bytes(payload));
  classic.sim().run();

  RbcHarness hashed(c, RbcKind::kBrachaHash, 5);
  hashed.instance(0).broadcast(1, Bytes(payload));
  hashed.sim().run();

  for (ProcessId p = 0; p < c.n; ++p) {
    ASSERT_NE(hashed.log(p).find(0, 1), nullptr);
  }
  // Classic echoes the payload n^2 times; hash-echo sends it n times.
  EXPECT_LT(hashed.net().total_bytes_sent() * 3,
            classic.net().total_bytes_sent());
}

TEST(BrachaHash, PullPathDeliversWhenSendMissed) {
  // Byzantine sender SENDs the payload to only 3 of 4 processes. Process 0
  // still collects 2f+1 READY digests and must PULL the payload to deliver.
  const Committee c = Committee::for_f(1);
  RbcHarness h(c, RbcKind::kBrachaHash, 6);
  h.net().corrupt(3);
  const Bytes payload = payload_of("partially sent payload");
  ByteWriter w;
  w.u8(1);  // kSend
  w.u32(3);
  w.u64(1);
  w.blob(payload);
  const net::Payload send(std::move(w).take());
  h.net().send(3, 1, sim::Channel::kBracha, send);
  h.net().send(3, 2, sim::Channel::kBracha, send);
  h.net().send(3, 3, sim::Channel::kBracha, send);
  h.sim().run();
  // Processes 1 and 2 echo; with the sender's own instance that's enough
  // for READYs; process 0 (no SEND) must still deliver via the pull.
  const auto* e = h.log(0).find(3, 1);
  ASSERT_NE(e, nullptr) << "pull path failed";
  EXPECT_EQ(e->payload, payload);
}

// ---------------------------------------------------------------------------
// Gossip RBC: probabilistic guarantees — delivery whp with healthy samples.

TEST(GossipRbc, DeliversWithHighProbabilityParams) {
  // n = 13, generous samples: every correct process should deliver across
  // several seeds (deterministic per seed; seeds chosen to pass = the whp
  // guarantee made concrete).
  const Committee c = Committee::for_n(13);
  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL, 4ULL, 5ULL}) {
    RbcHarness h(c, RbcKind::kGossip, seed);
    h.instance(0).broadcast(1, payload_of("gossip me"));
    h.sim().run();
    int delivered = 0;
    for (ProcessId p = 0; p < c.n; ++p) {
      delivered += h.log(p).find(0, 1) != nullptr ? 1 : 0;
    }
    EXPECT_GE(delivered, static_cast<int>(c.n - 1)) << "seed " << seed;
  }
}

TEST(GossipRbc, CheaperThanBrachaPerBroadcast) {
  // The Table-1 motivation: gossip moves O(n log n) payload copies versus
  // Bracha's O(n^2). Compare total bytes for one broadcast at n = 31.
  const Committee c = Committee::for_n(31);
  const Bytes payload(2000, 0x11);

  RbcHarness bracha(c, RbcKind::kBracha, 7);
  bracha.instance(0).broadcast(1, Bytes(payload));
  bracha.sim().run();
  const std::uint64_t bracha_bytes = bracha.net().total_bytes_sent();

  RbcHarness gossip(c, RbcKind::kGossip, 7);
  gossip.instance(0).broadcast(1, Bytes(payload));
  gossip.sim().run();
  const std::uint64_t gossip_bytes = gossip.net().total_bytes_sent();

  EXPECT_LT(gossip_bytes * 2, bracha_bytes)
      << "gossip=" << gossip_bytes << " bracha=" << bracha_bytes;
}

TEST(GossipRbc, SampleSizesScaleLogarithmically) {
  sim::Simulator sim(1);
  sim::Network net(sim, Committee::for_n(100),
                   std::make_unique<sim::UniformDelay>(1, 10));
  GossipRbc g(net, 0, 42);
  EXPECT_LT(g.gossip_fanout(), 20u);
  EXPECT_LT(g.echo_sample_size(), 30u);
  EXPECT_GE(g.gossip_fanout(), 8u);
}

}  // namespace
}  // namespace dr::rbc
