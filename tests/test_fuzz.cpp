// Fuzz-style robustness tests: every wire-format parser and every protocol
// component's message handler is fed random, truncated, and bit-flipped
// bytes. Nothing may crash, and honest traffic must keep flowing around the
// garbage (a Byzantine process can always spray junk).
#include <gtest/gtest.h>

#include "baselines/bba/binary_agreement.hpp"
#include "baselines/vaba/vaba.hpp"
#include "coin/dealer.hpp"
#include "coin/threshold_coin.hpp"
#include "core/system.hpp"
#include "crypto/merkle.hpp"
#include "dag/vertex.hpp"
#include "net/frame.hpp"
#include "txpool/mempool.hpp"
#include "sim/network.hpp"

namespace dr {
namespace {

Bytes random_bytes(Xoshiro256& rng, std::size_t max_len) {
  Bytes out(rng.below(max_len + 1));
  for (auto& b : out) b = static_cast<std::uint8_t>(rng());
  return out;
}

TEST(Fuzz, VertexDeserializerNeverCrashes) {
  Xoshiro256 rng(1);
  int parsed = 0;
  for (int i = 0; i < 20'000; ++i) {
    const Bytes junk = random_bytes(rng, 200);
    auto result = dag::Vertex::deserialize(junk);
    parsed += result.ok() ? 1 : 0;
  }
  // Random bytes occasionally parse (tiny valid encodings exist); what
  // matters is no crash and no absurd acceptance rate.
  EXPECT_LT(parsed, 2'000);
}

TEST(Fuzz, VertexBitflipsRoundTripOrFail) {
  Xoshiro256 rng(2);
  dag::Vertex v;
  v.block = random_bytes(rng, 50);
  v.strong_edges = {0, 1, 2};
  v.weak_edges = {dag::VertexId{3, 1}};
  const Bytes wire = v.serialize();
  for (std::size_t bit = 0; bit < wire.size() * 8; ++bit) {
    Bytes mutated = wire;
    mutated[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    auto result = dag::Vertex::deserialize(mutated);  // must not crash
    (void)result;
  }
  SUCCEED();
}

TEST(Fuzz, VertexTruncationsNeverCrashAndRoundTrip) {
  Xoshiro256 rng(7);
  dag::Vertex v;
  v.round = 9;
  v.source = 2;
  v.block = random_bytes(rng, 80);
  v.strong_edges = {0, 1, 3};
  v.weak_edges = {dag::VertexId{1, 4}};
  const Bytes wire = v.serialize();
  // Every proper prefix must be rejected cleanly...
  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    auto result = dag::Vertex::deserialize(BytesView{wire.data(), cut});
    EXPECT_FALSE(result.ok()) << "truncation at " << cut << " parsed";
  }
  // ...and the full encoding round-trips.
  auto full = dag::Vertex::deserialize(wire);
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full.value().block, v.block);
  EXPECT_EQ(full.value().strong_edges, v.strong_edges);
}

TEST(Fuzz, FrameDecoderRandomChunkStreamsNeverCrash) {
  Xoshiro256 rng(8);
  for (int stream = 0; stream < 500; ++stream) {
    net::FrameDecoder dec(4);
    // Interleave valid frames with garbage chunks in one byte stream.
    for (int step = 0; step < 10 && !dec.dead(); ++step) {
      if (rng.below(2) == 0) {
        dec.feed(BytesView(net::encode_frame(static_cast<ProcessId>(rng.below(4)),
                                             net::Channel::kBracha,
                                             random_bytes(rng, 60))));
      } else {
        dec.feed(BytesView(random_bytes(rng, 60)));
      }
      while (dec.next().has_value()) {
      }
    }
  }
  SUCCEED();
}

TEST(Fuzz, MerkleProofDeserializerNeverCrashes) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 20'000; ++i) {
    const Bytes junk = random_bytes(rng, 150);
    ByteReader in(junk);
    crypto::MerkleProof proof;
    (void)crypto::MerkleProof::deserialize(in, proof);
  }
  SUCCEED();
}

TEST(Fuzz, TxBlockDecoderNeverCrashes) {
  Xoshiro256 rng(4);
  for (int i = 0; i < 20'000; ++i) {
    const Bytes junk = random_bytes(rng, 300);
    (void)txpool::decode_block(junk);
  }
  SUCCEED();
}

/// Sprays random bytes at every protocol channel of a live DAG-Rider
/// deployment from a Byzantine process, then checks progress + safety.
TEST(Fuzz, ProtocolChannelsSurviveGarbageSpray) {
  core::SystemConfig cfg;
  cfg.committee = Committee::for_f(1);
  cfg.seed = 99;
  cfg.rbc_kind = rbc::RbcKind::kBracha;
  cfg.builder.auto_blocks = true;
  cfg.builder.auto_block_size = 8;
  cfg.faults.assign(4, core::FaultKind::kNone);
  cfg.faults[3] = core::FaultKind::kSilent;  // our garbage cannon
  core::System sys(std::move(cfg));
  sys.start();

  Xoshiro256 rng(5);
  const sim::Channel channels[] = {sim::Channel::kBracha, sim::Channel::kCoin,
                                   sim::Channel::kAvid, sim::Channel::kGossip,
                                   sim::Channel::kOracle};
  for (std::uint64_t burst = 0; burst < 40; ++burst) {
    sys.simulator().schedule(burst * 50, [&sys, &rng, &channels] {
      for (sim::Channel ch : channels) {
        for (ProcessId to = 0; to < 3; ++to) {
          Bytes junk = random_bytes(rng, 120);
          sys.network().send(3, to, ch, std::move(junk));
        }
      }
    });
  }
  ASSERT_TRUE(sys.run_until_delivered(24));
  EXPECT_TRUE(core::prefix_consistent(sys));
}

/// Same spray against the baselines' channels.
TEST(Fuzz, BaselineChannelsSurviveGarbageSpray) {
  const Committee c = Committee::for_f(1);
  sim::Simulator sim(6);
  sim::Network net(sim, c, std::make_unique<sim::UniformDelay>(1, 30));
  coin::CoinDealer dealer(7, c);
  std::vector<std::unique_ptr<coin::ThresholdCoin>> coins;
  std::vector<std::unique_ptr<baselines::Vaba>> vabas;
  std::vector<std::unique_ptr<baselines::BinaryAgreement>> bbas;
  std::vector<int> vaba_decided(4, 0), bba_decided(4, 0);
  for (ProcessId p = 0; p < 4; ++p) {
    coins.push_back(std::make_unique<coin::ThresholdCoin>(
        net, coin::ProcessCoinKey(&dealer, p)));
    vabas.push_back(std::make_unique<baselines::Vaba>(
        net, p, *coins[p],
        [&vaba_decided, p](SlotId, ProcessId, const Bytes&) {
          vaba_decided[p] = 1;
        }));
    bbas.push_back(std::make_unique<baselines::BinaryAgreement>(
        net, p, *coins[p],
        [&bba_decided, p](std::uint64_t, bool) { bba_decided[p] = 1; }));
  }
  net.corrupt(3);
  Xoshiro256 rng(8);
  for (ProcessId p = 0; p < 3; ++p) {
    vabas[p]->propose(1, Bytes(1, static_cast<std::uint8_t>(p)));
    bbas[p]->propose(1, p % 2 == 0);
  }
  for (int i = 0; i < 200; ++i) {
    net.send(3, static_cast<ProcessId>(i % 3), sim::Channel::kVaba,
             random_bytes(rng, 100));
    net.send(3, static_cast<ProcessId>(i % 3), sim::Channel::kBba,
             random_bytes(rng, 100));
    net.send(3, static_cast<ProcessId>(i % 3), sim::Channel::kCoin,
             random_bytes(rng, 100));
  }
  sim.run();
  for (ProcessId p = 0; p < 3; ++p) {
    EXPECT_EQ(vaba_decided[p], 1) << "vaba stalled at p" << p;
    EXPECT_EQ(bba_decided[p], 1) << "bba stalled at p" << p;
  }
}

}  // namespace
}  // namespace dr
