// Unit tests: global perfect coin — oracle and threshold implementations,
// against the paper's four properties (Agreement, Termination,
// Unpredictability, Fairness).
#include <gtest/gtest.h>

#include <map>

#include "coin/coin.hpp"
#include "coin/dealer.hpp"
#include "coin/threshold_coin.hpp"
#include "sim/network.hpp"

namespace dr::coin {
namespace {

TEST(LocalCoin, AgreementAcrossInstancesWithSameSeed) {
  LocalCoin a(42, 7), b(42, 7);
  for (Wave w = 1; w <= 50; ++w) {
    EXPECT_EQ(a.leader_for(w), b.leader_for(w));
  }
}

TEST(LocalCoin, FairnessRoughlyUniform) {
  const std::uint32_t n = 4;
  LocalCoin coin(7, n);
  std::vector<int> counts(n, 0);
  const int waves = 4000;
  for (Wave w = 1; w <= waves; ++w) counts[coin.leader_for(w)]++;
  for (std::uint32_t p = 0; p < n; ++p) {
    EXPECT_NEAR(counts[p], waves / n, waves / n * 0.2) << "p=" << p;
  }
}

TEST(CoinDealer, SharesReconstructTheInstanceSecret) {
  const Committee c = Committee::for_f(2);  // n=7, threshold 3
  CoinDealer dealer(123, c);
  for (Wave w = 1; w <= 5; ++w) {
    std::vector<crypto::ShamirShare> shares;
    for (ProcessId p = 2; p < 5; ++p) shares.push_back(dealer.share_for(w, p));
    EXPECT_EQ(crypto::Shamir::reconstruct(shares), dealer.secret(w));
  }
}

TEST(CoinDealer, VerifyAcceptsRealSharesRejectsForgeries) {
  const Committee c = Committee::for_f(1);
  CoinDealer dealer(5, c);
  const auto share = dealer.share_for(3, 2);
  EXPECT_TRUE(dealer.verify_share(3, share.x, share.y));
  EXPECT_FALSE(dealer.verify_share(3, share.x, share.y + 1));
  EXPECT_FALSE(dealer.verify_share(4, share.x, share.y));  // wrong instance
  EXPECT_FALSE(dealer.verify_share(3, 0, share.y));        // x = 0 forbidden
  EXPECT_FALSE(dealer.verify_share(3, c.n + 1, share.y));  // out of range
}

TEST(CoinDealer, InstancesAreIndependent) {
  const Committee c = Committee::for_f(1);
  CoinDealer dealer(5, c);
  EXPECT_NE(dealer.secret(1), dealer.secret(2));
  // A share for instance 1 tells nothing about instance 2's polynomial.
  EXPECT_NE(dealer.share_for(1, 0).y, dealer.share_for(2, 0).y);
}

/// Threshold-coin fixture: n processes on a simulated network.
class ThresholdCoinTest : public ::testing::Test {
 protected:
  void build(std::uint32_t f, bool broadcast_shares = true) {
    committee_ = Committee::for_f(f);
    sim_ = std::make_unique<sim::Simulator>(11);
    net_ = std::make_unique<sim::Network>(
        *sim_, committee_, std::make_unique<sim::UniformDelay>(1, 20));
    dealer_ = std::make_unique<CoinDealer>(99, committee_);
    for (ProcessId p = 0; p < committee_.n; ++p) {
      coins_.push_back(std::make_unique<ThresholdCoin>(
          *net_, ProcessCoinKey(dealer_.get(), p), broadcast_shares));
    }
  }

  Committee committee_;
  std::unique_ptr<sim::Simulator> sim_;
  std::unique_ptr<sim::Network> net_;
  std::unique_ptr<CoinDealer> dealer_;
  std::vector<std::unique_ptr<ThresholdCoin>> coins_;
};

TEST_F(ThresholdCoinTest, AgreementAndTermination) {
  build(2);  // n = 7
  std::map<ProcessId, ProcessId> results;
  for (ProcessId p = 0; p < committee_.n; ++p) {
    coins_[p]->choose_leader(1, [&, p](ProcessId leader) { results[p] = leader; });
  }
  sim_->run();
  ASSERT_EQ(results.size(), committee_.n);
  for (const auto& [p, leader] : results) {
    EXPECT_EQ(leader, results[0]) << "process " << p << " disagrees";
    EXPECT_LT(leader, committee_.n);
  }
}

TEST_F(ThresholdCoinTest, TerminatesWithExactlyFPlusOneCallers) {
  build(2);  // n = 7, threshold 3 = f+1
  std::map<ProcessId, ProcessId> results;
  // Only f+1 = 3 processes invoke the coin; everyone who asked must return.
  for (ProcessId p = 0; p < 3; ++p) {
    coins_[p]->choose_leader(4, [&, p](ProcessId l) { results[p] = l; });
  }
  sim_->run();
  EXPECT_EQ(results.size(), 3u);
}

TEST_F(ThresholdCoinTest, DoesNotResolveBelowThreshold) {
  build(2);  // threshold 3
  bool resolved = false;
  for (ProcessId p = 0; p < 2; ++p) {  // only f callers
    coins_[p]->choose_leader(9, [&](ProcessId) { resolved = true; });
  }
  sim_->run();
  EXPECT_FALSE(resolved);  // unpredictability: f shares reveal nothing
  EXPECT_FALSE(coins_[0]->has_value(9));
}

TEST_F(ThresholdCoinTest, ByzantineGarbageSharesAreRejected) {
  build(1);  // n = 4, threshold 2
  // Process 3 is Byzantine: floods wrong shares for wave 1.
  net_->corrupt(3);
  for (ProcessId to = 0; to < 4; ++to) {
    ByteWriter w;
    w.u64(1);              // wave
    w.u64(0xBAD0BAD0BAD);  // bogus share value
    net_->send(3, to, sim::Channel::kCoin, std::move(w).take());
  }
  std::map<ProcessId, ProcessId> results;
  for (ProcessId p = 0; p < 3; ++p) {
    coins_[p]->choose_leader(1, [&, p](ProcessId l) { results[p] = l; });
  }
  sim_->run();
  ASSERT_EQ(results.size(), 3u);
  // All correct processes agree on the leader derived from *valid* shares.
  const std::uint64_t secret = dealer_->secret(1);
  const ProcessId expected = leader_from_secret(secret, 1, 4);
  for (const auto& [p, leader] : results) EXPECT_EQ(leader, expected);
}

TEST_F(ThresholdCoinTest, LateCallerGetsCachedValue) {
  build(1);
  std::map<ProcessId, ProcessId> results;
  for (ProcessId p = 0; p < 3; ++p) {
    coins_[p]->choose_leader(2, [&, p](ProcessId l) { results[p] = l; });
  }
  sim_->run();
  // Process 3 asks only now; shares already arrived, resolution is instant.
  ProcessId late = kInvalidProcess;
  coins_[3]->choose_leader(2, [&](ProcessId l) { late = l; });
  EXPECT_EQ(late, results[0]);
}

TEST_F(ThresholdCoinTest, IngestShareSupportsPiggybackMode) {
  build(1, /*broadcast_shares=*/false);
  // No process broadcasts on the coin channel; shares arrive out-of-band.
  std::map<ProcessId, ProcessId> results;
  for (ProcessId p = 0; p < 4; ++p) {
    coins_[p]->choose_leader(1, [&, p](ProcessId l) { results[p] = l; });
  }
  sim_->run();
  EXPECT_TRUE(results.empty());  // nothing moved without shares

  // Hand-deliver shares from processes 0 and 1 (threshold = 2) to everyone.
  for (ProcessId holder = 0; holder < 2; ++holder) {
    const auto share = dealer_->share_for(1, holder);
    for (ProcessId p = 0; p < 4; ++p) {
      coins_[p]->ingest_share(holder, 1, share.y);
    }
  }
  ASSERT_EQ(results.size(), 4u);
  for (const auto& [p, l] : results) EXPECT_EQ(l, results[0]);
}

TEST_F(ThresholdCoinTest, FairnessOverManyWaves) {
  build(1);  // n = 4
  std::vector<int> counts(4, 0);
  const int waves = 600;
  std::map<Wave, ProcessId> results;
  for (Wave w = 1; w <= static_cast<Wave>(waves); ++w) {
    for (ProcessId p = 0; p < 4; ++p) {
      coins_[p]->choose_leader(w, [&, w](ProcessId l) { results[w] = l; });
    }
  }
  sim_->run();
  ASSERT_EQ(results.size(), static_cast<std::size_t>(waves));
  for (const auto& [w, l] : results) counts[l]++;
  for (int c : counts) EXPECT_NEAR(c, waves / 4, waves / 4 * 0.35);
}

}  // namespace
}  // namespace dr::coin
