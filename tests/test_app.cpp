// Tests: the execution layer — KV command codec, deterministic state
// machine semantics, and full replicated-service consistency under faults.
#include <gtest/gtest.h>

#include "app/kvstore.hpp"
#include "app/replicated.hpp"

namespace dr::app {
namespace {

Bytes bytes_of(const char* s) {
  return Bytes(reinterpret_cast<const std::uint8_t*>(s),
               reinterpret_cast<const std::uint8_t*>(s) + std::strlen(s));
}

TEST(KvCommand, EncodeDecodeRoundTrip) {
  KvCommand cmd;
  cmd.op = KvCommand::Op::kCas;
  cmd.key = "account/alice";
  cmd.value = bytes_of("new");
  cmd.expected = bytes_of("old");
  KvCommand back;
  ASSERT_TRUE(KvCommand::decode(cmd.encode(), back));
  EXPECT_EQ(back.op, cmd.op);
  EXPECT_EQ(back.key, cmd.key);
  EXPECT_EQ(back.value, cmd.value);
  EXPECT_EQ(back.expected, cmd.expected);
}

TEST(KvCommand, RejectsGarbage) {
  KvCommand out;
  EXPECT_FALSE(KvCommand::decode(Bytes{}, out));
  EXPECT_FALSE(KvCommand::decode(Bytes{1, 2, 3}, out));
  KvCommand cmd;
  cmd.key = "k";
  Bytes enc = cmd.encode();
  enc[5] = 99;  // invalid op
  EXPECT_FALSE(KvCommand::decode(enc, out));
}

TEST(KvStore, PutDelCasSemantics) {
  KvStore kv;
  KvCommand put;
  put.op = KvCommand::Op::kPut;
  put.key = "x";
  put.value = bytes_of("1");
  EXPECT_TRUE(kv.apply(put.encode()));
  EXPECT_EQ(kv.get("x"), bytes_of("1"));

  KvCommand cas;
  cas.op = KvCommand::Op::kCas;
  cas.key = "x";
  cas.expected = bytes_of("1");
  cas.value = bytes_of("2");
  EXPECT_TRUE(kv.apply(cas.encode()));
  EXPECT_EQ(kv.get("x"), bytes_of("2"));

  // CAS with stale expectation fails deterministically.
  EXPECT_FALSE(kv.apply(cas.encode()));
  EXPECT_EQ(kv.get("x"), bytes_of("2"));

  KvCommand del;
  del.op = KvCommand::Op::kDel;
  del.key = "x";
  EXPECT_TRUE(kv.apply(del.encode()));
  EXPECT_FALSE(kv.get("x").has_value());
  EXPECT_FALSE(kv.apply(del.encode()));  // double delete rejected
  EXPECT_EQ(kv.applied_count(), 3u);
  EXPECT_EQ(kv.rejected_count(), 2u);
}

TEST(KvStore, DigestTracksStateExactly) {
  KvStore a, b;
  const crypto::Digest empty = a.state_digest();
  EXPECT_EQ(empty, b.state_digest());

  KvCommand put;
  put.op = KvCommand::Op::kPut;
  put.key = "k";
  put.value = bytes_of("v");
  a.apply(put.encode());
  EXPECT_NE(a.state_digest(), empty);
  b.apply(put.encode());
  EXPECT_EQ(a.state_digest(), b.state_digest());

  // Order of distinct keys doesn't matter (canonical map ordering)...
  KvStore c, d;
  KvCommand p1 = put, p2 = put;
  p1.key = "a";
  p2.key = "b";
  c.apply(p1.encode());
  c.apply(p2.encode());
  d.apply(p2.encode());
  d.apply(p1.encode());
  EXPECT_EQ(c.state_digest(), d.state_digest());
  // ...but conflicting writes to the SAME key do (the whole reason we need
  // total order).
  KvStore e, f;
  KvCommand w1 = put, w2 = put;
  w1.value = bytes_of("1");
  w2.value = bytes_of("2");
  e.apply(w1.encode());
  e.apply(w2.encode());
  f.apply(w2.encode());
  f.apply(w1.encode());
  EXPECT_NE(e.state_digest(), f.state_digest());
}

TEST(ReplicatedService, ReplicasConvergeUnderFaultsAndConflicts) {
  core::SystemConfig cfg;
  cfg.committee = Committee::for_f(1);
  cfg.seed = 77;
  cfg.rbc_kind = rbc::RbcKind::kBracha;
  cfg.builder.auto_blocks = true;
  cfg.builder.auto_block_size = 0;
  cfg.faults.assign(4, core::FaultKind::kCrash);
  cfg.faults[0] = cfg.faults[1] = cfg.faults[2] = core::FaultKind::kNone;
  core::System sys(std::move(cfg));
  ReplicatedService svc(sys, [] { return std::make_unique<KvStore>(); });

  // Conflicting writes to the same keys submitted at different replicas:
  // only total order can make the final states agree.
  std::uint64_t id = 1;
  for (int round = 0; round < 10; ++round) {
    for (ProcessId p = 0; p < 3; ++p) {
      KvCommand cmd;
      cmd.op = KvCommand::Op::kPut;
      cmd.key = "key" + std::to_string(round % 3);
      cmd.value = Bytes{static_cast<std::uint8_t>(p),
                        static_cast<std::uint8_t>(round)};
      svc.submit(p, id++, cmd.encode());
    }
  }
  sys.start();
  svc.start();
  ASSERT_TRUE(sys.simulator().run_until(
      [&] {
        for (ProcessId p : sys.correct_ids()) {
          if (svc.machine(p).applied_count() < 30) return false;
        }
        return true;
      },
      50'000'000));
  EXPECT_TRUE(svc.replicas_consistent());
  // All replicas hold the same 3 keys with byte-identical values.
  for (ProcessId p : sys.correct_ids()) {
    auto& kv = static_cast<KvStore&>(svc.machine(p));
    EXPECT_EQ(kv.size(), 3u);
    EXPECT_EQ(kv.state_digest(),
              static_cast<KvStore&>(svc.machine(0)).state_digest());
  }
}

TEST(ReplicatedService, CasLinearizesAcrossReplicas) {
  // Two replicas race CAS("lock", "" -> own id). Exactly one must win at
  // every replica, and it must be the SAME winner everywhere.
  core::SystemConfig cfg;
  cfg.committee = Committee::for_f(1);
  cfg.seed = 78;
  cfg.rbc_kind = rbc::RbcKind::kOracle;
  cfg.builder.auto_blocks = true;
  cfg.builder.auto_block_size = 0;
  core::System sys(std::move(cfg));
  ReplicatedService svc(sys, [] { return std::make_unique<KvStore>(); });

  KvCommand init;
  init.op = KvCommand::Op::kPut;
  init.key = "lock";
  init.value = bytes_of("free");
  svc.submit(0, 1, init.encode());
  for (ProcessId p = 1; p <= 2; ++p) {
    KvCommand cas;
    cas.op = KvCommand::Op::kCas;
    cas.key = "lock";
    cas.expected = bytes_of("free");
    cas.value = Bytes{static_cast<std::uint8_t>(p)};
    svc.submit(p, 1 + p, cas.encode());
  }
  sys.start();
  svc.start();
  ASSERT_TRUE(sys.simulator().run_until(
      [&] {
        for (ProcessId p : sys.correct_ids()) {
          if (svc.machine(p).applied_count() < 2) return false;  // put + 1 cas
        }
        return true;
      },
      50'000'000));
  EXPECT_TRUE(svc.replicas_consistent());
  auto& kv0 = static_cast<KvStore&>(svc.machine(0));
  const auto lock_value = kv0.get("lock");
  ASSERT_TRUE(lock_value.has_value());
  EXPECT_NE(*lock_value, bytes_of("free"));  // someone won
  for (ProcessId p : sys.correct_ids()) {
    EXPECT_EQ(static_cast<KvStore&>(svc.machine(p)).get("lock"), lock_value);
  }
}

}  // namespace
}  // namespace dr::app
