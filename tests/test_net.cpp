// Wire-transport tests: frame codec round-trips and negative cases
// (truncation, oversized length prefix, unknown channel, bad source),
// handshake validation (version/magic mismatch), inbox backpressure
// semantics, and live exchange over both real transports (in-process and
// TCP loopback). The TCP cases also poke the handshake rejection path with
// a raw socket speaking the wrong protocol.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>

#include "common/rng.hpp"
#include "crypto/sha256.hpp"
#include "net/frame.hpp"
#include "net/inbox.hpp"
#include "net/inproc.hpp"
#include "net/tcp.hpp"

namespace dr::net {
namespace {

Bytes random_bytes(Xoshiro256& rng, std::size_t max_len) {
  Bytes out(rng.below(max_len + 1));
  for (auto& b : out) b = static_cast<std::uint8_t>(rng());
  return out;
}

TEST(FrameCodec, RoundTripWholeAndByteAtATime) {
  Xoshiro256 rng(11);
  for (int i = 0; i < 200; ++i) {
    const auto from = static_cast<ProcessId>(rng.below(7));
    const Channel ch = static_cast<Channel>(1 + rng.below(kChannelCount - 1));
    const Bytes payload = random_bytes(rng, 300);
    const Bytes wire = encode_frame(from, ch, BytesView(payload));
    ASSERT_EQ(wire.size(), kFrameHeaderBytes + payload.size());

    FrameDecoder whole(7);
    whole.feed(BytesView(wire));
    auto f = whole.next();
    ASSERT_TRUE(f.has_value());
    EXPECT_EQ(f->from, from);
    EXPECT_EQ(f->channel, ch);
    EXPECT_EQ(f->payload.to_bytes(), payload);
    EXPECT_FALSE(whole.next().has_value());
    EXPECT_FALSE(whole.dead());

    FrameDecoder dribble(7);
    for (std::uint8_t b : wire) dribble.feed(BytesView{&b, 1});
    f = dribble.next();
    ASSERT_TRUE(f.has_value());
    EXPECT_EQ(f->payload.to_bytes(), payload);
  }
}

TEST(FrameCodec, TruncatedFrameIsIncompleteNotDead) {
  const Bytes wire = encode_frame(2, Channel::kBracha, Bytes{1, 2, 3, 4, 5});
  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    FrameDecoder d(4);
    d.feed(BytesView{wire.data(), cut});
    EXPECT_FALSE(d.next().has_value()) << "cut=" << cut;
    EXPECT_FALSE(d.dead()) << "cut=" << cut;
    // The rest of the bytes complete the frame.
    d.feed(BytesView{wire.data() + cut, wire.size() - cut});
    EXPECT_TRUE(d.next().has_value()) << "cut=" << cut;
  }
}

TEST(FrameCodec, OversizedLengthPrefixKillsDecoder) {
  ByteWriter w;
  w.u32(kMaxFramePayload + 1);
  w.u32(0);
  w.u32(static_cast<std::uint32_t>(Channel::kBracha));
  FrameDecoder d(4);
  d.feed(BytesView(w.bytes()));
  EXPECT_FALSE(d.next().has_value());
  EXPECT_TRUE(d.dead());
  EXPECT_FALSE(d.error().empty());
  // A dead decoder stays dead.
  d.feed(BytesView(encode_frame(0, Channel::kBracha, Bytes{})));
  EXPECT_FALSE(d.next().has_value());
}

TEST(FrameCodec, UnknownChannelKillsDecoder) {
  ByteWriter w;
  w.u32(0);
  w.u32(1);
  w.u32(kChannelCount + 5);
  FrameDecoder d(4);
  d.feed(BytesView(w.bytes()));
  EXPECT_FALSE(d.next().has_value());
  EXPECT_TRUE(d.dead());
}

TEST(FrameCodec, OutOfRangeSourceKillsDecoder) {
  const Bytes wire = encode_frame(9, Channel::kGossip, Bytes{42});
  FrameDecoder d(4);  // valid sources 0..3
  d.feed(BytesView(wire));
  EXPECT_FALSE(d.next().has_value());
  EXPECT_TRUE(d.dead());

  FrameDecoder unchecked(0);  // n = 0 disables the check
  unchecked.feed(BytesView(wire));
  EXPECT_TRUE(unchecked.next().has_value());
}

TEST(FrameCodec, DecoderSurvivesRandomGarbage) {
  Xoshiro256 rng(13);
  for (int i = 0; i < 5'000; ++i) {
    FrameDecoder d(4);
    d.feed(BytesView(random_bytes(rng, 100)));
    while (d.next().has_value()) {
    }
    // Either dead or waiting for more bytes; never crash.
  }
}

// ---------------------------------------------------------------------------
// Payload: the refcounted immutable buffer the whole messaging stack shares.

TEST(Payload, WindowSharesBufferWithoutCopying) {
  Bytes data(1000);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i);
  }
  const Bytes expect = data;
  Payload::reset_copy_counters();
  const Payload whole(std::move(data));
  const Payload mid = whole.window(100, 500);
  EXPECT_EQ(Payload::copy_count(), 0u);  // windows never copy
  ASSERT_EQ(mid.size(), 500u);
  EXPECT_EQ(mid.data()[0], expect[100]);
  EXPECT_EQ(mid.data(), whole.data() + 100);  // same underlying storage
}

TEST(Payload, WindowOutlivesParentPayload) {
  // The window holds a reference on the shared buffer: dropping every other
  // handle must not invalidate it (ASan would flag a dangling view here).
  Payload window;
  {
    Bytes data(256, 0x5A);
    Payload whole(std::move(data));
    window = whole.window(64, 128);
  }
  ASSERT_EQ(window.size(), 128u);
  for (std::size_t i = 0; i < window.size(); ++i) {
    ASSERT_EQ(window.data()[i], 0x5A);
  }
}

TEST(Payload, DigestIsMemoizedPerWindow) {
  Bytes data(300, 0x77);
  const Payload p(std::move(data));
  const crypto::Digest d1 = p.digest();
  const crypto::Digest d2 = p.digest();
  EXPECT_EQ(d1, d2);
  Bytes same(300, 0x77);
  EXPECT_EQ(d1, crypto::sha256(BytesView(same)));
  // A window hashes only its slice, not the parent range.
  const Payload w = p.window(10, 100);
  Bytes slice(100, 0x77);
  EXPECT_EQ(w.digest(), crypto::sha256(BytesView(slice)));
}

TEST(Payload, ToBytesCopiesAndCounts) {
  Bytes data{1, 2, 3, 4};
  const Payload p(std::move(data));
  Payload::reset_copy_counters();
  const Bytes out = p.to_bytes();
  EXPECT_EQ(out, (Bytes{1, 2, 3, 4}));
  EXPECT_EQ(Payload::copy_count(), 1u);
  EXPECT_EQ(Payload::copied_bytes(), 4u);
}

// ---------------------------------------------------------------------------
// Aliasing: once bytes enter the messaging layer, nothing the caller does to
// its own storage may change what peers decode.

TEST(InProc, SenderMutationAfterSendDoesNotReachReceiver) {
  const Committee committee = Committee::for_f(1);
  InProcNetwork network(committee);
  auto sender = network.endpoint(0);
  auto receiver = network.endpoint(1);
  std::mutex mu;
  std::vector<Bytes> got;
  receiver->start([&](Frame f) {
    std::lock_guard<std::mutex> lk(mu);
    got.push_back(f.payload.to_bytes());
  });
  sender->start([](Frame) {});

  Bytes block(64, 0xAA);
  sender->send(1, Channel::kGossip, std::move(block));
  // The moved-from vector is fair game for the caller: reuse and refill it.
  block.assign(64, 0xEE);
  sender->send(1, Channel::kGossip, std::move(block));
  block.assign(64, 0x00);  // mutate again after the second send

  {
    std::lock_guard<std::mutex> lk(mu);
    ASSERT_EQ(got.size(), 2u);
    EXPECT_EQ(got[0], Bytes(64, 0xAA));
    EXPECT_EQ(got[1], Bytes(64, 0xEE));
  }
  sender->stop();
  receiver->stop();
}

TEST(InProc, BroadcastPayloadIsSharedNotCopied) {
  const Committee committee = Committee::for_f(1);
  InProcNetwork network(committee);
  std::vector<std::unique_ptr<Transport>> eps;
  for (ProcessId pid = 0; pid < committee.n; ++pid) {
    eps.push_back(network.endpoint(pid));
  }
  std::mutex mu;
  std::vector<const std::uint8_t*> seen_ptrs;
  for (ProcessId pid = 0; pid < committee.n; ++pid) {
    eps[pid]->start([&](Frame f) {
      std::lock_guard<std::mutex> lk(mu);
      seen_ptrs.push_back(f.payload.data());
    });
  }
  const Payload shared(Bytes(512, 0x42));
  Payload::reset_copy_counters();
  for (ProcessId to = 0; to < committee.n; ++to) {
    eps[0]->send(to, Channel::kGossip, shared);
  }
  {
    std::lock_guard<std::mutex> lk(mu);
    ASSERT_EQ(seen_ptrs.size(), committee.n);
    for (const std::uint8_t* p : seen_ptrs) {
      EXPECT_EQ(p, shared.data());  // every recipient sees the one buffer
    }
  }
  EXPECT_EQ(Payload::copy_count(), 0u);
  for (auto& ep : eps) ep->stop();
}

TEST(Handshake, RoundTrip) {
  Handshake hs;
  hs.pid = 3;
  hs.n = 7;
  hs.f = 2;
  const Bytes wire = encode_handshake(hs);
  ASSERT_EQ(wire.size(), kHandshakeWireBytes);
  auto back = decode_handshake(BytesView(wire));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().pid, 3u);
  EXPECT_EQ(back.value().n, 7u);
  EXPECT_EQ(back.value().f, 2u);
}

TEST(Handshake, RejectsTruncationBadMagicAndVersionMismatch) {
  Handshake hs;
  hs.pid = 1;
  hs.n = 4;
  hs.f = 1;
  const Bytes wire = encode_handshake(hs);

  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    EXPECT_FALSE(decode_handshake(BytesView{wire.data(), cut}).ok());
  }

  Bytes bad_magic = wire;
  bad_magic[0] ^= 0xFF;
  EXPECT_FALSE(decode_handshake(BytesView(bad_magic)).ok());

  Handshake future = hs;
  future.version = kWireVersion + 1;
  EXPECT_FALSE(decode_handshake(BytesView(encode_handshake(future))).ok());
}

TEST(InboxTest, MpscStressDeliversEverything) {
  Inbox inbox(1 << 12);
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 5'000;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&inbox, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        Bytes payload(8);
        payload[0] = static_cast<std::uint8_t>(p);
        inbox.push(Frame{static_cast<ProcessId>(p), Channel::kBracha,
                         std::move(payload)});
      }
    });
  }
  std::vector<Frame> got;
  std::vector<Frame> batch;
  while (got.size() < kProducers * kPerProducer) {
    batch.clear();
    (void)inbox.pop_all(batch, std::chrono::milliseconds(10));
    for (auto& f : batch) got.push_back(std::move(f));
  }
  for (auto& t : producers) t.join();
  EXPECT_EQ(got.size(), static_cast<std::size_t>(kProducers * kPerProducer));
}

TEST(InboxTest, OverflowGraceForcesThroughInsteadOfDeadlocking) {
  Inbox inbox(2, std::chrono::milliseconds(5));
  for (int i = 0; i < 5; ++i) {
    inbox.push(Frame{0, Channel::kBracha, Bytes{}});  // no consumer draining
  }
  EXPECT_EQ(inbox.size(), 5u);
  EXPECT_GE(inbox.overflows(), 3u);
}

TEST(InboxTest, CloseUnblocksProducerAndConsumer) {
  Inbox inbox(1);
  inbox.push(Frame{0, Channel::kBracha, Bytes{}});
  std::thread closer([&inbox] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    inbox.close();
  });
  std::vector<Frame> batch;
  (void)inbox.pop_all(batch, std::chrono::milliseconds(10));  // drains one frame
  (void)inbox.pop_all(batch, std::chrono::milliseconds(10'000));  // close() wakes
  closer.join();
  inbox.push(Frame{0, Channel::kBracha, Bytes{}});  // no-op after close
  EXPECT_EQ(inbox.size(), 0u);
}

TEST(InProc, EndpointsExchangeFrames) {
  const Committee committee = Committee::for_f(1);
  InProcNetwork network(committee);
  std::vector<std::unique_ptr<Transport>> eps;
  for (ProcessId pid = 0; pid < committee.n; ++pid) {
    eps.push_back(network.endpoint(pid));
  }
  std::mutex mu;
  std::vector<std::vector<Frame>> got(committee.n);
  for (ProcessId pid = 0; pid < committee.n; ++pid) {
    eps[pid]->start([&, pid](Frame f) {
      std::lock_guard<std::mutex> lk(mu);
      got[pid].push_back(std::move(f));
    });
  }
  for (ProcessId from = 0; from < committee.n; ++from) {
    for (ProcessId to = 0; to < committee.n; ++to) {
      eps[from]->send(to, Channel::kGossip, Bytes{static_cast<std::uint8_t>(from)});
    }
  }
  // In-proc delivery is synchronous with send, so everything is in.
  {
    std::lock_guard<std::mutex> lk(mu);
    for (ProcessId pid = 0; pid < committee.n; ++pid) {
      EXPECT_EQ(got[pid].size(), committee.n);
    }
  }
  for (auto& ep : eps) ep->stop();
}

TEST(Tcp, LoopbackClusterExchangesFrames) {
  const Committee committee = Committee::for_f(1);
  const auto ports = pick_free_ports(committee.n);
  std::vector<TcpPeer> peers;
  for (auto p : ports) peers.push_back(TcpPeer{"127.0.0.1", p});

  std::vector<std::unique_ptr<TcpTransport>> eps;
  for (ProcessId pid = 0; pid < committee.n; ++pid) {
    eps.push_back(std::make_unique<TcpTransport>(committee, pid, peers));
  }
  std::mutex mu;
  std::vector<std::vector<Frame>> got(committee.n);
  for (ProcessId pid = 0; pid < committee.n; ++pid) {
    eps[pid]->start([&, pid](Frame f) {
      std::lock_guard<std::mutex> lk(mu);
      got[pid].push_back(std::move(f));
    });
  }
  constexpr int kPerPair = 50;
  for (int i = 0; i < kPerPair; ++i) {
    for (ProcessId from = 0; from < committee.n; ++from) {
      for (ProcessId to = 0; to < committee.n; ++to) {
        Bytes payload{static_cast<std::uint8_t>(from),
                      static_cast<std::uint8_t>(i)};
        eps[from]->send(to, Channel::kBracha, std::move(payload));
      }
    }
  }
  const std::size_t expect = committee.n * kPerPair;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  for (;;) {
    {
      std::lock_guard<std::mutex> lk(mu);
      std::size_t done = 0;
      for (ProcessId pid = 0; pid < committee.n; ++pid) {
        if (got[pid].size() >= expect) ++done;
      }
      if (done == committee.n) break;
    }
    ASSERT_LT(std::chrono::steady_clock::now(), deadline) << "tcp exchange stalled";
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  for (auto& ep : eps) ep->stop();
  {
    std::lock_guard<std::mutex> lk(mu);
    for (ProcessId pid = 0; pid < committee.n; ++pid) {
      EXPECT_EQ(got[pid].size(), expect);
      for (const Frame& f : got[pid]) {
        EXPECT_EQ(f.payload.data()[0], f.from);
      }
    }
  }
}

TEST(Tcp, SenderMutationAfterSendDoesNotReachReceiver) {
  // The TCP writer queues the payload by reference (shared buffer) and
  // writes it from another thread later; the caller reusing its vector in
  // the meantime must not corrupt the frame on the wire.
  const Committee committee = Committee::for_f(1);
  const auto ports = pick_free_ports(committee.n);
  std::vector<TcpPeer> peers;
  for (auto p : ports) peers.push_back(TcpPeer{"127.0.0.1", p});

  std::vector<std::unique_ptr<TcpTransport>> eps;
  for (ProcessId pid = 0; pid < committee.n; ++pid) {
    eps.push_back(std::make_unique<TcpTransport>(committee, pid, peers));
  }
  std::mutex mu;
  std::vector<Bytes> got;
  for (ProcessId pid = 0; pid < committee.n; ++pid) {
    eps[pid]->start([&, pid](Frame f) {
      if (pid != 1) return;
      std::lock_guard<std::mutex> lk(mu);
      got.push_back(f.payload.to_bytes());
    });
  }
  constexpr std::size_t kFrames = 200;
  Bytes scratch;
  for (std::size_t i = 0; i < kFrames; ++i) {
    scratch.assign(256, static_cast<std::uint8_t>(i));
    eps[0]->send(1, Channel::kBracha, std::move(scratch));
    // Immediately reuse the (moved-from) vector with conflicting content
    // while the writer thread may still be draining the queue.
    scratch.assign(256, 0xFF);
  }
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (true) {
    {
      std::lock_guard<std::mutex> lk(mu);
      if (got.size() >= kFrames) break;
    }
    ASSERT_LT(std::chrono::steady_clock::now(), deadline) << "tcp exchange stalled";
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  for (auto& ep : eps) ep->stop();
  {
    std::lock_guard<std::mutex> lk(mu);
    ASSERT_EQ(got.size(), kFrames);
    for (std::size_t i = 0; i < kFrames; ++i) {
      EXPECT_EQ(got[i], Bytes(256, static_cast<std::uint8_t>(i))) << "frame " << i;
    }
  }
}

TEST(Tcp, RejectsBadHandshake) {
  const Committee committee = Committee::for_f(1);
  const auto ports = pick_free_ports(committee.n);
  std::vector<TcpPeer> peers;
  for (auto p : ports) peers.push_back(TcpPeer{"127.0.0.1", p});

  TcpTransport ep(committee, 0, peers);
  ep.start([](Frame) {});

  // Raw client speaking a future protocol version: the handshake must be
  // rejected and counted, and the link must be closed by the server.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(ports[0]);
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);

  Handshake bad;
  bad.version = kWireVersion + 7;
  bad.pid = 1;
  bad.n = committee.n;
  bad.f = committee.f;
  const Bytes wire = encode_handshake(bad);
  ASSERT_EQ(::send(fd, wire.data(), wire.size(), 0),
            static_cast<ssize_t>(wire.size()));

  // The server closes the connection: recv sees EOF (or reset).
  std::uint8_t buf[16];
  const ssize_t r = ::recv(fd, buf, sizeof(buf), 0);
  EXPECT_LE(r, 0);
  ::close(fd);

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (ep.protocol_errors() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GE(ep.protocol_errors(), 1u);
  ep.stop();
}

}  // namespace
}  // namespace dr::net
