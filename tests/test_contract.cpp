// Death tests for the protocol contracts (src/core/contract.hpp): prove the
// macros actually fire on safety-violating states, not just compile. In
// builds where contracts are compiled out (optimized release without
// DAGRIDER_PARANOID) the tests skip — the paranoid CI job is the one that
// exercises them.
#include <gtest/gtest.h>

#include "core/contract.hpp"
#include "core/ordering.hpp"
#include "dag/dag.hpp"
#include "dag/vertex.hpp"

namespace dr {
namespace {

dag::Vertex forged_vertex(ProcessId source, Round round,
                          std::vector<ProcessId> strong) {
  dag::Vertex v;
  v.source = source;
  v.round = round;
  v.block = Bytes{0xBA, 0xD0};
  v.strong_edges = std::move(strong);
  return v;
}

TEST(ContractDeath, ForgedVertexWithOnly2fStrongEdgesAborts) {
  if (!DR_CONTRACTS_ENABLED) {
    GTEST_SKIP() << "contracts compiled out in this build";
  }
  // f=1: quorum is 3, so two strong edges is exactly the 2f forgery the
  // validate() gate upstream must never let through (Lemma 4 relies on
  // 2f+1-sized strong supports intersecting in a correct process).
  dag::Dag d(Committee::for_f(1));
  EXPECT_DEATH(d.insert(forged_vertex(0, 1, {0, 1})),
               "fewer than 2f\\+1 strong edges");
}

TEST(ContractDeath, QuorumSizedVertexInsertsCleanly) {
  // Control: the contract must not fire on the legal 2f+1 case.
  dag::Dag d(Committee::for_f(1));
  d.insert(forged_vertex(0, 1, {0, 1, 2}));
  EXPECT_TRUE(d.contains(dag::VertexId{0, 1}));
}

TEST(ContractDeath, OutOfOrderWaveCommitAborts) {
  if (!DR_CONTRACTS_ENABLED) {
    GTEST_SKIP() << "contracts compiled out in this build";
  }
  core::WaveCommitMonotone monotone;
  monotone.on_decide(2);
  // Deciding wave 1 after wave 2 would re-order committed leader sequences
  // across processes (Alg. 3 line 44 walks decided waves in order).
  EXPECT_DEATH(monotone.on_decide(1), "wave decided out of order");
}

TEST(ContractDeath, RepeatedWaveCommitAborts) {
  if (!DR_CONTRACTS_ENABLED) {
    GTEST_SKIP() << "contracts compiled out in this build";
  }
  core::WaveCommitMonotone monotone;
  monotone.on_decide(3);
  EXPECT_DEATH(monotone.on_decide(3), "wave decided out of order");
}

TEST(ContractDeath, MonotoneCommitSequenceIsClean) {
  core::WaveCommitMonotone monotone;
  monotone.on_decide(1);
  monotone.on_decide(2);
  monotone.on_decide(5);  // gaps are fine; regressions are not
  SUCCEED();
}

}  // namespace
}  // namespace dr
