// Tests: transaction blocks, mempool semantics, and the end-to-end client
// workload (submit -> batch -> BAB -> latency accounting).
#include <gtest/gtest.h>

#include "txpool/client.hpp"
#include "txpool/mempool.hpp"

namespace dr::txpool {
namespace {

Transaction make_tx(std::uint64_t id, std::size_t size = 8) {
  Transaction tx;
  tx.id = id;
  tx.submit_time = id * 10;
  tx.payload.assign(size, static_cast<std::uint8_t>(id));
  return tx;
}

TEST(TxBlock, EncodeDecodeRoundTrip) {
  std::vector<Transaction> txs;
  for (std::uint64_t i = 1; i <= 5; ++i) txs.push_back(make_tx(i, 16 + i));
  const Bytes block = encode_block(txs);
  auto back = decode_block(block);
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back.value().size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(back.value()[i].id, txs[i].id);
    EXPECT_EQ(back.value()[i].submit_time, txs[i].submit_time);
    EXPECT_EQ(back.value()[i].payload, txs[i].payload);
  }
}

TEST(TxBlock, EmptyBlockRoundTrips) {
  const Bytes block = encode_block({});
  auto back = decode_block(block);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back.value().empty());
}

TEST(TxBlock, RejectsForeignBytes) {
  EXPECT_FALSE(decode_block(Bytes{}).ok());
  EXPECT_FALSE(decode_block(Bytes{1, 2, 3, 4}).ok());
  EXPECT_FALSE(decode_block(Bytes(64, 0xAB)).ok());  // auto-block filler
  // Truncated real block.
  Bytes block = encode_block({make_tx(1)});
  block.resize(block.size() - 3);
  EXPECT_FALSE(decode_block(block).ok());
}

TEST(Mempool, FifoBatchingAndDedup) {
  Mempool pool;
  for (std::uint64_t i = 1; i <= 10; ++i) EXPECT_TRUE(pool.submit(make_tx(i)));
  EXPECT_FALSE(pool.submit(make_tx(3)));  // duplicate
  EXPECT_EQ(pool.rejected_duplicates(), 1u);
  EXPECT_EQ(pool.pending(), 10u);

  auto block = decode_block(pool.next_block(4));
  ASSERT_TRUE(block.ok());
  ASSERT_EQ(block.value().size(), 4u);
  EXPECT_EQ(block.value()[0].id, 1u);  // FIFO
  EXPECT_EQ(block.value()[3].id, 4u);
  EXPECT_EQ(pool.pending(), 6u);
}

TEST(Mempool, OverflowBackpressure) {
  Mempool pool(3);
  for (std::uint64_t i = 1; i <= 3; ++i) EXPECT_TRUE(pool.submit(make_tx(i)));
  EXPECT_FALSE(pool.submit(make_tx(4)));
  EXPECT_EQ(pool.rejected_overflow(), 1u);
}

TEST(Mempool, DeliveredTransactionsAreNotReproposed) {
  Mempool pool;
  for (std::uint64_t i = 1; i <= 6; ++i) pool.submit(make_tx(i));
  // Transactions 2 and 3 get ordered via another process's block.
  pool.observe_delivered({make_tx(2), make_tx(3)});
  auto block = decode_block(pool.next_block(10));
  ASSERT_TRUE(block.ok());
  std::vector<std::uint64_t> ids;
  for (const auto& tx : block.value()) ids.push_back(tx.id);
  EXPECT_EQ(ids, (std::vector<std::uint64_t>{1, 4, 5, 6}));
  // And a delivered id cannot be resubmitted either.
  EXPECT_FALSE(pool.submit(make_tx(2)));
}

TEST(Mempool, EmptyPoolYieldsEmptyBlock) {
  Mempool pool;
  EXPECT_TRUE(pool.next_block(5).empty());
  pool.submit(make_tx(1));
  pool.observe_delivered({make_tx(1)});
  EXPECT_TRUE(pool.next_block(5).empty());  // everything already delivered
}

// ---------------------------------------------------------------------------
// End-to-end workload over the full stack.

TEST(ClientSwarm, TransactionsCommitWithMeasuredLatency) {
  core::SystemConfig cfg;
  cfg.committee = Committee::for_f(1);
  cfg.seed = 17;
  cfg.rbc_kind = rbc::RbcKind::kBracha;
  cfg.builder.auto_blocks = true;  // pad rounds when pools run dry
  cfg.builder.auto_block_size = 0;
  core::System sys(std::move(cfg));

  WorkloadConfig wl;
  wl.tx_per_tick = 0.2;
  wl.tx_payload = 32;
  wl.batch_max = 16;
  ClientSwarm swarm(sys, wl, 5);
  sys.start();
  swarm.start();

  ASSERT_TRUE(sys.simulator().run_until(
      [&] { return swarm.committed() >= 100; }, 30'000'000));
  EXPECT_GE(swarm.submitted(), swarm.committed());
  EXPECT_EQ(swarm.latency().count(), swarm.committed());
  EXPECT_GT(swarm.latency().mean(), 0.0);
  // Sanity: p95 latency is some small multiple of a wave.
  EXPECT_LT(swarm.latency().percentile(0.95), 30'000.0);
}

TEST(ClientSwarm, RedundantSubmissionCommitsOnceDespiteCrash) {
  core::SystemConfig cfg;
  cfg.committee = Committee::for_f(1);
  cfg.seed = 18;
  cfg.rbc_kind = rbc::RbcKind::kOracle;
  cfg.builder.auto_blocks = true;
  cfg.builder.auto_block_size = 0;
  cfg.faults.assign(4, core::FaultKind::kNone);
  cfg.faults[3] = core::FaultKind::kCrash;
  core::System sys(std::move(cfg));

  WorkloadConfig wl;
  wl.tx_per_tick = 0.1;
  wl.submit_copies = 2;  // each tx lands at 2 processes
  ClientSwarm swarm(sys, wl, 6);
  sys.start();
  swarm.start();
  ASSERT_TRUE(sys.simulator().run_until(
      [&] { return swarm.committed() >= 50; }, 30'000'000));
  // Unique commits never exceed submissions (no double counting of the
  // redundant copy).
  EXPECT_LE(swarm.committed(), swarm.submitted());
}

}  // namespace
}  // namespace dr::txpool
