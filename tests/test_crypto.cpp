// Unit tests: SHA-256 (FIPS 180-4 vectors), GF(256), Field61, Shamir.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "crypto/field61.hpp"
#include "crypto/gf256.hpp"
#include "crypto/sha256.hpp"
#include "crypto/shamir.hpp"

namespace dr::crypto {
namespace {

std::string hex(const Digest& d) { return to_hex(BytesView{d.data(), d.size()}); }

TEST(Sha256, FipsVectorEmpty) {
  EXPECT_EQ(hex(sha256(std::string_view{})),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, FipsVectorAbc) {
  EXPECT_EQ(hex(sha256(std::string_view{"abc"})),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, FipsVectorTwoBlocks) {
  EXPECT_EQ(hex(sha256(std::string_view{
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"})),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 ctx;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) ctx.update(chunk);
  EXPECT_EQ(hex(ctx.finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShotAtAllSplitPoints) {
  const std::string msg = "the quick brown fox jumps over the lazy dog 0123456789";
  const Digest want = sha256(msg);
  for (std::size_t split = 0; split <= msg.size(); ++split) {
    Sha256 ctx;
    ctx.update(std::string_view(msg).substr(0, split));
    ctx.update(std::string_view(msg).substr(split));
    EXPECT_EQ(ctx.finish(), want) << "split=" << split;
  }
}

TEST(Sha256, TaggedHashingSeparatesDomainsAndFieldBoundaries) {
  const Bytes a{1, 2}, b{3};
  const Bytes c{1}, d{2, 3};
  // Same concatenation, different field split -> different digest.
  EXPECT_NE(sha256_tagged("t", {a, b}), sha256_tagged("t", {c, d}));
  // Same fields, different tag -> different digest.
  EXPECT_NE(sha256_tagged("t1", {a, b}), sha256_tagged("t2", {a, b}));
}

TEST(Sha256, DigestPrefixIsStable) {
  const Digest d = sha256(std::string_view{"abc"});
  EXPECT_EQ(digest_prefix_u64(d), digest_prefix_u64(d));
  EXPECT_NE(digest_prefix_u64(d), 0u);
}

TEST(Sha256, BackendIsReported) {
  const char* backend = sha256_backend();
  ASSERT_NE(backend, nullptr);
  EXPECT_TRUE(std::string_view(backend) == "sha-ni" ||
              std::string_view(backend) == "scalar");
}

TEST(Sha256, DispatchedMatchesScalarOnRandomInputs) {
  // Bit-identity between the runtime-dispatched compression (SHA-NI when the
  // CPU has it) and the portable scalar path, across sizes that cover the
  // empty input, sub-block, exact-block, and multi-block cases.
  Xoshiro256 rng(20240805);
  for (int iter = 0; iter < 2000; ++iter) {
    const std::size_t len = static_cast<std::size_t>(rng.below(1024));
    Bytes msg(len);
    for (auto& b : msg) b = static_cast<std::uint8_t>(rng());
    const Digest fast = sha256(BytesView(msg));
    const Digest slow = sha256_portable(BytesView(msg));
    ASSERT_EQ(fast, slow) << "len=" << len;
  }
}

TEST(Sha256, ScalarBackendInstanceMatchesDefault) {
  const std::string msg(300, 'x');
  Sha256 fast;
  Sha256 slow(Sha256::Backend::kScalar);
  fast.update(msg);
  slow.update(msg);
  EXPECT_EQ(fast.finish(), slow.finish());
}

TEST(Sha256, BoundaryLengthsMatchScalar) {
  // Exercise every length around the 64-byte block boundary where the
  // padding/length-encoding logic and the multi-block fast path interact.
  for (std::size_t len = 0; len <= 260; ++len) {
    const Bytes msg(len, static_cast<std::uint8_t>(len));
    ASSERT_EQ(sha256(BytesView(msg)), sha256_portable(BytesView(msg)))
        << "len=" << len;
  }
}

TEST(GF256, AddIsXor) {
  EXPECT_EQ(GF256::add(0x57, 0x83), 0x57 ^ 0x83);
  EXPECT_EQ(GF256::add(0xFF, 0xFF), 0);
}

TEST(GF256, KnownProduct) {
  // 0x57 * 0x83 = 0xc1 in the AES field.
  EXPECT_EQ(GF256::mul(0x57, 0x83), 0xc1);
  EXPECT_EQ(GF256::mul(0, 0x42), 0);
  EXPECT_EQ(GF256::mul(1, 0x42), 0x42);
}

TEST(GF256, EveryNonzeroElementHasInverse) {
  for (int a = 1; a < 256; ++a) {
    const std::uint8_t inv = GF256::inv(static_cast<std::uint8_t>(a));
    EXPECT_EQ(GF256::mul(static_cast<std::uint8_t>(a), inv), 1) << "a=" << a;
  }
}

TEST(GF256, MulIsCommutativeAndAssociativeSpotChecks) {
  Xoshiro256 rng(11);
  for (int i = 0; i < 2000; ++i) {
    const auto a = static_cast<std::uint8_t>(rng());
    const auto b = static_cast<std::uint8_t>(rng());
    const auto c = static_cast<std::uint8_t>(rng());
    EXPECT_EQ(GF256::mul(a, b), GF256::mul(b, a));
    EXPECT_EQ(GF256::mul(GF256::mul(a, b), c), GF256::mul(a, GF256::mul(b, c)));
    // Distributivity over XOR-addition.
    EXPECT_EQ(GF256::mul(a, GF256::add(b, c)),
              GF256::add(GF256::mul(a, b), GF256::mul(a, c)));
  }
}

TEST(GF256, DivInvertsMul) {
  Xoshiro256 rng(12);
  for (int i = 0; i < 1000; ++i) {
    const auto a = static_cast<std::uint8_t>(rng());
    auto b = static_cast<std::uint8_t>(rng());
    if (b == 0) b = 1;
    EXPECT_EQ(GF256::div(GF256::mul(a, b), b), a);
  }
}

TEST(Field61, CanonicalReduction) {
  EXPECT_EQ(Field61::reduce(Field61::kP), 0u);
  EXPECT_EQ(Field61::reduce(Field61::kP + 5), 5u);
  EXPECT_EQ(Field61::reduce(UINT64_MAX), Field61::reduce(Field61::reduce(UINT64_MAX)));
  EXPECT_LT(Field61::reduce(UINT64_MAX), Field61::kP);
}

TEST(Field61, AddSubInverse) {
  Xoshiro256 rng(13);
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t a = Field61::reduce(rng());
    const std::uint64_t b = Field61::reduce(rng());
    EXPECT_EQ(Field61::sub(Field61::add(a, b), b), a);
  }
}

TEST(Field61, MulMatchesRepeatedAdd) {
  std::uint64_t acc = 0;
  const std::uint64_t x = 123456789;
  for (int i = 0; i < 100; ++i) acc = Field61::add(acc, x);
  EXPECT_EQ(acc, Field61::mul(x, 100));
}

TEST(Field61, FermatInverse) {
  Xoshiro256 rng(14);
  for (int i = 0; i < 200; ++i) {
    std::uint64_t a = Field61::reduce(rng());
    if (a == 0) a = 1;
    EXPECT_EQ(Field61::mul(a, Field61::inv(a)), 1u);
  }
}

TEST(Field61, PowLaws) {
  const std::uint64_t g = 3;
  EXPECT_EQ(Field61::pow(g, 0), 1u);
  EXPECT_EQ(Field61::pow(g, 1), g);
  EXPECT_EQ(Field61::mul(Field61::pow(g, 20), Field61::pow(g, 22)),
            Field61::pow(g, 42));
}

class ShamirParam : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(ShamirParam, ReconstructsFromAnyThresholdSubset) {
  const auto threshold = static_cast<std::uint32_t>(GetParam().first);
  const auto n = static_cast<std::uint32_t>(GetParam().second);
  Xoshiro256 rng(100 + threshold * 31ull + n);
  const std::uint64_t secret = Field61::reduce(rng());
  auto shares = Shamir::split(secret, threshold, n, rng);
  ASSERT_EQ(shares.size(), n);

  // Any contiguous window of `threshold` shares reconstructs.
  for (std::size_t start = 0; start + threshold <= n; ++start) {
    std::vector<crypto::ShamirShare> subset(
        shares.begin() + static_cast<std::ptrdiff_t>(start),
        shares.begin() + static_cast<std::ptrdiff_t>(start + threshold));
    EXPECT_EQ(Shamir::reconstruct(subset), secret);
  }
  // A random non-contiguous subset reconstructs too.
  std::vector<crypto::ShamirShare> subset;
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  for (std::size_t i = 0; i < threshold; ++i) {
    std::swap(idx[i], idx[i + rng.below(n - i)]);
    subset.push_back(shares[idx[i]]);
  }
  EXPECT_EQ(Shamir::reconstruct(subset), secret);
}

INSTANTIATE_TEST_SUITE_P(
    Thresholds, ShamirParam,
    ::testing::Values(std::pair{1, 4}, std::pair{2, 4}, std::pair{2, 7},
                      std::pair{3, 7}, std::pair{4, 10}, std::pair{5, 13},
                      std::pair{7, 20}));

TEST(Shamir, BelowThresholdRevealsNothingDeterministic) {
  // With threshold t, any t-1 shares are consistent with *every* secret:
  // interpolating t-1 shares plus a forged point (0, s') succeeds for any
  // s'. Verify by constructing the forgery explicitly.
  Xoshiro256 rng(77);
  const std::uint64_t secret = 123456;
  auto shares = Shamir::split(secret, 3, 7, rng);
  std::vector<crypto::ShamirShare> two(shares.begin(), shares.begin() + 2);

  for (std::uint64_t forged : {0ULL, 1ULL, 999999ULL}) {
    std::vector<crypto::ShamirShare> with_forgery = two;
    with_forgery.push_back(crypto::ShamirShare{0, 0});
    // A degree-2 polynomial through (x1,y1),(x2,y2),(0,forged) exists and
    // matches the two real shares — so the adversary cannot distinguish.
    with_forgery.back() = crypto::ShamirShare{9999, forged};
    const std::uint64_t candidate = Shamir::reconstruct(with_forgery);
    (void)candidate;  // all candidates are *valid* given only two shares
    SUCCEED();
  }
  // Sanity: the correct 3 shares do reconstruct the real secret.
  std::vector<crypto::ShamirShare> three(shares.begin(), shares.begin() + 3);
  EXPECT_EQ(Shamir::reconstruct(three), secret);
}

TEST(Shamir, InterpolateAtRecoversShares) {
  Xoshiro256 rng(55);
  const std::uint64_t secret = 42;
  auto shares = Shamir::split(secret, 4, 10, rng);
  std::vector<crypto::ShamirShare> basis(shares.begin(), shares.begin() + 4);
  // The polynomial through any 4 shares evaluates to every other share.
  for (const auto& s : shares) {
    EXPECT_EQ(Shamir::interpolate_at(basis, s.x), s.y);
  }
}

TEST(Shamir, WrongShareBreaksReconstruction) {
  Xoshiro256 rng(66);
  const std::uint64_t secret = 31337;
  auto shares = Shamir::split(secret, 3, 7, rng);
  std::vector<crypto::ShamirShare> subset(shares.begin(), shares.begin() + 3);
  subset[1].y = Field61::add(subset[1].y, 1);  // tampered share
  EXPECT_NE(Shamir::reconstruct(subset), secret);
}

}  // namespace
}  // namespace dr::crypto
