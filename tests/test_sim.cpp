// Unit tests: discrete-event simulator and simulated network, including the
// adaptive-corruption semantics the paper's adversary model requires.
#include <gtest/gtest.h>

#include "sim/adversary.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"

namespace dr::sim {
namespace {

TEST(Simulator, EventsRunInTimeOrder) {
  Simulator sim(1);
  std::vector<int> order;
  sim.schedule(30, [&] { order.push_back(3); });
  sim.schedule(10, [&] { order.push_back(1); });
  sim.schedule(20, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30u);
}

TEST(Simulator, TiesBreakByScheduleOrder) {
  Simulator sim(1);
  std::vector<int> order;
  sim.schedule(5, [&] { order.push_back(1); });
  sim.schedule(5, [&] { order.push_back(2); });
  sim.schedule(5, [&] { order.push_back(3); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, NestedSchedulingFromHandlers) {
  Simulator sim(1);
  std::vector<int> order;
  sim.schedule(10, [&] {
    order.push_back(1);
    sim.schedule(5, [&] { order.push_back(2); });
  });
  sim.schedule(12, [&] { order.push_back(3); });
  sim.run();
  // The nested event lands at t=15, after the t=12 event.
  EXPECT_EQ(order, (std::vector<int>{1, 3, 2}));
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim(1);
  bool ran = false;
  const std::uint64_t id = sim.schedule(10, [&] { ran = true; });
  sim.cancel(id);
  sim.run();
  EXPECT_FALSE(ran);
}

TEST(Simulator, RunUntilStopsAtPredicate) {
  Simulator sim(1);
  int count = 0;
  for (std::uint64_t i = 0; i < 10; ++i) sim.schedule(i + 1, [&] { ++count; });
  EXPECT_TRUE(sim.run_until([&] { return count == 5; }));
  EXPECT_EQ(count, 5);
  EXPECT_FALSE(sim.idle());
}

TEST(Simulator, RunUntilFalseWhenQueueDrains) {
  Simulator sim(1);
  sim.schedule(1, [] {});
  EXPECT_FALSE(sim.run_until([] { return false; }));
}

TEST(Simulator, MaxEventsBudget) {
  Simulator sim(1);
  for (std::uint64_t i = 0; i < 10; ++i) sim.schedule(i, [] {});
  EXPECT_EQ(sim.run(4), 4u);
  EXPECT_EQ(sim.run(), 6u);
}

class NetworkTest : public ::testing::Test {
 protected:
  NetworkTest()
      : sim_(7),
        net_(sim_, Committee::for_f(1), std::make_unique<UniformDelay>(1, 10)) {}

  Simulator sim_;
  Network net_;
};

TEST_F(NetworkTest, DeliversToSubscribedHandlerWithSender) {
  ProcessId got_from = kInvalidProcess;
  Bytes got;
  net_.subscribe(1, Channel::kApp,
                 [&](ProcessId from, const net::Payload& data) {
                   got_from = from;
                   got = data.to_bytes();
                 });
  net_.send(0, 1, Channel::kApp, Bytes{1, 2, 3});
  sim_.run();
  EXPECT_EQ(got_from, 0u);
  EXPECT_EQ(got, (Bytes{1, 2, 3}));
}

TEST_F(NetworkTest, ChannelsAreIsolated) {
  int app = 0, coin = 0;
  net_.subscribe(1, Channel::kApp, [&](ProcessId, const net::Payload&) { ++app; });
  net_.subscribe(1, Channel::kCoin, [&](ProcessId, const net::Payload&) { ++coin; });
  net_.send(0, 1, Channel::kApp, Bytes{1});
  net_.send(0, 1, Channel::kApp, Bytes{2});
  net_.send(0, 1, Channel::kCoin, Bytes{3});
  sim_.run();
  EXPECT_EQ(app, 2);
  EXPECT_EQ(coin, 1);
}

TEST_F(NetworkTest, BroadcastReachesEveryoneIncludingSelf) {
  int delivered = 0;
  for (ProcessId p = 0; p < 4; ++p) {
    net_.subscribe(p, Channel::kApp, [&](ProcessId, const net::Payload&) { ++delivered; });
  }
  net_.broadcast(2, Channel::kApp, Bytes{9});
  sim_.run();
  EXPECT_EQ(delivered, 4);
}

TEST_F(NetworkTest, TrafficAccounting) {
  net_.subscribe(1, Channel::kApp, [](ProcessId, const net::Payload&) {});
  net_.send(0, 1, Channel::kApp, Bytes(100, 0));
  net_.send(0, 1, Channel::kApp, Bytes(50, 0));
  sim_.run();
  EXPECT_EQ(net_.traffic(0).messages_sent, 2u);
  EXPECT_EQ(net_.traffic(0).bytes_sent, 150u);
  EXPECT_EQ(net_.traffic(1).messages_delivered, 2u);
  EXPECT_EQ(net_.traffic(1).bytes_delivered, 150u);
  EXPECT_EQ(net_.total_bytes_sent(), 150u);
  net_.reset_traffic();
  EXPECT_EQ(net_.total_bytes_sent(), 0u);
}

TEST_F(NetworkTest, HonestBytesExcludeCorrupted) {
  net_.subscribe(1, Channel::kApp, [](ProcessId, const net::Payload&) {});
  net_.send(0, 1, Channel::kApp, Bytes(100, 0));
  net_.send(3, 1, Channel::kApp, Bytes(40, 0));
  sim_.run();
  net_.corrupt(3);
  EXPECT_EQ(net_.total_bytes_sent(), 140u);
  EXPECT_EQ(net_.total_honest_bytes_sent(), 100u);
}

TEST_F(NetworkTest, CrashedProcessNeitherSendsNorReceives) {
  int got = 0;
  net_.subscribe(1, Channel::kApp, [&](ProcessId, const net::Payload&) { ++got; });
  net_.subscribe(2, Channel::kApp, [&](ProcessId, const net::Payload&) { ++got; });
  net_.crash(2);
  net_.send(2, 1, Channel::kApp, Bytes{1});  // from crashed: dropped
  net_.send(0, 2, Channel::kApp, Bytes{2});  // to crashed: dropped
  net_.send(0, 1, Channel::kApp, Bytes{3});  // unrelated: delivered
  sim_.run();
  EXPECT_EQ(got, 1);
}

TEST_F(NetworkTest, AdaptiveCorruptionDropsInFlightMessages) {
  // The paper's adversary: once it corrupts a process, it can drop messages
  // that process sent but that have not yet been delivered.
  int got = 0;
  net_.subscribe(1, Channel::kApp, [&](ProcessId, const net::Payload&) { ++got; });
  net_.send(0, 1, Channel::kApp, Bytes{1});  // in flight
  net_.corrupt(0);                           // corrupt before delivery
  sim_.run();
  EXPECT_EQ(got, 0);
}

TEST_F(NetworkTest, MessagesDeliveredBeforeCorruptionSurvive) {
  int got = 0;
  net_.subscribe(1, Channel::kApp, [&](ProcessId, const net::Payload&) { ++got; });
  net_.send(0, 1, Channel::kApp, Bytes{1});
  sim_.run();  // delivered
  net_.corrupt(0);
  EXPECT_EQ(got, 1);
}

TEST_F(NetworkTest, CorruptionBudgetEnforced) {
  net_.corrupt(0);
  EXPECT_DEATH(net_.corrupt(1), "corruption budget");
}

TEST(DelayModels, FixedSetDelaysVictims) {
  Xoshiro256 rng(1);
  FixedSetDelay d({0}, /*fast=*/10, /*slow=*/1000);
  for (int i = 0; i < 50; ++i) {
    EXPECT_GE(d.delay(0, 1, Channel::kApp, 10, 0, rng), 1000u);
    EXPECT_LE(d.delay(1, 0, Channel::kApp, 10, 0, rng), 11u);
  }
  EXPECT_GE(d.max_delay(), 1000u);
}

TEST(DelayModels, RotatingDelayMovesVictimSet) {
  Xoshiro256 rng(1);
  RotatingDelay d(4, 1, /*period=*/100, /*fast=*/10, /*slow=*/1000);
  // Phase 0: victim is process 0. Phase 1: victim is process 1.
  EXPECT_GE(d.delay(0, 1, Channel::kApp, 10, /*now=*/0, rng), 1000u);
  EXPECT_LE(d.delay(1, 0, Channel::kApp, 10, /*now=*/0, rng), 11u);
  EXPECT_GE(d.delay(1, 0, Channel::kApp, 10, /*now=*/100, rng), 1000u);
  EXPECT_LE(d.delay(0, 1, Channel::kApp, 10, /*now=*/100, rng), 11u);
}

TEST(DelayModels, PartitionHealsAtHealTime) {
  Xoshiro256 rng(1);
  PartitionDelay d({0, 1}, /*heal=*/1000, /*fast=*/10, /*extra=*/50);
  // Cross-partition before heal: delivery lands after the heal time.
  const SimTime cross = d.delay(0, 2, Channel::kApp, 10, /*now=*/0, rng);
  EXPECT_GE(cross, 1000u);
  // Same side: fast.
  EXPECT_LE(d.delay(0, 1, Channel::kApp, 10, /*now=*/0, rng), 11u);
  // After heal: fast everywhere.
  EXPECT_LE(d.delay(0, 2, Channel::kApp, 10, /*now=*/2000, rng), 11u);
}

TEST(DelayModels, TargetedDelayRetargets) {
  Xoshiro256 rng(1);
  TargetedDelay d(/*fast=*/10, /*slow=*/1000);
  EXPECT_LE(d.delay(2, 0, Channel::kApp, 10, 0, rng), 11u);
  d.add_victim(2);
  EXPECT_GE(d.delay(2, 0, Channel::kApp, 10, 0, rng), 1000u);
  d.clear_victims();
  EXPECT_LE(d.delay(2, 0, Channel::kApp, 10, 0, rng), 11u);
}

}  // namespace
}  // namespace dr::sim
