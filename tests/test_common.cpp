// Unit tests: common kernel (serialization, RNG, quorum math, Expected).
#include <gtest/gtest.h>

#include "common/bytes.hpp"
#include "common/expected.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"

namespace dr {
namespace {

TEST(Bytes, WriterReaderRoundTrip) {
  ByteWriter w;
  w.u8(0xAB);
  w.u16(0x1234);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFULL);
  w.blob(std::string_view{"hello"});
  Bytes raw = std::move(w).take();

  ByteReader r(raw);
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFULL);
  Bytes blob = r.blob();
  EXPECT_EQ(std::string(blob.begin(), blob.end()), "hello");
  EXPECT_TRUE(r.done());
}

TEST(Bytes, ReaderUnderflowSetsFailure) {
  ByteWriter w;
  w.u16(7);
  Bytes raw = std::move(w).take();
  ByteReader r(raw);
  (void)r.u64();  // too large
  EXPECT_FALSE(r.ok());
  EXPECT_FALSE(r.done());
  // Further reads stay failed and return zero.
  EXPECT_EQ(r.u32(), 0u);
  EXPECT_FALSE(r.ok());
}

TEST(Bytes, BlobWithTruncatedLengthFails) {
  ByteWriter w;
  w.u32(1000);  // claims 1000 bytes, provides none
  Bytes raw = std::move(w).take();
  ByteReader r(raw);
  Bytes blob = r.blob();
  EXPECT_TRUE(blob.empty());
  EXPECT_FALSE(r.ok());
}

TEST(Bytes, EmptyBlobRoundTrip) {
  ByteWriter w;
  w.blob(BytesView{});
  Bytes raw = std::move(w).take();
  ByteReader r(raw);
  EXPECT_TRUE(r.blob().empty());
  EXPECT_TRUE(r.done());
}

TEST(Bytes, ToHex) {
  const Bytes b{0x00, 0xff, 0x1a};
  EXPECT_EQ(to_hex(b), "00ff1a");
}

TEST(Rng, DeterministicAcrossInstances) {
  Xoshiro256 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Xoshiro256 a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 10; ++i) differing += a() != b() ? 1 : 0;
  EXPECT_GT(differing, 5);
}

TEST(Rng, BelowIsInRangeAndCoversRange) {
  Xoshiro256 rng(7);
  std::vector<int> seen(10, 0);
  for (int i = 0; i < 10'000; ++i) {
    const std::uint64_t v = rng.below(10);
    ASSERT_LT(v, 10u);
    seen[v]++;
  }
  for (int count : seen) EXPECT_GT(count, 700);  // roughly uniform
}

TEST(Rng, UniformInUnitInterval) {
  Xoshiro256 rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, ForkedStreamsAreIndependent) {
  Xoshiro256 parent(5);
  Xoshiro256 c1 = parent.fork(1);
  Xoshiro256 c2 = parent.fork(2);
  int differing = 0;
  for (int i = 0; i < 10; ++i) differing += c1() != c2() ? 1 : 0;
  EXPECT_GT(differing, 5);
}

TEST(Committee, QuorumArithmetic) {
  const Committee c = Committee::for_f(1);
  EXPECT_EQ(c.n, 4u);
  EXPECT_EQ(c.quorum(), 3u);
  EXPECT_EQ(c.small_quorum(), 2u);
  EXPECT_TRUE(c.valid());

  const Committee c10 = Committee::for_n(10);
  EXPECT_EQ(c10.f, 3u);
  EXPECT_TRUE(c10.valid());

  const Committee bad{3, 1};
  EXPECT_FALSE(bad.valid());
}

TEST(Waves, RoundWaveMapping) {
  // round(w, k) = 4(w-1) + k.
  EXPECT_EQ(wave_round(1, 1), 1u);
  EXPECT_EQ(wave_round(1, 4), 4u);
  EXPECT_EQ(wave_round(2, 1), 5u);
  EXPECT_EQ(wave_round(3, 4), 12u);
  for (Wave w = 1; w <= 20; ++w) {
    for (Round k = 1; k <= 4; ++k) {
      EXPECT_EQ(wave_of_round(wave_round(w, k)), w);
    }
  }
}

TEST(Expected, ValueAndFailurePaths) {
  Expected<int> ok(7);
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 7);

  auto bad = Expected<int>::failure("nope");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.error(), "nope");
}

}  // namespace
}  // namespace dr
