// Real-concurrency runtime cross-check: threaded clusters must satisfy the
// exact same log-level BAB auditors (core/audit.hpp) that judge the
// simulator's property sweeps. These tests are the designated targets of
// the sanitizer CI jobs — a 4-node in-process cluster pushing >=10k client
// transactions under TSan is the strongest evidence the runtime's
// thread-safety story (single-threaded stack, concurrency only at the
// inbox/mempool/log boundaries) actually holds.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>

#include "core/audit.hpp"
#include "net/tcp.hpp"
#include "node/cluster.hpp"
#include "node/node.hpp"
#include "txpool/transaction.hpp"

namespace dr::node {
namespace {

constexpr std::uint64_t kTxTarget = 10'000;

TEST(NodeRuntime, FourNodeClusterCommitsTenThousandTxs) {
  const Committee committee = Committee::for_f(1);
  NodeOptions opts;
  opts.seed = 42;
  opts.coin_mode = CoinMode::kPiggyback;
  Cluster cluster(committee, opts);

  // Per-node count of client transactions observed in a_delivered blocks.
  std::array<std::atomic<std::uint64_t>, 4> tx_seen{};
  for (ProcessId pid = 0; pid < committee.n; ++pid) {
    cluster.node(pid).set_app_deliver(
        [&tx_seen, pid](const Bytes& block, Round, ProcessId, std::uint64_t) {
          if (auto txs = txpool::decode_block(BytesView(block))) {
            tx_seen[pid].fetch_add(txs.value().size(),
                                   std::memory_order_relaxed);
          }
        });
  }

  cluster.start();

  // Clients: each transaction goes to exactly one node, round-robin.
  for (std::uint64_t id = 1; id <= kTxTarget; ++id) {
    txpool::Transaction tx;
    tx.id = id;
    tx.payload = Bytes(32, static_cast<std::uint8_t>(id));
    const ProcessId target = static_cast<ProcessId>(id % committee.n);
    tx.submit_time = cluster.node(target).now_us();
    ASSERT_TRUE(cluster.node(target).submit(std::move(tx)));
  }

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::minutes(3);
  for (;;) {
    bool all = true;
    for (ProcessId pid = 0; pid < committee.n; ++pid) {
      if (tx_seen[pid].load(std::memory_order_relaxed) < kTxTarget) {
        all = false;
        break;
      }
    }
    if (all) break;
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "cluster stalled: tx counts " << tx_seen[0] << " " << tx_seen[1]
        << " " << tx_seen[2] << " " << tx_seen[3];
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  cluster.stop();

  // Every node committed every client transaction...
  for (ProcessId pid = 0; pid < committee.n; ++pid) {
    EXPECT_GE(tx_seen[pid].load(), kTxTarget);
  }
  // ...and the logs pass the same auditors as the simulator sweeps.
  const auto violation =
      core::audit_logs(cluster.delivered_logs(), cluster.commit_logs());
  ASSERT_FALSE(violation.has_value()) << *violation;

  // Order actually progressed on all nodes (not just vacuous prefixes).
  for (const auto& log : cluster.delivered_logs()) {
    EXPECT_GE(log.size(), committee.n * 4u);
  }
}

TEST(NodeRuntime, ThresholdCoinOnWireAlsoAgrees) {
  // Same cluster but with coin shares broadcast on the dedicated channel
  // instead of piggybacked — exercises the kCoin wire path end to end.
  const Committee committee = Committee::for_f(1);
  NodeOptions opts;
  opts.seed = 7;
  opts.coin_mode = CoinMode::kThreshold;
  Cluster cluster(committee, opts);
  cluster.start();

  ASSERT_TRUE(cluster.wait_all_delivered(committee.n * 8ull,
                                         std::chrono::minutes(2)));
  cluster.stop();

  const auto violation =
      core::audit_logs(cluster.delivered_logs(), cluster.commit_logs());
  ASSERT_FALSE(violation.has_value()) << *violation;
}

TEST(NodeRuntime, ABcastBlocksAreOrderedEverywhere) {
  const Committee committee = Committee::for_f(1);
  NodeOptions opts;
  opts.seed = 9;
  Cluster cluster(committee, opts);
  cluster.start();

  // Raw a_bcast path (no mempool): distinctive payloads from every node.
  for (ProcessId pid = 0; pid < committee.n; ++pid) {
    for (int i = 0; i < 5; ++i) {
      Bytes block(64, static_cast<std::uint8_t>(0xA0 + pid));
      block[1] = static_cast<std::uint8_t>(i);
      cluster.node(pid).a_bcast(std::move(block));
    }
  }

  ASSERT_TRUE(cluster.wait_all_delivered(committee.n * 10ull,
                                         std::chrono::minutes(2)));
  cluster.stop();

  const auto violation =
      core::audit_logs(cluster.delivered_logs(), cluster.commit_logs());
  ASSERT_FALSE(violation.has_value()) << *violation;
  // The 64-byte a_bcast blocks reached the total order on every node.
  for (const auto& log : cluster.delivered_logs()) {
    std::size_t big = 0;
    for (const auto& rec : log) {
      if (rec.block_size == 64) ++big;
    }
    EXPECT_GE(big, 1u);
  }
}

TEST(NodeRuntime, TcpClusterReachesAgreement) {
  const Committee committee = Committee::for_f(1);
  const auto ports = net::pick_free_ports(committee.n);
  std::vector<net::TcpPeer> peers;
  for (auto p : ports) peers.push_back(net::TcpPeer{"127.0.0.1", p});

  NodeOptions opts;
  opts.seed = 21;
  opts.builder.auto_block_size = 16;
  const coin::CoinDealer dealer(opts.seed ^ coin::kDealerSeedTweak, committee);

  std::vector<std::unique_ptr<Node>> nodes;
  for (ProcessId pid = 0; pid < committee.n; ++pid) {
    nodes.push_back(std::make_unique<Node>(
        std::make_unique<net::TcpTransport>(committee, pid, peers), &dealer,
        opts));
  }
  for (auto& n : nodes) n->start();

  const std::uint64_t target = committee.n * 8ull;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::minutes(3);
  for (;;) {
    bool all = true;
    for (auto& n : nodes) {
      if (n->delivered_count() < target) {
        all = false;
        break;
      }
    }
    if (all) break;
    ASSERT_LT(std::chrono::steady_clock::now(), deadline) << "tcp cluster stalled";
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }

  for (auto& n : nodes) n->stop_loop();
  for (auto& n : nodes) n->stop_transport();

  std::vector<std::vector<core::DeliveredRecord>> delivered;
  std::vector<std::vector<core::CommitRecord>> commits;
  for (auto& n : nodes) {
    delivered.push_back(n->delivered_snapshot());
    commits.push_back(n->commits_snapshot());
  }
  const auto violation = core::audit_logs(delivered, commits);
  ASSERT_FALSE(violation.has_value()) << *violation;
}

}  // namespace
}  // namespace dr::node
