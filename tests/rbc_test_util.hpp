// Shared fixture for reliable-broadcast property tests: n instances of one
// RBC implementation on a simulated network, with per-process delivery logs.
#pragma once

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "rbc/factory.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"

namespace dr::rbc::testing {

struct DeliveryLog {
  struct Entry {
    ProcessId source;
    Round round;
    Bytes payload;
  };
  std::vector<Entry> entries;

  const Entry* find(ProcessId source, Round round) const {
    for (const Entry& e : entries) {
      if (e.source == source && e.round == round) return &e;
    }
    return nullptr;
  }
  int count(ProcessId source, Round round) const {
    int c = 0;
    for (const Entry& e : entries) {
      c += (e.source == source && e.round == round) ? 1 : 0;
    }
    return c;
  }
};

class RbcHarness {
 public:
  RbcHarness(Committee committee, RbcKind kind, std::uint64_t seed,
             sim::SimTime max_delay = 50, GossipParams gossip = {})
      : committee_(committee),
        sim_(seed),
        net_(sim_, committee, std::make_unique<sim::UniformDelay>(1, max_delay)) {
    const RbcFactory factory = make_factory(kind, gossip);
    logs_.resize(committee.n);
    for (ProcessId p = 0; p < committee.n; ++p) {
      instances_.push_back(factory(net_, p, seed));
      instances_.back()->set_deliver(
          [this, p](ProcessId source, Round r, net::Payload payload) {
            logs_[p].entries.push_back({source, r, payload.to_bytes()});
          });
    }
  }

  sim::Simulator& sim() { return sim_; }
  sim::Network& net() { return net_; }
  ReliableBroadcast& instance(ProcessId p) { return *instances_[p]; }
  const DeliveryLog& log(ProcessId p) const { return logs_[p]; }
  const Committee& committee() const { return committee_; }

  /// All processes the harness did not crash/corrupt.
  std::vector<ProcessId> correct_ids() const {
    std::vector<ProcessId> out;
    for (ProcessId p = 0; p < committee_.n; ++p) {
      if (!net_.is_corrupted(p)) out.push_back(p);
    }
    return out;
  }

 private:
  Committee committee_;
  sim::Simulator sim_;
  sim::Network net_;
  std::vector<std::unique_ptr<ReliableBroadcast>> instances_;
  std::vector<DeliveryLog> logs_;
};

}  // namespace dr::rbc::testing
