// Deterministic chaos harness tests (DESIGN.md §12): the seed-replay
// contract of net::ChaosPlan, the checked-in regression seeds, catch-up
// rejoin under injected kSync loss, partition/heal liveness, live Byzantine
// profiles, and the canary proving the soak harness actually catches
// violations and replays them from the printed seed.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>

#include "core/audit.hpp"
#include "net/chaos.hpp"
#include "node/cluster.hpp"
#include "node/soak.hpp"

namespace dr::node {
namespace {

std::string fresh_dir(const std::string& name) {
  const char* env = std::getenv("TEST_TMPDIR");
  const std::string base = env != nullptr ? env : testing::TempDir();
  const std::string dir = base + "/" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

std::uint64_t counter_value(const metrics::Counters& counters,
                            const std::string& name) {
  for (const auto& [key, value] : counters) {
    if (key == name) return value;
  }
  ADD_FAILURE() << "counter " << name << " missing";
  return 0;
}

// --- ChaosPlan: the seed-replay contract ---

TEST(ChaosPlan, SameSeedSamePlanAndSameFrameFates) {
  const auto a = net::ChaosPlan::randomized(12345, 7);
  const auto b = net::ChaosPlan::randomized(12345, 7);
  EXPECT_EQ(a.describe(), b.describe());
  // Frame fates are a pure function of (seed, from, to, channel, seq):
  // replaying a seed re-runs the exact adversarial schedule.
  for (std::uint64_t seq = 0; seq < 500; ++seq) {
    const auto da = a.decide(1, 2, net::Channel::kBracha, seq);
    const auto db = b.decide(1, 2, net::Channel::kBracha, seq);
    EXPECT_EQ(da.lost_attempts, db.lost_attempts);
    EXPECT_EQ(da.duplicate, db.duplicate);
    EXPECT_EQ(da.delay_us, db.delay_us);
    EXPECT_EQ(da.holdback_us, db.holdback_us);
  }
}

TEST(ChaosPlan, DifferentSeedsDiverge) {
  const auto a = net::ChaosPlan::randomized(1, 4);
  const auto b = net::ChaosPlan::randomized(2, 4);
  EXPECT_NE(a.describe(), b.describe());
}

TEST(ChaosPlan, DistinctLinksDrawIndependentStreams) {
  const auto plan = net::ChaosPlan::randomized(99, 4);
  // Same seq on different links must not be fate-correlated; a trivial
  // check: across many frames the two links disagree at least once.
  bool diverged = false;
  for (std::uint64_t seq = 0; seq < 200 && !diverged; ++seq) {
    const auto a = plan.decide(0, 1, net::Channel::kBracha, seq);
    const auto b = plan.decide(0, 2, net::Channel::kBracha, seq);
    diverged = a.lost_attempts != b.lost_attempts || a.delay_us != b.delay_us;
  }
  EXPECT_TRUE(diverged);
}

TEST(ChaosPlan, RandomizedPlansStayInsideTheModel) {
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    for (std::uint32_t n : {4u, 7u, 10u}) {
      const auto plan = net::ChaosPlan::randomized(seed, n);
      const std::uint32_t f = Committee::for_n(n).f;
      for (const auto& part : plan.partitions) {
        // Every partition heals (finite delays — the liveness assumption)
        // and cuts off exactly f processes (the surviving side keeps 2f+1,
        // so quorums stay satisfiable throughout the window).
        EXPECT_GT(part.heal_us, part.start_us);
        EXPECT_EQ(part.group_a.size(), f);
      }
      // All injected latency is finite and bounded.
      EXPECT_LT(plan.max_injected_delay_us(), 60'000'000u);
    }
  }
}

TEST(ChaosPlan, PartitionSeparatesExactlyAcrossTheCut) {
  net::PartitionSpec part;
  part.group_a = {0, 2};
  EXPECT_TRUE(part.separates(0, 1));
  EXPECT_TRUE(part.separates(3, 2));
  EXPECT_FALSE(part.separates(0, 2));
  EXPECT_FALSE(part.separates(1, 3));
}

// --- Checked-in regression seeds ---
// Seeds picked because their randomized schedules hit interesting windows
// (verified by the plan assertions below, so a generator change that would
// silently defang a seed fails loudly instead).

TEST(ChaosSoak, SeedReplayPartitionDuringWave) {
  // Seed 5: partition of f nodes over ~95..177ms — mid-wave for a fresh
  // cluster — plus extra kSync loss on top of the base faults.
  const auto plan = net::ChaosPlan::randomized(5, 4);
  ASSERT_FALSE(plan.partitions.empty());

  SoakOptions opts;
  opts.seed = 5;
  opts.n = 4;
  opts.target_delivered = 40;
  opts.timeout = std::chrono::minutes(2);
  const SoakResult result = run_chaos_soak(opts);
  EXPECT_TRUE(result.ok) << result.describe();
  EXPECT_TRUE(result.progressed);
  EXPECT_TRUE(result.violation.empty()) << result.violation;
}

TEST(ChaosSoak, SeedReplayChurnDuringCatchup) {
  // Seed 2: extra kSync drop (the catch-up channel) with a partition over
  // ~125..407ms; churn crashes an honest node into that turbulence and it
  // must still rejoin through its WAL + lossy catch-up sync.
  const auto plan = net::ChaosPlan::randomized(2, 4);
  ASSERT_FALSE(plan.partitions.empty());
  ASSERT_FALSE(plan.per_channel.empty());

  SoakOptions opts;
  opts.seed = 2;
  opts.n = 4;
  opts.target_delivered = 40;
  opts.timeout = std::chrono::minutes(3);
  opts.with_churn = true;
  opts.wal_dir = fresh_dir("dr_chaos_churn_seed2");
  const SoakResult result = run_chaos_soak(opts);
  EXPECT_TRUE(result.ok) << result.describe();
}

TEST(ChaosSoak, SeedReplayThrottledLinks) {
  // Seed 1: partition plus kSync override; run at n=7 to cover a committee
  // where the minority side of the cut has more than one member.
  SoakOptions opts;
  opts.seed = 1;
  opts.n = 7;
  opts.target_delivered = 30;
  opts.timeout = std::chrono::minutes(3);
  const SoakResult result = run_chaos_soak(opts);
  EXPECT_TRUE(result.ok) << result.describe();
}

// --- Canary: the harness must catch violations, not just pass clean runs ---

TEST(ChaosSoak, CanaryViolationCaughtAndReplaysFromSeed) {
  SoakOptions opts;
  opts.seed = 7;
  opts.n = 4;
  opts.target_delivered = 20;
  opts.timeout = std::chrono::minutes(2);
  opts.canary = true;
  const SoakResult first = run_chaos_soak(opts);
  ASSERT_FALSE(first.violation.empty())
      << "canary-corrupted logs passed the auditors — the harness is blind";
  EXPECT_FALSE(first.ok);
  // The replay recipe names the seed and the full plan.
  EXPECT_NE(first.describe().find("seed=7"), std::string::npos);
  EXPECT_NE(first.describe().find("plan="), std::string::npos);
  EXPECT_EQ(first.plan, net::ChaosPlan::randomized(7, 4).describe());

  // Replaying the printed seed re-runs the same schedule and re-catches a
  // violation of the same invariant.
  const SoakResult replay = run_chaos_soak(opts);
  ASSERT_FALSE(replay.violation.empty());
  EXPECT_EQ(replay.seed, first.seed);
  EXPECT_EQ(replay.plan, first.plan);
}

// --- Live Byzantine profiles ---

TEST(ChaosSoak, LiveByzantineProfilesAreNeutralized) {
  const ByzantineProfile profiles[] = {ByzantineProfile::kEquivocate,
                                       ByzantineProfile::kMute,
                                       ByzantineProfile::kSelective};
  std::uint64_t seed = 31;
  for (const ByzantineProfile profile : profiles) {
    SoakOptions opts;
    opts.seed = seed++;
    opts.n = 4;
    opts.target_delivered = 30;
    opts.timeout = std::chrono::minutes(2);
    // Chaos faults stay on; the scripted partition is off so the adversary
    // (not the network schedule) is the variable under test.
    opts.with_partition = false;
    opts.byzantine = profile;
    const SoakResult result = run_chaos_soak(opts);
    EXPECT_TRUE(result.ok) << to_string(profile) << ": " << result.describe();
    // A Byzantine test whose adversary never attacked proves nothing.
    EXPECT_GT(result.byzantine_attacks, 0u) << to_string(profile);
    EXPECT_LT(result.byzantine_pid, opts.n);
  }
}

// --- Counters surfaced through the flat snapshot ---

TEST(ChaosSoak, ChaosCountersSurfaced) {
  SoakOptions opts;
  opts.seed = 7;  // 7.3% base loss, no partition: pure link-fault pressure
  opts.n = 4;
  opts.target_delivered = 30;
  opts.timeout = std::chrono::minutes(2);
  const SoakResult result = run_chaos_soak(opts);
  ASSERT_TRUE(result.ok) << result.describe();
  // Fault injection actually happened and is visible in the aggregate.
  EXPECT_GT(counter_value(result.counters, "transport.chaos.drops"), 0u);
  EXPECT_GT(counter_value(result.counters, "transport.chaos.delays"), 0u);
  EXPECT_GT(counter_value(result.counters, "transport.chaos.forwarded"), 0u);
  // Present even when zero: the backpressure gauge and the remaining fault
  // classes ride the same snapshot.
  counter_value(result.counters, "transport.backpressure_overflows");
  counter_value(result.counters, "transport.chaos.duplicates");
  counter_value(result.counters, "transport.chaos.reorders");
  counter_value(result.counters, "transport.chaos.partition_delays");
}

// --- Catch-up sync under targeted kSync loss (scripted, not randomized) ---

TEST(ChaosCluster, CatchupRejoinsUnderSyncLoss) {
  const Committee committee = Committee::for_f(1);
  net::ChaosPlan plan;
  plan.seed = 77;
  // Only the catch-up channel is faulted: 20% of kSync frames vanish, so
  // the rejoining node's voucher collection must survive request retries
  // and still assemble f+1 byte-identical copies per vertex.
  net::LinkFaults sync;
  sync.drop = 0.20;
  plan.per_channel.emplace_back(net::Channel::kSync, sync);

  NodeOptions opts;
  opts.seed = 77;
  opts.wal_dir = fresh_dir("dr_chaos_sync_loss");
  ClusterTweaks tweaks;
  tweaks.transport_wrap = [plan](ProcessId,
                                 std::unique_ptr<net::Transport> inner) {
    return std::make_unique<net::ChaosTransport>(std::move(inner), plan);
  };
  Cluster cluster(committee, opts, std::move(tweaks));
  cluster.start();
  ASSERT_TRUE(cluster.wait_all_delivered(committee.n * 5ull,
                                         std::chrono::minutes(2)));

  cluster.stop_node(2);
  const std::uint64_t down_target =
      cluster.node(0).delivered_count() + committee.n * 6ull;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::minutes(2);
  while (cluster.node(0).delivered_count() < down_target ||
         cluster.node(1).delivered_count() < down_target ||
         cluster.node(3).delivered_count() < down_target) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "survivors stalled with one node down";
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }

  cluster.restart_node(2);
  ASSERT_TRUE(cluster.wait_all_delivered(down_target + committee.n * 4ull,
                                         std::chrono::minutes(3)))
      << "rejoin did not complete under 20% kSync loss";
  cluster.stop();

  const auto violation =
      core::audit_logs(cluster.delivered_logs(), cluster.commit_logs());
  ASSERT_FALSE(violation.has_value()) << *violation;

  const metrics::Counters counters = cluster.node(2).counters();
  // vertices_accepted counts exactly the slots where vouchers reached the
  // f+1 byte-identical quorum (catchup.hpp) — the missed window came back
  // through lossy sync, not luck.
  EXPECT_GT(counter_value(counters, "catchup.vertices_accepted"), 0u);
  EXPECT_EQ(counter_value(counters, "catchup.vertices_mismatched"), 0u);
  // The chaos layer really did eat sync traffic somewhere in the cluster.
  std::uint64_t sync_drops = 0;
  for (ProcessId pid = 0; pid < committee.n; ++pid) {
    sync_drops +=
        counter_value(cluster.node(pid).counters(), "transport.chaos.drops");
  }
  EXPECT_GT(sync_drops, 0u);
}

// --- Scripted partition: safety during the split, liveness after heal ---

TEST(ChaosCluster, PartitionHealsWithoutDivergence) {
  const Committee committee = Committee::for_f(1);
  net::ChaosPlan plan;
  plan.seed = 88;
  net::PartitionSpec part;
  part.start_us = 50'000;
  part.heal_us = 450'000;
  part.group_a = {3};  // exactly f: the majority side keeps its 2f+1 quorum
  plan.partitions.push_back(part);

  NodeOptions opts;
  opts.seed = 88;
  ClusterTweaks tweaks;
  tweaks.transport_wrap = [plan](ProcessId,
                                 std::unique_ptr<net::Transport> inner) {
    return std::make_unique<net::ChaosTransport>(std::move(inner), plan);
  };
  Cluster cluster(committee, opts, std::move(tweaks));
  cluster.start();

  // Mid-split: the auditors must already hold on whatever has been logged —
  // the cut-off node may lag, but no two nodes may disagree.
  std::this_thread::sleep_for(std::chrono::milliseconds(250));
  {
    const auto mid = core::audit_logs(cluster.delivered_logs(),
                                      cluster.commit_logs());
    ASSERT_FALSE(mid.has_value()) << "divergence during the split: " << *mid;
  }

  // After heal: every node, including the rejoined minority, makes progress
  // within the run's (bounded) window.
  ASSERT_TRUE(cluster.wait_all_delivered(committee.n * 10ull,
                                         std::chrono::minutes(2)))
      << "no commit progress after the partition healed";
  cluster.stop();
  const auto violation =
      core::audit_logs(cluster.delivered_logs(), cluster.commit_logs());
  ASSERT_FALSE(violation.has_value()) << *violation;

  std::uint64_t partition_delays = 0;
  for (ProcessId pid = 0; pid < committee.n; ++pid) {
    partition_delays += counter_value(cluster.node(pid).counters(),
                                      "transport.chaos.partition_delays");
  }
  EXPECT_GT(partition_delays, 0u) << "the scripted partition never bit";
}

}  // namespace
}  // namespace dr::node
