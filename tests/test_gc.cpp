// Tests for DAG garbage collection (the bounded-memory extension): safety
// properties must survive compaction, memory must actually stay bounded,
// and the documented bounded-window Validity trade-off must behave exactly
// as specified.
#include <gtest/gtest.h>

#include <set>

#include "core/system.hpp"
#include "sim/network.hpp"

namespace dr::core {
namespace {

TEST(DagGc, SafetyHoldsWithAggressiveGc) {
  SystemConfig cfg;
  cfg.committee = Committee::for_f(1);
  cfg.seed = 7;
  cfg.rbc_kind = rbc::RbcKind::kBracha;
  cfg.builder.auto_blocks = true;
  cfg.builder.auto_block_size = 16;
  cfg.gc_depth_rounds = 8;  // two waves of slack
  System sys(std::move(cfg));
  sys.start();
  ASSERT_TRUE(sys.run_until_delivered(120));
  EXPECT_TRUE(prefix_consistent(sys));
  for (ProcessId pid : sys.correct_ids()) {
    EXPECT_GT(sys.node(pid).builder().dag().compacted_floor(), 0u)
        << "GC never ran at p" << pid;
    std::set<std::pair<Round, ProcessId>> seen;
    for (const DeliveredRecord& r : sys.node(pid).delivered()) {
      EXPECT_TRUE(seen.emplace(r.round, r.source).second) << "double delivery";
    }
  }
}

TEST(DagGc, MemoryStaysBoundedOverLongRun) {
  auto bitset_words_after = [](Round gc_depth, std::uint64_t deliveries) {
    SystemConfig cfg;
    cfg.committee = Committee::for_f(1);
    cfg.seed = 21;
    cfg.rbc_kind = rbc::RbcKind::kOracle;
    cfg.builder.auto_blocks = true;
    cfg.builder.auto_block_size = 8;
    cfg.gc_depth_rounds = gc_depth;
    System sys(std::move(cfg));
    sys.start();
    EXPECT_TRUE(sys.run_until_delivered(deliveries));
    return sys.node(0).builder().dag().allocated_bitset_words();
  };

  // Without GC, bitset memory grows superlinearly with run length; with GC
  // it plateaus. Compare a short and a 4x longer run.
  const std::size_t gc_short = bitset_words_after(12, 100);
  const std::size_t gc_long = bitset_words_after(12, 400);
  const std::size_t nogc_long = bitset_words_after(0, 400);
  EXPECT_LT(gc_long, gc_short * 3) << "GC'd memory should plateau";
  EXPECT_LT(gc_long * 5, nogc_long) << "GC should beat no-GC by a wide margin";
}

TEST(DagGc, CompactedRegionQueriesAreSafe) {
  dag::Dag d(Committee::for_f(1));
  // Build 10 full rounds.
  for (Round r = 1; r <= 10; ++r) {
    const auto prev = d.round_sources(r - 1);
    for (ProcessId p = 0; p < 4; ++p) {
      dag::Vertex v;
      v.source = p;
      v.round = r;
      v.block = Bytes(100, 0xAA);
      v.strong_edges = prev;
      d.insert(std::move(v));
    }
  }
  const std::size_t words_before = d.allocated_bitset_words();
  d.compact_below(6);
  EXPECT_EQ(d.compacted_floor(), 6u);
  EXPECT_LT(d.allocated_bitset_words(), words_before);

  // Compacted vertices still exist but their payloads are gone.
  ASSERT_TRUE(d.contains(dag::VertexId{0, 3}));
  EXPECT_TRUE(d.get(dag::VertexId{0, 3})->block.empty());
  EXPECT_EQ(d.round_size(3), 4u);

  // Reachability into the compacted region answers false (callers use the
  // delivered set there), and stays correct above the floor.
  EXPECT_FALSE(d.path(dag::VertexId{0, 10}, dag::VertexId{0, 3}));
  EXPECT_FALSE(d.strong_path(dag::VertexId{0, 10}, dag::VertexId{0, 3}));
  EXPECT_TRUE(d.strong_path(dag::VertexId{0, 10}, dag::VertexId{1, 7}));
  EXPECT_TRUE(d.strong_path(dag::VertexId{0, 10}, dag::VertexId{3, 6}));

  // Causal history from the top prunes at the floor.
  const auto hist = d.causal_history(dag::VertexId{0, 10}, [&](dag::VertexId id) {
    return id.round < 6;
  });
  for (const auto& id : hist) EXPECT_GE(id.round, 6u);

  // Compaction is monotonic and idempotent.
  d.compact_below(4);
  EXPECT_EQ(d.compacted_floor(), 6u);
  d.compact_below(6);
  EXPECT_EQ(d.compacted_floor(), 6u);
}

TEST(DagGc, LateVertexBelowFloorIsDroppedNotCrashed) {
  // A vertex delivered for an already-collected round must be ignored.
  SystemConfig cfg;
  cfg.committee = Committee::for_f(1);
  cfg.seed = 31;
  cfg.rbc_kind = rbc::RbcKind::kOracle;
  cfg.builder.auto_blocks = true;
  cfg.builder.auto_block_size = 8;
  cfg.gc_depth_rounds = 6;
  System sys(std::move(cfg));
  sys.start();
  ASSERT_TRUE(sys.run_until_delivered(100));
  const Round floor = sys.node(0).builder().dag().compacted_floor();
  ASSERT_GT(floor, 2u);

  // Inject an oracle-delivered vertex for round 1 (long collected).
  dag::Vertex stale;
  stale.strong_edges = {0, 1, 2};
  ByteWriter w;
  w.u64(1);
  w.blob(stale.serialize());
  sys.network().send(3, 0, sim::Channel::kOracle, std::move(w).take());
  // Bounded drive: auto-blocks keep the system alive forever, so an
  // unbounded run() would never return.
  sys.simulator().run(200'000);
  // No crash, no new round-1 vertex, properties intact.
  EXPECT_TRUE(prefix_consistent(sys));
}

TEST(DagGc, BitsetTruncation) {
  dag::Bitset b;
  for (std::size_t i = 0; i < 500; i += 7) b.set(i);
  const std::size_t count_before = b.count();
  b.truncate_below_word(3);  // drop bits < 192
  EXPECT_FALSE(b.test(7));
  EXPECT_FALSE(b.test(189));
  EXPECT_TRUE(b.test(196));  // 196 = 7*28 >= 192
  EXPECT_LT(b.count(), count_before);
  // set/test below the truncation point are inert, not fatal.
  b.set(10);
  EXPECT_FALSE(b.test(10));

  // or_with across different offsets.
  dag::Bitset fresh;
  fresh.set(200);
  fresh.or_with(b);
  EXPECT_TRUE(fresh.test(196));
  EXPECT_TRUE(fresh.test(200));

  dag::Bitset truncated_more = b;
  truncated_more.truncate_below_word(5);
  dag::Bitset acc;
  acc.set(1);  // offset 0
  acc.or_with(truncated_more);
  EXPECT_TRUE(acc.test(1));
  EXPECT_FALSE(acc.test(196));  // 196 < word 5 boundary (320): dropped
  EXPECT_TRUE(acc.test(322) == truncated_more.test(322));
}

}  // namespace
}  // namespace dr::core
