// Property-based sweeps: randomized schedules (seeds) x protocol stacks x
// fault mixes, auditing every BAB invariant plus structural DAG properties
// that the unit tests cannot see (cross-process DAG convergence, causal
// closure of delivery, commit monotonicity).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "core/audit.hpp"
#include "core/system.hpp"
#include "sim/network.hpp"

namespace dr::core {
namespace {

struct Scenario {
  std::uint64_t seed;
  std::uint32_t f;
  rbc::RbcKind rbc;
  CoinMode coin;
  int fault_mix;  // 0 none, 1 crash f, 2 silent 1, 3 mixed
  const char* name;
};

class PropertySweep : public ::testing::TestWithParam<Scenario> {};

/// Full-strength audit of a finished run. Items 1-3 (the log-level BAB
/// invariants) go through the shared auditors in core/audit.hpp — the same
/// functions that judge real-concurrency cluster runs — so the simulator
/// sweeps and the threaded runtime are held to literally the same predicate.
void audit(System& sys) {
  const auto ids = sys.correct_ids();

  // 1-3. Total order, integrity, commit monotonicity + agreement.
  std::vector<std::vector<DeliveredRecord>> delivered_logs;
  std::vector<std::vector<CommitRecord>> commit_logs;
  for (ProcessId pid : ids) {
    delivered_logs.push_back(sys.node(pid).delivered());
    commit_logs.push_back(sys.node(pid).commits());
  }
  const auto violation = audit_logs(delivered_logs, commit_logs);
  ASSERT_FALSE(violation.has_value()) << *violation;

  // 4. DAG convergence: for every (round, source) present at two correct
  // processes, the vertex content (block digest + edges) must be identical
  // — reliable broadcast's no-equivocation guarantee, observed end-to-end.
  const ProcessId p0 = ids.front();
  const dag::Dag& d0 = sys.node(p0).builder().dag();
  for (ProcessId pid : ids) {
    if (pid == p0) continue;
    const dag::Dag& d = sys.node(pid).builder().dag();
    const Round common = std::min(d0.max_round(), d.max_round());
    const Round floor = std::max(d0.compacted_floor(), d.compacted_floor());
    for (Round r = std::max<Round>(1, floor); r <= common; ++r) {
      for (ProcessId s : d0.round_sources(r)) {
        const dag::Vertex* va = d0.get(dag::VertexId{s, r});
        const dag::Vertex* vb = d.get(dag::VertexId{s, r});
        if (va == nullptr || vb == nullptr) continue;  // not yet delivered
        ASSERT_EQ(crypto::sha256(va->block), crypto::sha256(vb->block))
            << "DAG divergence at (" << s << "," << r << ")";
        ASSERT_EQ(va->strong_edges, vb->strong_edges);
        ASSERT_EQ(va->weak_edges, vb->weak_edges);
      }
    }
  }

  // 5. Causal closure of delivery at the probe: every delivered vertex's
  // strong parents in round >= 1 were delivered too (in some earlier or
  // equal position).
  {
    std::set<std::pair<Round, ProcessId>> delivered;
    for (const DeliveredRecord& rec : sys.node(p0).delivered()) {
      delivered.emplace(rec.round, rec.source);
    }
    const Round floor = d0.compacted_floor();
    for (const auto& [round, source] : delivered) {
      if (round <= std::max<Round>(1, floor)) continue;
      const dag::Vertex* v = d0.get(dag::VertexId{source, round});
      if (v == nullptr) continue;
      for (ProcessId parent : v->strong_edges) {
        if (round - 1 == 0 || round - 1 < floor) continue;
        ASSERT_TRUE(delivered.count({round - 1, parent}) > 0)
            << "delivery not causally closed at (" << parent << ","
            << round - 1 << ")";
      }
    }
  }
}

TEST_P(PropertySweep, InvariantsHold) {
  const Scenario sc = GetParam();
  SystemConfig cfg;
  cfg.committee = Committee::for_f(sc.f);
  cfg.seed = sc.seed;
  cfg.rbc_kind = sc.rbc;
  cfg.coin_mode = sc.coin;
  cfg.builder.auto_blocks = true;
  cfg.builder.auto_block_size = 12;
  cfg.faults.assign(cfg.committee.n, FaultKind::kNone);
  switch (sc.fault_mix) {
    case 1:
      for (std::uint32_t i = 0; i < sc.f; ++i) {
        cfg.faults[cfg.committee.n - 1 - i] = FaultKind::kCrash;
      }
      break;
    case 2:
      cfg.faults[0] = FaultKind::kSilent;
      break;
    case 3:
      cfg.faults[cfg.committee.n - 1] = FaultKind::kCrash;
      if (sc.f >= 2) cfg.faults[0] = FaultKind::kSilent;
      break;
    default:
      break;
  }
  // Random-ish adversary per seed.
  switch (sc.seed % 3) {
    case 0:
      cfg.delays = std::make_unique<sim::UniformDelay>(1, 150);
      break;
    case 1:
      cfg.delays = std::make_unique<sim::RotatingDelay>(
          cfg.committee.n, std::max(1u, sc.f), 250, 30, 300);
      break;
    default:
      cfg.delays = std::make_unique<sim::AsymmetricDelay>(sc.seed, 200, 25, 250);
      break;
  }

  System sys(std::move(cfg));
  sys.start();
  ASSERT_TRUE(sys.run_until_delivered(5ull * Committee::for_f(sc.f).n,
                                      100'000'000))
      << sc.name << " stalled";
  audit(sys);
}

std::vector<Scenario> make_scenarios() {
  std::vector<Scenario> out;
  static std::vector<std::string> names;  // stable storage for name c_strs
  const rbc::RbcKind kinds[] = {rbc::RbcKind::kOracle, rbc::RbcKind::kBracha,
                                rbc::RbcKind::kBrachaHash, rbc::RbcKind::kAvid};
  const CoinMode coins[] = {CoinMode::kThreshold, CoinMode::kPiggyback,
                            CoinMode::kLocal};
  std::uint64_t seed = 1;
  for (std::uint32_t f : {1u, 2u}) {
    for (rbc::RbcKind kind : kinds) {
      for (int fault_mix : {0, 1, 3}) {
        const CoinMode coin = coins[seed % 3];
        std::string name = std::string(rbc::to_string(kind)) + "_f" +
                           std::to_string(f) + "_faults" +
                           std::to_string(fault_mix) + "_s" +
                           std::to_string(seed);
        std::replace(name.begin(), name.end(), '-', '_');
        names.push_back(std::move(name));
        out.push_back(Scenario{seed, f, kind, coin, fault_mix,
                               names.back().c_str()});
        ++seed;
      }
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(Sweep, PropertySweep,
                         ::testing::ValuesIn(make_scenarios()),
                         [](const auto& info) {
                           return std::string(info.param.name);
                         });

}  // namespace
}  // namespace dr::core
