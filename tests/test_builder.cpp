// Integration tests: Algorithm 2 (DAG construction) over the simulated
// network, isolated from the ordering layer via the oracle broadcast.
#include <gtest/gtest.h>

#include <memory>

#include "dag/builder.hpp"
#include "rbc/factory.hpp"
#include "sim/network.hpp"

namespace dr::dag {
namespace {

class BuilderHarness {
 public:
  explicit BuilderHarness(Committee c, std::uint64_t seed = 1,
                          BuilderOptions opts = {.auto_blocks = true,
                                                 .auto_block_size = 8},
                          rbc::RbcKind kind = rbc::RbcKind::kOracle)
      : committee_(c),
        sim_(seed),
        net_(sim_, c, std::make_unique<sim::UniformDelay>(1, 20)) {
    const rbc::RbcFactory factory = rbc::make_factory(kind);
    for (ProcessId p = 0; p < c.n; ++p) {
      rbcs_.push_back(factory(net_, p, seed));
      builders_.push_back(
          std::make_unique<DagBuilder>(c, p, *rbcs_[p], opts));
    }
  }

  void start_all() {
    for (auto& b : builders_) b->start();
  }

  DagBuilder& builder(ProcessId p) { return *builders_[p]; }
  sim::Simulator& sim() { return sim_; }
  sim::Network& net() { return net_; }
  const Committee& committee() const { return committee_; }

  bool run_until_round(Round r, std::uint64_t max_events = 5'000'000) {
    return sim_.run_until(
        [this, r] {
          for (auto& b : builders_) {
            if (!net_.is_crashed(b->pid()) && b->current_round() < r) {
              return false;
            }
          }
          return true;
        },
        max_events);
  }

 private:
  Committee committee_;
  sim::Simulator sim_;
  sim::Network net_;
  std::vector<std::unique_ptr<rbc::ReliableBroadcast>> rbcs_;
  std::vector<std::unique_ptr<DagBuilder>> builders_;
};

TEST(Builder, AdvancesRoundsAndSignalsWaves) {
  BuilderHarness h(Committee::for_f(1), 42);
  std::vector<Wave> waves;
  h.builder(0).set_wave_ready([&](Wave w) { waves.push_back(w); });
  h.start_all();
  ASSERT_TRUE(h.run_until_round(9));
  // Waves must arrive in order 1, 2, ... (one per 4 rounds).
  ASSERT_GE(waves.size(), 2u);
  for (std::size_t i = 0; i < waves.size(); ++i) {
    EXPECT_EQ(waves[i], i + 1);
  }
}

TEST(Builder, EveryRoundHasQuorumBeforeAdvance) {
  BuilderHarness h(Committee::for_f(1), 7);
  h.start_all();
  ASSERT_TRUE(h.run_until_round(8));
  const Dag& dag = h.builder(0).dag();
  const Round reached = h.builder(0).current_round();
  for (Round r = 1; r < reached; ++r) {
    EXPECT_GE(dag.round_size(r), h.committee().quorum()) << "round " << r;
  }
}

TEST(Builder, VerticesHaveQuorumStrongEdges) {
  BuilderHarness h(Committee::for_f(1), 8);
  h.start_all();
  ASSERT_TRUE(h.run_until_round(6));
  const Dag& dag = h.builder(2).dag();
  for (Round r = 1; r <= 5; ++r) {
    for (ProcessId s : dag.round_sources(r)) {
      const Vertex* v = dag.get(VertexId{s, r});
      ASSERT_NE(v, nullptr);
      EXPECT_GE(v->strong_edges.size(), h.committee().quorum());
      for (ProcessId parent : v->strong_edges) {
        EXPECT_TRUE(dag.contains(VertexId{parent, r - 1}));
      }
    }
  }
}

TEST(Builder, WeakEdgesCoverAllOlderVertices) {
  // Validity's mechanism: every vertex a process creates reaches every
  // vertex in its DAG at creation time (strong or weak path).
  BuilderHarness h(Committee::for_f(1), 9);
  h.start_all();
  ASSERT_TRUE(h.run_until_round(10));
  const ProcessId me = 1;
  const Dag& dag = h.builder(me).dag();
  const Round top = h.builder(me).current_round();
  const VertexId own{me, top};
  ASSERT_TRUE(dag.contains(own) || top > dag.max_round());
  if (!dag.contains(own)) return;  // own vertex may still be in flight
  for (Round r = 1; r + 1 < top; ++r) {
    for (ProcessId s : dag.round_sources(r)) {
      // Only vertices that were present when `own` was created must be
      // covered; check path for those that are ancestors or weak targets.
      const bool reachable = dag.path(own, VertexId{s, r});
      if (!reachable) {
        // Permissible only if the vertex was inserted after `own` was
        // broadcast; conservatively accept when the vertex is very recent.
        EXPECT_GE(r + 2, top) << "orphaned old vertex {" << s << "," << r << "}";
      }
    }
  }
}

TEST(Builder, CrashedQuorumStallsProgress) {
  // With only 2f correct processes, no round can complete (needs 2f+1).
  const Committee c = Committee::for_f(1);
  BuilderHarness h(c, 10);
  h.net().crash(3);
  // A second crash would exceed the adversary budget; instead silence one
  // more process by not starting it (its RBC still runs but proposes
  // nothing, so rounds have at most 2 vertices).
  for (ProcessId p = 0; p < 3; ++p) {
    if (p != 2) h.builder(p).start();
  }
  EXPECT_FALSE(h.run_until_round(3, 200'000));
  EXPECT_LT(h.builder(0).current_round(), 3u);
}

TEST(Builder, ProgressWithFCrashed) {
  const Committee c = Committee::for_f(2);  // n = 7
  BuilderHarness h(c, 11);
  h.net().crash(5);
  h.net().crash(6);
  for (ProcessId p = 0; p < 5; ++p) h.builder(p).start();
  EXPECT_TRUE(h.run_until_round(12));
}

TEST(Builder, ExplicitBlocksAreProposedInOrder) {
  BuilderHarness h(Committee::for_f(1), 12,
                   BuilderOptions{.auto_blocks = false});
  for (ProcessId p = 0; p < 4; ++p) {
    for (int i = 0; i < 20; ++i) {
      h.builder(p).enqueue_block(Bytes{static_cast<std::uint8_t>(p),
                                       static_cast<std::uint8_t>(i)});
    }
  }
  h.start_all();
  ASSERT_TRUE(h.run_until_round(10));
  const Dag& dag = h.builder(0).dag();
  // Process 1's vertex at round r carries its (r-1)-th block.
  for (Round r = 1; r <= 8; ++r) {
    const Vertex* v = dag.get(VertexId{1, r});
    if (v == nullptr) continue;
    ASSERT_EQ(v->block.size(), 2u);
    EXPECT_EQ(v->block[0], 1);
    EXPECT_EQ(v->block[1], static_cast<std::uint8_t>(r - 1));
  }
}

TEST(Builder, StallsWithoutBlocksThenResumes) {
  BuilderHarness h(Committee::for_f(1), 13,
                   BuilderOptions{.auto_blocks = false});
  // One block each: everyone broadcasts round 1 and then stalls.
  for (ProcessId p = 0; p < 4; ++p) {
    h.builder(p).enqueue_block(Bytes(1, static_cast<std::uint8_t>(p)));
  }
  h.start_all();
  h.sim().run();
  EXPECT_EQ(h.builder(0).current_round(), 1u);
  // Refill: progress resumes.
  for (ProcessId p = 0; p < 4; ++p) {
    for (int i = 0; i < 10; ++i) h.builder(p).enqueue_block(Bytes{9});
  }
  EXPECT_TRUE(h.run_until_round(5));
}

TEST(Builder, ValidationRejectsMalformedVertices) {
  const Committee c = Committee::for_f(1);
  sim::Simulator sim(1);
  sim::Network net(sim, c, std::make_unique<sim::UniformDelay>(1, 5));
  auto rbc = rbc::make_factory(rbc::RbcKind::kOracle)(net, 0, 1);
  DagBuilder b(c, 0, *rbc, {});

  Vertex ok;
  ok.source = 1;
  ok.round = 1;
  ok.strong_edges = {0, 1, 2};
  EXPECT_TRUE(b.validate(ok));

  Vertex too_few = ok;
  too_few.strong_edges = {0, 1};
  EXPECT_FALSE(b.validate(too_few));

  Vertex dup_edges = ok;
  dup_edges.strong_edges = {0, 0, 1};
  EXPECT_FALSE(b.validate(dup_edges));

  Vertex bad_source = ok;
  bad_source.strong_edges = {0, 1, 7};
  EXPECT_FALSE(b.validate(bad_source));

  Vertex weak_too_recent = ok;
  weak_too_recent.round = 3;
  weak_too_recent.weak_edges = {VertexId{0, 2}};  // round-1 edge must be strong
  EXPECT_FALSE(b.validate(weak_too_recent));

  Vertex weak_ok = ok;
  weak_ok.round = 3;
  weak_ok.weak_edges = {VertexId{3, 1}};
  EXPECT_TRUE(b.validate(weak_ok));

  Vertex weak_genesis = ok;
  weak_genesis.round = 3;
  weak_genesis.weak_edges = {VertexId{0, 0}};  // genesis is never orphaned
  EXPECT_FALSE(b.validate(weak_genesis));

  Vertex round_zero = ok;
  round_zero.round = 0;
  EXPECT_FALSE(b.validate(round_zero));
}

TEST(Builder, BufferGatesOnMissingPredecessors) {
  // A vertex whose strong parents never arrive must stay in the buffer and
  // never enter the DAG.
  const Committee c = Committee::for_f(1);
  sim::Simulator sim(2);
  sim::Network net(sim, c, std::make_unique<sim::UniformDelay>(1, 5));
  std::vector<std::unique_ptr<rbc::ReliableBroadcast>> rbcs;
  std::vector<std::unique_ptr<DagBuilder>> builders;
  const auto factory = rbc::make_factory(rbc::RbcKind::kOracle);
  for (ProcessId p = 0; p < 4; ++p) {
    rbcs.push_back(factory(net, p, 2));
    builders.push_back(std::make_unique<DagBuilder>(
        c, p, *rbcs[p], BuilderOptions{.auto_blocks = true}));
  }
  builders[0]->start();

  // Inject a round-2 vertex directly via the oracle channel from process 3
  // whose round-1 parents {1,2,3} do not exist at process 0 yet.
  Vertex orphan;
  orphan.strong_edges = {1, 2, 3};
  ByteWriter w;
  w.u64(2);  // round
  w.blob(orphan.serialize());
  net.send(3, 0, sim::Channel::kOracle, std::move(w).take());
  sim.run();

  EXPECT_FALSE(builders[0]->dag().contains(VertexId{3, 2}));
  EXPECT_GE(builders[0]->buffer_size(), 1u);
}

TEST(Builder, BufferQuotaStopsOrphanFlooding) {
  // A Byzantine process parks vertices with never-delivered parents in the
  // buffer; the per-source quota must cap the damage.
  const Committee c = Committee::for_f(1);
  sim::Simulator sim(3);
  sim::Network net(sim, c, std::make_unique<sim::UniformDelay>(1, 5));
  auto rbc = rbc::make_factory(rbc::RbcKind::kOracle)(net, 0, 1);
  BuilderOptions opts{.auto_blocks = true};
  opts.buffer_quota_per_source = 16;
  DagBuilder b(c, 0, *rbc, opts);
  b.start();
  net.corrupt(3);

  for (Round r = 2; r < 200; ++r) {
    Vertex orphan;
    orphan.strong_edges = {1, 2, 3};  // round r-1 parents that never arrive
    ByteWriter w;
    w.u64(r);
    w.blob(orphan.serialize());
    net.send(3, 0, sim::Channel::kOracle, std::move(w).take());
  }
  sim.run();
  EXPECT_LE(b.buffer_size(), 16u + 4u);
  EXPECT_GT(b.quota_rejections(), 150u);
}

TEST(Builder, WorksOverBrachaToo) {
  BuilderHarness h(Committee::for_f(1), 21,
                   BuilderOptions{.auto_blocks = true, .auto_block_size = 4},
                   rbc::RbcKind::kBracha);
  h.start_all();
  EXPECT_TRUE(h.run_until_round(6));
}

TEST(Builder, AblationNoWeakEdgesProducesNone) {
  BuilderHarness h(Committee::for_f(1), 22,
                   BuilderOptions{.auto_blocks = true,
                                  .auto_block_size = 4,
                                  .weak_edges = false});
  h.start_all();
  ASSERT_TRUE(h.run_until_round(8));
  const Dag& dag = h.builder(0).dag();
  for (Round r = 1; r <= dag.max_round(); ++r) {
    for (ProcessId s : dag.round_sources(r)) {
      EXPECT_TRUE(dag.get(VertexId{s, r})->weak_edges.empty());
    }
  }
}

}  // namespace
}  // namespace dr::dag
