// Differential proof of the ordering seam (DESIGN.md §14): the same seeded
// schedule — identical delays, faults, and RBC traffic — is run once under
// DagRider and once under BullsharkRider, and the two runs are judged
// against each other. With the local-coin oracle the ordering layer sends no
// messages, so both personalities observe bit-identical DAGs; everything
// that may differ is the commit rule's choice of leaders, and everything
// that must NOT differ is checked here:
//
//  * each personality's logs pass the shared BAB auditors (total order,
//    integrity, commit monotonicity + agreement) across its n nodes;
//  * the DAGs really are bit-identical across personalities (per-vertex
//    block digest + edge sets), proving the seam does not leak ordering
//    decisions into DAG construction;
//  * every delivery, in either personality, is consistent: one digest per
//    (round, source) across all 2n logs — a delivered block means the same
//    bytes everywhere;
//  * each log is a causal linearization of its DAG (parents before
//    children), the property the walk-back + causal-history traversal is
//    supposed to preserve regardless of which waves commit.
//
// A second suite stages the leader-targeting attack: every steady-state
// anchor points at a crashed process, so only Bullshark's coin-drawn
// safety-net waves can commit — the log must keep growing through the
// fallback path alone, with zero auditor violations.
#include <gtest/gtest.h>

#include <algorithm>
#include <deque>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "core/audit.hpp"
#include "core/system.hpp"
#include "crypto/sha256.hpp"
#include "sim/adversary.hpp"
#include "sim/network.hpp"

namespace dr::core {
namespace {

struct DiffScenario {
  std::uint64_t seed;
  std::uint32_t n;
  const char* name;
};

/// Seed-derived adversary, constructed fresh per system so both personalities
/// face the same (deterministic) schedule.
std::unique_ptr<sim::DelayModel> make_delays(std::uint64_t seed,
                                             std::uint32_t n) {
  switch (seed % 3) {
    case 0:
      return std::make_unique<sim::UniformDelay>(1, 120);
    case 1:
      return std::make_unique<sim::RotatingDelay>(n, Committee::for_n(n).f,
                                                  200, 20, 250);
    default:
      return std::make_unique<sim::AsymmetricDelay>(seed, 180, 20, 220);
  }
}

/// Seed-derived fault mix (at most f faulty).
std::vector<FaultKind> make_faults(std::uint64_t seed, std::uint32_t n) {
  const std::uint32_t f = Committee::for_n(n).f;
  std::vector<FaultKind> faults(n, FaultKind::kNone);
  switch (seed % 3) {
    case 0:  // fault-free
      break;
    case 1:  // crash the tail f
      for (std::uint32_t i = 0; i < f; ++i) {
        faults[n - 1 - i] = FaultKind::kCrash;
      }
      break;
    default:  // one silent proposer (plus a crash when f >= 2)
      faults[0] = FaultKind::kSilent;
      if (f >= 2) faults[n - 1] = FaultKind::kCrash;
      break;
  }
  return faults;
}

SystemConfig make_config(const DiffScenario& sc, OrderingKind ordering) {
  SystemConfig cfg;
  cfg.committee = Committee::for_n(sc.n);
  cfg.seed = sc.seed;
  cfg.rbc_kind = rbc::RbcKind::kBracha;
  // Local-coin oracle: leader draws are message-free, so the wire traffic —
  // and therefore the DAG — cannot depend on the ordering personality.
  cfg.coin_mode = CoinMode::kLocal;
  cfg.ordering = ordering;
  cfg.builder.auto_blocks = true;
  cfg.builder.auto_block_size = 12;
  cfg.delays = make_delays(sc.seed, sc.n);
  cfg.faults = make_faults(sc.seed, sc.n);
  return cfg;
}

/// The shared auditors over one personality's n correct logs.
void audit_system(System& sys, const char* label) {
  std::vector<std::vector<DeliveredRecord>> delivered;
  std::vector<std::vector<CommitRecord>> commits;
  for (ProcessId pid : sys.correct_ids()) {
    delivered.push_back(sys.node(pid).delivered());
    commits.push_back(sys.node(pid).commits());
  }
  const auto violation = audit_logs(delivered, commits);
  ASSERT_FALSE(violation.has_value()) << label << ": " << *violation;
}

/// Delivered logs are causal linearizations: a vertex's strong parents (in
/// rounds >= 1) appear in the log before it.
void assert_causal_linearization(System& sys, const char* label) {
  for (ProcessId pid : sys.correct_ids()) {
    const dag::Dag& dag = sys.node(pid).builder().dag();
    std::set<std::pair<Round, ProcessId>> seen;
    for (const DeliveredRecord& rec : sys.node(pid).delivered()) {
      const dag::Vertex* v = dag.get(dag::VertexId{rec.source, rec.round});
      ASSERT_NE(v, nullptr) << label << ": delivered vertex absent from DAG";
      if (rec.round > 1) {
        for (ProcessId parent : v->strong_edges) {
          ASSERT_TRUE(seen.count({rec.round - 1, parent}) > 0)
              << label << ": (" << rec.source << "," << rec.round
              << ") delivered before strong parent (" << parent << ","
              << rec.round - 1 << ")";
        }
      }
      seen.emplace(rec.round, rec.source);
    }
  }
}

class OrderingDiff : public ::testing::TestWithParam<DiffScenario> {};

TEST_P(OrderingDiff, PersonalitiesAgreeOnSeededSchedules) {
  const DiffScenario sc = GetParam();

  System dagrider(make_config(sc, OrderingKind::kDagRider));
  System bullshark(make_config(sc, OrderingKind::kBullshark));
  dagrider.start();
  bullshark.start();

  const std::uint64_t target = 5ull * sc.n;
  ASSERT_TRUE(dagrider.run_until_delivered(target, 100'000'000))
      << sc.name << ": dagrider stalled";
  ASSERT_TRUE(bullshark.run_until_delivered(target, 100'000'000))
      << sc.name << ": bullshark stalled";

  // Per-personality BAB invariants via the shared auditors.
  audit_system(dagrider, "dagrider");
  audit_system(bullshark, "bullshark");

  // The seam must not leak into DAG construction: for every correct pid,
  // the two personalities' DAGs agree vertex-for-vertex wherever both have
  // the vertex (the runs stop at different event counts, so frontiers may
  // differ; the overlap must be non-trivial and bit-identical).
  std::uint64_t compared = 0;
  for (ProcessId pid : dagrider.correct_ids()) {
    const dag::Dag& da = dagrider.node(pid).builder().dag();
    const dag::Dag& db = bullshark.node(pid).builder().dag();
    const Round common = std::min(da.max_round(), db.max_round());
    for (Round r = 1; r <= common; ++r) {
      for (ProcessId s : da.round_sources(r)) {
        const dag::Vertex* va = da.get(dag::VertexId{s, r});
        const dag::Vertex* vb = db.get(dag::VertexId{s, r});
        if (va == nullptr || vb == nullptr) continue;
        ASSERT_EQ(crypto::sha256(va->block), crypto::sha256(vb->block))
            << sc.name << ": DAG divergence at (" << s << "," << r << ")";
        ASSERT_EQ(va->strong_edges, vb->strong_edges);
        ASSERT_EQ(va->weak_edges, vb->weak_edges);
        ++compared;
      }
    }
  }
  ASSERT_GT(compared, target) << sc.name << ": DAG overlap too small";

  // One digest per (round, source) across ALL logs of BOTH personalities:
  // the personalities may order different prefixes, but a delivery can only
  // ever mean the one block the DAG holds there.
  std::map<std::pair<Round, ProcessId>, crypto::Digest> digests;
  for (System* sys : {&dagrider, &bullshark}) {
    for (ProcessId pid : sys->correct_ids()) {
      for (const DeliveredRecord& rec : sys->node(pid).delivered()) {
        const auto key = std::make_pair(rec.round, rec.source);
        const auto [it, fresh] = digests.emplace(key, rec.block_digest);
        ASSERT_TRUE(fresh || it->second == rec.block_digest)
            << sc.name << ": conflicting digests for (" << rec.source << ","
            << rec.round << ") across personalities";
      }
    }
  }

  // Both logs are causal linearizations of their DAGs.
  assert_causal_linearization(dagrider, "dagrider");
  assert_causal_linearization(bullshark, "bullshark");

  // Liveness sanity: the 2-round-wave personality decides at least as many
  // waves per round as the 4-round one on the same schedule.
  const ProcessId probe = dagrider.correct_ids().front();
  EXPECT_GT(bullshark.node(probe).rider().decided_wave(), 0u);
  EXPECT_GT(dagrider.node(probe).rider().decided_wave(), 0u);
}

std::vector<DiffScenario> make_diff_scenarios() {
  std::vector<DiffScenario> out;
  // Deque, not vector: short names sit in SSO buffers, so the c_strs must
  // survive container growth.
  static std::deque<std::string> names;
  for (std::uint32_t n : {4u, 7u}) {
    for (std::uint64_t seed = 1; seed <= 12; ++seed) {
      names.push_back("n" + std::to_string(n) + "_s" + std::to_string(seed));
      out.push_back(DiffScenario{seed, n, names.back().c_str()});
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(Sweep, OrderingDiff,
                         ::testing::ValuesIn(make_diff_scenarios()),
                         [](const auto& info) {
                           return std::string(info.param.name);
                         });

// --- Leader-targeting attack: the fallback path alone must stay live ------

TEST(BullsharkFallback, SafetyNetWavesCommitWhenAllAnchorsAreCrashed) {
  SystemConfig cfg;
  cfg.committee = Committee::for_n(7);
  cfg.seed = 7;
  cfg.rbc_kind = rbc::RbcKind::kBracha;
  cfg.coin_mode = CoinMode::kLocal;
  cfg.ordering = OrderingKind::kBullshark;
  // Every steady-state anchor is the crashed process: the adversary knows
  // the (public) anchor schedule and took its one seat down. Only the
  // safety-net waves — every 2nd wave, leader drawn from the coin after the
  // votes are cast — can commit.
  const ProcessId victim = 6;
  cfg.bullshark.anchor_of = [victim](Wave) { return victim; };
  cfg.bullshark.fallback_stride = 2;
  cfg.bullshark.miss_threshold = 2;
  cfg.builder.auto_blocks = true;
  cfg.builder.auto_block_size = 12;
  cfg.delays = std::make_unique<sim::UniformDelay>(1, 80);
  cfg.faults.assign(cfg.committee.n, FaultKind::kNone);
  cfg.faults[victim] = FaultKind::kCrash;

  System sys(std::move(cfg));
  sys.start();
  ASSERT_TRUE(sys.run_until_delivered(5ull * 7, 100'000'000))
      << "fallback path failed to keep the log growing";

  audit_system(sys, "bullshark-fallback");
  assert_causal_linearization(sys, "bullshark-fallback");

  for (ProcessId pid : sys.correct_ids()) {
    auto& rider = static_cast<BullsharkRider&>(sys.node(pid).rider());
    ASSERT_EQ(rider.kind(), OrderingKind::kBullshark);
    // No steady wave can commit (its anchor never proposed); every commit
    // came through the coin-drawn safety net.
    EXPECT_EQ(rider.steady_commits(), 0u);
    EXPECT_GT(rider.fallback_commits(), 0u);
    // The miss counter saw >= miss_threshold consecutive anchor misses and
    // reported degraded mode.
    EXPECT_GE(rider.fallback_entries(), 1u);
    EXPECT_EQ(rider.mode(), BullsharkRider::Mode::kFallback);
  }
}

// --- Recovery from the attack: anchors heal, steady path resumes ----------

TEST(BullsharkFallback, SteadyModeResumesWhenAnchorsAreHealthy) {
  SystemConfig cfg;
  cfg.committee = Committee::for_n(4);
  cfg.seed = 11;
  cfg.rbc_kind = rbc::RbcKind::kBracha;
  cfg.coin_mode = CoinMode::kLocal;
  cfg.ordering = OrderingKind::kBullshark;
  cfg.builder.auto_blocks = true;
  cfg.builder.auto_block_size = 12;
  cfg.delays = std::make_unique<sim::UniformDelay>(1, 40);

  System sys(std::move(cfg));
  sys.start();
  ASSERT_TRUE(sys.run_until_delivered(5ull * 4, 100'000'000));

  audit_system(sys, "bullshark-steady");
  for (ProcessId pid : sys.correct_ids()) {
    auto& rider = static_cast<BullsharkRider&>(sys.node(pid).rider());
    // Fault-free synchronous-ish run: the steady path does the committing
    // and the node never reports degraded mode.
    EXPECT_GT(rider.steady_commits(), 0u);
    EXPECT_EQ(rider.fallback_entries(), 0u);
    EXPECT_EQ(rider.mode(), BullsharkRider::Mode::kSteady);
  }
}

}  // namespace
}  // namespace dr::core
