// Unit tests: vertex serialization, DAG store, reachability, causal history.
#include <gtest/gtest.h>

#include "dag/dag.hpp"
#include "dag/vertex.hpp"

namespace dr::dag {
namespace {

Vertex make_vertex(ProcessId source, Round round, std::vector<ProcessId> strong,
                   std::vector<VertexId> weak = {}) {
  Vertex v;
  v.source = source;
  v.round = round;
  v.block = Bytes{static_cast<std::uint8_t>(source),
                  static_cast<std::uint8_t>(round)};
  v.strong_edges = std::move(strong);
  v.weak_edges = std::move(weak);
  return v;
}

TEST(Vertex, SerializeRoundTrip) {
  Vertex v = make_vertex(2, 5, {0, 1, 3}, {VertexId{1, 2}, VertexId{0, 1}});
  v.has_coin_share = true;
  v.coin_share = 0xDEADBEEF;
  const Bytes wire = v.serialize();
  EXPECT_EQ(wire.size(), v.wire_size());

  auto parsed = Vertex::deserialize(wire);
  ASSERT_TRUE(parsed.ok());
  const Vertex& u = parsed.value();
  EXPECT_EQ(u.block, v.block);
  EXPECT_EQ(u.strong_edges, v.strong_edges);
  EXPECT_EQ(u.weak_edges.size(), 2u);
  EXPECT_EQ(u.weak_edges[0], (VertexId{1, 2}));
  EXPECT_TRUE(u.has_coin_share);
  EXPECT_EQ(u.coin_share, 0xDEADBEEFu);
  // source/round intentionally do NOT travel in the payload.
}

TEST(Vertex, DeserializeRejectsGarbage) {
  EXPECT_FALSE(Vertex::deserialize(Bytes{}).ok());
  EXPECT_FALSE(Vertex::deserialize(Bytes{1, 2, 3}).ok());
  // Absurd strong-edge count.
  ByteWriter w;
  w.blob(BytesView{});
  w.u32(1u << 30);
  EXPECT_FALSE(Vertex::deserialize(std::move(w).take()).ok());
}

TEST(Vertex, DeserializeRejectsTrailingBytes) {
  Vertex v = make_vertex(0, 1, {0, 1, 2});
  Bytes wire = v.serialize();
  wire.push_back(0);
  EXPECT_FALSE(Vertex::deserialize(wire).ok());
}

class DagTest : public ::testing::Test {
 protected:
  DagTest() : dag_(Committee::for_f(1)) {}

  /// Inserts a full round r where every listed source references all of
  /// round r-1's vertices.
  void fill_round(Round r, const std::vector<ProcessId>& sources) {
    const std::vector<ProcessId> prev = dag_.round_sources(r - 1);
    for (ProcessId s : sources) {
      dag_.insert(make_vertex(s, r, prev));
    }
  }

  Dag dag_;
};

TEST_F(DagTest, GenesisHasQuorumVertices) {
  EXPECT_EQ(dag_.round_size(0), 3u);  // 2f+1 for f=1
  EXPECT_TRUE(dag_.contains(VertexId{0, 0}));
  EXPECT_TRUE(dag_.contains(VertexId{2, 0}));
  EXPECT_FALSE(dag_.contains(VertexId{3, 0}));
  EXPECT_EQ(dag_.vertex_count(), 3u);
}

TEST_F(DagTest, InsertAndLookup) {
  fill_round(1, {0, 1, 2, 3});
  EXPECT_EQ(dag_.round_size(1), 4u);
  const Vertex* v = dag_.get(VertexId{1, 1});
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->source, 1u);
  EXPECT_EQ(v->round, 1u);
  EXPECT_EQ(dag_.round_sources(1), (std::vector<ProcessId>{0, 1, 2, 3}));
}

TEST_F(DagTest, PathFollowsStrongEdges) {
  fill_round(1, {0, 1, 2});
  fill_round(2, {0, 1, 2});
  EXPECT_TRUE(dag_.strong_path(VertexId{0, 2}, VertexId{1, 1}));
  EXPECT_TRUE(dag_.strong_path(VertexId{0, 2}, VertexId{2, 0}));
  EXPECT_TRUE(dag_.path(VertexId{0, 2}, VertexId{1, 1}));
  // Reflexive on present vertices.
  EXPECT_TRUE(dag_.path(VertexId{0, 2}, VertexId{0, 2}));
  // No path to absent vertices.
  EXPECT_FALSE(dag_.path(VertexId{0, 2}, VertexId{3, 1}));
  // No backward paths.
  EXPECT_FALSE(dag_.path(VertexId{1, 1}, VertexId{0, 2}));
}

TEST_F(DagTest, WeakEdgesGivePathButNotStrongPath) {
  fill_round(1, {0, 1, 2});
  fill_round(2, {0, 1, 2});
  // Vertex {3,1} arrives late; round-3 vertex of process 0 weak-links it.
  dag_.insert(make_vertex(3, 1, {0, 1, 2}));
  const std::vector<ProcessId> r2 = dag_.round_sources(2);
  dag_.insert(make_vertex(0, 3, r2, {VertexId{3, 1}}));

  EXPECT_TRUE(dag_.path(VertexId{0, 3}, VertexId{3, 1}));
  EXPECT_FALSE(dag_.strong_path(VertexId{0, 3}, VertexId{3, 1}));
}

TEST_F(DagTest, StrongSupportCountsRoundQuorum) {
  fill_round(1, {0, 1, 2});
  fill_round(2, {0, 1, 2, 3});
  fill_round(3, {0, 1, 2});
  fill_round(4, {0, 1, 2, 3});
  const VertexId leader{0, 1};
  EXPECT_EQ(dag_.strong_support_in_round(4, leader), 4u);
  EXPECT_EQ(dag_.strong_support_in_round(2, leader), 4u);
  EXPECT_EQ(dag_.strong_support_in_round(5, leader), 0u);  // empty round
}

TEST_F(DagTest, StrongSupportPartialWhenEdgesMissLeader) {
  fill_round(1, {0, 1, 2, 3});
  // Round 2: vertices reference only {1, 2, 3} — not the leader {0,1}.
  for (ProcessId s : {0u, 1u, 2u}) {
    dag_.insert(make_vertex(s, 2, {1, 2, 3}));
  }
  EXPECT_EQ(dag_.strong_support_in_round(2, VertexId{0, 1}), 0u);
  EXPECT_EQ(dag_.strong_support_in_round(2, VertexId{1, 1}), 3u);
}

TEST_F(DagTest, CausalHistoryCollectsAncestors) {
  fill_round(1, {0, 1, 2});
  fill_round(2, {0, 1, 2});
  const auto all = dag_.causal_history(VertexId{0, 2}, [](VertexId) {
    return false;
  });
  // Itself + 3 round-1 + 3 genesis.
  EXPECT_EQ(all.size(), 1u + 3u + 3u);
}

TEST_F(DagTest, CausalHistorySkipPrunesSubtrees) {
  fill_round(1, {0, 1, 2});
  fill_round(2, {0, 1, 2});
  // Skip round-0: only rounds 1..2 returned.
  const auto no_genesis = dag_.causal_history(
      VertexId{0, 2}, [](VertexId id) { return id.round == 0; });
  EXPECT_EQ(no_genesis.size(), 4u);
  for (const VertexId& id : no_genesis) EXPECT_GE(id.round, 1u);
}

TEST_F(DagTest, MergeClosureMatchesCausalHistory) {
  fill_round(1, {0, 1, 2});
  fill_round(2, {1, 2, 3});
  Bitset closure;
  dag_.merge_closure_into(VertexId{1, 2}, closure);
  const auto hist =
      dag_.causal_history(VertexId{1, 2}, [](VertexId) { return false; });
  EXPECT_EQ(closure.count(), hist.size());
  for (const VertexId& id : hist) {
    EXPECT_TRUE(closure.test(id.round * 4 + id.source));
  }
}

TEST_F(DagTest, DuplicateInsertAborts) {
  fill_round(1, {0, 1, 2});
  EXPECT_DEATH(dag_.insert(make_vertex(0, 1, {0, 1, 2})), "duplicate vertex");
}

TEST_F(DagTest, InsertWithMissingPredecessorAborts) {
  EXPECT_DEATH(dag_.insert(make_vertex(0, 2, {0, 1, 2})),
               "strong predecessor missing");
}

TEST(Bitset, SetTestOrCount) {
  Bitset a, b;
  a.set(3);
  a.set(100);
  EXPECT_TRUE(a.test(3));
  EXPECT_FALSE(a.test(4));
  EXPECT_TRUE(a.test(100));
  EXPECT_EQ(a.count(), 2u);
  b.set(64);
  b.or_with(a);
  EXPECT_TRUE(b.test(3) && b.test(64) && b.test(100));
  EXPECT_EQ(b.count(), 3u);
  // or_with a larger set grows the smaller one.
  Bitset c;
  c.or_with(b);
  EXPECT_EQ(c.count(), 3u);
}

}  // namespace
}  // namespace dr::dag
