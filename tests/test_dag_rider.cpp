// End-to-end BAB property tests for DAG-Rider (Algorithm 3) on the full
// stack: every reliable-broadcast instantiation, every coin mode, crash /
// silent / equivocating faults, and adversarial schedulers. The assertions
// are the paper's §3 properties: Agreement, Integrity, Validity, Total
// Order, plus chain quality and the commit-consistency of Lemma 1.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/system.hpp"
#include "sim/network.hpp"

namespace dr::core {
namespace {

SystemConfig base_config(std::uint32_t f, std::uint64_t seed) {
  SystemConfig cfg;
  cfg.committee = Committee::for_f(f);
  cfg.seed = seed;
  cfg.rbc_kind = rbc::RbcKind::kOracle;  // fast default; params override
  cfg.coin_mode = CoinMode::kThreshold;
  cfg.builder.auto_blocks = true;
  cfg.builder.auto_block_size = 16;
  return cfg;
}

/// Checks Total Order (prefix consistency), Integrity (no duplicate
/// (round, source)), and commit-sequence agreement across correct processes.
void check_safety(const System& sys) {
  EXPECT_TRUE(prefix_consistent(sys)) << "total order violated";

  for (ProcessId pid : sys.correct_ids()) {
    std::set<std::pair<Round, ProcessId>> seen;
    for (const DeliveredRecord& r : sys.node(pid).delivered()) {
      EXPECT_TRUE(seen.emplace(r.round, r.source).second)
          << "integrity violated at p" << pid << " (round " << r.round
          << ", source " << r.source << ")";
    }
  }

  // Lemma 1 / Proposition 2 consequence: committed (wave, leader) sequences
  // are prefix-consistent across correct processes.
  const auto ids = sys.correct_ids();
  for (std::size_t a = 0; a + 1 < ids.size(); ++a) {
    const auto& ca = sys.node(ids[a]).commits();
    const auto& cb = sys.node(ids[a + 1]).commits();
    const std::size_t len = std::min(ca.size(), cb.size());
    for (std::size_t i = 0; i < len; ++i) {
      EXPECT_EQ(ca[i].wave, cb[i].wave);
      EXPECT_EQ(ca[i].leader, cb[i].leader);
    }
  }

  // Claim 5: waves are committed in strictly increasing order.
  for (ProcessId pid : ids) {
    const auto& commits = sys.node(pid).commits();
    for (std::size_t i = 1; i < commits.size(); ++i) {
      EXPECT_LT(commits[i - 1].wave, commits[i].wave);
    }
  }
}

// ---------------------------------------------------------------------------
// Parameterized across RBC kinds and committee sizes (fault-free).

class DagRiderParam
    : public ::testing::TestWithParam<std::tuple<rbc::RbcKind, std::uint32_t>> {};

TEST_P(DagRiderParam, OrdersBlocksWithTotalOrder) {
  const auto [kind, f] = GetParam();
  SystemConfig cfg = base_config(f, 1000 + f);
  cfg.rbc_kind = kind;
  System sys(std::move(cfg));
  sys.start();
  const std::uint64_t want = 6ull * sys.n();
  ASSERT_TRUE(sys.run_until_delivered(want)) << "no progress";
  check_safety(sys);
  for (ProcessId pid : sys.correct_ids()) {
    EXPECT_GE(sys.node(pid).rider().delivered_count(), want);
    EXPECT_GE(sys.node(pid).rider().decided_wave(), 1u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Stacks, DagRiderParam,
    ::testing::Combine(::testing::Values(rbc::RbcKind::kOracle,
                                         rbc::RbcKind::kBracha,
                                         rbc::RbcKind::kBrachaHash,
                                         rbc::RbcKind::kAvid),
                       ::testing::Values(1u, 2u)),
    [](const auto& info) {
      std::string name = std::string(rbc::to_string(std::get<0>(info.param))) +
                         "_f" + std::to_string(std::get<1>(info.param));
      std::replace(name.begin(), name.end(), '-', '_');
      return name;
    });

// ---------------------------------------------------------------------------
// Coin modes.

TEST(DagRiderCoin, LocalCoinOracle) {
  SystemConfig cfg = base_config(1, 7);
  cfg.coin_mode = CoinMode::kLocal;
  System sys(std::move(cfg));
  sys.start();
  ASSERT_TRUE(sys.run_until_delivered(30));
  check_safety(sys);
}

TEST(DagRiderCoin, PiggybackedSharesDriveTheCoin) {
  // Footnote 1: no coin-channel traffic at all — shares ride on vertices.
  SystemConfig cfg = base_config(1, 8);
  cfg.coin_mode = CoinMode::kPiggyback;
  System sys(std::move(cfg));
  sys.start();
  ASSERT_TRUE(sys.run_until_delivered(30));
  check_safety(sys);
}

TEST(DagRiderCoin, ThresholdAndPiggybackAgreeOnLeaders) {
  // Same seed, different share-transport: the reconstructed secrets (and so
  // the committed leader sequence) must match.
  SystemConfig a = base_config(1, 9);
  a.coin_mode = CoinMode::kThreshold;
  System sys_a(std::move(a));
  sys_a.start();
  ASSERT_TRUE(sys_a.run_until_delivered(30));

  SystemConfig b = base_config(1, 9);
  b.coin_mode = CoinMode::kPiggyback;
  System sys_b(std::move(b));
  sys_b.start();
  ASSERT_TRUE(sys_b.run_until_delivered(30));

  const auto& ca = sys_a.node(0).commits();
  const auto& cb = sys_b.node(0).commits();
  const std::size_t len = std::min(ca.size(), cb.size());
  ASSERT_GT(len, 0u);
  for (std::size_t i = 0; i < len; ++i) {
    EXPECT_EQ(ca[i].wave, cb[i].wave);
    EXPECT_EQ(ca[i].leader, cb[i].leader);
  }
}

// ---------------------------------------------------------------------------
// Fault tolerance.

TEST(DagRiderFaults, ProgressWithFCrashed) {
  SystemConfig cfg = base_config(2, 21);  // n = 7
  cfg.faults.assign(cfg.committee.n, FaultKind::kNone);
  cfg.faults[5] = FaultKind::kCrash;
  cfg.faults[6] = FaultKind::kCrash;
  System sys(std::move(cfg));
  sys.start();
  ASSERT_TRUE(sys.run_until_delivered(40));
  check_safety(sys);
}

TEST(DagRiderFaults, ProgressWithSilentProcesses) {
  SystemConfig cfg = base_config(1, 22);
  cfg.faults.assign(cfg.committee.n, FaultKind::kNone);
  cfg.faults[0] = FaultKind::kSilent;  // echoes others, proposes nothing
  System sys(std::move(cfg));
  sys.start();
  ASSERT_TRUE(sys.run_until_delivered(30));
  check_safety(sys);
  // The silent process's blocks never appear.
  for (const DeliveredRecord& r : sys.node(1).delivered()) {
    EXPECT_NE(r.source, 0u);
  }
}

TEST(DagRiderFaults, EquivocatorCannotBreakAgreement) {
  SystemConfig cfg = base_config(1, 23);
  cfg.rbc_kind = rbc::RbcKind::kBracha;  // equivocation targets Bracha
  cfg.faults.assign(cfg.committee.n, FaultKind::kNone);
  cfg.faults[2] = FaultKind::kEquivocate;
  System sys(std::move(cfg));
  sys.start();
  ASSERT_TRUE(sys.run_until_delivered(24));
  check_safety(sys);
}

TEST(DagRiderFaults, CrashPlusAdversarialDelays) {
  SystemConfig cfg = base_config(1, 24);
  cfg.delays = std::make_unique<sim::RotatingDelay>(4, 1, /*period=*/500,
                                                    /*fast=*/50, /*slow=*/600);
  cfg.faults.assign(cfg.committee.n, FaultKind::kNone);
  cfg.faults[3] = FaultKind::kCrash;
  System sys(std::move(cfg));
  sys.start();
  ASSERT_TRUE(sys.run_until_delivered(20));
  check_safety(sys);
}

// ---------------------------------------------------------------------------
// Adversarial schedulers (fault-free but nasty).

TEST(DagRiderAdversary, RotatingSlowSetCannotBlockCommits) {
  SystemConfig cfg = base_config(2, 31);  // n = 7
  cfg.delays = std::make_unique<sim::RotatingDelay>(7, 2, /*period=*/400,
                                                    /*fast=*/40, /*slow=*/500);
  System sys(std::move(cfg));
  sys.start();
  ASSERT_TRUE(sys.run_until_delivered(40));
  check_safety(sys);
}

TEST(DagRiderAdversary, HealedPartitionRecoversTotalOrder) {
  SystemConfig cfg = base_config(1, 32);
  cfg.delays = std::make_unique<sim::PartitionDelay>(
      std::vector<ProcessId>{0, 1}, /*heal=*/20'000, /*fast=*/50, /*extra=*/100);
  System sys(std::move(cfg));
  sys.start();
  ASSERT_TRUE(sys.run_until_delivered(30));
  check_safety(sys);
}

TEST(DagRiderAdversary, FixedSlowSetStillFair) {
  // f processes behind a slow link: their proposals must STILL be ordered
  // (validity/fairness via weak edges), just later.
  SystemConfig cfg = base_config(1, 33);
  cfg.delays = std::make_unique<sim::FixedSetDelay>(std::vector<ProcessId>{2},
                                                    /*fast=*/40, /*slow=*/400);
  System sys(std::move(cfg));
  sys.start();
  ASSERT_TRUE(sys.run_until_delivered(60));
  check_safety(sys);
  bool slow_process_ordered = false;
  for (const DeliveredRecord& r : sys.node(0).delivered()) {
    if (r.source == 2) slow_process_ordered = true;
  }
  EXPECT_TRUE(slow_process_ordered)
      << "slow-but-correct process starved: Validity broken";
}

// ---------------------------------------------------------------------------
// Validity: explicitly a_bcast blocks must all be delivered.

TEST(DagRiderValidity, EveryABcastBlockIsDelivered) {
  SystemConfig cfg = base_config(1, 41);
  System sys(std::move(cfg));
  // Enqueue 5 distinctive blocks at process 1 before starting.
  std::vector<crypto::Digest> digests;
  for (int i = 0; i < 5; ++i) {
    Bytes block{0xCA, 0xFE, static_cast<std::uint8_t>(i)};
    digests.push_back(crypto::sha256(block));
    sys.node(1).rider().a_bcast(std::move(block));
  }
  sys.start();
  ASSERT_TRUE(sys.run_until_delivered(80));
  for (ProcessId pid : sys.correct_ids()) {
    int found = 0;
    for (const DeliveredRecord& r : sys.node(pid).delivered()) {
      for (const auto& d : digests) {
        if (r.block_digest == d) ++found;
      }
    }
    EXPECT_EQ(found, 5) << "process " << pid;
  }
}

TEST(DagRiderValidity, ChainQualityMeetsBound) {
  // With f silent Byzantine processes the ordered prefix is 100% correct-
  // sourced; with f *active* Byzantine (equivocators whose winning variant
  // still lands), quality must stay >= (f+1)/(2f+1).
  SystemConfig cfg = base_config(1, 42);
  cfg.rbc_kind = rbc::RbcKind::kBracha;
  cfg.faults.assign(cfg.committee.n, FaultKind::kNone);
  cfg.faults[1] = FaultKind::kEquivocate;
  System sys(std::move(cfg));
  sys.start();
  ASSERT_TRUE(sys.run_until_delivered(30));
  const double quality = chain_quality(sys);
  const double bound = 2.0 / 3.0;  // (f+1)/(2f+1) with f=1
  EXPECT_GE(quality, bound - 0.05);
}

// ---------------------------------------------------------------------------
// Ablation: removing weak edges must break Validity for slow processes.

TEST(DagRiderAblation, NoWeakEdgesStarvesSlowProcess) {
  SystemConfig cfg = base_config(1, 43);
  cfg.builder.weak_edges = false;
  cfg.delays = std::make_unique<sim::FixedSetDelay>(std::vector<ProcessId>{2},
                                                    /*fast=*/20, /*slow=*/2000);
  System sys(std::move(cfg));
  sys.start();
  ASSERT_TRUE(sys.run_until_delivered(40));
  // Process 2 is so slow its vertices never get strong references; without
  // weak edges they are never ordered.
  std::uint64_t from_slow = 0;
  for (const DeliveredRecord& r : sys.node(0).delivered()) {
    from_slow += r.source == 2 ? 1 : 0;
  }
  std::uint64_t from_fast = 0;
  for (const DeliveredRecord& r : sys.node(0).delivered()) {
    from_fast += r.source == 0 ? 1 : 0;
  }
  EXPECT_LT(from_slow, from_fast / 2)
      << "weak-edge ablation should starve the slow process";
}

// ---------------------------------------------------------------------------
// Determinism: same seed, same run.

TEST(DagRiderDeterminism, IdenticalSeedsReproduceDeliveries) {
  auto run = [](std::uint64_t seed) {
    SystemConfig cfg = base_config(1, seed);
    System sys(std::move(cfg));
    sys.start();
    EXPECT_TRUE(sys.run_until_delivered(20));
    std::vector<std::pair<Round, ProcessId>> out;
    for (const DeliveredRecord& r : sys.node(0).delivered()) {
      out.emplace_back(r.round, r.source);
    }
    return out;
  };
  EXPECT_EQ(run(55), run(55));
  EXPECT_NE(run(55), run(56));
}

// ---------------------------------------------------------------------------
// Zero-overhead claim: the ordering layer sends nothing. With the piggyback
// coin, total traffic is exactly the DAG traffic (only RBC channel bytes).

TEST(DagRiderZeroOverhead, OnlyRbcChannelCarriesTraffic) {
  SystemConfig cfg = base_config(1, 61);
  cfg.coin_mode = CoinMode::kPiggyback;
  System sys(std::move(cfg));
  sys.start();
  ASSERT_TRUE(sys.run_until_delivered(20));
  // With piggybacked shares the dedicated coin channel is silent and ALL
  // traffic is reliable-broadcast traffic — the ordering layer itself sent
  // nothing ("no extra communication", §5).
  EXPECT_EQ(sys.network().channel_bytes_sent(sim::Channel::kCoin), 0u);
  EXPECT_EQ(sys.network().channel_bytes_sent(sim::Channel::kOracle),
            sys.network().total_bytes_sent());

  // With the explicit threshold coin, the coin channel carries exactly the
  // share messages and nothing else rides outside RBC + coin.
  SystemConfig cfg2 = base_config(1, 61);
  cfg2.coin_mode = CoinMode::kThreshold;
  System sys2(std::move(cfg2));
  sys2.start();
  ASSERT_TRUE(sys2.run_until_delivered(20));
  const std::uint64_t coin_bytes =
      sys2.network().channel_bytes_sent(sim::Channel::kCoin);
  EXPECT_GT(coin_bytes, 0u);
  EXPECT_EQ(sys2.network().channel_bytes_sent(sim::Channel::kOracle) + coin_bytes,
            sys2.network().total_bytes_sent());
}

}  // namespace
}  // namespace dr::core
