// Characterization tests for the DagRider wave/commit machinery, written
// against hand-scripted DAGs so every edge case is pinned by an exact
// expectation rather than by whatever a live run happens to produce:
//
//   * direct commit with strong-path support exactly at 2f+1,
//   * no commit with support exactly one below the quorum,
//   * a wave whose leader vertex never arrived (skipped, history recovered
//     by the next committed wave),
//   * transitive walk-back adoption of a skipped-but-supported leader,
//   * GC-floor movement as waves decide and pruning of the delivered set,
//   * wave_ready suppression up to a snapshot-restored decided wave.
//
// The scripted DAGs are fed through the builder's restore path, which runs
// the ordinary validation/insertion gates and re-fires wave_ready at every
// certified boundary — so the rider under test sees exactly what a live run
// with this DAG shape would have seen. These tests pin the behaviour the
// ordering-strategy seam must preserve.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "coin/coin.hpp"
#include "core/ordering.hpp"
#include "dag/builder.hpp"
#include "rbc/factory.hpp"
#include "sim/network.hpp"

namespace dr::core {
namespace {

/// Coin oracle with a scripted leader per wave — the tests choose the
/// leader; the schedule is part of the scenario, not derived from a seed.
class ScriptedCoin final : public coin::Coin {
 public:
  explicit ScriptedCoin(std::map<Wave, ProcessId> leaders)
      : leaders_(std::move(leaders)) {}

  void choose_leader(Wave w, std::function<void(ProcessId)> cb) override {
    const auto it = leaders_.find(w);
    cb(it == leaders_.end() ? ProcessId{0} : it->second);
  }

 private:
  std::map<Wave, ProcessId> leaders_;
};

/// One observing process fed a scripted DAG through the restore path.
class ScriptedRun {
 public:
  explicit ScriptedRun(Committee c, std::map<Wave, ProcessId> leaders)
      : committee_(c),
        sim_(1),
        net_(sim_, c, std::make_unique<sim::UniformDelay>(1, 2)),
        coin_(std::move(leaders)) {
    rbc_ = rbc::make_factory(rbc::RbcKind::kOracle)(net_, 0, 1);
    builder_ = std::make_unique<dag::DagBuilder>(c, 0, *rbc_);
    rider_ = std::make_unique<DagRider>(*builder_, coin_);
    rider_->set_deliver([this](const Bytes&, const crypto::Digest&, Round r,
                               ProcessId source) {
      const dag::VertexId id{source, r};
      duplicate_delivery_ |= !delivered_set_.insert(id).second;
      delivered_.push_back(id);
    });
    rider_->set_commit_observer([this](Wave w, dag::VertexId leader,
                                       bool direct) {
      commits_.push_back({w, leader, direct});
    });
  }

  DagRider& rider() { return *rider_; }
  dag::DagBuilder& builder() { return *builder_; }

  void begin() { builder_->begin_restore(0); }

  /// Adds one vertex (source, round) with the given strong edges into
  /// round-1. The block is a distinct 2-byte tag so digests differ.
  void add(ProcessId source, Round round, std::vector<ProcessId> strong) {
    dag::Vertex v;
    v.block = Bytes{static_cast<std::uint8_t>(source),
                    static_cast<std::uint8_t>(round)};
    v.strong_edges = std::move(strong);
    builder_->restore_deliver(source, round, net::Payload(v.serialize()));
  }

  /// Adds a full round: every source in `sources` gets a vertex with the
  /// same strong-edge set.
  void add_round(Round round, const std::vector<ProcessId>& sources,
                 const std::vector<ProcessId>& strong) {
    for (ProcessId p : sources) add(p, round, strong);
  }

  void finish() { builder_->finish_restore(); }

  struct Commit {
    Wave wave;
    dag::VertexId leader;
    bool direct;
  };

  const std::vector<dag::VertexId>& delivered() const { return delivered_; }
  const std::vector<Commit>& commits() const { return commits_; }
  bool duplicate_delivery() const { return duplicate_delivery_; }
  bool was_delivered(dag::VertexId id) const {
    return delivered_set_.count(id) > 0;
  }

 private:
  Committee committee_;
  sim::Simulator sim_;
  sim::Network net_;
  ScriptedCoin coin_;
  std::unique_ptr<rbc::ReliableBroadcast> rbc_;
  std::unique_ptr<dag::DagBuilder> builder_;
  std::unique_ptr<DagRider> rider_;
  std::vector<dag::VertexId> delivered_;
  std::set<dag::VertexId> delivered_set_;
  std::vector<Commit> commits_;
  bool duplicate_delivery_ = false;
};

// n=7 (f=2, quorum 5) leaves two edge slots to play with per vertex, which
// is what makes exact-threshold support constructible: a vertex needs 5 of
// 7 parents, so its ancestry can avoid at most 2 sources.
const Committee kC7 = Committee::for_n(7);

std::vector<ProcessId> all7() { return {0, 1, 2, 3, 4, 5, 6}; }
/// Edge set avoiding source 0 — the building block of non-supporters.
std::vector<ProcessId> avoid0() { return {1, 2, 3, 4, 5}; }
std::vector<ProcessId> not0() { return {1, 2, 3, 4, 5, 6}; }
/// Round-1 vertices can only reference the hardcoded genesis quorum
/// (sources 0..2f, Alg. 1) — there are no genesis vertices for 5 and 6.
std::vector<ProcessId> genesis5() { return {0, 1, 2, 3, 4}; }

/// Rounds 1..3 of the exact-support scenarios: round 1 fully connected;
/// rounds 2-3 maintain a 5-vertex "avoider lane" (sources 1-5, edges that
/// never reach source 0's round-1 vertex) next to two includer vertices
/// (sources 0 and 6, edges to everything).
void feed_avoider_lane(ScriptedRun& run) {
  run.add_round(1, all7(), genesis5());
  for (Round r = 2; r <= 3; ++r) {
    run.add_round(r, {1, 2, 3, 4, 5}, avoid0());
    run.add_round(r, {0, 6}, all7());
  }
}

TEST(OrderingCharacterization, DirectCommitAtExactQuorumSupport) {
  ScriptedRun run(kC7, {{1, 0}});
  run.begin();
  feed_avoider_lane(run);
  // Round 4: exactly 5 supporters (quorum), 2 avoiders.
  run.add_round(4, {1, 2}, avoid0());
  run.add_round(4, {0, 3, 4, 5, 6}, all7());
  run.finish();

  EXPECT_EQ(run.rider().decided_wave(), 1u);
  EXPECT_EQ(run.rider().waves_without_direct_commit(), 0u);
  ASSERT_EQ(run.commits().size(), 1u);
  EXPECT_EQ(run.commits()[0].wave, 1u);
  EXPECT_EQ(run.commits()[0].leader, (dag::VertexId{0, 1}));
  EXPECT_TRUE(run.commits()[0].direct);
  // A wave-1 leader's causal history above genesis is just itself.
  ASSERT_EQ(run.delivered().size(), 1u);
  EXPECT_EQ(run.delivered()[0], (dag::VertexId{0, 1}));
  EXPECT_EQ(run.rider().delivered_count(), 1u);
}

TEST(OrderingCharacterization, NoCommitOneBelowQuorumSupport) {
  ScriptedRun run(kC7, {{1, 0}});
  run.begin();
  feed_avoider_lane(run);
  // Round 4: 4 supporters — one below the 2f+1 quorum. No commit.
  run.add_round(4, {1, 2, 3}, avoid0());
  run.add_round(4, {0, 4, 5, 6}, all7());
  run.finish();

  EXPECT_EQ(run.rider().decided_wave(), 0u);
  EXPECT_EQ(run.rider().waves_evaluated(), 1u);
  EXPECT_EQ(run.rider().waves_without_direct_commit(), 1u);
  EXPECT_TRUE(run.commits().empty());
  EXPECT_TRUE(run.delivered().empty());
}

TEST(OrderingCharacterization, LeaderMissingWaveSkippedHistoryRecovered) {
  // Wave 1's leader (source 0) never produced a round-1 vertex; wave 2
  // commits and its leader's causal history sweeps up wave 1's rounds.
  ScriptedRun run(kC7, {{1, 0}, {2, 1}});
  run.begin();
  run.add_round(1, not0(), genesis5());  // source 0 absent, 6 >= quorum
  for (Round r = 2; r <= 4; ++r) run.add_round(r, all7(), not0());
  for (Round r = 5; r <= 8; ++r) run.add_round(r, all7(), all7());
  run.finish();

  EXPECT_EQ(run.rider().decided_wave(), 2u);
  EXPECT_EQ(run.rider().waves_without_direct_commit(), 1u);
  ASSERT_EQ(run.commits().size(), 1u);
  EXPECT_EQ(run.commits()[0].wave, 2u);
  EXPECT_EQ(run.commits()[0].leader, (dag::VertexId{1, 5}));
  EXPECT_TRUE(run.commits()[0].direct);
  // History of {1,5}: its 7 round-4 parents, whose {1..6} edges reach 6
  // vertices in each of rounds 1-3 (source 0's round-2/3 vertices exist
  // but are never referenced — without weak edges they stay outside every
  // causal history), plus the leader itself.
  EXPECT_EQ(run.rider().delivered_count(), 7u + 6u * 3u + 1u);
  EXPECT_FALSE(run.was_delivered(dag::VertexId{0, 2}));
  EXPECT_FALSE(run.was_delivered(dag::VertexId{0, 1}));
  EXPECT_TRUE(run.was_delivered(dag::VertexId{3, 4}));
  EXPECT_FALSE(run.duplicate_delivery());
}

TEST(OrderingCharacterization, TransitiveWalkBackRecoversSkippedLeader) {
  // Wave 1's leader exists but has only 4 supporters (no direct commit);
  // wave 2 commits directly and the walk-back adopts wave 1's leader via
  // the strong path, ordering it first with direct=false.
  ScriptedRun run(kC7, {{1, 0}, {2, 2}});
  run.begin();
  feed_avoider_lane(run);
  run.add_round(4, {1, 2, 3}, avoid0());
  run.add_round(4, {0, 4, 5, 6}, all7());
  for (Round r = 5; r <= 8; ++r) run.add_round(r, all7(), all7());
  run.finish();

  EXPECT_EQ(run.rider().decided_wave(), 2u);
  EXPECT_EQ(run.rider().waves_without_direct_commit(), 1u);
  ASSERT_EQ(run.commits().size(), 2u);
  EXPECT_EQ(run.commits()[0].wave, 1u);
  EXPECT_EQ(run.commits()[0].leader, (dag::VertexId{0, 1}));
  EXPECT_FALSE(run.commits()[0].direct);  // recovered transitively
  EXPECT_EQ(run.commits()[1].wave, 2u);
  EXPECT_EQ(run.commits()[1].leader, (dag::VertexId{2, 5}));
  EXPECT_TRUE(run.commits()[1].direct);
  // First delivery batch is wave 1's leader alone; then wave 2's history
  // (rounds 1-4 complete plus the leader, minus the already-delivered
  // wave-1 leader).
  ASSERT_FALSE(run.delivered().empty());
  EXPECT_EQ(run.delivered()[0], (dag::VertexId{0, 1}));
  EXPECT_EQ(run.rider().delivered_count(), 1u + 28u);
  EXPECT_FALSE(run.duplicate_delivery());
}

TEST(OrderingCharacterization, GcFloorFollowsDecidedWaves) {
  ScriptedRun run(kC7, {{1, 0}, {2, 1}, {3, 2}});
  run.rider().enable_gc(2);
  run.begin();
  run.add_round(1, all7(), genesis5());
  for (Round r = 2; r <= 12; ++r) run.add_round(r, all7(), all7());
  run.finish();

  EXPECT_EQ(run.rider().decided_wave(), 3u);
  // floor = round(w,1) - depth once positive: wave 2 -> 5-2=3, wave 3 ->
  // 9-2=7 (wave 1's round 1 is too low to move it).
  EXPECT_EQ(run.builder().gc_floor(), 7u);
  EXPECT_EQ(run.builder().dag().compacted_floor(), 7u);
  // Wave 1 delivers its leader; waves 2 and 3 each deliver the 4 preceding
  // full rounds plus their leader minus the prior leader — 28 each.
  EXPECT_EQ(run.rider().delivered_count(), 1u + 28u + 28u);
  EXPECT_FALSE(run.duplicate_delivery());
}

TEST(OrderingCharacterization, RestoredDecidedWaveSuppressesReplay) {
  // A snapshot said wave 1 was decided and its leader delivered: the
  // replayed wave-1 boundary must not be re-evaluated, and the walk-back
  // from wave 2 must stop above it.
  ScriptedRun run(kC7, {{1, 0}, {2, 1}});
  run.rider().restore(/*decided_wave=*/1, /*delivered_count=*/1,
                      {dag::VertexId{0, 1}});
  run.begin();
  run.add_round(1, all7(), genesis5());
  for (Round r = 2; r <= 8; ++r) run.add_round(r, all7(), all7());
  run.finish();

  EXPECT_EQ(run.rider().waves_evaluated(), 1u);  // wave 2 only
  EXPECT_EQ(run.rider().decided_wave(), 2u);
  ASSERT_EQ(run.commits().size(), 1u);
  EXPECT_EQ(run.commits()[0].wave, 2u);
  EXPECT_FALSE(run.was_delivered(dag::VertexId{0, 1}));  // already durable
  EXPECT_TRUE(run.was_delivered(dag::VertexId{1, 5}));
  // Pre-crash count 1 + wave 2's history (rounds 1-4 plus leader, minus
  // the restored leader).
  EXPECT_EQ(run.rider().delivered_count(), 1u + 28u);
  EXPECT_FALSE(run.duplicate_delivery());
}

}  // namespace
}  // namespace dr::core
