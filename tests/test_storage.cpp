// Durable storage & crash recovery (DESIGN.md §10): WAL/snapshot codec
// round-trips and corruption handling, VertexStore recovery semantics,
// deterministic builder restore, the GC-floor drop-path stats, and the
// end-to-end acceptance scenario — kill a cluster node mid-wave, restart it
// from its WAL, and watch it rejoin via catch-up sync with the shared
// auditors still green.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <thread>

#include "core/audit.hpp"
#include "dag/builder.hpp"
#include "metrics/counters.hpp"
#include "node/cluster.hpp"
#include "rbc/factory.hpp"
#include "sim/network.hpp"
#include "storage/snapshot.hpp"
#include "storage/store.hpp"
#include "storage/wal.hpp"

namespace dr::storage {
namespace {

using dag::Vertex;
using dag::VertexId;

Committee committee4() { return Committee::for_f(1); }

Bytes sample_payload(std::uint8_t tag, std::size_t size = 48) {
  Bytes b(size, tag);
  for (std::size_t i = 0; i < size; ++i) b[i] ^= static_cast<std::uint8_t>(i);
  return b;
}

WalRecord sample_record(WalRecordType type, ProcessId source, Round round,
                        std::uint8_t tag) {
  WalRecord rec;
  rec.type = type;
  rec.source = source;
  rec.round = round;
  rec.payload = sample_payload(tag);
  return rec;
}

std::string fresh_dir(const std::string& name) {
  // TEST_TMPDIR lets CI point the data directories at a tmpfs mount
  // (gtest's own TempDir() only honors it on Android).
  const char* env = std::getenv("TEST_TMPDIR");
  const std::string base = env != nullptr ? env : testing::TempDir();
  const std::string dir = base + "/" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

// --- WAL codec ---

TEST(Wal, RoundTripThroughChunkedFeed) {
  const Committee c = committee4();
  Bytes stream = encode_wal_header(c, /*pid=*/2);
  std::vector<WalRecord> want;
  for (std::uint32_t i = 0; i < 7; ++i) {
    want.push_back(sample_record(
        i % 3 == 0 ? WalRecordType::kProposal : WalRecordType::kVertex,
        i % 3 == 0 ? 2 : static_cast<ProcessId>(i % c.n),
        static_cast<Round>(1 + i), static_cast<std::uint8_t>(i)));
    const Bytes enc = encode_wal_record(want.back());
    stream.insert(stream.end(), enc.begin(), enc.end());
  }

  WalDecoder dec(c, 2);
  // Irregular chunk sizes exercise partial-header and partial-payload paths.
  std::size_t pos = 0, chunk = 1;
  std::vector<WalRecord> got;
  while (pos < stream.size()) {
    const std::size_t len = std::min(chunk, stream.size() - pos);
    dec.feed(BytesView{stream.data() + pos, len});
    pos += len;
    chunk = (chunk * 7 + 3) % 23 + 1;
    while (auto rec = dec.next()) got.push_back(std::move(*rec));
  }
  ASSERT_FALSE(dec.dead()) << dec.error();
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(static_cast<int>(got[i].type), static_cast<int>(want[i].type));
    EXPECT_EQ(got[i].source, want[i].source);
    EXPECT_EQ(got[i].round, want[i].round);
    EXPECT_EQ(got[i].payload, want[i].payload);
  }
  EXPECT_EQ(dec.consumed(), stream.size());
}

TEST(Wal, TornTailIsTruncationNotDeath) {
  const Committee c = committee4();
  Bytes stream = encode_wal_header(c, 0);
  const Bytes r1 = encode_wal_record(
      sample_record(WalRecordType::kVertex, 1, 5, 0xAA));
  const Bytes r2 = encode_wal_record(
      sample_record(WalRecordType::kVertex, 3, 6, 0xBB));
  stream.insert(stream.end(), r1.begin(), r1.end());
  const std::size_t clean_end = stream.size();
  // Half of the second record: a torn append, the expected crash artifact.
  stream.insert(stream.end(), r2.begin(),
                r2.begin() + static_cast<std::ptrdiff_t>(r2.size() / 2));

  WalDecoder dec(c, 0);
  dec.feed(BytesView(stream));
  ASSERT_TRUE(dec.next().has_value());
  EXPECT_FALSE(dec.next().has_value());
  // Torn tail != corruption: the decoder stays alive and reports how far the
  // clean prefix reached, which is where the file layer truncates.
  EXPECT_FALSE(dec.dead());
  EXPECT_EQ(dec.consumed(), clean_end);
}

TEST(Wal, CrcFlipKillsTheDecoder) {
  const Committee c = committee4();
  Bytes stream = encode_wal_header(c, 0);
  const Bytes r1 = encode_wal_record(
      sample_record(WalRecordType::kVertex, 1, 5, 0xAA));
  stream.insert(stream.end(), r1.begin(), r1.end());
  stream.back() ^= 0x01;  // bit rot inside the payload

  WalDecoder dec(c, 0);
  dec.feed(BytesView(stream));
  EXPECT_FALSE(dec.next().has_value());
  EXPECT_TRUE(dec.dead());
  EXPECT_FALSE(dec.error().empty());
}

TEST(Wal, ForeignHeaderRejected) {
  const Committee c = committee4();
  // A data dir copied from process 1 must not replay into process 0.
  Bytes stream = encode_wal_header(c, /*pid=*/1);
  WalDecoder dec(c, /*pid=*/0);
  dec.feed(BytesView(stream));
  EXPECT_FALSE(dec.next().has_value());
  EXPECT_TRUE(dec.dead());
}

// --- Snapshot codec ---

Snapshot sample_snapshot() {
  Snapshot s;
  s.committee = committee4();
  s.pid = 3;
  s.gc_floor = 9;
  s.decided_wave = 4;
  for (std::uint32_t i = 0; i < 5; ++i) {
    core::DeliveredRecord d;
    d.block_digest.fill(static_cast<std::uint8_t>(i));
    d.block_size = 100 + i;
    d.round = static_cast<Round>(1 + i);
    d.source = static_cast<ProcessId>(i % 4);
    d.time = 1000 + i;
    s.delivered.push_back(d);
  }
  core::CommitRecord cr;
  cr.wave = 4;
  cr.leader = VertexId{2, 13};
  cr.direct = true;
  cr.time = 9999;
  s.commits.push_back(cr);
  return s;
}

TEST(Snapshot, RoundTrip) {
  const Snapshot want = sample_snapshot();
  const Bytes enc = encode_snapshot(want);
  auto got = decode_snapshot(BytesView(enc));
  ASSERT_TRUE(got.ok()) << got.error();
  const Snapshot& s = got.value();
  EXPECT_EQ(s.committee.n, want.committee.n);
  EXPECT_EQ(s.pid, want.pid);
  EXPECT_EQ(s.gc_floor, want.gc_floor);
  EXPECT_EQ(s.decided_wave, want.decided_wave);
  ASSERT_EQ(s.delivered.size(), want.delivered.size());
  for (std::size_t i = 0; i < s.delivered.size(); ++i) {
    EXPECT_TRUE(s.delivered[i].same_value(want.delivered[i]));
    EXPECT_EQ(s.delivered[i].time, want.delivered[i].time);
  }
  ASSERT_EQ(s.commits.size(), 1u);
  EXPECT_EQ(s.commits[0].wave, want.commits[0].wave);
  EXPECT_EQ(s.commits[0].leader, want.commits[0].leader);
  EXPECT_EQ(s.commits[0].direct, want.commits[0].direct);
}

TEST(Snapshot, AnySingleByteFlipIsRejected) {
  const Bytes enc = encode_snapshot(sample_snapshot());
  // The trailing CRC covers every byte; sample a spread of positions.
  for (std::size_t pos = 0; pos < enc.size(); pos += 7) {
    Bytes bad = enc;
    bad[pos] ^= 0x40;
    EXPECT_FALSE(decode_snapshot(BytesView(bad)).ok())
        << "flip at " << pos << " went undetected";
  }
  EXPECT_FALSE(decode_snapshot(BytesView{enc.data(), enc.size() - 1}).ok());
}

// --- VertexStore file layer ---

Vertex make_vertex(const Committee& c, ProcessId source, Round round,
                   std::uint8_t tag) {
  Vertex v;
  v.source = source;
  v.round = round;
  v.block = sample_payload(tag, 32);
  for (ProcessId p = 0; p < c.quorum(); ++p) v.strong_edges.push_back(p);
  return v;
}

TEST(VertexStore, AppendThenRecover) {
  const Committee c = committee4();
  const std::string dir = fresh_dir("dr_store_append");
  {
    VertexStore store(c, 0, StoreOptions{dir, false});
    const RecoverResult fresh = store.recover();
    EXPECT_TRUE(fresh.wal_clean);
    EXPECT_FALSE(fresh.snapshot.has_value());
    EXPECT_TRUE(fresh.records.empty());
    store.append_vertex(make_vertex(c, 1, 1, 0x11));
    store.append_vertex(make_vertex(c, 0, 1, 0x22));
    store.append_proposal(1, BytesView(sample_payload(0x33)));
  }
  VertexStore store(c, 0, StoreOptions{dir, false});
  const RecoverResult rec = store.recover();
  EXPECT_TRUE(rec.wal_clean) << rec.wal_error;
  ASSERT_EQ(rec.records.size(), 3u);
  EXPECT_EQ(static_cast<int>(rec.records[0].type),
            static_cast<int>(WalRecordType::kVertex));
  EXPECT_EQ(rec.records[0].source, 1u);
  EXPECT_EQ(static_cast<int>(rec.records[2].type),
            static_cast<int>(WalRecordType::kProposal));
  EXPECT_EQ(rec.records[2].round, 1u);
  EXPECT_EQ(store.stats().recovered_vertices, 2u);
  EXPECT_EQ(store.stats().recovered_proposals, 1u);
}

TEST(VertexStore, TornTailIsTruncatedAndAppendsContinue) {
  const Committee c = committee4();
  const std::string dir = fresh_dir("dr_store_torn");
  {
    VertexStore store(c, 0, StoreOptions{dir, false});
    (void)store.recover();
    store.append_vertex(make_vertex(c, 1, 1, 0x11));
  }
  {
    // Simulate a torn write: garbage after the last complete record.
    std::FILE* f = std::fopen((dir + "/wal.bin").c_str(), "ab");
    ASSERT_NE(f, nullptr);
    const char garbage[] = {0x13, 0x00, 0x00};
    std::fwrite(garbage, 1, sizeof garbage, f);
    std::fclose(f);
  }
  {
    VertexStore store(c, 0, StoreOptions{dir, false});
    const RecoverResult rec = store.recover();
    // A torn tail is an expected crash artifact, not corruption: the store
    // repairs the file in place and the recovery still counts as clean.
    EXPECT_TRUE(rec.wal_clean) << rec.wal_error;
    ASSERT_EQ(rec.records.size(), 1u);
    EXPECT_GT(store.stats().recovered_truncated_bytes, 0u);
    // Appends after truncation extend the clean prefix.
    store.append_vertex(make_vertex(c, 2, 2, 0x22));
  }
  VertexStore store(c, 0, StoreOptions{dir, false});
  const RecoverResult rec = store.recover();
  EXPECT_TRUE(rec.wal_clean) << rec.wal_error;
  ASSERT_EQ(rec.records.size(), 2u);
  EXPECT_EQ(rec.records[1].round, 2u);
}

TEST(VertexStore, CompactWritesSnapshotAndPrunesWal) {
  const Committee c = committee4();
  const std::string dir = fresh_dir("dr_store_compact");
  dag::Dag dag(c);
  VertexStore store(c, 0, StoreOptions{dir, false});
  (void)store.recover();
  // Rounds 1..6, full rounds; log everything like the node would.
  for (Round r = 1; r <= 6; ++r) {
    for (ProcessId p = 0; p < c.n; ++p) {
      Vertex v = make_vertex(c, p, r, static_cast<std::uint8_t>(r));
      store.append_vertex(v);
      dag.insert(std::move(v));
    }
  }
  store.append_proposal(7, BytesView(sample_payload(0x77)));

  Snapshot snap;
  snap.committee = c;
  snap.pid = 0;
  snap.gc_floor = 4;
  snap.decided_wave = 1;
  store.compact(snap, dag);
  EXPECT_EQ(store.stats().compactions, 1u);

  VertexStore reopened(c, 0, StoreOptions{dir, false});
  const RecoverResult rec = reopened.recover();
  EXPECT_TRUE(rec.wal_clean) << rec.wal_error;
  ASSERT_TRUE(rec.snapshot.has_value());
  EXPECT_EQ(rec.snapshot->gc_floor, 4u);
  EXPECT_TRUE(reopened.stats().snapshot_loaded);
  bool saw_proposal = false;
  for (const WalRecord& r : rec.records) {
    if (r.type == WalRecordType::kProposal) {
      saw_proposal = true;
      EXPECT_EQ(r.round, 7u);
    } else {
      EXPECT_GE(r.round, 4u) << "compaction must drop rounds below the floor";
    }
  }
  EXPECT_TRUE(saw_proposal) << "pending own proposal lost by compaction";
}

TEST(VertexStore, ForeignSnapshotResetsStorage) {
  const Committee c = committee4();
  const std::string dir = fresh_dir("dr_store_foreign");
  {
    dag::Dag dag(c);
    VertexStore store(c, /*pid=*/1, StoreOptions{dir, false});
    (void)store.recover();
    Vertex v = make_vertex(c, 1, 1, 0x11);
    store.append_vertex(v);
    dag.insert(std::move(v));
    Snapshot snap;
    snap.committee = c;
    snap.pid = 1;
    store.compact(snap, dag);
  }
  // Same directory, different process id: replaying another process's
  // history would let this node equivocate. Everything is discarded.
  VertexStore store(c, /*pid=*/2, StoreOptions{dir, false});
  const RecoverResult rec = store.recover();
  EXPECT_FALSE(rec.snapshot.has_value());
  EXPECT_TRUE(rec.records.empty());
}

}  // namespace
}  // namespace dr::storage

namespace dr::dag {
namespace {

/// Minimal RBC stub: counts broadcasts, delivers only what the test injects.
class NoopRbc final : public rbc::ReliableBroadcast {
 public:
  void set_deliver(DeliverFn fn) override { deliver_ = std::move(fn); }
  void broadcast(Round, net::Payload) override { ++broadcasts; }
  void inject(ProcessId source, Round r, Bytes payload) {
    deliver_(source, r, std::move(payload));
  }
  std::uint64_t broadcasts = 0;

 private:
  DeliverFn deliver_;
};

// Satellite regression: both GC drop paths are counted — a delivery below
// the floor, and a vertex buffered across an apply_gc_floor call.
TEST(BuilderGcStats, DropPathsAreCounted) {
  const Committee c = Committee::for_f(1);
  NoopRbc rbc;
  DagBuilder builder(c, 0, rbc, BuilderOptions{.auto_blocks = true});
  builder.start();  // advances to round 1, proposes (NoopRbc swallows it)
  ASSERT_EQ(builder.current_round(), 1u);

  // A round-2 vertex parks in the buffer (round 2 > current round 1).
  Vertex buffered;
  buffered.source = 1;
  buffered.round = 2;
  buffered.block = Bytes(8, 0xCD);
  for (ProcessId p = 0; p < c.quorum(); ++p) {
    buffered.strong_edges.push_back(p);
  }
  rbc.inject(1, 2, buffered.serialize());
  ASSERT_EQ(builder.buffer_size(), 1u);
  ASSERT_EQ(builder.stats().gc_dropped_buffered, 0u);

  // The floor rises past the buffered vertex: it must be dropped AND counted.
  builder.apply_gc_floor(3);
  EXPECT_EQ(builder.buffer_size(), 0u);
  EXPECT_EQ(builder.stats().gc_dropped_buffered, 1u);

  // A delivery below the floor is rejected on arrival and counted.
  Vertex late;
  late.source = 2;
  late.round = 1;
  late.block = Bytes(8, 0xEF);
  for (ProcessId p = 0; p < c.quorum(); ++p) late.strong_edges.push_back(p);
  rbc.inject(2, 1, late.serialize());
  EXPECT_EQ(builder.stats().gc_dropped_deliveries, 1u);
  EXPECT_EQ(builder.buffer_size(), 0u);
}

// Laggard-aware GC holdback: the floor cap keeps history a slow peer still
// needs, and gc_max_holdback_rounds bounds how much it can pin.
TEST(BuilderGcStats, FloorCapHoldsHistoryForLaggards) {
  const Committee c = Committee::for_f(1);
  NoopRbc rbc;
  DagBuilder builder(c, 0, rbc);
  builder.set_gc_floor_cap(10);
  builder.apply_gc_floor(40);  // depth-based target 40, cap holds it at 10
  EXPECT_EQ(builder.gc_floor(), 10u);
  EXPECT_EQ(builder.stats().gc_floor_holds, 1u);

  builder.set_gc_floor_cap(dag::kNoGcFloorCap);  // the laggard caught up
  builder.apply_gc_floor(40);
  EXPECT_EQ(builder.gc_floor(), 40u);
  EXPECT_EQ(builder.stats().gc_floor_holds, 1u);

  // A cap pinned far below cannot hold more than gc_max_holdback_rounds.
  NoopRbc rbc2;
  DagBuilder bounded(c, 0, rbc2,
                     BuilderOptions{.gc_max_holdback_rounds = 16});
  bounded.set_gc_floor_cap(1);
  bounded.apply_gc_floor(100);
  EXPECT_EQ(bounded.gc_floor(), 84u);
  EXPECT_EQ(bounded.stats().gc_floor_holds, 1u);
}

// The per-source progress estimate that feeds the cap: any validated
// delivery path (live or sync) advances highest_round_from for its source.
TEST(BuilderGcStats, HighestRoundFromTracksDeliveries) {
  const Committee c = Committee::for_f(1);
  NoopRbc rbc;
  DagBuilder builder(c, 0, rbc, BuilderOptions{.auto_blocks = true});
  builder.start();
  EXPECT_EQ(builder.highest_round_from(1), 0u);

  Vertex v;
  v.source = 1;
  v.round = 3;
  v.block = Bytes(8, 0xAB);
  for (ProcessId p = 0; p < c.quorum(); ++p) v.strong_edges.push_back(p);
  rbc.inject(1, 3, v.serialize());  // buffered (round 3 > current round 1)
  EXPECT_EQ(builder.highest_round_from(1), 3u);
  EXPECT_EQ(builder.highest_round_from(2), 0u);
}

// Deterministic restore: replaying one builder's DAG through the restore API
// reproduces its round counter and vertex count without a single broadcast.
TEST(BuilderRestore, ReplayReachesTheSameFrontier) {
  const Committee c = Committee::for_f(1);
  sim::Simulator sim(11);
  sim::Network net(sim, c, std::make_unique<sim::UniformDelay>(1, 10));
  const rbc::RbcFactory factory = rbc::make_factory(rbc::RbcKind::kOracle);
  std::vector<std::unique_ptr<rbc::ReliableBroadcast>> rbcs;
  std::vector<std::unique_ptr<DagBuilder>> builders;
  for (ProcessId p = 0; p < c.n; ++p) {
    rbcs.push_back(factory(net, p, 11));
    builders.push_back(std::make_unique<DagBuilder>(
        c, p, *rbcs[p],
        BuilderOptions{.auto_blocks = true, .auto_block_size = 8}));
  }
  for (auto& b : builders) b->start();
  ASSERT_TRUE(sim.run_until(
      [&] { return builders[0]->current_round() >= 13; }, 5'000'000));

  const DagBuilder& live = *builders[0];
  const Dag& src = live.dag();

  NoopRbc noop;
  DagBuilder restored(c, 0, noop,
                      BuilderOptions{.auto_blocks = true, .auto_block_size = 8});
  std::uint64_t waves_fired = 0;
  restored.set_wave_ready([&](Wave) { ++waves_fired; });
  restored.begin_restore(0);
  for (Round r = 1; r <= src.max_round(); ++r) {
    for (ProcessId p : src.round_sources(r)) {
      restored.restore_deliver(p, r, src.get(VertexId{p, r})->serialize());
    }
  }
  restored.finish_restore();

  EXPECT_EQ(restored.current_round(), live.current_round());
  EXPECT_EQ(restored.dag().vertex_count(), src.vertex_count());
  EXPECT_EQ(restored.stats().restored_vertices, src.vertex_count() - c.quorum());
  EXPECT_GE(waves_fired, live.current_round() / kRoundsPerWave);
  EXPECT_EQ(noop.broadcasts, 0u) << "restore must not broadcast";

  // Going live at the restored frontier re-opens the round with a proposal.
  restored.start();
  EXPECT_GE(noop.broadcasts, 1u);
}

}  // namespace
}  // namespace dr::dag

namespace dr::node {
namespace {

std::uint64_t counter_value(const metrics::Counters& counters,
                            const std::string& name) {
  for (const auto& [key, value] : counters) {
    if (key == name) return value;
  }
  ADD_FAILURE() << "counter " << name << " missing";
  return 0;
}

// The ISSUE's acceptance scenario: kill a node mid-run, restart it from its
// WAL, and require it to rejoin through catch-up sync and keep committing,
// with the cross-node auditors green over the combined history.
TEST(StorageRecovery, KilledNodeRejoinsViaWalAndCatchup) {
  const Committee committee = Committee::for_f(1);
  const std::string base = storage::fresh_dir("dr_cluster_restart");
  NodeOptions opts;
  opts.seed = 21;
  opts.wal_dir = base;
  Cluster cluster(committee, opts);
  cluster.start();
  ASSERT_TRUE(cluster.wait_all_delivered(committee.n * 6ull,
                                         std::chrono::minutes(2)));

  cluster.stop_node(2);
  // The survivors (still a 2f+1 quorum) must keep committing while node 2
  // is down — this is the window node 2 will have to sync back.
  const std::uint64_t down_target =
      cluster.node(0).delivered_count() + committee.n * 6ull;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::minutes(2);
  while (cluster.node(0).delivered_count() < down_target ||
         cluster.node(1).delivered_count() < down_target ||
         cluster.node(3).delivered_count() < down_target) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "survivors stalled with one node down";
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }

  cluster.restart_node(2);
  // The restarted node must catch up past everything it missed and keep
  // pace with live commits on top.
  ASSERT_TRUE(cluster.wait_all_delivered(down_target + committee.n * 4ull,
                                         std::chrono::minutes(3)));
  cluster.stop();

  const auto violation =
      core::audit_logs(cluster.delivered_logs(), cluster.commit_logs());
  ASSERT_FALSE(violation.has_value()) << *violation;

  const metrics::Counters counters = cluster.node(2).counters();
  EXPECT_GT(counter_value(counters, "builder.restored_vertices"), 0u)
      << "restart did not replay the WAL";
  EXPECT_GT(counter_value(counters, "catchup.vertices_accepted"), 0u)
      << "restart did not use catch-up sync for the missed window";
  EXPECT_GT(counter_value(counters, "store.recovered_vertices"), 0u);
}

// Full power-cycle with GC + compaction: a second cluster over the same data
// directories recovers every node from snapshot + WAL, resumes committing,
// and the restored logs still satisfy the auditors end to end.
TEST(StorageRecovery, FullClusterRestartFromSnapshots) {
  const Committee committee = Committee::for_f(1);
  const std::string base = storage::fresh_dir("dr_cluster_powercycle");
  NodeOptions opts;
  opts.seed = 33;
  opts.wal_dir = base;
  // Deep enough that the servable-history window survives restart skew (a
  // node that restores a couple of rounds short must fetch them before the
  // resumed peers' GC floors pass those rounds), shallow enough that the
  // first run still compacts and writes snapshots.
  opts.gc_depth_rounds = 32;

  std::uint64_t first_run_delivered = 0;
  {
    Cluster cluster(committee, opts);
    cluster.start();
    // Run long enough that GC fires and compaction writes snapshots.
    ASSERT_TRUE(cluster.wait_all_delivered(committee.n * 60ull,
                                           std::chrono::minutes(2)));
    cluster.stop();
    first_run_delivered = cluster.node(0).delivered_count();
    const auto violation =
        core::audit_logs(cluster.delivered_logs(), cluster.commit_logs());
    ASSERT_FALSE(violation.has_value()) << *violation;
  }

  Cluster cluster(committee, opts);
  cluster.start();
  ASSERT_TRUE(cluster.wait_all_delivered(
      first_run_delivered + committee.n * 8ull, std::chrono::minutes(3)));
  cluster.stop();

  const auto violation =
      core::audit_logs(cluster.delivered_logs(), cluster.commit_logs());
  ASSERT_FALSE(violation.has_value()) << *violation;
  // At least one node actually recovered from a snapshot (GC ran long
  // enough), and all of them replayed vertices from their WALs.
  bool any_snapshot = false;
  for (ProcessId pid = 0; pid < committee.n; ++pid) {
    const metrics::Counters counters = cluster.node(pid).counters();
    EXPECT_GT(counter_value(counters, "builder.restored_vertices"), 0u);
    if (counter_value(counters, "store.snapshot_loaded") > 0) {
      any_snapshot = true;
    }
  }
  EXPECT_TRUE(any_snapshot);
}

}  // namespace
}  // namespace dr::node
